#ifndef SIMDDB_BLOOM_BLOOM_FILTER_H_
#define SIMDDB_BLOOM_BLOOM_FILTER_H_

// Bloom filter with k multiplicative hash functions (§6), used to apply
// selective conditions across tables before joining them (semi-join).
// Probing aborts a key as soon as one bit test fails — most non-qualifying
// keys fail after one or two tests — which the vectorized probe preserves
// by refilling failed lanes from the input with selective loads, the design
// of [27] that this paper evaluates on 512-bit vectors.

#include <cstddef>
#include <cstdint>

#include "core/isa.h"
#include "util/aligned_buffer.h"

namespace simddb {

class BloomFilter {
 public:
  static constexpr int kMaxFunctions = 8;

  /// Creates a filter with at least n_bits bits (rounded up to a power of
  /// two, minimum 512) and k hash functions (1..kMaxFunctions).
  BloomFilter(size_t n_bits, int k, uint64_t seed = 42);

  /// Convenience sizing: bits_per_item * n_items bits.
  static BloomFilter ForItems(size_t n_items, int bits_per_item, int k,
                              uint64_t seed = 42) {
    return BloomFilter(n_items * static_cast<size_t>(bits_per_item), k, seed);
  }

  /// Clears all bits.
  void Clear();

  /// Inserts n keys (sets k bits per key).
  void Add(const uint32_t* keys, size_t n);

  /// True if key may have been inserted (false positives possible, false
  /// negatives impossible).
  bool MightContain(uint32_t key) const;

  /// Filters (key, payload) pairs, keeping those whose k bits are all set.
  /// Returns the number of qualifying tuples. The vector variants emit
  /// qualifiers out of input order.
  size_t Probe(Isa isa, const uint32_t* keys, const uint32_t* pays, size_t n,
               uint32_t* out_keys, uint32_t* out_pays) const;

  /// Output capacity (in elements) each output buffer needs for
  /// ProbeParallel on an n-tuple input (per-morsel overshoot slack).
  static size_t ProbeParallelCapacity(size_t n);

  /// Morsel-parallel Probe on the shared TaskPool: the filter is read-only,
  /// so morsels probe concurrently and the qualifying segments are
  /// compacted in morsel order (within a morsel the vector variants emit
  /// out of input order, as in Probe). Output buffers need
  /// ProbeParallelCapacity(n) elements. threads <= 1 falls back to Probe.
  size_t ProbeParallel(Isa isa, const uint32_t* keys, const uint32_t* pays,
                       size_t n, uint32_t* out_keys, uint32_t* out_pays,
                       int threads) const;
  size_t ProbeScalar(const uint32_t* keys, const uint32_t* pays, size_t n,
                     uint32_t* out_keys, uint32_t* out_pays) const;
  size_t ProbeAvx512(const uint32_t* keys, const uint32_t* pays, size_t n,
                     uint32_t* out_keys, uint32_t* out_pays) const;
  size_t ProbeAvx2(const uint32_t* keys, const uint32_t* pays, size_t n,
                   uint32_t* out_keys, uint32_t* out_pays) const;

  size_t n_bits() const { return n_bits_; }
  int k() const { return k_; }
  const uint32_t* words() const { return words_.data(); }
  const uint32_t* factors() const { return factors_; }

  /// Bit index of hash function fi for key (fi in [0, k)).
  uint32_t BitFor(uint32_t key, int fi) const {
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(key * factors_[fi]) * n_bits_) >> 32);
  }

 private:
  AlignedBuffer<uint32_t> words_;
  size_t n_bits_;
  int k_;
  uint32_t factors_[kMaxFunctions];
};

}  // namespace simddb

#endif  // SIMDDB_BLOOM_BLOOM_FILTER_H_
