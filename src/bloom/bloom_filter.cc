#include "bloom/bloom_filter.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "hash/hash_table.h"
#include "obs/metrics.h"
#include "util/bits.h"
#include "util/task_pool.h"

namespace simddb {
namespace {

obs::PhaseTimer g_bloom_probe_ns("bloom_probe_parallel_ns");
obs::PhaseTimer g_bloom_compact_ns("bloom_compact_ns");

}  // namespace

BloomFilter::BloomFilter(size_t n_bits, int k, uint64_t seed)
    : n_bits_(NextPowerOfTwo(n_bits < 512 ? 512 : n_bits)), k_(k) {
  assert(k >= 1 && k <= kMaxFunctions);
  assert(n_bits_ <= (size_t{1} << 31));
  words_.Reset(n_bits_ / 32);
  for (int i = 0; i < kMaxFunctions; ++i) factors_[i] = HashFactor(seed, i);
  Clear();
}

void BloomFilter::Clear() { words_.Clear(); }

void BloomFilter::Add(const uint32_t* keys, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    for (int fi = 0; fi < k_; ++fi) {
      uint32_t b = BitFor(keys[i], fi);
      words_[b >> 5] |= 1u << (b & 31);
    }
  }
}

bool BloomFilter::MightContain(uint32_t key) const {
  for (int fi = 0; fi < k_; ++fi) {
    uint32_t b = BitFor(key, fi);
    if ((words_[b >> 5] & (1u << (b & 31))) == 0) return false;
  }
  return true;
}

size_t BloomFilter::ProbeScalar(const uint32_t* keys, const uint32_t* pays,
                                size_t n, uint32_t* out_keys,
                                uint32_t* out_pays) const {
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (MightContain(keys[i])) {
      out_keys[j] = keys[i];
      out_pays[j] = pays[i];
      ++j;
    }
  }
  return j;
}

size_t BloomFilter::Probe(Isa isa, const uint32_t* keys, const uint32_t* pays,
                          size_t n, uint32_t* out_keys,
                          uint32_t* out_pays) const {
  switch (isa) {
    case Isa::kAvx512:
      if (IsaSupported(Isa::kAvx512)) {
        return ProbeAvx512(keys, pays, n, out_keys, out_pays);
      }
      break;
    case Isa::kAvx2:
      if (IsaSupported(Isa::kAvx2)) {
        return ProbeAvx2(keys, pays, n, out_keys, out_pays);
      }
      break;
    case Isa::kScalar:
      break;
  }
  return ProbeScalar(keys, pays, n, out_keys, out_pays);
}

size_t BloomFilter::ProbeParallelCapacity(size_t n) {
  return n + 16 * MorselGrid(n).count() + 16;
}

size_t BloomFilter::ProbeParallel(Isa isa, const uint32_t* keys,
                                  const uint32_t* pays, size_t n,
                                  uint32_t* out_keys, uint32_t* out_pays,
                                  int threads) const {
  const MorselGrid grid(n);
  const size_t m_count = grid.count();
  if (threads <= 1 || m_count <= 1) {
    return Probe(isa, keys, pays, n, out_keys, out_pays);
  }
  // Staging slots with 16*m slack + sequential in-order compaction; same
  // scheme (and same overlap argument) as SelectionScanParallel.
  std::vector<size_t> cnt(m_count);
  {
    obs::ScopedPhase phase(g_bloom_probe_ns);
    TaskPool::Get().ParallelFor(m_count, threads, [&](int, size_t m) {
      const size_t b = grid.begin(m);
      const size_t ob = b + 16 * m;
      cnt[m] = Probe(isa, keys + b, pays + b, grid.size(m), out_keys + ob,
                     out_pays + ob);
    });
  }
  obs::ScopedPhase phase(g_bloom_compact_ns);
  size_t cursor = 0;
  for (size_t m = 0; m < m_count; ++m) {
    const size_t src = grid.begin(m) + 16 * m;
    if (cnt[m] > 0 && src != cursor) {
      std::memmove(out_keys + cursor, out_keys + src,
                   cnt[m] * sizeof(uint32_t));
      std::memmove(out_pays + cursor, out_pays + src,
                   cnt[m] * sizeof(uint32_t));
    }
    cursor += cnt[m];
  }
  return cursor;
}

}  // namespace simddb
