#include "bloom/bloom_filter.h"

#include <cassert>

#include "hash/hash_table.h"
#include "util/bits.h"

namespace simddb {

BloomFilter::BloomFilter(size_t n_bits, int k, uint64_t seed)
    : n_bits_(NextPowerOfTwo(n_bits < 512 ? 512 : n_bits)), k_(k) {
  assert(k >= 1 && k <= kMaxFunctions);
  assert(n_bits_ <= (size_t{1} << 31));
  words_.Reset(n_bits_ / 32);
  for (int i = 0; i < kMaxFunctions; ++i) factors_[i] = HashFactor(seed, i);
  Clear();
}

void BloomFilter::Clear() { words_.Clear(); }

void BloomFilter::Add(const uint32_t* keys, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    for (int fi = 0; fi < k_; ++fi) {
      uint32_t b = BitFor(keys[i], fi);
      words_[b >> 5] |= 1u << (b & 31);
    }
  }
}

bool BloomFilter::MightContain(uint32_t key) const {
  for (int fi = 0; fi < k_; ++fi) {
    uint32_t b = BitFor(key, fi);
    if ((words_[b >> 5] & (1u << (b & 31))) == 0) return false;
  }
  return true;
}

size_t BloomFilter::ProbeScalar(const uint32_t* keys, const uint32_t* pays,
                                size_t n, uint32_t* out_keys,
                                uint32_t* out_pays) const {
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (MightContain(keys[i])) {
      out_keys[j] = keys[i];
      out_pays[j] = pays[i];
      ++j;
    }
  }
  return j;
}

size_t BloomFilter::Probe(Isa isa, const uint32_t* keys, const uint32_t* pays,
                          size_t n, uint32_t* out_keys,
                          uint32_t* out_pays) const {
  switch (isa) {
    case Isa::kAvx512:
      if (IsaSupported(Isa::kAvx512)) {
        return ProbeAvx512(keys, pays, n, out_keys, out_pays);
      }
      break;
    case Isa::kAvx2:
      if (IsaSupported(Isa::kAvx2)) {
        return ProbeAvx2(keys, pays, n, out_keys, out_pays);
      }
      break;
    case Isa::kScalar:
      break;
  }
  return ProbeScalar(keys, pays, n, out_keys, out_pays);
}

}  // namespace simddb
