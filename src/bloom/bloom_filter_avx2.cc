// AVX2 vertically vectorized Bloom filter probing — the configuration of
// [27] on mainstream CPUs: native gathers, permutation-table selective
// loads/stores.

#include "bloom/bloom_filter.h"
#include "core/avx2_ops.h"

namespace simddb {

size_t BloomFilter::ProbeAvx2(const uint32_t* keys, const uint32_t* pays,
                              size_t n, uint32_t* out_keys,
                              uint32_t* out_pays) const {
  namespace v = simddb::avx2;
  const __m256i nbits = _mm256_set1_epi32(static_cast<int>(n_bits_));
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i k_minus_1 = _mm256_set1_epi32(k_ - 1);
  const __m256i mask31 = _mm256_set1_epi32(31);
  alignas(32) uint32_t factor_table[kMaxFunctions];
  for (int i = 0; i < kMaxFunctions; ++i) factor_table[i] = factors_[i];

  __m256i key = _mm256_setzero_si256();
  __m256i pay = _mm256_setzero_si256();
  __m256i fidx = _mm256_setzero_si256();
  uint32_t need = 0xFF;
  size_t i = 0;
  size_t j = 0;
  while (i + 8 <= n) {
    key = v::SelectiveLoad(key, need, keys + i);
    pay = v::SelectiveLoad(pay, need, pays + i);
    i += __builtin_popcount(need);
    // fidx = need ? 0 : fidx.
    alignas(32) int32_t nl[8];
    for (int t = 0; t < 8; ++t) nl[t] = (need >> t) & 1 ? -1 : 0;
    __m256i need_v = _mm256_load_si256(reinterpret_cast<const __m256i*>(nl));
    fidx = _mm256_andnot_si256(need_v, fidx);
    __m256i factor = v::Gather(factor_table, fidx);
    __m256i b = v::MultHash(key, factor, nbits);
    __m256i word = v::Gather(words_.data(), _mm256_srli_epi32(b, 5));
    __m256i shifted = _mm256_srlv_epi32(word, _mm256_and_si256(b, mask31));
    __m256i bit = _mm256_and_si256(shifted, one);
    uint32_t pass = v::MoveMask(_mm256_cmpeq_epi32(bit, one));
    uint32_t last =
        v::MoveMask(_mm256_cmpeq_epi32(fidx, k_minus_1));
    uint32_t qualify = pass & last;
    if (qualify != 0) {
      v::SelectiveStore(out_keys + j, qualify, key);
      v::SelectiveStore(out_pays + j, qualify, pay);
      j += __builtin_popcount(qualify);
    }
    fidx = _mm256_add_epi32(fidx, one);
    need = (~pass | qualify) & 0xFF;
  }
  alignas(32) uint32_t lk[8], lv[8], lf[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lk), key);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lv), pay);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lf), fidx);
  for (int lane = 0; lane < 8; ++lane) {
    if (need & (1u << lane)) continue;
    bool ok = true;
    for (int fi = static_cast<int>(lf[lane]); fi < k_; ++fi) {
      uint32_t b = BitFor(lk[lane], fi);
      if ((words_[b >> 5] & (1u << (b & 31))) == 0) {
        ok = false;
        break;
      }
    }
    if (ok) {
      out_keys[j] = lk[lane];
      out_pays[j] = lv[lane];
      ++j;
    }
  }
  j += ProbeScalar(keys + i, pays + i, n - i, out_keys + j, out_pays + j);
  return j;
}

}  // namespace simddb
