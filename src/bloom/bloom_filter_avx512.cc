// AVX-512 vertically vectorized Bloom filter probing ([27], §6): one probe
// key per lane; a lane advances through the k hash functions while its bit
// tests pass, and is refilled from the input the moment a test fails or all
// k tests have passed (early abort preserved in vector form).

#include "bloom/bloom_filter.h"
#include "core/avx512_ops.h"

namespace simddb {

size_t BloomFilter::ProbeAvx512(const uint32_t* keys, const uint32_t* pays,
                                size_t n, uint32_t* out_keys,
                                uint32_t* out_pays) const {
  namespace v = simddb::avx512;
  const __m512i nbits = _mm512_set1_epi32(static_cast<int>(n_bits_));
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i k_minus_1 = _mm512_set1_epi32(k_ - 1);
  const __m512i mask31 = _mm512_set1_epi32(31);
  alignas(64) uint32_t factor_table[kMaxFunctions];
  for (int i = 0; i < kMaxFunctions; ++i) factor_table[i] = factors_[i];

  __m512i key = _mm512_setzero_si512();
  __m512i pay = _mm512_setzero_si512();
  __m512i fidx = _mm512_setzero_si512();
  __mmask16 need = 0xFFFF;
  size_t i = 0;
  size_t j = 0;
  while (i + 16 <= n) {
    key = v::SelectiveLoad(key, need, keys + i);
    pay = v::SelectiveLoad(pay, need, pays + i);
    i += __builtin_popcount(need);
    fidx = _mm512_maskz_mov_epi32(static_cast<__mmask16>(~need), fidx);
    // Per-lane factor lookup, then the bit index for this (key, function).
    __m512i factor = v::Gather(factor_table, fidx);
    __m512i b = v::MultHash(key, factor, nbits);
    __m512i word = v::Gather(words_.data(), _mm512_srli_epi32(b, 5));
    __m512i shifted = _mm512_srlv_epi32(word, _mm512_and_si512(b, mask31));
    __mmask16 pass = _mm512_test_epi32_mask(shifted, one);
    __mmask16 qualify =
        _mm512_mask_cmpeq_epi32_mask(pass, fidx, k_minus_1);
    if (qualify != 0) {
      v::SelectiveStore(out_keys + j, qualify, key);
      v::SelectiveStore(out_pays + j, qualify, pay);
      j += __builtin_popcount(qualify);
    }
    fidx = _mm512_add_epi32(fidx, one);
    // Reload lanes that failed a test or just emitted a qualifier.
    need = static_cast<__mmask16>(~pass | qualify);
  }
  // Drain in-flight lanes: each has passed tests [0, fidx) already.
  alignas(64) uint32_t lk[16], lv[16], lf[16];
  _mm512_store_si512(lk, key);
  _mm512_store_si512(lv, pay);
  _mm512_store_si512(lf, fidx);
  for (int lane = 0; lane < 16; ++lane) {
    if (need & (1u << lane)) continue;
    bool ok = true;
    for (int fi = static_cast<int>(lf[lane]); fi < k_; ++fi) {
      uint32_t b = BitFor(lk[lane], fi);
      if ((words_[b >> 5] & (1u << (b & 31))) == 0) {
        ok = false;
        break;
      }
    }
    if (ok) {
      out_keys[j] = lk[lane];
      out_pays[j] = lv[lane];
      ++j;
    }
  }
  j += ProbeScalar(keys + i, pays + i, n - i, out_keys + j, out_pays + j);
  return j;
}

}  // namespace simddb
