#ifndef SIMDDB_UTIL_CPU_INFO_H_
#define SIMDDB_UTIL_CPU_INFO_H_

#include <cstddef>
#include <string>

namespace simddb {

/// Static description of the host CPU's SIMD capabilities and cache
/// hierarchy, discovered once via CPUID / sysconf. Used for backend dispatch
/// and to print the platform table (Table 1 of the paper).
struct CpuInfo {
  bool avx2 = false;
  bool avx512f = false;
  bool avx512cd = false;  ///< vpconflictd — the paper's "AVX 3" anticipation.
  bool avx512dq = false;
  bool avx512bw = false;
  bool avx512vl = false;
  bool avx512vpopcntdq = false;

  size_t l1d_bytes = 32 * 1024;
  size_t l2_bytes = 256 * 1024;
  size_t l3_bytes = 0;

  /// Data-TLB geometry for 4K pages, 0 = not reported by CPUID. Intel:
  /// leaf 0x18 deterministic address-translation subleaves; AMD: leaves
  /// 0x80000005/0x80000006. The partition planner derives its open-page
  /// budget (PartitionBudget::tlb_partitions) from the second-level TLB.
  size_t l1_dtlb_4k_entries = 0;
  size_t stlb_4k_entries = 0;

  int logical_cores = 1;
  std::string model_name;

  /// True when the full AVX-512 feature set simddb's 512-bit backend needs
  /// (F, CD, DQ, BW, VL) is available.
  bool HasAvx512() const {
    return avx512f && avx512cd && avx512dq && avx512bw && avx512vl;
  }
};

/// Returns the lazily-initialized singleton CpuInfo for this host (or the
/// test override installed via SetCpuCapsForTesting).
const CpuInfo& GetCpuInfo();

/// Test hook: overrides GetCpuInfo's result until called again. Pass nullptr
/// to restore real detection. `info` must outlive the override (tests keep a
/// static/stack instance alive across the scope). Not for production use —
/// concurrent queries observing a cap change mid-plan is undefined.
void SetCpuCapsForTesting(const CpuInfo* info);

}  // namespace simddb

#endif  // SIMDDB_UTIL_CPU_INFO_H_
