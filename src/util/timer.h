#ifndef SIMDDB_UTIL_TIMER_H_
#define SIMDDB_UTIL_TIMER_H_

#include <chrono>

namespace simddb {

/// Simple wall-clock stopwatch used by examples and by the per-phase time
/// breakdowns that the join/sort operators report.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace simddb

#endif  // SIMDDB_UTIL_TIMER_H_
