#ifndef SIMDDB_UTIL_TASK_POOL_H_
#define SIMDDB_UTIL_TASK_POOL_H_

// Morsel-driven persistent worker pool (§8 multi-core execution substrate).
//
// The paper's multi-core results (Fig. 16) only need a fork-join team, but a
// production execution engine invokes parallel operators thousands of times
// per second; spawning std::threads per call puts ~50-100 µs of kernel work
// on every hot path, and static contiguous chunking leaves threads idle
// behind the slowest chunk on skewed inputs. This pool fixes both:
//
//   - process-lifetime workers, lazily spawned on first parallel call and
//     reused for every subsequent operator invocation;
//   - work is split into fixed-size *morsels* (kMorselTuples = 16384 tuples,
//     a multiple of 16 so the buffered-shuffle streaming-flush contract of
//     shuffle.h holds at every morsel boundary);
//   - each participating lane owns a deque of morsel indices (represented as
//     a packed atomic [begin,end) range); owners pop from the front (cache
//     locality: consecutive morsels), thieves steal half from the back;
//   - the morsel *layout* — not the lane that happens to execute a morsel —
//     determines where output lands, so operators that interleave per-morsel
//     histogram rows with InterleavedPrefixSum produce byte-identical output
//     for every worker count and every steal schedule (see
//     partition/parallel_partition.h).
//
// Single-threaded fast path: ParallelFor/ParallelPhases with max_workers <= 1
// (or a single task, or a nested call from inside a worker) run inline on the
// caller with no locking, so cfg.threads = 1 costs the same as a plain loop.
//
// SIMDDB_THREADS (environment) caps how many workers the pool will ever
// spawn. Requests beyond the cap are clamped; requests beyond the hardware
// thread count are honoured up to the cap (deliberate oversubscription — the
// Fig. 16 reproduction sweeps 1..8 threads on any host, see DESIGN.md).
//
// NUMA (numa/topology.h): every dispatch snapshots the topology and maps
// lanes to nodes in contiguous blocks (lane l -> node l*N/L), matching the
// contiguous initial task split so each node's lanes own a contiguous
// morsel range. Stealing is hierarchical — a dry lane scans its own node's
// victims first and crosses the node boundary only when the whole local
// node is dry (StealScope::kNodeStrict forbids even that). On real
// multi-node topologies workers additionally pin themselves to their
// node's cpuset per job (SIMDDB_NUMA_PIN=0 disables; the submitting thread
// — lane 0 — is never pinned). Single-node and fake topologies skip
// pinning, so behaviour there is unchanged from the pre-NUMA pool apart
// from the victim scan order, which never affects results: output layout
// depends only on the morsel grid, not the steal schedule.

// Inter-query scheduling (src/server/): a query registers a *tag*
// (RegisterQueryTag) and scopes its submitting thread with QueryTagScope;
// every ParallelFor/ParallelPhases submitted under the scope then passes a
// weighted-fair gate. Tagged ranges are sliced into kFairQuantumTasks-sized
// quanta whenever more than one query is in flight, and the gate admits the
// waiting tag with the smallest weighted virtual time first — so a burst of
// large scans cannot starve a small aggregate: the small query's vtime stays
// minimal and it wins the next quantum boundary. Slicing never changes
// results (output layout depends only on the task grid, and quanta cover the
// range in order), it only bounds how long one query can monopolize the
// workers. AbortQueryTag marks a tag dead: its queued-but-unstarted quanta
// drain cleanly — the next quantum boundary throws QueryAborted instead of
// dispatching — while already-running morsels finish normally. Per-tag
// drained-morsel counts (QueryTagMorsels) are exact, including the inline
// single-lane path, which is what the server's no-starvation gate checks.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace simddb {

namespace obs {
class QueryMetricSink;
}  // namespace obs

/// Thrown from a tagged ParallelFor/ParallelPhases when the tag was aborted
/// (admission-rejected, failed, or cancelled query): the remaining quanta
/// are never dispatched and the submitting thread unwinds here.
struct QueryAborted {
  uint64_t tag;
};

/// Scheduling granule, in tuples. A multiple of 16 (shuffle flush contract);
/// ~16K tuples keeps per-morsel scratch L1/L2-resident while amortizing the
/// per-morsel scheduling cost to < 0.1%.
inline constexpr size_t kMorselTuples = 16384;

/// Morsel size for passes that carry per-morsel scratch (buffered shuffle
/// slots, histogram rows): the 16K base granule, grown so the morsel count
/// never exceeds max_morsels and per-morsel scratch stays bounded on huge
/// inputs. Stays a multiple of 16 and depends only on n, so layouts built
/// on this grid remain deterministic across worker counts.
inline constexpr size_t kMaxMorselsPerPass = 512;
inline size_t BoundedMorselSize(size_t n, size_t max_morsels = kMaxMorselsPerPass) {
  size_t morsel = kMorselTuples;
  if (n > morsel * max_morsels) {
    morsel = (n + max_morsels - 1) / max_morsels;
    morsel = (morsel + 15) & ~size_t{15};
  }
  return morsel;
}

/// Cross-node work-stealing policy. kHierarchical (default): a dry lane
/// steals within its node first and crosses nodes only when every local
/// victim is dry. kNodeStrict: morsels never migrate across nodes — idle
/// nodes finish early instead of generating remote traffic; used by
/// placement-sensitive passes and the NUMA bench to guarantee zero remote
/// steals. Irrelevant (single ring) on single-node topologies.
enum class StealScope { kHierarchical, kNodeStrict };

/// Process steal scope: SIMDDB_NUMA_STEAL=strict selects kNodeStrict,
/// anything else (or unset) kHierarchical. Settable at runtime (benches,
/// tests); takes effect at the next dispatch.
StealScope GetStealScope();
void SetStealScope(StealScope scope);

/// Reusable sense-reversing barrier for multi-phase parallel operators
/// (histogram -> prefix sum -> shuffle, build -> probe). Safe to reuse for
/// any number of phases by the same set of `parties` threads.
class PhaseBarrier {
 public:
  explicit PhaseBarrier(int parties)
      : parties_(parties), waiting_(0), sense_(false) {}

  /// Blocks until all `parties` threads have arrived. Time spent blocked is
  /// accumulated into the `barrier_wait_ns` metric when metrics are on.
  void Wait();

  int parties() const { return parties_; }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int parties_;
  int waiting_;
  bool sense_;
};

/// Fixed decomposition of [0, n) into kMorselTuples-sized morsels. The grid
/// depends only on n, never on the worker count, which is what makes
/// dynamically-scheduled partition passes deterministic.
struct MorselGrid {
  size_t n;
  size_t morsel;

  explicit MorselGrid(size_t n_, size_t morsel_ = kMorselTuples)
      : n(n_), morsel(morsel_ == 0 ? kMorselTuples : morsel_) {}

  /// Number of morsels (>= 1 iff n > 0).
  size_t count() const { return n == 0 ? 0 : (n + morsel - 1) / morsel; }
  size_t begin(size_t m) const { return m * morsel; }
  size_t end(size_t m) const {
    size_t e = (m + 1) * morsel;
    return e < n ? e : n;
  }
  size_t size(size_t m) const { return end(m) - begin(m); }
};

/// Process-lifetime, work-stealing worker pool. One instance per process
/// (TaskPool::Get()); all parallel operators share its workers.
class TaskPool {
 public:
  /// The singleton pool. First call does not spawn anything; workers are
  /// created on demand by the first parallel call that needs them.
  static TaskPool& Get();

  /// Worker cap: SIMDDB_THREADS if set (>=1), else a generous default that
  /// allows the oversubscription sweeps (max(hardware_concurrency, 64)).
  static int MaxWorkers();

  /// Largest task count one pool dispatch can represent: lane deques pack
  /// [begin,end) task indices into 32 bits each. ParallelFor transparently
  /// splits larger ranges into sequential sub-dispatches of at most this
  /// many tasks, so any size_t range is safe in every build mode (the old
  /// assert-only guard silently wrapped indices under NDEBUG).
  static constexpr size_t kMaxTasksPerDispatch = size_t{0xFFFF0000};

  /// Runs fn(worker, task) exactly once for every task in [0, n_tasks).
  /// At most max_workers lanes run concurrently (the caller is lane 0 and
  /// always participates; worker ids are in [0, max_workers)). Tasks are
  /// distributed over per-lane deques and rebalanced by stealing, so lanes
  /// that finish early take over tasks of slower lanes. Blocks until every
  /// task completed. Runs inline when max_workers <= 1, n_tasks <= 1, or
  /// when called from inside a pool worker (no nested parallelism). Ranges
  /// beyond kMaxTasksPerDispatch are split (see ParallelForChunked).
  void ParallelFor(size_t n_tasks, int max_workers,
                   const std::function<void(int worker, size_t task)>& fn);

  /// ParallelFor over [0, n_tasks) split into sequential sub-dispatches of
  /// at most max_tasks_per_dispatch tasks (clamped to [1,
  /// kMaxTasksPerDispatch]); each sub-dispatch joins before the next one
  /// starts. ParallelFor delegates here for oversized ranges; exposed so
  /// the splitting path is testable without dispatching 2^32 real tasks.
  void ParallelForChunked(
      size_t n_tasks, size_t max_tasks_per_dispatch, int max_workers,
      const std::function<void(int worker, size_t task)>& fn);

  /// Runs fn(lane, n_lanes, barrier) once per lane with n_lanes =
  /// min(max_workers, MaxWorkers()) lanes running *concurrently* (the
  /// barrier is sized to n_lanes, so every lane must call barrier.Wait()
  /// the same number of times). Use for operators whose phases share state
  /// produced by all lanes (e.g. build -> probe). Runs inline with
  /// n_lanes = 1 when max_workers <= 1 or when nested inside a worker.
  void ParallelPhases(
      int max_workers,
      const std::function<void(int lane, int n_lanes, PhaseBarrier& barrier)>&
          fn);

  /// Number of lanes ParallelFor(n_tasks, max_workers) will actually use
  /// (after clamping to the task count and the worker cap). Operators use
  /// this to size per-lane scratch before dispatching.
  static int LaneCount(size_t n_tasks, int max_workers);

  /// Number of workers currently spawned (grows on demand; test hook).
  int SpawnedWorkers();

  // --- Inter-query fair scheduling (see file comment) ---

  /// Tasks per fair-gate quantum when several queries are in flight. Small
  /// enough that a waiting query runs within one quantum of dispatch work,
  /// large enough that the extra dispatches stay amortized (a quantum is
  /// >= 32 chunks of >= 1K tuples on the default executor grid).
  static constexpr size_t kFairQuantumTasks = 32;

  /// Registers an in-flight query with the fair gate and returns its tag.
  /// weight >= 1: a query's virtual time advances by tasks/weight, so a
  /// weight-2 query receives ~2x the morsel throughput of a weight-1 query
  /// under contention.
  uint64_t RegisterQueryTag(uint64_t weight = 1);

  /// Removes the tag; its counters are dropped (read QueryTagMorsels before
  /// unregistering).
  void UnregisterQueryTag(uint64_t tag);

  /// Marks the tag aborted: waiting and future quantum acquisitions under
  /// it throw QueryAborted; quanta already dispatched run to completion.
  void AbortQueryTag(uint64_t tag);

  /// Tasks drained so far under the tag (pooled and inline dispatches).
  uint64_t QueryTagMorsels(uint64_t tag);

  /// Registered (in-flight) query tags; test/introspection hook.
  size_t RegisteredQueryTags();

  /// RAII: tags every parallel call the current thread submits during the
  /// scope's lifetime. Nests by restoring the previous tag on exit.
  class QueryTagScope {
   public:
    explicit QueryTagScope(uint64_t tag);
    ~QueryTagScope();

    QueryTagScope(const QueryTagScope&) = delete;
    QueryTagScope& operator=(const QueryTagScope&) = delete;

   private:
    uint64_t prev_;
  };

  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

 private:
  TaskPool() = default;

  struct Lane {
    /// Packed deque of task indices: high 32 bits = begin, low 32 = end.
    /// Owner pops the front (begin++), thieves CAS half off the back.
    alignas(64) std::atomic<uint64_t> range{0};
  };

  void EnsureWorkers(int needed);  // callers hold jobs_mu_
  void DispatchFor(size_t n_tasks, int max_workers,
                   const std::function<void(int worker, size_t task)>& fn);
  void DispatchPhases(
      int lanes,
      const std::function<void(int lane, int n_lanes, PhaseBarrier& barrier)>&
          fn);
  void WorkerLoop(int self);

  // Fair-gate internals (fair_mu_). AcquireQuantum blocks until the tag is
  // the best (lowest-vtime) waiter and no quantum is active, then grants a
  // task budget; ReleaseQuantum credits the drained tasks and wakes the
  // next waiter. Both throw QueryAborted once the tag is aborted.
  void FairParallelFor(uint64_t tag, size_t n_tasks, int max_workers,
                       const std::function<void(int worker, size_t task)>& fn);
  size_t AcquireQuantum(uint64_t tag, size_t remaining);
  void ReleaseQuantum(uint64_t tag, size_t tasks);
  void CreditTag(uint64_t tag, size_t tasks);  // inline-path accounting
  void ThrowIfTagAborted(uint64_t tag);
  uint64_t BestWaitingTag() const;  // callers hold fair_mu_
  // n_nodes/strict are the job's topology snapshot (clamped to n_lanes);
  // passed by value so lanes never re-read shared job state mid-run.
  void RunLane(int lane, int n_lanes, int n_nodes, bool strict,
               const std::function<void(int, size_t)>& fn);
  bool PopOrSteal(int lane, int n_lanes, int n_nodes, bool strict,
                  size_t* task);

  // Serializes job submission: one parallel job at a time owns the workers.
  std::mutex jobs_mu_;

  // Job dispatch state (guarded by mu_).
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  int job_lanes_ = 0;          // lanes participating in the current job
  int lanes_remaining_ = 0;    // participating lanes not yet finished
  int job_n_nodes_ = 1;        // topology nodes mapped onto this job's lanes
  bool job_strict_ = false;    // StealScope::kNodeStrict for this job
  bool job_pin_ = false;       // pin workers to their lane's node cpuset
  bool shutdown_ = false;

  // Current job payload (set before epoch_ bump, read by participants).
  const std::function<void(int, size_t)>* for_fn_ = nullptr;
  const std::function<void(int, int, PhaseBarrier&)>* phase_fn_ = nullptr;
  PhaseBarrier* barrier_ = nullptr;
  // Submitting thread's per-query attribution sink, extended to the worker
  // lanes of this job (obs::ScopedMetricSink in WorkerLoop).
  obs::QueryMetricSink* job_sink_ = nullptr;
  std::unique_ptr<Lane[]> lanes_;  // MaxWorkers() entries, allocated lazily

  std::vector<std::thread> workers_;

  // Fair-gate state (guarded by fair_mu_, independent of the dispatch
  // locks: a quantum holder runs its dispatch without holding fair_mu_).
  struct TagState {
    uint64_t weight = 1;
    uint64_t vtime = 0;    // accumulated tasks * kVtimeScale / weight
    uint64_t morsels = 0;  // tasks drained under this tag
    bool waiting = false;  // parked in AcquireQuantum
    bool aborted = false;
  };
  static constexpr uint64_t kVtimeScale = 1024;
  std::mutex fair_mu_;
  std::condition_variable fair_cv_;
  std::map<uint64_t, TagState> tags_;
  uint64_t next_query_tag_ = 1;
  uint64_t fair_busy_tag_ = 0;  // tag holding the quantum slot (0 = none)
  bool fair_shutdown_ = false;
};

}  // namespace simddb

#endif  // SIMDDB_UTIL_TASK_POOL_H_
