#ifndef SIMDDB_UTIL_SANITIZER_H_
#define SIMDDB_UTIL_SANITIZER_H_

// Sanitizer annotations. The buffered-shuffle protocol (shuffle.h) writes
// streaming flushes at 16-tuple-aligned output positions, which can
// momentarily clobber up to 15 tuples just before a partition-subrange
// start that belong to the *previous* morsel's still-buffered tail. Those
// positions are rewritten by the post-barrier cleanup pass, so the final
// contents are deterministic — but while the Main phase runs, two threads
// can write the same cache line without ordering. That is a by-design
// benign race (App. F: "fix the first cache line of each partition after
// synchronizing"); the annotation below exempts exactly the Main-phase
// shuffle kernels from TSan instrumentation so `SIMDDB_SANITIZE=thread`
// stays useful for finding real races elsewhere.

#if defined(__SANITIZE_THREAD__)
#define SIMDDB_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SIMDDB_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#else
#define SIMDDB_NO_SANITIZE_THREAD
#endif
#else
#define SIMDDB_NO_SANITIZE_THREAD
#endif

#endif  // SIMDDB_UTIL_SANITIZER_H_
