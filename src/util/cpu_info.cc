#include "util/cpu_info.h"

#include <cpuid.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <thread>

namespace simddb {
namespace {

CpuInfo Detect() {
  CpuInfo info;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    info.avx2 = (ebx >> 5) & 1;
    info.avx512f = (ebx >> 16) & 1;
    info.avx512dq = (ebx >> 17) & 1;
    info.avx512cd = (ebx >> 28) & 1;
    info.avx512bw = (ebx >> 30) & 1;
    info.avx512vl = (ebx >> 31) & 1;
    info.avx512vpopcntdq = (ecx >> 14) & 1;
  }

  long l1 = sysconf(_SC_LEVEL1_DCACHE_SIZE);
  long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
  long l3 = sysconf(_SC_LEVEL3_CACHE_SIZE);
  if (l1 > 0) info.l1d_bytes = static_cast<size_t>(l1);
  if (l2 > 0) info.l2_bytes = static_cast<size_t>(l2);
  if (l3 > 0) info.l3_bytes = static_cast<size_t>(l3);
  info.logical_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  if (info.logical_cores == 0) info.logical_cores = 1;

  // Brand string via CPUID leaves 0x80000002..4.
  unsigned int brand[12] = {0};
  unsigned int max_ext = __get_cpuid_max(0x80000000, nullptr);
  if (max_ext >= 0x80000004) {
    for (unsigned int i = 0; i < 3; ++i) {
      __get_cpuid(0x80000002 + i, &brand[i * 4], &brand[i * 4 + 1],
                  &brand[i * 4 + 2], &brand[i * 4 + 3]);
    }
    char name[sizeof(brand) + 1];
    std::memcpy(name, brand, sizeof(brand));
    name[sizeof(brand)] = '\0';
    info.model_name = name;
  }
  return info;
}

}  // namespace

const CpuInfo& GetCpuInfo() {
  static const CpuInfo* const kInfo = new CpuInfo(Detect());
  return *kInfo;
}

}  // namespace simddb
