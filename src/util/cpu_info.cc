#include "util/cpu_info.h"

#include <cpuid.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

namespace simddb {
namespace {

CpuInfo Detect() {
  CpuInfo info;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    info.avx2 = (ebx >> 5) & 1;
    info.avx512f = (ebx >> 16) & 1;
    info.avx512dq = (ebx >> 17) & 1;
    info.avx512cd = (ebx >> 28) & 1;
    info.avx512bw = (ebx >> 30) & 1;
    info.avx512vl = (ebx >> 31) & 1;
    info.avx512vpopcntdq = (ecx >> 14) & 1;
  }

  long l1 = sysconf(_SC_LEVEL1_DCACHE_SIZE);
  long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
  long l3 = sysconf(_SC_LEVEL3_CACHE_SIZE);
  if (l1 > 0) info.l1d_bytes = static_cast<size_t>(l1);
  if (l2 > 0) info.l2_bytes = static_cast<size_t>(l2);
  if (l3 > 0) info.l3_bytes = static_cast<size_t>(l3);
  info.logical_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  if (info.logical_cores == 0) info.logical_cores = 1;

  // Data-TLB geometry. Intel reports it via leaf 0x18's deterministic
  // address-translation subleaves: EDX[4:0] = translation type (1 = data,
  // 3 = unified), EDX[7:5] = level, EBX bit 0 = 4K-page support,
  // EBX[31:16] = ways, ECX = sets.
  unsigned int max_leaf = __get_cpuid_max(0, nullptr);
  if (max_leaf >= 0x18) {
    unsigned int sub0_eax = 0;
    if (__get_cpuid_count(0x18, 0, &sub0_eax, &ebx, &ecx, &edx)) {
      const unsigned int max_sub = sub0_eax;
      for (unsigned int sub = 0; sub <= max_sub && sub <= 64; ++sub) {
        if (!__get_cpuid_count(0x18, sub, &eax, &ebx, &ecx, &edx)) break;
        const unsigned int type = edx & 0x1F;
        const unsigned int level = (edx >> 5) & 0x7;
        if (type != 1 && type != 3) continue;  // data or unified only
        if ((ebx & 1) == 0) continue;          // must cover 4K pages
        const size_t entries =
            static_cast<size_t>((ebx >> 16) & 0xFFFF) * ecx;
        if (entries == 0) continue;
        if (level == 1 && type == 1) {
          if (entries > info.l1_dtlb_4k_entries) {
            info.l1_dtlb_4k_entries = entries;
          }
        } else if (level >= 2) {
          if (entries > info.stlb_4k_entries) info.stlb_4k_entries = entries;
        }
      }
    }
  }

  // Brand string via CPUID leaves 0x80000002..4.
  unsigned int brand[12] = {0};
  unsigned int max_ext = __get_cpuid_max(0x80000000, nullptr);
  if (max_ext >= 0x80000004) {
    for (unsigned int i = 0; i < 3; ++i) {
      __get_cpuid(0x80000002 + i, &brand[i * 4], &brand[i * 4 + 1],
                  &brand[i * 4 + 2], &brand[i * 4 + 3]);
    }
    char name[sizeof(brand) + 1];
    std::memcpy(name, brand, sizeof(brand));
    name[sizeof(brand)] = '\0';
    info.model_name = name;
  }

  // AMD reports TLBs in the extended leaves (these return zeros on Intel):
  // 0x80000005 EBX[23:16] = L1 data TLB 4K entries, 0x80000006
  // EBX[27:16] = L2 data TLB 4K entries (EBX[31:28] = associativity, 0
  // meaning the L2 TLB is disabled).
  if (max_ext >= 0x80000006) {
    if (__get_cpuid(0x80000005, &eax, &ebx, &ecx, &edx)) {
      const size_t l1d_tlb = (ebx >> 16) & 0xFF;
      if (info.l1_dtlb_4k_entries == 0 && l1d_tlb != 0) {
        info.l1_dtlb_4k_entries = l1d_tlb;
      }
    }
    if (__get_cpuid(0x80000006, &eax, &ebx, &ecx, &edx)) {
      const size_t l2d_tlb = (ebx >> 16) & 0xFFF;
      const unsigned int assoc = (ebx >> 28) & 0xF;
      if (info.stlb_4k_entries == 0 && l2d_tlb != 0 && assoc != 0) {
        info.stlb_4k_entries = l2d_tlb;
      }
    }
  }
  return info;
}

}  // namespace

namespace {
std::atomic<const CpuInfo*> g_caps_override{nullptr};
}  // namespace

const CpuInfo& GetCpuInfo() {
  const CpuInfo* override_info =
      g_caps_override.load(std::memory_order_acquire);
  if (override_info != nullptr) return *override_info;
  static const CpuInfo* const kInfo = new CpuInfo(Detect());
  return *kInfo;
}

void SetCpuCapsForTesting(const CpuInfo* info) {
  g_caps_override.store(info, std::memory_order_release);
}

}  // namespace simddb
