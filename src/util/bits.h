#ifndef SIMDDB_UTIL_BITS_H_
#define SIMDDB_UTIL_BITS_H_

#include <cstdint>

namespace simddb {

/// Returns floor(log2(x)) for x > 0.
constexpr uint32_t Log2Floor(uint64_t x) {
  uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Returns ceil(log2(x)) for x > 0.
constexpr uint32_t Log2Ceil(uint64_t x) {
  return x <= 1 ? 0 : Log2Floor(x - 1) + 1;
}

/// Returns true if x is a power of two (x > 0).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Rounds x up to the next multiple of `multiple` (a power of two).
constexpr uint64_t RoundUp(uint64_t x, uint64_t multiple) {
  return (x + multiple - 1) & ~(multiple - 1);
}

/// Rounds x up to the next power of two (x > 0).
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  return x <= 1 ? 1 : uint64_t{1} << Log2Ceil(x);
}

/// Population count for 16-bit masks used by the 512-bit (16-lane) kernels.
constexpr uint32_t PopCount16(uint32_t m) { return __builtin_popcount(m & 0xFFFF); }

}  // namespace simddb

#endif  // SIMDDB_UTIL_BITS_H_
