#ifndef SIMDDB_UTIL_ALLOC_H_
#define SIMDDB_UTIL_ALLOC_H_

// Aligned raw allocation for operator buffers.
//
// Every output array a kernel streams into must start on a 64-byte boundary
// for the non-temporal store path to engage at full width; this header is
// the single place that guarantees it. On Linux, callers can additionally
// opt into transparent huge pages (SIMDDB_HUGEPAGES=1 in the environment,
// or `try_huge = true` at the call site): allocations of at least one huge
// page are then 2 MB-aligned, rounded up to a 2 MB multiple, and advised
// with MADV_HUGEPAGE — the form the kernel's `madvise` THP mode requires
// before it will back a range with huge pages. Smaller allocations and
// non-Linux builds silently keep the plain 64-byte-aligned path.
//
// Memory from AlignedAlloc is released with AlignedFree (plain free today;
// the pair keeps call sites correct if the implementation ever moves to
// mmap).

#include <cstddef>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace simddb {

inline constexpr size_t kCacheLineBytes = 64;
inline constexpr size_t kHugePageBytes = size_t{2} << 20;

/// Host base-page size (cached after the first call). The NUMA placement
/// helpers (numa/placement.h) fault and bind memory at this granularity —
/// first touch decides a page's node, so it is the placement quantum.
inline size_t PageBytes() {
  static const size_t page = [] {
#if defined(__linux__)
    long v = sysconf(_SC_PAGESIZE);
    if (v > 0) return static_cast<size_t>(v);
#endif
    return size_t{4096};
  }();
  return page;
}

/// True when SIMDDB_HUGEPAGES=1 (or any non-"0" value) is set: AlignedBuffer
/// and other default call sites then request huge-page backing for large
/// allocations.
inline bool HugePagesRequested() {
  static const bool on = [] {
    const char* env = std::getenv("SIMDDB_HUGEPAGES");
    return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  }();
  return on;
}

/// Allocates `bytes` rounded up to a multiple of `alignment` (which must be
/// a power of two >= 64). With try_huge, allocations of at least one huge
/// page are 2 MB-aligned and advised MADV_HUGEPAGE on Linux.
inline void* AlignedAlloc(size_t bytes, size_t alignment = kCacheLineBytes,
                          bool try_huge = false) {
  if (bytes == 0) return nullptr;
#if defined(__linux__)
  if (try_huge && bytes >= kHugePageBytes) {
    size_t rounded = (bytes + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
    void* p = std::aligned_alloc(kHugePageBytes, rounded);
    if (p != nullptr) {
      madvise(p, rounded, MADV_HUGEPAGE);
      return p;
    }
    // Fall through to the plain path on failure.
  }
#else
  (void)try_huge;
#endif
  size_t rounded = (bytes + alignment - 1) & ~(alignment - 1);
  return std::aligned_alloc(alignment, rounded);
}

inline void AlignedFree(void* p) { std::free(p); }

}  // namespace simddb

#endif  // SIMDDB_UTIL_ALLOC_H_
