#include "util/task_pool.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "numa/topology.h"
#include "obs/metrics.h"

namespace simddb {
namespace {

// Scheduler metrics (obs/metrics.h). Sharded per worker; zero-cost when
// metrics are disabled beyond one relaxed load per event, and every event
// amortizes over >= one morsel of work.
obs::Counter g_steals("steals");            // successful back-half steals
obs::Counter g_steals_local("steals_local");    // victim on the same node
obs::Counter g_steals_remote("steals_remote");  // victim on another node
obs::Counter g_stolen_tasks("stolen_tasks");  // tasks migrated by steals
obs::Counter g_morsels("morsels");          // tasks executed via ParallelFor
obs::Counter g_inline_runs("inline_runs");  // jobs run inline on the caller
obs::Counter g_dispatches("dispatches");    // pooled job dispatches
obs::Counter g_range_splits("range_splits");  // oversized-range sub-dispatches
obs::Counter g_barrier_wait_ns("barrier_wait_ns");

// True while the current thread is executing inside a pool job (workers
// always; the submitting thread while it runs its own lane). Nested parallel
// calls from such a thread run inline: the pool is a flat resource, and
// blocking a worker on a sub-job could deadlock the outer one.
thread_local bool tls_in_pool_job = false;

struct InJobScope {
  InJobScope() { tls_in_pool_job = true; }
  ~InJobScope() { tls_in_pool_job = false; }
};

constexpr uint64_t PackRange(uint32_t begin, uint32_t end) {
  return (static_cast<uint64_t>(begin) << 32) | end;
}
constexpr uint32_t RangeBegin(uint64_t r) {
  return static_cast<uint32_t>(r >> 32);
}
constexpr uint32_t RangeEnd(uint64_t r) { return static_cast<uint32_t>(r); }

// Process steal scope. -1 = not yet initialized from SIMDDB_NUMA_STEAL.
std::atomic<int> g_steal_scope{-1};

}  // namespace

StealScope GetStealScope() {
  int v = g_steal_scope.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("SIMDDB_NUMA_STEAL");
    v = (env != nullptr && std::strcmp(env, "strict") == 0)
            ? static_cast<int>(StealScope::kNodeStrict)
            : static_cast<int>(StealScope::kHierarchical);
    g_steal_scope.store(v, std::memory_order_relaxed);
  }
  return static_cast<StealScope>(v);
}

void SetStealScope(StealScope scope) {
  g_steal_scope.store(static_cast<int>(scope), std::memory_order_relaxed);
}

void PhaseBarrier::Wait() {
  const bool timed = obs::MetricsEnabled();
  const uint64_t t0 = timed ? obs::NowNs() : 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    bool my_sense = sense_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      sense_ = !sense_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return sense_ != my_sense; });
    }
  }
  if (timed) g_barrier_wait_ns.AddAlways(obs::NowNs() - t0);
}

TaskPool& TaskPool::Get() {
  static TaskPool pool;
  return pool;
}

int TaskPool::MaxWorkers() {
  static const int cap = [] {
    if (const char* env = std::getenv("SIMDDB_THREADS")) {
      int v = std::atoi(env);
      if (v >= 1) return v;
    }
    // No explicit cap: allow deliberate oversubscription (the Fig. 16
    // reproduction sweeps thread counts past the core count on any host).
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    return hw > 64 ? hw : 64;
  }();
  return cap;
}

int TaskPool::LaneCount(size_t n_tasks, int max_workers) {
  int lanes = max_workers < MaxWorkers() ? max_workers : MaxWorkers();
  if (static_cast<size_t>(lanes) > n_tasks) {
    lanes = static_cast<int>(n_tasks);
  }
  return lanes < 1 ? 1 : lanes;
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void TaskPool::EnsureWorkers(int needed) {
  if (lanes_ == nullptr) {
    lanes_ = std::make_unique<Lane[]>(static_cast<size_t>(MaxWorkers()));
  }
  while (static_cast<int>(workers_.size()) < needed) {
    int self = static_cast<int>(workers_.size());
    workers_.emplace_back([this, self] { WorkerLoop(self); });
  }
}

int TaskPool::SpawnedWorkers() {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return static_cast<int>(workers_.size());
}

bool TaskPool::PopOrSteal(int lane, int n_lanes, int n_nodes, bool strict,
                          size_t* task) {
  // Fast path: pop the front of the own deque — consecutive morsels, so a
  // lane that keeps its initial range streams through contiguous input.
  Lane& mine = lanes_[lane];
  uint64_t r = mine.range.load(std::memory_order_relaxed);
  while (RangeBegin(r) < RangeEnd(r)) {
    if (mine.range.compare_exchange_weak(
            r, PackRange(RangeBegin(r) + 1, RangeEnd(r)),
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      *task = RangeBegin(r);
      return true;
    }
  }
  // Own deque drained: steal the back half of the first non-empty victim.
  // The stolen tasks (minus the one returned) become the new own deque.
  // With a multi-node lane map the scan is hierarchical: pass 0 visits
  // only same-node victims (the per-node steal ring), pass 1 — skipped
  // under StealScope::kNodeStrict — crosses nodes once the whole local
  // node is dry. Which lane executes a task never affects output (the
  // morsel grid fixes the layout), so the scan order is pure policy.
  const int my_node =
      n_nodes > 1 ? numa::NodeOfLane(lane, n_lanes, n_nodes) : 0;
  const int n_passes = n_nodes > 1 ? (strict ? 1 : 2) : 1;
  for (int pass = 0; pass < n_passes; ++pass) {
    const bool want_local = pass == 0;
    for (int i = 1; i < n_lanes; ++i) {
      const int v = (lane + i) % n_lanes;
      if (n_nodes > 1 &&
          (numa::NodeOfLane(v, n_lanes, n_nodes) == my_node) != want_local) {
        continue;
      }
      Lane& victim = lanes_[v];
      uint64_t vr = victim.range.load(std::memory_order_acquire);
      while (RangeBegin(vr) < RangeEnd(vr)) {
        uint32_t vb = RangeBegin(vr);
        uint32_t ve = RangeEnd(vr);
        uint32_t take = (ve - vb + 1) / 2;
        uint32_t split = ve - take;
        if (victim.range.compare_exchange_weak(vr, PackRange(vb, split),
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
          if (take > 1) {
            mine.range.store(PackRange(split + 1, ve),
                             std::memory_order_release);
          }
          if (obs::MetricsEnabled()) {
            g_steals.AddAlways(1);
            g_stolen_tasks.AddAlways(take);
            (want_local ? g_steals_local : g_steals_remote).AddAlways(1);
          }
          *task = split;
          return true;
        }
      }
    }
  }
  return false;
}

void TaskPool::RunLane(int lane, int n_lanes, int n_nodes, bool strict,
                       const std::function<void(int, size_t)>& fn) {
  size_t task;
  uint64_t executed = 0;
  while (PopOrSteal(lane, n_lanes, n_nodes, strict, &task)) {
    fn(lane, task);
    ++executed;
  }
  if (executed > 0) g_morsels.Add(executed);
}

void TaskPool::WorkerLoop(int self) {
  InJobScope in_job;  // workers never start nested pool jobs
  uint64_t seen_epoch = 0;
  int pinned_node = -1;  // last node this thread pinned itself to
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    const int lane = self + 1;  // lane 0 is the submitting thread
    if (lane >= job_lanes_) continue;
    const int n_lanes = job_lanes_;
    const int n_nodes = job_n_nodes_;
    const bool strict = job_strict_;
    const bool pin = job_pin_;
    const auto* for_fn = for_fn_;
    const auto* phase_fn = phase_fn_;
    PhaseBarrier* barrier = barrier_;
    lock.unlock();
    if (pin) {
      // The lane -> node map depends on this job's lane count, so the
      // desired node can change between jobs; re-pin only on change. The
      // submitting thread (lane 0) is never pinned — its affinity belongs
      // to the caller.
      const int want = numa::NodeOfLane(lane, n_lanes, n_nodes);
      if (want != pinned_node &&
          numa::PinThreadToNode(numa::Topology(), want)) {
        pinned_node = want;
      }
    }
    if (for_fn != nullptr) {
      RunLane(lane, n_lanes, n_nodes, strict, *for_fn);
    } else {
      (*phase_fn)(lane, n_lanes, *barrier);
    }
    lock.lock();
    if (--lanes_remaining_ == 0) done_cv_.notify_all();
  }
}

void TaskPool::ParallelFor(size_t n_tasks, int max_workers,
                           const std::function<void(int, size_t)>& fn) {
  if (n_tasks <= kMaxTasksPerDispatch) {
    DispatchFor(n_tasks, max_workers, fn);
    return;
  }
  // Hard guard, active in every build mode: the packed 32-bit lane deques
  // cannot represent this range in one dispatch, so split it. (Previously
  // an assert that compiled out under NDEBUG, after which PackRange
  // silently truncated task indices.)
  ParallelForChunked(n_tasks, kMaxTasksPerDispatch, max_workers, fn);
}

void TaskPool::ParallelForChunked(
    size_t n_tasks, size_t max_tasks_per_dispatch, int max_workers,
    const std::function<void(int, size_t)>& fn) {
  size_t chunk = max_tasks_per_dispatch;
  if (chunk == 0) chunk = 1;
  if (chunk > kMaxTasksPerDispatch) chunk = kMaxTasksPerDispatch;
  if (n_tasks <= chunk) {
    DispatchFor(n_tasks, max_workers, fn);
    return;
  }
  for (size_t base = 0; base < n_tasks; base += chunk) {
    const size_t take = n_tasks - base < chunk ? n_tasks - base : chunk;
    g_range_splits.Add(1);
    DispatchFor(take, max_workers, [&fn, base](int worker, size_t task) {
      fn(worker, base + task);
    });
  }
}

void TaskPool::DispatchFor(size_t n_tasks, int max_workers,
                           const std::function<void(int, size_t)>& fn) {
  if (n_tasks == 0) return;
  if (n_tasks > kMaxTasksPerDispatch) {
    // Unreachable via the public entry points; abort loudly rather than
    // let PackRange wrap 32-bit task indices.
    std::fprintf(stderr,
                 "TaskPool::DispatchFor: %zu tasks exceed the %zu-task "
                 "dispatch limit\n",
                 n_tasks, kMaxTasksPerDispatch);
    std::abort();
  }
  const int lanes = LaneCount(n_tasks, max_workers);
  if (lanes <= 1 || tls_in_pool_job) {
    g_inline_runs.Add(1);
    for (size_t t = 0; t < n_tasks; ++t) fn(0, t);
    if (obs::MetricsEnabled()) g_morsels.AddAlways(n_tasks);
    return;
  }
  g_dispatches.Add(1);

  // Topology snapshot for this job: at most one node per lane. The lane ->
  // node map (numa::NodeOfLane) and the contiguous initial split below
  // together give every node's lanes a contiguous task block.
  const numa::NumaTopology& topo = numa::Topology();
  int n_nodes = topo.node_count();
  if (n_nodes > lanes) n_nodes = lanes;
  const bool strict =
      n_nodes > 1 && GetStealScope() == StealScope::kNodeStrict;
  const bool pin = n_nodes > 1 && !topo.fake && numa::PinningEnabled();

  std::lock_guard<std::mutex> jobs_lock(jobs_mu_);
  EnsureWorkers(lanes - 1);
  // Initial split: lane l owns the contiguous index block
  // [l*n/L, (l+1)*n/L) — same blocks static chunking would use, so with no
  // steals the access pattern is identical; steals only rebalance the tail.
  const uint64_t n = n_tasks;
  for (int l = 0; l < lanes; ++l) {
    uint32_t b = static_cast<uint32_t>(n * l / lanes);
    uint32_t e = static_cast<uint32_t>(n * (l + 1) / lanes);
    lanes_[l].range.store(PackRange(b, e), std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for_fn_ = &fn;
    phase_fn_ = nullptr;
    barrier_ = nullptr;
    job_lanes_ = lanes;
    lanes_remaining_ = lanes;
    job_n_nodes_ = n_nodes;
    job_strict_ = strict;
    job_pin_ = pin;
    ++epoch_;
  }
  work_cv_.notify_all();
  {
    InJobScope in_job;
    RunLane(0, lanes, n_nodes, strict, fn);
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (--lanes_remaining_ > 0) {
    done_cv_.wait(lock, [&] { return lanes_remaining_ == 0; });
  }
  for_fn_ = nullptr;
  job_lanes_ = 0;
}

void TaskPool::ParallelPhases(
    int max_workers,
    const std::function<void(int, int, PhaseBarrier&)>& fn) {
  int lanes = max_workers < MaxWorkers() ? max_workers : MaxWorkers();
  if (lanes < 1) lanes = 1;
  if (lanes == 1 || tls_in_pool_job) {
    g_inline_runs.Add(1);
    PhaseBarrier barrier(1);
    fn(0, 1, barrier);
    return;
  }
  g_dispatches.Add(1);

  // Phase jobs have no steal rings, but lanes still map to nodes for
  // worker pinning (first-touch blocks in numa::PlaceBuffer rely on it).
  const numa::NumaTopology& topo = numa::Topology();
  int n_nodes = topo.node_count();
  if (n_nodes > lanes) n_nodes = lanes;
  const bool pin = n_nodes > 1 && !topo.fake && numa::PinningEnabled();

  std::lock_guard<std::mutex> jobs_lock(jobs_mu_);
  EnsureWorkers(lanes - 1);
  PhaseBarrier barrier(lanes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for_fn_ = nullptr;
    phase_fn_ = &fn;
    barrier_ = &barrier;
    job_lanes_ = lanes;
    lanes_remaining_ = lanes;
    job_n_nodes_ = n_nodes;
    job_strict_ = false;
    job_pin_ = pin;
    ++epoch_;
  }
  work_cv_.notify_all();
  {
    InJobScope in_job;
    fn(0, lanes, barrier);
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (--lanes_remaining_ > 0) {
    done_cv_.wait(lock, [&] { return lanes_remaining_ == 0; });
  }
  phase_fn_ = nullptr;
  barrier_ = nullptr;
  job_lanes_ = 0;
}

}  // namespace simddb
