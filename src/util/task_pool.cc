#include "util/task_pool.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "numa/topology.h"
#include "obs/metrics.h"

namespace simddb {
namespace {

// Scheduler metrics (obs/metrics.h). Sharded per worker; zero-cost when
// metrics are disabled beyond one relaxed load per event, and every event
// amortizes over >= one morsel of work.
obs::Counter g_steals("steals");            // successful back-half steals
obs::Counter g_steals_local("steals_local");    // victim on the same node
obs::Counter g_steals_remote("steals_remote");  // victim on another node
obs::Counter g_stolen_tasks("stolen_tasks");  // tasks migrated by steals
obs::Counter g_morsels("morsels");          // tasks executed via ParallelFor
obs::Counter g_inline_runs("inline_runs");  // jobs run inline on the caller
obs::Counter g_dispatches("dispatches");    // pooled job dispatches
obs::Counter g_range_splits("range_splits");  // oversized-range sub-dispatches
obs::Counter g_fair_quanta("fair_quanta");  // quanta granted by the fair gate
obs::Counter g_barrier_wait_ns("barrier_wait_ns");

// True while the current thread is executing inside a pool job (workers
// always; the submitting thread while it runs its own lane). Nested parallel
// calls from such a thread run inline: the pool is a flat resource, and
// blocking a worker on a sub-job could deadlock the outer one.
thread_local bool tls_in_pool_job = false;

struct InJobScope {
  InJobScope() { tls_in_pool_job = true; }
  ~InJobScope() { tls_in_pool_job = false; }
};

// Query tag of the current (submitting) thread; 0 = untagged. Set by
// TaskPool::QueryTagScope around a query's execution, read at every
// ParallelFor/ParallelPhases entry to route through the fair gate.
thread_local uint64_t tls_query_tag = 0;

constexpr uint64_t PackRange(uint32_t begin, uint32_t end) {
  return (static_cast<uint64_t>(begin) << 32) | end;
}
constexpr uint32_t RangeBegin(uint64_t r) {
  return static_cast<uint32_t>(r >> 32);
}
constexpr uint32_t RangeEnd(uint64_t r) { return static_cast<uint32_t>(r); }

// Process steal scope. -1 = not yet initialized from SIMDDB_NUMA_STEAL.
std::atomic<int> g_steal_scope{-1};

}  // namespace

StealScope GetStealScope() {
  int v = g_steal_scope.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("SIMDDB_NUMA_STEAL");
    v = (env != nullptr && std::strcmp(env, "strict") == 0)
            ? static_cast<int>(StealScope::kNodeStrict)
            : static_cast<int>(StealScope::kHierarchical);
    g_steal_scope.store(v, std::memory_order_relaxed);
  }
  return static_cast<StealScope>(v);
}

void SetStealScope(StealScope scope) {
  g_steal_scope.store(static_cast<int>(scope), std::memory_order_relaxed);
}

void PhaseBarrier::Wait() {
  const bool timed = obs::MetricsEnabled();
  const uint64_t t0 = timed ? obs::NowNs() : 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    bool my_sense = sense_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      sense_ = !sense_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return sense_ != my_sense; });
    }
  }
  if (timed) g_barrier_wait_ns.AddAlways(obs::NowNs() - t0);
}

TaskPool& TaskPool::Get() {
  static TaskPool pool;
  return pool;
}

int TaskPool::MaxWorkers() {
  static const int cap = [] {
    if (const char* env = std::getenv("SIMDDB_THREADS")) {
      int v = std::atoi(env);
      if (v >= 1) return v;
    }
    // No explicit cap: allow deliberate oversubscription (the Fig. 16
    // reproduction sweeps thread counts past the core count on any host).
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    return hw > 64 ? hw : 64;
  }();
  return cap;
}

int TaskPool::LaneCount(size_t n_tasks, int max_workers) {
  int lanes = max_workers < MaxWorkers() ? max_workers : MaxWorkers();
  if (static_cast<size_t>(lanes) > n_tasks) {
    lanes = static_cast<int>(n_tasks);
  }
  return lanes < 1 ? 1 : lanes;
}

TaskPool::~TaskPool() {
  // Abort every still-registered query tag first: a client thread parked in
  // AcquireQuantum unwinds with QueryAborted instead of waiting on a pool
  // that is tearing down, and its queued-but-unstarted quanta are simply
  // never dispatched (the drain is clean by construction — quanta are
  // sliced lazily on the submitting thread, nothing sits in lane deques
  // between dispatches).
  {
    std::lock_guard<std::mutex> lock(fair_mu_);
    fair_shutdown_ = true;
    for (auto& [tag, st] : tags_) st.aborted = true;
  }
  fair_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

TaskPool::QueryTagScope::QueryTagScope(uint64_t tag) : prev_(tls_query_tag) {
  tls_query_tag = tag;
}

TaskPool::QueryTagScope::~QueryTagScope() { tls_query_tag = prev_; }

uint64_t TaskPool::RegisterQueryTag(uint64_t weight) {
  std::lock_guard<std::mutex> lock(fair_mu_);
  const uint64_t tag = next_query_tag_++;
  TagState st;
  st.weight = weight < 1 ? 1 : weight;
  // Join at the minimum live vtime: a newcomer neither inherits the debt of
  // long-running peers (it would monopolize) nor starts at 0 against peers
  // with accumulated vtime (it would starve them).
  uint64_t min_vtime = UINT64_MAX;
  for (const auto& [t, s] : tags_) {
    if (s.vtime < min_vtime) min_vtime = s.vtime;
  }
  st.vtime = min_vtime == UINT64_MAX ? 0 : min_vtime;
  tags_.emplace(tag, st);
  return tag;
}

void TaskPool::UnregisterQueryTag(uint64_t tag) {
  {
    std::lock_guard<std::mutex> lock(fair_mu_);
    tags_.erase(tag);
  }
  // Waiters recompute BestWaitingTag against the shrunk set.
  fair_cv_.notify_all();
}

void TaskPool::AbortQueryTag(uint64_t tag) {
  {
    std::lock_guard<std::mutex> lock(fair_mu_);
    auto it = tags_.find(tag);
    if (it == tags_.end()) return;
    it->second.aborted = true;
  }
  fair_cv_.notify_all();
}

uint64_t TaskPool::QueryTagMorsels(uint64_t tag) {
  std::lock_guard<std::mutex> lock(fair_mu_);
  auto it = tags_.find(tag);
  return it == tags_.end() ? 0 : it->second.morsels;
}

size_t TaskPool::RegisteredQueryTags() {
  std::lock_guard<std::mutex> lock(fair_mu_);
  return tags_.size();
}

uint64_t TaskPool::BestWaitingTag() const {
  uint64_t best_tag = 0;
  uint64_t best_vtime = UINT64_MAX;
  for (const auto& [tag, st] : tags_) {
    if (!st.waiting || st.aborted) continue;
    if (st.vtime < best_vtime || (st.vtime == best_vtime && tag < best_tag)) {
      best_tag = tag;
      best_vtime = st.vtime;
    }
  }
  return best_tag;
}

void TaskPool::ThrowIfTagAborted(uint64_t tag) {
  std::lock_guard<std::mutex> lock(fair_mu_);
  auto it = tags_.find(tag);
  if (fair_shutdown_ || (it != tags_.end() && it->second.aborted)) {
    throw QueryAborted{tag};
  }
}

size_t TaskPool::AcquireQuantum(uint64_t tag, size_t remaining) {
  std::unique_lock<std::mutex> lock(fair_mu_);
  auto it = tags_.find(tag);
  if (it == tags_.end()) {
    // Unknown (already unregistered) tag: no fairness state to maintain,
    // behave like an untagged dispatch.
    return remaining < kMaxTasksPerDispatch ? remaining
                                            : kMaxTasksPerDispatch;
  }
  if (fair_shutdown_ || it->second.aborted) throw QueryAborted{tag};
  it->second.waiting = true;
  fair_cv_.wait(lock, [&] {
    return fair_shutdown_ || it->second.aborted ||
           (fair_busy_tag_ == 0 && BestWaitingTag() == tag);
  });
  it->second.waiting = false;
  if (fair_shutdown_ || it->second.aborted) throw QueryAborted{tag};
  fair_busy_tag_ = tag;
  // Solo query: no one to be fair to — grant the whole remainder (clamped
  // to what one dispatch can represent) so the uncontended path costs one
  // gate round-trip total.
  size_t grant = tags_.size() > 1 ? kFairQuantumTasks : remaining;
  if (grant > remaining) grant = remaining;
  if (grant > kMaxTasksPerDispatch) grant = kMaxTasksPerDispatch;
  return grant;
}

void TaskPool::ReleaseQuantum(uint64_t tag, size_t tasks) {
  {
    std::lock_guard<std::mutex> lock(fair_mu_);
    auto it = tags_.find(tag);
    if (it != tags_.end()) {
      it->second.morsels += tasks;
      it->second.vtime += tasks * kVtimeScale / it->second.weight;
    }
    if (fair_busy_tag_ == tag) fair_busy_tag_ = 0;
  }
  fair_cv_.notify_all();
}

void TaskPool::CreditTag(uint64_t tag, size_t tasks) {
  std::lock_guard<std::mutex> lock(fair_mu_);
  auto it = tags_.find(tag);
  if (it == tags_.end()) return;
  it->second.morsels += tasks;
  it->second.vtime += tasks * kVtimeScale / it->second.weight;
}

void TaskPool::FairParallelFor(uint64_t tag, size_t n_tasks, int max_workers,
                               const std::function<void(int, size_t)>& fn) {
  const int lanes = LaneCount(n_tasks, max_workers);
  if (lanes <= 1) {
    // Inline single-lane run: it executes on the client's own thread and
    // contends for no pool workers, so gating it would only serialize
    // client threads. Aborts are still honoured at dispatch boundaries and
    // the drained tasks still count toward the tag (no-starvation gate).
    size_t base = 0;
    while (base < n_tasks) {
      size_t take = n_tasks - base;
      if (take > kMaxTasksPerDispatch) take = kMaxTasksPerDispatch;
      ThrowIfTagAborted(tag);
      if (base == 0 && take == n_tasks) {
        DispatchFor(take, max_workers, fn);
      } else {
        const size_t b = base;
        g_range_splits.Add(1);
        DispatchFor(take, max_workers, [&fn, b](int worker, size_t task) {
          fn(worker, b + task);
        });
      }
      CreditTag(tag, take);
      base += take;
    }
    return;
  }
  size_t base = 0;
  while (base < n_tasks) {
    const size_t grant = AcquireQuantum(tag, n_tasks - base);
    g_fair_quanta.Add(1);
    if (base == 0 && grant == n_tasks) {
      DispatchFor(grant, max_workers, fn);
    } else {
      const size_t b = base;
      DispatchFor(grant, max_workers, [&fn, b](int worker, size_t task) {
        fn(worker, b + task);
      });
    }
    ReleaseQuantum(tag, grant);
    base += grant;
  }
}

void TaskPool::EnsureWorkers(int needed) {
  if (lanes_ == nullptr) {
    lanes_ = std::make_unique<Lane[]>(static_cast<size_t>(MaxWorkers()));
  }
  while (static_cast<int>(workers_.size()) < needed) {
    int self = static_cast<int>(workers_.size());
    workers_.emplace_back([this, self] { WorkerLoop(self); });
  }
}

int TaskPool::SpawnedWorkers() {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return static_cast<int>(workers_.size());
}

bool TaskPool::PopOrSteal(int lane, int n_lanes, int n_nodes, bool strict,
                          size_t* task) {
  // Fast path: pop the front of the own deque — consecutive morsels, so a
  // lane that keeps its initial range streams through contiguous input.
  Lane& mine = lanes_[lane];
  uint64_t r = mine.range.load(std::memory_order_relaxed);
  while (RangeBegin(r) < RangeEnd(r)) {
    if (mine.range.compare_exchange_weak(
            r, PackRange(RangeBegin(r) + 1, RangeEnd(r)),
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      *task = RangeBegin(r);
      return true;
    }
  }
  // Own deque drained: steal the back half of the first non-empty victim.
  // The stolen tasks (minus the one returned) become the new own deque.
  // With a multi-node lane map the scan is hierarchical: pass 0 visits
  // only same-node victims (the per-node steal ring), pass 1 — skipped
  // under StealScope::kNodeStrict — crosses nodes once the whole local
  // node is dry. Which lane executes a task never affects output (the
  // morsel grid fixes the layout), so the scan order is pure policy.
  const int my_node =
      n_nodes > 1 ? numa::NodeOfLane(lane, n_lanes, n_nodes) : 0;
  const int n_passes = n_nodes > 1 ? (strict ? 1 : 2) : 1;
  for (int pass = 0; pass < n_passes; ++pass) {
    const bool want_local = pass == 0;
    for (int i = 1; i < n_lanes; ++i) {
      const int v = (lane + i) % n_lanes;
      if (n_nodes > 1 &&
          (numa::NodeOfLane(v, n_lanes, n_nodes) == my_node) != want_local) {
        continue;
      }
      Lane& victim = lanes_[v];
      uint64_t vr = victim.range.load(std::memory_order_acquire);
      while (RangeBegin(vr) < RangeEnd(vr)) {
        uint32_t vb = RangeBegin(vr);
        uint32_t ve = RangeEnd(vr);
        uint32_t take = (ve - vb + 1) / 2;
        uint32_t split = ve - take;
        if (victim.range.compare_exchange_weak(vr, PackRange(vb, split),
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
          if (take > 1) {
            mine.range.store(PackRange(split + 1, ve),
                             std::memory_order_release);
          }
          if (obs::MetricsEnabled()) {
            g_steals.AddAlways(1);
            g_stolen_tasks.AddAlways(take);
            (want_local ? g_steals_local : g_steals_remote).AddAlways(1);
          }
          *task = split;
          return true;
        }
      }
    }
  }
  return false;
}

void TaskPool::RunLane(int lane, int n_lanes, int n_nodes, bool strict,
                       const std::function<void(int, size_t)>& fn) {
  size_t task;
  uint64_t executed = 0;
  while (PopOrSteal(lane, n_lanes, n_nodes, strict, &task)) {
    fn(lane, task);
    ++executed;
  }
  if (executed > 0) g_morsels.Add(executed);
}

void TaskPool::WorkerLoop(int self) {
  InJobScope in_job;  // workers never start nested pool jobs
  uint64_t seen_epoch = 0;
  int pinned_node = -1;  // last node this thread pinned itself to
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    const int lane = self + 1;  // lane 0 is the submitting thread
    if (lane >= job_lanes_) continue;
    const int n_lanes = job_lanes_;
    const int n_nodes = job_n_nodes_;
    const bool strict = job_strict_;
    const bool pin = job_pin_;
    const auto* for_fn = for_fn_;
    const auto* phase_fn = phase_fn_;
    PhaseBarrier* barrier = barrier_;
    obs::QueryMetricSink* sink = job_sink_;
    lock.unlock();
    if (pin) {
      // The lane -> node map depends on this job's lane count, so the
      // desired node can change between jobs; re-pin only on change. The
      // submitting thread (lane 0) is never pinned — its affinity belongs
      // to the caller.
      const int want = numa::NodeOfLane(lane, n_lanes, n_nodes);
      if (want != pinned_node &&
          numa::PinThreadToNode(numa::Topology(), want)) {
        pinned_node = want;
      }
    }
    {
      // Extend the submitting thread's per-query attribution sink (if any)
      // to this worker lane for the duration of the job, so work executed
      // on a query's behalf is credited to that query wherever it runs.
      obs::ScopedMetricSink sink_scope(sink);
      if (for_fn != nullptr) {
        RunLane(lane, n_lanes, n_nodes, strict, *for_fn);
      } else {
        (*phase_fn)(lane, n_lanes, *barrier);
      }
    }
    lock.lock();
    if (--lanes_remaining_ == 0) done_cv_.notify_all();
  }
}

void TaskPool::ParallelFor(size_t n_tasks, int max_workers,
                           const std::function<void(int, size_t)>& fn) {
  const uint64_t tag = tls_query_tag;
  if (tag != 0 && !tls_in_pool_job && n_tasks > 0) {
    // Tagged query work passes the weighted-fair gate (which also handles
    // oversized ranges — quanta are clamped to kMaxTasksPerDispatch).
    FairParallelFor(tag, n_tasks, max_workers, fn);
    return;
  }
  if (n_tasks <= kMaxTasksPerDispatch) {
    DispatchFor(n_tasks, max_workers, fn);
    return;
  }
  // Hard guard, active in every build mode: the packed 32-bit lane deques
  // cannot represent this range in one dispatch, so split it. (Previously
  // an assert that compiled out under NDEBUG, after which PackRange
  // silently truncated task indices.)
  ParallelForChunked(n_tasks, kMaxTasksPerDispatch, max_workers, fn);
}

void TaskPool::ParallelForChunked(
    size_t n_tasks, size_t max_tasks_per_dispatch, int max_workers,
    const std::function<void(int, size_t)>& fn) {
  size_t chunk = max_tasks_per_dispatch;
  if (chunk == 0) chunk = 1;
  if (chunk > kMaxTasksPerDispatch) chunk = kMaxTasksPerDispatch;
  if (n_tasks <= chunk) {
    DispatchFor(n_tasks, max_workers, fn);
    return;
  }
  for (size_t base = 0; base < n_tasks; base += chunk) {
    const size_t take = n_tasks - base < chunk ? n_tasks - base : chunk;
    g_range_splits.Add(1);
    DispatchFor(take, max_workers, [&fn, base](int worker, size_t task) {
      fn(worker, base + task);
    });
  }
}

void TaskPool::DispatchFor(size_t n_tasks, int max_workers,
                           const std::function<void(int, size_t)>& fn) {
  if (n_tasks == 0) return;
  if (n_tasks > kMaxTasksPerDispatch) {
    // Unreachable via the public entry points; abort loudly rather than
    // let PackRange wrap 32-bit task indices.
    std::fprintf(stderr,
                 "TaskPool::DispatchFor: %zu tasks exceed the %zu-task "
                 "dispatch limit\n",
                 n_tasks, kMaxTasksPerDispatch);
    std::abort();
  }
  const int lanes = LaneCount(n_tasks, max_workers);
  if (lanes <= 1 || tls_in_pool_job) {
    g_inline_runs.Add(1);
    for (size_t t = 0; t < n_tasks; ++t) fn(0, t);
    if (obs::MetricsEnabled()) g_morsels.AddAlways(n_tasks);
    return;
  }
  g_dispatches.Add(1);

  // Topology snapshot for this job: at most one node per lane. The lane ->
  // node map (numa::NodeOfLane) and the contiguous initial split below
  // together give every node's lanes a contiguous task block.
  const numa::NumaTopology& topo = numa::Topology();
  int n_nodes = topo.node_count();
  if (n_nodes > lanes) n_nodes = lanes;
  const bool strict =
      n_nodes > 1 && GetStealScope() == StealScope::kNodeStrict;
  const bool pin = n_nodes > 1 && !topo.fake && numa::PinningEnabled();

  std::lock_guard<std::mutex> jobs_lock(jobs_mu_);
  EnsureWorkers(lanes - 1);
  // Initial split: lane l owns the contiguous index block
  // [l*n/L, (l+1)*n/L) — same blocks static chunking would use, so with no
  // steals the access pattern is identical; steals only rebalance the tail.
  const uint64_t n = n_tasks;
  for (int l = 0; l < lanes; ++l) {
    uint32_t b = static_cast<uint32_t>(n * l / lanes);
    uint32_t e = static_cast<uint32_t>(n * (l + 1) / lanes);
    lanes_[l].range.store(PackRange(b, e), std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for_fn_ = &fn;
    phase_fn_ = nullptr;
    barrier_ = nullptr;
    job_sink_ = obs::CurrentMetricSink();
    job_lanes_ = lanes;
    lanes_remaining_ = lanes;
    job_n_nodes_ = n_nodes;
    job_strict_ = strict;
    job_pin_ = pin;
    ++epoch_;
  }
  work_cv_.notify_all();
  {
    InJobScope in_job;
    RunLane(0, lanes, n_nodes, strict, fn);
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (--lanes_remaining_ > 0) {
    done_cv_.wait(lock, [&] { return lanes_remaining_ == 0; });
  }
  for_fn_ = nullptr;
  job_sink_ = nullptr;
  job_lanes_ = 0;
}

void TaskPool::ParallelPhases(
    int max_workers,
    const std::function<void(int, int, PhaseBarrier&)>& fn) {
  int lanes = max_workers < MaxWorkers() ? max_workers : MaxWorkers();
  if (lanes < 1) lanes = 1;
  const uint64_t tag = tls_in_pool_job ? 0 : tls_query_tag;
  if (lanes == 1 || tls_in_pool_job) {
    if (tag != 0) ThrowIfTagAborted(tag);
    g_inline_runs.Add(1);
    PhaseBarrier barrier(1);
    fn(0, 1, barrier);
    if (tag != 0) CreditTag(tag, 1);
    return;
  }
  if (tag != 0) {
    // A phase job is indivisible (every lane runs the whole multi-phase
    // body), so it passes the fair gate as one quantum of cost `lanes`.
    AcquireQuantum(tag, static_cast<size_t>(lanes));
    g_fair_quanta.Add(1);
    DispatchPhases(lanes, fn);
    ReleaseQuantum(tag, static_cast<size_t>(lanes));
    return;
  }
  DispatchPhases(lanes, fn);
}

void TaskPool::DispatchPhases(
    int lanes, const std::function<void(int, int, PhaseBarrier&)>& fn) {
  g_dispatches.Add(1);

  // Phase jobs have no steal rings, but lanes still map to nodes for
  // worker pinning (first-touch blocks in numa::PlaceBuffer rely on it).
  const numa::NumaTopology& topo = numa::Topology();
  int n_nodes = topo.node_count();
  if (n_nodes > lanes) n_nodes = lanes;
  const bool pin = n_nodes > 1 && !topo.fake && numa::PinningEnabled();

  std::lock_guard<std::mutex> jobs_lock(jobs_mu_);
  EnsureWorkers(lanes - 1);
  PhaseBarrier barrier(lanes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for_fn_ = nullptr;
    phase_fn_ = &fn;
    barrier_ = &barrier;
    job_sink_ = obs::CurrentMetricSink();
    job_lanes_ = lanes;
    lanes_remaining_ = lanes;
    job_n_nodes_ = n_nodes;
    job_strict_ = false;
    job_pin_ = pin;
    ++epoch_;
  }
  work_cv_.notify_all();
  {
    InJobScope in_job;
    fn(0, lanes, barrier);
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (--lanes_remaining_ > 0) {
    done_cv_.wait(lock, [&] { return lanes_remaining_ == 0; });
  }
  phase_fn_ = nullptr;
  barrier_ = nullptr;
  job_sink_ = nullptr;
  job_lanes_ = 0;
}

}  // namespace simddb
