#include "util/data_gen.h"

#include <cmath>

#include "util/rng.h"

namespace simddb {

void FillUniform(uint32_t* out, size_t n, uint64_t seed, uint32_t lo,
                 uint32_t hi) {
  Pcg32 rng(seed);
  uint32_t span = hi - lo;
  if (span == 0xFFFFFFFFu) {
    for (size_t i = 0; i < n; ++i) out[i] = rng.Next();
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = lo + rng.NextBounded(span + 1);
  }
}

void FillSequential(uint32_t* out, size_t n, uint32_t base) {
  for (size_t i = 0; i < n; ++i) out[i] = base + static_cast<uint32_t>(i);
}

void FillUniqueShuffled(uint32_t* out, size_t n, uint64_t seed,
                        uint32_t base) {
  FillSequential(out, n, base);
  Pcg32 rng(seed);
  for (size_t i = n; i > 1; --i) {
    size_t j = rng.NextBounded(static_cast<uint32_t>(i));
    uint32_t tmp = out[i - 1];
    out[i - 1] = out[j];
    out[j] = tmp;
  }
}

void FillWithRepeats(uint32_t* out, size_t n, size_t n_unique, uint64_t seed,
                     uint32_t base) {
  if (n_unique == 0) n_unique = 1;
  // Round-robin over the unique keys, then shuffle so repeats are spread out.
  for (size_t i = 0; i < n; ++i) {
    out[i] = base + static_cast<uint32_t>(i % n_unique);
  }
  Pcg32 rng(seed);
  for (size_t i = n; i > 1; --i) {
    size_t j = rng.NextBounded(static_cast<uint32_t>(i));
    uint32_t tmp = out[i - 1];
    out[i - 1] = out[j];
    out[j] = tmp;
  }
}

void FillZipf(uint32_t* out, size_t n, size_t n_unique, double theta,
              uint64_t seed, uint32_t base) {
  // Classic Gray et al. Zipf sampler: precompute zeta(n_unique, theta) and
  // invert the CDF approximation per draw.
  Pcg32 rng(seed);
  double zetan = 0.0;
  for (size_t i = 1; i <= n_unique; ++i) zetan += 1.0 / std::pow(i, theta);
  double alpha = 1.0 / (1.0 - theta);
  double zeta2 = 1.0 + std::pow(0.5, theta);
  double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n_unique), 1.0 - theta)) /
      (1.0 - zeta2 / zetan);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.NextDouble();
    double uz = u * zetan;
    uint32_t v;
    if (uz < 1.0) {
      v = 1;
    } else if (uz < 1.0 + std::pow(0.5, theta)) {
      v = 2;
    } else {
      v = 1 + static_cast<uint32_t>(static_cast<double>(n_unique) *
                                    std::pow(eta * u - eta + 1.0, alpha));
    }
    if (v > n_unique) v = static_cast<uint32_t>(n_unique);
    out[i] = base + v - 1;
  }
}

std::vector<uint32_t> MakeSplitters(size_t p, uint32_t max_value) {
  std::vector<uint32_t> splitters;
  splitters.reserve(p > 0 ? p - 1 : 0);
  for (size_t i = 1; i < p; ++i) {
    uint64_t v = static_cast<uint64_t>(max_value) * i / p;
    splitters.push_back(static_cast<uint32_t>(v));
  }
  return splitters;
}

void FillProbeKeys(uint32_t* out, size_t n, const uint32_t* build_keys,
                   size_t n_build, double hit_rate, uint64_t seed) {
  Pcg32 rng(seed);
  // Absent keys are drawn above the max build key; callers generate build
  // keys from a compact range so this is cheap and exact.
  uint32_t max_key = 0;
  for (size_t i = 0; i < n_build; ++i) {
    if (build_keys[i] > max_key) max_key = build_keys[i];
  }
  uint32_t miss_base = max_key + 1;
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < hit_rate && n_build > 0) {
      out[i] = build_keys[rng.NextBounded(static_cast<uint32_t>(n_build))];
    } else {
      out[i] = miss_base + rng.NextBounded(0x3FFFFFFF);
    }
  }
}

}  // namespace simddb
