#ifndef SIMDDB_UTIL_THREAD_TEAM_H_
#define SIMDDB_UTIL_THREAD_TEAM_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace simddb {

/// A reusable sense-reversing barrier for fork-join operator phases
/// (histogram → prefix sum → shuffle in parallel radixsort, build → probe in
/// the no-partition join).
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties), waiting_(0), sense_(false) {}

  /// Blocks until all `parties` threads have arrived.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    bool my_sense = sense_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      sense_ = !sense_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return sense_ != my_sense; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int parties_;
  int waiting_;
  bool sense_;
};

/// Fork-join thread team: runs fn(tid) on `threads` std::threads and joins.
/// Thread 0 is the calling thread so single-threaded runs have no spawn cost.
class ThreadTeam {
 public:
  /// Runs fn(tid) for tid in [0, threads). Blocks until all complete.
  static void Run(int threads, const std::function<void(int)>& fn) {
    if (threads <= 1) {
      fn(0);
      return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (int t = 1; t < threads; ++t) {
      pool.emplace_back([&fn, t] { fn(t); });
    }
    fn(0);
    for (auto& th : pool) th.join();
  }

  /// Splits [0, n) into `threads` contiguous chunks; chunk t is
  /// [ChunkBegin(n,threads,t), ChunkBegin(n,threads,t+1)).
  static size_t ChunkBegin(size_t n, int threads, int t) {
    return n * static_cast<size_t>(t) / static_cast<size_t>(threads);
  }
};

}  // namespace simddb

#endif  // SIMDDB_UTIL_THREAD_TEAM_H_
