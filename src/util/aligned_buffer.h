#ifndef SIMDDB_UTIL_ALIGNED_BUFFER_H_
#define SIMDDB_UTIL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>

#include "util/alloc.h"

namespace simddb {

/// A move-only, cache-line-aligned heap buffer of trivially copyable T.
///
/// All operator kernels in simddb read from and write to caller-owned
/// buffers; this type is the canonical owner. Memory comes from
/// util/alloc.h: aligned to 64 bytes (one cache line, and the width of one
/// 512-bit vector) and padded to a multiple of 64 bytes so vector loops may
/// safely read one partial trailing vector. With SIMDDB_HUGEPAGES=1 in the
/// environment, buffers of at least 2 MB are additionally huge-page-advised
/// (see util/alloc.h).
template <typename T>
class AlignedBuffer {
 public:
  static constexpr size_t kAlignment = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t n) { Reset(n); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { Free(); }

  /// Frees any existing storage and allocates room for n elements.
  void Reset(size_t n) {
    Free();
    size_ = n;
    if (n == 0) return;
    data_ = static_cast<T*>(
        AlignedAlloc(n * sizeof(T), kAlignment, HugePagesRequested()));
  }

  /// Zero-fills the buffer.
  void Clear() {
    if (data_ != nullptr) std::memset(data_, 0, size_ * sizeof(T));
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Free() {
    AlignedFree(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace simddb

#endif  // SIMDDB_UTIL_ALIGNED_BUFFER_H_
