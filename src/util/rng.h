#ifndef SIMDDB_UTIL_RNG_H_
#define SIMDDB_UTIL_RNG_H_

#include <cstdint>

namespace simddb {

/// SplitMix64: used to seed other generators and as a cheap stateless hash.
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// PCG32 (pcg_xsh_rr_64_32): small, fast, statistically solid generator used
/// for all synthetic workload generation. Deterministic for a given seed so
/// experiments are reproducible.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed, uint64_t stream = 0x14057B7EF767814Full)
      : state_(0), inc_((stream << 1u) | 1u) {
    Next();
    state_ += SplitMix64(seed);
    Next();
  }

  /// Returns the next 32 pseudo-random bits.
  uint32_t Next() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  /// Returns a value uniform in [0, bound) without modulo bias.
  uint32_t NextBounded(uint32_t bound) {
    uint64_t m = static_cast<uint64_t>(Next()) * bound;
    uint32_t lo = static_cast<uint32_t>(m);
    if (lo < bound) {
      uint32_t t = (0u - bound) % bound;
      while (lo < t) {
        m = static_cast<uint64_t>(Next()) * bound;
        lo = static_cast<uint32_t>(m);
      }
    }
    return static_cast<uint32_t>(m >> 32);
  }

  /// Returns the next 64 pseudo-random bits.
  uint64_t Next64() {
    return (static_cast<uint64_t>(Next()) << 32) | Next();
  }

  /// Returns a double uniform in [0, 1).
  double NextDouble() { return Next() * (1.0 / 4294967296.0); }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace simddb

#endif  // SIMDDB_UTIL_RNG_H_
