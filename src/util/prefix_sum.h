#ifndef SIMDDB_UTIL_PREFIX_SUM_H_
#define SIMDDB_UTIL_PREFIX_SUM_H_

#include <cstddef>
#include <cstdint>

namespace simddb {

/// In-place exclusive prefix sum: out[i] = sum of in[0..i). Returns the total.
/// Histograms become partition start offsets this way (§7.3).
inline uint64_t ExclusivePrefixSum(uint64_t* h, size_t p) {
  uint64_t sum = 0;
  for (size_t i = 0; i < p; ++i) {
    uint64_t c = h[i];
    h[i] = sum;
    sum += c;
  }
  return sum;
}

inline uint32_t ExclusivePrefixSum(uint32_t* h, size_t p) {
  uint32_t sum = 0;
  for (size_t i = 0; i < p; ++i) {
    uint32_t c = h[i];
    h[i] = sum;
    sum += c;
  }
  return sum;
}

/// Cross-thread interleaved prefix sum for parallel partitioning (§8):
/// `hists` holds T per-thread histograms of P counts laid out as
/// hists[t * p + j]. After the call, hists[t * p + j] is the global output
/// offset where thread t writes its first tuple of partition j, such that
/// within each partition the tuples of thread 0 precede thread 1, etc.
/// Returns the grand total.
inline uint64_t InterleavedPrefixSum(uint64_t* hists, size_t t_count,
                                     size_t p) {
  uint64_t sum = 0;
  for (size_t j = 0; j < p; ++j) {
    for (size_t t = 0; t < t_count; ++t) {
      uint64_t c = hists[t * p + j];
      hists[t * p + j] = sum;
      sum += c;
    }
  }
  return sum;
}

inline uint32_t InterleavedPrefixSum(uint32_t* hists, size_t t_count,
                                     size_t p) {
  uint32_t sum = 0;
  for (size_t j = 0; j < p; ++j) {
    for (size_t t = 0; t < t_count; ++t) {
      uint32_t c = hists[t * p + j];
      hists[t * p + j] = sum;
      sum += c;
    }
  }
  return sum;
}

}  // namespace simddb

#endif  // SIMDDB_UTIL_PREFIX_SUM_H_
