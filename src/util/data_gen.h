#ifndef SIMDDB_UTIL_DATA_GEN_H_
#define SIMDDB_UTIL_DATA_GEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace simddb {

/// Synthetic workload generation for the experiments in the paper
/// (uniform data per §10; all generators are deterministic per seed).

/// Fills out[0..n) with uniform values in [lo, hi] (inclusive).
void FillUniform(uint32_t* out, size_t n, uint64_t seed, uint32_t lo,
                 uint32_t hi);

/// Fills out[0..n) with the values base, base+1, ..., base+n-1.
void FillSequential(uint32_t* out, size_t n, uint32_t base);

/// Fills out[0..n) with a random permutation of {base, ..., base+n-1}
/// (Fisher-Yates). Used to generate unique join/build keys.
void FillUniqueShuffled(uint32_t* out, size_t n, uint64_t seed,
                        uint32_t base = 1);

/// Fills out[0..n) so that the multiset contains `n_unique` distinct keys
/// (drawn from {base..base+n_unique-1}), each repeated ~n/n_unique times, in
/// random order. Used for the key-repeat experiment (Fig. 9).
void FillWithRepeats(uint32_t* out, size_t n, size_t n_unique, uint64_t seed,
                     uint32_t base = 1);

/// Fills out[0..n) with a Zipf(theta)-distributed sample over
/// {base..base+n_unique-1} using the rejection-inversion method.
void FillZipf(uint32_t* out, size_t n, size_t n_unique, double theta,
              uint64_t seed, uint32_t base = 1);

/// Returns p-1 sorted splitters that partition [0, max_value] into p
/// roughly equal ranges. Used by the range-partitioning experiments.
std::vector<uint32_t> MakeSplitters(size_t p, uint32_t max_value);

/// Draws probe keys for a hash-table experiment: each output key matches a
/// build key with probability `hit_rate`, otherwise it is a key guaranteed
/// to be absent from the build side.
void FillProbeKeys(uint32_t* out, size_t n, const uint32_t* build_keys,
                   size_t n_build, double hit_rate, uint64_t seed);

}  // namespace simddb

#endif  // SIMDDB_UTIL_DATA_GEN_H_
