// AVX-512 kernels for the hash join variants: a vertical probe over a bank
// of linear-probing tables (per-lane table selection via the partition
// hash), and a flat-region vectorized LP build.

#include "core/avx512_ops.h"
#include "hash/hash_table.h"
#include "join/hash_join.h"

namespace simddb::detail {
namespace {

namespace v = simddb::avx512;

inline __m512i WrapBucket(__m512i h, __m512i nb) {
  __mmask16 over = _mm512_cmpge_epu32_mask(h, nb);
  return _mm512_mask_sub_epi32(h, over, h, nb);
}

}  // namespace

size_t ProbeTableBankAvx512(const uint32_t* table_keys,
                            const uint32_t* table_pays, const uint32_t* base,
                            const uint32_t* size, uint32_t hash_factor,
                            uint32_t part_factor, uint32_t part_count,
                            const uint32_t* keys, const uint32_t* pays,
                            size_t n, uint32_t* out_keys, uint32_t* out_spays,
                            uint32_t* out_rpays) {
  const __m512i hf = _mm512_set1_epi32(static_cast<int>(hash_factor));
  const __m512i pf = _mm512_set1_epi32(static_cast<int>(part_factor));
  const __m512i pc = _mm512_set1_epi32(static_cast<int>(part_count));
  const __m512i empty = _mm512_set1_epi32(static_cast<int>(kEmptyKey));
  const __m512i one = _mm512_set1_epi32(1);
  const bool single = part_count == 1;
  const __m512i base0 = _mm512_set1_epi32(static_cast<int>(base[0]));
  const __m512i size0 = _mm512_set1_epi32(static_cast<int>(size[0]));
  __m512i key = _mm512_setzero_si512();
  __m512i pay = _mm512_setzero_si512();
  __m512i off = _mm512_setzero_si512();
  __m512i tbase = base0;
  __m512i tsize = size0;
  __mmask16 need = 0xFFFF;
  size_t i = 0;
  size_t j = 0;
  while (i + 16 <= n) {
    key = v::SelectiveLoad(key, need, keys + i);
    pay = v::SelectiveLoad(pay, need, pays + i);
    i += __builtin_popcount(need);
    if (!single) {
      // Reloaded lanes pick their table by the partition hash.
      __m512i part = v::MultHash(key, pf, pc);
      tbase = _mm512_mask_i32gather_epi32(tbase, need, part,
                                          reinterpret_cast<const int*>(base),
                                          4);
      tsize = _mm512_mask_i32gather_epi32(tsize, need, part,
                                          reinterpret_cast<const int*>(size),
                                          4);
    }
    __m512i h = v::MultHash(key, hf, tsize);
    h = WrapBucket(_mm512_add_epi32(h, off), tsize);
    __m512i slot = _mm512_add_epi32(tbase, h);
    __m512i table_key = v::Gather(table_keys, slot);
    __mmask16 match = _mm512_cmpeq_epi32_mask(table_key, key);
    if (match != 0) {
      __m512i table_pay = v::MaskGather(table_key, match, table_pays, slot);
      v::SelectiveStore(out_keys + j, match, key);
      v::SelectiveStore(out_spays + j, match, pay);
      v::SelectiveStore(out_rpays + j, match, table_pay);
      j += __builtin_popcount(match);
    }
    need = _mm512_cmpeq_epi32_mask(table_key, empty);
    off = _mm512_maskz_add_epi32(static_cast<__mmask16>(~need), off, one);
  }
  // Scalar drain of in-flight lanes, then the input tail.
  alignas(64) uint32_t lk[16], lv[16], lo[16];
  _mm512_store_si512(lk, key);
  _mm512_store_si512(lv, pay);
  _mm512_store_si512(lo, off);
  for (int lane = 0; lane < 16; ++lane) {
    if (need & (1u << lane)) continue;
    uint32_t k = lk[lane];
    uint32_t part = single ? 0 : MultHash32(k, part_factor, part_count);
    uint32_t nb = size[part];
    uint32_t b = base[part];
    uint32_t h = MultHash32(k, hash_factor, nb) + lo[lane];
    if (h >= nb) h -= nb;
    while (table_keys[b + h] != kEmptyKey) {
      if (table_keys[b + h] == k) {
        out_rpays[j] = table_pays[b + h];
        out_spays[j] = lv[lane];
        out_keys[j] = k;
        ++j;
      }
      if (++h == nb) h = 0;
    }
  }
  j += ProbeTableBankScalar(table_keys, table_pays, base, size, hash_factor,
                            part_factor, part_count, keys + i, pays + i,
                            n - i, out_keys + j, out_spays + j, out_rpays + j);
  return j;
}

// Vectorized LP build into a flat pre-cleared region (Alg. 7 with the
// unique-keys conflict-detection optimization: keys are scattered directly
// and gathered back).
void BuildFlatAvx512(uint32_t* table_keys, uint32_t* table_pays, uint32_t nb,
                     uint32_t hash_factor, const uint32_t* keys,
                     const uint32_t* pays, size_t n) {
  const __m512i hf = _mm512_set1_epi32(static_cast<int>(hash_factor));
  const __m512i nbv = _mm512_set1_epi32(static_cast<int>(nb));
  const __m512i empty = _mm512_set1_epi32(static_cast<int>(kEmptyKey));
  const __m512i one = _mm512_set1_epi32(1);
  __m512i key = _mm512_setzero_si512();
  __m512i pay = _mm512_setzero_si512();
  __m512i off = _mm512_setzero_si512();
  __mmask16 need = 0xFFFF;
  size_t i = 0;
  while (i + 16 <= n) {
    key = v::SelectiveLoad(key, need, keys + i);
    pay = v::SelectiveLoad(pay, need, pays + i);
    i += __builtin_popcount(need);
    __m512i h = v::MultHash(key, hf, nbv);
    h = WrapBucket(_mm512_add_epi32(h, off), nbv);
    __m512i table_key = v::Gather(table_keys, h);
    __mmask16 at_empty = _mm512_cmpeq_epi32_mask(table_key, empty);
    v::MaskScatter(table_keys, at_empty, h, key);
    __m512i back = v::MaskGather(key, at_empty, table_keys, h);
    __mmask16 win = _mm512_mask_cmpeq_epi32_mask(at_empty, back, key);
    v::MaskScatter(table_pays, win, h, pay);
    need = win;
    off = _mm512_maskz_add_epi32(static_cast<__mmask16>(~need), off, one);
  }
  alignas(64) uint32_t lk[16], lv[16];
  _mm512_store_si512(lk, key);
  _mm512_store_si512(lv, pay);
  for (int lane = 0; lane < 16; ++lane) {
    if (need & (1u << lane)) continue;
    uint32_t h = MultHash32(lk[lane], hash_factor, nb);
    while (table_keys[h] != kEmptyKey) {
      if (++h == nb) h = 0;
    }
    table_keys[h] = lk[lane];
    table_pays[h] = lv[lane];
  }
  for (; i < n; ++i) {
    uint32_t h = MultHash32(keys[i], hash_factor, nb);
    while (table_keys[h] != kEmptyKey) {
      if (++h == nb) h = 0;
    }
    table_keys[h] = keys[i];
    table_pays[h] = pays[i];
  }
}

}  // namespace simddb::detail
