#ifndef SIMDDB_JOIN_SORT_MERGE_JOIN_H_
#define SIMDDB_JOIN_SORT_MERGE_JOIN_H_

// Sort-merge equi-join, the competitor the paper's §10.5.1 compares hash
// join against ("hash join is faster than sort-merge join [4, 14], since we
// sort 4x10^8 tuples in 0.6 seconds and join 2 x 2x10^8 tuples in 0.54
// seconds"). Both inputs are radix-sorted by key (scalar or vectorized LSB
// radixsort, §8) and merged with a run-based scalar merge that emits the
// cross product of equal-key runs (duplicate keys allowed on both sides).
//
// JoinTimings mapping: partition_s = sorting both inputs, probe_s = merge;
// build_s stays 0. Output buffers must hold all matches + 16.

#include <cstddef>
#include <cstdint>

#include "join/hash_join.h"

namespace simddb {

size_t SortMergeJoin(const JoinRelation& r, const JoinRelation& s,
                     const JoinConfig& cfg, uint32_t* out_keys,
                     uint32_t* out_rpays, uint32_t* out_spays,
                     JoinTimings* timings = nullptr);

}  // namespace simddb

#endif  // SIMDDB_JOIN_SORT_MERGE_JOIN_H_
