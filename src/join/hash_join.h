#ifndef SIMDDB_JOIN_HASH_JOIN_H_
#define SIMDDB_JOIN_HASH_JOIN_H_

// Hash join variants with different degrees of partitioning (§9, Fig. 15):
//
//   No partition   one shared linear-probing table built with atomic CAS
//                  (SIMD has no atomics, so the build stays scalar — the
//                  paper's point); the read-only probe is fully vectorized.
//   Min partition  the inner relation is hash-partitioned T ways (T =
//                  threads) so each thread builds a private table without
//                  atomics; probing selects table by the partition hash.
//                  Fully vectorizable.
//   Max partition  both relations are hash-partitioned (buffered, possibly
//                  two passes) until each inner part fits an L1-resident
//                  table; per-part build+probe runs entirely in cache.
//                  Fully vectorized and the paper's overall winner.
//
// All variants emit (key, R payload, S payload) per match and return the
// match count. R keys must be unique (key/foreign-key join, as in the
// paper's evaluation) — this bounds every thread's match count by its probe
// chunk and lets outputs be compacted deterministically. Payloads are
// arbitrary 32-bit values (row ids for late materialization, §10.5.3).
//
// Output buffers need capacity s.n + 16.

#include <cstddef>
#include <cstdint>

#include "core/isa.h"

namespace simddb {

struct JoinRelation {
  const uint32_t* keys;
  const uint32_t* pays;
  size_t n;
};

/// Wall-clock seconds per phase (Fig. 15's stacked bars).
struct JoinTimings {
  double partition_s = 0;
  double build_s = 0;
  double probe_s = 0;
  double Total() const { return partition_s + build_s + probe_s; }
};

struct JoinConfig {
  Isa isa = Isa::kScalar;
  int threads = 1;
  uint64_t seed = 42;
  /// Max-partition: target inner tuples per final partition (table is sized
  /// 2x this, power of two; default keeps the table well inside L1).
  uint32_t target_part_tuples = 1024;
};

size_t HashJoinNoPartition(const JoinRelation& r, const JoinRelation& s,
                           const JoinConfig& cfg, uint32_t* out_keys,
                           uint32_t* out_rpays, uint32_t* out_spays,
                           JoinTimings* timings = nullptr);

size_t HashJoinMinPartition(const JoinRelation& r, const JoinRelation& s,
                            const JoinConfig& cfg, uint32_t* out_keys,
                            uint32_t* out_rpays, uint32_t* out_spays,
                            JoinTimings* timings = nullptr);

size_t HashJoinMaxPartition(const JoinRelation& r, const JoinRelation& s,
                            const JoinConfig& cfg, uint32_t* out_keys,
                            uint32_t* out_rpays, uint32_t* out_spays,
                            JoinTimings* timings = nullptr);

namespace detail {
/// Vertical vectorized probe of a bank of linear-probing tables laid out in
/// one flat (keys, pays) area: probe key k goes to table part_fn(k), whose
/// buckets live at [base[part], base[part] + size[part]). With one part this
/// degenerates to a plain LP probe. Returns matches written.
size_t ProbeTableBankAvx512(const uint32_t* table_keys,
                            const uint32_t* table_pays, const uint32_t* base,
                            const uint32_t* size, uint32_t hash_factor,
                            uint32_t part_factor, uint32_t part_count,
                            const uint32_t* keys, const uint32_t* pays,
                            size_t n, uint32_t* out_keys, uint32_t* out_spays,
                            uint32_t* out_rpays);
size_t ProbeTableBankScalar(const uint32_t* table_keys,
                            const uint32_t* table_pays, const uint32_t* base,
                            const uint32_t* size, uint32_t hash_factor,
                            uint32_t part_factor, uint32_t part_count,
                            const uint32_t* keys, const uint32_t* pays,
                            size_t n, uint32_t* out_keys, uint32_t* out_spays,
                            uint32_t* out_rpays);
}  // namespace detail

}  // namespace simddb

#endif  // SIMDDB_JOIN_HASH_JOIN_H_
