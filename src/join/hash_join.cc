#include "join/hash_join.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <vector>

#include "hash/hash_table.h"
#include "numa/placement.h"
#include "obs/metrics.h"
#include "partition/parallel_partition.h"
#include "partition/partition_fn.h"
#include "partition/plan.h"
#include "util/aligned_buffer.h"
#include "util/bits.h"
#include "util/prefix_sum.h"
#include "util/task_pool.h"
#include "util/timer.h"

namespace simddb {
namespace detail {

// Declared here, defined in hash_join_avx512.cc.
void BuildFlatAvx512(uint32_t* table_keys, uint32_t* table_pays, uint32_t nb,
                     uint32_t hash_factor, const uint32_t* keys,
                     const uint32_t* pays, size_t n);

// Scalar LP build into a flat (pre-cleared) table region of nb buckets.
void BuildFlatScalar(uint32_t* table_keys, uint32_t* table_pays, uint32_t nb,
                     uint32_t hash_factor, const uint32_t* keys,
                     const uint32_t* pays, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t h = MultHash32(k, hash_factor, nb);
    while (table_keys[h] != kEmptyKey) {
      if (++h == nb) h = 0;
    }
    table_keys[h] = k;
    table_pays[h] = pays[i];
  }
}

size_t ProbeTableBankScalar(const uint32_t* table_keys,
                            const uint32_t* table_pays, const uint32_t* base,
                            const uint32_t* size, uint32_t hash_factor,
                            uint32_t part_factor, uint32_t part_count,
                            const uint32_t* keys, const uint32_t* pays,
                            size_t n, uint32_t* out_keys, uint32_t* out_spays,
                            uint32_t* out_rpays) {
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t part =
        part_count == 1 ? 0 : MultHash32(k, part_factor, part_count);
    uint32_t nb = size[part];
    uint32_t b = base[part];
    uint32_t h = MultHash32(k, hash_factor, nb);
    while (table_keys[b + h] != kEmptyKey) {
      if (table_keys[b + h] == k) {
        out_rpays[j] = table_pays[b + h];
        out_spays[j] = pays[i];
        out_keys[j] = k;
        ++j;
      }
      if (++h == nb) h = 0;
    }
  }
  return j;
}

}  // namespace detail

namespace {

using detail::BuildFlatAvx512;
using detail::BuildFlatScalar;
using detail::ProbeTableBankAvx512;
using detail::ProbeTableBankScalar;

// Join phase timers fed from the same Timer measurements as JoinTimings,
// so JSONL rows and the paper-figure CSVs agree on the split.
obs::PhaseTimer g_join_partition_ns("join_partition_ns");
obs::PhaseTimer g_join_build_ns("join_build_ns");
obs::PhaseTimer g_join_probe_ns("join_probe_ns");

uint64_t SecondsToNs(double s) {
  return s <= 0 ? 0 : static_cast<uint64_t>(s * 1e9);
}

// Compacts per-thread (or per-part) output segments written at seg_begin[i]
// with seg_count[i] tuples into a contiguous prefix. Returns the total.
size_t CompactSegments(size_t n_segs, const uint64_t* seg_begin,
                       const uint64_t* seg_count, uint32_t* out_keys,
                       uint32_t* out_rpays, uint32_t* out_spays) {
  size_t cursor = 0;
  for (size_t i = 0; i < n_segs; ++i) {
    size_t b = seg_begin[i];
    size_t c = seg_count[i];
    if (c > 0 && b != cursor) {
      std::memmove(out_keys + cursor, out_keys + b, c * sizeof(uint32_t));
      std::memmove(out_rpays + cursor, out_rpays + b, c * sizeof(uint32_t));
      std::memmove(out_spays + cursor, out_spays + b, c * sizeof(uint32_t));
    }
    cursor += c;
  }
  return cursor;
}

size_t ProbeDispatch(bool vec, const uint32_t* tk, const uint32_t* tp,
                     const uint32_t* base, const uint32_t* size,
                     uint32_t hash_factor, uint32_t part_factor,
                     uint32_t part_count, const uint32_t* keys,
                     const uint32_t* pays, size_t n, uint32_t* ok,
                     uint32_t* os, uint32_t* orp) {
  if (vec) {
    return ProbeTableBankAvx512(tk, tp, base, size, hash_factor, part_factor,
                                part_count, keys, pays, n, ok, os, orp);
  }
  return ProbeTableBankScalar(tk, tp, base, size, hash_factor, part_factor,
                              part_count, keys, pays, n, ok, os, orp);
}

}  // namespace

size_t HashJoinNoPartition(const JoinRelation& r, const JoinRelation& s,
                           const JoinConfig& cfg, uint32_t* out_keys,
                           uint32_t* out_rpays, uint32_t* out_spays,
                           JoinTimings* timings) {
  const int t_count = cfg.threads < 1 ? 1 : cfg.threads;
  const bool vec = cfg.isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512);
  const uint32_t nb =
      static_cast<uint32_t>(NextPowerOfTwo(r.n * 2 + 32));
  const uint32_t factor = HashFactor(cfg.seed, 0);
  AlignedBuffer<uint32_t> tk(nb), tp(nb);
  std::memset(tk.data(), 0xFF, nb * sizeof(uint32_t));

  // One pool dispatch for both phases: every lane claims build morsels from
  // a shared cursor, the reusable phase barrier separates build from probe
  // (probe lanes must see the complete table), then lanes claim probe
  // morsels. Build uses atomic compare-and-swap claims on the key slot;
  // scatters cannot be atomic, so that phase is scalar by necessity.
  Timer timer;
  const MorselGrid r_grid(r.n);
  const MorselGrid s_grid(s.n);
  const size_t s_morsels = s_grid.count();
  const uint32_t base0 = 0;
  std::vector<uint64_t> seg_begin(s_morsels), seg_count(s_morsels);
  std::atomic<size_t> build_cursor{0};
  std::atomic<size_t> probe_cursor{0};
  double build_s = 0;
  TaskPool::Get().ParallelPhases(
      t_count, [&](int lane, int, PhaseBarrier& barrier) {
        for (;;) {
          size_t m = build_cursor.fetch_add(1, std::memory_order_relaxed);
          if (m >= r_grid.count()) break;
          const size_t e = r_grid.end(m);
          for (size_t i = r_grid.begin(m); i < e; ++i) {
            uint32_t k = r.keys[i];
            uint32_t h = MultHash32(k, factor, nb);
            for (;;) {
              uint32_t expected = kEmptyKey;
              std::atomic_ref<uint32_t> slot(tk[h]);
              if (slot.load(std::memory_order_relaxed) == kEmptyKey &&
                  slot.compare_exchange_strong(expected, k,
                                               std::memory_order_acq_rel)) {
                tp[h] = r.pays[i];
                break;
              }
              if (++h == nb) h = 0;
            }
          }
        }
        barrier.Wait();
        if (lane == 0) build_s = timer.Seconds();
        // Read-only probe: no synchronization needed; vectorized. Output
        // segments are per-morsel, so the layout is worker-independent.
        for (;;) {
          size_t m = probe_cursor.fetch_add(1, std::memory_order_relaxed);
          if (m >= s_morsels) break;
          const size_t b = s_grid.begin(m);
          seg_begin[m] = b;
          seg_count[m] = ProbeDispatch(vec, tk.data(), tp.data(), &base0, &nb,
                                       factor, 1, 1, s.keys + b, s.pays + b,
                                       s_grid.size(m), out_keys + b,
                                       out_spays + b, out_rpays + b);
        }
      });
  const double probe_s = timer.Seconds() - build_s;
  g_join_build_ns.Record(SecondsToNs(build_s));
  g_join_probe_ns.Record(SecondsToNs(probe_s));
  if (timings != nullptr) {
    timings->build_s = build_s;
    timings->probe_s = probe_s;
  }
  size_t total = CompactSegments(s_morsels, seg_begin.data(),
                                 seg_count.data(), out_keys, out_rpays,
                                 out_spays);
  return total;
}

size_t HashJoinMinPartition(const JoinRelation& r, const JoinRelation& s,
                            const JoinConfig& cfg, uint32_t* out_keys,
                            uint32_t* out_rpays, uint32_t* out_spays,
                            JoinTimings* timings) {
  const int t_count = cfg.threads < 1 ? 1 : cfg.threads;
  const bool vec = cfg.isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512);
  const uint32_t parts = static_cast<uint32_t>(t_count);
  PartitionFn part_fn = PartitionFn::Hash(parts, cfg.seed + 1);
  const uint32_t table_factor = HashFactor(cfg.seed, 0);

  // Phase 1: hash-partition R so each thread owns one part (no atomics).
  Timer timer;
  AlignedBuffer<uint32_t> rp_keys(ShuffleCapacity(r.n)),
      rp_pays(ShuffleCapacity(r.n));
  // Partition output is fanout-strided (every morsel writes into every
  // part) and each part is then rebuilt into the flat bank by an arbitrary
  // lane, so interleaving spreads the traffic instead of hot-spotting one
  // node. No-op on single-node hosts.
  numa::PlaceBuffer(rp_keys.data(), rp_keys.size() * sizeof(uint32_t),
                    t_count, numa::Placement::kInterleaved);
  numa::PlaceBuffer(rp_pays.data(), rp_pays.size() * sizeof(uint32_t),
                    t_count, numa::Placement::kInterleaved);
  std::vector<uint32_t> r_starts(parts + 1);
  ParallelPartitionResources res;
  ParallelPartitionPass(part_fn, r.keys, r.pays, r.n, rp_keys.data(),
                        rp_pays.data(), cfg.isa, t_count, &res,
                        r_starts.data());
  const double partition_s = timer.Seconds();
  g_join_partition_ns.Record(SecondsToNs(partition_s));
  if (timings != nullptr) timings->partition_s = partition_s;

  // Phase 2: per-part table builds, laid out in one flat bank so the
  // vectorized probe can address any part's buckets.
  timer.Reset();
  std::vector<uint32_t> bank_base(parts), bank_size(parts);
  uint64_t bank_total = 0;
  for (uint32_t p = 0; p < parts; ++p) {
    uint32_t part_n = r_starts[p + 1] - r_starts[p];
    bank_size[p] =
        static_cast<uint32_t>(NextPowerOfTwo(part_n * 2 + 32));
    bank_base[p] = static_cast<uint32_t>(bank_total);
    bank_total += bank_size[p];
  }
  AlignedBuffer<uint32_t> tk(bank_total), tp(bank_total);
  // The probe phase addresses the whole bank hash-randomly from every
  // node, so interleave it rather than letting the memset below first-touch
  // it all onto the submitting thread's node.
  numa::PlaceBuffer(tk.data(), bank_total * sizeof(uint32_t), t_count,
                    numa::Placement::kInterleaved);
  numa::PlaceBuffer(tp.data(), bank_total * sizeof(uint32_t), t_count,
                    numa::Placement::kInterleaved);
  std::memset(tk.data(), 0xFF, bank_total * sizeof(uint32_t));
  TaskPool::Get().ParallelFor(parts, t_count, [&](int, size_t task) {
    uint32_t p = static_cast<uint32_t>(task);
    uint32_t b = r_starts[p];
    uint32_t n_part = r_starts[p + 1] - b;
    if (vec) {
      BuildFlatAvx512(tk.data() + bank_base[p], tp.data() + bank_base[p],
                      bank_size[p], table_factor, rp_keys.data() + b,
                      rp_pays.data() + b, n_part);
    } else {
      BuildFlatScalar(tk.data() + bank_base[p], tp.data() + bank_base[p],
                      bank_size[p], table_factor, rp_keys.data() + b,
                      rp_pays.data() + b, n_part);
    }
  });
  const double build_s = timer.Seconds();
  g_join_build_ns.Record(SecondsToNs(build_s));
  if (timings != nullptr) timings->build_s = build_s;

  // Phase 3: probe across the bank (part chosen per key by the hash),
  // morsel-wise with work stealing; per-morsel output segments keep the
  // result layout independent of the worker schedule.
  timer.Reset();
  const MorselGrid s_grid(s.n);
  const size_t s_morsels = s_grid.count();
  std::vector<uint64_t> seg_begin(s_morsels), seg_count(s_morsels);
  TaskPool::Get().ParallelFor(s_morsels, t_count, [&](int, size_t m) {
    size_t b = s_grid.begin(m);
    seg_begin[m] = b;
    seg_count[m] =
        ProbeDispatch(vec, tk.data(), tp.data(), bank_base.data(),
                      bank_size.data(), table_factor, part_fn.factor, parts,
                      s.keys + b, s.pays + b, s_grid.size(m), out_keys + b,
                      out_spays + b, out_rpays + b);
  });
  size_t total = CompactSegments(s_morsels, seg_begin.data(),
                                 seg_count.data(), out_keys, out_rpays,
                                 out_spays);
  const double probe_s = timer.Seconds();
  g_join_probe_ns.Record(SecondsToNs(probe_s));
  if (timings != nullptr) timings->probe_s = probe_s;
  return total;
}

size_t HashJoinMaxPartition(const JoinRelation& r, const JoinRelation& s,
                            const JoinConfig& cfg, uint32_t* out_keys,
                            uint32_t* out_rpays, uint32_t* out_spays,
                            JoinTimings* timings) {
  const int t_count = cfg.threads < 1 ? 1 : cfg.threads;
  const bool vec = cfg.isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512);
  const uint32_t target =
      cfg.target_part_tuples < 64 ? 64 : cfg.target_part_tuples;
  uint32_t p_total = static_cast<uint32_t>(
      NextPowerOfTwo(r.n / target + 1));
  if (p_total > (1u << 16)) p_total = 1u << 16;
  const uint32_t total_bits = Log2Floor(p_total);
  const uint32_t table_factor = HashFactor(cfg.seed, 0);

  Timer timer;
  AlignedBuffer<uint32_t> r_keys_a(ShuffleCapacity(r.n)),
      r_pays_a(ShuffleCapacity(r.n));
  AlignedBuffer<uint32_t> s_keys_a(ShuffleCapacity(s.n)),
      s_pays_a(ShuffleCapacity(s.n));
  // The refine pass writes part-major ranges and the per-part build/probe
  // tasks map to contiguous lane blocks, so lane-block first touch keeps
  // each part's tuples on the node that builds and probes it.
  numa::PlaceBuffer(r_keys_a.data(), r_keys_a.size() * sizeof(uint32_t),
                    t_count, numa::Placement::kNodeLocal);
  numa::PlaceBuffer(r_pays_a.data(), r_pays_a.size() * sizeof(uint32_t),
                    t_count, numa::Placement::kNodeLocal);
  numa::PlaceBuffer(s_keys_a.data(), s_keys_a.size() * sizeof(uint32_t),
                    t_count, numa::Placement::kNodeLocal);
  numa::PlaceBuffer(s_pays_a.data(), s_pays_a.size() * sizeof(uint32_t),
                    t_count, numa::Placement::kNodeLocal);
  std::vector<uint32_t> r_bounds(p_total + 1), s_bounds(p_total + 1);
  ParallelPartitionResources res;

  const uint32_t* rk;
  const uint32_t* rp;
  const uint32_t* sk;
  const uint32_t* sp;
  if (total_bits == 0) {
    // Degenerate single partition: no movement.
    rk = r.keys;
    rp = r.pays;
    sk = s.keys;
    sp = s.pays;
    r_bounds[0] = 0;
    r_bounds[1] = static_cast<uint32_t>(r.n);
    s_bounds[0] = 0;
    s_bounds[1] = static_cast<uint32_t>(s.n);
  } else {
    // The planner splits total_bits into as many passes as the budget
    // demands (one for the common small-table cases); every pass partitions
    // by `bits` hash bits with `rem` hash bits below them, all derived from
    // the one shared hash value, so the final layout equals a single
    // total_bits-wide hash partition.
    const PartitionBudget budget = PartitionBudget::Default();
    const uint32_t p_arg = p_total;
    const uint32_t seed = cfg.seed;
    PassFnMaker maker = [p_arg, seed](uint32_t bits, uint32_t rem) {
      return PartitionFn::HashRadix(bits, rem, p_arg, seed + 1);
    };
    // Shared mid buffers across both relations; MultiPassPartition only
    // touches scratch when the plan has more than one pass.
    AlignedBuffer<uint32_t> mid_keys, mid_pays;
    uint32_t* mk = nullptr;
    uint32_t* mp = nullptr;
    if (PlanRadixPasses(total_bits, budget).passes.size() > 1) {
      mid_keys.Reset(ShuffleCapacity(std::max(r.n, s.n)));
      mid_pays.Reset(ShuffleCapacity(std::max(r.n, s.n)));
      numa::PlaceBuffer(mid_keys.data(),
                        mid_keys.size() * sizeof(uint32_t), t_count,
                        numa::Placement::kNodeLocal);
      numa::PlaceBuffer(mid_pays.data(),
                        mid_pays.size() * sizeof(uint32_t), t_count,
                        numa::Placement::kNodeLocal);
      mk = mid_keys.data();
      mp = mid_pays.data();
    }
    MultiPassPartition(maker, total_bits, r.keys, r.pays, r.n,
                       r_keys_a.data(), r_pays_a.data(), mk, mp, cfg.isa,
                       t_count, budget, r_bounds.data(), &res);
    MultiPassPartition(maker, total_bits, s.keys, s.pays, s.n,
                       s_keys_a.data(), s_pays_a.data(), mk, mp, cfg.isa,
                       t_count, budget, s_bounds.data(), &res);
    rk = r_keys_a.data();
    rp = r_pays_a.data();
    sk = s_keys_a.data();
    sp = s_pays_a.data();
  }
  const double partition_s = timer.Seconds();
  g_join_partition_ns.Record(SecondsToNs(partition_s));
  if (timings != nullptr) timings->partition_s = partition_s;

  // Per-part cache-resident build + probe, parts distributed across threads.
  timer.Reset();
  uint32_t max_part = 0;
  for (uint32_t q = 0; q < p_total; ++q) {
    uint32_t c = r_bounds[q + 1] - r_bounds[q];
    if (c > max_part) max_part = c;
  }
  const uint32_t nb_max =
      static_cast<uint32_t>(NextPowerOfTwo(max_part * 2 + 32));
  std::vector<uint64_t> seg_begin(p_total), seg_count(p_total);
  const int lanes = TaskPool::LaneCount(p_total, t_count);
  // Lane-private cache-resident tables, reused across every part that lane
  // ends up claiming (including stolen ones — skewed parts rebalance).
  std::vector<AlignedBuffer<uint32_t>> lane_tk(lanes), lane_tp(lanes);
  TaskPool::Get().ParallelFor(p_total, t_count, [&](int worker, size_t task) {
    uint32_t q = static_cast<uint32_t>(task);
    AlignedBuffer<uint32_t>& tk = lane_tk[worker];
    AlignedBuffer<uint32_t>& tp = lane_tp[worker];
    if (tk.size() < nb_max) {
      tk.Reset(nb_max);
      tp.Reset(nb_max);
    }
    uint32_t rb = r_bounds[q];
    uint32_t rn = r_bounds[q + 1] - rb;
    uint32_t sb = s_bounds[q];
    uint32_t sn = s_bounds[q + 1] - sb;
    seg_begin[q] = sb;
    if (sn == 0) {
      seg_count[q] = 0;
      return;
    }
    uint32_t nb = static_cast<uint32_t>(NextPowerOfTwo(rn * 2 + 32));
    std::memset(tk.data(), 0xFF, nb * sizeof(uint32_t));
    if (vec) {
      BuildFlatAvx512(tk.data(), tp.data(), nb, table_factor, rk + rb,
                      rp + rb, rn);
    } else {
      BuildFlatScalar(tk.data(), tp.data(), nb, table_factor, rk + rb,
                      rp + rb, rn);
    }
    const uint32_t base0 = 0;
    seg_count[q] = ProbeDispatch(
        vec, tk.data(), tp.data(), &base0, &nb, table_factor, 1, 1,
        sk + sb, sp + sb, sn, out_keys + sb, out_spays + sb,
        out_rpays + sb);
  });
  size_t total = CompactSegments(p_total, seg_begin.data(), seg_count.data(),
                                 out_keys, out_rpays, out_spays);
  // The paper reports build and probe separately; per-part interleaving
  // makes an exact split impossible, so attribute the whole phase to
  // build+probe proportionally by |R| vs |S|.
  const double phase = timer.Seconds();
  const double frac =
      r.n + s.n == 0 ? 0.5 : static_cast<double>(r.n) / (r.n + s.n);
  g_join_build_ns.Record(SecondsToNs(phase * frac));
  g_join_probe_ns.Record(SecondsToNs(phase * (1 - frac)));
  if (timings != nullptr) {
    timings->build_s = phase * frac;
    timings->probe_s = phase * (1 - frac);
  }
  return total;
}

}  // namespace simddb
