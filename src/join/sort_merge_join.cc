#include "join/sort_merge_join.h"

#include <cstring>

#include "sort/radix_sort.h"
#include "util/aligned_buffer.h"
#include "util/timer.h"

namespace simddb {

size_t SortMergeJoin(const JoinRelation& r, const JoinRelation& s,
                     const JoinConfig& cfg, uint32_t* out_keys,
                     uint32_t* out_rpays, uint32_t* out_spays,
                     JoinTimings* timings) {
  Timer timer;
  AlignedBuffer<uint32_t> rk(r.n + 16), rp(r.n + 16);
  AlignedBuffer<uint32_t> sk(s.n + 16), sp(s.n + 16);
  AlignedBuffer<uint32_t> scratch_k(std::max(r.n, s.n) + 16);
  AlignedBuffer<uint32_t> scratch_p(std::max(r.n, s.n) + 16);
  std::memcpy(rk.data(), r.keys, r.n * sizeof(uint32_t));
  std::memcpy(rp.data(), r.pays, r.n * sizeof(uint32_t));
  std::memcpy(sk.data(), s.keys, s.n * sizeof(uint32_t));
  std::memcpy(sp.data(), s.pays, s.n * sizeof(uint32_t));
  RadixSortConfig sort_cfg;
  sort_cfg.isa = cfg.isa;
  sort_cfg.threads = cfg.threads;
  RadixSortPairs(rk.data(), rp.data(), scratch_k.data(), scratch_p.data(),
                 r.n, sort_cfg);
  RadixSortPairs(sk.data(), sp.data(), scratch_k.data(), scratch_p.data(),
                 s.n, sort_cfg);
  if (timings != nullptr) timings->partition_s = timer.Seconds();

  // Run-based merge: emit the cross product of equal-key runs.
  timer.Reset();
  size_t i = 0, j = 0, out = 0;
  while (i < r.n && j < s.n) {
    uint32_t kr = rk[i];
    uint32_t ks = sk[j];
    if (kr < ks) {
      ++i;
    } else if (kr > ks) {
      ++j;
    } else {
      size_t ri_end = i;
      while (ri_end < r.n && rk[ri_end] == kr) ++ri_end;
      size_t sj_end = j;
      while (sj_end < s.n && sk[sj_end] == kr) ++sj_end;
      for (size_t a = i; a < ri_end; ++a) {
        for (size_t b = j; b < sj_end; ++b) {
          out_keys[out] = kr;
          out_rpays[out] = rp[a];
          out_spays[out] = sp[b];
          ++out;
        }
      }
      i = ri_end;
      j = sj_end;
    }
  }
  if (timings != nullptr) timings->probe_s = timer.Seconds();
  return out;
}

}  // namespace simddb
