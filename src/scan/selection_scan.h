#ifndef SIMDDB_SCAN_SELECTION_SCAN_H_
#define SIMDDB_SCAN_SELECTION_SCAN_H_

// Selection scans (§4): filter a (key, payload) column pair by the range
// predicate k_lo <= key <= k_hi, materializing qualifying tuples. All the
// variants evaluated in Fig. 5 are implemented:
//
//   kScalarBranching        Alg. 1 — short-circuit branches.
//   kScalarBranchless       Alg. 2 — predication, no branches [29].
//   kVectorBitExtractDirect SIMD predicate, one tuple extracted per mask bit.
//   kVectorStoreDirect      SIMD predicate + selective stores of the values.
//   kVectorBitExtractIndirect  bit-extract into a cache-resident index
//                              buffer, then gather + streaming flush.
//   kVectorStoreIndirect    Alg. 3 — selective-store of qualifying *indexes*
//                           into an in-cache buffer; gather keys/payloads and
//                           flush with streaming stores when it fills.
//   kAvx2Direct / kAvx2Indirect  the Haswell versions of App. D, using
//                           permutation-table selective stores.
//
// Output buffers must have capacity for n + kSelectionScanPad elements; the
// vector kernels may overshoot by up to one vector before the final count is
// returned.

#include <cstddef>
#include <cstdint>

namespace simddb {

/// Required slack (in elements) beyond n in every output buffer.
inline constexpr size_t kSelectionScanPad = 16;

/// Required allocation size for a serial scan's output buffers on an
/// n-tuple input — the centralized scratch contract, mirroring
/// ShuffleCapacity (partition/shuffle.h) and ChunkCapacity (exec/chunk.h).
/// Size buffers with this instead of ad-hoc `n + kSelectionScanPad`;
/// SelectionScan asserts it when told the real capacity.
inline constexpr size_t SelectionScanCapacity(size_t n) {
  return n + kSelectionScanPad;
}

/// Selection scan implementation selector (see file comment).
enum class ScanVariant {
  kScalarBranching,
  kScalarBranchless,
  kVectorBitExtractDirect,
  kVectorStoreDirect,
  kVectorBitExtractIndirect,
  kVectorStoreIndirect,
  kAvx2Direct,
  kAvx2Indirect,
};

/// Human-readable variant name for logs and benchmark labels.
const char* ScanVariantName(ScanVariant v);

/// True if the host CPU can run the given variant.
bool ScanVariantSupported(ScanVariant v);

/// Scans keys[0..n), copying tuples with k_lo <= key <= k_hi (inclusive) to
/// (out_keys, out_pays). Returns the number of qualifying tuples. Output
/// order matches input order for every variant. `out_capacity`, when
/// nonzero, is asserted to satisfy the SelectionScanCapacity(n) contract at
/// entry (debug builds), catching undersized buffers before a vector kernel
/// overshoots into them.
size_t SelectionScan(ScanVariant variant, const uint32_t* keys,
                     const uint32_t* pays, size_t n, uint32_t k_lo,
                     uint32_t k_hi, uint32_t* out_keys, uint32_t* out_pays,
                     size_t out_capacity = 0);

/// Output capacity (in elements) each output buffer needs for
/// SelectionScanParallel on an n-tuple input: every 16K-tuple morsel scans
/// into a staging slot with 16 elements of overshoot slack before the
/// in-order compaction.
size_t SelectionScanParallelCapacity(size_t n);

/// Morsel-parallel SelectionScan on the shared TaskPool: morsels are scanned
/// concurrently (work-stealing rebalances selectivity skew) and compacted in
/// morsel order, so the output is identical to the serial scan for every
/// thread count. Output buffers need SelectionScanParallelCapacity(n)
/// elements. threads <= 1 falls back to the serial scan.
/// `out_capacity`, when nonzero, is asserted against
/// SelectionScanParallelCapacity(n) at entry, like SelectionScan.
size_t SelectionScanParallel(ScanVariant variant, const uint32_t* keys,
                             const uint32_t* pays, size_t n, uint32_t k_lo,
                             uint32_t k_hi, uint32_t* out_keys,
                             uint32_t* out_pays, int threads,
                             size_t out_capacity = 0);

namespace detail {
size_t SelectScalarBranching(const uint32_t* keys, const uint32_t* pays,
                             size_t n, uint32_t k_lo, uint32_t k_hi,
                             uint32_t* out_keys, uint32_t* out_pays);
size_t SelectScalarBranchless(const uint32_t* keys, const uint32_t* pays,
                              size_t n, uint32_t k_lo, uint32_t k_hi,
                              uint32_t* out_keys, uint32_t* out_pays);
size_t SelectAvx512(ScanVariant variant, const uint32_t* keys,
                    const uint32_t* pays, size_t n, uint32_t k_lo,
                    uint32_t k_hi, uint32_t* out_keys, uint32_t* out_pays);
size_t SelectAvx2(ScanVariant variant, const uint32_t* keys,
                  const uint32_t* pays, size_t n, uint32_t k_lo, uint32_t k_hi,
                  uint32_t* out_keys, uint32_t* out_pays);
}  // namespace detail

}  // namespace simddb

#endif  // SIMDDB_SCAN_SELECTION_SCAN_H_
