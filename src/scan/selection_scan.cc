#include "scan/selection_scan.h"

#include "core/isa.h"

namespace simddb {

const char* ScanVariantName(ScanVariant v) {
  switch (v) {
    case ScanVariant::kScalarBranching:
      return "scalar_branching";
    case ScanVariant::kScalarBranchless:
      return "scalar_branchless";
    case ScanVariant::kVectorBitExtractDirect:
      return "vector_bitextract_direct";
    case ScanVariant::kVectorStoreDirect:
      return "vector_selstore_direct";
    case ScanVariant::kVectorBitExtractIndirect:
      return "vector_bitextract_indirect";
    case ScanVariant::kVectorStoreIndirect:
      return "vector_selstore_indirect";
    case ScanVariant::kAvx2Direct:
      return "avx2_direct";
    case ScanVariant::kAvx2Indirect:
      return "avx2_indirect";
  }
  return "unknown";
}

bool ScanVariantSupported(ScanVariant v) {
  switch (v) {
    case ScanVariant::kScalarBranching:
    case ScanVariant::kScalarBranchless:
      return true;
    case ScanVariant::kAvx2Direct:
    case ScanVariant::kAvx2Indirect:
      return IsaSupported(Isa::kAvx2);
    default:
      return IsaSupported(Isa::kAvx512);
  }
}

size_t SelectionScan(ScanVariant variant, const uint32_t* keys,
                     const uint32_t* pays, size_t n, uint32_t k_lo,
                     uint32_t k_hi, uint32_t* out_keys, uint32_t* out_pays) {
  switch (variant) {
    case ScanVariant::kScalarBranching:
      return detail::SelectScalarBranching(keys, pays, n, k_lo, k_hi,
                                           out_keys, out_pays);
    case ScanVariant::kScalarBranchless:
      return detail::SelectScalarBranchless(keys, pays, n, k_lo, k_hi,
                                            out_keys, out_pays);
    case ScanVariant::kAvx2Direct:
    case ScanVariant::kAvx2Indirect:
      return detail::SelectAvx2(variant, keys, pays, n, k_lo, k_hi, out_keys,
                                out_pays);
    default:
      return detail::SelectAvx512(variant, keys, pays, n, k_lo, k_hi,
                                  out_keys, out_pays);
  }
}

namespace detail {

// Alg. 1: short-circuit branching scalar scan.
size_t SelectScalarBranching(const uint32_t* keys, const uint32_t* pays,
                             size_t n, uint32_t k_lo, uint32_t k_hi,
                             uint32_t* out_keys, uint32_t* out_pays) {
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    if (k >= k_lo && k <= k_hi) {
      out_pays[j] = pays[i];
      out_keys[j] = k;
      ++j;
    }
  }
  return j;
}

// Alg. 2: branch-free scalar scan — copy every tuple, advance the output
// index by the predicate value [29].
size_t SelectScalarBranchless(const uint32_t* keys, const uint32_t* pays,
                              size_t n, uint32_t k_lo, uint32_t k_hi,
                              uint32_t* out_keys, uint32_t* out_pays) {
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    out_pays[j] = pays[i];
    out_keys[j] = k;
    j += static_cast<size_t>(k >= k_lo) & static_cast<size_t>(k <= k_hi);
  }
  return j;
}

}  // namespace detail
}  // namespace simddb
