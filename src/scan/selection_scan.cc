#include "scan/selection_scan.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "core/isa.h"
#include "obs/metrics.h"
#include "util/task_pool.h"

namespace simddb {
namespace {

// Phase timers for the parallel scan (obs/metrics.h): the morsel fan-out vs
// the serial in-order compaction, so bench rows can show how much of the
// wall time the sequential tail costs.
obs::PhaseTimer g_scan_parallel_ns("scan_parallel_ns");
obs::PhaseTimer g_scan_compact_ns("scan_compact_ns");

}  // namespace

const char* ScanVariantName(ScanVariant v) {
  switch (v) {
    case ScanVariant::kScalarBranching:
      return "scalar_branching";
    case ScanVariant::kScalarBranchless:
      return "scalar_branchless";
    case ScanVariant::kVectorBitExtractDirect:
      return "vector_bitextract_direct";
    case ScanVariant::kVectorStoreDirect:
      return "vector_selstore_direct";
    case ScanVariant::kVectorBitExtractIndirect:
      return "vector_bitextract_indirect";
    case ScanVariant::kVectorStoreIndirect:
      return "vector_selstore_indirect";
    case ScanVariant::kAvx2Direct:
      return "avx2_direct";
    case ScanVariant::kAvx2Indirect:
      return "avx2_indirect";
  }
  return "unknown";
}

bool ScanVariantSupported(ScanVariant v) {
  switch (v) {
    case ScanVariant::kScalarBranching:
    case ScanVariant::kScalarBranchless:
      return true;
    case ScanVariant::kAvx2Direct:
    case ScanVariant::kAvx2Indirect:
      return IsaSupported(Isa::kAvx2);
    default:
      return IsaSupported(Isa::kAvx512);
  }
}

size_t SelectionScan(ScanVariant variant, const uint32_t* keys,
                     const uint32_t* pays, size_t n, uint32_t k_lo,
                     uint32_t k_hi, uint32_t* out_keys, uint32_t* out_pays,
                     size_t out_capacity) {
  assert(out_capacity == 0 || out_capacity >= SelectionScanCapacity(n));
  (void)out_capacity;
  switch (variant) {
    case ScanVariant::kScalarBranching:
      return detail::SelectScalarBranching(keys, pays, n, k_lo, k_hi,
                                           out_keys, out_pays);
    case ScanVariant::kScalarBranchless:
      return detail::SelectScalarBranchless(keys, pays, n, k_lo, k_hi,
                                            out_keys, out_pays);
    case ScanVariant::kAvx2Direct:
    case ScanVariant::kAvx2Indirect:
      return detail::SelectAvx2(variant, keys, pays, n, k_lo, k_hi, out_keys,
                                out_pays);
    default:
      return detail::SelectAvx512(variant, keys, pays, n, k_lo, k_hi,
                                  out_keys, out_pays);
  }
}

size_t SelectionScanParallelCapacity(size_t n) {
  return n + 16 * MorselGrid(n).count() + kSelectionScanPad;
}

size_t SelectionScanParallel(ScanVariant variant, const uint32_t* keys,
                             const uint32_t* pays, size_t n, uint32_t k_lo,
                             uint32_t k_hi, uint32_t* out_keys,
                             uint32_t* out_pays, int threads,
                             size_t out_capacity) {
  assert(out_capacity == 0 ||
         out_capacity >= SelectionScanParallelCapacity(n));
  (void)out_capacity;
  const MorselGrid grid(n);
  const size_t m_count = grid.count();
  if (threads <= 1 || m_count <= 1) {
    return SelectionScan(variant, keys, pays, n, k_lo, k_hi, out_keys,
                         out_pays);
  }
  // Each morsel scans into the staging slot starting at its input offset
  // plus 16*m of slack, so a vector kernel's <= 16-element overshoot past
  // its returned count can never clobber a neighbour morsel's segment.
  std::vector<size_t> cnt(m_count);
  {
    obs::ScopedPhase phase(g_scan_parallel_ns);
    TaskPool::Get().ParallelFor(m_count, threads, [&](int, size_t m) {
      const size_t b = grid.begin(m);
      const size_t ob = b + 16 * m;
      cnt[m] = SelectionScan(variant, keys + b, pays + b, grid.size(m), k_lo,
                             k_hi, out_keys + ob, out_pays + ob);
    });
  }
  // In-order forward compaction. Sequential on purpose: a morsel's target
  // range can overlap an earlier neighbour's still-unread source, so the
  // moves must retire in morsel order (each move's target ends before every
  // later morsel's source starts).
  obs::ScopedPhase phase(g_scan_compact_ns);
  size_t cursor = 0;
  for (size_t m = 0; m < m_count; ++m) {
    const size_t src = grid.begin(m) + 16 * m;
    if (cnt[m] > 0 && src != cursor) {
      std::memmove(out_keys + cursor, out_keys + src,
                   cnt[m] * sizeof(uint32_t));
      std::memmove(out_pays + cursor, out_pays + src,
                   cnt[m] * sizeof(uint32_t));
    }
    cursor += cnt[m];
  }
  return cursor;
}

namespace detail {

// Alg. 1: short-circuit branching scalar scan.
size_t SelectScalarBranching(const uint32_t* keys, const uint32_t* pays,
                             size_t n, uint32_t k_lo, uint32_t k_hi,
                             uint32_t* out_keys, uint32_t* out_pays) {
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    if (k >= k_lo && k <= k_hi) {
      out_pays[j] = pays[i];
      out_keys[j] = k;
      ++j;
    }
  }
  return j;
}

// Alg. 2: branch-free scalar scan — copy every tuple, advance the output
// index by the predicate value [29].
size_t SelectScalarBranchless(const uint32_t* keys, const uint32_t* pays,
                              size_t n, uint32_t k_lo, uint32_t k_hi,
                              uint32_t* out_keys, uint32_t* out_pays) {
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    out_pays[j] = pays[i];
    out_keys[j] = k;
    j += static_cast<size_t>(k >= k_lo) & static_cast<size_t>(k <= k_hi);
  }
  return j;
}

}  // namespace detail
}  // namespace simddb
