// AVX-512 selection scans (§4, Alg. 3 and App. D for the idioms).

#include "core/avx512_ops.h"
#include "scan/selection_scan.h"

namespace simddb::detail {
namespace {

namespace v = simddb::avx512;

// In-cache index buffer for the indirect variants (Alg. 3): 4 KB of rids,
// small enough to stay L1 resident beside the streamed output lines.
constexpr size_t kBufSize = 1024;

// Evaluates the range predicate on 16 keys.
inline __mmask16 Predicate(__m512i k, __m512i lo, __m512i hi) {
  __mmask16 m = _mm512_cmpge_epu32_mask(k, lo);
  return _mm512_mask_cmple_epu32_mask(m, k, hi);
}

// Flushes `count` buffered rids: gathers keys/payloads at those rids and
// writes them to the output with streaming stores when aligned. count must
// be a multiple of 16.
inline void FlushRids(const uint32_t* rids, size_t count, const uint32_t* keys,
                      const uint32_t* pays, uint32_t* out_keys,
                      uint32_t* out_pays, bool streamable) {
  for (size_t b = 0; b < count; b += 16) {
    __m512i p = _mm512_load_si512(rids + b);
    __m512i k = v::Gather(keys, p);
    __m512i val = v::Gather(pays, p);
    if (streamable) {
      v::StreamStore(out_keys + b, k);
      v::StreamStore(out_pays + b, val);
    } else {
      _mm512_storeu_si512(out_keys + b, k);
      _mm512_storeu_si512(out_pays + b, val);
    }
  }
}

// Direct variants: qualifying tuples materialized as soon as the predicate
// is evaluated; payload column is touched for every vector.
size_t SelectDirect(bool bit_extract, const uint32_t* keys,
                    const uint32_t* pays, size_t n, uint32_t k_lo,
                    uint32_t k_hi, uint32_t* out_keys, uint32_t* out_pays) {
  const __m512i lo = _mm512_set1_epi32(static_cast<int>(k_lo));
  const __m512i hi = _mm512_set1_epi32(static_cast<int>(k_hi));
  size_t i = 0;
  size_t j = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    __mmask16 m = Predicate(k, lo, hi);
    if (m == 0) continue;
    __m512i val = _mm512_loadu_si512(pays + i);
    if (bit_extract) {
      // Partially vectorized: extract one qualifying lane per mask bit.
      alignas(64) uint32_t ak[16], av[16];
      _mm512_store_si512(ak, k);
      _mm512_store_si512(av, val);
      uint32_t bits = m;
      while (bits != 0) {
        uint32_t lane = static_cast<uint32_t>(__builtin_ctz(bits));
        out_keys[j] = ak[lane];
        out_pays[j] = av[lane];
        ++j;
        bits &= bits - 1;
      }
    } else {
      v::SelectiveStore(out_keys + j, m, k);
      v::SelectiveStore(out_pays + j, m, val);
      j += __builtin_popcount(m);
    }
  }
  for (; i < n; ++i) {
    uint32_t k = keys[i];
    out_pays[j] = pays[i];
    out_keys[j] = k;
    j += static_cast<size_t>(k >= k_lo) & static_cast<size_t>(k <= k_hi);
  }
  return j;
}

// Indirect variants (Alg. 3): only the key column is read during predicate
// evaluation; qualifying rids are buffered in cache and dereferenced in
// batches, so low selectivities never touch the payload column bandwidth.
size_t SelectIndirect(bool bit_extract, const uint32_t* keys,
                      const uint32_t* pays, size_t n, uint32_t k_lo,
                      uint32_t k_hi, uint32_t* out_keys, uint32_t* out_pays) {
  const __m512i lo = _mm512_set1_epi32(static_cast<int>(k_lo));
  const __m512i hi = _mm512_set1_epi32(static_cast<int>(k_hi));
  const bool streamable =
      v::IsStreamAligned(out_keys) && v::IsStreamAligned(out_pays);
  alignas(64) uint32_t rid_buf[kBufSize + 16];
  __m512i rid = _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3,
                                 2, 1, 0);
  const __m512i step = _mm512_set1_epi32(16);
  size_t i = 0;
  size_t j = 0;  // output index (count of flushed tuples)
  size_t l = 0;  // buffer fill
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    __mmask16 m = Predicate(k, lo, hi);
    if (m != 0) {
      if (bit_extract) {
        uint32_t bits = m;
        uint32_t base = static_cast<uint32_t>(i);
        while (bits != 0) {
          rid_buf[l++] = base + static_cast<uint32_t>(__builtin_ctz(bits));
          bits &= bits - 1;
        }
      } else {
        v::SelectiveStore(rid_buf + l, m, rid);
        l += __builtin_popcount(m);
      }
      if (l > kBufSize - 16) {
        FlushRids(rid_buf, kBufSize - 16, keys, pays, out_keys + j,
                  out_pays + j, streamable);
        // Move the overflow rids to the front of the buffer.
        __m512i overflow = _mm512_load_si512(rid_buf + (kBufSize - 16));
        _mm512_store_si512(rid_buf, overflow);
        j += kBufSize - 16;
        l -= kBufSize - 16;
      }
    }
    rid = _mm512_add_epi32(rid, step);
  }
  // Scalar tail of the input.
  for (; i < n; ++i) {
    uint32_t k = keys[i];
    if (k >= k_lo && k <= k_hi) rid_buf[l++] = static_cast<uint32_t>(i);
  }
  // Drain the buffer.
  for (size_t b = 0; b < l; ++b) {
    uint32_t p = rid_buf[b];
    out_keys[j] = keys[p];
    out_pays[j] = pays[p];
    ++j;
  }
  if (streamable) _mm_sfence();
  return j;
}

}  // namespace

size_t SelectAvx512(ScanVariant variant, const uint32_t* keys,
                    const uint32_t* pays, size_t n, uint32_t k_lo,
                    uint32_t k_hi, uint32_t* out_keys, uint32_t* out_pays) {
  switch (variant) {
    case ScanVariant::kVectorBitExtractDirect:
      return SelectDirect(true, keys, pays, n, k_lo, k_hi, out_keys,
                          out_pays);
    case ScanVariant::kVectorStoreDirect:
      return SelectDirect(false, keys, pays, n, k_lo, k_hi, out_keys,
                          out_pays);
    case ScanVariant::kVectorBitExtractIndirect:
      return SelectIndirect(true, keys, pays, n, k_lo, k_hi, out_keys,
                            out_pays);
    case ScanVariant::kVectorStoreIndirect:
      return SelectIndirect(false, keys, pays, n, k_lo, k_hi, out_keys,
                            out_pays);
    default:
      return 0;
  }
}

}  // namespace simddb::detail
