// AVX2 (Haswell-style) selection scans: permutation-table selective stores
// as in App. D; gathers are native, streaming via _mm256_stream_si256.

#include "core/avx2_ops.h"
#include "scan/selection_scan.h"

namespace simddb::detail {
namespace {

namespace v = simddb::avx2;

constexpr size_t kBufSize = 1024;

inline uint32_t Predicate8(__m256i k, __m256i lo_m1, __m256i hi_p1) {
  // Unsigned range check with signed compares: flip the sign bit.
  // Callers pre-bias lo/hi; here k is pre-biased too.
  __m256i gt_lo = _mm256_cmpgt_epi32(k, lo_m1);
  __m256i lt_hi = _mm256_cmpgt_epi32(hi_p1, k);
  return v::MoveMask(_mm256_and_si256(gt_lo, lt_hi));
}

inline __m256i BiasSign(__m256i x) {
  return _mm256_xor_si256(x, _mm256_set1_epi32(INT32_MIN));
}

size_t SelectAvx2Direct(const uint32_t* keys, const uint32_t* pays, size_t n,
                        uint32_t k_lo, uint32_t k_hi, uint32_t* out_keys,
                        uint32_t* out_pays) {
  const __m256i lo_m1 =
      BiasSign(_mm256_set1_epi32(static_cast<int>(k_lo - 1)));
  const __m256i hi_p1 =
      BiasSign(_mm256_set1_epi32(static_cast<int>(k_hi + 1)));
  size_t i = 0, j = 0;
  // Predicate is evaluated on biased keys; k_lo==0 / k_hi==UINT32_MAX wrap
  // is handled by the scalar pre-check below.
  if (k_lo == 0 && k_hi == 0xFFFFFFFFu) {
    for (; i < n; ++i) {
      out_keys[j] = keys[i];
      out_pays[j] = pays[i];
      ++j;
    }
    return j;
  }
  const bool lo_zero = (k_lo == 0);
  const bool hi_max = (k_hi == 0xFFFFFFFFu);
  for (; i + 8 <= n; i += 8) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    __m256i kb = BiasSign(k);
    uint32_t m;
    if (lo_zero) {
      m = v::MoveMask(_mm256_cmpgt_epi32(hi_p1, kb));
    } else if (hi_max) {
      m = v::MoveMask(_mm256_cmpgt_epi32(kb, lo_m1));
    } else {
      m = Predicate8(kb, lo_m1, hi_p1);
    }
    if (m == 0) continue;
    __m256i val =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pays + i));
    v::SelectiveStore(out_keys + j, m, k);
    v::SelectiveStore(out_pays + j, m, val);
    j += __builtin_popcount(m);
  }
  for (; i < n; ++i) {
    uint32_t k = keys[i];
    out_pays[j] = pays[i];
    out_keys[j] = k;
    j += static_cast<size_t>(k >= k_lo) & static_cast<size_t>(k <= k_hi);
  }
  return j;
}

size_t SelectAvx2Indirect(const uint32_t* keys, const uint32_t* pays,
                          size_t n, uint32_t k_lo, uint32_t k_hi,
                          uint32_t* out_keys, uint32_t* out_pays) {
  alignas(32) uint32_t rid_buf[kBufSize + 8];
  const bool streamable = ((reinterpret_cast<uintptr_t>(out_keys) |
                            reinterpret_cast<uintptr_t>(out_pays)) &
                           31u) == 0;
  size_t i = 0, j = 0, l = 0;
  const __m256i lo_m1 =
      BiasSign(_mm256_set1_epi32(static_cast<int>(k_lo - 1)));
  const __m256i hi_p1 =
      BiasSign(_mm256_set1_epi32(static_cast<int>(k_hi + 1)));
  const bool lo_zero = (k_lo == 0);
  const bool hi_max = (k_hi == 0xFFFFFFFFu);
  __m256i rid = _mm256_set_epi32(7, 6, 5, 4, 3, 2, 1, 0);
  const __m256i step = _mm256_set1_epi32(8);
  if (lo_zero && hi_max) {
    for (; i < n; ++i) {
      out_keys[j] = keys[i];
      out_pays[j] = pays[i];
      ++j;
    }
    return j;
  }
  for (; i + 8 <= n; i += 8) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    __m256i kb = BiasSign(k);
    uint32_t m;
    if (lo_zero) {
      m = v::MoveMask(_mm256_cmpgt_epi32(hi_p1, kb));
    } else if (hi_max) {
      m = v::MoveMask(_mm256_cmpgt_epi32(kb, lo_m1));
    } else {
      m = Predicate8(kb, lo_m1, hi_p1);
    }
    if (m != 0) {
      v::SelectiveStore(rid_buf + l, m, rid);
      l += __builtin_popcount(m);
      if (l > kBufSize - 8) {
        for (size_t b = 0; b < kBufSize - 8; b += 8) {
          __m256i p = _mm256_load_si256(
              reinterpret_cast<const __m256i*>(rid_buf + b));
          __m256i kk = v::Gather(keys, p);
          __m256i vv = v::Gather(pays, p);
          if (streamable) {
            _mm256_stream_si256(reinterpret_cast<__m256i*>(out_keys + j + b),
                                kk);
            _mm256_stream_si256(reinterpret_cast<__m256i*>(out_pays + j + b),
                                vv);
          } else {
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_keys + j + b),
                                kk);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_pays + j + b),
                                vv);
          }
        }
        __m256i overflow = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(rid_buf + (kBufSize - 8)));
        _mm256_store_si256(reinterpret_cast<__m256i*>(rid_buf), overflow);
        j += kBufSize - 8;
        l -= kBufSize - 8;
      }
    }
    rid = _mm256_add_epi32(rid, step);
  }
  for (; i < n; ++i) {
    uint32_t k = keys[i];
    if (k >= k_lo && k <= k_hi) rid_buf[l++] = static_cast<uint32_t>(i);
  }
  for (size_t b = 0; b < l; ++b) {
    uint32_t p = rid_buf[b];
    out_keys[j] = keys[p];
    out_pays[j] = pays[p];
    ++j;
  }
  if (streamable) _mm_sfence();
  return j;
}

}  // namespace

size_t SelectAvx2(ScanVariant variant, const uint32_t* keys,
                  const uint32_t* pays, size_t n, uint32_t k_lo, uint32_t k_hi,
                  uint32_t* out_keys, uint32_t* out_pays) {
  if (variant == ScanVariant::kAvx2Direct) {
    return SelectAvx2Direct(keys, pays, n, k_lo, k_hi, out_keys, out_pays);
  }
  return SelectAvx2Indirect(keys, pays, n, k_lo, k_hi, out_keys, out_pays);
}

}  // namespace simddb::detail
