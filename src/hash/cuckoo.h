#ifndef SIMDDB_HASH_CUCKOO_H_
#define SIMDDB_HASH_CUCKOO_H_

// Cuckoo hash table with two hash functions (§5.3, [23]). Every key resides
// in exactly one of its two candidate buckets, so probing needs at most two
// accesses and emits at most one match per probe key. Duplicate build keys
// are not supported (the paper: "cuckoo tables do not directly support key
// repeats").
//
// Probe variants (Fig. 7):
//   scalar branching    check bucket 2 only if bucket 1 missed.
//   scalar branchless   always load both buckets, blend with bitwise ops [42].
//   vertical select     Alg. 9 — gather bucket 1, selectively gather bucket 2
//                       for the lanes that missed.
//   vertical blend      gather both buckets for all lanes, then blend.
// Build variants:
//   scalar              displacement loop with a kick bound; on failure the
//                       whole build retries with fresh hash factors.
//   vector (Alg. 10)    lanes carry new, conflicting, or displaced tuples;
//                       scatter + gather-back detects conflicts.

#include <cstddef>
#include <cstdint>

#include "core/isa.h"
#include "hash/hash_table.h"
#include "util/aligned_buffer.h"

namespace simddb {

class CuckooTable {
 public:
  /// Creates a table with num_buckets single-slot buckets (>= 32). Keep the
  /// load factor at or below ~50% for reliable insertion.
  explicit CuckooTable(size_t num_buckets, uint64_t seed = 42);

  /// Empties the table (hash factors are kept).
  void Clear();

  /// Inserts n tuples with unique keys. Returns false only if insertion
  /// failed repeatedly even after rehashing with fresh factors (table too
  /// full); the table is left cleared in that case.
  bool Build(Isa isa, const uint32_t* keys, const uint32_t* pays, size_t n);
  bool BuildScalar(const uint32_t* keys, const uint32_t* pays, size_t n);
  bool BuildAvx512(const uint32_t* keys, const uint32_t* pays, size_t n);

  /// Probe variants; all write (key, probe payload, table payload) per match
  /// and return the match count.
  size_t ProbeScalarBranching(const uint32_t* keys, const uint32_t* pays,
                              size_t n, uint32_t* out_keys,
                              uint32_t* out_spays, uint32_t* out_rpays) const;
  size_t ProbeScalarBranchless(const uint32_t* keys, const uint32_t* pays,
                               size_t n, uint32_t* out_keys,
                               uint32_t* out_spays,
                               uint32_t* out_rpays) const;
  size_t ProbeVerticalSelectAvx512(const uint32_t* keys, const uint32_t* pays,
                                   size_t n, uint32_t* out_keys,
                                   uint32_t* out_spays,
                                   uint32_t* out_rpays) const;
  size_t ProbeVerticalBlendAvx512(const uint32_t* keys, const uint32_t* pays,
                                  size_t n, uint32_t* out_keys,
                                  uint32_t* out_spays,
                                  uint32_t* out_rpays) const;
  size_t ProbeAvx2(const uint32_t* keys, const uint32_t* pays, size_t n,
                   uint32_t* out_keys, uint32_t* out_spays,
                   uint32_t* out_rpays) const;

  size_t num_buckets() const { return n_buckets_; }
  size_t size() const { return count_; }
  const uint32_t* bucket_keys() const { return keys_.data(); }
  const uint32_t* bucket_pays() const { return pays_.data(); }
  uint32_t Hash1(uint32_t k) const {
    return MultHash32(k, factor1_, static_cast<uint32_t>(n_buckets_));
  }
  uint32_t Hash2(uint32_t k) const {
    return MultHash32(k, factor2_, static_cast<uint32_t>(n_buckets_));
  }

 private:
  /// One scalar insertion attempt with bounded displacements.
  bool InsertScalar(uint32_t k, uint32_t v);
  void Reseed();

  AlignedBuffer<uint32_t> keys_;
  AlignedBuffer<uint32_t> pays_;
  size_t n_buckets_;
  size_t count_ = 0;
  uint64_t seed_;
  int reseed_count_ = 0;
  uint32_t factor1_;
  uint32_t factor2_;
};

}  // namespace simddb

#endif  // SIMDDB_HASH_CUCKOO_H_
