// Horizontal SIMD probing for bucketized tables: broadcast one probe key,
// compare against a 16-slot bucket with one vector comparison [30].

#include "core/avx512_ops.h"
#include "hash/bucketized.h"

namespace simddb {

size_t BucketizedTable::ProbeHorizontalAvx512(
    const uint32_t* keys, const uint32_t* pays, size_t n, uint32_t* out_keys,
    uint32_t* out_spays, uint32_t* out_rpays) const {
  const uint32_t nb = static_cast<uint32_t>(n_buckets_);
  const __m512i empty = _mm512_set1_epi32(static_cast<int>(kEmptyKey));
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t s_pay = pays[i];
    const __m512i kv = _mm512_set1_epi32(static_cast<int>(k));
    uint32_t b = BucketFor(k);
    uint32_t step = StepFor(k);
    for (;;) {
      const uint32_t* bk = keys_.data() + static_cast<size_t>(b) * 16;
      __m512i w = _mm512_load_si512(bk);
      uint32_t match = _mm512_cmpeq_epi32_mask(w, kv);
      uint32_t at_empty = _mm512_cmpeq_epi32_mask(w, empty);
      if (at_empty != 0) {
        // Buckets fill front to back: slots past the first empty are unused.
        match &= (1u << __builtin_ctz(at_empty)) - 1;
      }
      while (match != 0) {
        uint32_t s = static_cast<uint32_t>(__builtin_ctz(match));
        out_rpays[j] = pays_[static_cast<size_t>(b) * 16 + s];
        out_spays[j] = s_pay;
        out_keys[j] = k;
        ++j;
        match &= match - 1;
      }
      if (at_empty != 0) break;
      b += step;
      if (b >= nb) b -= nb;
    }
  }
  return j;
}

size_t BucketizedCuckooTable::ProbeHorizontalAvx512(
    const uint32_t* keys, const uint32_t* pays, size_t n, uint32_t* out_keys,
    uint32_t* out_spays, uint32_t* out_rpays) const {
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    const __m512i kv = _mm512_set1_epi32(static_cast<int>(k));
    uint32_t b = Bucket1(k);
    const uint32_t* bk = keys_.data() + static_cast<size_t>(b) * 16;
    uint32_t match = _mm512_cmpeq_epi32_mask(_mm512_load_si512(bk), kv);
    if (match == 0) {
      b = Bucket2(k);
      bk = keys_.data() + static_cast<size_t>(b) * 16;
      match = _mm512_cmpeq_epi32_mask(_mm512_load_si512(bk), kv);
    }
    if (match != 0) {
      uint32_t s = static_cast<uint32_t>(__builtin_ctz(match));
      out_rpays[j] = pays_[static_cast<size_t>(b) * 16 + s];
      out_spays[j] = pays[i];
      out_keys[j] = k;
      ++j;
    }
  }
  return j;
}

}  // namespace simddb
