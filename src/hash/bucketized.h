#ifndef SIMDDB_HASH_BUCKETIZED_H_
#define SIMDDB_HASH_BUCKETIZED_H_

// Bucketized hash tables for *horizontal* vectorization — the prior state
// of the art the paper compares against ([30], Figs. 6-7). A bucket is 16
// contiguous slots (one 512-bit vector of keys); probing broadcasts one
// input key and compares it against a whole bucket with a single vector
// comparison. Open addressing advances bucket-by-bucket (linear or
// double-hashing step); the cuckoo variant has two candidate buckets and
// displaces victims when both are full.

#include <cstddef>
#include <cstdint>

#include "core/isa.h"
#include "hash/hash_table.h"
#include "util/aligned_buffer.h"

namespace simddb {

/// Probe-chain advancement scheme for BucketizedTable.
enum class BucketScheme {
  kLinear,  ///< next bucket = b + 1
  kDouble,  ///< next bucket = b + step(k), step odd, bucket count power of 2
};

/// Open-addressing table with 16-slot buckets and horizontal SIMD probing.
class BucketizedTable {
 public:
  /// num_slots is rounded up to a multiple of 16 (and to a power-of-two
  /// bucket count for the kDouble scheme).
  BucketizedTable(size_t num_slots, BucketScheme scheme, uint64_t seed = 42);

  void Clear();

  /// Inserts n tuples (duplicate keys allowed).
  void BuildScalar(const uint32_t* keys, const uint32_t* pays, size_t n);

  /// Probes; emits (key, probe payload, table payload) per match.
  size_t ProbeScalar(const uint32_t* keys, const uint32_t* pays, size_t n,
                     uint32_t* out_keys, uint32_t* out_spays,
                     uint32_t* out_rpays) const;
  /// One vector comparison per bucket (horizontal vectorization).
  size_t ProbeHorizontalAvx512(const uint32_t* keys, const uint32_t* pays,
                               size_t n, uint32_t* out_keys,
                               uint32_t* out_spays, uint32_t* out_rpays) const;

  size_t num_slots() const { return n_buckets_ * 16; }
  size_t num_buckets() const { return n_buckets_; }
  size_t size() const { return count_; }

 private:
  uint32_t BucketFor(uint32_t k) const {
    return MultHash32(k, factor1_, static_cast<uint32_t>(n_buckets_));
  }
  uint32_t StepFor(uint32_t k) const {
    return scheme_ == BucketScheme::kLinear
               ? 1u
               : ((1u + MultHash32(k, factor2_,
                                   static_cast<uint32_t>(n_buckets_ - 1))) |
                  1u);
  }

  AlignedBuffer<uint32_t> keys_;
  AlignedBuffer<uint32_t> pays_;
  size_t n_buckets_;
  size_t count_ = 0;
  BucketScheme scheme_;
  uint32_t factor1_;
  uint32_t factor2_;
};

/// Bucketized cuckoo table [30]: two candidate 16-slot buckets per key,
/// displacement when both are full. Build keys must be unique.
class BucketizedCuckooTable {
 public:
  explicit BucketizedCuckooTable(size_t num_slots, uint64_t seed = 42);

  void Clear();

  /// Returns false if insertion failed even after rehashing.
  bool BuildScalar(const uint32_t* keys, const uint32_t* pays, size_t n);

  size_t ProbeScalar(const uint32_t* keys, const uint32_t* pays, size_t n,
                     uint32_t* out_keys, uint32_t* out_spays,
                     uint32_t* out_rpays) const;
  size_t ProbeHorizontalAvx512(const uint32_t* keys, const uint32_t* pays,
                               size_t n, uint32_t* out_keys,
                               uint32_t* out_spays, uint32_t* out_rpays) const;

  size_t num_slots() const { return n_buckets_ * 16; }
  size_t size() const { return count_; }

 private:
  uint32_t Bucket1(uint32_t k) const {
    return MultHash32(k, factor1_, static_cast<uint32_t>(n_buckets_));
  }
  uint32_t Bucket2(uint32_t k) const {
    return MultHash32(k, factor2_, static_cast<uint32_t>(n_buckets_));
  }
  bool Insert(uint32_t k, uint32_t v, uint32_t* rng_state);
  void Reseed();

  AlignedBuffer<uint32_t> keys_;
  AlignedBuffer<uint32_t> pays_;
  size_t n_buckets_;
  size_t count_ = 0;
  uint64_t seed_;
  int reseed_count_ = 0;
  uint32_t factor1_;
  uint32_t factor2_;
};

}  // namespace simddb

#endif  // SIMDDB_HASH_BUCKETIZED_H_
