// AVX2 vertical cuckoo probe (select flavour): native gathers, emulated
// selective stores, 8 probe keys per vector.

#include "core/avx2_ops.h"
#include "hash/cuckoo.h"

namespace simddb {

size_t CuckooTable::ProbeAvx2(const uint32_t* keys, const uint32_t* pays,
                              size_t n, uint32_t* out_keys,
                              uint32_t* out_spays, uint32_t* out_rpays) const {
  namespace v = simddb::avx2;
  const __m256i f1 = _mm256_set1_epi32(static_cast<int>(factor1_));
  const __m256i f2 = _mm256_set1_epi32(static_cast<int>(factor2_));
  const __m256i nb = _mm256_set1_epi32(static_cast<int>(n_buckets_));
  size_t i = 0;
  size_t j = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i key =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    __m256i pay =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pays + i));
    __m256i h1 = v::MultHash(key, f1, nb);
    __m256i table_key = v::Gather(keys_.data(), h1);
    uint32_t miss =
        v::MoveMask(_mm256_cmpeq_epi32(table_key, key)) ^ 0xFFu;
    __m256i h2 = v::MultHash(key, f2, nb);
    __m256i h = h1;
    if (miss != 0) {
      alignas(32) int32_t miss_lanes[8];
      for (int t = 0; t < 8; ++t) miss_lanes[t] = (miss >> t) & 1 ? -1 : 0;
      __m256i mv =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(miss_lanes));
      h = _mm256_blendv_epi8(h1, h2, mv);
      table_key = v::MaskGather(table_key, miss, keys_.data(), h);
    }
    uint32_t match = v::MoveMask(_mm256_cmpeq_epi32(table_key, key));
    if (match != 0) {
      __m256i table_pay = v::MaskGather(table_key, match, pays_.data(), h);
      v::SelectiveStore(out_keys + j, match, key);
      v::SelectiveStore(out_spays + j, match, pay);
      v::SelectiveStore(out_rpays + j, match, table_pay);
      j += __builtin_popcount(match);
    }
  }
  j += ProbeScalarBranching(keys + i, pays + i, n - i, out_keys + j,
                            out_spays + j, out_rpays + j);
  return j;
}

}  // namespace simddb
