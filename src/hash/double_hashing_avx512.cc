// AVX-512 vertical double-hashing kernels (§5.2, Alg. 8): identical lane
// management to linear probing, but each lane advances by its own key-
// derived odd step instead of +1, so collision chains of duplicate keys
// spread across the table.

#include <cassert>

#include "core/avx512_ops.h"
#include "hash/double_hashing.h"

namespace simddb {
namespace {

namespace v = simddb::avx512;

// step = (1 + mulhi(k*f2, nb-1)) | 1.
inline __m512i StepVec(__m512i key, __m512i factor2, __m512i nb_minus_1,
                       __m512i one) {
  __m512i s = _mm512_add_epi32(v::MultHash(key, factor2, nb_minus_1), one);
  return _mm512_or_si512(s, one);
}

inline __m512i WrapBucket(__m512i h, __m512i nb) {
  __mmask16 over = _mm512_cmpge_epu32_mask(h, nb);
  return _mm512_mask_sub_epi32(h, over, h, nb);
}

}  // namespace

size_t DoubleHashingTable::ProbeAvx512(const uint32_t* keys,
                                       const uint32_t* pays, size_t n,
                                       uint32_t* out_keys, uint32_t* out_spays,
                                       uint32_t* out_rpays) const {
  const __m512i f1 = _mm512_set1_epi32(static_cast<int>(factor1_));
  const __m512i f2 = _mm512_set1_epi32(static_cast<int>(factor2_));
  const __m512i nb = _mm512_set1_epi32(static_cast<int>(n_buckets_));
  const __m512i nb1 = _mm512_set1_epi32(static_cast<int>(n_buckets_ - 1));
  const __m512i empty = _mm512_set1_epi32(static_cast<int>(kEmptyKey));
  const __m512i one = _mm512_set1_epi32(1);
  __m512i key = _mm512_setzero_si512();
  __m512i pay = _mm512_setzero_si512();
  __m512i h = _mm512_setzero_si512();
  __m512i step = _mm512_setzero_si512();
  __mmask16 need = 0xFFFF;
  size_t i = 0;
  size_t j = 0;
  while (i + 16 <= n) {
    key = v::SelectiveLoad(key, need, keys + i);
    pay = v::SelectiveLoad(pay, need, pays + i);
    i += __builtin_popcount(need);
    // Reloaded lanes recompute h and step; survivors advance by their step.
    __m512i h0 = v::MultHash(key, f1, nb);
    step = _mm512_mask_mov_epi32(step, need, StepVec(key, f2, nb1, one));
    __m512i advanced = WrapBucket(_mm512_add_epi32(h, step), nb);
    h = _mm512_mask_blend_epi32(need, advanced, h0);
    __m512i table_key = v::Gather(keys_.data(), h);
    __mmask16 match = _mm512_cmpeq_epi32_mask(table_key, key);
    if (match != 0) {
      __m512i table_pay = v::MaskGather(table_key, match, pays_.data(), h);
      v::SelectiveStore(out_keys + j, match, key);
      v::SelectiveStore(out_spays + j, match, pay);
      v::SelectiveStore(out_rpays + j, match, table_pay);
      j += __builtin_popcount(match);
    }
    need = _mm512_cmpeq_epi32_mask(table_key, empty);
  }
  // Drain in-flight lanes: continue each one scalar from its current bucket.
  alignas(64) uint32_t lk[16], lv[16], lh[16], ls[16];
  _mm512_store_si512(lk, key);
  _mm512_store_si512(lv, pay);
  _mm512_store_si512(lh, h);
  _mm512_store_si512(ls, step);
  const uint32_t nb_s = static_cast<uint32_t>(n_buckets_);
  for (int lane = 0; lane < 16; ++lane) {
    if (need & (1u << lane)) continue;
    uint32_t k = lk[lane];
    uint32_t bucket = lh[lane] + ls[lane];
    if (bucket >= nb_s) bucket -= nb_s;
    while (keys_[bucket] != kEmptyKey) {
      if (keys_[bucket] == k) {
        out_rpays[j] = pays_[bucket];
        out_spays[j] = lv[lane];
        out_keys[j] = k;
        ++j;
      }
      bucket += ls[lane];
      if (bucket >= nb_s) bucket -= nb_s;
    }
  }
  j += ProbeScalar(keys + i, pays + i, n - i, out_keys + j, out_spays + j,
                   out_rpays + j);
  return j;
}

void DoubleHashingTable::BuildAvx512(const uint32_t* keys,
                                     const uint32_t* pays, size_t n) {
  assert(count_ + n < n_buckets_);
  const __m512i f1 = _mm512_set1_epi32(static_cast<int>(factor1_));
  const __m512i f2 = _mm512_set1_epi32(static_cast<int>(factor2_));
  const __m512i nb = _mm512_set1_epi32(static_cast<int>(n_buckets_));
  const __m512i nb1 = _mm512_set1_epi32(static_cast<int>(n_buckets_ - 1));
  const __m512i empty = _mm512_set1_epi32(static_cast<int>(kEmptyKey));
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i lane_ids =
      _mm512_set_epi32(16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1);
  __m512i key = _mm512_setzero_si512();
  __m512i pay = _mm512_setzero_si512();
  __m512i h = _mm512_setzero_si512();
  __m512i step = _mm512_setzero_si512();
  __mmask16 need = 0xFFFF;
  size_t i = 0;
  while (i + 16 <= n) {
    key = v::SelectiveLoad(key, need, keys + i);
    pay = v::SelectiveLoad(pay, need, pays + i);
    i += __builtin_popcount(need);
    __m512i h0 = v::MultHash(key, f1, nb);
    step = _mm512_mask_mov_epi32(step, need, StepVec(key, f2, nb1, one));
    __m512i advanced = WrapBucket(_mm512_add_epi32(h, step), nb);
    h = _mm512_mask_blend_epi32(need, advanced, h0);
    __m512i table_key = v::Gather(keys_.data(), h);
    __mmask16 at_empty = _mm512_cmpeq_epi32_mask(table_key, empty);
    v::MaskScatter(keys_.data(), at_empty, h, lane_ids);
    __m512i back = v::MaskGather(lane_ids, at_empty, keys_.data(), h);
    __mmask16 win = _mm512_mask_cmpeq_epi32_mask(at_empty, back, lane_ids);
    v::MaskScatter(keys_.data(), win, h, key);
    v::MaskScatter(pays_.data(), win, h, pay);
    need = win;
  }
  count_ += i;
  alignas(64) uint32_t lk[16], lv[16], lh[16], ls[16];
  _mm512_store_si512(lk, key);
  _mm512_store_si512(lv, pay);
  _mm512_store_si512(lh, h);
  _mm512_store_si512(ls, step);
  const uint32_t nb_s = static_cast<uint32_t>(n_buckets_);
  for (int lane = 0; lane < 16; ++lane) {
    if (need & (1u << lane)) continue;
    uint32_t bucket = lh[lane] + ls[lane];
    if (bucket >= nb_s) bucket -= nb_s;
    while (keys_[bucket] != kEmptyKey) {
      bucket += ls[lane];
      if (bucket >= nb_s) bucket -= nb_s;
    }
    keys_[bucket] = lk[lane];
    pays_[bucket] = lv[lane];
  }
  BuildScalar(keys + i, pays + i, n - i);
}

}  // namespace simddb
