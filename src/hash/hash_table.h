#ifndef SIMDDB_HASH_HASH_TABLE_H_
#define SIMDDB_HASH_HASH_TABLE_H_

// Shared definitions for the hash-table operators of §5. All tables store
// 32-bit keys with 32-bit payloads in split (SoA) bucket arrays, use
// multiplicative hashing (one multiply + mulhi, §5), and mark empty buckets
// with a reserved key value.

#include <cstdint>

#include "util/rng.h"

namespace simddb {

/// Reserved key marking an empty bucket; no input tuple may use it.
inline constexpr uint32_t kEmptyKey = 0xFFFFFFFFu;

/// Derives the i-th odd multiplicative hash factor from a seed.
inline uint32_t HashFactor(uint64_t seed, int i) {
  return static_cast<uint32_t>(SplitMix64(seed + 0x1234u * i + 1)) | 1u;
}

/// Scalar multiplicative hashing: mulhi(k * factor, buckets) ∈ [0, buckets).
inline uint32_t MultHash32(uint32_t key, uint32_t factor, uint32_t buckets) {
  return static_cast<uint32_t>(
      (static_cast<uint64_t>(key * factor) * buckets) >> 32);
}

}  // namespace simddb

#endif  // SIMDDB_HASH_HASH_TABLE_H_
