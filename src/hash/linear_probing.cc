#include "hash/linear_probing.h"

#include <cassert>
#include <cstring>

namespace simddb {

LinearProbingTable::LinearProbingTable(size_t num_buckets, uint64_t seed)
    : keys_(num_buckets + 16),
      pays_(num_buckets + 16),
      n_buckets_(num_buckets),
      factor_(HashFactor(seed, 0)) {
  assert(num_buckets >= 16);
  Clear();
}

void LinearProbingTable::Clear() {
  std::memset(keys_.data(), 0xFF, keys_.size() * sizeof(uint32_t));
  std::memset(pays_.data(), 0, pays_.size() * sizeof(uint32_t));
  count_ = 0;
}

void LinearProbingTable::SyncWrapPad() {
  std::memcpy(keys_.data() + n_buckets_, keys_.data(), 16 * sizeof(uint32_t));
  std::memcpy(pays_.data() + n_buckets_, pays_.data(), 16 * sizeof(uint32_t));
}

void LinearProbingTable::Build(Isa isa, const uint32_t* keys,
                               const uint32_t* pays, size_t n) {
  if (isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512)) {
    BuildAvx512(keys, pays, n);
    return;
  }
  // AVX2 has no scatters, so its build is scalar (§9, App. B).
  BuildScalar(keys, pays, n);
}

// Alg. 6: traverse linearly from the hash bucket to the first empty bucket.
void LinearProbingTable::BuildScalar(const uint32_t* keys,
                                     const uint32_t* pays, size_t n) {
  assert(count_ + n < n_buckets_);
  const uint32_t nb = static_cast<uint32_t>(n_buckets_);
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t h = MultHash32(k, factor_, nb);
    while (keys_[h] != kEmptyKey) {
      if (++h == nb) h = 0;
    }
    keys_[h] = k;
    pays_[h] = pays[i];
  }
  count_ += n;
  SyncWrapPad();
}

// Alg. 4: probe every input key, emitting all matches.
size_t LinearProbingTable::ProbeScalar(const uint32_t* keys,
                                       const uint32_t* pays, size_t n,
                                       uint32_t* out_keys, uint32_t* out_spays,
                                       uint32_t* out_rpays) const {
  const uint32_t nb = static_cast<uint32_t>(n_buckets_);
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t v = pays[i];
    uint32_t h = MultHash32(k, factor_, nb);
    while (keys_[h] != kEmptyKey) {
      if (keys_[h] == k) {
        out_rpays[j] = pays_[h];
        out_spays[j] = v;
        out_keys[j] = k;
        ++j;
      }
      if (++h == nb) h = 0;
    }
  }
  return j;
}

size_t LinearProbingTable::Probe(Isa isa, const uint32_t* keys,
                                 const uint32_t* pays, size_t n,
                                 uint32_t* out_keys, uint32_t* out_spays,
                                 uint32_t* out_rpays) const {
  switch (isa) {
    case Isa::kAvx512:
      if (IsaSupported(Isa::kAvx512)) {
        return ProbeAvx512(keys, pays, n, out_keys, out_spays, out_rpays);
      }
      break;
    case Isa::kAvx2:
      if (IsaSupported(Isa::kAvx2)) {
        return ProbeAvx2(keys, pays, n, out_keys, out_spays, out_rpays);
      }
      break;
    case Isa::kScalar:
      break;
  }
  return ProbeScalar(keys, pays, n, out_keys, out_spays, out_rpays);
}

}  // namespace simddb
