// AVX-512 linear-probing kernels: vertical probe (Alg. 5), vertical build
// (Alg. 7) with scatter/gather-back conflict detection, and the horizontal
// (one-key-vs-W-buckets) probe used as the prior-art comparison point.

#include <cassert>

#include "core/avx512_ops.h"
#include "hash/linear_probing.h"

namespace simddb {
namespace {

namespace v = simddb::avx512;

// h in [0, 2*nb) -> h mod nb with one conditional subtract.
inline __m512i WrapBucket(__m512i h, __m512i nb) {
  __mmask16 over = _mm512_cmpge_epu32_mask(h, nb);
  return _mm512_mask_sub_epi32(h, over, h, nb);
}

}  // namespace

// Alg. 5: one probe key per lane; finished lanes are refilled from the
// input with selective loads, so every lane stays busy regardless of how
// long each key's probe chain is.
size_t LinearProbingTable::ProbeAvx512(const uint32_t* keys,
                                       const uint32_t* pays, size_t n,
                                       uint32_t* out_keys, uint32_t* out_spays,
                                       uint32_t* out_rpays) const {
  const __m512i factor = _mm512_set1_epi32(static_cast<int>(factor_));
  const __m512i nb = _mm512_set1_epi32(static_cast<int>(n_buckets_));
  const __m512i empty = _mm512_set1_epi32(static_cast<int>(kEmptyKey));
  const __m512i one = _mm512_set1_epi32(1);
  __m512i key = _mm512_setzero_si512();
  __m512i pay = _mm512_setzero_si512();
  __m512i off = _mm512_setzero_si512();
  __mmask16 need = 0xFFFF;  // lanes whose key is finished (need a reload)
  size_t i = 0;
  size_t j = 0;
  while (i + 16 <= n) {
    key = v::SelectiveLoad(key, need, keys + i);
    pay = v::SelectiveLoad(pay, need, pays + i);
    i += __builtin_popcount(need);
    __m512i h = v::MultHash(key, factor, nb);
    h = WrapBucket(_mm512_add_epi32(h, off), nb);
    __m512i table_key = v::Gather(keys_.data(), h);
    __mmask16 match = _mm512_cmpeq_epi32_mask(table_key, key);
    if (match != 0) {
      __m512i table_pay = v::MaskGather(table_key, match, pays_.data(), h);
      v::SelectiveStore(out_keys + j, match, key);
      v::SelectiveStore(out_spays + j, match, pay);
      v::SelectiveStore(out_rpays + j, match, table_pay);
      j += __builtin_popcount(match);
    }
    need = _mm512_cmpeq_epi32_mask(table_key, empty);
    // off = need ? 0 : off + 1 (reloaded lanes restart at their hash bucket).
    off = _mm512_maskz_add_epi32(static_cast<__mmask16>(~need), off, one);
  }
  // Finish the up-to-16 in-flight lanes with scalar code (§5.1).
  alignas(64) uint32_t lk[16], lv[16], lo[16];
  _mm512_store_si512(lk, key);
  _mm512_store_si512(lv, pay);
  _mm512_store_si512(lo, off);
  const uint32_t nb_s = static_cast<uint32_t>(n_buckets_);
  for (int lane = 0; lane < 16; ++lane) {
    if (need & (1u << lane)) continue;
    uint32_t k = lk[lane];
    uint32_t h = MultHash32(k, factor_, nb_s) + lo[lane];
    if (h >= nb_s) h -= nb_s;
    while (keys_[h] != kEmptyKey) {
      if (keys_[h] == k) {
        out_rpays[j] = pays_[h];
        out_spays[j] = lv[lane];
        out_keys[j] = k;
        ++j;
      }
      if (++h == nb_s) h = 0;
    }
  }
  // Scalar tail of the input.
  j += ProbeScalar(keys + i, pays + i, n - i, out_keys + j, out_spays + j,
                   out_rpays + j);
  return j;
}

// Alg. 7: vertical build. Lanes gather their bucket; lanes that found an
// empty bucket must agree on a single writer per bucket, detected by
// scattering unique lane ids and gathering them back (or, with unique keys,
// scattering the keys themselves — the paper's §5.1 optimization).
void LinearProbingTable::BuildAvx512(const uint32_t* keys,
                                     const uint32_t* pays, size_t n,
                                     bool assume_unique_keys) {
  assert(count_ + n < n_buckets_);
  const __m512i factor = _mm512_set1_epi32(static_cast<int>(factor_));
  const __m512i nb = _mm512_set1_epi32(static_cast<int>(n_buckets_));
  const __m512i empty = _mm512_set1_epi32(static_cast<int>(kEmptyKey));
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i lane_ids =
      _mm512_set_epi32(16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1);
  __m512i key = _mm512_setzero_si512();
  __m512i pay = _mm512_setzero_si512();
  __m512i off = _mm512_setzero_si512();
  __mmask16 need = 0xFFFF;  // lanes whose tuple has been inserted
  size_t i = 0;
  while (i + 16 <= n) {
    key = v::SelectiveLoad(key, need, keys + i);
    pay = v::SelectiveLoad(pay, need, pays + i);
    i += __builtin_popcount(need);
    __m512i h = v::MultHash(key, factor, nb);
    h = WrapBucket(_mm512_add_epi32(h, off), nb);
    __m512i table_key = v::Gather(keys_.data(), h);
    __mmask16 at_empty = _mm512_cmpeq_epi32_mask(table_key, empty);
    __mmask16 win;
    if (assume_unique_keys) {
      // Scatter the keys themselves and gather back: the surviving lane of
      // each bucket reads its own (unique) key.
      v::MaskScatter(keys_.data(), at_empty, h, key);
      __m512i back = v::MaskGather(key, at_empty, keys_.data(), h);
      win = _mm512_mask_cmpeq_epi32_mask(at_empty, back, key);
      v::MaskScatter(pays_.data(), win, h, pay);
    } else {
      // Scatter unique lane ids into the key array, gather back, and let the
      // surviving lane write the real tuple.
      v::MaskScatter(keys_.data(), at_empty, h, lane_ids);
      __m512i back = v::MaskGather(lane_ids, at_empty, keys_.data(), h);
      win = _mm512_mask_cmpeq_epi32_mask(at_empty, back, lane_ids);
      v::MaskScatter(keys_.data(), win, h, key);
      v::MaskScatter(pays_.data(), win, h, pay);
      // Losing lanes left lane ids behind only in buckets that a winner is
      // about to overwrite, so the table is consistent again here.
    }
    need = win;
    off = _mm512_maskz_add_epi32(static_cast<__mmask16>(~need), off, one);
  }
  count_ += i;
  // Insert the in-flight lanes and the input tail with scalar code.
  alignas(64) uint32_t lk[16], lv[16];
  _mm512_store_si512(lk, key);
  _mm512_store_si512(lv, pay);
  const uint32_t nb_s = static_cast<uint32_t>(n_buckets_);
  for (int lane = 0; lane < 16; ++lane) {
    if (need & (1u << lane)) continue;
    uint32_t h = MultHash32(lk[lane], factor_, nb_s);
    while (keys_[h] != kEmptyKey) {
      if (++h == nb_s) h = 0;
    }
    keys_[h] = lk[lane];
    pays_[h] = lv[lane];
  }
  BuildScalar(keys + i, pays + i, n - i);  // also refreshes the wrap pad
}

// Horizontal probing: broadcast one key, compare against a 16-bucket window,
// and advance window by window until an empty bucket appears.
size_t LinearProbingTable::ProbeHorizontalAvx512(
    const uint32_t* keys, const uint32_t* pays, size_t n, uint32_t* out_keys,
    uint32_t* out_spays, uint32_t* out_rpays) const {
  const uint32_t nb = static_cast<uint32_t>(n_buckets_);
  const __m512i empty = _mm512_set1_epi32(static_cast<int>(kEmptyKey));
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t s_pay = pays[i];
    const __m512i kv = _mm512_set1_epi32(static_cast<int>(k));
    uint32_t h = MultHash32(k, factor_, nb);
    for (;;) {
      // The wrap pad mirrors buckets [0,16) past the end, so an unaligned
      // window read at any h < nb stays in bounds.
      __m512i w = _mm512_loadu_si512(keys_.data() + h);
      uint32_t match = _mm512_cmpeq_epi32_mask(w, kv);
      uint32_t at_empty = _mm512_cmpeq_epi32_mask(w, empty);
      if (at_empty != 0) {
        // Matches past the first empty bucket are stale cluster remnants.
        match &= (1u << __builtin_ctz(at_empty)) - 1;
      }
      while (match != 0) {
        uint32_t t = static_cast<uint32_t>(__builtin_ctz(match));
        out_rpays[j] = pays_[h + t];
        out_spays[j] = s_pay;
        out_keys[j] = k;
        ++j;
        match &= match - 1;
      }
      if (at_empty != 0) break;
      h += 16;
      if (h >= nb) h -= nb;
    }
  }
  return j;
}

}  // namespace simddb
