// AVX-512 cuckoo kernels: vertical probes (Alg. 9) and the fully
// vectorized build with displacement (Alg. 10).

#include "core/avx512_ops.h"
#include "hash/cuckoo.h"

namespace simddb {
namespace {

namespace v = simddb::avx512;

constexpr int kMaxStalledIterations = 500;

}  // namespace

// Alg. 9, "select" flavour: gather the first bucket, and the second bucket
// only for the lanes that missed. Probing is stable (reads input in order).
size_t CuckooTable::ProbeVerticalSelectAvx512(
    const uint32_t* keys, const uint32_t* pays, size_t n, uint32_t* out_keys,
    uint32_t* out_spays, uint32_t* out_rpays) const {
  const __m512i f1 = _mm512_set1_epi32(static_cast<int>(factor1_));
  const __m512i f2 = _mm512_set1_epi32(static_cast<int>(factor2_));
  const __m512i nb = _mm512_set1_epi32(static_cast<int>(n_buckets_));
  size_t i = 0;
  size_t j = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i key = _mm512_loadu_si512(keys + i);
    __m512i pay = _mm512_loadu_si512(pays + i);
    __m512i h1 = v::MultHash(key, f1, nb);
    __m512i table_key = v::Gather(keys_.data(), h1);
    __mmask16 miss = _mm512_cmpneq_epi32_mask(table_key, key);
    __m512i h2 = v::MultHash(key, f2, nb);
    __m512i h = _mm512_mask_mov_epi32(h1, miss, h2);
    table_key = v::MaskGather(table_key, miss, keys_.data(), h);
    __mmask16 match = _mm512_cmpeq_epi32_mask(table_key, key);
    if (match != 0) {
      __m512i table_pay = v::MaskGather(table_key, match, pays_.data(), h);
      v::SelectiveStore(out_keys + j, match, key);
      v::SelectiveStore(out_spays + j, match, pay);
      v::SelectiveStore(out_rpays + j, match, table_pay);
      j += __builtin_popcount(match);
    }
  }
  j += ProbeScalarBranching(keys + i, pays + i, n - i, out_keys + j,
                            out_spays + j, out_rpays + j);
  return j;
}

// Alg. 9, "blend" flavour [42]: always gather both candidate buckets (keys
// and payloads) and combine them with bitwise blends — no dependent gather.
size_t CuckooTable::ProbeVerticalBlendAvx512(
    const uint32_t* keys, const uint32_t* pays, size_t n, uint32_t* out_keys,
    uint32_t* out_spays, uint32_t* out_rpays) const {
  const __m512i f1 = _mm512_set1_epi32(static_cast<int>(factor1_));
  const __m512i f2 = _mm512_set1_epi32(static_cast<int>(factor2_));
  const __m512i nb = _mm512_set1_epi32(static_cast<int>(n_buckets_));
  size_t i = 0;
  size_t j = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i key = _mm512_loadu_si512(keys + i);
    __m512i pay = _mm512_loadu_si512(pays + i);
    __m512i h1 = v::MultHash(key, f1, nb);
    __m512i h2 = v::MultHash(key, f2, nb);
    __m512i k1 = v::Gather(keys_.data(), h1);
    __m512i k2 = v::Gather(keys_.data(), h2);
    __m512i p1 = v::Gather(pays_.data(), h1);
    __m512i p2 = v::Gather(pays_.data(), h2);
    __mmask16 m1 = _mm512_cmpeq_epi32_mask(k1, key);
    __mmask16 m2 = _mm512_cmpeq_epi32_mask(k2, key);
    __mmask16 match = m1 | m2;
    if (match != 0) {
      __m512i table_pay = _mm512_mask_mov_epi32(p2, m1, p1);
      v::SelectiveStore(out_keys + j, match, key);
      v::SelectiveStore(out_spays + j, match, pay);
      v::SelectiveStore(out_rpays + j, match, table_pay);
      j += __builtin_popcount(match);
    }
  }
  j += ProbeScalarBranchless(keys + i, pays + i, n - i, out_keys + j,
                             out_spays + j, out_rpays + j);
  return j;
}

// Alg. 10: fully vectorized cuckoo build. Each lane carries either a newly
// loaded tuple, a tuple displaced in the previous iteration, or a tuple
// whose scatter conflicted. New tuples try bucket 1 then bucket 2; carried
// tuples use the alternate of the bucket they last touched; every lane
// scatters unconditionally (store-or-swap), and a gather-back identifies
// conflicting lanes.
bool CuckooTable::BuildAvx512(const uint32_t* keys, const uint32_t* pays,
                              size_t n) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const __m512i f1 = _mm512_set1_epi32(static_cast<int>(factor1_));
    const __m512i f2 = _mm512_set1_epi32(static_cast<int>(factor2_));
    const __m512i nb = _mm512_set1_epi32(static_cast<int>(n_buckets_));
    const __m512i empty = _mm512_set1_epi32(static_cast<int>(kEmptyKey));
    __m512i key = empty;  // lanes start "done": all reload immediately
    __m512i pay = _mm512_setzero_si512();
    __m512i h = _mm512_setzero_si512();
    __mmask16 need = 0xFFFF;
    size_t i = 0;
    int stalled = 0;
    bool failed = false;
    while (i + 16 <= n) {
      if (need == 0) {
        if (++stalled > kMaxStalledIterations) {
          failed = true;
          break;
        }
      } else {
        stalled = 0;
      }
      key = v::SelectiveLoad(key, need, keys + i);
      pay = v::SelectiveLoad(pay, need, pays + i);
      i += __builtin_popcount(need);
      __m512i h1 = v::MultHash(key, f1, nb);
      __m512i h2 = v::MultHash(key, f2, nb);
      // Carried tuples flip to their alternate bucket; new tuples start at
      // bucket 1.
      __m512i h_other =
          _mm512_sub_epi32(_mm512_add_epi32(h1, h2), h);
      h = _mm512_mask_mov_epi32(h_other, need, h1);
      __m512i table_key = v::Gather(keys_.data(), h);
      __m512i table_pay = v::Gather(pays_.data(), h);
      // New tuples whose first bucket is occupied try bucket 2 instead.
      __mmask16 second = _mm512_mask_cmpneq_epi32_mask(need, table_key, empty);
      h = _mm512_mask_mov_epi32(h, second, h2);
      table_key = v::MaskGather(table_key, second, keys_.data(), h);
      table_pay = v::MaskGather(table_pay, second, pays_.data(), h);
      // Store-or-swap: every lane scatters its tuple.
      v::Scatter(keys_.data(), h, key);
      v::Scatter(pays_.data(), h, pay);
      __m512i back = v::Gather(keys_.data(), h);
      __mmask16 conflict = _mm512_cmpneq_epi32_mask(back, key);
      // Winners take the displaced occupant (or empty); losers retry.
      key = _mm512_mask_mov_epi32(table_key, conflict, key);
      pay = _mm512_mask_mov_epi32(table_pay, conflict, pay);
      need = _mm512_cmpeq_epi32_mask(key, empty);
    }
    if (!failed) {
      // Drain in-flight lanes and the input tail with scalar inserts.
      alignas(64) uint32_t lk[16], lv[16];
      _mm512_store_si512(lk, key);
      _mm512_store_si512(lv, pay);
      for (int lane = 0; lane < 16 && !failed; ++lane) {
        if (need & (1u << lane)) continue;
        if (!InsertScalar(lk[lane], lv[lane])) failed = true;
      }
      for (size_t t = i; t < n && !failed; ++t) {
        if (!InsertScalar(keys[t], pays[t])) failed = true;
      }
    }
    if (!failed) {
      count_ += n;
      return true;
    }
    Clear();
    Reseed();
  }
  return false;
}

}  // namespace simddb
