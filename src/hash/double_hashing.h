#ifndef SIMDDB_HASH_DOUBLE_HASHING_H_
#define SIMDDB_HASH_DOUBLE_HASHING_H_

// Double-hashing hash table (§5.2): open addressing where the probe step is
// itself a hash of the key, so duplicate keys do not cluster in one region
// the way they do under linear probing (Alg. 8).
//
// Probe sequence: h0 = mulhi(k*f1, |T|), step = (1 + mulhi(k*f2, |T|-1)) | 1,
// h_{i+1} = (h_i + step) mod |T|.
//
// Deviation from the paper, documented: the paper guarantees full-cycle
// probing by making |T| prime; we instead round |T| up to a power of two and
// force the step odd (gcd(step, 2^k) = 1 gives the same full-cycle
// guarantee with cheaper arithmetic and power-of-two-friendly sizing).

#include <cstddef>
#include <cstdint>

#include "core/isa.h"
#include "hash/hash_table.h"
#include "util/aligned_buffer.h"

namespace simddb {

class DoubleHashingTable {
 public:
  /// Creates a table; num_buckets is rounded up to a power of two (>= 16).
  explicit DoubleHashingTable(size_t num_buckets, uint64_t seed = 42);

  /// Empties the table.
  void Clear();

  void Build(Isa isa, const uint32_t* keys, const uint32_t* pays, size_t n);
  void BuildScalar(const uint32_t* keys, const uint32_t* pays, size_t n);
  void BuildAvx512(const uint32_t* keys, const uint32_t* pays, size_t n);

  /// Emits (key, probe payload, table payload) per match; returns the count.
  size_t Probe(Isa isa, const uint32_t* keys, const uint32_t* pays, size_t n,
               uint32_t* out_keys, uint32_t* out_spays,
               uint32_t* out_rpays) const;
  size_t ProbeScalar(const uint32_t* keys, const uint32_t* pays, size_t n,
                     uint32_t* out_keys, uint32_t* out_spays,
                     uint32_t* out_rpays) const;
  size_t ProbeAvx512(const uint32_t* keys, const uint32_t* pays, size_t n,
                     uint32_t* out_keys, uint32_t* out_spays,
                     uint32_t* out_rpays) const;
  size_t ProbeAvx2(const uint32_t* keys, const uint32_t* pays, size_t n,
                   uint32_t* out_keys, uint32_t* out_spays,
                   uint32_t* out_rpays) const;

  size_t num_buckets() const { return n_buckets_; }
  size_t size() const { return count_; }
  const uint32_t* bucket_keys() const { return keys_.data(); }
  const uint32_t* bucket_pays() const { return pays_.data(); }

  /// Probe step for key k (odd, in [1, num_buckets)).
  uint32_t StepFor(uint32_t k) const {
    return (1u + MultHash32(k, factor2_,
                            static_cast<uint32_t>(n_buckets_ - 1))) |
           1u;
  }
  /// First bucket probed for key k.
  uint32_t HashFor(uint32_t k) const {
    return MultHash32(k, factor1_, static_cast<uint32_t>(n_buckets_));
  }

 private:
  AlignedBuffer<uint32_t> keys_;
  AlignedBuffer<uint32_t> pays_;
  size_t n_buckets_;
  size_t count_ = 0;
  uint32_t factor1_;
  uint32_t factor2_;
};

}  // namespace simddb

#endif  // SIMDDB_HASH_DOUBLE_HASHING_H_
