#include "hash/bucketized.h"

#include <cassert>
#include <cstring>

#include "util/bits.h"

namespace simddb {

namespace {
constexpr int kMaxKicks = 500;
constexpr int kMaxRebuilds = 8;
}  // namespace

// ---------------------------------------------------------------------------
// BucketizedTable
// ---------------------------------------------------------------------------

BucketizedTable::BucketizedTable(size_t num_slots, BucketScheme scheme,
                                 uint64_t seed)
    : scheme_(scheme),
      factor1_(HashFactor(seed, 0)),
      factor2_(HashFactor(seed, 1)) {
  size_t buckets = (num_slots + 15) / 16;
  if (buckets < 2) buckets = 2;
  if (scheme == BucketScheme::kDouble) buckets = NextPowerOfTwo(buckets);
  n_buckets_ = buckets;
  keys_.Reset(n_buckets_ * 16);
  pays_.Reset(n_buckets_ * 16);
  Clear();
}

void BucketizedTable::Clear() {
  std::memset(keys_.data(), 0xFF, keys_.size() * sizeof(uint32_t));
  std::memset(pays_.data(), 0, pays_.size() * sizeof(uint32_t));
  count_ = 0;
}

void BucketizedTable::BuildScalar(const uint32_t* keys, const uint32_t* pays,
                                  size_t n) {
  assert(count_ + n < num_slots());
  const uint32_t nb = static_cast<uint32_t>(n_buckets_);
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t b = BucketFor(k);
    uint32_t step = StepFor(k);
    for (;;) {
      uint32_t* bk = keys_.data() + static_cast<size_t>(b) * 16;
      bool placed = false;
      for (int s = 0; s < 16; ++s) {
        if (bk[s] == kEmptyKey) {
          bk[s] = k;
          pays_[static_cast<size_t>(b) * 16 + s] = pays[i];
          placed = true;
          break;
        }
      }
      if (placed) break;
      b += step;
      if (b >= nb) b -= nb;
    }
  }
  count_ += n;
}

size_t BucketizedTable::ProbeScalar(const uint32_t* keys,
                                    const uint32_t* pays, size_t n,
                                    uint32_t* out_keys, uint32_t* out_spays,
                                    uint32_t* out_rpays) const {
  const uint32_t nb = static_cast<uint32_t>(n_buckets_);
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t b = BucketFor(k);
    uint32_t step = StepFor(k);
    for (;;) {
      const uint32_t* bk = keys_.data() + static_cast<size_t>(b) * 16;
      bool has_empty = false;
      for (int s = 0; s < 16; ++s) {
        if (bk[s] == k) {
          out_rpays[j] = pays_[static_cast<size_t>(b) * 16 + s];
          out_spays[j] = pays[i];
          out_keys[j] = k;
          ++j;
        } else if (bk[s] == kEmptyKey) {
          has_empty = true;
          break;  // buckets fill front to back; chain ends here
        }
      }
      if (has_empty) break;
      b += step;
      if (b >= nb) b -= nb;
    }
  }
  return j;
}

// ---------------------------------------------------------------------------
// BucketizedCuckooTable
// ---------------------------------------------------------------------------

BucketizedCuckooTable::BucketizedCuckooTable(size_t num_slots, uint64_t seed)
    : seed_(seed),
      factor1_(HashFactor(seed, 0)),
      factor2_(HashFactor(seed, 1)) {
  n_buckets_ = (num_slots + 15) / 16;
  if (n_buckets_ < 2) n_buckets_ = 2;
  keys_.Reset(n_buckets_ * 16);
  pays_.Reset(n_buckets_ * 16);
  Clear();
}

void BucketizedCuckooTable::Clear() {
  std::memset(keys_.data(), 0xFF, keys_.size() * sizeof(uint32_t));
  std::memset(pays_.data(), 0, pays_.size() * sizeof(uint32_t));
  count_ = 0;
}

void BucketizedCuckooTable::Reseed() {
  ++reseed_count_;
  factor1_ = HashFactor(seed_ + 104729u * reseed_count_, 0);
  factor2_ = HashFactor(seed_ + 104729u * reseed_count_, 1);
}

bool BucketizedCuckooTable::Insert(uint32_t k, uint32_t v,
                                   uint32_t* rng_state) {
  uint32_t b = Bucket1(k);
  for (int kick = 0; kick < kMaxKicks; ++kick) {
    // Try to place in the current bucket.
    uint32_t* bk = keys_.data() + static_cast<size_t>(b) * 16;
    for (int s = 0; s < 16; ++s) {
      if (bk[s] == kEmptyKey) {
        bk[s] = k;
        pays_[static_cast<size_t>(b) * 16 + s] = v;
        return true;
      }
    }
    // Try the alternate bucket.
    uint32_t b1 = Bucket1(k);
    uint32_t alt = (b == b1) ? Bucket2(k) : b1;
    uint32_t* ak = keys_.data() + static_cast<size_t>(alt) * 16;
    for (int s = 0; s < 16; ++s) {
      if (ak[s] == kEmptyKey) {
        ak[s] = k;
        pays_[static_cast<size_t>(alt) * 16 + s] = v;
        return true;
      }
    }
    // Both full: evict a pseudo-random victim from the alternate bucket.
    *rng_state = *rng_state * 1664525u + 1013904223u;
    int s = static_cast<int>(*rng_state >> 28);
    uint32_t vk = ak[s];
    uint32_t vv = pays_[static_cast<size_t>(alt) * 16 + s];
    ak[s] = k;
    pays_[static_cast<size_t>(alt) * 16 + s] = v;
    k = vk;
    v = vv;
    b = (alt == Bucket1(k)) ? Bucket2(k) : Bucket1(k);
  }
  return false;
}

bool BucketizedCuckooTable::BuildScalar(const uint32_t* keys,
                                        const uint32_t* pays, size_t n) {
  for (int attempt = 0; attempt < kMaxRebuilds; ++attempt) {
    uint32_t rng_state = static_cast<uint32_t>(seed_) + 1;
    size_t i = 0;
    for (; i < n; ++i) {
      if (!Insert(keys[i], pays[i], &rng_state)) break;
    }
    if (i == n) {
      count_ += n;
      return true;
    }
    Clear();
    Reseed();
  }
  return false;
}

size_t BucketizedCuckooTable::ProbeScalar(const uint32_t* keys,
                                          const uint32_t* pays, size_t n,
                                          uint32_t* out_keys,
                                          uint32_t* out_spays,
                                          uint32_t* out_rpays) const {
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    for (uint32_t b : {Bucket1(k), Bucket2(k)}) {
      const uint32_t* bk = keys_.data() + static_cast<size_t>(b) * 16;
      bool found = false;
      for (int s = 0; s < 16; ++s) {
        if (bk[s] == k) {
          out_rpays[j] = pays_[static_cast<size_t>(b) * 16 + s];
          out_spays[j] = pays[i];
          out_keys[j] = k;
          ++j;
          found = true;
          break;
        }
      }
      if (found) break;
    }
  }
  return j;
}

}  // namespace simddb
