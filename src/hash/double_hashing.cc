#include "hash/double_hashing.h"

#include <cassert>
#include <cstring>

#include "util/bits.h"

namespace simddb {

DoubleHashingTable::DoubleHashingTable(size_t num_buckets, uint64_t seed)
    : n_buckets_(NextPowerOfTwo(num_buckets < 16 ? 16 : num_buckets)),
      factor1_(HashFactor(seed, 0)),
      factor2_(HashFactor(seed, 1)) {
  keys_.Reset(n_buckets_);
  pays_.Reset(n_buckets_);
  Clear();
}

void DoubleHashingTable::Clear() {
  std::memset(keys_.data(), 0xFF, keys_.size() * sizeof(uint32_t));
  std::memset(pays_.data(), 0, pays_.size() * sizeof(uint32_t));
  count_ = 0;
}

void DoubleHashingTable::Build(Isa isa, const uint32_t* keys,
                               const uint32_t* pays, size_t n) {
  if (isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512)) {
    BuildAvx512(keys, pays, n);
    return;
  }
  BuildScalar(keys, pays, n);
}

void DoubleHashingTable::BuildScalar(const uint32_t* keys,
                                     const uint32_t* pays, size_t n) {
  assert(count_ + n < n_buckets_);
  const uint32_t nb = static_cast<uint32_t>(n_buckets_);
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t h = HashFor(k);
    uint32_t step = StepFor(k);
    while (keys_[h] != kEmptyKey) {
      h += step;
      if (h >= nb) h -= nb;
    }
    keys_[h] = k;
    pays_[h] = pays[i];
  }
  count_ += n;
}

size_t DoubleHashingTable::ProbeScalar(const uint32_t* keys,
                                       const uint32_t* pays, size_t n,
                                       uint32_t* out_keys, uint32_t* out_spays,
                                       uint32_t* out_rpays) const {
  const uint32_t nb = static_cast<uint32_t>(n_buckets_);
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t v = pays[i];
    uint32_t h = HashFor(k);
    uint32_t step = StepFor(k);
    while (keys_[h] != kEmptyKey) {
      if (keys_[h] == k) {
        out_rpays[j] = pays_[h];
        out_spays[j] = v;
        out_keys[j] = k;
        ++j;
      }
      h += step;
      if (h >= nb) h -= nb;
    }
  }
  return j;
}

size_t DoubleHashingTable::Probe(Isa isa, const uint32_t* keys,
                                 const uint32_t* pays, size_t n,
                                 uint32_t* out_keys, uint32_t* out_spays,
                                 uint32_t* out_rpays) const {
  switch (isa) {
    case Isa::kAvx512:
      if (IsaSupported(Isa::kAvx512)) {
        return ProbeAvx512(keys, pays, n, out_keys, out_spays, out_rpays);
      }
      break;
    case Isa::kAvx2:
      if (IsaSupported(Isa::kAvx2)) {
        return ProbeAvx2(keys, pays, n, out_keys, out_spays, out_rpays);
      }
      break;
    case Isa::kScalar:
      break;
  }
  return ProbeScalar(keys, pays, n, out_keys, out_spays, out_rpays);
}

}  // namespace simddb
