#include "hash/cuckoo.h"

#include <cassert>
#include <cstring>

namespace simddb {

namespace {
// Displacement bound per scalar insert before declaring the attempt failed.
constexpr int kMaxKicks = 500;
// Whole-build retries (with fresh hash factors) before giving up.
constexpr int kMaxRebuilds = 8;
}  // namespace

CuckooTable::CuckooTable(size_t num_buckets, uint64_t seed)
    : keys_(num_buckets),
      pays_(num_buckets),
      n_buckets_(num_buckets),
      seed_(seed),
      factor1_(HashFactor(seed, 0)),
      factor2_(HashFactor(seed, 1)) {
  assert(num_buckets >= 32);
  Clear();
}

void CuckooTable::Clear() {
  std::memset(keys_.data(), 0xFF, keys_.size() * sizeof(uint32_t));
  std::memset(pays_.data(), 0, pays_.size() * sizeof(uint32_t));
  count_ = 0;
}

void CuckooTable::Reseed() {
  ++reseed_count_;
  factor1_ = HashFactor(seed_ + 7919u * reseed_count_, 0);
  factor2_ = HashFactor(seed_ + 7919u * reseed_count_, 1);
}

bool CuckooTable::InsertScalar(uint32_t k, uint32_t v) {
  uint32_t h = Hash1(k);
  for (int kick = 0; kick < kMaxKicks; ++kick) {
    if (keys_[h] == kEmptyKey) {
      keys_[h] = k;
      pays_[h] = v;
      return true;
    }
    // Displace the occupant and continue with it at its alternate bucket.
    uint32_t ok = keys_[h];
    uint32_t ov = pays_[h];
    keys_[h] = k;
    pays_[h] = v;
    k = ok;
    v = ov;
    uint32_t h1 = Hash1(k);
    h = (h == h1) ? Hash2(k) : h1;
  }
  return false;
}

bool CuckooTable::BuildScalar(const uint32_t* keys, const uint32_t* pays,
                              size_t n) {
  for (int attempt = 0; attempt < kMaxRebuilds; ++attempt) {
    size_t i = 0;
    for (; i < n; ++i) {
      if (!InsertScalar(keys[i], pays[i])) break;
    }
    if (i == n) {
      count_ += n;
      return true;
    }
    Clear();
    Reseed();
  }
  return false;
}

bool CuckooTable::Build(Isa isa, const uint32_t* keys, const uint32_t* pays,
                        size_t n) {
  if (isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512)) {
    return BuildAvx512(keys, pays, n);
  }
  return BuildScalar(keys, pays, n);
}

size_t CuckooTable::ProbeScalarBranching(const uint32_t* keys,
                                         const uint32_t* pays, size_t n,
                                         uint32_t* out_keys,
                                         uint32_t* out_spays,
                                         uint32_t* out_rpays) const {
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t h = Hash1(k);
    if (keys_[h] != k) {
      h = Hash2(k);
      if (keys_[h] != k) continue;
    }
    out_rpays[j] = pays_[h];
    out_spays[j] = pays[i];
    out_keys[j] = k;
    ++j;
  }
  return j;
}

// Branch-free variant [42]: always read both buckets and blend the result
// with comparison masks; advance the output cursor by the match bit.
size_t CuckooTable::ProbeScalarBranchless(const uint32_t* keys,
                                          const uint32_t* pays, size_t n,
                                          uint32_t* out_keys,
                                          uint32_t* out_spays,
                                          uint32_t* out_rpays) const {
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t h1 = Hash1(k);
    uint32_t h2 = Hash2(k);
    uint32_t k1 = keys_[h1];
    uint32_t k2 = keys_[h2];
    uint32_t m1 = (k1 == k) ? 0xFFFFFFFFu : 0;
    uint32_t m2 = (k2 == k) ? 0xFFFFFFFFu : 0;
    uint32_t rpay = (pays_[h1] & m1) | (pays_[h2] & m2);
    out_rpays[j] = rpay;
    out_spays[j] = pays[i];
    out_keys[j] = k;
    j += (m1 | m2) & 1u;
  }
  return j;
}

}  // namespace simddb
