#ifndef SIMDDB_HASH_LINEAR_PROBING_H_
#define SIMDDB_HASH_LINEAR_PROBING_H_

// Linear-probing hash table (§5.1): open addressing, no pointers, traverse
// linearly until an empty bucket. Build and probe exist in three forms:
//
//   scalar       Alg. 4 / Alg. 6 — the paper's baseline.
//   vertical     Alg. 5 / Alg. 7 — one input key per vector lane, gathers
//                into the table, lane refill via selective loads, conflict
//                detection on build via scatter + gather-back.
//   horizontal   one probe key compared against W consecutive buckets with
//                one vector comparison (the prior state of the art [30];
//                see also bucketized.h for the bucket-aligned variant).
//
// Duplicate keys are allowed; Probe* returns every match. The table must
// keep at least one empty bucket (load factor < 1) or probing of an absent
// key would not terminate.

#include <cstddef>
#include <cstdint>

#include "core/isa.h"
#include "hash/hash_table.h"
#include "util/aligned_buffer.h"

namespace simddb {

class LinearProbingTable {
 public:
  /// Creates a table with `num_buckets` buckets (must be >= 16). The seed
  /// determines the hash factor.
  explicit LinearProbingTable(size_t num_buckets, uint64_t seed = 42);

  /// Empties the table.
  void Clear();

  /// Inserts n (key, payload) tuples. Keys must differ from kEmptyKey and
  /// total occupancy must stay below num_buckets().
  void Build(Isa isa, const uint32_t* keys, const uint32_t* pays, size_t n);
  void BuildScalar(const uint32_t* keys, const uint32_t* pays, size_t n);
  /// Alg. 7. If assume_unique_keys is true, uses the paper's optimization of
  /// scattering the keys themselves to detect conflicts (saves one scatter).
  void BuildAvx512(const uint32_t* keys, const uint32_t* pays, size_t n,
                   bool assume_unique_keys = false);

  /// Probes n (key, payload) tuples; writes one output tuple
  /// (key, probe payload, table payload) per match and returns the match
  /// count. Output buffers must have room for all matches. Vertical
  /// variants emit matches out of input order (the paper's "unstable"
  /// probing); the scalar and horizontal variants are stable.
  size_t Probe(Isa isa, const uint32_t* keys, const uint32_t* pays, size_t n,
               uint32_t* out_keys, uint32_t* out_spays,
               uint32_t* out_rpays) const;
  size_t ProbeScalar(const uint32_t* keys, const uint32_t* pays, size_t n,
                     uint32_t* out_keys, uint32_t* out_spays,
                     uint32_t* out_rpays) const;
  size_t ProbeAvx512(const uint32_t* keys, const uint32_t* pays, size_t n,
                     uint32_t* out_keys, uint32_t* out_spays,
                     uint32_t* out_rpays) const;
  size_t ProbeAvx2(const uint32_t* keys, const uint32_t* pays, size_t n,
                   uint32_t* out_keys, uint32_t* out_spays,
                   uint32_t* out_rpays) const;
  /// Horizontal vectorization: each probe key is compared against 16
  /// consecutive buckets per step (wrap-around handled via a 16-bucket
  /// mirror pad).
  size_t ProbeHorizontalAvx512(const uint32_t* keys, const uint32_t* pays,
                               size_t n, uint32_t* out_keys,
                               uint32_t* out_spays, uint32_t* out_rpays) const;

  size_t num_buckets() const { return n_buckets_; }
  size_t size() const { return count_; }
  uint32_t factor() const { return factor_; }
  const uint32_t* bucket_keys() const { return keys_.data(); }
  const uint32_t* bucket_pays() const { return pays_.data(); }

 private:
  // Mirrors buckets [0, 16) after the end of the arrays so horizontal
  // probing can read a full window at any starting bucket.
  void SyncWrapPad();

  AlignedBuffer<uint32_t> keys_;
  AlignedBuffer<uint32_t> pays_;
  size_t n_buckets_;
  size_t count_ = 0;
  uint32_t factor_;
};

}  // namespace simddb

#endif  // SIMDDB_HASH_LINEAR_PROBING_H_
