// AVX2 vertical double-hashing probe: 8 lanes, native gathers, emulated
// selective loads/stores (the paper's Haswell configuration).

#include "core/avx2_ops.h"
#include "hash/double_hashing.h"

namespace simddb {

size_t DoubleHashingTable::ProbeAvx2(const uint32_t* keys,
                                     const uint32_t* pays, size_t n,
                                     uint32_t* out_keys, uint32_t* out_spays,
                                     uint32_t* out_rpays) const {
  namespace v = simddb::avx2;
  const __m256i f1 = _mm256_set1_epi32(static_cast<int>(factor1_));
  const __m256i f2 = _mm256_set1_epi32(static_cast<int>(factor2_));
  const __m256i nb = _mm256_set1_epi32(static_cast<int>(n_buckets_));
  const __m256i nb1 = _mm256_set1_epi32(static_cast<int>(n_buckets_ - 1));
  const __m256i empty = _mm256_set1_epi32(static_cast<int>(kEmptyKey));
  const __m256i one = _mm256_set1_epi32(1);
  __m256i key = _mm256_setzero_si256();
  __m256i pay = _mm256_setzero_si256();
  __m256i h = _mm256_setzero_si256();
  __m256i step = _mm256_setzero_si256();
  uint32_t need = 0xFF;
  size_t i = 0;
  size_t j = 0;
  while (i + 8 <= n) {
    __m256i need_v = _mm256_setr_epi32(
        (need >> 0 & 1) ? -1 : 0, (need >> 1 & 1) ? -1 : 0,
        (need >> 2 & 1) ? -1 : 0, (need >> 3 & 1) ? -1 : 0,
        (need >> 4 & 1) ? -1 : 0, (need >> 5 & 1) ? -1 : 0,
        (need >> 6 & 1) ? -1 : 0, (need >> 7 & 1) ? -1 : 0);
    key = v::SelectiveLoad(key, need, keys + i);
    pay = v::SelectiveLoad(pay, need, pays + i);
    i += __builtin_popcount(need);
    __m256i h0 = v::MultHash(key, f1, nb);
    __m256i new_step = _mm256_or_si256(
        _mm256_add_epi32(v::MultHash(key, f2, nb1), one), one);
    step = _mm256_blendv_epi8(step, new_step, need_v);
    __m256i advanced = _mm256_add_epi32(h, step);
    __m256i in_range = _mm256_cmpgt_epi32(nb, advanced);
    advanced = _mm256_sub_epi32(advanced, _mm256_andnot_si256(in_range, nb));
    h = _mm256_blendv_epi8(advanced, h0, need_v);
    __m256i table_key = v::Gather(keys_.data(), h);
    uint32_t match = v::MoveMask(_mm256_cmpeq_epi32(table_key, key));
    if (match != 0) {
      __m256i table_pay = v::MaskGather(table_key, match, pays_.data(), h);
      v::SelectiveStore(out_keys + j, match, key);
      v::SelectiveStore(out_spays + j, match, pay);
      v::SelectiveStore(out_rpays + j, match, table_pay);
      j += __builtin_popcount(match);
    }
    need = v::MoveMask(_mm256_cmpeq_epi32(table_key, empty));
  }
  alignas(32) uint32_t lk[8], lv[8], lh[8], ls[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lk), key);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lv), pay);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lh), h);
  _mm256_store_si256(reinterpret_cast<__m256i*>(ls), step);
  const uint32_t nb_s = static_cast<uint32_t>(n_buckets_);
  for (int lane = 0; lane < 8; ++lane) {
    if (need & (1u << lane)) continue;
    uint32_t k = lk[lane];
    uint32_t bucket = lh[lane] + ls[lane];
    if (bucket >= nb_s) bucket -= nb_s;
    while (keys_[bucket] != kEmptyKey) {
      if (keys_[bucket] == k) {
        out_rpays[j] = pays_[bucket];
        out_spays[j] = lv[lane];
        out_keys[j] = k;
        ++j;
      }
      bucket += ls[lane];
      if (bucket >= nb_s) bucket -= nb_s;
    }
  }
  j += ProbeScalar(keys + i, pays + i, n - i, out_keys + j, out_spays + j,
                   out_rpays + j);
  return j;
}

}  // namespace simddb
