// AVX2 vertical linear-probing probe (the paper's Haswell variant, App. E):
// native gathers, emulated selective loads/stores, 8 keys per vector.

#include "core/avx2_ops.h"
#include "hash/linear_probing.h"

namespace simddb {

size_t LinearProbingTable::ProbeAvx2(const uint32_t* keys,
                                     const uint32_t* pays, size_t n,
                                     uint32_t* out_keys, uint32_t* out_spays,
                                     uint32_t* out_rpays) const {
  namespace v = simddb::avx2;
  const __m256i factor = _mm256_set1_epi32(static_cast<int>(factor_));
  const __m256i nb = _mm256_set1_epi32(static_cast<int>(n_buckets_));
  const __m256i empty = _mm256_set1_epi32(static_cast<int>(kEmptyKey));
  const __m256i one = _mm256_set1_epi32(1);
  __m256i key = _mm256_setzero_si256();
  __m256i pay = _mm256_setzero_si256();
  __m256i off = _mm256_setzero_si256();
  uint32_t need = 0xFF;
  size_t i = 0;
  size_t j = 0;
  while (i + 8 <= n) {
    key = v::SelectiveLoad(key, need, keys + i);
    pay = v::SelectiveLoad(pay, need, pays + i);
    i += __builtin_popcount(need);
    __m256i h = v::MultHash(key, factor, nb);
    h = _mm256_add_epi32(h, off);
    // Wrap h into [0, nb): h and nb are < 2^31 in practice, so a signed
    // compare is safe here.
    __m256i over = _mm256_cmpgt_epi32(nb, h);
    h = _mm256_sub_epi32(h, _mm256_andnot_si256(over, nb));
    __m256i table_key = v::Gather(keys_.data(), h);
    uint32_t match = v::MoveMask(_mm256_cmpeq_epi32(table_key, key));
    if (match != 0) {
      __m256i table_pay = v::MaskGather(table_key, match, pays_.data(), h);
      v::SelectiveStore(out_keys + j, match, key);
      v::SelectiveStore(out_spays + j, match, pay);
      v::SelectiveStore(out_rpays + j, match, table_pay);
      j += __builtin_popcount(match);
    }
    need = v::MoveMask(_mm256_cmpeq_epi32(table_key, empty));
    // off = need ? 0 : off + 1.
    off = _mm256_andnot_si256(_mm256_cmpeq_epi32(table_key, empty),
                              _mm256_add_epi32(off, one));
  }
  // Drain in-flight lanes, then the input tail, with scalar code.
  alignas(32) uint32_t lk[8], lv[8], lo[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lk), key);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lv), pay);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lo), off);
  const uint32_t nb_s = static_cast<uint32_t>(n_buckets_);
  for (int lane = 0; lane < 8; ++lane) {
    if (need & (1u << lane)) continue;
    uint32_t k = lk[lane];
    uint32_t h = MultHash32(k, factor_, nb_s) + lo[lane];
    if (h >= nb_s) h -= nb_s;
    while (keys_[h] != kEmptyKey) {
      if (keys_[h] == k) {
        out_rpays[j] = pays_[h];
        out_spays[j] = lv[lane];
        out_keys[j] = k;
        ++j;
      }
      if (++h == nb_s) h = 0;
    }
  }
  j += ProbeScalar(keys + i, pays + i, n - i, out_keys + j, out_spays + j,
                   out_rpays + j);
  return j;
}

}  // namespace simddb
