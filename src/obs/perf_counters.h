#ifndef SIMDDB_OBS_PERF_COUNTERS_H_
#define SIMDDB_OBS_PERF_COUNTERS_H_

// Hardware-event sampling per measured region via perf_event_open(2).
//
// The paper's §10 arguments are hardware-event arguments (gathers/scatters
// bound by L1 ports, conflict rates); cycles / instructions / LLC-misses
// per region is what makes a SIMD speedup claim defensible (cf. Hofmann et
// al., PAPERS.md). The wrapper degrades gracefully everywhere the syscall
// is unavailable: non-Linux builds, seccomp-filtered containers, and
// perf_event_paranoid lockdowns all yield available() == false and
// Reading{valid=false} — callers never branch on platform, only on the
// reading's validity. Each event is opened as its own fd with inherit=1,
// so worker threads spawned after Start() (the lazily-spawned TaskPool
// lanes) are included in the counts.

#include <cstdint>

namespace simddb::obs {

class PerfCounters {
 public:
  struct Reading {
    bool valid = false;  // at least one event was actually counted
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t llc_misses = 0;
  };

  /// Tries to open the three events for the calling thread (+ inherited
  /// children). Failure is recorded, not thrown.
  PerfCounters();
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True if at least one event opened successfully.
  bool available() const {
    return fd_cycles_ >= 0 || fd_instructions_ >= 0 || fd_llc_misses_ >= 0;
  }

  /// Resets and enables all opened events.
  void Start();

  /// Reads current values without stopping. Unopened events stay 0.
  Reading Read() const;

  /// Disables counting and returns the final values.
  Reading Stop();

 private:
  int fd_cycles_ = -1;
  int fd_instructions_ = -1;
  int fd_llc_misses_ = -1;
};

}  // namespace simddb::obs

#endif  // SIMDDB_OBS_PERF_COUNTERS_H_
