#ifndef SIMDDB_OBS_METRICS_H_
#define SIMDDB_OBS_METRICS_H_

// Operator observability: near-zero-overhead counters and phase timers.
//
// The paper argues in per-phase breakdowns (Fig. 13 shuffle phases, Fig. 17
// power proxy) and hardware-event terms (§10); the scheduler's "stealing
// wins" claims need steal counts, not just wall-clock tuples/s. This layer
// provides the substrate every perf PR reports against:
//
//   - `Counter`: a per-worker-sharded monotonic counter (cacheline-padded
//     relaxed atomics, so concurrent lanes never bounce a line);
//   - `PhaseTimer` + `ScopedPhase`: accumulated wall time per named phase,
//     recorded by RAII scopes on the dispatching thread;
//   - `MetricsRegistry`: process-wide name -> instrument directory used by
//     the bench harness to export every sample into JSONL rows.
//
// Overhead contract: everything is gated on MetricsEnabled(), one relaxed
// atomic load + predictable branch, and instrumentation sites sit at
// morsel/phase granularity (>= ~16K tuples of work per event), never inside
// per-tuple loops. Disabled-mode overhead on the fig5 selection-scan bench
// must stay < 2% (see DESIGN.md "Observability"). Metrics are OFF by
// default; enable with the SIMDDB_METRICS=1 environment variable, at
// runtime via EnableMetrics(true), or unconditionally at compile time with
// -DSIMDDB_METRICS=ON (cmake option; defines SIMDDB_METRICS_FORCE).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace simddb::obs {

class QueryMetricSink;

/// True when the build forces metrics on (-DSIMDDB_METRICS=ON); runtime
/// EnableMetrics(false) cannot turn them off in such a build.
inline constexpr bool kMetricsForced =
#ifdef SIMDDB_METRICS_FORCE
    true;
#else
    false;
#endif

namespace detail {
extern std::atomic<bool> g_enabled;  // initialized from SIMDDB_METRICS env
uint32_t ThisThreadShard();          // stable per-thread shard index

/// Attribution sink of the current thread (see QueryMetricSink). Plain
/// thread_local pointer: one load + predictable branch on the metrics-on
/// path, nothing when metrics are off.
extern thread_local QueryMetricSink* g_tls_sink;

void SinkAdd(uint32_t id, uint64_t delta);  // adds to g_tls_sink if set
}  // namespace detail

/// One relaxed load + branch: the gate every instrument checks first.
inline bool MetricsEnabled() {
  if constexpr (kMetricsForced) return true;
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Runtime switch (no-op in a SIMDDB_METRICS_FORCE build). Counters are not
/// cleared; pair with MetricsRegistry::ResetAll() for a clean measurement.
void EnableMetrics(bool on);

/// Monotonic ns timestamp (steady clock) for phase timing and tracing.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread CPU time in ns. Unlike NowNs, a sample is not inflated when
/// the thread is preempted mid-measurement — by a co-tenant on a shared
/// host, or by sibling lanes when the pool oversubscribes the cores. The
/// adaptive dispatcher times variants with this clock so scheduling noise
/// cannot invert a variant ranking; wall-clock phase timers keep NowNs.
/// Costs a syscall (~hundreds of ns) on most kernels, so reserve it for
/// low-frequency measurement points, not per-tuple instrumentation.
uint64_t ThreadCpuNs();

/// Per-worker sharded counter. Add() is wait-free: each thread increments
/// its own cacheline-padded shard; Value() sums the shards. Instances must
/// have static storage duration (the registry keeps raw pointers).
class Counter {
 public:
  explicit Counter(const char* name);

  /// Gated add: no-op unless metrics are enabled.
  void Add(uint64_t delta) {
    if (!MetricsEnabled()) return;
    AddAlways(delta);
  }

  /// Ungated add, for call sites that already checked MetricsEnabled().
  /// Also credits the calling thread's attribution sink, if one is scoped
  /// (per-query counter isolation — see QueryMetricSink).
  void AddAlways(uint64_t delta) {
    shards_[detail::ThisThreadShard() & (kShards - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
    if (detail::g_tls_sink != nullptr) detail::SinkAdd(id_, delta);
  }

  /// Sum over all shards (racy-consistent snapshot, fine for reporting).
  uint64_t Value() const;

  void Reset();

  const char* name() const { return name_; }

  /// Dense registry-assigned instrument id (QueryMetricSink slot index).
  uint32_t id() const { return id_; }

 private:
  static constexpr uint32_t kShards = 32;  // power of two
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  const char* name_;
  uint32_t id_;
  Shard shards_[kShards];
};

/// Accumulated wall time of a named phase. Updated once per phase execution
/// (operator-call granularity), so two plain atomics suffice.
class PhaseTimer {
 public:
  explicit PhaseTimer(const char* name);

  /// Gated record of one phase execution.
  void Record(uint64_t ns) {
    if (!MetricsEnabled()) return;
    RecordAlways(ns);
  }

  void RecordAlways(uint64_t ns) {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    calls_.fetch_add(1, std::memory_order_relaxed);
    if (detail::g_tls_sink != nullptr) detail::SinkAdd(id_, ns);
  }

  uint64_t TotalNs() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  uint64_t Calls() const { return calls_.load(std::memory_order_relaxed); }
  void Reset();

  const char* name() const { return name_; }
  uint32_t id() const { return id_; }

 private:
  const char* name_;
  uint32_t id_;
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> calls_{0};
};

/// RAII phase scope: times [construction, destruction) into a PhaseTimer
/// and, when tracing is active, records a chrome-trace event (see trace.h).
/// Costs one MetricsEnabled() check when disabled.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer& timer)
      : timer_(timer), active_(MetricsEnabled()) {
    if (active_) start_ns_ = NowNs();
  }
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& timer_;
  bool active_;
  uint64_t start_ns_ = 0;
};

/// One named value in a registry snapshot. Timers sample their total ns
/// under their own name (all timer names end in _ns by convention).
struct MetricSample {
  const char* name;
  uint64_t value;
};

/// Process-wide directory of every Counter/PhaseTimer. Instruments register
/// themselves at static-init time; the bench harness snapshots between
/// cases to attribute deltas to each JSONL row. Registration also assigns
/// each instrument a dense id — the slot index QueryMetricSink accumulates
/// under.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  /// Returns the instrument's dense id (registration order, one id space
  /// shared by counters and timers).
  uint32_t Register(Counter* c);
  uint32_t Register(PhaseTimer* t);

  /// All counters then all timers, in registration order.
  std::vector<MetricSample> Snapshot() const;

  /// Instruments registered so far (== the id ceiling).
  size_t InstrumentCount() const;

  /// Name of the instrument with dense id `id` (nullptr if out of range).
  const char* InstrumentName(uint32_t id) const;

  /// Zeroes every registered instrument (start of a measured region).
  void ResetAll();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::vector<Counter*> counters_;
  std::vector<PhaseTimer*> timers_;
  std::vector<const char*> names_by_id_;  // dense id -> name
};

// ---------------------------------------------------------------------------
// Per-query attribution
// ---------------------------------------------------------------------------

/// Concurrency-safe per-query accumulator: every AddAlways/RecordAlways on a
/// thread whose tls sink points here is *also* credited to the matching slot
/// of this sink. The TaskPool forwards the submitting thread's sink to the
/// worker lanes of each dispatch, so a query's sink sees exactly the work
/// done on the query's behalf — concurrent queries cannot bleed into each
/// other the way raw registry snapshot-deltas do (the registry is global;
/// two overlapping queries' deltas are inseparable there).
///
/// Sized at construction to the instruments registered so far; instruments
/// registered later are silently not attributed (all library instruments
/// register at static init, so this only affects late test-local ones).
class QueryMetricSink {
 public:
  QueryMetricSink();

  void Add(uint32_t id, uint64_t delta) {
    if (id < n_) slots_[id].fetch_add(delta, std::memory_order_relaxed);
  }

  /// Accumulated value under the instrument named `name` (0 if unknown).
  uint64_t ValueOf(const char* name) const;

  /// Every nonzero slot as (name, value), in id order.
  std::vector<MetricSample> Samples() const;

 private:
  size_t n_;
  std::unique_ptr<std::atomic<uint64_t>[]> slots_;
};

/// The calling thread's current attribution sink (nullptr when unscoped).
inline QueryMetricSink* CurrentMetricSink() { return detail::g_tls_sink; }

/// RAII: routes this thread's instrument updates into `sink` (in addition
/// to the global shards) for the scope's lifetime; restores the previous
/// sink on exit. Pool dispatches started inside the scope extend it to the
/// participating worker lanes.
class ScopedMetricSink {
 public:
  explicit ScopedMetricSink(QueryMetricSink* sink) : prev_(detail::g_tls_sink) {
    detail::g_tls_sink = sink;
  }
  ~ScopedMetricSink() { detail::g_tls_sink = prev_; }

  ScopedMetricSink(const ScopedMetricSink&) = delete;
  ScopedMetricSink& operator=(const ScopedMetricSink&) = delete;

 private:
  QueryMetricSink* prev_;
};

// ---------------------------------------------------------------------------
// Registry snapshot/delta helpers
// ---------------------------------------------------------------------------

/// Absolute registry values right now, as a name -> value map (empty while
/// metrics are off). The serial-measurement primitive: pair with DeltaSince
/// around a region to attribute its registry growth. For *concurrent*
/// attribution use QueryMetricSink — a global snapshot cannot separate two
/// overlapping queries.
std::map<std::string, uint64_t> SnapshotMap();

/// Per-name growth of the registry since `before` (names that did not grow
/// are omitted). Thread-safe; both sides are racy-consistent sums, fine for
/// reporting and gating.
std::map<std::string, uint64_t> DeltaSince(
    const std::map<std::string, uint64_t>& before);

}  // namespace simddb::obs

#endif  // SIMDDB_OBS_METRICS_H_
