#include "obs/trace.h"

#include <atomic>
#include <mutex>
#include <vector>

#include "obs/jsonl.h"
#include "obs/metrics.h"

namespace simddb::obs {
namespace {

struct TraceEvent {
  const char* name;
  uint64_t start_ns;
  uint64_t dur_ns;
  uint32_t tid;
};

std::atomic<bool> g_tracing{false};
std::atomic<uint64_t> g_dropped{0};
std::mutex g_mu;
std::vector<TraceEvent>& Buffer() {
  static std::vector<TraceEvent>* buf = new std::vector<TraceEvent>();
  return *buf;
}

}  // namespace

bool TraceEnabled() { return g_tracing.load(std::memory_order_relaxed); }

void StartTrace() {
  {
    std::lock_guard<std::mutex> lock(g_mu);
    Buffer().clear();
    Buffer().reserve(4096);
  }
  g_dropped.store(0, std::memory_order_relaxed);
  EnableMetrics(true);
  g_tracing.store(true, std::memory_order_relaxed);
}

void StopTrace() { g_tracing.store(false, std::memory_order_relaxed); }

void EmitTraceEvent(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  if (!TraceEnabled()) return;
  std::lock_guard<std::mutex> lock(g_mu);
  std::vector<TraceEvent>& buf = Buffer();
  if (buf.size() >= kMaxTraceEvents) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.push_back({name, start_ns, dur_ns, detail::ThisThreadShard()});
}

uint64_t TraceDroppedEvents() {
  return g_dropped.load(std::memory_order_relaxed);
}

void WriteChromeTrace(std::ostream& os) {
  std::lock_guard<std::mutex> lock(g_mu);
  const std::vector<TraceEvent>& buf = Buffer();
  uint64_t base_ns = buf.empty() ? 0 : buf.front().start_ns;
  for (const TraceEvent& e : buf) {
    if (e.start_ns < base_ns) base_ns = e.start_ns;
  }
  os << "{\"traceEvents\":[";
  std::string line;
  for (size_t i = 0; i < buf.size(); ++i) {
    const TraceEvent& e = buf[i];
    line.clear();
    if (i > 0) line.append(",\n");
    line.append("{\"name\":\"");
    JsonAppendEscaped(&line, e.name);
    line.append("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
    line.append(std::to_string(e.tid));
    line.append(",\"ts\":");
    JsonAppendNumber(&line, static_cast<double>(e.start_ns - base_ns) * 1e-3);
    line.append(",\"dur\":");
    JsonAppendNumber(&line, static_cast<double>(e.dur_ns) * 1e-3);
    line.append("}");
    os << line;
  }
  os << "]}\n";
}

}  // namespace simddb::obs
