#ifndef SIMDDB_OBS_TRACE_H_
#define SIMDDB_OBS_TRACE_H_

// Chrome-trace capture for phase timings. Every ScopedPhase (obs/metrics.h)
// that completes while tracing is active records one complete ("ph":"X")
// event; WriteChromeTrace dumps the buffer in the chrome://tracing /
// Perfetto JSON format. Collection is bounded (kMaxTraceEvents) — past the
// cap events are dropped and counted, never reallocated mid-run — and the
// whole facility is off unless StartTrace() was called, so it adds nothing
// to the disabled-metrics fast path.

#include <cstdint>
#include <ostream>

namespace simddb::obs {

/// Collection cap; one event is 32 bytes, so the buffer tops out at 8 MiB.
inline constexpr size_t kMaxTraceEvents = size_t{1} << 18;

/// True while trace collection is active.
bool TraceEnabled();

/// Clears the buffer and starts collecting phase events. Also enables
/// metrics (a trace of no-op phases would be empty).
void StartTrace();

/// Stops collecting (the buffer is kept for WriteChromeTrace).
void StopTrace();

/// Records one complete event (called by ScopedPhase; no-op unless
/// tracing). Timestamps are NowNs() values; thread ids are the metrics
/// shard of the recording thread.
void EmitTraceEvent(const char* name, uint64_t start_ns, uint64_t dur_ns);

/// Number of events dropped because the buffer was full.
uint64_t TraceDroppedEvents();

/// Writes the captured events as {"traceEvents":[...]} JSON. Timestamps
/// are rebased to the first event and expressed in microseconds, as the
/// trace-event format expects.
void WriteChromeTrace(std::ostream& os);

}  // namespace simddb::obs

#endif  // SIMDDB_OBS_TRACE_H_
