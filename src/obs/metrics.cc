#include "obs/metrics.h"

#include <ctime>

#include <cstdlib>
#include <cstring>

#include "obs/trace.h"

namespace simddb::obs {
namespace detail {

namespace {
bool EnvEnablesMetrics() {
  const char* env = std::getenv("SIMDDB_METRICS");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
         std::strcmp(env, "true") == 0 || std::strcmp(env, "ON") == 0;
}
}  // namespace

std::atomic<bool> g_enabled{EnvEnablesMetrics()};

uint32_t ThisThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

}  // namespace detail

void EnableMetrics(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

uint64_t ThreadCpuNs() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return NowNs();
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

Counter::Counter(const char* name) : name_(name) {
  MetricsRegistry::Get().Register(this);
}

uint64_t Counter::Value() const {
  uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

PhaseTimer::PhaseTimer(const char* name) : name_(name) {
  MetricsRegistry::Get().Register(this);
}

void PhaseTimer::Reset() {
  total_ns_.store(0, std::memory_order_relaxed);
  calls_.store(0, std::memory_order_relaxed);
}

ScopedPhase::~ScopedPhase() {
  if (!active_) return;
  const uint64_t dur = NowNs() - start_ns_;
  timer_.RecordAlways(dur);
  EmitTraceEvent(timer_.name(), start_ns_, dur);
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::Register(Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.push_back(c);
}

void MetricsRegistry::Register(PhaseTimer* t) {
  std::lock_guard<std::mutex> lock(mu_);
  timers_.push_back(t);
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + timers_.size());
  for (const Counter* c : counters_) out.push_back({c->name(), c->Value()});
  for (const PhaseTimer* t : timers_) {
    out.push_back({t->name(), t->TotalNs()});
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter* c : counters_) c->Reset();
  for (PhaseTimer* t : timers_) t->Reset();
}

}  // namespace simddb::obs
