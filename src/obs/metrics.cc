#include "obs/metrics.h"

#include <ctime>

#include <cstdlib>
#include <cstring>

#include "obs/trace.h"

namespace simddb::obs {
namespace detail {

namespace {
bool EnvEnablesMetrics() {
  const char* env = std::getenv("SIMDDB_METRICS");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
         std::strcmp(env, "true") == 0 || std::strcmp(env, "ON") == 0;
}
}  // namespace

std::atomic<bool> g_enabled{EnvEnablesMetrics()};

uint32_t ThisThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

thread_local QueryMetricSink* g_tls_sink = nullptr;

void SinkAdd(uint32_t id, uint64_t delta) {
  // Callers re-check g_tls_sink inline; this out-of-line body keeps the
  // QueryMetricSink definition out of the hot-path headers.
  g_tls_sink->Add(id, delta);
}

}  // namespace detail

void EnableMetrics(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

uint64_t ThreadCpuNs() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return NowNs();
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

Counter::Counter(const char* name) : name_(name) {
  id_ = MetricsRegistry::Get().Register(this);
}

uint64_t Counter::Value() const {
  uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

PhaseTimer::PhaseTimer(const char* name) : name_(name) {
  id_ = MetricsRegistry::Get().Register(this);
}

void PhaseTimer::Reset() {
  total_ns_.store(0, std::memory_order_relaxed);
  calls_.store(0, std::memory_order_relaxed);
}

ScopedPhase::~ScopedPhase() {
  if (!active_) return;
  const uint64_t dur = NowNs() - start_ns_;
  timer_.RecordAlways(dur);
  EmitTraceEvent(timer_.name(), start_ns_, dur);
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

uint32_t MetricsRegistry::Register(Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.push_back(c);
  names_by_id_.push_back(c->name());
  return static_cast<uint32_t>(names_by_id_.size() - 1);
}

uint32_t MetricsRegistry::Register(PhaseTimer* t) {
  std::lock_guard<std::mutex> lock(mu_);
  timers_.push_back(t);
  names_by_id_.push_back(t->name());
  return static_cast<uint32_t>(names_by_id_.size() - 1);
}

size_t MetricsRegistry::InstrumentCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_by_id_.size();
}

const char* MetricsRegistry::InstrumentName(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < names_by_id_.size() ? names_by_id_[id] : nullptr;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + timers_.size());
  for (const Counter* c : counters_) out.push_back({c->name(), c->Value()});
  for (const PhaseTimer* t : timers_) {
    out.push_back({t->name(), t->TotalNs()});
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter* c : counters_) c->Reset();
  for (PhaseTimer* t : timers_) t->Reset();
}

QueryMetricSink::QueryMetricSink()
    : n_(MetricsRegistry::Get().InstrumentCount()),
      slots_(new std::atomic<uint64_t>[n_]) {
  for (size_t i = 0; i < n_; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

uint64_t QueryMetricSink::ValueOf(const char* name) const {
  MetricsRegistry& reg = MetricsRegistry::Get();
  for (uint32_t id = 0; id < n_; ++id) {
    const char* n = reg.InstrumentName(id);
    if (n != nullptr && std::strcmp(n, name) == 0) {
      return slots_[id].load(std::memory_order_relaxed);
    }
  }
  return 0;
}

std::vector<MetricSample> QueryMetricSink::Samples() const {
  MetricsRegistry& reg = MetricsRegistry::Get();
  std::vector<MetricSample> out;
  for (uint32_t id = 0; id < n_; ++id) {
    const uint64_t v = slots_[id].load(std::memory_order_relaxed);
    if (v == 0) continue;
    const char* n = reg.InstrumentName(id);
    if (n != nullptr) out.push_back({n, v});
  }
  return out;
}

std::map<std::string, uint64_t> SnapshotMap() {
  std::map<std::string, uint64_t> snap;
  if (!MetricsEnabled()) return snap;
  for (const MetricSample& s : MetricsRegistry::Get().Snapshot()) {
    snap[s.name] = s.value;
  }
  return snap;
}

std::map<std::string, uint64_t> DeltaSince(
    const std::map<std::string, uint64_t>& before) {
  std::map<std::string, uint64_t> deltas;
  if (!MetricsEnabled()) return deltas;
  for (const MetricSample& s : MetricsRegistry::Get().Snapshot()) {
    auto it = before.find(s.name);
    const uint64_t b = it == before.end() ? 0 : it->second;
    if (s.value > b) deltas[s.name] = s.value - b;
  }
  return deltas;
}

}  // namespace simddb::obs
