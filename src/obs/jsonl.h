#ifndef SIMDDB_OBS_JSONL_H_
#define SIMDDB_OBS_JSONL_H_

// Strict JSON-line assembly, shared by the bench harness's JSONL reporter
// (bench/bench_common.h) and the chrome-trace writer (obs/trace.cc), and
// unit-testable without a google-benchmark dependency (tests/obs_test.cc
// re-parses every emitted line with a strict JSON grammar).
//
// The helpers exist because the first JSONL reporter emitted invalid JSON
// in two ways: label values like "1." passed its numeric sniff and were
// written unquoted (JSON numbers require a digit after the '.'), and
// %.17g-formatted degenerate rates printed bare nan/inf. Here a value is
// only ever written unquoted if it matches the actual JSON number grammar,
// and non-finite doubles are written as null.

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace simddb::obs {

/// Appends s with JSON string escaping (quotes, backslash, control chars).
inline void JsonAppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

/// True iff s is a valid JSON number token (RFC 8259 grammar):
/// -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)? — notably rejects "1."
/// (trailing dot), ".5", "01", "-", "nan" and "inf".
inline bool JsonIsNumberToken(std::string_view s) {
  size_t i = 0;
  const size_t n = s.size();
  auto digit = [&](size_t k) { return k < n && s[k] >= '0' && s[k] <= '9'; };
  if (i < n && s[i] == '-') ++i;
  if (!digit(i)) return false;
  if (s[i] == '0') {
    ++i;
  } else {
    while (digit(i)) ++i;
  }
  if (i < n && s[i] == '.') {
    ++i;
    if (!digit(i)) return false;  // "1." is not a JSON number
    while (digit(i)) ++i;
  }
  if (i < n && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < n && (s[i] == '+' || s[i] == '-')) ++i;
    if (!digit(i)) return false;
    while (digit(i)) ++i;
  }
  return i == n;
}

/// Appends a double as a JSON value: %.17g when finite (round-trippable),
/// null for nan/inf so the line stays parseable.
inline void JsonAppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

/// Appends ,"key":value — quoted unless the value is a JSON number token.
inline void JsonAppendField(std::string* out, std::string_view key,
                            std::string_view value) {
  out->append(",\"");
  JsonAppendEscaped(out, key);
  out->append("\":");
  const bool quote = !JsonIsNumberToken(value);
  if (quote) out->push_back('"');
  JsonAppendEscaped(out, value);
  if (quote) out->push_back('"');
}

/// Appends ,"key":<number or null>.
inline void JsonAppendNumberField(std::string* out, std::string_view key,
                                  double value) {
  out->append(",\"");
  JsonAppendEscaped(out, key);
  out->append("\":");
  JsonAppendNumber(out, value);
}

/// One benchmark case, decoupled from google-benchmark's Run type so line
/// assembly is testable in the unit suite.
struct BenchJsonRow {
  std::string name;
  std::string label;  // space-separated `key=value` and bare tokens
  int threads = 1;
  double real_time = 0;
  std::string time_unit;
  long long iterations = 0;
  bool has_tuples_per_s = false;
  double tuples_per_s = 0;
  /// Extra numeric fields (metrics counters, perf events), appended as-is.
  std::vector<std::pair<std::string, double>> metrics;
};

/// Builds one JSONL object (newline-terminated) for a finished case. Label
/// tokens `key=value` become fields; the first bare token becomes
/// "variant"; an "isa" field is inferred from the variant/label when not
/// explicitly encoded; "threads" falls back to the harness thread count.
inline std::string BuildBenchJsonLine(const BenchJsonRow& row) {
  std::string line = "{\"name\":\"";
  JsonAppendEscaped(&line, row.name);
  line.push_back('"');

  std::string variant;
  std::string isa;
  bool saw_threads = false;
  const std::string& label = row.label;
  size_t pos = 0;
  while (pos < label.size()) {
    size_t end = label.find(' ', pos);
    if (end == std::string::npos) end = label.size();
    std::string tok = label.substr(pos, end - pos);
    pos = end + 1;
    if (tok.empty()) continue;
    size_t eq = tok.find('=');
    if (eq != std::string::npos && eq > 0) {
      std::string k = tok.substr(0, eq);
      std::string v = tok.substr(eq + 1);
      if (k == "threads") saw_threads = true;
      if (k == "isa") {
        // Captured and emitted once below — appending here too would
        // duplicate the key when the label encodes the ISA explicitly.
        isa = v;
        continue;
      }
      JsonAppendField(&line, k, v);
    } else if (variant.empty()) {
      variant = tok;
    }
  }
  if (!variant.empty()) JsonAppendField(&line, "variant", variant);
  if (isa.empty()) {
    // Heuristic for binaries that encode the ISA inside the variant name.
    const std::string& hay = variant.empty() ? label : variant;
    if (hay.find("avx512") != std::string::npos ||
        hay.find("vector") != std::string::npos) {
      isa = "avx512";
    } else if (hay.find("avx2") != std::string::npos) {
      isa = "avx2";
    } else if (hay.find("scalar") != std::string::npos) {
      isa = "scalar";
    }
  }
  if (!isa.empty()) JsonAppendField(&line, "isa", isa);
  if (!saw_threads) {
    JsonAppendField(&line, "threads", std::to_string(row.threads));
  }

  JsonAppendNumberField(&line, "real_time", row.real_time);
  JsonAppendField(&line, "time_unit", row.time_unit);
  JsonAppendField(&line, "iterations", std::to_string(row.iterations));
  if (row.has_tuples_per_s) {
    JsonAppendNumberField(&line, "tuples_per_s", row.tuples_per_s);
  }
  for (const auto& [key, value] : row.metrics) {
    JsonAppendNumberField(&line, key, value);
  }
  line.append("}\n");
  return line;
}

}  // namespace simddb::obs

#endif  // SIMDDB_OBS_JSONL_H_
