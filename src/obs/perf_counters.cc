#include "obs/perf_counters.h"

#ifdef __linux__

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#include <initializer_list>

namespace simddb::obs {
namespace {

int OpenEvent(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Count threads created after the open too (the pool's lazy workers).
  // inherit forbids PERF_FORMAT_GROUP reads, which is why each event is a
  // separate fd instead of one group.
  attr.inherit = 1;
  long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                    /*group_fd=*/-1, /*flags=*/0);
  return static_cast<int>(fd);  // -1 on EPERM/ENOSYS/EINVAL: fall back
}

uint64_t ReadValue(int fd) {
  if (fd < 0) return 0;
  uint64_t v = 0;
  if (read(fd, &v, sizeof(v)) != static_cast<ssize_t>(sizeof(v))) return 0;
  return v;
}

void Ioctl(int fd, unsigned long req) {
  if (fd >= 0) ioctl(fd, req, 0);
}

}  // namespace

PerfCounters::PerfCounters() {
  fd_cycles_ = OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  fd_instructions_ =
      OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  fd_llc_misses_ =
      OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
}

PerfCounters::~PerfCounters() {
  if (fd_cycles_ >= 0) close(fd_cycles_);
  if (fd_instructions_ >= 0) close(fd_instructions_);
  if (fd_llc_misses_ >= 0) close(fd_llc_misses_);
}

void PerfCounters::Start() {
  for (int fd : {fd_cycles_, fd_instructions_, fd_llc_misses_}) {
    Ioctl(fd, PERF_EVENT_IOC_RESET);
    Ioctl(fd, PERF_EVENT_IOC_ENABLE);
  }
}

PerfCounters::Reading PerfCounters::Read() const {
  Reading r;
  r.cycles = ReadValue(fd_cycles_);
  r.instructions = ReadValue(fd_instructions_);
  r.llc_misses = ReadValue(fd_llc_misses_);
  r.valid = available();
  return r;
}

PerfCounters::Reading PerfCounters::Stop() {
  for (int fd : {fd_cycles_, fd_instructions_, fd_llc_misses_}) {
    Ioctl(fd, PERF_EVENT_IOC_DISABLE);
  }
  return Read();
}

}  // namespace simddb::obs

#else  // !__linux__

namespace simddb::obs {

// Stub: the syscall does not exist; every reading is invalid.
PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::Start() {}
PerfCounters::Reading PerfCounters::Read() const { return Reading{}; }
PerfCounters::Reading PerfCounters::Stop() { return Reading{}; }

}  // namespace simddb::obs

#endif  // __linux__
