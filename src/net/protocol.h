#ifndef SIMDDB_NET_PROTOCOL_H_
#define SIMDDB_NET_PROTOCOL_H_

// Wire protocol of the network serving layer: a line-oriented textual
// request language parsed into server::QuerySpec, and a framed textual
// response stream carrying group-by result rows plus QueryStats.
//
// Request grammar (one command per '\n'-terminated line; '\r' before the
// terminator is tolerated; clauses are space-separated and order-free,
// each clause at most once):
//
//   QUERY build=<table> probe=<table> [r=[lo,hi]] [s=[lo,hi]]
//         [weight=W] [scan=compact|bitmap] [storage=raw|packed]
//         [isa=scalar|avx2|avx512]
//   TABLES
//   STATS
//   PING
//   QUIT
//   SHUTDOWN
//
// `build`/`probe` name catalog tables ([A-Za-z0-9_.-]+). `r`/`s` are
// inclusive uint32 ranges filtering the build keys / probe values and
// default to the full domain. `weight` (1..65536, default 1) biases the
// scheduler's weighted-fair morsel gate. `storage=packed` binds the
// compressed table twins. `isa` overrides the server's default backend
// (clamped to host capability at plan build — degrade, don't SIGILL).
//
// Response grammar:
//
//   QUERY ->  ROW <key> <sum> <count> <min> <max>        (one per group)
//             OK rows=<n> exec_ns=<t> queue_ns=<t> morsels=<n> shared=<0|1>
//   TABLES -> TABLE <name> rows=<n> compressed=<0|1>     (one per table)
//             OK tables=<n>
//   STATS  -> STAT <name> <value>                        (one per counter)
//             OK stats=<n>
//   PING   -> PONG
//   QUIT   -> BYE                                        (then close)
//   SHUTDOWN -> OK shutdown                              (then drain)
//   any error -> ERR <kind> <detail>   kind in {parse, admission, exec}
//
// Parse errors are structured: a byte offset into the offending line plus
// an expected-token message, rendered on the wire as
// `ERR parse at <pos>: expected <what>`. The tokenizer and parser operate
// on string_views of the input line and allocate nothing; only the final
// materialization into server::QuerySpec (ToSpec) copies the table names.
//
// The same encode/decode pairs serve both sides: the server encodes rows
// and trailers, the client (net/client.h) decodes them back, and the
// round-trip is exact — uint32/uint64 values are printed in full decimal,
// so a wire result is byte-identical to the in-process ResultSet it came
// from (the property tests/net_test.cc holds end to end).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/isa.h"
#include "server/scheduler.h"

namespace simddb::net {

enum class Command { kQuery, kTables, kStats, kPing, kQuit, kShutdown };

/// A parsed QUERY line. Table names are views into the input line —
/// valid only while the line's buffer lives; ToSpec copies them out.
struct ParsedQuery {
  std::string_view build_table;
  std::string_view probe_table;
  uint32_t r_lo = 0, r_hi = 0xFFFFFFFFu;
  uint32_t s_lo = 0, s_hi = 0xFFFFFFFFu;
  uint64_t weight = 1;
  exec::ScanMode scan_mode = exec::ScanMode::kCompact;
  bool packed = false;  ///< storage=packed: bind compressed twins
  bool has_isa = false;
  Isa isa = Isa::kScalar;  ///< meaningful only when has_isa
};

/// A parsed request line: the command, plus the query payload when
/// cmd == kQuery.
struct Request {
  Command cmd = Command::kPing;
  ParsedQuery query;
};

/// Structured parse failure: byte offset of the offending token in the
/// line and a static expected-token message. `expected` points at string
/// literals — no allocation, no lifetime to manage.
struct ParseError {
  size_t pos = 0;
  const char* expected = "";
};

/// Parses one request line (no trailing '\n'; a trailing '\r' is
/// stripped). True on success; false fills *err. Never throws, never
/// reads outside `line`, and tolerates arbitrary bytes (NUL included).
bool ParseRequest(std::string_view line, Request* req, ParseError* err);

/// Materializes a ParsedQuery into the scheduler's QuerySpec (copies the
/// table names; sets scan mode / packed binding).
server::QuerySpec ToSpec(const ParsedQuery& q);

/// Maximum accepted request-line length, terminator excluded. Longer
/// lines are rejected with `ERR parse` and discarded to the next '\n'.
inline constexpr size_t kMaxLineBytes = 4096;

// ---------------------------------------------------------------------------
// Response encoding (server side). All Append* functions append one or
// more complete '\n'-terminated frames to *out using a stack scratch for
// number formatting — no per-call allocation beyond the buffer's growth.

void AppendRow(std::string* out, uint32_t key, uint64_t sum, uint32_t count,
               uint32_t min, uint32_t max);

/// The result trailer: `OK rows=... exec_ns=... queue_ns=... morsels=...
/// shared=...`.
void AppendQueryOk(std::string* out, uint64_t rows,
                   const server::QueryStats& stats);

void AppendTable(std::string* out, std::string_view name, uint64_t rows,
                 bool compressed);
void AppendTablesOk(std::string* out, uint64_t tables);

void AppendStat(std::string* out, std::string_view name, uint64_t value);
void AppendStatsOk(std::string* out, uint64_t stats);

/// `ERR <kind> <detail>` — kind in {parse, admission, exec}.
void AppendErr(std::string* out, std::string_view kind,
               std::string_view detail);

/// Renders a ParseError as the wire detail: `at <pos>: expected <what>`
/// (the caller wraps it in AppendErr(out, "parse", ...)).
std::string FormatParseError(const ParseError& err);

// ---------------------------------------------------------------------------
// Response decoding (client side, and the tests' round-trip checks).

/// One decoded ROW frame.
struct WireRow {
  uint32_t key = 0;
  uint64_t sum = 0;
  uint32_t count = 0;
  uint32_t min = 0;
  uint32_t max = 0;
};

/// One decoded TABLE frame.
struct WireTable {
  std::string name;
  uint64_t rows = 0;
  bool compressed = false;
};

/// Accumulated response of one QUERY exchange.
struct WireResult {
  bool ok = false;
  std::string error;  ///< `<kind> <detail>` of the ERR frame when !ok
  std::vector<WireRow> rows;
  uint64_t rows_declared = 0;  ///< rows=<n> of the OK trailer
  uint64_t exec_ns = 0;
  uint64_t queue_ns = 0;
  uint64_t morsels = 0;
  bool shared = false;
};

/// Frame classification for the client's response loop.
enum class FrameKind { kRow, kOk, kErr, kTable, kStat, kPong, kBye, kOther };
FrameKind ClassifyFrame(std::string_view line);

bool DecodeRow(std::string_view line, WireRow* row);
/// Decodes the QUERY OK trailer into the declared counters of *result.
bool DecodeQueryOk(std::string_view line, WireResult* result);
bool DecodeTable(std::string_view line, WireTable* table);
bool DecodeStat(std::string_view line, std::string* name, uint64_t* value);

}  // namespace simddb::net

#endif  // SIMDDB_NET_PROTOCOL_H_
