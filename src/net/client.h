#ifndef SIMDDB_NET_CLIENT_H_
#define SIMDDB_NET_CLIENT_H_

// Blocking client of the wire protocol (net/protocol.h): connect over TCP
// or a Unix-domain socket, send request lines, and iterate decoded
// response frames. One Client is one connection and is single-threaded —
// concurrency comes from many clients, exactly like QuerySession on the
// in-process side.
//
//   net::Client c;
//   std::string err;
//   if (!c.ConnectUnix("/tmp/simddb.sock", &err)) { ... }
//   net::WireResult r = c.Query(
//       "QUERY build=R probe=S s=[100,200] weight=4");
//   for (const net::WireRow& row : r.rows) { ... }
//   c.Quit();
//
// Query() runs one full exchange: send the line, collect ROW frames until
// the OK trailer or an ERR frame. The decoded rows round-trip the
// server's encoding exactly, so r.rows is byte-identical to the
// QueryResult the server executed (the loopback tests' property).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.h"

namespace simddb::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool ConnectUnix(const std::string& path, std::string* error);
  bool ConnectTcp(const std::string& host, int port, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request line (terminator appended). False on a dead
  /// connection or send failure.
  bool SendLine(std::string_view line);

  /// Reads one '\n'-terminated response line, stripping the terminator
  /// (and a '\r' before it). False on EOF or error.
  bool ReadLine(std::string* line);

  /// One QUERY exchange: send, then collect ROW frames until the OK
  /// trailer (ok = true) or an ERR frame (ok = false, error filled).
  WireResult Query(std::string_view query_line);

  /// TABLES exchange. False on protocol/transport failure.
  bool Tables(std::vector<WireTable>* tables);

  /// STATS exchange into name -> value pairs (wire order preserved).
  bool Stats(std::vector<std::pair<std::string, uint64_t>>* stats);

  /// PING -> PONG round trip.
  bool Ping();

  /// Sends QUIT, waits for BYE, closes.
  void Quit();

 private:
  int fd_ = -1;
  std::string rbuf_;
};

}  // namespace simddb::net

#endif  // SIMDDB_NET_CLIENT_H_
