#include "net/client.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

namespace simddb::net {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

bool Client::ConnectUnix(const std::string& path, std::string* error) {
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "unix path too long";
    return false;
  }
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect(" + path + "): " + strerror(errno);
    }
    Close();
    return false;
  }
  return true;
}

bool Client::ConnectTcp(const std::string& host, int port, std::string* error) {
  Close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host " + host;
    return false;
  }
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect(" + host + ":" + std::to_string(port) +
               "): " + strerror(errno);
    }
    Close();
    return false;
  }
  return true;
}

bool Client::SendLine(std::string_view line) {
  if (fd_ < 0) return false;
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool Client::ReadLine(std::string* line) {
  if (fd_ < 0) return false;
  char buf[4096];
  for (;;) {
    const size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      size_t len = nl;
      if (len > 0 && rbuf_[len - 1] == '\r') --len;
      line->assign(rbuf_, 0, len);
      rbuf_.erase(0, nl + 1);
      return true;
    }
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or transport error
  }
}

WireResult Client::Query(std::string_view query_line) {
  WireResult result;
  if (!SendLine(query_line)) {
    result.error = "transport send failed";
    return result;
  }
  std::string line;
  for (;;) {
    if (!ReadLine(&line)) {
      result.error = "transport closed mid-response";
      result.rows.clear();
      return result;
    }
    switch (ClassifyFrame(line)) {
      case FrameKind::kRow: {
        WireRow row;
        if (!DecodeRow(line, &row)) {
          result.error = "undecodable ROW frame: " + line;
          result.rows.clear();
          return result;
        }
        result.rows.push_back(row);
        break;
      }
      case FrameKind::kOk:
        if (!DecodeQueryOk(line, &result)) {
          result.error = "undecodable OK trailer: " + line;
          result.rows.clear();
          return result;
        }
        result.ok = true;
        return result;
      case FrameKind::kErr:
        result.error = line.substr(4);  // past "ERR "
        result.rows.clear();
        return result;
      default:
        result.error = "unexpected frame: " + line;
        result.rows.clear();
        return result;
    }
  }
}

bool Client::Tables(std::vector<WireTable>* tables) {
  tables->clear();
  if (!SendLine("TABLES")) return false;
  std::string line;
  for (;;) {
    if (!ReadLine(&line)) return false;
    switch (ClassifyFrame(line)) {
      case FrameKind::kTable: {
        WireTable t;
        if (!DecodeTable(line, &t)) return false;
        tables->push_back(std::move(t));
        break;
      }
      case FrameKind::kOk:
        return true;
      default:
        return false;
    }
  }
}

bool Client::Stats(std::vector<std::pair<std::string, uint64_t>>* stats) {
  stats->clear();
  if (!SendLine("STATS")) return false;
  std::string line;
  for (;;) {
    if (!ReadLine(&line)) return false;
    switch (ClassifyFrame(line)) {
      case FrameKind::kStat: {
        std::string name;
        uint64_t value = 0;
        if (!DecodeStat(line, &name, &value)) return false;
        stats->emplace_back(std::move(name), value);
        break;
      }
      case FrameKind::kOk:
        return true;
      default:
        return false;
    }
  }
}

bool Client::Ping() {
  if (!SendLine("PING")) return false;
  std::string line;
  if (!ReadLine(&line)) return false;
  return ClassifyFrame(line) == FrameKind::kPong;
}

void Client::Quit() {
  if (fd_ < 0) return;
  if (SendLine("QUIT")) {
    std::string line;
    ReadLine(&line);  // BYE (best effort)
  }
  Close();
}

}  // namespace simddb::net
