#include "net/protocol.h"

#include <charconv>
#include <cstring>

namespace simddb::net {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer: space-separated tokens as views into the line. Positions are
// byte offsets into the original line for the structured parse errors.

struct Cursor {
  std::string_view line;
  size_t pos = 0;

  void SkipSpaces() {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  }

  /// Next space-delimited token, or empty view at end of line.
  std::string_view Next(size_t* tok_pos) {
    SkipSpaces();
    *tok_pos = pos;
    size_t start = pos;
    while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') ++pos;
    return line.substr(start, pos - start);
  }
};

bool Fail(ParseError* err, size_t pos, const char* expected) {
  err->pos = pos;
  err->expected = expected;
  return false;
}

/// Strict uint parse of the WHOLE view: digits only, no sign, value must
/// fit `max`. (std::from_chars accepts partial prefixes; the wrapper
/// rejects trailing garbage so `r=[1x,2]` is a parse error, not r=[1,2].)
bool ParseUint(std::string_view s, uint64_t max, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (max - static_cast<uint64_t>(c - '0')) / 10) return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ValidTableName(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// `[lo,hi]` with both bounds uint32.
bool ParseRange(std::string_view s, uint32_t* lo, uint32_t* hi) {
  if (s.size() < 5 || s.front() != '[' || s.back() != ']') return false;
  s.remove_prefix(1);
  s.remove_suffix(1);
  const size_t comma = s.find(',');
  if (comma == std::string_view::npos) return false;
  uint64_t l = 0, h = 0;
  if (!ParseUint(s.substr(0, comma), 0xFFFFFFFFu, &l)) return false;
  if (!ParseUint(s.substr(comma + 1), 0xFFFFFFFFu, &h)) return false;
  *lo = static_cast<uint32_t>(l);
  *hi = static_cast<uint32_t>(h);
  return true;
}

constexpr const char* kExpectedClause =
    "clause (build=|probe=|r=|s=|weight=|scan=|storage=|isa=)";

bool ParseQueryClauses(Cursor* cur, ParsedQuery* q, ParseError* err) {
  bool seen[8] = {};  // build probe r s weight scan storage isa
  for (;;) {
    size_t tok_pos = 0;
    std::string_view tok = cur->Next(&tok_pos);
    if (tok.empty()) break;
    const size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Fail(err, tok_pos, kExpectedClause);
    }
    const std::string_view key = tok.substr(0, eq);
    const std::string_view val = tok.substr(eq + 1);
    const size_t val_pos = tok_pos + eq + 1;
    int slot;
    if (key == "build") {
      slot = 0;
    } else if (key == "probe") {
      slot = 1;
    } else if (key == "r") {
      slot = 2;
    } else if (key == "s") {
      slot = 3;
    } else if (key == "weight") {
      slot = 4;
    } else if (key == "scan") {
      slot = 5;
    } else if (key == "storage") {
      slot = 6;
    } else if (key == "isa") {
      slot = 7;
    } else {
      return Fail(err, tok_pos, kExpectedClause);
    }
    if (seen[slot]) return Fail(err, tok_pos, "each clause at most once");
    seen[slot] = true;
    switch (slot) {
      case 0:
        if (!ValidTableName(val)) {
          return Fail(err, val_pos, "table name ([A-Za-z0-9_.-]+)");
        }
        q->build_table = val;
        break;
      case 1:
        if (!ValidTableName(val)) {
          return Fail(err, val_pos, "table name ([A-Za-z0-9_.-]+)");
        }
        q->probe_table = val;
        break;
      case 2:
        if (!ParseRange(val, &q->r_lo, &q->r_hi)) {
          return Fail(err, val_pos, "range [lo,hi] with uint32 bounds");
        }
        break;
      case 3:
        if (!ParseRange(val, &q->s_lo, &q->s_hi)) {
          return Fail(err, val_pos, "range [lo,hi] with uint32 bounds");
        }
        break;
      case 4: {
        uint64_t w = 0;
        if (!ParseUint(val, 65536, &w) || w == 0) {
          return Fail(err, val_pos, "weight in [1,65536]");
        }
        q->weight = w;
        break;
      }
      case 5:
        if (val == "compact") {
          q->scan_mode = exec::ScanMode::kCompact;
        } else if (val == "bitmap") {
          q->scan_mode = exec::ScanMode::kBitmap;
        } else {
          return Fail(err, val_pos, "scan mode (compact|bitmap)");
        }
        break;
      case 6:
        if (val == "raw") {
          q->packed = false;
        } else if (val == "packed") {
          q->packed = true;
        } else {
          return Fail(err, val_pos, "storage (raw|packed)");
        }
        break;
      case 7:
        if (val == "scalar") {
          q->isa = Isa::kScalar;
        } else if (val == "avx2") {
          q->isa = Isa::kAvx2;
        } else if (val == "avx512") {
          q->isa = Isa::kAvx512;
        } else {
          return Fail(err, val_pos, "isa (scalar|avx2|avx512)");
        }
        q->has_isa = true;
        break;
      default:
        break;
    }
  }
  if (!seen[0]) return Fail(err, cur->line.size(), "build=<table>");
  if (!seen[1]) return Fail(err, cur->line.size(), "probe=<table>");
  return true;
}

// ---------------------------------------------------------------------------
// Number formatting into a caller buffer (the encoders' no-alloc path).

void AppendU64(std::string* out, uint64_t v) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, static_cast<size_t>(res.ptr - buf));
}

/// `prefix<v>` with the '=' included in prefix, e.g. " rows=".
void AppendField(std::string* out, std::string_view prefix, uint64_t v) {
  out->append(prefix);
  AppendU64(out, v);
}

// ---------------------------------------------------------------------------
// Decode helpers (mirror the Cursor, but over response frames).

bool TakeWord(std::string_view* s, std::string_view word) {
  if (s->substr(0, word.size()) != word) return false;
  s->remove_prefix(word.size());
  return true;
}

bool TakeUint(std::string_view* s, uint64_t max, uint64_t* out) {
  size_t n = 0;
  while (n < s->size() && (*s)[n] >= '0' && (*s)[n] <= '9') ++n;
  if (!ParseUint(s->substr(0, n), max, out)) return false;
  s->remove_prefix(n);
  return true;
}

}  // namespace

bool ParseRequest(std::string_view line, Request* req, ParseError* err) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  Cursor cur{line};
  size_t cmd_pos = 0;
  const std::string_view cmd = cur.Next(&cmd_pos);
  *req = Request{};
  if (cmd == "QUERY") {
    req->cmd = Command::kQuery;
    return ParseQueryClauses(&cur, &req->query, err);
  }
  Command c;
  if (cmd == "TABLES") {
    c = Command::kTables;
  } else if (cmd == "STATS") {
    c = Command::kStats;
  } else if (cmd == "PING") {
    c = Command::kPing;
  } else if (cmd == "QUIT") {
    c = Command::kQuit;
  } else if (cmd == "SHUTDOWN") {
    c = Command::kShutdown;
  } else {
    return Fail(err, cmd_pos,
                "command (QUERY|TABLES|STATS|PING|QUIT|SHUTDOWN)");
  }
  size_t extra_pos = 0;
  if (!cur.Next(&extra_pos).empty()) {
    return Fail(err, extra_pos, "end of line");
  }
  req->cmd = c;
  return true;
}

server::QuerySpec ToSpec(const ParsedQuery& q) {
  server::QuerySpec spec;
  spec.build_table.assign(q.build_table);
  spec.probe_table.assign(q.probe_table);
  spec.r_lo = q.r_lo;
  spec.r_hi = q.r_hi;
  spec.s_lo = q.s_lo;
  spec.s_hi = q.s_hi;
  spec.scan_mode = q.scan_mode;
  spec.prefer_compressed = q.packed;
  return spec;
}

void AppendRow(std::string* out, uint32_t key, uint64_t sum, uint32_t count,
               uint32_t min, uint32_t max) {
  out->append("ROW ");
  AppendU64(out, key);
  out->push_back(' ');
  AppendU64(out, sum);
  out->push_back(' ');
  AppendU64(out, count);
  out->push_back(' ');
  AppendU64(out, min);
  out->push_back(' ');
  AppendU64(out, max);
  out->push_back('\n');
}

void AppendQueryOk(std::string* out, uint64_t rows,
                   const server::QueryStats& stats) {
  AppendField(out, "OK rows=", rows);
  AppendField(out, " exec_ns=", stats.exec_ns);
  AppendField(out, " queue_ns=", stats.queue_wait_ns);
  AppendField(out, " morsels=", stats.morsels_drained);
  AppendField(out, " shared=", stats.shared_scan ? 1 : 0);
  out->push_back('\n');
}

void AppendTable(std::string* out, std::string_view name, uint64_t rows,
                 bool compressed) {
  out->append("TABLE ");
  out->append(name);
  AppendField(out, " rows=", rows);
  AppendField(out, " compressed=", compressed ? 1 : 0);
  out->push_back('\n');
}

void AppendTablesOk(std::string* out, uint64_t tables) {
  AppendField(out, "OK tables=", tables);
  out->push_back('\n');
}

void AppendStat(std::string* out, std::string_view name, uint64_t value) {
  out->append("STAT ");
  out->append(name);
  out->push_back(' ');
  AppendU64(out, value);
  out->push_back('\n');
}

void AppendStatsOk(std::string* out, uint64_t stats) {
  AppendField(out, "OK stats=", stats);
  out->push_back('\n');
}

void AppendErr(std::string* out, std::string_view kind,
               std::string_view detail) {
  out->append("ERR ");
  out->append(kind);
  out->push_back(' ');
  // Keep the frame a single line whatever the detail carries.
  for (char c : detail) {
    out->push_back(c == '\n' || c == '\r' || c == '\0' ? ' ' : c);
  }
  out->push_back('\n');
}

std::string FormatParseError(const ParseError& err) {
  std::string s = "at ";
  AppendU64(&s, err.pos);
  s.append(": expected ");
  s.append(err.expected);
  return s;
}

FrameKind ClassifyFrame(std::string_view line) {
  if (line.substr(0, 4) == "ROW ") return FrameKind::kRow;
  if (line.substr(0, 3) == "OK " || line == "OK") return FrameKind::kOk;
  if (line.substr(0, 4) == "ERR ") return FrameKind::kErr;
  if (line.substr(0, 6) == "TABLE ") return FrameKind::kTable;
  if (line.substr(0, 5) == "STAT ") return FrameKind::kStat;
  if (line == "PONG") return FrameKind::kPong;
  if (line == "BYE") return FrameKind::kBye;
  return FrameKind::kOther;
}

bool DecodeRow(std::string_view line, WireRow* row) {
  if (!TakeWord(&line, "ROW ")) return false;
  uint64_t key = 0, sum = 0, count = 0, min = 0, max = 0;
  if (!TakeUint(&line, 0xFFFFFFFFu, &key)) return false;
  if (!TakeWord(&line, " ")) return false;
  if (!TakeUint(&line, ~uint64_t{0}, &sum)) return false;
  if (!TakeWord(&line, " ")) return false;
  if (!TakeUint(&line, 0xFFFFFFFFu, &count)) return false;
  if (!TakeWord(&line, " ")) return false;
  if (!TakeUint(&line, 0xFFFFFFFFu, &min)) return false;
  if (!TakeWord(&line, " ")) return false;
  if (!TakeUint(&line, 0xFFFFFFFFu, &max)) return false;
  if (!line.empty()) return false;
  row->key = static_cast<uint32_t>(key);
  row->sum = sum;
  row->count = static_cast<uint32_t>(count);
  row->min = static_cast<uint32_t>(min);
  row->max = static_cast<uint32_t>(max);
  return true;
}

bool DecodeQueryOk(std::string_view line, WireResult* result) {
  uint64_t shared = 0;
  if (!TakeWord(&line, "OK rows=")) return false;
  if (!TakeUint(&line, ~uint64_t{0}, &result->rows_declared)) return false;
  if (!TakeWord(&line, " exec_ns=")) return false;
  if (!TakeUint(&line, ~uint64_t{0}, &result->exec_ns)) return false;
  if (!TakeWord(&line, " queue_ns=")) return false;
  if (!TakeUint(&line, ~uint64_t{0}, &result->queue_ns)) return false;
  if (!TakeWord(&line, " morsels=")) return false;
  if (!TakeUint(&line, ~uint64_t{0}, &result->morsels)) return false;
  if (!TakeWord(&line, " shared=")) return false;
  if (!TakeUint(&line, 1, &shared)) return false;
  if (!line.empty()) return false;
  result->shared = shared != 0;
  return true;
}

bool DecodeTable(std::string_view line, WireTable* table) {
  if (!TakeWord(&line, "TABLE ")) return false;
  const size_t sp = line.find(' ');
  if (sp == std::string_view::npos || sp == 0) return false;
  const std::string_view name = line.substr(0, sp);
  line.remove_prefix(sp);
  uint64_t compressed = 0;
  if (!TakeWord(&line, " rows=")) return false;
  if (!TakeUint(&line, ~uint64_t{0}, &table->rows)) return false;
  if (!TakeWord(&line, " compressed=")) return false;
  if (!TakeUint(&line, 1, &compressed)) return false;
  if (!line.empty()) return false;
  table->name.assign(name);
  table->compressed = compressed != 0;
  return true;
}

bool DecodeStat(std::string_view line, std::string* name, uint64_t* value) {
  if (!TakeWord(&line, "STAT ")) return false;
  const size_t sp = line.find(' ');
  if (sp == std::string_view::npos || sp == 0) return false;
  const std::string_view n = line.substr(0, sp);
  line.remove_prefix(sp + 1);
  if (!TakeUint(&line, ~uint64_t{0}, value)) return false;
  if (!line.empty()) return false;
  name->assign(n);
  return true;
}

}  // namespace simddb::net
