#ifndef SIMDDB_NET_SERVER_H_
#define SIMDDB_NET_SERVER_H_

// Socket front-end of the serving layer: a poll()-driven event loop
// accepting TCP and/or Unix-domain connections, parsing the line protocol
// (net/protocol.h), and dispatching each QUERY onto a small handler pool
// of server::QuerySessions — so N connections share the one process-wide
// QueryScheduler, its admission gate, and the TaskPool's weighted-fair
// morsel scheduling.
//
// Architecture (one poll thread, H handler threads):
//
//   poll thread   owns every socket and the connection table. Reads
//                 request bytes, frames lines, answers cheap commands
//                 (PING/TABLES/STATS/QUIT) inline, and enqueues QUERY
//                 jobs. While a connection has a query in flight it is
//                 not read from (backpressure: at most one in-flight
//                 query and one read buffer per connection); pipelined
//                 lines already buffered are served in order afterwards.
//   handler pool  H threads, each owning a QuerySession. A handler binds
//                 and executes the job (admission gate included — a
//                 kBlock scheduler queues the handler, kReject turns
//                 into `ERR admission ...` on the wire), encodes the
//                 full response off the poll thread, and posts it to the
//                 completion queue; a self-pipe byte wakes poll().
//
// Graceful drain: RequestShutdown() (async-signal-safe — SIGTERM
// handlers call it directly) or a SHUTDOWN command stops accepting,
// lets in-flight queries finish and their responses flush, closes every
// connection, joins the handlers, and returns from Serve().
//
// Observability: the obs registry carries the net_* counters
// (net_bytes_in/out, net_queries_parsed, net_parse_errors,
// net_queries_rejected, net_connections_opened/closed); per-connection
// tallies of the same events live on the connection and feed the
// always-on ServerStats totals that STATS reports even with metrics off.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/pipeline.h"
#include "net/protocol.h"
#include "server/catalog.h"
#include "server/scheduler.h"

namespace simddb::net {

struct ServerOptions {
  /// Unix-domain listener path; empty disables. An existing socket file
  /// at the path is unlinked at bind (stale from a previous run).
  std::string unix_path;
  /// TCP listener port; -1 disables, 0 binds an ephemeral port (read it
  /// back with tcp_port() after Start).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";

  /// Handler threads = max concurrently executing queries at the wire
  /// level (the scheduler's admission gate bounds them further).
  int handler_threads = 2;

  /// Default per-query ExecConfig; a QUERY's isa= clause overrides isa.
  exec::ExecConfig exec;
  /// Admission / shared-scan policy of the embedded QueryScheduler.
  server::SchedulerOptions scheduler;

  int listen_backlog = 64;
};

/// Always-on serving totals (STATS works with metrics off).
struct ServerStats {
  uint64_t connections_opened = 0;
  uint64_t connections_active = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t queries_parsed = 0;   ///< QUERY lines parsed OK
  uint64_t queries_ok = 0;       ///< responses with an OK trailer
  uint64_t queries_rejected = 0; ///< `ERR admission` responses
  uint64_t parse_errors = 0;     ///< `ERR parse` responses
};

class Server {
 public:
  /// Borrows the catalog; owns its QueryScheduler built from
  /// opts.scheduler.
  Server(const server::Catalog* catalog, const ServerOptions& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and spawns the poll thread and handler pool.
  /// False (with *error set) on any bind/listen failure; the server is
  /// then inert and Stop() is a no-op.
  bool Start(std::string* error);

  /// Initiates graceful drain. Async-signal-safe: one atomic store and
  /// one write(2) to the self-pipe.
  void RequestShutdown();

  /// Blocks until the drain completes and every thread exited.
  void Wait();

  /// RequestShutdown + Wait.
  void Stop();

  /// Bound TCP port (after Start, when a TCP listener was requested).
  int tcp_port() const { return bound_tcp_port_; }

  ServerStats stats() const;
  const server::QueryScheduler& scheduler() const { return *scheduler_; }

 private:
  struct Conn;
  struct Job;
  struct Completion;

  void PollLoop();
  void HandlerLoop();
  bool ProcessBufferedLines(Conn* c);
  void HandleLine(Conn* c, std::string_view line);
  void DeliverCompletions();
  void FlushWrites(Conn* c);
  void CloseConn(uint64_t id, Conn* c);
  void AppendStatsResponse(std::string* out);

  const server::Catalog* catalog_;
  ServerOptions opts_;
  std::unique_ptr<server::QueryScheduler> scheduler_;

  int listen_unix_ = -1;
  int listen_tcp_ = -1;
  int wake_rd_ = -1, wake_wr_ = -1;
  int bound_tcp_port_ = -1;
  std::string bound_unix_path_;

  std::atomic<bool> shutdown_{false};
  bool started_ = false;

  std::thread poll_thread_;
  std::vector<std::thread> handlers_;

  // Poll thread only.
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;

  // Handler pool plumbing.
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;
  bool jobs_closed_ = false;

  std::mutex done_mu_;
  std::deque<Completion> done_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace simddb::net

#endif  // SIMDDB_NET_SERVER_H_
