#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <utility>

#include "obs/metrics.h"
#include "server/session.h"

namespace simddb::net {
namespace {

// Wire-level instruments (static storage: the registry keeps pointers).
obs::Counter g_net_bytes_in("net_bytes_in");
obs::Counter g_net_bytes_out("net_bytes_out");
obs::Counter g_net_queries_parsed("net_queries_parsed");
obs::Counter g_net_parse_errors("net_parse_errors");
obs::Counter g_net_queries_rejected("net_queries_rejected");
obs::Counter g_net_connections_opened("net_connections_opened");
obs::Counter g_net_connections_closed("net_connections_closed");

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// Per-connection state, owned by the poll thread. At most one query is in
/// flight per connection (`executing`); reads pause while it runs, so the
/// read buffer is bounded by one poll round of input plus the kernel's
/// socket buffer.
struct Server::Conn {
  int fd = -1;
  uint64_t id = 0;
  std::string rbuf;
  std::string wbuf;
  size_t woff = 0;
  bool executing = false;  ///< a QUERY is at the handler pool
  bool closing = false;    ///< close once wbuf drains (QUIT / drain / EOF)
  bool eof = false;        ///< peer half-closed; serve buffered lines, then close
  bool discard = false;    ///< resyncing: drop bytes until the next '\n'

  // Per-connection tallies of the same events the net_* registry counters
  // accumulate globally.
  uint64_t bytes_in = 0, bytes_out = 0;
  uint64_t queries = 0, parse_errors = 0, rejected = 0;
};

/// One QUERY dispatched to the handler pool.
struct Server::Job {
  uint64_t conn_id = 0;
  server::QuerySpec spec;
  exec::ExecConfig cfg;
  uint64_t weight = 1;
};

/// A handler's encoded response, headed back to the poll thread.
struct Server::Completion {
  uint64_t conn_id = 0;
  std::string bytes;
  bool ok = false;
  bool rejected = false;
};

Server::Server(const server::Catalog* catalog, const ServerOptions& opts)
    : catalog_(catalog), opts_(opts) {
  scheduler_ =
      std::make_unique<server::QueryScheduler>(catalog, opts.scheduler);
  if (opts_.handler_threads < 1) opts_.handler_threads = 1;
}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + strerror(errno);
    if (listen_unix_ >= 0) close(listen_unix_);
    if (listen_tcp_ >= 0) close(listen_tcp_);
    if (wake_rd_ >= 0) close(wake_rd_);
    if (wake_wr_ >= 0) close(wake_wr_);
    listen_unix_ = listen_tcp_ = wake_rd_ = wake_wr_ = -1;
    return false;
  };

  if (opts_.unix_path.empty() && opts_.tcp_port < 0) {
    if (error != nullptr) *error = "no listener configured";
    return false;
  }

  if (!opts_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.unix_path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "unix path too long";
      return false;
    }
    memcpy(addr.sun_path, opts_.unix_path.c_str(), opts_.unix_path.size() + 1);
    listen_unix_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_unix_ < 0) return fail("socket(unix)");
    unlink(opts_.unix_path.c_str());  // stale socket from a previous run
    if (bind(listen_unix_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      return fail("bind(" + opts_.unix_path + ")");
    }
    if (listen(listen_unix_, opts_.listen_backlog) != 0) {
      return fail("listen(unix)");
    }
    SetNonBlocking(listen_unix_);
    bound_unix_path_ = opts_.unix_path;
  }

  if (opts_.tcp_port >= 0) {
    listen_tcp_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_tcp_ < 0) return fail("socket(tcp)");
    const int one = 1;
    setsockopt(listen_tcp_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(opts_.tcp_port));
    if (inet_pton(AF_INET, opts_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      if (error != nullptr) *error = "bad tcp host " + opts_.tcp_host;
      return fail("inet_pton");
    }
    if (bind(listen_tcp_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return fail("bind(tcp :" + std::to_string(opts_.tcp_port) + ")");
    }
    if (listen(listen_tcp_, opts_.listen_backlog) != 0) {
      return fail("listen(tcp)");
    }
    SetNonBlocking(listen_tcp_);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(listen_tcp_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  int pipefd[2];
  if (pipe2(pipefd, O_CLOEXEC) != 0) return fail("pipe2");
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  SetNonBlocking(wake_rd_);
  SetNonBlocking(wake_wr_);

  shutdown_.store(false, std::memory_order_relaxed);
  jobs_closed_ = false;
  started_ = true;
  poll_thread_ = std::thread(&Server::PollLoop, this);
  handlers_.reserve(static_cast<size_t>(opts_.handler_threads));
  for (int i = 0; i < opts_.handler_threads; ++i) {
    handlers_.emplace_back(&Server::HandlerLoop, this);
  }
  return true;
}

void Server::RequestShutdown() {
  shutdown_.store(true, std::memory_order_release);
  if (wake_wr_ >= 0) {
    const char b = 1;
    // Best-effort wake; a full pipe already guarantees a pending wake.
    [[maybe_unused]] ssize_t n = write(wake_wr_, &b, 1);
  }
}

void Server::Wait() {
  if (!started_) return;
  if (poll_thread_.joinable()) poll_thread_.join();
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  if (wake_rd_ >= 0) close(wake_rd_);
  if (wake_wr_ >= 0) close(wake_wr_);
  wake_rd_ = wake_wr_ = -1;
  started_ = false;
}

void Server::Stop() {
  if (!started_) return;
  RequestShutdown();
  Wait();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Server::HandlerLoop() {
  server::QuerySession session(catalog_, scheduler_.get());
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock, [&] { return !jobs_.empty() || jobs_closed_; });
      if (jobs_.empty()) return;  // closed and drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    server::ResultSet rs = session.Execute(job.spec, job.cfg, job.weight);
    Completion done;
    done.conn_id = job.conn_id;
    done.ok = rs.ok;
    done.rejected = rs.stats.rejected;
    if (rs.ok) {
      const exec::QueryResult& r = rs.result;
      done.bytes.reserve(r.group_keys.size() * 32 + 96);
      for (size_t i = 0; i < r.group_keys.size(); ++i) {
        AppendRow(&done.bytes, r.group_keys[i], r.sums[i], r.counts[i],
                  r.mins[i], r.maxs[i]);
      }
      AppendQueryOk(&done.bytes, r.group_keys.size(), rs.stats);
    } else if (rs.stats.rejected) {
      AppendErr(&done.bytes, "admission", rs.error);
    } else {
      AppendErr(&done.bytes, "exec", rs.error);
    }
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(std::move(done));
    }
    const char b = 1;
    [[maybe_unused]] ssize_t n = write(wake_wr_, &b, 1);
  }
}

void Server::HandleLine(Conn* c, std::string_view line) {
  Request req;
  ParseError perr;
  if (!ParseRequest(line, &req, &perr)) {
    AppendErr(&c->wbuf, "parse", FormatParseError(perr));
    ++c->parse_errors;
    g_net_parse_errors.Add(1);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.parse_errors;
    return;
  }
  switch (req.cmd) {
    case Command::kPing:
      c->wbuf.append("PONG\n");
      break;
    case Command::kTables: {
      const std::vector<std::string> names = catalog_->TableNames();
      for (const std::string& name : names) {
        const server::Table* t = catalog_->Find(name);
        if (t == nullptr) continue;
        AppendTable(&c->wbuf, name, t->rows(),
                    t->keys_compressed() != nullptr);
      }
      AppendTablesOk(&c->wbuf, names.size());
      break;
    }
    case Command::kStats:
      AppendStatsResponse(&c->wbuf);
      break;
    case Command::kQuit:
      c->wbuf.append("BYE\n");
      c->closing = true;
      break;
    case Command::kShutdown:
      c->wbuf.append("OK shutdown\n");
      RequestShutdown();
      break;
    case Command::kQuery: {
      Job job;
      job.conn_id = c->id;
      job.spec = ToSpec(req.query);
      job.cfg = opts_.exec;
      if (req.query.has_isa) job.cfg.isa = req.query.isa;
      job.weight = req.query.weight;
      c->executing = true;
      ++c->queries;
      g_net_queries_parsed.Add(1);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.queries_parsed;
      }
      {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        jobs_.push_back(std::move(job));
      }
      jobs_cv_.notify_one();
      break;
    }
  }
}

void Server::AppendStatsResponse(std::string* out) {
  uint64_t count = 0;
  ServerStats snap = stats();
  const auto emit = [&](std::string_view name, uint64_t v) {
    AppendStat(out, name, v);
    ++count;
  };
  emit("connections_opened", snap.connections_opened);
  emit("connections_active", snap.connections_active);
  emit("bytes_in", snap.bytes_in);
  emit("bytes_out", snap.bytes_out);
  emit("queries_parsed", snap.queries_parsed);
  emit("queries_ok", snap.queries_ok);
  emit("queries_rejected", snap.queries_rejected);
  emit("parse_errors", snap.parse_errors);
  emit("sched_completed", scheduler_->queries_completed());
  emit("sched_rejected", scheduler_->queries_rejected());
  // The whole obs registry, when metrics are on (empty map otherwise):
  // every counter and phase timer, the net_* instruments included.
  for (const auto& [name, value] : obs::SnapshotMap()) emit(name, value);
  AppendStatsOk(out, count);
}

/// Frames and serves complete lines from c->rbuf, stopping when a QUERY
/// goes in flight (order is preserved: later pipelined lines wait for the
/// response). Returns false when the connection should be closed now.
bool Server::ProcessBufferedLines(Conn* c) {
  while (!c->executing && !c->closing) {
    if (c->discard) {
      const size_t nl = c->rbuf.find('\n');
      if (nl == std::string::npos) {
        c->rbuf.clear();
        break;
      }
      c->rbuf.erase(0, nl + 1);
      c->discard = false;
      continue;
    }
    const size_t nl = c->rbuf.find('\n');
    if (nl == std::string::npos) {
      if (c->rbuf.size() > kMaxLineBytes) {
        ParseError e{kMaxLineBytes, "line under 4096 bytes"};
        AppendErr(&c->wbuf, "parse", FormatParseError(e));
        ++c->parse_errors;
        g_net_parse_errors.Add(1);
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.parse_errors;
        }
        c->rbuf.clear();
        c->discard = true;
      }
      break;
    }
    if (nl > kMaxLineBytes) {
      ParseError e{kMaxLineBytes, "line under 4096 bytes"};
      AppendErr(&c->wbuf, "parse", FormatParseError(e));
      ++c->parse_errors;
      g_net_parse_errors.Add(1);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.parse_errors;
      }
      c->rbuf.erase(0, nl + 1);
      continue;
    }
    // Detach the line before handling: HandleLine appends to wbuf only.
    const std::string line = c->rbuf.substr(0, nl);
    c->rbuf.erase(0, nl + 1);
    HandleLine(c, line);
  }
  // Half-closed peer: once the buffer holds no further servable line and
  // nothing is in flight, finish the write side and close.
  if (c->eof && !c->executing &&
      (c->rbuf.find('\n') == std::string::npos || c->closing)) {
    c->closing = true;
  }
  return true;
}

void Server::FlushWrites(Conn* c) {
  while (c->woff < c->wbuf.size()) {
    const ssize_t n = send(c->fd, c->wbuf.data() + c->woff,
                           c->wbuf.size() - c->woff, MSG_NOSIGNAL);
    if (n > 0) {
      c->woff += static_cast<size_t>(n);
      c->bytes_out += static_cast<uint64_t>(n);
      g_net_bytes_out.Add(static_cast<uint64_t>(n));
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_out += static_cast<uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // Peer went away mid-response.
    c->closing = true;
    c->wbuf.clear();
    c->woff = 0;
    return;
  }
  c->wbuf.clear();
  c->woff = 0;
}

void Server::CloseConn(uint64_t id, Conn* c) {
  close(c->fd);
  g_net_connections_closed.Add(1);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    --stats_.connections_active;
  }
  conns_.erase(id);
}

void Server::DeliverCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    batch.swap(done_);
  }
  for (Completion& done : batch) {
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;  // connection died mid-query
    Conn* c = it->second.get();
    c->executing = false;
    c->wbuf.append(done.bytes);
    if (done.rejected) {
      ++c->rejected;
      g_net_queries_rejected.Add(1);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (done.ok) ++stats_.queries_ok;
      if (done.rejected) ++stats_.queries_rejected;
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      c->closing = true;  // drain: response flushes, then the socket closes
    } else {
      ProcessBufferedLines(c);
    }
  }
}

void Server::PollLoop() {
  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn;  // conn id per pfds slot (0: not a conn)
  bool draining = false;
  char buf[16384];

  for (;;) {
    if (shutdown_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      if (listen_unix_ >= 0) {
        close(listen_unix_);
        listen_unix_ = -1;
        if (!bound_unix_path_.empty()) unlink(bound_unix_path_.c_str());
      }
      if (listen_tcp_ >= 0) {
        close(listen_tcp_);
        listen_tcp_ = -1;
      }
      for (auto& [id, c] : conns_) {
        if (!c->executing) c->closing = true;
      }
    }

    // Close everything that is done: closing and flushed, or idle during
    // drain. (Erase-safe two-pass: collect then close.)
    {
      std::vector<uint64_t> dead;
      for (auto& [id, c] : conns_) {
        if (c->closing && !c->executing && c->woff >= c->wbuf.size()) {
          dead.push_back(id);
        }
      }
      for (uint64_t id : dead) CloseConn(id, conns_.find(id)->second.get());
    }

    if (draining && conns_.empty()) break;

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_rd_, POLLIN, 0});
    pfd_conn.push_back(0);
    if (!draining && listen_unix_ >= 0) {
      pfds.push_back({listen_unix_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    if (!draining && listen_tcp_ >= 0) {
      pfds.push_back({listen_tcp_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    for (auto& [id, c] : conns_) {
      short events = 0;
      if (!c->executing && !c->closing && !c->eof && !draining) {
        events |= POLLIN;
      }
      if (c->woff < c->wbuf.size()) events |= POLLOUT;
      if (events == 0 && c->executing) continue;  // wake pipe covers it
      if (events == 0) events = POLLIN;           // watch for EOF at least
      pfds.push_back({c->fd, events, 0});
      pfd_conn.push_back(id);
    }

    if (poll(pfds.data(), pfds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure
    }

    for (size_t i = 0; i < pfds.size(); ++i) {
      const pollfd& p = pfds[i];
      if (p.revents == 0) continue;
      if (p.fd == wake_rd_) {
        while (read(wake_rd_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (p.fd == listen_unix_ || p.fd == listen_tcp_) {
        for (;;) {
          const int cfd = accept4(p.fd, nullptr, nullptr,
                                  SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) break;
          auto c = std::make_unique<Conn>();
          c->fd = cfd;
          c->id = next_conn_id_++;
          g_net_connections_opened.Add(1);
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.connections_opened;
            ++stats_.connections_active;
          }
          conns_.emplace(c->id, std::move(c));
        }
        continue;
      }
      // A connection socket.
      const uint64_t id = pfd_conn[i];
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Conn* c = it->second.get();
      // POLLHUP arrives together with POLLIN when the peer wrote and then
      // closed; read first so buffered requests are not dropped — recv()
      // returning 0 reports the EOF on its own.
      if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) &&
          !(p.revents & POLLIN)) {
        if (c->executing) {
          c->eof = true;  // the completion still delivers, then closes
          c->closing = true;
          continue;
        }
        CloseConn(id, c);
        continue;
      }
      if (p.revents & POLLIN) {
        const ssize_t n = recv(c->fd, buf, sizeof(buf), 0);
        if (n > 0) {
          c->rbuf.append(buf, static_cast<size_t>(n));
          c->bytes_in += static_cast<uint64_t>(n);
          g_net_bytes_in.Add(static_cast<uint64_t>(n));
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            stats_.bytes_in += static_cast<uint64_t>(n);
          }
          ProcessBufferedLines(c);
        } else if (n == 0) {
          c->eof = true;
          ProcessBufferedLines(c);
        } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
          CloseConn(id, c);
          continue;
        }
      }
      if (p.revents & POLLOUT) FlushWrites(c);
      if (c->woff < c->wbuf.size()) FlushWrites(c);  // opportunistic
    }

    DeliverCompletions();
    // Flush anything the completions appended before sleeping again.
    for (auto& [id, c] : conns_) {
      if (c->woff < c->wbuf.size()) FlushWrites(c.get());
    }
  }

  // Drain complete: no connections left, so no new jobs can appear. Close
  // the queue so the handlers exit once the (empty) backlog drains.
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_closed_ = true;
  }
  jobs_cv_.notify_all();
}

}  // namespace simddb::net
