#include "server/session.h"

namespace simddb::server {

ResultSet QuerySession::Execute(const QuerySpec& spec,
                                const exec::ExecConfig& cfg, uint64_t weight) {
  ++submitted_;
  return scheduler_->Run(spec, cfg, weight);
}

bool QuerySession::Bind(const QuerySpec& spec,
                        exec::ScanJoinAggregatePlan* plan,
                        std::string* error) const {
  return BindQuery(*catalog_, spec, plan, error);
}

}  // namespace simddb::server
