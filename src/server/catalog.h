#ifndef SIMDDB_SERVER_CATALOG_H_
#define SIMDDB_SERVER_CATALOG_H_

// Catalog of named in-memory tables for the serving layer.
//
// The executor (exec/query.h) takes raw column pointers; a serving process
// instead loads tables once at startup and lets many concurrent sessions
// reference them by name. A Table is the executor's two-column relation
// shape — a key column and a value column of equal length — owned by the
// catalog in aligned, slack-padded buffers (scan kernels may overshoot by
// up to one vector), optionally alongside the compressed form
// (compress/column.h) so plans can run the scan-over-compressed front-end.
//
// Concurrency contract: registration happens during load, lookups during
// serving. Both are internally synchronized, but a registered table is
// immutable forever — Find returns borrowed pointers that stay valid and
// constant for the catalog's lifetime, which is what lets N sessions scan
// one table concurrently (and share sweeps, exec/shared_scan.h) with no
// per-query locking.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "compress/column.h"
#include "numa/placement.h"
#include "util/aligned_buffer.h"

namespace simddb::server {

/// Immutable schema of a registered table.
struct TableSchema {
  std::string name;
  std::string key_column = "key";
  std::string val_column = "val";
  size_t rows = 0;
  bool compressed = false;  ///< compressed twin columns are present
};

/// Registration-time options.
struct TableOptions {
  std::string key_column = "key";
  std::string val_column = "val";
  /// Also build compressed twins of both columns (plans may then bind
  /// either representation; results are byte-identical).
  bool compress = false;
  /// Threads / placement for buffer placement and compression at load.
  int threads = 1;
  numa::Placement placement = numa::Placement::kNodeLocal;
};

/// A named, immutable two-column relation owned by the catalog.
class Table {
 public:
  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }
  size_t rows() const { return schema_.rows; }

  const uint32_t* keys() const { return keys_.data(); }
  const uint32_t* vals() const { return vals_.data(); }

  /// Compressed twins; nullptr unless registered with compress = true.
  const compress::CompressedColumn* keys_compressed() const {
    return keys_c_.get();
  }
  const compress::CompressedColumn* vals_compressed() const {
    return vals_c_.get();
  }

 private:
  friend class Catalog;
  Table() = default;

  TableSchema schema_;
  AlignedBuffer<uint32_t> keys_, vals_;
  std::unique_ptr<compress::CompressedColumn> keys_c_, vals_c_;
};

/// Name -> Table directory. Register during load, look up during serving.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Copies the columns into catalog-owned aligned buffers (with the +16
  /// slack the scan kernels may overshoot into) and registers the table.
  /// Returns the registered table, or nullptr if the name is taken —
  /// tables are immutable during serving, so re-registration is an error,
  /// never a replace.
  const Table* RegisterTable(const std::string& name, const uint32_t* keys,
                             const uint32_t* vals, size_t rows,
                             const TableOptions& opts = {});

  /// Borrowed, immutable; nullptr when unknown. Valid for the catalog's
  /// lifetime.
  const Table* Find(const std::string& name) const;

  /// Registered names, ascending.
  std::vector<std::string> TableNames() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace simddb::server

#endif  // SIMDDB_SERVER_CATALOG_H_
