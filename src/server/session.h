#ifndef SIMDDB_SERVER_SESSION_H_
#define SIMDDB_SERVER_SESSION_H_

// QuerySession: the in-process client API of the serving layer.
//
// A session borrows the process-wide Catalog and QueryScheduler and is the
// handle a client thread submits queries through. (The network front-end,
// src/net/server.h, is a consumer of this same API: each wire handler
// thread owns one QuerySession, so a socket client and an in-process
// caller take the identical execution path and get identical bytes.)
//
//   server::Catalog catalog;                       // load once
//   catalog.RegisterTable("R", keys, attrs, n_r);
//   catalog.RegisterTable("S", fks, vals, n_s);
//   server::QueryScheduler sched(&catalog);        // shared by all sessions
//   server::QuerySession session(&catalog, &sched);
//   server::QuerySpec spec;
//   spec.build_table = "R"; spec.probe_table = "S";
//   spec.s_lo = 100; spec.s_hi = 200;
//   server::ResultSet rs = session.Execute(spec, cfg);
//
// Execute blocks the calling thread until the result is ready (admission
// gate included); concurrency comes from many client threads each owning a
// session. Sessions are cheap (two pointers + a counter) and a single
// session is single-threaded: one Execute at a time per session, many
// sessions in parallel per scheduler.
//
// Results are byte-identical to calling exec::RunScanJoinAggregate directly
// with the bound plan — serving adds scheduling, admission, sharing, and
// accounting, never different answers.

#include <cstdint>
#include <string>

#include "server/catalog.h"
#include "server/scheduler.h"

namespace simddb::server {

class QuerySession {
 public:
  QuerySession(const Catalog* catalog, QueryScheduler* scheduler)
      : catalog_(catalog), scheduler_(scheduler) {}

  /// Binds and executes the spec; blocks until done. ok = false carries the
  /// bind / admission / abort reason in `error`.
  ResultSet Execute(const QuerySpec& spec, const exec::ExecConfig& cfg,
                    uint64_t weight = 1);

  /// Bind-only hook (plan inspection, tests). Same resolution Execute uses.
  bool Bind(const QuerySpec& spec, exec::ScanJoinAggregatePlan* plan,
            std::string* error) const;

  const Catalog* catalog() const { return catalog_; }

  /// Queries this session has submitted (successful or not).
  uint64_t queries_submitted() const { return submitted_; }

 private:
  const Catalog* catalog_;
  QueryScheduler* scheduler_;
  uint64_t submitted_ = 0;
};

}  // namespace simddb::server

#endif  // SIMDDB_SERVER_SESSION_H_
