#ifndef SIMDDB_SERVER_SCHEDULER_H_
#define SIMDDB_SERVER_SCHEDULER_H_

// Inter-query scheduling for the serving layer.
//
// QueryScheduler::Run is the one entry point every QuerySession funnels
// through. Per query it:
//
//   1. binds the named-table QuerySpec against the Catalog into the
//      executor's ScanJoinAggregatePlan;
//   2. passes the admission gate — at most `max_inflight` queries execute
//      concurrently (SIMDDB_MAX_INFLIGHT, or the explicit option); excess
//      arrivals either block in FIFO-ish cv order (kBlock) or are rejected
//      immediately (kReject);
//   3. registers a TaskPool query tag and runs the plan under
//      TaskPool::QueryTagScope, so every morsel the query dispatches is
//      weighted-fair-scheduled against other in-flight queries and counted
//      toward the tag (QueryStats::morsels_drained — the no-starvation
//      observable);
//   4. scopes an obs::QueryMetricSink to the execution, so the per-query
//      counters/timers in QueryStats::metrics contain exactly this query's
//      share of the global instruments, with no cross-query bleed;
//   5. optionally joins a *shared-scan gather*: concurrent queries probing
//      the same catalog table (same ExecConfig shape) collect into a group
//      — closed when `shared_gather_hint` members arrived or after
//      `shared_gather_timeout_ns` — and one member (the closer) runs a
//      single sweep feeding every member's pipeline (exec/shared_scan.h);
//      the rest wait and receive their own byte-identical results.
//
// Aborted queries (AbortQueryTag, pool teardown) unwind with
// TaskPool::QueryAborted at the next quantum boundary; Run converts that
// into ResultSet{ok = false, stats.aborted = true} and always releases the
// admission slot and tag — an aborted query drains cleanly.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/query.h"
#include "server/catalog.h"

namespace simddb::server {

/// A query over named catalog tables: build relation R(pk, attr) filtered
/// by pk in [r_lo, r_hi], probe relation S(fk, val) filtered by val in
/// [s_lo, s_hi], joined on S.fk = R.pk, grouped by R.attr. The named-table
/// twin of exec::ScanJoinAggregatePlan, and the struct the wire protocol's
/// QUERY line decodes into (net/protocol.h ToSpec).
struct QuerySpec {
  std::string build_table;  ///< R: key column joined, val column grouped
  uint32_t r_lo = 0, r_hi = 0xFFFFFFFFu;
  std::string probe_table;  ///< S: key column joined, val column filtered
  uint32_t s_lo = 0, s_hi = 0xFFFFFFFFu;

  exec::ScanMode scan_mode = exec::ScanMode::kCompact;
  int bloom_bits_per_key = 0;
  int bloom_k = 4;
  uint32_t partition_fanout = 0;
  size_t max_groups_hint = 1024;
  /// Bind the compressed representation when the table has one.
  bool prefer_compressed = false;
};

/// Per-query execution accounting.
struct QueryStats {
  uint64_t tag = 0;             ///< TaskPool query tag this run used
  uint64_t queue_wait_ns = 0;   ///< time blocked in the admission gate
  uint64_t exec_ns = 0;         ///< wall time inside the executor
  /// Tasks the TaskPool drained for this query (>= 1 for any nonempty
  /// plan — the no-starvation observable). For a shared-scan group every
  /// member reports the group's sweep total: the sweep ran once on all
  /// members' behalf.
  uint64_t morsels_drained = 0;
  bool shared_scan = false;  ///< served by a shared sweep
  bool aborted = false;      ///< unwound via QueryAborted
  bool rejected = false;     ///< refused by the admission gate (kReject)
  /// This query's share of every obs instrument (name -> delta), captured
  /// via a scoped QueryMetricSink. Empty while metrics are off, and for
  /// shared-scan followers (the closer's sink sees the sweep).
  std::map<std::string, uint64_t> metrics;
};

/// What a session gets back: canonical result rows plus accounting.
struct ResultSet {
  bool ok = false;
  std::string error;  ///< bind / admission / abort reason when !ok
  exec::QueryResult result;
  QueryStats stats;
};

/// What the admission gate does with arrivals beyond max_inflight.
enum class AdmissionPolicy { kBlock, kReject };

struct SchedulerOptions {
  /// Concurrent-query bound; 0 reads SIMDDB_MAX_INFLIGHT from the
  /// environment (unset or 0 there means unbounded).
  int max_inflight = 0;
  AdmissionPolicy policy = AdmissionPolicy::kBlock;

  /// Enable shared-scan gathers for eligible plans (raw probe table, no
  /// partition barrier).
  bool shared_scans = false;
  /// Close a gather as soon as this many members joined (0: timeout only).
  /// Deterministic tests set it to the known concurrent-client count.
  size_t shared_gather_hint = 0;
  /// A member that waited this long closes the gather with whoever joined
  /// so far — liveness when fewer than shared_gather_hint queries arrive.
  uint64_t shared_gather_timeout_ns = 2'000'000;
};

/// Binds a QuerySpec against the catalog. False (with *error set) when a
/// table is unknown or a compressed representation was asked of a table
/// that has none.
bool BindQuery(const Catalog& catalog, const QuerySpec& spec,
               exec::ScanJoinAggregatePlan* plan, std::string* error);

class QueryScheduler {
 public:
  explicit QueryScheduler(const Catalog* catalog,
                          const SchedulerOptions& opts = {});

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Executes the spec end to end (see file comment). Thread-safe: many
  /// session threads call concurrently. `weight` biases the fair gate
  /// (weight 2 receives ~2x the morsel share of weight 1 under load);
  /// wire clients set it per query via the QUERY line's weight= clause.
  ResultSet Run(const QuerySpec& spec, const exec::ExecConfig& cfg,
                uint64_t weight = 1);

  int max_inflight() const { return max_inflight_; }
  uint64_t queries_completed() const;
  uint64_t queries_rejected() const;

 private:
  struct Gather;

  bool Admit(uint64_t* waited_ns);
  void Release();
  exec::QueryResult RunShared(const std::string& key,
                              const exec::ScanJoinAggregatePlan& plan,
                              const exec::ExecConfig& cfg, uint64_t tag,
                              QueryStats* stats);

  const Catalog* catalog_;
  SchedulerOptions opts_;
  int max_inflight_;

  mutable std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  int inflight_ = 0;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;

  std::mutex gathers_mu_;
  std::map<std::string, std::shared_ptr<Gather>> gathers_;
};

}  // namespace simddb::server

#endif  // SIMDDB_SERVER_SCHEDULER_H_
