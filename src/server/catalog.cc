#include "server/catalog.h"

#include <cstring>

namespace simddb::server {

const Table* Catalog::RegisterTable(const std::string& name,
                                    const uint32_t* keys, const uint32_t* vals,
                                    size_t rows, const TableOptions& opts) {
  // Copy and (optionally) compress outside the lock: registration is a
  // load-time operation, but a slow compress must not block lookups from
  // sessions already serving other tables.
  auto table = std::unique_ptr<Table>(new Table());
  table->schema_.name = name;
  table->schema_.key_column = opts.key_column;
  table->schema_.val_column = opts.val_column;
  table->schema_.rows = rows;
  table->schema_.compressed = opts.compress;
  table->keys_.Reset(rows + 16);  // scan kernels may overshoot one vector
  table->vals_.Reset(rows + 16);
  if (rows > 0) {
    std::memcpy(table->keys_.data(), keys, rows * sizeof(uint32_t));
    std::memcpy(table->vals_.data(), vals, rows * sizeof(uint32_t));
  }
  if (opts.compress) {
    table->keys_c_ = std::make_unique<compress::CompressedColumn>(
        compress::CompressColumn(keys, rows, opts.threads, opts.placement));
    table->vals_c_ = std::make_unique<compress::CompressedColumn>(
        compress::CompressColumn(vals, rows, opts.threads, opts.placement));
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  return inserted ? it->second.get() : nullptr;
}

const Table* Catalog::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  return names;
}

size_t Catalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.size();
}

}  // namespace simddb::server
