#include "server/scheduler.h"

#include <chrono>
#include <cstdlib>
#include <limits>

#include "exec/shared_scan.h"
#include "obs/metrics.h"
#include "util/task_pool.h"

namespace simddb::server {
namespace {

// Serving-layer instruments (static storage: the registry keeps pointers).
obs::Counter g_queries_completed("queries_completed");
obs::Counter g_queries_rejected("queries_rejected");
obs::Counter g_queries_aborted("queries_aborted");
obs::Counter g_admission_wait_ns("admission_wait_ns");
obs::Counter g_shared_groups("shared_groups");  // gathers closed

int MaxInflightFromEnv() {
  if (const char* env = std::getenv("SIMDDB_MAX_INFLIGHT")) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return std::numeric_limits<int>::max();
}

// Plans probing the same raw catalog table through the same executor shape
// may share a sweep; the gather key pins everything the common chunk grid
// depends on.
std::string GatherKey(const QuerySpec& spec, const exec::ExecConfig& cfg) {
  return spec.probe_table + "|t" + std::to_string(cfg.threads) + "|c" +
         std::to_string(cfg.chunk_tuples) + "|i" +
         std::to_string(static_cast<int>(cfg.isa));
}

}  // namespace

bool BindQuery(const Catalog& catalog, const QuerySpec& spec,
               exec::ScanJoinAggregatePlan* plan, std::string* error) {
  const Table* r = catalog.Find(spec.build_table);
  if (r == nullptr) {
    if (error != nullptr) *error = "unknown build table: " + spec.build_table;
    return false;
  }
  const Table* s = catalog.Find(spec.probe_table);
  if (s == nullptr) {
    if (error != nullptr) *error = "unknown probe table: " + spec.probe_table;
    return false;
  }
  if (spec.prefer_compressed &&
      (r->keys_compressed() == nullptr || s->keys_compressed() == nullptr)) {
    if (error != nullptr) {
      *error = "compressed plan requested but a table is uncompressed";
    }
    return false;
  }
  *plan = exec::ScanJoinAggregatePlan{};
  if (spec.prefer_compressed) {
    plan->r_keys_c = r->keys_compressed();
    plan->r_attrs_c = r->vals_compressed();
    plan->s_fks_c = s->keys_compressed();
    plan->s_vals_c = s->vals_compressed();
  } else {
    plan->r_keys = r->keys();
    plan->r_attrs = r->vals();
    plan->n_r = r->rows();
    plan->s_fks = s->keys();
    plan->s_vals = s->vals();
    plan->n_s = s->rows();
  }
  plan->r_lo = spec.r_lo;
  plan->r_hi = spec.r_hi;
  plan->s_lo = spec.s_lo;
  plan->s_hi = spec.s_hi;
  plan->scan_mode = spec.scan_mode;
  plan->bloom_bits_per_key = spec.bloom_bits_per_key;
  plan->bloom_k = spec.bloom_k;
  plan->partition_fanout = spec.partition_fanout;
  plan->max_groups_hint = spec.max_groups_hint;
  return true;
}

// One shared-scan gather: concurrent eligible queries on one key collect
// here until the group closes (member count hits the hint, or a member
// times out waiting), then exactly one member — the closer — runs the
// single sweep and publishes every member's result.
struct QueryScheduler::Gather {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<exec::ScanJoinAggregatePlan> plans;
  std::vector<exec::QueryResult> results;  // one per plan, set by the closer
  uint64_t group_morsels = 0;
  bool closed = false;  // no longer accepting members
  bool done = false;    // results published
  bool failed = false;  // the closer's sweep aborted
};

QueryScheduler::QueryScheduler(const Catalog* catalog,
                               const SchedulerOptions& opts)
    : catalog_(catalog), opts_(opts) {
  max_inflight_ =
      opts.max_inflight >= 1 ? opts.max_inflight : MaxInflightFromEnv();
}

bool QueryScheduler::Admit(uint64_t* waited_ns) {
  *waited_ns = 0;
  std::unique_lock<std::mutex> lock(admit_mu_);
  if (inflight_ < max_inflight_) {
    ++inflight_;
    return true;
  }
  if (opts_.policy == AdmissionPolicy::kReject) {
    ++rejected_;
    g_queries_rejected.Add(1);
    return false;
  }
  const uint64_t t0 = obs::NowNs();
  admit_cv_.wait(lock, [&] { return inflight_ < max_inflight_; });
  ++inflight_;
  *waited_ns = obs::NowNs() - t0;
  g_admission_wait_ns.Add(*waited_ns);
  return true;
}

void QueryScheduler::Release() {
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    --inflight_;
    ++completed_;
  }
  admit_cv_.notify_one();
}

uint64_t QueryScheduler::queries_completed() const {
  std::lock_guard<std::mutex> lock(admit_mu_);
  return completed_;
}

uint64_t QueryScheduler::queries_rejected() const {
  std::lock_guard<std::mutex> lock(admit_mu_);
  return rejected_;
}

ResultSet QueryScheduler::Run(const QuerySpec& spec,
                              const exec::ExecConfig& cfg, uint64_t weight) {
  ResultSet rs;
  exec::ScanJoinAggregatePlan plan;
  if (!BindQuery(*catalog_, spec, &plan, &rs.error)) return rs;

  if (!Admit(&rs.stats.queue_wait_ns)) {
    rs.error = "admission rejected: " + std::to_string(max_inflight_) +
               " queries already in flight";
    rs.stats.rejected = true;
    return rs;
  }

  TaskPool& pool = TaskPool::Get();
  const uint64_t tag = pool.RegisterQueryTag(weight);
  rs.stats.tag = tag;
  // Per-query instrument attribution: while this thread (and every worker
  // lane of its dispatches) runs, instrument updates are also credited to
  // this sink — concurrent queries' metrics stay separable.
  std::unique_ptr<obs::QueryMetricSink> sink;
  if (obs::MetricsEnabled()) sink = std::make_unique<obs::QueryMetricSink>();

  const bool share = opts_.shared_scans && plan.s_fks != nullptr &&
                     plan.partition_fanout == 0;
  const uint64_t e0 = obs::NowNs();
  try {
    TaskPool::QueryTagScope tag_scope(tag);
    obs::ScopedMetricSink sink_scope(sink.get());
    if (share) {
      rs.result = RunShared(GatherKey(spec, cfg), plan, cfg, tag, &rs.stats);
      rs.stats.shared_scan = true;
    } else {
      rs.result = exec::RunScanJoinAggregate(plan, cfg);
    }
    rs.ok = true;
  } catch (const QueryAborted&) {
    rs.stats.aborted = true;
    rs.error = "query aborted";
    g_queries_aborted.Add(1);
  }
  rs.stats.exec_ns = obs::NowNs() - e0;
  if (!rs.stats.shared_scan) {
    rs.stats.morsels_drained = pool.QueryTagMorsels(tag);
  }
  if (sink != nullptr) {
    for (const obs::MetricSample& s : sink->Samples()) {
      rs.stats.metrics[s.name] = s.value;
    }
  }
  pool.UnregisterQueryTag(tag);
  Release();
  if (rs.ok) g_queries_completed.Add(1);
  return rs;
}

exec::QueryResult QueryScheduler::RunShared(
    const std::string& key, const exec::ScanJoinAggregatePlan& plan,
    const exec::ExecConfig& cfg, uint64_t tag, QueryStats* stats) {
  std::shared_ptr<Gather> g;
  size_t my_idx = 0;
  bool closer = false;

  {
    // Lock order: gathers_mu_ -> g->mu, here and in the timeout path.
    std::lock_guard<std::mutex> lock(gathers_mu_);
    auto it = gathers_.find(key);
    if (it != gathers_.end()) {
      std::lock_guard<std::mutex> gl(it->second->mu);
      if (!it->second->closed) {
        g = it->second;
        g->plans.push_back(plan);
        my_idx = g->plans.size() - 1;
        if (opts_.shared_gather_hint > 0 &&
            g->plans.size() >= opts_.shared_gather_hint) {
          g->closed = true;
          closer = true;
          gathers_.erase(it);
        }
      }
    }
    if (g == nullptr) {
      g = std::make_shared<Gather>();
      g->plans.push_back(plan);
      my_idx = 0;
      if (opts_.shared_gather_hint == 1) {
        g->closed = true;
        closer = true;
      } else {
        gathers_[key] = g;
      }
    }
  }

  std::unique_lock<std::mutex> gl(g->mu);
  while (!closer && !g->done && !g->failed) {
    if (g->closed) {
      // Someone else is (or will be) running the sweep; just wait.
      g->cv.wait(gl, [&] { return g->done || g->failed; });
      break;
    }
    if (g->cv.wait_for(gl, std::chrono::nanoseconds(
                               opts_.shared_gather_timeout_ns)) ==
            std::cv_status::timeout &&
        !g->closed) {
      // Liveness fallback: fewer members than the hint arrived — close the
      // group with whoever is here and run for them.
      g->closed = true;
      closer = true;
      gl.unlock();
      {
        std::lock_guard<std::mutex> lock(gathers_mu_);
        auto it = gathers_.find(key);
        if (it != gathers_.end() && it->second == g) gathers_.erase(it);
      }
      gl.lock();
    }
  }

  if (closer) {
    std::vector<exec::ScanJoinAggregatePlan> plans = g->plans;
    gl.unlock();
    g_shared_groups.Add(1);
    TaskPool& pool = TaskPool::Get();
    const uint64_t m0 = pool.QueryTagMorsels(tag);
    std::vector<exec::QueryResult> results;
    bool failed = false;
    try {
      // Runs under the closer's QueryTagScope/metric sink (set in Run), so
      // the whole group's sweep is fair-scheduled and attributed as one
      // query's work — which it is: one dispatch serving N consumers.
      results = exec::RunSharedProbe(plans, cfg);
    } catch (const QueryAborted&) {
      failed = true;
    }
    const uint64_t drained = pool.QueryTagMorsels(tag) - m0;
    gl.lock();
    g->results = std::move(results);
    g->group_morsels = drained;
    g->failed = failed;
    g->done = !failed;
    gl.unlock();
    g->cv.notify_all();
    if (failed) throw QueryAborted{tag};
    gl.lock();
  }

  if (g->failed) throw QueryAborted{tag};
  stats->morsels_drained = g->group_morsels;
  return g->results[my_idx];
}

}  // namespace simddb::server
