#include "agg/group_by.h"

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "hash/hash_table.h"
#include "obs/metrics.h"
#include "util/bits.h"
#include "util/task_pool.h"

namespace simddb {
namespace {

obs::PhaseTimer g_agg_partial_ns("agg_partial_ns");  // parallel partial folds
obs::PhaseTimer g_agg_merge_ns("agg_merge_ns");      // serial partial merge

}  // namespace

GroupByAggregator::GroupByAggregator(size_t max_groups, uint64_t seed)
    : n_buckets_(NextPowerOfTwo(max_groups * 2 + 32)),
      factor_(HashFactor(seed, 0)),
      max_groups_(max_groups),
      seed_(seed) {
  gkeys_.Reset(n_buckets_);
  sums_.Reset(n_buckets_);
  counts_.Reset(n_buckets_);
  mins_.Reset(n_buckets_);
  maxs_.Reset(n_buckets_);
  Clear();
}

void GroupByAggregator::Clear() {
  std::memset(gkeys_.data(), 0xFF, n_buckets_ * sizeof(uint32_t));
  sums_.Clear();
  counts_.Clear();
  mins_.Clear();
  maxs_.Clear();
  n_groups_ = 0;
}

uint32_t GroupByAggregator::FindOrClaim(uint32_t key) {
  for (;;) {
    const uint32_t nb = static_cast<uint32_t>(n_buckets_);
    uint32_t h = MultHash32(key, factor_, nb);
    for (;;) {
      if (gkeys_[h] == key) return h;
      if (gkeys_[h] == kEmptyKey) {
        if (n_groups_ >= grow_limit()) break;  // double first, then claim
        gkeys_[h] = key;
        mins_[h] = 0xFFFFFFFFu;
        maxs_[h] = 0;
        ++n_groups_;
        return h;
      }
      if (++h == nb) h = 0;
    }
    Grow();
  }
}

void GroupByAggregator::Grow() {
  AlignedBuffer<uint32_t> old_keys = std::move(gkeys_);
  AlignedBuffer<uint64_t> old_sums = std::move(sums_);
  AlignedBuffer<uint32_t> old_counts = std::move(counts_);
  AlignedBuffer<uint32_t> old_mins = std::move(mins_);
  AlignedBuffer<uint32_t> old_maxs = std::move(maxs_);
  const size_t old_nb = n_buckets_;
  n_buckets_ *= 2;
  gkeys_.Reset(n_buckets_);
  sums_.Reset(n_buckets_);
  counts_.Reset(n_buckets_);
  mins_.Reset(n_buckets_);
  maxs_.Reset(n_buckets_);
  std::memset(gkeys_.data(), 0xFF, n_buckets_ * sizeof(uint32_t));
  sums_.Clear();
  counts_.Clear();
  mins_.Clear();
  maxs_.Clear();
  const uint32_t nb = static_cast<uint32_t>(n_buckets_);
  for (size_t i = 0; i < old_nb; ++i) {
    if (old_keys[i] == kEmptyKey) continue;
    uint32_t h = MultHash32(old_keys[i], factor_, nb);
    while (gkeys_[h] != kEmptyKey) {
      if (++h == nb) h = 0;
    }
    gkeys_[h] = old_keys[i];
    sums_[h] = old_sums[i];
    counts_[h] = old_counts[i];
    mins_[h] = old_mins[i];
    maxs_[h] = old_maxs[i];
  }
}

void GroupByAggregator::FoldScalar(uint32_t key, uint32_t val) {
  const uint32_t h = FindOrClaim(key);
  sums_[h] += val;
  counts_[h] += 1;
  if (val < mins_[h]) mins_[h] = val;
  if (val > maxs_[h]) maxs_[h] = val;
}

void GroupByAggregator::AccumulateScalar(const uint32_t* keys,
                                         const uint32_t* vals, size_t n) {
  for (size_t i = 0; i < n; ++i) FoldScalar(keys[i], vals[i]);
}

void GroupByAggregator::FoldMerge(uint32_t key, uint64_t sum, uint32_t count,
                                  uint32_t min, uint32_t max) {
  const uint32_t h = FindOrClaim(key);
  sums_[h] += sum;
  counts_[h] += count;
  if (min < mins_[h]) mins_[h] = min;
  if (max > maxs_[h]) maxs_[h] = max;
}

void GroupByAggregator::AccumulateParallel(Isa isa, const uint32_t* keys,
                                           const uint32_t* vals, size_t n,
                                           int threads) {
  const MorselGrid grid(n);
  const size_t m_count = grid.count();
  const int lanes = TaskPool::LaneCount(m_count, threads);
  if (lanes <= 1 || m_count <= 1) {
    Accumulate(isa, keys, vals, n);
    return;
  }
  std::vector<std::unique_ptr<GroupByAggregator>> partials(lanes);
  for (int l = 0; l < lanes; ++l) {
    partials[l] = std::make_unique<GroupByAggregator>(max_groups_, seed_);
  }
  {
    obs::ScopedPhase phase(g_agg_partial_ns);
    TaskPool::Get().ParallelFor(m_count, threads, [&](int worker, size_t m) {
      const size_t b = grid.begin(m);
      partials[worker]->Accumulate(isa, keys + b, vals + b, grid.size(m));
    });
  }
  obs::ScopedPhase phase(g_agg_merge_ns);
  for (int l = 0; l < lanes; ++l) MergeFrom(*partials[l]);
}

void GroupByAggregator::MergeFrom(const GroupByAggregator& other) {
  for (size_t h = 0; h < other.n_buckets_; ++h) {
    if (other.gkeys_[h] == kEmptyKey) continue;
    FoldMerge(other.gkeys_[h], other.sums_[h], other.counts_[h],
              other.mins_[h], other.maxs_[h]);
  }
}

void GroupByAggregator::Accumulate(Isa isa, const uint32_t* keys,
                                   const uint32_t* vals, size_t n) {
  if (isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512)) {
    AccumulateAvx512(keys, vals, n);
    return;
  }
  AccumulateScalar(keys, vals, n);
}

size_t GroupByAggregator::ExtractScalar(uint32_t* out_keys,
                                        uint64_t* out_sums,
                                        uint32_t* out_counts,
                                        uint32_t* out_mins,
                                        uint32_t* out_maxs) const {
  size_t j = 0;
  for (size_t h = 0; h < n_buckets_; ++h) {
    if (gkeys_[h] == kEmptyKey) continue;
    if (out_keys != nullptr) out_keys[j] = gkeys_[h];
    if (out_sums != nullptr) out_sums[j] = sums_[h];
    if (out_counts != nullptr) out_counts[j] = counts_[h];
    if (out_mins != nullptr) out_mins[j] = mins_[h];
    if (out_maxs != nullptr) out_maxs[j] = maxs_[h];
    ++j;
  }
  return j;
}

size_t GroupByAggregator::Extract(Isa isa, uint32_t* out_keys,
                                  uint64_t* out_sums, uint32_t* out_counts,
                                  uint32_t* out_mins,
                                  uint32_t* out_maxs) const {
  if (isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512)) {
    return ExtractAvx512(out_keys, out_sums, out_counts, out_mins, out_maxs);
  }
  return ExtractScalar(out_keys, out_sums, out_counts, out_mins, out_maxs);
}

}  // namespace simddb
