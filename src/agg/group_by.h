#ifndef SIMDDB_AGG_GROUP_BY_H_
#define SIMDDB_AGG_GROUP_BY_H_

// Hash-based group-by aggregation — the second use of hash tables the paper
// names (§5: "map tuples to unique group ids or insert and update partial
// aggregates"; cf. [25]). Maintains COUNT, SUM (64-bit), MIN and MAX per
// 32-bit group key in an open-addressing (linear probing) table.
//
// The vectorized accumulate processes one input tuple per lane, gathers the
// group buckets, and resolves the two conflict kinds the paper's designs
// deal with:
//   - bucket claiming: lanes that found an empty bucket claim it via the
//     scatter + gather-back idiom (Alg. 7);
//   - aggregate update: among lanes updating the same bucket in one vector,
//     only the scatter-winner applies its delta; the others retry in the
//     next iteration (the retry-on-conflict pattern of §7.4), so no update
//     is ever lost or double-applied.

#include <cstddef>
#include <cstdint>

#include "core/isa.h"
#include "util/aligned_buffer.h"

namespace simddb {

class GroupByAggregator {
 public:
  /// Aggregates for up to max_groups distinct keys (table sized 2x, power
  /// of two). Keys must differ from kEmptyKey (0xFFFFFFFF). max_groups is
  /// a sizing hint, not a hard limit: if more distinct keys arrive, the
  /// table grows (doubling + rehash) in every build mode — the previous
  /// assert-only headroom check made a release build probe forever once
  /// the table filled up.
  explicit GroupByAggregator(size_t max_groups, uint64_t seed = 42);

  /// Drops all groups.
  void Clear();

  /// Folds n (group key, value) pairs into the aggregates.
  void Accumulate(Isa isa, const uint32_t* keys, const uint32_t* vals,
                  size_t n);
  void AccumulateScalar(const uint32_t* keys, const uint32_t* vals, size_t n);
  void AccumulateAvx512(const uint32_t* keys, const uint32_t* vals, size_t n);

  /// Morsel-parallel Accumulate on the shared TaskPool: each worker lane
  /// folds its morsels into a private partial table (same capacity and hash
  /// seed as this one), and the partials are merged serially into this
  /// table afterwards. The aggregate values per group are identical to the
  /// serial fold for every thread count (SUM/COUNT/MIN/MAX are commutative
  /// and exact in 64/32 bits); only the Extract bucket order may differ,
  /// since it follows table insertion order. threads <= 1 falls back to
  /// Accumulate.
  void AccumulateParallel(Isa isa, const uint32_t* keys, const uint32_t* vals,
                          size_t n, int threads);

  /// Folds every group of `other` into this table (the partial-merge step of
  /// AccumulateParallel, exposed for executor sinks that keep one partial
  /// per worker lane). Aggregates are commutative and exact, so any merge
  /// order yields the same per-group values.
  void MergeFrom(const GroupByAggregator& other);

  /// Number of distinct groups accumulated so far.
  size_t num_groups() const { return n_groups_; }

  /// Extracts all groups (in table order) into caller buffers sized
  /// num_groups(); any output pointer may be null to skip that aggregate.
  /// Returns the group count. The AVX-512 path compacts occupied buckets
  /// with selective stores.
  size_t Extract(Isa isa, uint32_t* out_keys, uint64_t* out_sums,
                 uint32_t* out_counts, uint32_t* out_mins,
                 uint32_t* out_maxs) const;

  size_t num_buckets() const { return n_buckets_; }

 private:
  size_t ExtractScalar(uint32_t* out_keys, uint64_t* out_sums,
                       uint32_t* out_counts, uint32_t* out_mins,
                       uint32_t* out_maxs) const;
  size_t ExtractAvx512(uint32_t* out_keys, uint64_t* out_sums,
                       uint32_t* out_counts, uint32_t* out_mins,
                       uint32_t* out_maxs) const;
  void FoldScalar(uint32_t key, uint32_t val);
  void FoldMerge(uint32_t key, uint64_t sum, uint32_t count, uint32_t min,
                 uint32_t max);

  /// Returns key's bucket, claiming (and initializing min/max sentinels
  /// for) a fresh one when absent; doubles the table first whenever a new
  /// claim would exceed the 50% load limit, so probe chains always hit an
  /// empty bucket and terminate regardless of build mode.
  uint32_t FindOrClaim(uint32_t key);
  void Grow();

  /// New groups are only claimed while n_groups_ < grow_limit_; the AVX-512
  /// accumulate drains to the (growable) scalar path when a vector of 16
  /// potential claims could cross it.
  size_t grow_limit() const { return n_buckets_ / 2; }

  AlignedBuffer<uint32_t> gkeys_;
  AlignedBuffer<uint64_t> sums_;
  AlignedBuffer<uint32_t> counts_;
  AlignedBuffer<uint32_t> mins_;
  AlignedBuffer<uint32_t> maxs_;
  size_t n_buckets_;
  size_t n_groups_ = 0;
  uint32_t factor_;
  size_t max_groups_;  // constructor args, kept so AccumulateParallel can
  uint64_t seed_;      // build identically-shaped partial tables
};

}  // namespace simddb

#endif  // SIMDDB_AGG_GROUP_BY_H_
