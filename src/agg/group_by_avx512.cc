// AVX-512 vertical group-by aggregation. One input tuple per lane; bucket
// claiming uses the Alg. 7 scatter/gather-back idiom; aggregate updates are
// applied only by per-bucket scatter winners, with losing lanes retrying at
// the *same* bucket next iteration (so chains never skip a freshly claimed
// bucket and no delta is lost).

#include <cassert>

#include "agg/group_by.h"
#include "core/avx512_ops.h"
#include "hash/hash_table.h"

namespace simddb {
namespace {

namespace v = simddb::avx512;

inline __m512i WrapBucket(__m512i h, __m512i nb) {
  __mmask16 over = _mm512_cmpge_epu32_mask(h, nb);
  return _mm512_mask_sub_epi32(h, over, h, nb);
}

// sums[idx[i]] += delta[i] for the lanes set in m (64-bit accumulators,
// 32-bit deltas), via two masked 8-way 64-bit gather/scatter pairs.
inline void AddToSums(uint64_t* sums, __mmask16 m, __m512i idx,
                      __m512i delta) {
  __m256i idx_lo = _mm512_castsi512_si256(idx);
  __m256i idx_hi = _mm512_extracti64x4_epi64(idx, 1);
  __m512i d_lo = _mm512_cvtepu32_epi64(_mm512_castsi512_si256(delta));
  __m512i d_hi =
      _mm512_cvtepu32_epi64(_mm512_extracti32x8_epi32(delta, 1));
  __mmask8 m_lo = static_cast<__mmask8>(m & 0xFF);
  __mmask8 m_hi = static_cast<__mmask8>(m >> 8);
  __m512i s_lo = _mm512_mask_i32gather_epi64(
      d_lo, m_lo, idx_lo, reinterpret_cast<const long long*>(sums), 8);
  __m512i s_hi = _mm512_mask_i32gather_epi64(
      d_hi, m_hi, idx_hi, reinterpret_cast<const long long*>(sums), 8);
  _mm512_mask_i32scatter_epi64(sums, m_lo, idx_lo,
                               _mm512_add_epi64(s_lo, d_lo), 8);
  _mm512_mask_i32scatter_epi64(sums, m_hi, idx_hi,
                               _mm512_add_epi64(s_hi, d_hi), 8);
}

}  // namespace

void GroupByAggregator::AccumulateAvx512(const uint32_t* keys,
                                         const uint32_t* vals, size_t n) {
  const __m512i factor = _mm512_set1_epi32(static_cast<int>(factor_));
  const __m512i nb = _mm512_set1_epi32(static_cast<int>(n_buckets_));
  const __m512i empty = _mm512_set1_epi32(static_cast<int>(kEmptyKey));
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i lane_ids =
      _mm512_set_epi32(16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1);
  // Unique per-lane tags above the bucket range, to exclude non-updating
  // lanes from the scatter-winner computation.
  const __m512i offrange_tags = _mm512_add_epi32(nb, lane_ids);
  __m512i key = _mm512_setzero_si512();
  __m512i val = _mm512_setzero_si512();
  __m512i off = _mm512_setzero_si512();
  __mmask16 need = 0xFFFF;
  size_t i = 0;
  while (i + 16 <= n) {
    // One iteration can claim up to 16 fresh buckets. Once that could cross
    // the 50% load limit, hand everything (in-flight lanes + remaining
    // input) to the scalar drain below, which grows the table as needed —
    // the vector loop caches n_buckets_/factor_ in registers and must never
    // run across a rehash.
    if (n_groups_ + 16 > grow_limit()) break;
    key = v::SelectiveLoad(key, need, keys + i);
    val = v::SelectiveLoad(val, need, vals + i);
    i += __builtin_popcount(need);
    off = _mm512_maskz_mov_epi32(static_cast<__mmask16>(~need), off);
    __m512i h = WrapBucket(
        _mm512_add_epi32(v::MultHash(key, factor, nb), off), nb);
    __m512i gk = v::Gather(gkeys_.data(), h);
    __mmask16 match = _mm512_cmpeq_epi32_mask(gk, key);
    __mmask16 at_empty = _mm512_cmpeq_epi32_mask(gk, empty);
    // Claim empty buckets (one winner per bucket).
    __mmask16 claim = 0;
    if (at_empty != 0) {
      assert(n_groups_ + 16 < n_buckets_);
      v::MaskScatter(gkeys_.data(), at_empty, h, lane_ids);
      __m512i back = v::MaskGather(lane_ids, at_empty, gkeys_.data(), h);
      claim = _mm512_mask_cmpeq_epi32_mask(at_empty, back, lane_ids);
      v::MaskScatter(gkeys_.data(), claim, h, key);
      v::MaskScatter(mins_.data(), claim, h, empty);  // min sentinel = max u32
      n_groups_ += __builtin_popcount(claim);
    }
    // Updaters this round: matched lanes + fresh claims; among those hitting
    // the same bucket only the scatter winner applies (others retry).
    __mmask16 upd = match | claim;
    if (upd != 0) {
      __m512i h_tagged = _mm512_mask_mov_epi32(offrange_tags, upd, h);
      __mmask16 win = v::ScatterWinners(h_tagged) & upd;
      const __m512i zero = _mm512_setzero_si512();
      __m512i cnt = v::MaskGather(zero, win, counts_.data(), h);
      v::MaskScatter(counts_.data(), win, h, _mm512_add_epi32(cnt, one));
      __m512i mn = v::MaskGather(zero, win, mins_.data(), h);
      v::MaskScatter(mins_.data(), win, h, _mm512_min_epu32(mn, val));
      __m512i mx = v::MaskGather(zero, win, maxs_.data(), h);
      v::MaskScatter(maxs_.data(), win, h, _mm512_max_epu32(mx, val));
      AddToSums(sums_.data(), win, h, val);
      need = win;
    } else {
      need = 0;
    }
    // Only true probers (bucket held a different key) advance; claim losers
    // and update losers retry the same bucket.
    __mmask16 prober = static_cast<__mmask16>(~(match | at_empty));
    off = _mm512_mask_add_epi32(off, prober, off, one);
  }
  // Scalar drain: in-flight lanes, then the input tail.
  alignas(64) uint32_t lk[16], lv[16];
  _mm512_store_si512(lk, key);
  _mm512_store_si512(lv, val);
  for (int lane = 0; lane < 16; ++lane) {
    if (need & (1u << lane)) continue;
    FoldScalar(lk[lane], lv[lane]);
  }
  for (; i < n; ++i) FoldScalar(keys[i], vals[i]);
}

size_t GroupByAggregator::ExtractAvx512(uint32_t* out_keys,
                                        uint64_t* out_sums,
                                        uint32_t* out_counts,
                                        uint32_t* out_mins,
                                        uint32_t* out_maxs) const {
  const __m512i empty = _mm512_set1_epi32(static_cast<int>(kEmptyKey));
  size_t j = 0;
  size_t h = 0;
  for (; h + 16 <= n_buckets_; h += 16) {
    __m512i gk = _mm512_load_si512(gkeys_.data() + h);
    __mmask16 m = _mm512_cmpneq_epi32_mask(gk, empty);
    if (m == 0) continue;
    if (out_keys != nullptr) v::SelectiveStore(out_keys + j, m, gk);
    if (out_counts != nullptr) {
      v::SelectiveStore(out_counts + j, m,
                        _mm512_load_si512(counts_.data() + h));
    }
    if (out_mins != nullptr) {
      v::SelectiveStore(out_mins + j, m,
                        _mm512_load_si512(mins_.data() + h));
    }
    if (out_maxs != nullptr) {
      v::SelectiveStore(out_maxs + j, m,
                        _mm512_load_si512(maxs_.data() + h));
    }
    if (out_sums != nullptr) {
      __mmask8 m_lo = static_cast<__mmask8>(m & 0xFF);
      __mmask8 m_hi = static_cast<__mmask8>(m >> 8);
      size_t jj = j;
      _mm512_mask_compressstoreu_epi64(
          out_sums + jj, m_lo,
          _mm512_load_si512(reinterpret_cast<const __m512i*>(sums_.data() + h)));
      jj += __builtin_popcount(m_lo);
      _mm512_mask_compressstoreu_epi64(
          out_sums + jj, m_hi,
          _mm512_load_si512(
              reinterpret_cast<const __m512i*>(sums_.data() + h + 8)));
    }
    j += __builtin_popcount(m);
  }
  // Tail buckets (n_buckets_ is a power of two >= 64, so none in practice).
  for (; h < n_buckets_; ++h) {
    if (gkeys_[h] == kEmptyKey) continue;
    if (out_keys != nullptr) out_keys[j] = gkeys_[h];
    if (out_sums != nullptr) out_sums[j] = sums_[h];
    if (out_counts != nullptr) out_counts[j] = counts_[h];
    if (out_mins != nullptr) out_mins[j] = mins_[h];
    if (out_maxs != nullptr) out_maxs[j] = maxs_[h];
    ++j;
  }
  return j;
}

}  // namespace simddb
