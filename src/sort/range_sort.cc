#include "sort/range_sort.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "numa/placement.h"
#include "partition/range.h"
#include "partition/shuffle.h"
#include "sort/radix_sort.h"
#include "util/aligned_buffer.h"
#include "util/bits.h"
#include "util/rng.h"

namespace simddb {

void RangeSortPairs(uint32_t* keys, uint32_t* pays, uint32_t* scratch_keys,
                    uint32_t* scratch_pays, size_t n,
                    const RangeSortConfig& cfg) {
  if (n < 2) return;
  const bool vec = cfg.isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512);
  const uint32_t fanout = cfg.fanout < 2 ? 2 : cfg.fanout;

  // 1. Sample and pick equi-depth splitters.
  Pcg32 rng(cfg.seed);
  size_t sample_n = std::min(cfg.sample_size, n);
  std::vector<uint32_t> sample(sample_n);
  for (size_t i = 0; i < sample_n; ++i) {
    sample[i] = keys[rng.NextBounded(static_cast<uint32_t>(n))];
  }
  std::sort(sample.begin(), sample.end());
  std::vector<uint32_t> splitters;
  splitters.reserve(fanout - 1);
  for (uint32_t p = 1; p < fanout; ++p) {
    splitters.push_back(sample[sample_n * p / fanout]);
  }

  // 2. Map every key to its range partition with the SIMD tree index.
  RangeIndex index(splitters, 16);
  AlignedBuffer<uint32_t> part(n + 16);
  // The sort runs on the calling thread, so its scratch is first-touched
  // node-locally (numa/placement.h) — placement only, value-preserving:
  // results are byte-identical on every (fake or real) topology.
  numa::PlaceBuffer(part.data(), part.size() * sizeof(uint32_t), 1,
                    numa::Placement::kNodeLocal);
  if (vec) {
    index.LookupAvx512(keys, n, part.data());
  } else {
    index.LookupScalar(keys, n, part.data());
  }

  // 3. Histogram over partition ids, then scatter tuples to contiguous
  //    partitions (destinations computed once, replayed on both columns).
  std::vector<uint32_t> offsets(fanout, 0);
  for (size_t i = 0; i < n; ++i) ++offsets[part[i]];
  uint32_t sum = 0;
  std::vector<uint32_t> starts(fanout + 1);
  for (uint32_t p = 0; p < fanout; ++p) {
    starts[p] = sum;
    uint32_t c = offsets[p];
    offsets[p] = sum;
    sum += c;
  }
  starts[fanout] = static_cast<uint32_t>(n);
  AlignedBuffer<uint32_t> dest(n + 16);
  numa::PlaceBuffer(dest.data(), dest.size() * sizeof(uint32_t), 1,
                    numa::Placement::kNodeLocal);
  // Identity on part ids: a radix function whose mask covers [0, fanout).
  PartitionFn id_fn = PartitionFn::Radix(Log2Ceil(fanout), 0);
  if (vec) {
    ComputeDestinationsAvx512(id_fn, part.data(), n, offsets.data(),
                              dest.data());
    ScatterColumnAvx512(keys, n, dest.data(), scratch_keys, 4);
    ScatterColumnAvx512(pays, n, dest.data(), scratch_pays, 4);
  } else {
    ComputeDestinationsScalar(id_fn, part.data(), n, offsets.data(),
                              dest.data());
    ScatterColumnScalar(keys, n, dest.data(), scratch_keys, 4);
    ScatterColumnScalar(pays, n, dest.data(), scratch_pays, 4);
  }

  // 4. Finish each partition with LSB radixsort (partitions are ordered by
  //    value, so concatenation is the sorted output). Each part sorts with
  //    a dedicated scratch buffer: sorting in place between adjacent parts
  //    would let the buffered shuffle's 16-aligned flush overshoot clobber
  //    the next, still-unsorted part.
  RadixSortConfig rs;
  rs.isa = cfg.isa;
  uint32_t max_part = 0;
  for (uint32_t p = 0; p < fanout; ++p) {
    max_part = std::max(max_part, starts[p + 1] - starts[p]);
  }
  AlignedBuffer<uint32_t> tmp_k(max_part + 16), tmp_p(max_part + 16);
  numa::PlaceBuffer(tmp_k.data(), tmp_k.size() * sizeof(uint32_t), 1,
                    numa::Placement::kNodeLocal);
  numa::PlaceBuffer(tmp_p.data(), tmp_p.size() * sizeof(uint32_t), 1,
                    numa::Placement::kNodeLocal);
  for (uint32_t p = 0; p < fanout; ++p) {
    uint32_t b = starts[p];
    uint32_t e = starts[p + 1];
    if (e - b > 1) {
      std::memcpy(tmp_k.data(), scratch_keys + b, (e - b) * sizeof(uint32_t));
      std::memcpy(tmp_p.data(), scratch_pays + b, (e - b) * sizeof(uint32_t));
      RadixSortPairs(tmp_k.data(), tmp_p.data(), keys + b, pays + b, e - b,
                     rs);
      std::memcpy(scratch_keys + b, tmp_k.data(), (e - b) * sizeof(uint32_t));
      std::memcpy(scratch_pays + b, tmp_p.data(), (e - b) * sizeof(uint32_t));
    }
  }
  std::memcpy(keys, scratch_keys, n * sizeof(uint32_t));
  std::memcpy(pays, scratch_pays, n * sizeof(uint32_t));
}

}  // namespace simddb
