#ifndef SIMDDB_SORT_RANGE_SORT_H_
#define SIMDDB_SORT_RANGE_SORT_H_

// Comparison sort by range partitioning — the alternative large-scale sort
// the paper's §8 builds on ("radixsort and comparison sorting based on
// range partitioning have comparable performance" [26]). The input is
// sampled to pick equi-depth splitters, every tuple is mapped to its range
// partition with the SIMD range index (§7.2), tuples are scattered to
// contiguous partitions, and each (now cache-friendly) partition is
// finished with LSB radixsort. Unlike plain radixsort the output partitions
// are ordered by value, which is what samplesort-style distributed sorts
// need.

#include <cstddef>
#include <cstdint>

#include "core/isa.h"

namespace simddb {

struct RangeSortConfig {
  Isa isa = Isa::kScalar;
  uint32_t fanout = 289;     ///< number of range partitions (17^2 default)
  size_t sample_size = 8192; ///< tuples sampled for splitter selection
  uint64_t seed = 42;
};

/// Sorts (keys, pays) by key ascending. All four arrays (primary and
/// scratch) need capacity n + 16 (buffered-flush overshoot).
void RangeSortPairs(uint32_t* keys, uint32_t* pays, uint32_t* scratch_keys,
                    uint32_t* scratch_pays, size_t n,
                    const RangeSortConfig& cfg);

}  // namespace simddb

#endif  // SIMDDB_SORT_RANGE_SORT_H_
