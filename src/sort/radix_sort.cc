#include "sort/radix_sort.h"

#include <cstring>
#include <vector>

#include "numa/placement.h"
#include "obs/metrics.h"
#include "partition/histogram.h"
#include "partition/parallel_partition.h"
#include "partition/partition_fn.h"
#include "partition/plan.h"
#include "partition/shuffle.h"
#include "util/aligned_buffer.h"
#include "util/prefix_sum.h"
#include "util/task_pool.h"

namespace simddb {
namespace {

// Multi-column sort pass phases (the pair/key-only sorts reuse the
// part_*_ns timers via ParallelPartitionPass).
obs::PhaseTimer g_sort_hist_ns("sort_hist_ns");
obs::PhaseTimer g_sort_scatter_ns("sort_scatter_ns");

void RadixSortImpl(uint32_t* keys, uint32_t* pays, uint32_t* scratch_keys,
                   uint32_t* scratch_pays, size_t n,
                   const RadixSortConfig& cfg) {
  if (n < 2) return;
  const uint32_t req =
      cfg.bits_per_pass < 1 ? 8 : static_cast<uint32_t>(cfg.bits_per_pass);
  // LSB order: the cumulative shift makes any pass-width sequence summing to
  // 32 a correct (stable) sort, so the planner's balanced split just rides.
  const PartitionPlan plan =
      PlanRadixPasses(32, PartitionBudget::Default(), req);
  ParallelPartitionResources res;

  uint32_t* in_k = keys;
  uint32_t* in_p = pays;
  uint32_t* out_k = scratch_keys;
  uint32_t* out_p = scratch_pays;
  uint32_t lo = 0;
  for (const PartitionPassPlan& pass : plan.passes) {
    PartitionFn fn = PartitionFn::Radix(pass.bits, lo);
    ParallelPartitionPass(fn, in_k, in_p, n, out_k, out_p, cfg.isa,
                          cfg.threads, &res, nullptr, pass.variant,
                          ShuffleCapacity(n));
    lo += pass.bits;
    std::swap(in_k, out_k);
    std::swap(in_p, out_p);
  }
  if (in_k != keys) {
    std::memcpy(keys, in_k, n * sizeof(uint32_t));
    if (pays != nullptr) std::memcpy(pays, in_p, n * sizeof(uint32_t));
  }
}

}  // namespace

void RadixSortPairs(uint32_t* keys, uint32_t* pays, uint32_t* scratch_keys,
                    uint32_t* scratch_pays, size_t n,
                    const RadixSortConfig& cfg) {
  RadixSortImpl(keys, pays, scratch_keys, scratch_pays, n, cfg);
}

void RadixSortKeys(uint32_t* keys, uint32_t* scratch_keys, size_t n,
                   const RadixSortConfig& cfg) {
  RadixSortImpl(keys, nullptr, scratch_keys, nullptr, n, cfg);
}

void RadixSortMultiColumn(uint32_t* keys, uint32_t* scratch_keys, size_t n,
                          SortColumn* cols, size_t n_cols,
                          const RadixSortConfig& cfg) {
  if (n < 2) return;
  const uint32_t req =
      cfg.bits_per_pass < 1 ? 8 : static_cast<uint32_t>(cfg.bits_per_pass);
  const PartitionPlan plan =
      PlanRadixPasses(32, PartitionBudget::Default(), req);
  // Widest pass comes first in the plan, so it sizes the histogram rows.
  const uint32_t max_bits = plan.passes.front().bits;
  const bool vec = cfg.isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512);
  const int t_count = cfg.threads < 1 ? 1 : cfg.threads;

  // Morsel-parallel schedule (same layout trick as ParallelPartitionPass):
  // one histogram row per morsel, a cross-morsel interleaved prefix sum,
  // then per-morsel destination computation — dest[] holds each tuple's
  // final position, so the column scatters are embarrassingly parallel over
  // morsels and the result is identical for every worker count.
  const MorselGrid grid(n, BoundedMorselSize(n));
  const size_t m_count = grid.count();
  TaskPool& pool = TaskPool::Get();
  const int lanes = TaskPool::LaneCount(m_count, t_count);
  AlignedBuffer<uint32_t> hists(m_count << max_bits);
  AlignedBuffer<uint32_t> dest(ShuffleCapacity(n));
  // Histogram rows and the per-tuple destination array are morsel-major, so
  // lane-block first touch places each block on the node whose lanes write
  // and re-read it. No-ops on single-node hosts.
  numa::PlaceBuffer(hists.data(), hists.size() * sizeof(uint32_t), t_count,
                    numa::Placement::kNodeLocal);
  numa::PlaceBuffer(dest.data(), dest.size() * sizeof(uint32_t), t_count,
                    numa::Placement::kNodeLocal);
  std::vector<HistogramWorkspace> ws(lanes);
  uint32_t* in_k = keys;
  uint32_t* out_k = scratch_keys;
  std::vector<void*> in_c(n_cols), out_c(n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    in_c[c] = cols[c].data;
    out_c[c] = cols[c].scratch;
  }

  uint32_t lo = 0;
  for (const PartitionPassPlan& pass : plan.passes) {
    PartitionFn fn = PartitionFn::Radix(pass.bits, lo);
    lo += pass.bits;
    {
      obs::ScopedPhase phase(g_sort_hist_ns);
      pool.ParallelFor(m_count, t_count, [&](int worker, size_t m) {
        uint32_t* h = hists.data() + m * fn.fanout;
        if (vec) {
          HistogramReplicatedAvx512(fn, in_k + grid.begin(m), grid.size(m), h,
                                    &ws[worker]);
        } else {
          HistogramScalar(fn, in_k + grid.begin(m), grid.size(m), h);
        }
      });
      InterleavedPrefixSum(hists.data(), m_count, fn.fanout);
    }
    // One destination computation, replayed over the key and all payload
    // columns with width-specialized scatters (the paper's temporary-array
    // scheme for multi-column shuffling).
    obs::ScopedPhase scatter_phase(g_sort_scatter_ns);
    pool.ParallelFor(m_count, t_count, [&](int, size_t m) {
      const size_t b = grid.begin(m);
      const size_t mn = grid.size(m);
      uint32_t* offsets = hists.data() + m * fn.fanout;
      if (vec) {
        ComputeDestinationsAvx512(fn, in_k + b, mn, offsets, dest.data() + b);
        ScatterColumnAvx512(in_k + b, mn, dest.data() + b, out_k, 4);
        for (size_t c = 0; c < n_cols; ++c) {
          ScatterColumnAvx512(
              static_cast<const char*>(in_c[c]) +
                  b * static_cast<size_t>(cols[c].elem_bytes),
              mn, dest.data() + b, out_c[c], cols[c].elem_bytes);
        }
      } else {
        ComputeDestinationsScalar(fn, in_k + b, mn, offsets, dest.data() + b);
        ScatterColumnScalar(in_k + b, mn, dest.data() + b, out_k, 4);
        for (size_t c = 0; c < n_cols; ++c) {
          ScatterColumnScalar(
              static_cast<const char*>(in_c[c]) +
                  b * static_cast<size_t>(cols[c].elem_bytes),
              mn, dest.data() + b, out_c[c], cols[c].elem_bytes);
        }
      }
    });
    std::swap(in_k, out_k);
    for (size_t c = 0; c < n_cols; ++c) std::swap(in_c[c], out_c[c]);
  }
  if (in_k != keys) {
    std::memcpy(keys, in_k, n * sizeof(uint32_t));
    for (size_t c = 0; c < n_cols; ++c) {
      std::memcpy(cols[c].data, in_c[c],
                  n * static_cast<size_t>(cols[c].elem_bytes));
    }
  }
}

}  // namespace simddb
