#ifndef SIMDDB_SORT_RADIX_SORT_H_
#define SIMDDB_SORT_RADIX_SORT_H_

// LSB radixsort (§8) — the paper's fastest method for 32-bit keys [26].
// Every pass is a stable buffered partitioning step (histogram, prefix sum,
// shuffle); data parallelism comes from the vectorized histograms and
// shuffles of §7, thread parallelism from splitting the input among threads
// and interleaving their partition outputs via cross-thread prefix sums.
//
// Buffer contract: the key/payload arrays AND the scratch arrays must have
// capacity ShuffleCapacity(n) (streaming flushes may overshoot the last
// partition's end; see shuffle.h). Sorted data always ends up back in the
// primary arrays.
//
// Pass widths are planned by PlanRadixPasses (partition/plan.h):
// bits_per_pass caps the width, the budget caps it further, and each pass
// picks the buffered-16 or SWWC shuffle kernel by its fanout.

#include <cstddef>
#include <cstdint>

#include "core/isa.h"

namespace simddb {

struct RadixSortConfig {
  Isa isa = Isa::kScalar;  ///< kAvx512 => vectorized histogram + shuffle
  int bits_per_pass = 8;   ///< per-pass radix cap (paper: 5-8 optimal);
                           ///< further bounded by the partition budget
  int threads = 1;
};

/// Sorts (keys, pays) pairs by key, ascending, stable.
void RadixSortPairs(uint32_t* keys, uint32_t* pays, uint32_t* scratch_keys,
                    uint32_t* scratch_pays, size_t n,
                    const RadixSortConfig& cfg);

/// Sorts a key column, ascending.
void RadixSortKeys(uint32_t* keys, uint32_t* scratch_keys, size_t n,
                   const RadixSortConfig& cfg);

/// A payload column accompanying the key column in a multi-column sort.
struct SortColumn {
  void* data;     ///< n elements, sorted in place (via scratch)
  void* scratch;  ///< n elements of scratch
  int elem_bytes; ///< 1, 2, 4, or 8
};

/// Sorts a table of a 32-bit key column plus any number of payload columns
/// of mixed widths (Fig. 18): per pass, the histogram is generated once,
/// per-tuple destinations are computed once, and each column is permuted
/// with a type-specialized scatter. Morsel-parallel over cfg.threads
/// workers; output is identical for every thread count.
void RadixSortMultiColumn(uint32_t* keys, uint32_t* scratch_keys, size_t n,
                          SortColumn* cols, size_t n_cols,
                          const RadixSortConfig& cfg);

}  // namespace simddb

#endif  // SIMDDB_SORT_RADIX_SORT_H_
