// AVX2 chunk converter kernels. Without compressed stores, bitmap ->
// selection expands one byte of the word per step with the App. D
// permutation-table selective store: the byte indexes a compress
// permutation, the permuted lane-index vector is stored full-width, and
// the output cursor advances by the byte's popcount (the overshoot is
// covered by the ChunkCapacity slack). The range predicate uses the
// sign-bias trick for unsigned compares, packing 8-bit movemasks into
// bitmap words.

#include "exec/chunk.h"

#include <immintrin.h>

#include <cstdint>

#include "core/avx2_ops.h"

namespace simddb::exec::detail {
namespace {

namespace v = simddb::avx2;

inline __m256i BiasSign(__m256i x) {
  return _mm256_xor_si256(x, _mm256_set1_epi32(INT32_MIN));
}

}  // namespace

size_t BitmapToSelectionAvx2(const uint64_t* bitmap, size_t n,
                             uint32_t* sel) {
  const size_t words = ChunkBitmapWords(n);
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i step = _mm256_set1_epi32(8);
  size_t out = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = bitmap[w];
    __m256i idx = _mm256_add_epi32(
        iota, _mm256_set1_epi32(static_cast<int>(w << 6)));
    for (int b = 0; b < 8; ++b) {
      const uint32_t m = static_cast<uint32_t>(bits) & 0xFFu;
      bits >>= 8;
      if (m != 0) {
        const __m256i perm = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            v::internal::kCompress[m].data()));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(sel + out),
                            _mm256_permutevar8x32_epi32(idx, perm));
        out += static_cast<size_t>(__builtin_popcount(m));
      }
      idx = _mm256_add_epi32(idx, step);
    }
  }
  return out;
}

size_t RangePredicateBitmapAvx2(const uint32_t* keys, size_t n, uint32_t lo,
                                uint32_t hi, uint64_t* bitmap) {
  const __m256i lo_m1 =
      BiasSign(_mm256_set1_epi32(static_cast<int>(lo - 1)));  // k > lo-1
  const __m256i hi_p1 =
      BiasSign(_mm256_set1_epi32(static_cast<int>(hi + 1)));  // k < hi+1
  size_t cnt = 0;
  size_t i = 0;
  size_t w = 0;
  // lo == 0 / hi == UINT32_MAX wrap the biased bounds; fall back to the
  // scalar kernel for those degenerate (unbounded) predicates.
  if (lo == 0 || hi == 0xFFFFFFFFu) {
    return RangePredicateBitmapScalar(keys, n, lo, hi, bitmap);
  }
  for (; i + 64 <= n; i += 64, ++w) {
    uint64_t word = 0;
    for (int g = 0; g < 8; ++g) {
      const __m256i k = BiasSign(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(keys + i + 8 * g)));
      const __m256i gt_lo = _mm256_cmpgt_epi32(k, lo_m1);
      const __m256i lt_hi = _mm256_cmpgt_epi32(hi_p1, k);
      word |= static_cast<uint64_t>(
                  v::MoveMask(_mm256_and_si256(gt_lo, lt_hi)))
              << (g * 8);
    }
    bitmap[w] = word;
    cnt += static_cast<size_t>(__builtin_popcountll(word));
  }
  if (i < n) {
    uint64_t word = 0;
    for (size_t j = i; j < n; ++j) {
      const uint32_t k = keys[j];
      const uint64_t q =
          static_cast<uint64_t>(k >= lo) & static_cast<uint64_t>(k <= hi);
      word |= q << (j - i);
      cnt += q;
    }
    bitmap[w] = word;
  }
  return cnt;
}

}  // namespace simddb::exec::detail
