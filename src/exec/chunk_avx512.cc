// AVX-512 chunk converter kernels. bitmap -> selection runs in two levels:
// vpopcntq over 8-word blocks gives positional population counts whose
// prefix sum yields each word's output offset up front (the words of a
// block could then be expanded independently — the structure of the
// positional-popcount/prefix-sum decomposition in PAPERS.md); within a
// word, each 16-bit group compress-stores a lane-index vector with the
// group bits as the write mask, which is exactly the selection scan's
// bit-extract-indirect idiom pointed at indexes instead of values.

#include "exec/chunk.h"

#include <immintrin.h>

namespace simddb::exec::detail {
namespace {

/// Compressed index store of one 64-bit word's set bits at sel[out];
/// returns the word's popcount.
inline size_t ExpandWord(uint64_t bits, uint32_t base, uint32_t* sel,
                         size_t out) {
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                         12, 13, 14, 15);
  __m512i idx = _mm512_add_epi32(iota, _mm512_set1_epi32(static_cast<int>(base)));
  const __m512i step = _mm512_set1_epi32(16);
  size_t o = out;
  for (int g = 0; g < 4; ++g) {
    const __mmask16 m = static_cast<__mmask16>(bits >> (g * 16));
    _mm512_mask_compressstoreu_epi32(sel + o, m, idx);
    o += static_cast<size_t>(__builtin_popcount(m));
    idx = _mm512_add_epi32(idx, step);
  }
  return o - out;
}

}  // namespace

size_t BitmapToSelectionAvx512(const uint64_t* bitmap, size_t n,
                               uint32_t* sel) {
  const size_t words = ChunkBitmapWords(n);
  size_t out = 0;
  size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    // Positional popcount of the block, prefix-summed into per-word
    // offsets so every word knows its destination before expansion.
    const __m512i wv =
        _mm512_loadu_si512(reinterpret_cast<const void*>(bitmap + w));
    alignas(64) uint64_t counts[8];
    _mm512_store_si512(counts, _mm512_popcnt_epi64(wv));
    uint64_t offs[8];
    uint64_t acc = out;
    for (int i = 0; i < 8; ++i) {
      offs[i] = acc;
      acc += counts[i];
    }
    for (int i = 0; i < 8; ++i) {
      if (counts[i] == 0) continue;
      ExpandWord(bitmap[w + i], static_cast<uint32_t>((w + i) << 6), sel,
                 offs[i]);
    }
    out = acc;
  }
  for (; w < words; ++w) {
    out += ExpandWord(bitmap[w], static_cast<uint32_t>(w << 6), sel, out);
  }
  return out;
}

size_t RangePredicateBitmapAvx512(const uint32_t* keys, size_t n, uint32_t lo,
                                  uint32_t hi, uint64_t* bitmap) {
  const __m512i vlo = _mm512_set1_epi32(static_cast<int>(lo));
  const __m512i vhi = _mm512_set1_epi32(static_cast<int>(hi));
  size_t cnt = 0;
  size_t i = 0;
  size_t w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    uint64_t word = 0;
    for (int g = 0; g < 4; ++g) {
      const __m512i k = _mm512_loadu_si512(
          reinterpret_cast<const void*>(keys + i + 16 * g));
      const __mmask16 ge = _mm512_cmp_epu32_mask(k, vlo, _MM_CMPINT_NLT);
      const __mmask16 le = _mm512_cmp_epu32_mask(k, vhi, _MM_CMPINT_LE);
      word |= static_cast<uint64_t>(static_cast<uint16_t>(ge & le))
              << (g * 16);
    }
    bitmap[w] = word;
    cnt += static_cast<size_t>(__builtin_popcountll(word));
  }
  if (i < n) {
    uint64_t word = 0;
    for (size_t j = i; j < n; ++j) {
      const uint32_t k = keys[j];
      const uint64_t q =
          static_cast<uint64_t>(k >= lo) & static_cast<uint64_t>(k <= hi);
      word |= q << (j - i);
      cnt += q;
    }
    bitmap[w] = word;
  }
  return cnt;
}

}  // namespace simddb::exec::detail
