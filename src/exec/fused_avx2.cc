// AVX2 backend TU for the template-fused pipelines: anchors the
// RunFusedProbe<kAvx2> instantiation (so the fused stage loops compile
// under the AVX2 flags) and the fused two-column gather. Haswell has native
// gathers (vpgatherdd) but no masked 32-bit loads worth using here, so the
// tail stays scalar — reading past `cnt` would gather through garbage
// indexes.

#include "exec/fused.h"

#include <immintrin.h>

#include <cstdint>

namespace simddb::exec {

namespace detail {

void GatherPairAvx2(const uint32_t* a, const uint32_t* b, const uint32_t* sel,
                    size_t cnt, uint32_t* out_a, uint32_t* out_b) {
  size_t i = 0;
  for (; i + 8 <= cnt; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    const __m256i va =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(a), idx, 4);
    const __m256i vb =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(b), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_a + i), va);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_b + i), vb);
  }
  for (; i < cnt; ++i) {
    const uint32_t s = sel[i];
    out_a[i] = a[s];
    out_b[i] = b[s];
  }
}

}  // namespace detail

template FusedProbeResult RunFusedProbe<Isa::kAvx2>(const FusedProbeSpec&,
                                                    const ExecConfig&);
template std::unique_ptr<FusedProbeRunner> MakeFusedProbeRunner<Isa::kAvx2>(
    const FusedProbeSpec&, ScanMode,
    std::vector<std::unique_ptr<GroupByAggregator>>*);

}  // namespace simddb::exec
