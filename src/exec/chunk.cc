#include "exec/chunk.h"

#include <cstring>

#include "obs/metrics.h"

namespace simddb::exec {
namespace {

obs::Counter g_bitmap_to_sel("bitmap_to_sel");
obs::Counter g_sel_to_bitmap("sel_to_bitmap");

}  // namespace

size_t BitmapToSelection(Isa isa, const uint64_t* bitmap, size_t n,
                         uint32_t* sel) {
  if (isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512)) {
    return detail::BitmapToSelectionAvx512(bitmap, n, sel);
  }
  if (isa == Isa::kAvx2 && IsaSupported(Isa::kAvx2)) {
    return detail::BitmapToSelectionAvx2(bitmap, n, sel);
  }
  return detail::BitmapToSelectionScalar(bitmap, n, sel);
}

void SelectionToBitmap(const uint32_t* sel, size_t count, size_t n,
                       uint64_t* bitmap) {
  std::memset(bitmap, 0, ChunkBitmapWords(n) * sizeof(uint64_t));
  for (size_t i = 0; i < count; ++i) {
    assert(sel[i] < n);
    bitmap[sel[i] >> 6] |= uint64_t{1} << (sel[i] & 63);
  }
}

size_t RangePredicateBitmap(Isa isa, const uint32_t* keys, size_t n,
                            uint32_t lo, uint32_t hi, uint64_t* bitmap) {
  if (isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512)) {
    return detail::RangePredicateBitmapAvx512(keys, n, lo, hi, bitmap);
  }
  if (isa == Isa::kAvx2 && IsaSupported(Isa::kAvx2)) {
    return detail::RangePredicateBitmapAvx2(keys, n, lo, hi, bitmap);
  }
  return detail::RangePredicateBitmapScalar(keys, n, lo, hi, bitmap);
}

namespace detail {

size_t BitmapToSelectionScalar(const uint64_t* bitmap, size_t n,
                               uint32_t* sel) {
  size_t cnt = 0;
  const size_t words = ChunkBitmapWords(n);
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = bitmap[w];
    const uint32_t base = static_cast<uint32_t>(w << 6);
    while (bits != 0) {
      sel[cnt++] = base + static_cast<uint32_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
    }
  }
  return cnt;
}

size_t RangePredicateBitmapScalar(const uint32_t* keys, size_t n, uint32_t lo,
                                  uint32_t hi, uint64_t* bitmap) {
  const size_t words = ChunkBitmapWords(n);
  std::memset(bitmap, 0, words * sizeof(uint64_t));
  size_t cnt = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t k = keys[i];
    const uint64_t q =
        static_cast<uint64_t>(k >= lo) & static_cast<uint64_t>(k <= hi);
    bitmap[i >> 6] |= q << (i & 63);
    cnt += q;
  }
  return cnt;
}

}  // namespace detail

void Chunk::Reset(size_t capacity, int n_cols) {
  assert(n_cols >= 1 && n_cols <= kMaxColumns);
  capacity_ = capacity;
  n_cols_ = n_cols;
  for (int c = 0; c < n_cols; ++c) cols_[c].Reset(ChunkCapacity(capacity));
  sel_.Reset(ChunkCapacity(capacity));
  bitmap_.Reset(ChunkBitmapWords(capacity));
  size_ = 0;
  active_ = 0;
  kind_ = SelKind::kDense;
  seq_ = 0;
}

void Chunk::MaterializeSelection(Isa isa) {
  if (kind_ != SelKind::kBitmap) return;
  const size_t cnt = BitmapToSelection(isa, bitmap_.data(), size_, sel_.data());
  assert(cnt == active_);
  g_bitmap_to_sel.Add(1);
  active_ = cnt;
  kind_ = SelKind::kSelection;
}

void Chunk::MaterializeBitmap(Isa isa) {
  (void)isa;
  if (kind_ == SelKind::kBitmap) return;
  if (kind_ == SelKind::kDense) {
    // All-ones prefix: full words then a partial tail word.
    const size_t words = ChunkBitmapWords(size_);
    for (size_t w = 0; w < words; ++w) bitmap_[w] = ~uint64_t{0};
    if (size_ & 63) {
      bitmap_[words - 1] = (uint64_t{1} << (size_ & 63)) - 1;
    }
    active_ = size_;
  } else {
    SelectionToBitmap(sel_.data(), active_, size_, bitmap_.data());
  }
  g_sel_to_bitmap.Add(1);
  kind_ = SelKind::kBitmap;
}

void Chunk::Compact(Isa isa) {
  if (kind_ == SelKind::kDense) return;
  MaterializeSelection(isa);
  const size_t cnt = active_;
  for (int c = 0; c < n_cols_; ++c) {
    uint32_t* col = cols_[c].data();
    // Forward in-place gather; sel is ascending so sel[j] >= j and the
    // write at j never clobbers an unread source.
    for (size_t j = 0; j < cnt; ++j) col[j] = col[sel_[j]];
  }
  SetDense(cnt);
}

}  // namespace simddb::exec
