// AVX-512 backend TU for the template-fused pipelines: anchors the
// RunFusedProbe<kAvx512> instantiation and the fused two-column gather.
// The tail is fully masked (maskz index load -> masked gather -> masked
// store), so no lane ever dereferences an index beyond `cnt`.

#include "exec/fused.h"

#include <immintrin.h>

#include <cstdint>

namespace simddb::exec {

namespace detail {

void GatherPairAvx512(const uint32_t* a, const uint32_t* b,
                      const uint32_t* sel, size_t cnt, uint32_t* out_a,
                      uint32_t* out_b) {
  size_t i = 0;
  for (; i + 16 <= cnt; i += 16) {
    const __m512i idx = _mm512_loadu_si512(sel + i);
    _mm512_storeu_si512(out_a + i, _mm512_i32gather_epi32(idx, a, 4));
    _mm512_storeu_si512(out_b + i, _mm512_i32gather_epi32(idx, b, 4));
  }
  const size_t rem = cnt - i;
  if (rem != 0) {
    const __mmask16 m = static_cast<__mmask16>((1u << rem) - 1);
    const __m512i idx = _mm512_maskz_loadu_epi32(m, sel + i);
    const __m512i zero = _mm512_setzero_si512();
    _mm512_mask_storeu_epi32(out_a + i, m,
                             _mm512_mask_i32gather_epi32(zero, m, idx, a, 4));
    _mm512_mask_storeu_epi32(out_b + i, m,
                             _mm512_mask_i32gather_epi32(zero, m, idx, b, 4));
  }
}

}  // namespace detail

template FusedProbeResult RunFusedProbe<Isa::kAvx512>(const FusedProbeSpec&,
                                                      const ExecConfig&);
template std::unique_ptr<FusedProbeRunner> MakeFusedProbeRunner<Isa::kAvx512>(
    const FusedProbeSpec&, ScanMode,
    std::vector<std::unique_ptr<GroupByAggregator>>*);

}  // namespace simddb::exec
