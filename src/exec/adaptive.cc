#include "exec/adaptive.h"

#include <cassert>

namespace simddb::exec {
namespace {

// Registry keeps raw pointers, so instruments must have static storage.
obs::Counter g_switches("adaptive_switches");
obs::Counter g_explore_chunks("explore_chunks");

// Per-operator chosen-variant histogram: one counter per (kind, isa[, scan
// mode]) cell, bumped once per chunk (or fused window) that ran the
// variant. The scan-representation axis only exists where the dispatcher
// can actually switch representations (scan source, fused window).
obs::Counter g_scan_scalar_compact("chosen_scan_scalar_compact");
obs::Counter g_scan_scalar_bitmap("chosen_scan_scalar_bitmap");
obs::Counter g_scan_avx2_compact("chosen_scan_avx2_compact");
obs::Counter g_scan_avx2_bitmap("chosen_scan_avx2_bitmap");
obs::Counter g_scan_avx512_compact("chosen_scan_avx512_compact");
obs::Counter g_scan_avx512_bitmap("chosen_scan_avx512_bitmap");
obs::Counter g_bloom_scalar("chosen_bloom_scalar");
obs::Counter g_bloom_avx2("chosen_bloom_avx2");
obs::Counter g_bloom_avx512("chosen_bloom_avx512");
obs::Counter g_join_scalar("chosen_join_scalar");
obs::Counter g_join_avx2("chosen_join_avx2");
obs::Counter g_join_avx512("chosen_join_avx512");
obs::Counter g_groupby_scalar("chosen_groupby_scalar");
obs::Counter g_groupby_avx2("chosen_groupby_avx2");
obs::Counter g_groupby_avx512("chosen_groupby_avx512");
obs::Counter g_fused_scalar_compact("chosen_fused_scalar_compact");
obs::Counter g_fused_scalar_bitmap("chosen_fused_scalar_bitmap");
obs::Counter g_fused_avx2_compact("chosen_fused_avx2_compact");
obs::Counter g_fused_avx2_bitmap("chosen_fused_avx2_bitmap");
obs::Counter g_fused_avx512_compact("chosen_fused_avx512_compact");
obs::Counter g_fused_avx512_bitmap("chosen_fused_avx512_bitmap");
obs::Counter g_build_scalar("chosen_build_scalar");
obs::Counter g_build_avx2("chosen_build_avx2");
obs::Counter g_build_avx512("chosen_build_avx512");

obs::Counter* ChosenCounter(OpKind kind, const AdaptiveVariant& v) {
  const int i = static_cast<int>(v.isa);
  const bool bm = v.scan_mode == ScanMode::kBitmap;
  switch (kind) {
    case OpKind::kScan: {
      static obs::Counter* const t[3][2] = {
          {&g_scan_scalar_compact, &g_scan_scalar_bitmap},
          {&g_scan_avx2_compact, &g_scan_avx2_bitmap},
          {&g_scan_avx512_compact, &g_scan_avx512_bitmap}};
      return t[i][bm];
    }
    case OpKind::kBloomProbe: {
      static obs::Counter* const t[3] = {&g_bloom_scalar, &g_bloom_avx2,
                                         &g_bloom_avx512};
      return t[i];
    }
    case OpKind::kJoinProbe: {
      static obs::Counter* const t[3] = {&g_join_scalar, &g_join_avx2,
                                         &g_join_avx512};
      return t[i];
    }
    case OpKind::kGroupBy: {
      static obs::Counter* const t[3] = {&g_groupby_scalar, &g_groupby_avx2,
                                         &g_groupby_avx512};
      return t[i];
    }
    case OpKind::kFusedWindow: {
      static obs::Counter* const t[3][2] = {
          {&g_fused_scalar_compact, &g_fused_scalar_bitmap},
          {&g_fused_avx2_compact, &g_fused_avx2_bitmap},
          {&g_fused_avx512_compact, &g_fused_avx512_bitmap}};
      return t[i][bm];
    }
    case OpKind::kBuild: {
      static obs::Counter* const t[3] = {&g_build_scalar, &g_build_avx2,
                                         &g_build_avx512};
      return t[i];
    }
  }
  return &g_scan_scalar_compact;
}

ScanMode OtherMode(ScanMode m) {
  return m == ScanMode::kCompact ? ScanMode::kBitmap : ScanMode::kCompact;
}

}  // namespace

AdaptiveDispatcher::AdaptiveDispatcher(const ExecConfig& cfg,
                                       ScanMode plan_scan_mode) {
  seed_ = cfg.seed;
  rotate_for_testing_ = cfg.adaptive.rotate_for_testing;
  // ISA candidates, static choice first so variant 0 == static dispatch and
  // the pre-timing winner is exactly what IsaMode::kStatic would have run.
  std::vector<Isa> isas{cfg.isa};
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (isa != cfg.isa && IsaSupported(isa)) isas.push_back(isa);
  }
  for (int k = 0; k < kNumOpKinds; ++k) {
    OpState& s = ops_[k];
    const OpKind kind = static_cast<OpKind>(k);
    // The representation axis applies where the dispatcher can actually
    // switch representations per chunk: the dynamic scan source. The fused
    // path routes per-ISA only — each extra fused variant is a whole extra
    // FusedPipeline instantiation whose per-lane state must be Prepared
    // every query and explored every round, and doubling the set for the
    // mode axis costs more in setup + explore tax than the compact/bitmap
    // spread recovers (the fused scan's bitmap conversion is fused into
    // the pipeline either way).
    const bool has_mode_axis = kind == OpKind::kScan;
    for (ScanMode mode : {plan_scan_mode, OtherMode(plan_scan_mode)}) {
      for (Isa isa : isas) s.variants.push_back({isa, mode});
      if (!has_mode_axis) break;
    }
    s.stats = std::vector<VariantStats>(s.variants.size());
    if (kind == OpKind::kFusedWindow) {
      // The fused driver paces its own schedule (it precomputes the whole
      // round/span structure and runs the grid in one dispatch, resolving
      // exploit winners lazily via DecideAndGetWinner), so it never calls
      // Acquire; the lengths are set for completeness only.
      s.explore_len = 1;
      s.exploit_len = 1;
    } else {
      s.explore_len = cfg.adaptive.explore_chunks < 1
                          ? 1
                          : cfg.adaptive.explore_chunks;
      s.exploit_len = cfg.adaptive.exploit_chunks < 1
                          ? 1
                          : cfg.adaptive.exploit_chunks;
    }
  }
}

AdaptiveDispatcher::Ticket AdaptiveDispatcher::Acquire(OpKind kind) {
  OpState& s = ops_[static_cast<int>(kind)];
  const uint64_t v = static_cast<uint64_t>(s.variants.size());
  Ticket t;
  if (v <= 1) {
    // One variant: nothing to time, nothing to switch.
    ChosenCounter(kind, s.variants[0])->Add(1);
    return t;
  }
  const uint64_t explore_span = v * s.explore_len;
  const uint64_t round_len = explore_span + s.exploit_len;
  const uint64_t pos_total = s.seq.fetch_add(1, std::memory_order_relaxed);
  const uint64_t round = pos_total / round_len;
  const uint64_t pos = pos_total % round_len;
  if (pos == 0) {
    // New round: decay the accumulated samples (halve, don't reset). One
    // explore window is a small noisy sample, so the decision blends fresh
    // evidence with a geometrically-fading history; a real phase flip still
    // overturns the history within a couple of rounds. Lanes still
    // reporting the old round race benignly — timing noise, never
    // correctness.
    for (VariantStats& st : s.stats) {
      st.ns.store(st.ns.load(std::memory_order_relaxed) / 2,
                  std::memory_order_relaxed);
      st.tuples.store(st.tuples.load(std::memory_order_relaxed) / 2,
                      std::memory_order_relaxed);
    }
  }
  if (pos < explore_span) {
    // Rotate the explore order by round and seed: the first-explored
    // variant pays any cold-cache cost, so it must not always be the same.
    t.variant = static_cast<int>((pos / s.explore_len + round + seed_) % v);
    t.explore = true;
    g_explore_chunks.Add(1);
  } else {
    if (pos == explore_span) DecideWinner(s, kind, round);
    t.variant = s.winner.load(std::memory_order_relaxed);
  }
  ChosenCounter(kind, s.variants[static_cast<size_t>(t.variant)])->Add(1);
  return t;
}

void AdaptiveDispatcher::Report(OpKind kind, int variant, uint64_t ns,
                                uint64_t tuples) {
  OpState& s = ops_[static_cast<int>(kind)];
  VariantStats& st = s.stats[static_cast<size_t>(variant)];
  // Empty chunks cost ~0ns on every variant; clamp so they cannot divide
  // the round's cost estimate by zero.
  const uint64_t tu = tuples < 1 ? 1 : tuples;
  // Outlier clamp: on a shared host a single preemption (tens of µs to ms)
  // landing inside one timed chunk would otherwise poison the variant's
  // whole round — and, with decay, the next couple of decisions. Once a
  // variant has enough history to know its own scale, cap each sample at
  // 8x its historical per-tuple cost: real variant gaps are a few x, so
  // the clamp only ever bites on scheduling noise.
  const uint64_t hist_ns = st.ns.load(std::memory_order_relaxed);
  const uint64_t hist_tu = st.tuples.load(std::memory_order_relaxed);
  if (hist_tu >= 4 && hist_ns > 0) {
    const double cap =
        8.0 * static_cast<double>(hist_ns) / static_cast<double>(hist_tu) *
        static_cast<double>(tu);
    if (static_cast<double>(ns) > cap) ns = static_cast<uint64_t>(cap);
  }
  st.ns.fetch_add(ns, std::memory_order_relaxed);
  st.tuples.fetch_add(tu, std::memory_order_relaxed);
}

bool AdaptiveDispatcher::DecideWinner(OpState& s, OpKind kind,
                                      uint64_t round) {
  // First lane past the explore span of this round decides; later lanes of
  // the same round see decided_round already advanced and keep the winner.
  uint64_t expected = s.decided_round.load(std::memory_order_relaxed);
  if (expected > round ||
      !s.decided_round.compare_exchange_strong(expected, round + 1,
                                               std::memory_order_relaxed)) {
    return false;
  }
  const int v = static_cast<int>(s.variants.size());
  const int old_winner = s.winner.load(std::memory_order_relaxed);
  int best = old_winner;
  if (rotate_for_testing_) {
    // Deterministic test schedule: force a different winner every round so
    // the byte-identity matrix provably crosses a switch inside a morsel
    // grid regardless of real kernel timings.
    best = static_cast<int>(round % static_cast<uint64_t>(v));
  } else {
    double best_cost = -1.0;
    double incumbent_cost = -1.0;
    for (int i = 0; i < v; ++i) {
      const uint64_t ns = s.stats[i].ns.load(std::memory_order_relaxed);
      const uint64_t tu = s.stats[i].tuples.load(std::memory_order_relaxed);
      if (tu == 0) continue;  // no sample yet: not eligible
      const double cost = static_cast<double>(ns) / static_cast<double>(tu);
      if (i == old_winner) incumbent_cost = cost;
      if (best_cost < 0.0 || cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    // Hysteresis: a challenger must beat the incumbent by >10% to take
    // over. Variants that genuinely tie (tiny kernel inputs at very low
    // selectivity) must not flip-flop on measurement jitter.
    if (best != old_winner && incumbent_cost >= 0.0 &&
        best_cost > 0.9 * incumbent_cost) {
      best = old_winner;
    }
  }
  if (best != old_winner) {
    s.winner.store(best, std::memory_order_relaxed);
    switches_.fetch_add(1, std::memory_order_relaxed);
    g_switches.Add(1);
  }
  (void)kind;
  return true;
}

int AdaptiveDispatcher::DecideAndGetWinner(OpKind kind, uint64_t round) {
  OpState& s = ops_[static_cast<int>(kind)];
  if (DecideWinner(s, kind, round)) {
    // This call closed round `round`: decay the samples so the next round
    // blends fresh evidence with a halved history — the same per-round
    // blending Acquire's pos==0 path applies to the chunk-paced kinds.
    // Lanes still reporting this round's explore chunks race benignly.
    for (VariantStats& st : s.stats) {
      st.ns.store(st.ns.load(std::memory_order_relaxed) / 2,
                  std::memory_order_relaxed);
      st.tuples.store(st.tuples.load(std::memory_order_relaxed) / 2,
                      std::memory_order_relaxed);
    }
  }
  return s.winner.load(std::memory_order_relaxed);
}

void AdaptiveDispatcher::CountChosen(OpKind kind, int variant,
                                     uint64_t chunks) {
  OpState& s = ops_[static_cast<int>(kind)];
  ChosenCounter(kind, s.variants[static_cast<size_t>(variant)])->Add(chunks);
}

void AdaptiveDispatcher::CountExplored(uint64_t chunks) {
  g_explore_chunks.Add(chunks);
}

}  // namespace simddb::exec
