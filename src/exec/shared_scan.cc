#include "exec/shared_scan.h"

#include <cassert>
#include <memory>

#include "obs/metrics.h"
#include "util/task_pool.h"

namespace simddb::exec {
namespace {

obs::Counter g_shared_sweeps("shared_sweeps");    // shared-scan dispatches
obs::Counter g_shared_members("shared_members");  // consumers fed by sweeps

// One member's probe-side chain, assembled like RunDynamic's but driven
// externally by the shared sweep instead of its own Pipeline::Run.
struct Member {
  Query q;  // owns every operator (build + probe side)
  ScanOp* scan = nullptr;
  HashBuildOp* build = nullptr;
  BloomProbeOp* bloom = nullptr;
  HashJoinProbeOp* probe = nullptr;
  GroupBySink* sink = nullptr;
  std::vector<Operator*> chain;  // scan .. sink, in push order
};

}  // namespace

bool SharedProbeSupported(const std::vector<ScanJoinAggregatePlan>& plans) {
  if (plans.empty()) return false;
  const ScanJoinAggregatePlan& first = plans.front();
  if (first.s_fks == nullptr || first.s_fks_c != nullptr) return false;
  for (const ScanJoinAggregatePlan& p : plans) {
    if (p.s_fks != first.s_fks || p.s_vals != first.s_vals ||
        p.n_s != first.n_s) {
      return false;
    }
    if (p.s_fks_c != nullptr || p.s_vals_c != nullptr) return false;
    if (p.partition_fanout != 0) return false;
  }
  return true;
}

std::vector<QueryResult> RunSharedProbe(
    const std::vector<ScanJoinAggregatePlan>& plans, const ExecConfig& cfg) {
  assert(SharedProbeSupported(plans));
  ExecConfig run_cfg = cfg;
  run_cfg.isa = EffectiveIsa(cfg.isa);
  // The sweep interleaves chunks of every member through one dispatch;
  // per-chunk adaptive re-timing assumes one operator per timing stream,
  // so shared members always run the statically-selected variants.
  run_cfg.isa_mode = IsaMode::kStatic;
  run_cfg.dispatcher = nullptr;

  const size_t n_members = plans.size();
  std::vector<std::unique_ptr<Member>> members;
  members.reserve(n_members);

  // Build sides first, member by member: breakers need their barrier phase
  // complete before any probe chunk flows.
  for (const ScanJoinAggregatePlan& plan : plans) {
    auto m = std::make_unique<Member>();
    m->build = AddBuildPipeline(m->q, plan);
    m->q.Run(run_cfg);

    m->scan = m->q.Add<ScanOp>(plan.s_fks, plan.s_vals, plan.n_s, plan.s_lo,
                               plan.s_hi,
                               /*filter_on_vals=*/true, plan.scan_mode);
    m->scan->set_skip_empty(true);
    m->chain.push_back(m->scan);
    if (plan.scan_mode == ScanMode::kBitmap) {
      m->chain.push_back(m->q.Add<MaterializeOp>());
    }
    if (plan.bloom_bits_per_key > 0) {
      m->bloom = m->q.Add<BloomProbeOp>(m->build);
      m->chain.push_back(m->bloom);
    }
    m->probe = m->q.Add<HashJoinProbeOp>(m->build);
    m->chain.push_back(m->probe);
    m->sink = m->q.Add<GroupBySink>(plan.max_groups_hint, /*key_col=*/2,
                                    /*val_col=*/1);
    m->chain.push_back(m->sink);
    members.push_back(std::move(m));
  }

  // One grid for everyone: the probe relation and chunk size are shared, so
  // every member sees exactly the chunk boundaries its solo pipeline would.
  const size_t n_chunks = members.front()->scan->SourceChunks(run_cfg);
  int lanes = TaskPool::LaneCount(n_chunks, run_cfg.threads);
  if (lanes < 1) lanes = 1;
  for (auto& m : members) {
    for (size_t i = 0; i + 1 < m->chain.size(); ++i) {
      m->chain[i]->set_next(m->chain[i + 1]);
    }
    m->chain.back()->set_next(nullptr);
    m->chain.front()->OpenSource(run_cfg, lanes);
    for (size_t i = 1; i < m->chain.size(); ++i) {
      m->chain[i]->Open(run_cfg, lanes, n_chunks);
    }
  }

  if (n_chunks > 0) {
    g_shared_sweeps.Add(1);
    g_shared_members.Add(n_members);
    TaskPool::Get().ParallelFor(
        n_chunks, run_cfg.threads, [&](int worker, size_t chunk) {
          // Back-to-back production keeps the chunk's base-column window
          // cache-hot across members — the one sweep that feeds N chains.
          for (auto& m : members) m->scan->Produce(chunk, worker);
        });
  }
  for (auto& m : members) {
    for (size_t i = 1; i < m->chain.size(); ++i) m->chain[i]->Finish();
  }

  std::vector<QueryResult> results;
  results.reserve(n_members);
  for (size_t i = 0; i < n_members; ++i) {
    Member& m = *members[i];
    QueryResult res;
    res.group_keys = m.sink->keys();
    res.sums = m.sink->sums();
    res.counts = m.sink->counts();
    res.mins = m.sink->mins();
    res.maxs = m.sink->maxs();
    res.rows_build = m.build->build_rows();
    res.rows_scanned = m.scan->rows_out();
    res.rows_bloomed =
        m.bloom != nullptr ? m.bloom->rows_out() : res.rows_scanned;
    res.rows_joined = m.probe->rows_out();
    results.push_back(std::move(res));
  }
  return results;
}

}  // namespace simddb::exec
