#ifndef SIMDDB_EXEC_FUSED_H_
#define SIMDDB_EXEC_FUSED_H_

// Template-fused compiled pipelines — the per-chunk dispatch tax killer.
//
// The dynamic executor (exec/pipeline.h) pays a virtual Push, a Chunk
// visibility round-trip (memcpy into the chunk, bitmap -> selection ->
// Compact gather), and a per-push metrics gate between every pair of
// operators. Those costs are invisible in per-operator benches but add up
// to the delta between bench_ext_query and the hand-composed kernel
// sequence tests/exec_test.cc builds. This layer removes them without a
// JIT: the hot Q3 probe pipeline (scan -> bloom semi-join -> hash-join
// probe -> group-by) is expressed as a compile-time operator composition —
// a variadic FusedPipeline<Source, Stages...> whose stages hand each other
// a FusedBatch (dense column pointers + count, register-resident state, no
// ownership, no visibility machinery) through fully-inlined continuations.
// One instantiation exists per (ISA x scan mode); RunScanJoinAggregate
// selects it at plan-build time and falls back to the dynamic pipeline for
// every other plan shape (see query.cc).
//
// What fusion buys per chunk:
//   - no virtual dispatch: stage hand-off is an inlined template call;
//   - no Chunk materialization: the bitmap-mode scan evaluates the range
//     predicate directly on the base columns and gathers qualifiers from
//     the base columns in one pass (detail::GatherPair, per-ISA TUs) —
//     the dynamic path instead memcpys the whole morsel into a Chunk,
//     converts bitmap -> selection, and gathers every column in Compact;
//   - no per-push metrics scopes: the fused path is timed once per query
//     (exec_fused_ns, see query.cc) instead of once per operator per chunk.
//
// Determinism contract: the fused path reuses the dynamic path's chunk
// grid (ceil(n / chunk_tuples) chunks, ParallelFor over chunk ordinals),
// its per-lane GroupByAggregator partials, and the canonical ascending-key
// result extraction (CanonicalizeGroups), so a fused QueryResult is
// byte-identical to the dynamic pipeline's for every ISA, thread count,
// chunk size, and steal schedule. Pipeline breakers (the hash build that
// feeds this pipeline) still run through the dynamic Chunk machinery —
// only streaming stages are fused.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "agg/group_by.h"
#include "bloom/bloom_filter.h"
#include "compress/column.h"
#include "core/isa.h"
#include "exec/chunk.h"
#include "exec/pipeline.h"
#include "hash/linear_probing.h"
#include "scan/selection_scan.h"
#include "util/aligned_buffer.h"
#include "util/task_pool.h"

namespace simddb::exec {

/// Dense batch view handed between fused stages: up to three column
/// pointers plus a tuple count. Columns live in the producing stage's
/// per-lane scratch (or the base table), so a batch is valid only for the
/// duration of the continuation call that receives it.
struct FusedBatch {
  const uint32_t* col[3] = {nullptr, nullptr, nullptr};
  size_t n = 0;
};

/// Inputs of the fused Q3 probe pipeline (the post-breaker half of the
/// plan): the S base columns and predicate, plus the build side's
/// materialized table and optional Bloom filter.
struct FusedProbeSpec {
  const uint32_t* fks = nullptr;   ///< S foreign keys (batch col 0)
  const uint32_t* vals = nullptr;  ///< S values: filter + aggregate (col 1)
  /// Compressed S columns (compress/column.h). When non-null they replace
  /// the raw pointers: the pipeline sources from FusedScanCompressed in
  /// BOTH scan modes — a compressed source has no base-table copy for the
  /// bitmap duality to elide, so the mode axis degenerates (results are
  /// byte-identical across modes by the executor's determinism contract).
  const compress::CompressedColumn* fks_c = nullptr;
  const compress::CompressedColumn* vals_c = nullptr;
  size_t n = 0;
  uint32_t lo = 0, hi = 0;         ///< inclusive range predicate on vals
  ScanMode scan_mode = ScanMode::kCompact;
  const LinearProbingTable* table = nullptr;  ///< required
  const BloomFilter* bloom = nullptr;         ///< null disables the semi-join
  size_t max_groups_hint = 1024;
};

/// Canonical fused result: group rows in ascending key order (identical to
/// GroupBySink's extraction) plus the cardinalities the dynamic operators
/// report via rows_out().
struct FusedProbeResult {
  std::vector<uint32_t> group_keys;
  std::vector<uint64_t> sums;
  std::vector<uint32_t> counts;
  std::vector<uint32_t> mins;
  std::vector<uint32_t> maxs;
  uint64_t rows_scanned = 0;
  uint64_t rows_bloomed = 0;
  uint64_t rows_joined = 0;
};

namespace detail {

// Fused two-column gather: out{a,b}[i] = {a,b}[sel[i]] for i in [0, cnt).
// Replaces the dynamic path's memcpy-then-Compact round trip with one pass
// over the qualifiers. Backend TUs: fused.cc / fused_avx2.cc /
// fused_avx512.cc (vpgatherdd on both vector ISAs).
void GatherPairScalar(const uint32_t* a, const uint32_t* b,
                      const uint32_t* sel, size_t cnt, uint32_t* out_a,
                      uint32_t* out_b);
void GatherPairAvx2(const uint32_t* a, const uint32_t* b, const uint32_t* sel,
                    size_t cnt, uint32_t* out_a, uint32_t* out_b);
void GatherPairAvx512(const uint32_t* a, const uint32_t* b,
                      const uint32_t* sel, size_t cnt, uint32_t* out_a,
                      uint32_t* out_b);

inline void GatherPair(Isa isa, const uint32_t* a, const uint32_t* b,
                       const uint32_t* sel, size_t cnt, uint32_t* out_a,
                       uint32_t* out_b) {
  if (isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512)) {
    return GatherPairAvx512(a, b, sel, cnt, out_a, out_b);
  }
  if (isa == Isa::kAvx2 && IsaSupported(Isa::kAvx2)) {
    return GatherPairAvx2(a, b, sel, cnt, out_a, out_b);
  }
  return GatherPairScalar(a, b, sel, cnt, out_a, out_b);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Fused stages
// ---------------------------------------------------------------------------
//
// Stage interface (compile-time, no base class):
//   void Open(const ExecConfig& cfg, int lanes);
//   template <typename Next>
//   void Process(const FusedBatch& in, int lane, Next&& next);   // mid-stage
//   void Consume(const FusedBatch& in, int lane);                // terminal
// Sources replace Process with:
//   size_t Chunks(const ExecConfig& cfg) const;
//   template <typename Next>
//   void Produce(size_t chunk, int lane, Next&& next);
// Per-lane rows() counters are plain (non-atomic) — each lane only touches
// its own slot; rows_out() sums them after the ParallelFor joined.

namespace detail {

/// Per-lane emitted-row counters, one cache line apart so concurrent lanes
/// never bounce a line (one increment per chunk, but chunks can be tiny).
class LaneRows {
 public:
  void Open(int lanes) { rows_.assign(static_cast<size_t>(lanes), Slot{}); }
  void Add(int lane, uint64_t n) { rows_[static_cast<size_t>(lane)].v += n; }
  uint64_t Total() const {
    uint64_t t = 0;
    for (const Slot& s : rows_) t += s.v;
    return t;
  }

 private:
  struct alignas(64) Slot {
    uint64_t v = 0;
  };
  std::vector<Slot> rows_;
};

}  // namespace detail

/// Fused source over the paper's SelectionScan kernels: one dense (fk, val)
/// batch per chunk of the deterministic grid, filtered on the val column.
template <Isa kIsa>
class FusedScanCompact {
 public:
  FusedScanCompact(const uint32_t* fks, const uint32_t* vals, size_t n,
                   uint32_t lo, uint32_t hi)
      : fks_(fks), vals_(vals), n_(n), lo_(lo), hi_(hi) {}

  size_t Chunks(const ExecConfig& cfg) const {
    return n_ == 0 ? 0 : (n_ + cfg.chunk_tuples - 1) / cfg.chunk_tuples;
  }

  void Open(const ExecConfig& cfg, int lanes) {
    chunk_tuples_ = cfg.chunk_tuples;
    lanes_.resize(static_cast<size_t>(lanes));
    for (Lane& l : lanes_) {
      l.fk.Reset(ChunkCapacity(chunk_tuples_));
      l.val.Reset(ChunkCapacity(chunk_tuples_));
    }
    rows_.Open(lanes);
  }

  template <typename Next>
  void Produce(size_t chunk, int lane, Next&& next) {
    Lane& l = lanes_[static_cast<size_t>(lane)];
    const size_t b = chunk * chunk_tuples_;
    const size_t sz = std::min(chunk_tuples_, n_ - b);
    // Scan keyed on the val column, carrying the fk as payload — the same
    // kernel call ScanOp makes, minus the Chunk in between.
    const size_t cnt =
        SelectionScan(ScanVariantForIsa(kIsa), vals_ + b, fks_ + b, sz, lo_,
                      hi_, l.val.data(), l.fk.data(), l.val.size());
    rows_.Add(lane, cnt);
    FusedBatch out;
    out.col[0] = l.fk.data();
    out.col[1] = l.val.data();
    out.n = cnt;
    next(out);
  }

  uint64_t rows_out() const { return rows_.Total(); }

 private:
  struct Lane {
    AlignedBuffer<uint32_t> fk, val;
  };
  const uint32_t* fks_;
  const uint32_t* vals_;
  size_t n_;
  uint32_t lo_, hi_;
  size_t chunk_tuples_ = kDefaultChunkTuples;
  std::vector<Lane> lanes_;
  detail::LaneRows rows_;
};

/// Fused source for the bitmap-duality plan shape: the range predicate is
/// evaluated into a lane-local bitmap directly over the base columns (no
/// morsel copy), converted to a selection vector once, and both columns are
/// gathered from the base table in a single fused pass. The dynamic
/// equivalent (ScanOp kBitmap + MaterializeOp) copies the full morsel into
/// a Chunk first and gathers it again in Compact.
template <Isa kIsa>
class FusedScanBitmap {
 public:
  FusedScanBitmap(const uint32_t* fks, const uint32_t* vals, size_t n,
                  uint32_t lo, uint32_t hi)
      : fks_(fks), vals_(vals), n_(n), lo_(lo), hi_(hi) {}

  size_t Chunks(const ExecConfig& cfg) const {
    return n_ == 0 ? 0 : (n_ + cfg.chunk_tuples - 1) / cfg.chunk_tuples;
  }

  void Open(const ExecConfig& cfg, int lanes) {
    chunk_tuples_ = cfg.chunk_tuples;
    lanes_.resize(static_cast<size_t>(lanes));
    for (Lane& l : lanes_) {
      l.fk.Reset(ChunkCapacity(chunk_tuples_));
      l.val.Reset(ChunkCapacity(chunk_tuples_));
      l.sel.Reset(ChunkCapacity(chunk_tuples_));
      l.bitmap.Reset(ChunkBitmapWords(chunk_tuples_) + 1);
    }
    rows_.Open(lanes);
  }

  template <typename Next>
  void Produce(size_t chunk, int lane, Next&& next) {
    Lane& l = lanes_[static_cast<size_t>(lane)];
    const size_t b = chunk * chunk_tuples_;
    const size_t sz = std::min(chunk_tuples_, n_ - b);
    const size_t n_bits =
        RangePredicateBitmap(kIsa, vals_ + b, sz, lo_, hi_, l.bitmap.data());
    size_t cnt = 0;
    if (n_bits != 0) {
      cnt = BitmapToSelection(kIsa, l.bitmap.data(), sz, l.sel.data());
      assert(cnt == n_bits);
      detail::GatherPair(kIsa, fks_ + b, vals_ + b, l.sel.data(), cnt,
                         l.fk.data(), l.val.data());
    }
    rows_.Add(lane, cnt);
    FusedBatch out;
    out.col[0] = l.fk.data();
    out.col[1] = l.val.data();
    out.n = cnt;
    next(out);
  }

  uint64_t rows_out() const { return rows_.Total(); }

 private:
  struct Lane {
    AlignedBuffer<uint32_t> fk, val, sel;
    AlignedBuffer<uint64_t> bitmap;
  };
  const uint32_t* fks_;
  const uint32_t* vals_;
  size_t n_;
  uint32_t lo_, hi_;
  size_t chunk_tuples_ = kDefaultChunkTuples;
  std::vector<Lane> lanes_;
  detail::LaneRows rows_;
};

/// Fused source over compressed base columns: the scan-over-compressed
/// front-end of the fused pipeline, emitting the same dense (fk, val)
/// batches FusedScanCompact would for the decompressed columns. Per chunk
/// it walks the overlapped 1024-value blocks and classifies each against
/// the predicate via the FOR-domain zone map (compress::ClassifyBlock):
/// skipped blocks contribute nothing without their packed bytes being
/// read, all-pass blocks decode straight into the batch columns with no
/// per-value predicate evaluation, and mixed blocks decode into per-lane
/// scratch (cached by block id) and run SelectionScan on the
/// just-unpacked values — the CompressedScanOp protocol minus the Chunk.
template <Isa kIsa>
class FusedScanCompressed {
 public:
  FusedScanCompressed(const compress::CompressedColumn* fks,
                      const compress::CompressedColumn* vals, uint32_t lo,
                      uint32_t hi)
      : fks_(fks), vals_(vals), n_(fks->size()), lo_(lo), hi_(hi) {
    assert(fks_->size() == vals_->size());
  }

  size_t Chunks(const ExecConfig& cfg) const {
    return n_ == 0 ? 0 : (n_ + cfg.chunk_tuples - 1) / cfg.chunk_tuples;
  }

  void Open(const ExecConfig& cfg, int lanes) {
    chunk_tuples_ = cfg.chunk_tuples;
    lanes_.resize(static_cast<size_t>(lanes));
    for (Lane& l : lanes_) {
      l.fk.Reset(ChunkCapacity(chunk_tuples_));
      l.val.Reset(ChunkCapacity(chunk_tuples_));
      l.fk_buf.Reset(compress::PackedCapacity(compress::kBlockTuples));
      l.val_buf.Reset(compress::PackedCapacity(compress::kBlockTuples));
      l.fk_block = SIZE_MAX;
      l.val_block = SIZE_MAX;
    }
    rows_.Open(lanes);
  }

  template <typename Next>
  void Produce(size_t chunk, int lane, Next&& next) {
    Lane& l = lanes_[static_cast<size_t>(lane)];
    const size_t begin = chunk * chunk_tuples_;
    const size_t end = begin + std::min(chunk_tuples_, n_ - begin);
    const size_t cap = l.val.size();
    size_t cnt = 0;
    for (size_t pos = begin; pos < end;) {
      const size_t b = pos / compress::kBlockTuples;
      const size_t block_base = b * compress::kBlockTuples;
      const size_t off = pos - block_base;
      const size_t take =
          std::min(end, block_base + vals_->block_rows(b)) - pos;
      const compress::BlockMeta& m = vals_->block_meta(b);
      const compress::BlockClass cls = compress::ClassifyBlock(m, lo_, hi_);
      if (cls == compress::BlockClass::kSkip) {
        compress::BlocksSkipped().Add(1);
      } else if (cls == compress::BlockClass::kAllPass) {
        compress::BlocksAllPass().Add(1);
        if (take == vals_->block_rows(b)) {
          fks_->DecodeBlock(kIsa, b, l.fk.data() + cnt, cap - cnt);
          vals_->DecodeBlock(kIsa, b, l.val.data() + cnt, cap - cnt);
        } else {
          std::memcpy(l.fk.data() + cnt, DecodedFk(l, b) + off,
                      take * sizeof(uint32_t));
          std::memcpy(l.val.data() + cnt, DecodedVal(l, b) + off,
                      take * sizeof(uint32_t));
        }
        cnt += take;
      } else {
        cnt += SelectionScan(ScanVariantForIsa(kIsa), DecodedVal(l, b) + off,
                             DecodedFk(l, b) + off, take, lo_, hi_,
                             l.val.data() + cnt, l.fk.data() + cnt,
                             cap - cnt);
      }
      pos += take;
    }
    rows_.Add(lane, cnt);
    FusedBatch out;
    out.col[0] = l.fk.data();
    out.col[1] = l.val.data();
    out.n = cnt;
    next(out);
  }

  uint64_t rows_out() const { return rows_.Total(); }

 private:
  struct Lane {
    AlignedBuffer<uint32_t> fk, val;        // batch columns
    AlignedBuffer<uint32_t> fk_buf, val_buf;  // decoded-block cache
    size_t fk_block = SIZE_MAX, val_block = SIZE_MAX;
  };

  const uint32_t* DecodedFk(Lane& l, size_t b) {
    if (l.fk_block != b) {
      fks_->DecodeBlock(kIsa, b, l.fk_buf.data(), l.fk_buf.size());
      l.fk_block = b;
    }
    return l.fk_buf.data();
  }
  const uint32_t* DecodedVal(Lane& l, size_t b) {
    if (l.val_block != b) {
      vals_->DecodeBlock(kIsa, b, l.val_buf.data(), l.val_buf.size());
      l.val_block = b;
    }
    return l.val_buf.data();
  }

  const compress::CompressedColumn* fks_;
  const compress::CompressedColumn* vals_;
  size_t n_;
  uint32_t lo_, hi_;
  size_t chunk_tuples_ = kDefaultChunkTuples;
  std::vector<Lane> lanes_;
  detail::LaneRows rows_;
};

/// Fused Bloom semi-join. A null filter (bloom disabled, or empty build
/// side) forwards the batch untouched — a predicted branch per chunk, not a
/// virtual call.
template <Isa kIsa>
class FusedBloomProbe {
 public:
  explicit FusedBloomProbe(const BloomFilter* filter) : filter_(filter) {}

  void Open(const ExecConfig& cfg, int lanes) {
    lanes_.resize(static_cast<size_t>(lanes));
    for (Lane& l : lanes_) {
      l.fk.Reset(ChunkCapacity(cfg.chunk_tuples));
      l.val.Reset(ChunkCapacity(cfg.chunk_tuples));
    }
    rows_.Open(lanes);
  }

  template <typename Next>
  void Process(const FusedBatch& in, int lane, Next&& next) {
    if (filter_ == nullptr) {
      rows_.Add(lane, in.n);
      next(in);
      return;
    }
    Lane& l = lanes_[static_cast<size_t>(lane)];
    const size_t cnt = filter_->Probe(kIsa, in.col[0], in.col[1], in.n,
                                      l.fk.data(), l.val.data());
    rows_.Add(lane, cnt);
    FusedBatch out;
    out.col[0] = l.fk.data();
    out.col[1] = l.val.data();
    out.n = cnt;
    next(out);
  }

  uint64_t rows_out() const { return rows_.Total(); }

 private:
  struct Lane {
    AlignedBuffer<uint32_t> fk, val;
  };
  const BloomFilter* filter_;
  std::vector<Lane> lanes_;
  detail::LaneRows rows_;
};

/// Fused hash-join probe: (fk, val) batches become (key, s_val, r_attr)
/// batches, one row per match (build keys unique — key/FK join).
template <Isa kIsa>
class FusedJoinProbe {
 public:
  explicit FusedJoinProbe(const LinearProbingTable* table) : table_(table) {}

  void Open(const ExecConfig& cfg, int lanes) {
    lanes_.resize(static_cast<size_t>(lanes));
    for (Lane& l : lanes_) {
      l.key.Reset(ChunkCapacity(cfg.chunk_tuples));
      l.sval.Reset(ChunkCapacity(cfg.chunk_tuples));
      l.rpay.Reset(ChunkCapacity(cfg.chunk_tuples));
    }
    rows_.Open(lanes);
  }

  template <typename Next>
  void Process(const FusedBatch& in, int lane, Next&& next) {
    assert(table_ != nullptr && "fused probe ran before the build broke");
    Lane& l = lanes_[static_cast<size_t>(lane)];
    const size_t cnt =
        table_->Probe(kIsa, in.col[0], in.col[1], in.n, l.key.data(),
                      l.sval.data(), l.rpay.data());
    assert(cnt <= l.key.size());
    rows_.Add(lane, cnt);
    FusedBatch out;
    out.col[0] = l.key.data();
    out.col[1] = l.sval.data();
    out.col[2] = l.rpay.data();
    out.n = cnt;
    next(out);
  }

  uint64_t rows_out() const { return rows_.Total(); }

 private:
  struct Lane {
    AlignedBuffer<uint32_t> key, sval, rpay;
  };
  const LinearProbingTable* table_;
  std::vector<Lane> lanes_;
  detail::LaneRows rows_;
};

/// Terminal fused stage: per-lane GroupByAggregator partials (the same
/// representation GroupBySink keeps), canonicalized after the run. With a
/// non-null `shared` vector the stage accumulates into externally owned
/// partials instead — the adaptive driver hands the same vector to every
/// per-ISA runner so explore/exploit windows of one query aggregate into one
/// state (windows run sequentially; lanes within a window are distinct).
template <Isa kIsa>
class FusedGroupBy {
 public:
  FusedGroupBy(size_t max_groups_hint, int key_col, int val_col,
               std::vector<std::unique_ptr<GroupByAggregator>>* shared =
                   nullptr)
      : max_groups_hint_(max_groups_hint),
        key_col_(key_col),
        val_col_(val_col),
        shared_(shared) {}

  void Open(const ExecConfig& cfg, int lanes) {
    auto& p = partials();
    if (p.size() < static_cast<size_t>(lanes)) {
      p.resize(static_cast<size_t>(lanes));
    }
    // Only fill null slots: when partials are shared, the first runner's
    // Open allocates and the rest adopt the same aggregators.
    for (auto& q : p) {
      if (q == nullptr) {
        q = std::make_unique<GroupByAggregator>(max_groups_hint_, cfg.seed);
      }
    }
  }

  void Consume(const FusedBatch& in, int lane) {
    partials()[static_cast<size_t>(lane)]->Accumulate(
        kIsa, in.col[key_col_], in.col[val_col_], in.n);
  }

  /// Merges the lane partials and extracts the canonical ascending-key
  /// result rows (exactly GroupBySink::Finish's representation).
  void Finalize(FusedProbeResult* res) {
    CanonicalizeGroups(kIsa, partials(), &res->group_keys, &res->sums,
                       &res->counts, &res->mins, &res->maxs);
  }

 private:
  std::vector<std::unique_ptr<GroupByAggregator>>& partials() {
    return shared_ != nullptr ? *shared_ : owned_;
  }

  size_t max_groups_hint_;
  int key_col_, val_col_;
  std::vector<std::unique_ptr<GroupByAggregator>>* shared_;
  std::vector<std::unique_ptr<GroupByAggregator>> owned_;
};

// ---------------------------------------------------------------------------
// FusedPipeline
// ---------------------------------------------------------------------------

/// Compile-time operator chain: a source followed by mid-stages and one
/// terminal stage. Run drives the source's deterministic chunk grid over
/// the shared TaskPool; each chunk flows through every stage via inlined
/// continuations — no virtual calls, no Chunks, no per-stage timers.
template <typename Source, typename... Stages>
class FusedPipeline {
  static_assert(sizeof...(Stages) >= 1, "a pipeline ends in a terminal stage");

 public:
  FusedPipeline(Source source, Stages... stages)
      : source_(std::move(source)), stages_(std::move(stages)...) {}

  void Run(const ExecConfig& cfg) {
    Prepare(cfg);
    RunWindow(cfg, 0, n_chunks_);
  }

  /// Sizes the per-lane state for the full grid without running anything.
  /// The adaptive driver Prepares every per-ISA runner once, then routes
  /// windows of the shared grid to them via RunWindow.
  void Prepare(const ExecConfig& cfg) {
    n_chunks_ = source_.Chunks(cfg);
    lanes_ = TaskPool::LaneCount(n_chunks_, cfg.threads);
    if (lanes_ < 1) lanes_ = 1;
    source_.Open(cfg, lanes_);
    std::apply([&](auto&... s) { (s.Open(cfg, lanes_), ...); }, stages_);
  }

  /// Runs chunks [begin, end) of the deterministic grid, morsel-parallel.
  /// The fan-out is capped at the Prepare-time lane count so worker ids stay
  /// within the per-lane state Open allocated.
  void RunWindow(const ExecConfig& cfg, size_t begin, size_t end) {
    (void)cfg;
    end = std::min(end, n_chunks_);
    if (begin >= end) return;
    TaskPool::Get().ParallelFor(
        end - begin, lanes_, [this, begin](int lane, size_t i) {
          RunChunk(begin + i, lane);
        });
  }

  /// Runs one chunk on an explicit lane, from inside a caller-owned
  /// ParallelFor. The adaptive driver batches the explore windows of every
  /// variant into one dispatch, so it needs a per-chunk entry that does NOT
  /// spawn a nested (inlined, lane-0) dispatch — the lane must come from the
  /// outer job or concurrent lanes would share per-lane state.
  void RunChunk(size_t chunk, int lane) {
    source_.Produce(chunk, lane, [this, lane](const FusedBatch& b) {
      Apply<0>(b, lane);
    });
  }

  int lanes() const { return lanes_; }

  size_t n_chunks() const { return n_chunks_; }

  Source& source() { return source_; }
  const Source& source() const { return source_; }
  template <size_t I>
  auto& stage() {
    return std::get<I>(stages_);
  }
  template <size_t I>
  const auto& stage() const {
    return std::get<I>(stages_);
  }

 private:
  template <size_t I>
  void Apply(const FusedBatch& b, int lane) {
    if constexpr (I + 1 == sizeof...(Stages)) {
      std::get<I>(stages_).Consume(b, lane);
    } else {
      std::get<I>(stages_).Process(b, lane, [this, lane](const FusedBatch& nb) {
        Apply<I + 1>(nb, lane);
      });
    }
  }

  Source source_;
  std::tuple<Stages...> stages_;
  size_t n_chunks_ = 0;
  int lanes_ = 1;
};

// ---------------------------------------------------------------------------
// Instantiation surface
// ---------------------------------------------------------------------------

/// Runs the fused Q3 probe pipeline for one ISA (compile-time) and one scan
/// mode (selected inside). Instantiated once per ISA in fused.cc /
/// fused_avx2.cc / fused_avx512.cc so each backend's inner loops compile
/// under its own ISA flags.
template <Isa kIsa>
FusedProbeResult RunFusedProbe(const FusedProbeSpec& spec,
                               const ExecConfig& cfg);

extern template FusedProbeResult RunFusedProbe<Isa::kScalar>(
    const FusedProbeSpec& spec, const ExecConfig& cfg);
extern template FusedProbeResult RunFusedProbe<Isa::kAvx2>(
    const FusedProbeSpec& spec, const ExecConfig& cfg);
extern template FusedProbeResult RunFusedProbe<Isa::kAvx512>(
    const FusedProbeSpec& spec, const ExecConfig& cfg);

/// Runtime entry: dispatches cfg.isa to its instantiation (one switch per
/// pipeline, not per chunk) and counts `pipelines_fused`. With
/// cfg.dispatcher set (IsaMode::kAdaptive), routes explore/exploit windows
/// of the shared chunk grid across the per-ISA instantiations instead.
FusedProbeResult RunFusedProbePipeline(const FusedProbeSpec& spec,
                                       const ExecConfig& cfg);

/// Type-erased handle to one (ISA, scan-mode) fused pipeline instantiation.
/// The adaptive driver keeps one runner per variant, Prepares them all over
/// the same grid and shared group-by partials, and pays one virtual call
/// per *window* (not per chunk) to route between them.
class FusedProbeRunner {
 public:
  virtual ~FusedProbeRunner() = default;
  virtual void Prepare(const ExecConfig& cfg) = 0;
  virtual void RunWindow(const ExecConfig& cfg, size_t begin, size_t end) = 0;
  /// One chunk on an explicit lane of a caller-owned dispatch (see
  /// FusedPipeline::RunChunk).
  virtual void RunChunk(size_t chunk, int lane) = 0;
  virtual int lanes() const = 0;
  virtual uint64_t rows_scanned() const = 0;
  virtual uint64_t rows_bloomed() const = 0;
  virtual uint64_t rows_joined() const = 0;
};

/// Builds the runner for one compile-time ISA with the given scan
/// representation (overrides spec.scan_mode — the adaptive variant list
/// crosses both axes). Instantiated in the per-ISA TUs like RunFusedProbe.
template <Isa kIsa>
std::unique_ptr<FusedProbeRunner> MakeFusedProbeRunner(
    const FusedProbeSpec& spec, ScanMode scan_mode,
    std::vector<std::unique_ptr<GroupByAggregator>>* shared_partials);

extern template std::unique_ptr<FusedProbeRunner>
MakeFusedProbeRunner<Isa::kScalar>(
    const FusedProbeSpec&, ScanMode,
    std::vector<std::unique_ptr<GroupByAggregator>>*);
extern template std::unique_ptr<FusedProbeRunner>
MakeFusedProbeRunner<Isa::kAvx2>(
    const FusedProbeSpec&, ScanMode,
    std::vector<std::unique_ptr<GroupByAggregator>>*);
extern template std::unique_ptr<FusedProbeRunner>
MakeFusedProbeRunner<Isa::kAvx512>(
    const FusedProbeSpec&, ScanMode,
    std::vector<std::unique_ptr<GroupByAggregator>>*);

namespace detail {

/// Shared shape driver for the RunFusedProbe instantiations.
template <Isa kIsa, typename Source>
FusedProbeResult RunFusedProbeShape(Source source, const FusedProbeSpec& spec,
                                    const ExecConfig& cfg) {
  FusedPipeline<Source, FusedBloomProbe<kIsa>, FusedJoinProbe<kIsa>,
                FusedGroupBy<kIsa>>
      pipeline(std::move(source), FusedBloomProbe<kIsa>(spec.bloom),
               FusedJoinProbe<kIsa>(spec.table),
               FusedGroupBy<kIsa>(spec.max_groups_hint, /*key_col=*/2,
                                  /*val_col=*/1));
  pipeline.Run(cfg);
  FusedProbeResult res;
  res.rows_scanned = pipeline.source().rows_out();
  res.rows_bloomed = pipeline.template stage<0>().rows_out();
  res.rows_joined = pipeline.template stage<1>().rows_out();
  pipeline.template stage<2>().Finalize(&res);
  return res;
}

/// FusedProbeRunner over one concrete pipeline instantiation. The virtual
/// hop costs once per window; everything inside stays fully inlined.
template <Isa kIsa, typename Source>
class FusedProbeRunnerImpl final : public FusedProbeRunner {
 public:
  FusedProbeRunnerImpl(
      Source source, const FusedProbeSpec& spec,
      std::vector<std::unique_ptr<GroupByAggregator>>* shared_partials)
      : pipeline_(std::move(source), FusedBloomProbe<kIsa>(spec.bloom),
                  FusedJoinProbe<kIsa>(spec.table),
                  FusedGroupBy<kIsa>(spec.max_groups_hint, /*key_col=*/2,
                                     /*val_col=*/1, shared_partials)) {}

  void Prepare(const ExecConfig& cfg) override { pipeline_.Prepare(cfg); }
  void RunWindow(const ExecConfig& cfg, size_t begin, size_t end) override {
    pipeline_.RunWindow(cfg, begin, end);
  }
  void RunChunk(size_t chunk, int lane) override {
    pipeline_.RunChunk(chunk, lane);
  }
  int lanes() const override { return pipeline_.lanes(); }
  uint64_t rows_scanned() const override {
    return pipeline_.source().rows_out();
  }
  uint64_t rows_bloomed() const override {
    return pipeline_.template stage<0>().rows_out();
  }
  uint64_t rows_joined() const override {
    return pipeline_.template stage<1>().rows_out();
  }

 private:
  FusedPipeline<Source, FusedBloomProbe<kIsa>, FusedJoinProbe<kIsa>,
                FusedGroupBy<kIsa>>
      pipeline_;
};

template <Isa kIsa>
FusedProbeResult RunFusedProbeImpl(const FusedProbeSpec& spec,
                                   const ExecConfig& cfg) {
  if (spec.fks_c != nullptr) {
    // Compressed source: one shape serves both scan modes (see
    // FusedProbeSpec::fks_c).
    return RunFusedProbeShape<kIsa>(
        FusedScanCompressed<kIsa>(spec.fks_c, spec.vals_c, spec.lo, spec.hi),
        spec, cfg);
  }
  if (spec.scan_mode == ScanMode::kBitmap) {
    return RunFusedProbeShape<kIsa>(
        FusedScanBitmap<kIsa>(spec.fks, spec.vals, spec.n, spec.lo, spec.hi),
        spec, cfg);
  }
  return RunFusedProbeShape<kIsa>(
      FusedScanCompact<kIsa>(spec.fks, spec.vals, spec.n, spec.lo, spec.hi),
      spec, cfg);
}

}  // namespace detail

// Defined here so each backend TU can anchor its explicit instantiation
// (the extern template declarations above suppress implicit ones).
template <Isa kIsa>
FusedProbeResult RunFusedProbe(const FusedProbeSpec& spec,
                               const ExecConfig& cfg) {
  return detail::RunFusedProbeImpl<kIsa>(spec, cfg);
}

template <Isa kIsa>
std::unique_ptr<FusedProbeRunner> MakeFusedProbeRunner(
    const FusedProbeSpec& spec, ScanMode scan_mode,
    std::vector<std::unique_ptr<GroupByAggregator>>* shared_partials) {
  if (spec.fks_c != nullptr) {
    // Compressed source: the scan-mode axis degenerates (see
    // FusedProbeSpec::fks_c), so every adaptive mode variant routes to the
    // same per-ISA compressed pipeline.
    return std::make_unique<
        detail::FusedProbeRunnerImpl<kIsa, FusedScanCompressed<kIsa>>>(
        FusedScanCompressed<kIsa>(spec.fks_c, spec.vals_c, spec.lo, spec.hi),
        spec, shared_partials);
  }
  if (scan_mode == ScanMode::kBitmap) {
    return std::make_unique<
        detail::FusedProbeRunnerImpl<kIsa, FusedScanBitmap<kIsa>>>(
        FusedScanBitmap<kIsa>(spec.fks, spec.vals, spec.n, spec.lo, spec.hi),
        spec, shared_partials);
  }
  return std::make_unique<
      detail::FusedProbeRunnerImpl<kIsa, FusedScanCompact<kIsa>>>(
      FusedScanCompact<kIsa>(spec.fks, spec.vals, spec.n, spec.lo, spec.hi),
      spec, shared_partials);
}

}  // namespace simddb::exec

#endif  // SIMDDB_EXEC_FUSED_H_
