#ifndef SIMDDB_EXEC_ADAPTIVE_H_
#define SIMDDB_EXEC_ADAPTIVE_H_

// Micro-adaptive operator selection (Vectorwise-style micro-adaptivity).
//
// BENCH_query.json shows the static per-query ISA choice is a real
// performance bug: gather/compress-heavy kernels (bloom probe, join probe)
// invert their scalar-vs-vector ranking with input selectivity — at 50%
// fact selectivity the AVX2 bloom probe is >2x slower than scalar, while at
// 1-10% it wins — exactly the input dependence the source paper predicts.
// No plan-time choice is right for a phase-changing input, so the executor
// re-times its variants on live chunks and switches mid-query.
//
// The AdaptiveDispatcher keeps one schedule per operator kind (scan, bloom
// probe, join probe, group-by, fused window, build). Each schedule cycles
// through rounds of
//
//   explore:  K chunks per variant, timed (obs::ThreadCpuNs around the
//             kernel call only — CPU time, so a preempted lane doesn't
//             charge the stall to the variant it was running), accumulated
//             as ns/tuple per variant;
//   exploit:  M chunks on the round's winner, untimed.
//
// Variants are {scalar, AVX2, AVX-512} filtered by host capability, crossed
// with {compact, bitmap} for the dynamic scan source (the fused path routes
// per-ISA only: an extra fused variant is a whole extra FusedPipeline whose
// per-lane state must be Prepared every query and explored every round). Re-exploring every round tracks phase changes (selectivity ramps,
// clustered keys); the explore order rotates by round and by cfg.seed so
// repeated runs do not always charge the same variant for the cold chunk.
// Timing statistics DECAY at round boundaries (halved, not reset): a single
// explore window is a small, noisy sample — especially the fused whole-window
// wall times — so the winner decision weighs fresh evidence against a
// geometrically-fading history instead of betting M chunks on two
// measurements. A phase flip still overturns the history within ~2 rounds.
// The incumbent winner also gets 10% hysteresis: near-equal variants (common
// at very low selectivity, where every kernel sees a handful of tuples) must
// not flip-flop on measurement jitter. Individual samples are clamped at 8x
// the variant's historical per-tuple cost — on a shared host one preemption
// inside a timed chunk would otherwise poison a whole round's decision.
//
// Two attribution rules keep the greedy per-op decisions honest. (1) A
// bitmap-mode scan defers its compaction cost to whichever downstream
// operator first Compacts the chunk, so in adaptive mode the scan compacts
// inside its own timed scope — the representation axis is judged on its
// end-to-end per-chunk cost, not on the cheap half it would externalize.
// (2) The build-side table/bloom inserts (historically the slowest phase on
// AVX-512) are re-timed per block in HashBuildOp::Finish rather than pinned
// to the anchor ISA.
//
// Correctness is free: every variant of every operator produces the same
// canonical result by construction (the exec_test.cc / exec_adaptive_test.cc
// matrices prove byte-identity across ISAs, scan modes, threads, and chunk
// sizes), so the dispatcher can switch on any chunk boundary — including in
// the middle of a morsel-parallel ParallelFor — without any barrier. All
// dispatcher state is relaxed atomics: concurrent lanes may race on the
// timing statistics, which can only perturb *which* variant wins, never what
// the query returns (benign by design, and clean under TSan).
//
// Observability: `adaptive_switches` counts winner changes, `explore_chunks`
// counts timed chunks, and the per-operator `chosen_<op>_<variant>` counters
// histogram which variant each chunk actually ran — all exported into bench
// JSONL rows by the registry like every other instrument.

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/isa.h"
#include "exec/pipeline.h"
#include "obs/metrics.h"

namespace simddb::exec {

/// Operator kinds with their own adaptive schedule. kFusedWindow routes the
/// per-ISA FusedPipeline instantiations at span granularity: the fused
/// driver (fused.cc) precomputes its round/span structure, runs the whole
/// grid in one dispatch, and resolves each exploit span's winner lazily via
/// DecideAndGetWinner instead of calling Acquire per chunk.
enum class OpKind : int {
  kScan = 0,
  kBloomProbe = 1,
  kJoinProbe = 2,
  kGroupBy = 3,
  kFusedWindow = 4,
  /// Build-side table insert + bloom add, re-timed in chunk-sized blocks
  /// inside HashBuildOp::Finish. The blocks run sequentially in seq order,
  /// so switching the ISA per block never reorders insertions.
  kBuild = 5,
};
inline constexpr int kNumOpKinds = 6;

/// One selectable implementation of an operator kind. scan_mode is
/// meaningful for kScan only (the representation axis); the other kinds —
/// including kFusedWindow, which routes per-ISA — carry the plan's mode
/// unchanged.
struct AdaptiveVariant {
  Isa isa = Isa::kScalar;
  ScanMode scan_mode = ScanMode::kCompact;
};

class AdaptiveDispatcher {
 public:
  /// Builds the per-kind variant lists from the host's supported ISAs.
  /// Variant 0 of every kind is the static choice (cfg.isa, plan scan
  /// mode), so the initial winner before any timing equals static dispatch.
  AdaptiveDispatcher(const ExecConfig& cfg, ScanMode plan_scan_mode);

  struct Ticket {
    int variant = 0;    ///< index into variants(kind)
    bool explore = false;  ///< true: caller times the kernel and Reports
  };

  /// Claims the next schedule slot for one chunk (or one fused window) of
  /// `kind`. Thread-safe; called concurrently by worker lanes.
  Ticket Acquire(OpKind kind);

  /// Records an explore measurement. `tuples` normalizes the cost (chunk
  /// sizes differ at grid tails); pass the kernel's input tuple count, or
  /// the window's chunk count for kFusedWindow.
  void Report(OpKind kind, int variant, uint64_t ns, uint64_t tuples);

  /// Deterministic explore-slot variant for schedules the caller paces
  /// itself (the fused driver precomputes its whole round/span structure
  /// and runs it in one dispatch, so it cannot thread Acquire's positional
  /// counter through the lanes). Same rotation as Acquire's explore slots.
  int ExploreVariant(OpKind kind, uint64_t round, int slot) const {
    const OpState& s = ops_[static_cast<int>(kind)];
    const uint64_t v = static_cast<uint64_t>(s.variants.size());
    if (v <= 1) return 0;
    return static_cast<int>((static_cast<uint64_t>(slot) + round + seed_) % v);
  }

  /// Decides round `round`'s winner from the samples reported so far and
  /// returns it; idempotent per round (first caller decides, later callers
  /// read). The stats decay happens here — once per decided round — so a
  /// self-paced schedule gets the same halve-per-round blending Acquire's
  /// pos==0 path gives the chunk-paced kinds.
  int DecideAndGetWinner(OpKind kind, uint64_t round);

  /// Bumps the chosen-variant histogram: self-paced schedules count their
  /// own chunks (Acquire does this for the chunk-paced kinds).
  void CountChosen(OpKind kind, int variant, uint64_t chunks);
  /// Bumps the explore_chunks instrument for self-paced explore work.
  void CountExplored(uint64_t chunks);

  const AdaptiveVariant& variant(OpKind kind, int v) const {
    return ops_[static_cast<int>(kind)].variants[static_cast<size_t>(v)];
  }
  int num_variants(OpKind kind) const {
    return static_cast<int>(ops_[static_cast<int>(kind)].variants.size());
  }
  /// The current exploit choice (for tests and diagnostics).
  const AdaptiveVariant& current(OpKind kind) const {
    const OpState& s = ops_[static_cast<int>(kind)];
    return s.variants[static_cast<size_t>(
        s.winner.load(std::memory_order_relaxed))];
  }
  uint64_t switches() const {
    return switches_.load(std::memory_order_relaxed);
  }

 private:
  struct VariantStats {
    std::atomic<uint64_t> ns{0};
    std::atomic<uint64_t> tuples{0};
    VariantStats() = default;
    VariantStats(const VariantStats&) {}
  };
  struct OpState {
    std::vector<AdaptiveVariant> variants;
    std::vector<VariantStats> stats;  ///< current round's explore samples
    std::atomic<uint64_t> seq{0};     ///< schedule position (chunks/windows)
    std::atomic<int> winner{0};
    std::atomic<uint64_t> decided_round{0};  ///< last round a winner was picked
    /// Schedule lengths in Acquire units: explore_len slots per variant,
    /// then exploit_len slots on the winner.
    uint32_t explore_len = 1;
    uint32_t exploit_len = 1;
  };

  /// Returns true when this call won the once-per-round decision race.
  bool DecideWinner(OpState& s, OpKind kind, uint64_t round);

  OpState ops_[kNumOpKinds];
  uint64_t seed_ = 0;
  bool rotate_for_testing_ = false;
  std::atomic<uint64_t> switches_{0};
};

/// RAII helper for the dynamic operators: resolves the effective (isa,
/// scan mode) for one chunk and, on explore tickets, times the enclosed
/// kernel call and reports it. Construct immediately before the kernel,
/// call set_tuples with the kernel's input size, destroy right after.
class AdaptiveOpScope {
 public:
  AdaptiveOpScope(AdaptiveDispatcher* d, OpKind kind, Isa static_isa,
                  ScanMode static_mode)
      : d_(d), kind_(kind), isa_(static_isa), mode_(static_mode) {
    if (d_ == nullptr) return;
    ticket_ = d_->Acquire(kind_);
    const AdaptiveVariant& v = d_->variant(kind_, ticket_.variant);
    isa_ = v.isa;
    mode_ = v.scan_mode;
    if (ticket_.explore) start_ns_ = obs::ThreadCpuNs();
  }
  ~AdaptiveOpScope() {
    if (d_ != nullptr && ticket_.explore) {
      d_->Report(kind_, ticket_.variant, obs::ThreadCpuNs() - start_ns_,
                 tuples_);
    }
  }
  AdaptiveOpScope(const AdaptiveOpScope&) = delete;
  AdaptiveOpScope& operator=(const AdaptiveOpScope&) = delete;

  Isa isa() const { return isa_; }
  ScanMode scan_mode() const { return mode_; }
  void set_tuples(uint64_t n) { tuples_ = n; }

 private:
  AdaptiveDispatcher* d_;
  OpKind kind_;
  Isa isa_;
  ScanMode mode_;
  AdaptiveDispatcher::Ticket ticket_{};
  uint64_t start_ns_ = 0;
  uint64_t tuples_ = 0;
};

}  // namespace simddb::exec

#endif  // SIMDDB_EXEC_ADAPTIVE_H_
