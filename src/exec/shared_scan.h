#ifndef SIMDDB_EXEC_SHARED_SCAN_H_
#define SIMDDB_EXEC_SHARED_SCAN_H_

// Shared scans: one sweep over a hot base table feeds N concurrent
// consumers' probe pipelines.
//
// When N sessions scan the same probe relation, running N independent
// pipelines pulls the base columns through memory N times. RunSharedProbe
// instead drives ONE deterministic chunk grid over the shared columns and,
// per chunk, produces into every member's own ScanOp back to back — the
// first member's scan pulls the chunk into cache, the remaining members'
// scans (and predicates) hit L1/L2. Every member keeps its own operator
// chain ([materialize] -> [bloom] -> join probe -> group-by sink) and its
// own build side, so each member's QueryResult is byte-identical to running
// its plan alone: sharing changes memory traffic, never results.
//
// Member scans run in skip-empty mode (ScanOp::set_skip_empty): a chunk
// where a member's predicate selects nothing is dropped at the scan instead
// of flowing through that member's chain. With selective / windowed
// predicates the shared sweep therefore pushes far fewer chunks than N
// independent scans — the `chunks_pushed` reduction the serving bench
// gates on (scripts/bench_baselines.json).

#include <vector>

#include "exec/query.h"

namespace simddb::exec {

/// True when every plan can join a shared sweep: identical raw probe-side
/// base columns (same pointers and row count — catalog tables guarantee
/// this), uncompressed, and no probe-side partition barrier. Build sides
/// and predicates may differ freely.
bool SharedProbeSupported(const std::vector<ScanJoinAggregatePlan>& plans);

/// Runs all plans with one probe-relation sweep (see file comment).
/// Precondition: SharedProbeSupported(plans). Build pipelines run first,
/// member by member; then a single TaskPool dispatch walks the common chunk
/// grid, producing each chunk into every member's chain. Results are
/// returned in plan order and are byte-identical to per-plan
/// RunScanJoinAggregate with PipelineMode::kDynamic.
std::vector<QueryResult> RunSharedProbe(
    const std::vector<ScanJoinAggregatePlan>& plans, const ExecConfig& cfg);

}  // namespace simddb::exec

#endif  // SIMDDB_EXEC_SHARED_SCAN_H_
