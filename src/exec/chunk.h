#ifndef SIMDDB_EXEC_CHUNK_H_
#define SIMDDB_EXEC_CHUNK_H_

// Fixed-capacity column chunk — the unit of data flow in the push-based
// execution subsystem (src/exec/). A chunk carries up to kMaxColumns 32-bit
// columns (column 0 is the key by convention) plus one of three tuple-
// visibility representations, the selection-vector/bitmap duality of
// TPL-style vectorized engines:
//
//   kDense      every tuple in [0, size) is active (the common case after a
//               compacting operator — selection scan, bloom probe, join).
//   kSelection  a dense ascending vector of active tuple indexes; the
//               representation SIMD gathers want.
//   kBitmap     one bit per tuple; the representation SIMD predicates
//               produce for free (AVX-512 compare masks concatenate into
//               bitmap words with no extra work).
//
// Converters between the two sparse forms are SIMD-dispatched:
// bitmap -> selection uses positional population counts over 8-word blocks
// to precompute per-word output offsets ("Faster Positional Population
// Counts", PAPERS.md) followed by per-16-bit-group compressed index stores
// (AVX-512 vcompressstoreu; AVX2 uses the App. D permutation-table
// selective store; scalar isolates bits with k &= k - 1). The offsets form
// a prefix sum ("Parallel Prefix Sum with SIMD"), so the groups of a block
// are independent — the structure a future multi-lane conversion needs.
// selection -> bitmap is a scalar bit-set loop on every backend (the word
// accumulation is limited by store-to-load forwarding, not ALU width).
//
// Capacity contract (centralized, mirroring ShuffleCapacity /
// SelectionScanCapacity): every column and the selection vector of a chunk
// sized for n tuples must hold ChunkCapacity(n) elements, because the
// vector scan/probe kernels that fill chunks may overshoot their returned
// count by up to one 16-lane vector. Chunk::Reset allocates to this
// contract; operator entry points assert it.

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "core/isa.h"
#include "util/aligned_buffer.h"

namespace simddb::exec {

/// Default tuples per chunk: L1-resident working set for a key column plus
/// a few payload columns, and a multiple of 64 so bitmap words never span
/// chunk boundaries.
inline constexpr size_t kDefaultChunkTuples = 1024;

/// Slack every chunk column carries beyond its tuple capacity: one 16-lane
/// vector of overshoot, the same contract as kShuffleSlackTuples and
/// kSelectionScanPad (the kernels that fill chunks are the same kernels).
inline constexpr size_t kChunkSlackTuples = 16;

/// Elements every column / selection-vector buffer of an n-tuple chunk
/// must hold.
inline constexpr size_t ChunkCapacity(size_t n) {
  return n + kChunkSlackTuples;
}

/// 64-bit words covering an n-tuple bitmap.
inline constexpr size_t ChunkBitmapWords(size_t n) { return (n + 63) / 64; }

/// Tuple-visibility representation carried by a chunk (see file comment).
enum class SelKind { kDense, kSelection, kBitmap };

// ---------------------------------------------------------------------------
// Free converter kernels (ISA-dispatched; also the test/bench surface)
// ---------------------------------------------------------------------------

/// Materializes the set bits of bitmap[0 .. ChunkBitmapWords(n)) as an
/// ascending index vector in sel; returns the index count. Bits at
/// positions >= n must be zero. `sel` needs ChunkCapacity(n) elements (the
/// AVX2 kernel stores full 8-lane vectors and advances by popcount).
size_t BitmapToSelection(Isa isa, const uint64_t* bitmap, size_t n,
                         uint32_t* sel);

/// Sets bit sel[i] for i in [0, count) in bitmap[0 .. ChunkBitmapWords(n)),
/// zeroing the rest. Indexes must be ascending and < n.
void SelectionToBitmap(const uint32_t* sel, size_t count, size_t n,
                       uint64_t* bitmap);

/// Evaluates lo <= keys[i] <= hi (inclusive, unsigned) into a bitmap and
/// returns the number of set bits. Bits >= n are zeroed.
size_t RangePredicateBitmap(Isa isa, const uint32_t* keys, size_t n,
                            uint32_t lo, uint32_t hi, uint64_t* bitmap);

namespace detail {
size_t BitmapToSelectionScalar(const uint64_t* bitmap, size_t n,
                               uint32_t* sel);
size_t RangePredicateBitmapScalar(const uint32_t* keys, size_t n, uint32_t lo,
                                  uint32_t hi, uint64_t* bitmap);
// Backend TUs (chunk_avx2.cc / chunk_avx512.cc).
size_t BitmapToSelectionAvx2(const uint64_t* bitmap, size_t n, uint32_t* sel);
size_t RangePredicateBitmapAvx2(const uint32_t* keys, size_t n, uint32_t lo,
                                uint32_t hi, uint64_t* bitmap);
size_t BitmapToSelectionAvx512(const uint64_t* bitmap, size_t n,
                               uint32_t* sel);
size_t RangePredicateBitmapAvx512(const uint32_t* keys, size_t n, uint32_t lo,
                                  uint32_t hi, uint64_t* bitmap);
}  // namespace detail

// ---------------------------------------------------------------------------
// Chunk
// ---------------------------------------------------------------------------

/// A fixed-capacity chunk of up to kMaxColumns 32-bit columns with a
/// selection-vector/bitmap visibility state. Owns its storage; operators
/// keep one per worker lane and recycle it across pushes.
class Chunk {
 public:
  static constexpr int kMaxColumns = 4;

  Chunk() = default;
  Chunk(size_t capacity, int n_cols) { Reset(capacity, n_cols); }

  /// (Re)allocates for `capacity` tuples and `n_cols` columns (1 ..
  /// kMaxColumns). Columns and the selection vector get ChunkCapacity(
  /// capacity) elements — the centralized scratch contract every filling
  /// kernel assumes. Size is reset to 0 (dense).
  void Reset(size_t capacity, int n_cols);

  size_t capacity() const { return capacity_; }
  int n_cols() const { return n_cols_; }

  /// Tuples physically present in the columns (the dense extent).
  size_t size() const { return size_; }

  /// Active tuples under the current visibility representation.
  size_t active() const {
    return kind_ == SelKind::kDense ? size_ : active_;
  }

  SelKind kind() const { return kind_; }

  uint32_t* col(int c) {
    assert(c >= 0 && c < n_cols_);
    return cols_[c].data();
  }
  const uint32_t* col(int c) const {
    assert(c >= 0 && c < n_cols_);
    return cols_[c].data();
  }

  uint32_t* sel() { return sel_.data(); }
  const uint32_t* sel() const { return sel_.data(); }
  uint64_t* bitmap() { return bitmap_.data(); }
  const uint64_t* bitmap() const { return bitmap_.data(); }

  /// Ordinal of this chunk in its source's deterministic grid; sinks that
  /// are order-sensitive (hash-build materialization) slot by it so results
  /// never depend on which lane carried the chunk.
  uint64_t seq() const { return seq_; }
  void set_seq(uint64_t s) { seq_ = s; }

  /// All n tuples active (n <= capacity()).
  void SetDense(size_t n) {
    assert(n <= capacity_);
    size_ = n;
    active_ = n;
    kind_ = SelKind::kDense;
  }

  /// sel()[0, count) holds the ascending active indexes over a dense extent
  /// of n tuples.
  void SetSelection(size_t n, size_t count) {
    assert(n <= capacity_ && count <= n);
    size_ = n;
    active_ = count;
    kind_ = SelKind::kSelection;
  }

  /// bitmap() covers a dense extent of n tuples with `count` set bits.
  void SetBitmap(size_t n, size_t count) {
    assert(n <= capacity_ && count <= n);
    size_ = n;
    active_ = count;
    kind_ = SelKind::kBitmap;
  }

  /// kBitmap -> kSelection via the SIMD converter (counts the obs
  /// `bitmap_to_sel` conversion). No-op for the other kinds.
  void MaterializeSelection(Isa isa);

  /// kSelection -> kBitmap (counts `sel_to_bitmap`). kDense also
  /// materializes (an all-ones bitmap). No-op when already a bitmap.
  void MaterializeBitmap(Isa isa);

  /// Physically compacts the active tuples of every column to the front and
  /// switches to kDense. Converts a bitmap to a selection vector first.
  /// The in-place column gather is safe because selection indexes are
  /// ascending: destination j never passes source sel[j] >= j.
  void Compact(Isa isa);

 private:
  AlignedBuffer<uint32_t> cols_[kMaxColumns];
  AlignedBuffer<uint32_t> sel_;
  AlignedBuffer<uint64_t> bitmap_;
  size_t capacity_ = 0;
  size_t size_ = 0;
  size_t active_ = 0;
  int n_cols_ = 0;
  SelKind kind_ = SelKind::kDense;
  uint64_t seq_ = 0;
};

}  // namespace simddb::exec

#endif  // SIMDDB_EXEC_CHUNK_H_
