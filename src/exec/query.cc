#include "exec/query.h"

#include "exec/adaptive.h"
#include "exec/fused.h"
#include "obs/metrics.h"

namespace simddb::exec {
namespace {

// Whole-query wall time per executor path, recorded on the submitting
// thread. Both spans cover the full plan (build pipeline + probe side), so
// exec_fused_ns / exec_dynamic_ns measured on the same plan are directly
// comparable — the ratio the bench gate in scripts/bench_baselines.json
// checks. Registry keeps raw pointers: static storage required.
obs::PhaseTimer g_fused_ns("exec_fused_ns");
obs::PhaseTimer g_dynamic_ns("exec_dynamic_ns");

}  // namespace

// Pipeline 0 of every plan — the build side materializes through Chunk
// staging on both executor paths, so the fused path probes the exact table
// and Bloom filter the dynamic path builds.
HashBuildOp* AddBuildPipeline(Query& q, const ScanJoinAggregatePlan& plan) {
  Operator* r_scan =
      plan.r_keys_c != nullptr
          ? static_cast<Operator*>(q.Add<CompressedScanOp>(
                plan.r_keys_c, plan.r_attrs_c, plan.r_lo, plan.r_hi,
                /*filter_on_vals=*/false, plan.scan_mode))
          : q.Add<ScanOp>(plan.r_keys, plan.r_attrs, plan.n_r, plan.r_lo,
                          plan.r_hi,
                          /*filter_on_vals=*/false, plan.scan_mode);
  HashBuildOp* build =
      q.Add<HashBuildOp>(plan.bloom_bits_per_key, plan.bloom_k);
  std::vector<Operator*> ops{r_scan};
  if (plan.scan_mode == ScanMode::kBitmap) ops.push_back(q.Add<MaterializeOp>());
  ops.push_back(build);
  q.AddPipeline(std::move(ops));
  return build;
}

namespace {

QueryResult RunDynamic(const ScanJoinAggregatePlan& plan,
                       const ExecConfig& cfg) {
  obs::ScopedPhase t(g_dynamic_ns);
  Query q;
  HashBuildOp* build = AddBuildPipeline(q, plan);

  // Probe side: S scan -> [materialize] -> [bloom] -> [partition barrier]
  // -> join probe -> group-by sink. The scan filters on S.val, emitting
  // chunks with col 0 = fk, col 1 = val; the join probe appends col 2 =
  // R.attr; the sink groups col 2 aggregating col 1.
  Operator* s_scan =
      plan.s_fks_c != nullptr
          ? static_cast<Operator*>(q.Add<CompressedScanOp>(
                plan.s_fks_c, plan.s_vals_c, plan.s_lo, plan.s_hi,
                /*filter_on_vals=*/true, plan.scan_mode))
          : q.Add<ScanOp>(plan.s_fks, plan.s_vals, plan.n_s, plan.s_lo,
                          plan.s_hi,
                          /*filter_on_vals=*/true, plan.scan_mode);
  BloomProbeOp* bloom =
      plan.bloom_bits_per_key > 0 ? q.Add<BloomProbeOp>(build) : nullptr;
  PartitionOp* part = plan.partition_fanout > 0
                          ? q.Add<PartitionOp>(plan.partition_fanout)
                          : nullptr;
  HashJoinProbeOp* probe = q.Add<HashJoinProbeOp>(build);
  GroupBySink* sink = q.Add<GroupBySink>(plan.max_groups_hint, /*key_col=*/2,
                                         /*val_col=*/1);
  {
    std::vector<Operator*> ops{s_scan};
    if (plan.scan_mode == ScanMode::kBitmap) ops.push_back(q.Add<MaterializeOp>());
    if (bloom != nullptr) ops.push_back(bloom);
    if (part != nullptr) {
      ops.push_back(part);
      q.AddPipeline(std::move(ops));
      ops = {part};
    }
    ops.push_back(probe);
    ops.push_back(sink);
    q.AddPipeline(std::move(ops));
  }

  q.Run(cfg);

  QueryResult res;
  res.group_keys = sink->keys();
  res.sums = sink->sums();
  res.counts = sink->counts();
  res.mins = sink->mins();
  res.maxs = sink->maxs();
  res.rows_build = build->build_rows();
  res.rows_scanned = s_scan->rows_out();
  res.rows_bloomed = bloom != nullptr ? bloom->rows_out() : res.rows_scanned;
  res.rows_joined = probe->rows_out();
  return res;
}

QueryResult RunFused(const ScanJoinAggregatePlan& plan, const ExecConfig& cfg) {
  obs::ScopedPhase t(g_fused_ns);
  // The build breaker still runs through the dynamic Chunk machinery (it
  // materializes state, the one thing fusion cannot elide), so a fused
  // query counts one dynamic pipeline (the build) plus one fused pipeline.
  Query q;
  HashBuildOp* build = AddBuildPipeline(q, plan);
  q.Run(cfg);

  FusedProbeSpec spec;
  spec.fks = plan.s_fks;
  spec.vals = plan.s_vals;
  spec.fks_c = plan.s_fks_c;
  spec.vals_c = plan.s_vals_c;
  spec.n = plan.s_fks_c != nullptr ? plan.s_fks_c->size() : plan.n_s;
  spec.lo = plan.s_lo;
  spec.hi = plan.s_hi;
  spec.scan_mode = plan.scan_mode;
  spec.table = build->table();
  // bloom() is null when the filter is disabled or the build side is empty;
  // the fused bloom stage forwards batches untouched in that case, exactly
  // like the dynamic BloomProbeOp.
  spec.bloom = plan.bloom_bits_per_key > 0 ? build->bloom() : nullptr;
  spec.max_groups_hint = plan.max_groups_hint;
  FusedProbeResult fr = RunFusedProbePipeline(spec, cfg);

  QueryResult res;
  res.group_keys = std::move(fr.group_keys);
  res.sums = std::move(fr.sums);
  res.counts = std::move(fr.counts);
  res.mins = std::move(fr.mins);
  res.maxs = std::move(fr.maxs);
  res.rows_build = build->build_rows();
  res.rows_scanned = fr.rows_scanned;
  res.rows_bloomed = fr.rows_bloomed;
  res.rows_joined = fr.rows_joined;
  res.used_fused = true;
  return res;
}

}  // namespace

bool FusedPlanSupported(const ScanJoinAggregatePlan& plan) {
  // Fused instantiations cover the streaming Q3 probe shapes — scan ->
  // [bloom] -> join probe -> group-by, compact or bitmap scan, any ISA. A
  // partition barrier materializes mid-stream, so partitioned plans fall
  // back to the dynamic executor.
  return plan.partition_fanout == 0;
}

QueryResult RunScanJoinAggregate(const ScanJoinAggregatePlan& plan,
                                 const ExecConfig& cfg) {
  // Plan-build sanitization: never trust the requested ISA — an unsupported
  // request degrades to the best supported backend instead of SIGILLing in
  // the first kernel (see EffectiveIsa).
  ExecConfig run_cfg = cfg;
  run_cfg.isa = EffectiveIsa(cfg.isa);
  AdaptiveDispatcher dispatcher(run_cfg, plan.scan_mode);
  run_cfg.dispatcher =
      run_cfg.isa_mode == IsaMode::kAdaptive ? &dispatcher : nullptr;
  if (run_cfg.pipeline_mode != PipelineMode::kDynamic &&
      FusedPlanSupported(plan)) {
    return RunFused(plan, run_cfg);
  }
  return RunDynamic(plan, run_cfg);
}

}  // namespace simddb::exec
