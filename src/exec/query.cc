#include "exec/query.h"

namespace simddb::exec {

QueryResult RunScanJoinAggregate(const ScanJoinAggregatePlan& plan,
                                 const ExecConfig& cfg) {
  Query q;

  // Pipeline 0: R scan -> [materialize] -> hash build (breaker).
  ScanOp* r_scan = q.Add<ScanOp>(plan.r_keys, plan.r_attrs, plan.n_r,
                                 plan.r_lo, plan.r_hi,
                                 /*filter_on_vals=*/false, plan.scan_mode);
  HashBuildOp* build =
      q.Add<HashBuildOp>(plan.bloom_bits_per_key, plan.bloom_k);
  {
    std::vector<Operator*> ops{r_scan};
    if (plan.scan_mode == ScanMode::kBitmap) ops.push_back(q.Add<MaterializeOp>());
    ops.push_back(build);
    q.AddPipeline(std::move(ops));
  }

  // Probe side: S scan -> [materialize] -> [bloom] -> [partition barrier]
  // -> join probe -> group-by sink. The scan filters on S.val, emitting
  // chunks with col 0 = fk, col 1 = val; the join probe appends col 2 =
  // R.attr; the sink groups col 2 aggregating col 1.
  ScanOp* s_scan = q.Add<ScanOp>(plan.s_fks, plan.s_vals, plan.n_s, plan.s_lo,
                                 plan.s_hi,
                                 /*filter_on_vals=*/true, plan.scan_mode);
  BloomProbeOp* bloom =
      plan.bloom_bits_per_key > 0 ? q.Add<BloomProbeOp>(build) : nullptr;
  PartitionOp* part = plan.partition_fanout > 0
                          ? q.Add<PartitionOp>(plan.partition_fanout)
                          : nullptr;
  HashJoinProbeOp* probe = q.Add<HashJoinProbeOp>(build);
  GroupBySink* sink = q.Add<GroupBySink>(plan.max_groups_hint, /*key_col=*/2,
                                         /*val_col=*/1);
  {
    std::vector<Operator*> ops{s_scan};
    if (plan.scan_mode == ScanMode::kBitmap) ops.push_back(q.Add<MaterializeOp>());
    if (bloom != nullptr) ops.push_back(bloom);
    if (part != nullptr) {
      ops.push_back(part);
      q.AddPipeline(std::move(ops));
      ops = {part};
    }
    ops.push_back(probe);
    ops.push_back(sink);
    q.AddPipeline(std::move(ops));
  }

  q.Run(cfg);

  QueryResult res;
  res.group_keys = sink->keys();
  res.sums = sink->sums();
  res.counts = sink->counts();
  res.mins = sink->mins();
  res.maxs = sink->maxs();
  res.rows_build = build->build_rows();
  res.rows_scanned = s_scan->rows_out();
  res.rows_bloomed = bloom != nullptr ? bloom->rows_out() : res.rows_scanned;
  res.rows_joined = probe->rows_out();
  return res;
}

}  // namespace simddb::exec
