#include "exec/pipeline.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "exec/adaptive.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/task_pool.h"

namespace simddb::exec {
namespace {

// Registry keeps raw pointers, so counters/timers must have static storage.
obs::Counter g_chunks_pushed("chunks_pushed");
obs::Counter g_pipelines_dynamic("pipelines_dynamic");
obs::PhaseTimer g_scan_ns("exec_scan_ns");
obs::PhaseTimer g_materialize_ns("exec_materialize_ns");
obs::PhaseTimer g_bloom_ns("exec_bloom_ns");
obs::PhaseTimer g_build_ns("exec_build_ns");
obs::PhaseTimer g_probe_ns("exec_probe_ns");
obs::PhaseTimer g_partition_ns("exec_partition_ns");
obs::PhaseTimer g_groupby_ns("exec_groupby_ns");

/// obs::ScopedPhase with the MetricsEnabled() check hoisted to the caller:
/// Push paths pass the operator's Open-sampled `timed_` flag, so a disabled
/// run pays a register test per push instead of an atomic load per
/// operator per chunk. Active scopes record the phase timer and a trace
/// event exactly like obs::ScopedPhase.
class PhaseScope {
 public:
  PhaseScope(obs::PhaseTimer& timer, bool on) : timer_(timer), on_(on) {
    if (on_) start_ns_ = obs::NowNs();
  }
  ~PhaseScope() {
    if (!on_) return;
    const uint64_t dur = obs::NowNs() - start_ns_;
    timer_.RecordAlways(dur);
    obs::EmitTraceEvent(timer_.name(), start_ns_, dur);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  obs::PhaseTimer& timer_;
  bool on_;
  uint64_t start_ns_ = 0;
};

size_t ChunksFor(size_t n, const ExecConfig& cfg) {
  return n == 0 ? 0 : (n + cfg.chunk_tuples - 1) / cfg.chunk_tuples;
}

void ResetLaneChunks(std::vector<std::unique_ptr<Chunk>>& out, int lanes,
                     size_t capacity, int n_cols) {
  out.resize(static_cast<size_t>(lanes));
  for (auto& c : out) {
    if (!c) c = std::make_unique<Chunk>();
    c->Reset(capacity, n_cols);
  }
}

}  // namespace

ScanVariant ScanVariantForIsa(Isa isa) {
  switch (isa) {
    case Isa::kAvx512:
      return ScanVariant::kVectorStoreDirect;
    case Isa::kAvx2:
      return ScanVariant::kAvx2Direct;
    default:
      return ScanVariant::kScalarBranchless;
  }
}

// ---------------------------------------------------------------------------
// Operator
// ---------------------------------------------------------------------------

void Operator::Open(const ExecConfig& cfg, int lanes, size_t n_source_chunks) {
  (void)lanes, (void)n_source_chunks;
  cfg_ = cfg;
  timed_ = obs::MetricsEnabled();
}

void Operator::OpenSource(const ExecConfig& cfg, int lanes) {
  (void)lanes;
  cfg_ = cfg;
  timed_ = obs::MetricsEnabled();
}

void Operator::PushNext(Chunk& c, int lane) {
  assert(next_ != nullptr && "chain ends in a non-sink operator");
  CountRows(c.active());
  if (timed_) g_chunks_pushed.AddAlways(1);
  next_->Push(c, lane);
}

// ---------------------------------------------------------------------------
// ScanOp
// ---------------------------------------------------------------------------

ScanOp::ScanOp(const uint32_t* keys, const uint32_t* vals, size_t n,
               uint32_t lo, uint32_t hi, bool filter_on_vals, ScanMode mode)
    : keys_(keys),
      vals_(vals),
      n_(n),
      lo_(lo),
      hi_(hi),
      filter_on_vals_(filter_on_vals),
      mode_(mode) {}

void ScanOp::OpenSource(const ExecConfig& cfg, int lanes) {
  Operator::OpenSource(cfg, lanes);
  ResetLaneChunks(out_, lanes, cfg.chunk_tuples, 2);
}

void ScanOp::Push(Chunk& c, int lane) {
  (void)c, (void)lane;
  assert(false && "ScanOp is a source; nothing pushes into it");
}

size_t ScanOp::SourceChunks(const ExecConfig& cfg) const {
  return ChunksFor(n_, cfg);
}

void ScanOp::Produce(size_t chunk, int lane) {
  Chunk& out = *out_[static_cast<size_t>(lane)];
  {
    PhaseScope t(g_scan_ns, timed_);
    // Adaptive dispatch switches both the ISA and the chunk representation
    // (compact vs bitmap) per chunk; downstream operators Compact whatever
    // arrives, so mixing representations inside one grid is safe.
    AdaptiveOpScope a(cfg_.dispatcher, OpKind::kScan, cfg_.isa, mode_);
    const size_t b = chunk * cfg_.chunk_tuples;
    const size_t sz = std::min(cfg_.chunk_tuples, n_ - b);
    a.set_tuples(sz);
    if (a.scan_mode() == ScanMode::kCompact) {
      const ScanVariant v = ScanVariantForIsa(a.isa());
      const size_t cap = ChunkCapacity(out.capacity());
      size_t cnt;
      if (filter_on_vals_) {
        cnt = SelectionScan(v, vals_ + b, keys_ + b, sz, lo_, hi_, out.col(1),
                            out.col(0), cap);
      } else {
        cnt = SelectionScan(v, keys_ + b, vals_ + b, sz, lo_, hi_, out.col(0),
                            out.col(1), cap);
      }
      out.SetDense(cnt);
    } else {
      std::memcpy(out.col(0), keys_ + b, sz * sizeof(uint32_t));
      std::memcpy(out.col(1), vals_ + b, sz * sizeof(uint32_t));
      const uint32_t* pred = filter_on_vals_ ? out.col(1) : out.col(0);
      const size_t cnt =
          RangePredicateBitmap(a.isa(), pred, sz, lo_, hi_, out.bitmap());
      out.SetBitmap(sz, cnt);
      // Adaptive dispatch judges the representation axis on its end-to-end
      // per-chunk cost: a bitmap scan defers compaction to the first
      // downstream Compact, so do it here, inside the timed scope, or the
      // bitmap variant looks locally cheap while exporting its cost.
      if (cfg_.dispatcher != nullptr) out.Compact(a.isa());
    }
    out.set_seq(chunk);
  }
  if (skip_empty_ && out.active() == 0) return;
  PushNext(out, lane);
}

// ---------------------------------------------------------------------------
// CompressedScanOp
// ---------------------------------------------------------------------------

CompressedScanOp::CompressedScanOp(const compress::CompressedColumn* keys,
                                   const compress::CompressedColumn* vals,
                                   uint32_t lo, uint32_t hi,
                                   bool filter_on_vals, ScanMode mode)
    : keys_(keys),
      vals_(vals),
      n_(keys->size()),
      lo_(lo),
      hi_(hi),
      filter_on_vals_(filter_on_vals),
      mode_(mode) {
  assert(keys_->size() == vals_->size());
}

void CompressedScanOp::OpenSource(const ExecConfig& cfg, int lanes) {
  Operator::OpenSource(cfg, lanes);
  lanes_.resize(static_cast<size_t>(lanes));
  for (Lane& l : lanes_) {
    if (!l.out) l.out = std::make_unique<Chunk>();
    l.out->Reset(cfg.chunk_tuples, 2);
    l.key_buf.Reset(compress::PackedCapacity(compress::kBlockTuples));
    l.val_buf.Reset(compress::PackedCapacity(compress::kBlockTuples));
    l.key_block = SIZE_MAX;
    l.val_block = SIZE_MAX;
  }
}

void CompressedScanOp::Push(Chunk& c, int lane) {
  (void)c, (void)lane;
  assert(false && "CompressedScanOp is a source; nothing pushes into it");
}

size_t CompressedScanOp::SourceChunks(const ExecConfig& cfg) const {
  return ChunksFor(n_, cfg);
}

const uint32_t* CompressedScanOp::Decoded(Lane& l, int which, size_t b,
                                          Isa isa) {
  AlignedBuffer<uint32_t>& buf = which == 0 ? l.key_buf : l.val_buf;
  size_t& cached = which == 0 ? l.key_block : l.val_block;
  if (cached != b) {
    const compress::CompressedColumn* col = which == 0 ? keys_ : vals_;
    col->DecodeBlock(isa, b, buf.data(), buf.size());
    cached = b;
  }
  return buf.data();
}

void CompressedScanOp::Produce(size_t chunk, int lane) {
  Lane& l = lanes_[static_cast<size_t>(lane)];
  Chunk& out = *l.out;
  {
    PhaseScope t(g_scan_ns, timed_);
    AdaptiveOpScope a(cfg_.dispatcher, OpKind::kScan, cfg_.isa, mode_);
    const size_t begin = chunk * cfg_.chunk_tuples;
    const size_t sz = std::min(cfg_.chunk_tuples, n_ - begin);
    a.set_tuples(sz);
    const compress::CompressedColumn* pred_col =
        filter_on_vals_ ? vals_ : keys_;
    const int pc = filter_on_vals_ ? 1 : 0;  // predicate chunk column
    const int oc = filter_on_vals_ ? 0 : 1;  // carried chunk column
    const int pred_which = filter_on_vals_ ? 1 : 0;
    const size_t end = begin + sz;
    size_t cnt = 0;  // compact-mode output cursor
    for (size_t pos = begin; pos < end;) {
      const size_t b = pos / compress::kBlockTuples;
      const size_t block_base = b * compress::kBlockTuples;
      const size_t block_rows = pred_col->block_rows(b);
      const size_t off = pos - block_base;       // into the block
      const size_t take = std::min(end, block_base + block_rows) - pos;
      const bool whole_block = take == block_rows;
      const compress::BlockMeta& m = pred_col->block_meta(b);
      const compress::BlockClass cls = compress::ClassifyBlock(m, lo_, hi_);
      if (a.scan_mode() == ScanMode::kCompact) {
        if (cls == compress::BlockClass::kSkip) {
          compress::BlocksSkipped().Add(1);
        } else if (cls == compress::BlockClass::kAllPass) {
          compress::BlocksAllPass().Add(1);
          // Every value qualifies: decode becomes the emit, no per-value
          // predicate evaluation. A whole in-chunk block decodes straight
          // into the output columns (the PackedCapacity overshoot lands in
          // the chunk slack); partial overlaps go through the block cache.
          if (whole_block) {
            keys_->DecodeBlock(a.isa(), b, out.col(0) + cnt,
                               ChunkCapacity(out.capacity()) - cnt);
            vals_->DecodeBlock(a.isa(), b, out.col(1) + cnt,
                               ChunkCapacity(out.capacity()) - cnt);
          } else {
            std::memcpy(out.col(0) + cnt, Decoded(l, 0, b, a.isa()) + off,
                        take * sizeof(uint32_t));
            std::memcpy(out.col(1) + cnt, Decoded(l, 1, b, a.isa()) + off,
                        take * sizeof(uint32_t));
          }
          cnt += take;
        } else {
          // Mixed block: range-scan the just-unpacked slice with the same
          // kernel ScanOp uses, appending at the output cursor (input
          // order is preserved, so the chunk matches the raw scan's).
          const uint32_t* p = Decoded(l, pred_which, b, a.isa()) + off;
          const uint32_t* o = Decoded(l, 1 - pred_which, b, a.isa()) + off;
          cnt += SelectionScan(ScanVariantForIsa(a.isa()), p, o, take, lo_,
                               hi_, out.col(pc) + cnt, out.col(oc) + cnt,
                               ChunkCapacity(out.capacity()) - cnt);
        }
      } else {
        // Bitmap mode keeps chunk-relative positions, so every piece lands
        // at its morsel offset and one predicate pass runs over the chunk
        // exactly as in ScanOp.
        const size_t dst = pos - begin;
        if (cls == compress::BlockClass::kSkip) {
          compress::BlocksSkipped().Add(1);
          // Never decode: fill the predicate column with a value from the
          // block's own domain that fails the predicate (its zone-map
          // bound on the failing side). The carried column stays
          // untouched — bits are never set over this piece, and inactive
          // positions are dead by the bitmap contract.
          const uint32_t fail = m.max < lo_ ? m.max : m.min;
          uint32_t* d = out.col(pc) + dst;
          for (size_t i = 0; i < take; ++i) d[i] = fail;
          pos += take;
          continue;
        }
        if (cls == compress::BlockClass::kAllPass) {
          compress::BlocksAllPass().Add(1);
        }
        if (whole_block) {
          keys_->DecodeBlock(a.isa(), b, out.col(0) + dst,
                             ChunkCapacity(out.capacity()) - dst);
          vals_->DecodeBlock(a.isa(), b, out.col(1) + dst,
                             ChunkCapacity(out.capacity()) - dst);
        } else {
          std::memcpy(out.col(0) + dst, Decoded(l, 0, b, a.isa()) + off,
                      take * sizeof(uint32_t));
          std::memcpy(out.col(1) + dst, Decoded(l, 1, b, a.isa()) + off,
                      take * sizeof(uint32_t));
        }
      }
      pos += take;
    }
    if (a.scan_mode() == ScanMode::kCompact) {
      out.SetDense(cnt);
    } else {
      const size_t set =
          RangePredicateBitmap(a.isa(), out.col(pc), sz, lo_, hi_,
                               out.bitmap());
      out.SetBitmap(sz, set);
      // Same attribution rule as ScanOp: in adaptive mode the bitmap
      // variant pays its own compaction inside the timed scope.
      if (cfg_.dispatcher != nullptr) out.Compact(a.isa());
    }
    out.set_seq(chunk);
  }
  PushNext(out, lane);
}

// ---------------------------------------------------------------------------
// MaterializeOp
// ---------------------------------------------------------------------------

void MaterializeOp::Push(Chunk& c, int lane) {
  {
    PhaseScope t(g_materialize_ns, timed_);
    c.Compact(cfg_.isa);
  }
  PushNext(c, lane);
}

// ---------------------------------------------------------------------------
// HashBuildOp
// ---------------------------------------------------------------------------

HashBuildOp::HashBuildOp(int bloom_bits_per_key, int bloom_k)
    : bloom_bits_per_key_(bloom_bits_per_key), bloom_k_(bloom_k) {}

void HashBuildOp::Open(const ExecConfig& cfg, int lanes,
                       size_t n_source_chunks) {
  Operator::Open(cfg, lanes, n_source_chunks);
  slot_cap_ = cfg.chunk_tuples;
  const size_t total = ChunkCapacity(n_source_chunks * slot_cap_);
  mat_keys_.Reset(total);
  mat_pays_.Reset(total);
  numa::PlaceBuffer(mat_keys_.data(), total * sizeof(uint32_t), cfg.threads,
                    cfg.placement);
  numa::PlaceBuffer(mat_pays_.data(), total * sizeof(uint32_t), cfg.threads,
                    cfg.placement);
  counts_.assign(n_source_chunks, 0);
  n_build_ = 0;
  table_.reset();
  bloom_.reset();
}

void HashBuildOp::Push(Chunk& c, int lane) {
  (void)lane;
  PhaseScope t(g_build_ns, timed_);
  c.Compact(cfg_.isa);
  const size_t cnt = c.size();
  assert(c.seq() < counts_.size() && cnt <= slot_cap_);
  // Chunks slot by seq, not by lane: disjoint ranges, no synchronization,
  // and a materialization order that never depends on stealing.
  std::memcpy(mat_keys_.data() + c.seq() * slot_cap_, c.col(0),
              cnt * sizeof(uint32_t));
  std::memcpy(mat_pays_.data() + c.seq() * slot_cap_, c.col(1),
              cnt * sizeof(uint32_t));
  counts_[c.seq()] = cnt;
  CountRows(cnt);
}

void HashBuildOp::Finish() {
  PhaseScope t(g_build_ns, timed_);
  size_t out = 0;
  for (size_t m = 0; m < counts_.size(); ++m) {
    const size_t cnt = counts_[m];
    const size_t src = m * slot_cap_;
    if (cnt != 0 && out != src) {
      std::memmove(mat_keys_.data() + out, mat_keys_.data() + src,
                   cnt * sizeof(uint32_t));
      std::memmove(mat_pays_.data() + out, mat_pays_.data() + src,
                   cnt * sizeof(uint32_t));
    }
    out += cnt;
  }
  n_build_ = out;
  // Load factor <= 50%, and at least one empty bucket even when empty.
  size_t buckets = 16;
  while (buckets < 2 * (n_build_ + 1)) buckets <<= 1;
  table_ = std::make_unique<LinearProbingTable>(buckets, cfg_.seed);
  numa::PlaceBuffer(const_cast<uint32_t*>(table_->bucket_keys()),
                    buckets * sizeof(uint32_t), cfg_.threads,
                    numa::Placement::kInterleaved);
  numa::PlaceBuffer(const_cast<uint32_t*>(table_->bucket_pays()),
                    buckets * sizeof(uint32_t), cfg_.threads,
                    numa::Placement::kInterleaved);
  if (cfg_.dispatcher == nullptr) {
    table_->Build(cfg_.isa, mat_keys_.data(), mat_pays_.data(), n_build_);
  } else {
    // Adaptive: the insert loop runs in chunk-sized blocks, each through the
    // kBuild schedule, so the historically slowest phase of the AVX-512
    // anchor (scatter-heavy table build) is re-timed instead of pinned.
    // Blocks stay in sequential order, so the insertion sequence — and
    // therefore every probe result — is unchanged by ISA switches.
    const size_t blk = cfg_.chunk_tuples;
    for (size_t off = 0; off < n_build_; off += blk) {
      const size_t n = std::min(blk, n_build_ - off);
      AdaptiveOpScope a(cfg_.dispatcher, OpKind::kBuild, cfg_.isa,
                        ScanMode::kCompact);
      a.set_tuples(n);
      table_->Build(a.isa(), mat_keys_.data() + off, mat_pays_.data() + off,
                    n);
    }
  }
  if (bloom_bits_per_key_ > 0 && n_build_ > 0) {
    bloom_ = std::make_unique<BloomFilter>(BloomFilter::ForItems(
        n_build_, bloom_bits_per_key_, bloom_k_, cfg_.seed));
    numa::PlaceBuffer(const_cast<uint32_t*>(bloom_->words()),
                      (bloom_->n_bits() / 8), cfg_.threads,
                      numa::Placement::kInterleaved);
    bloom_->Add(mat_keys_.data(), n_build_);
  }
}

// ---------------------------------------------------------------------------
// BloomProbeOp
// ---------------------------------------------------------------------------

void BloomProbeOp::Open(const ExecConfig& cfg, int lanes,
                        size_t n_source_chunks) {
  Operator::Open(cfg, lanes, n_source_chunks);
  ResetLaneChunks(out_, lanes, cfg.chunk_tuples, 2);
}

void BloomProbeOp::Push(Chunk& c, int lane) {
  const BloomFilter* f = build_->bloom();
  if (f == nullptr) {  // empty build side never makes a filter
    PushNext(c, lane);
    return;
  }
  Chunk& out = *out_[static_cast<size_t>(lane)];
  {
    PhaseScope t(g_bloom_ns, timed_);
    AdaptiveOpScope a(cfg_.dispatcher, OpKind::kBloomProbe, cfg_.isa,
                      ScanMode::kCompact);
    c.Compact(a.isa());
    a.set_tuples(c.size());
    const size_t cnt = f->Probe(a.isa(), c.col(0), c.col(1), c.size(),
                                out.col(0), out.col(1));
    out.SetDense(cnt);
    out.set_seq(c.seq());
  }
  PushNext(out, lane);
}

// ---------------------------------------------------------------------------
// HashJoinProbeOp
// ---------------------------------------------------------------------------

void HashJoinProbeOp::Open(const ExecConfig& cfg, int lanes,
                           size_t n_source_chunks) {
  Operator::Open(cfg, lanes, n_source_chunks);
  ResetLaneChunks(out_, lanes, cfg.chunk_tuples, 3);
}

void HashJoinProbeOp::Push(Chunk& c, int lane) {
  Chunk& out = *out_[static_cast<size_t>(lane)];
  {
    PhaseScope t(g_probe_ns, timed_);
    AdaptiveOpScope a(cfg_.dispatcher, OpKind::kJoinProbe, cfg_.isa,
                      ScanMode::kCompact);
    c.Compact(a.isa());
    a.set_tuples(c.size());
    const LinearProbingTable* table = build_->table();
    assert(table != nullptr && "probe pipeline ran before the build broke");
    const size_t cnt = table->Probe(a.isa(), c.col(0), c.col(1), c.size(),
                                    out.col(0), out.col(1), out.col(2));
    assert(cnt <= ChunkCapacity(out.capacity()));
    out.SetDense(cnt);
    out.set_seq(c.seq());
  }
  PushNext(out, lane);
}

// ---------------------------------------------------------------------------
// PartitionOp
// ---------------------------------------------------------------------------

PartitionOp::PartitionOp(uint32_t fanout) : fanout_(fanout) {
  assert(fanout_ >= 1);
}

void PartitionOp::Open(const ExecConfig& cfg, int lanes,
                       size_t n_source_chunks) {
  Operator::Open(cfg, lanes, n_source_chunks);
  slot_cap_ = cfg.chunk_tuples;
  const size_t total = ChunkCapacity(n_source_chunks * slot_cap_);
  mat_keys_.Reset(total);
  mat_pays_.Reset(total);
  numa::PlaceBuffer(mat_keys_.data(), total * sizeof(uint32_t), cfg.threads,
                    cfg.placement);
  numa::PlaceBuffer(mat_pays_.data(), total * sizeof(uint32_t), cfg.threads,
                    cfg.placement);
  counts_.assign(n_source_chunks, 0);
  n_rows_ = 0;
}

void PartitionOp::OpenSource(const ExecConfig& cfg, int lanes) {
  // Source role for the pipeline after the barrier: keep the partitioned
  // output, only refresh the lane chunks.
  Operator::OpenSource(cfg, lanes);
  ResetLaneChunks(out_, lanes, cfg.chunk_tuples, 2);
}

void PartitionOp::Push(Chunk& c, int lane) {
  (void)lane;
  PhaseScope t(g_partition_ns, timed_);
  c.Compact(cfg_.isa);
  const size_t cnt = c.size();
  assert(c.seq() < counts_.size() && cnt <= slot_cap_);
  std::memcpy(mat_keys_.data() + c.seq() * slot_cap_, c.col(0),
              cnt * sizeof(uint32_t));
  std::memcpy(mat_pays_.data() + c.seq() * slot_cap_, c.col(1),
              cnt * sizeof(uint32_t));
  counts_[c.seq()] = cnt;
}

void PartitionOp::Finish() {
  PhaseScope t(g_partition_ns, timed_);
  size_t out = 0;
  for (size_t m = 0; m < counts_.size(); ++m) {
    const size_t cnt = counts_[m];
    const size_t src = m * slot_cap_;
    if (cnt != 0 && out != src) {
      std::memmove(mat_keys_.data() + out, mat_keys_.data() + src,
                   cnt * sizeof(uint32_t));
      std::memmove(mat_pays_.data() + out, mat_pays_.data() + src,
                   cnt * sizeof(uint32_t));
    }
    out += cnt;
  }
  n_rows_ = out;
  CountRows(n_rows_);
  const size_t cap = ShuffleCapacity(n_rows_);
  out_keys_.Reset(cap);
  out_pays_.Reset(cap);
  numa::PlaceBuffer(out_keys_.data(), cap * sizeof(uint32_t), cfg_.threads,
                    cfg_.placement);
  numa::PlaceBuffer(out_pays_.data(), cap * sizeof(uint32_t), cfg_.threads,
                    cfg_.placement);
  starts_.assign(fanout_ + 1, 0);
  const PartitionFn fn = PartitionFn::Hash(fanout_, cfg_.seed);
  ParallelPartitionPass(fn, mat_keys_.data(), mat_pays_.data(), n_rows_,
                        out_keys_.data(), out_pays_.data(), cfg_.isa,
                        cfg_.threads, &res_, starts_.data(),
                        ShuffleVariant::kAuto, cap);
}

size_t PartitionOp::SourceChunks(const ExecConfig& cfg) const {
  return ChunksFor(n_rows_, cfg);
}

void PartitionOp::Produce(size_t chunk, int lane) {
  Chunk& out = *out_[static_cast<size_t>(lane)];
  {
    PhaseScope t(g_partition_ns, timed_);
    const size_t b = chunk * cfg_.chunk_tuples;
    const size_t sz = std::min(cfg_.chunk_tuples, n_rows_ - b);
    std::memcpy(out.col(0), out_keys_.data() + b, sz * sizeof(uint32_t));
    std::memcpy(out.col(1), out_pays_.data() + b, sz * sizeof(uint32_t));
    out.SetDense(sz);
    out.set_seq(chunk);
  }
  PushNext(out, lane);
}

// ---------------------------------------------------------------------------
// GroupBySink
// ---------------------------------------------------------------------------

GroupBySink::GroupBySink(size_t max_groups_hint, int key_col, int val_col)
    : max_groups_hint_(max_groups_hint), key_col_(key_col), val_col_(val_col) {}

void GroupBySink::Open(const ExecConfig& cfg, int lanes,
                       size_t n_source_chunks) {
  Operator::Open(cfg, lanes, n_source_chunks);
  partials_.resize(static_cast<size_t>(lanes));
  for (auto& p : partials_) {
    p = std::make_unique<GroupByAggregator>(max_groups_hint_, cfg.seed);
  }
  keys_.clear();
  sums_.clear();
  counts_.clear();
  mins_.clear();
  maxs_.clear();
}

void GroupBySink::Push(Chunk& c, int lane) {
  PhaseScope t(g_groupby_ns, timed_);
  AdaptiveOpScope a(cfg_.dispatcher, OpKind::kGroupBy, cfg_.isa,
                    ScanMode::kCompact);
  assert(key_col_ < c.n_cols() && val_col_ < c.n_cols());
  c.Compact(a.isa());
  a.set_tuples(c.size());
  partials_[static_cast<size_t>(lane)]->Accumulate(
      a.isa(), c.col(key_col_), c.col(val_col_), c.size());
  CountRows(c.size());
}

void GroupBySink::Finish() {
  PhaseScope t(g_groupby_ns, timed_);
  CanonicalizeGroups(cfg_.isa, partials_, &keys_, &sums_, &counts_, &mins_,
                     &maxs_);
}

void CanonicalizeGroups(Isa isa,
                        std::vector<std::unique_ptr<GroupByAggregator>>& partials,
                        std::vector<uint32_t>* keys, std::vector<uint64_t>* sums,
                        std::vector<uint32_t>* counts,
                        std::vector<uint32_t>* mins, std::vector<uint32_t>* maxs) {
  assert(!partials.empty());
  GroupByAggregator& total = *partials[0];
  for (size_t l = 1; l < partials.size(); ++l) total.MergeFrom(*partials[l]);
  const size_t g = total.num_groups();
  std::vector<uint32_t> k(g), cnt(g), mn(g), mx(g);
  std::vector<uint64_t> sm(g);
  total.Extract(isa, k.data(), sm.data(), cnt.data(), mn.data(), mx.data());
  // Canonical result order: ascending key. Extract order follows table
  // insertion order, which varies across thread counts and ISAs; the sort
  // restores byte-identity (keys are unique).
  std::vector<uint32_t> perm(g);
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(),
            [&](uint32_t a, uint32_t b) { return k[a] < k[b]; });
  keys->resize(g);
  sums->resize(g);
  counts->resize(g);
  mins->resize(g);
  maxs->resize(g);
  for (size_t i = 0; i < g; ++i) {
    (*keys)[i] = k[perm[i]];
    (*sums)[i] = sm[perm[i]];
    (*counts)[i] = cnt[perm[i]];
    (*mins)[i] = mn[perm[i]];
    (*maxs)[i] = mx[perm[i]];
  }
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

void Pipeline::Run(const ExecConfig& cfg) {
  assert(!ops_.empty());
  g_pipelines_dynamic.Add(1);
  Operator* src = ops_.front();
  const size_t n_chunks = src->SourceChunks(cfg);
  int lanes = TaskPool::LaneCount(n_chunks, cfg.threads);
  if (lanes < 1) lanes = 1;
  for (size_t i = 0; i + 1 < ops_.size(); ++i) ops_[i]->set_next(ops_[i + 1]);
  ops_.back()->set_next(nullptr);
  src->OpenSource(cfg, lanes);
  for (size_t i = 1; i < ops_.size(); ++i) ops_[i]->Open(cfg, lanes, n_chunks);
  if (n_chunks > 0) {
    TaskPool::Get().ParallelFor(
        n_chunks, cfg.threads,
        [&](int worker, size_t chunk) { src->Produce(chunk, worker); });
  }
  // The source's Finish is skipped: a breaker sourcing this pipeline already
  // finished (ran its barrier phase) in the pipeline where it was the sink.
  for (size_t i = 1; i < ops_.size(); ++i) ops_[i]->Finish();
}

}  // namespace simddb::exec
