#ifndef SIMDDB_EXEC_QUERY_H_
#define SIMDDB_EXEC_QUERY_H_

// Query assembly over exec/pipeline.h: a Query owns a set of operators and
// an ordered list of pipelines (each ending at a sink or breaker; a breaker
// sources the next pipeline), and RunScanJoinAggregate composes the
// canonical scan -> bloom -> join -> group-by plan — the TPC-H-Q3-shaped
// workload the end-to-end bench and tests run across scalar/AVX2/AVX-512.
//
// The result representation is canonical (group rows in ascending key
// order with exact commutative aggregates), so a plan's QueryResult is
// byte-identical across ISAs, thread counts, chunk sizes, and scan modes —
// the property exec_test.cc checks against a hand-composed operator
// sequence.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "exec/pipeline.h"

namespace simddb::exec {

/// Owns operators and runs their pipelines in order.
class Query {
 public:
  /// Constructs an operator owned by this query; returns a borrowed pointer
  /// for wiring into pipelines.
  template <typename Op, typename... Args>
  Op* Add(Args&&... args) {
    auto op = std::make_unique<Op>(std::forward<Args>(args)...);
    Op* raw = op.get();
    ops_.push_back(std::move(op));
    return raw;
  }

  /// Appends a pipeline (first operator is its source). Pipelines run in
  /// insertion order; a breaker must be the sink of an earlier pipeline
  /// than the one it sources.
  void AddPipeline(std::vector<Operator*> ops) {
    pipelines_.emplace_back(std::move(ops));
  }

  /// Runs every pipeline to completion in order.
  void Run(const ExecConfig& cfg) {
    for (Pipeline& p : pipelines_) p.Run(cfg);
  }

  const std::vector<Pipeline>& pipelines() const { return pipelines_; }

 private:
  std::vector<std::unique_ptr<Operator>> ops_;
  std::vector<Pipeline> pipelines_;
};

/// The Q3-shaped plan: build relation R(pk, attr) filtered by pk in
/// [r_lo, r_hi], probe relation S(fk, val) filtered by val in [s_lo, s_hi],
/// joined on S.fk = R.pk (R keys unique), grouped by R.attr with
/// SUM/COUNT/MIN/MAX over S.val.
struct ScanJoinAggregatePlan {
  const uint32_t* r_keys = nullptr;   ///< R primary keys (unique)
  const uint32_t* r_attrs = nullptr;  ///< R group attribute column
  size_t n_r = 0;
  uint32_t r_lo = 0, r_hi = 0xFFFFFFFFu;

  const uint32_t* s_fks = nullptr;   ///< S foreign keys into R
  const uint32_t* s_vals = nullptr;  ///< S value column (filter + aggregate)
  size_t n_s = 0;
  uint32_t s_lo = 0, s_hi = 0xFFFFFFFFu;

  /// Compressed base tables (compress/column.h). Setting a side's pair
  /// replaces that side's raw pointers: the plan scans it through the
  /// scan-over-compressed front-end (CompressedScanOp, or
  /// FusedScanCompressed on the fused path), the row count comes from the
  /// columns, and the result stays byte-identical to the raw-column plan.
  /// Either side may be compressed independently.
  const compress::CompressedColumn* r_keys_c = nullptr;
  const compress::CompressedColumn* r_attrs_c = nullptr;
  const compress::CompressedColumn* s_fks_c = nullptr;
  const compress::CompressedColumn* s_vals_c = nullptr;

  /// kCompact drives the SelectionScan kernels; kBitmap evaluates the
  /// predicate into chunk bitmaps and materializes downstream.
  ScanMode scan_mode = ScanMode::kCompact;
  /// 0 disables the Bloom semi-join before the probe.
  int bloom_bits_per_key = 0;
  int bloom_k = 4;
  /// Nonzero inserts a hash-partition barrier on the probe side before the
  /// join probe (exercises the partition breaker; results are unchanged).
  uint32_t partition_fanout = 0;
  size_t max_groups_hint = 1024;
};

/// Canonical query result: one row per group, ascending group key.
struct QueryResult {
  std::vector<uint32_t> group_keys;
  std::vector<uint64_t> sums;
  std::vector<uint32_t> counts;
  std::vector<uint32_t> mins;
  std::vector<uint32_t> maxs;

  // Cardinalities for sanity checks and bench labels.
  uint64_t rows_build = 0;   ///< R rows surviving the scan (table size)
  uint64_t rows_scanned = 0; ///< S rows surviving the scan
  uint64_t rows_bloomed = 0; ///< S rows surviving the Bloom probe
  uint64_t rows_joined = 0;  ///< join matches fed to the group-by

  /// True when the probe side ran the template-fused pipeline (exec/
  /// fused.h) instead of the dynamic Operator chain. The result rows are
  /// byte-identical either way; this only records which executor ran.
  bool used_fused = false;
};

/// Appends the plan's build pipeline to `q`: R scan -> [materialize] ->
/// hash build (breaker), and returns the breaker. Shared by RunDynamic,
/// RunFused, and external drivers that assemble probe sides themselves
/// (exec/shared_scan.h).
HashBuildOp* AddBuildPipeline(Query& q, const ScanJoinAggregatePlan& plan);

/// True when a fused instantiation exists for the plan's probe-side shape:
/// scan -> [bloom] -> join probe -> group-by, in either scan mode, on any
/// ISA. A partition barrier breaks the stream mid-pipeline, so partitioned
/// plans route to the dynamic executor.
bool FusedPlanSupported(const ScanJoinAggregatePlan& plan);

/// Assembles and runs the plan end to end on the shared TaskPool. Under
/// PipelineMode kAuto/kFused a supported plan runs its probe side through
/// the template-fused pipeline (build side and unsupported shapes use the
/// dynamic executor); kDynamic forces the dynamic chain everywhere. The
/// whole-query wall time is recorded into the `exec_fused_ns` or
/// `exec_dynamic_ns` phase timer according to the path taken.
QueryResult RunScanJoinAggregate(const ScanJoinAggregatePlan& plan,
                                 const ExecConfig& cfg);

}  // namespace simddb::exec

#endif  // SIMDDB_EXEC_QUERY_H_
