#ifndef SIMDDB_EXEC_PIPELINE_H_
#define SIMDDB_EXEC_PIPELINE_H_

// Push-based, morsel-parallel pipeline executor over exec/chunk.h chunks.
//
// A Pipeline is a chain of Operators. The first operator is a *source*: the
// executor dispatches its deterministic chunk grid onto the shared TaskPool
// (util/task_pool.h) and each worker lane drives its chunks down the chain
// with Push — operators transform into per-lane scratch chunks, so a whole
// pipeline runs morsel-parallel with zero cross-lane synchronization until
// a breaker. Pipeline breakers (hash build, partition barrier) absorb
// chunks into seq-slotted staging (the SelectionScanParallel compaction
// idiom: results land by chunk ordinal, not by lane, so materialized state
// is byte-identical for every thread count and steal schedule) and run
// their parallel phase in Finish, backed by the TaskPool and its
// PhaseBarrier-based operators; intermediates are placed via
// numa/placement.h.
//
// Adapters wrap the existing kernels unchanged: SelectionScan (source),
// BloomFilter::Probe, LinearProbingTable::Probe, ParallelPartitionPass,
// GroupByAggregator. Every Push is timed into a per-operator obs phase
// timer (exec_*_ns) and counted into `chunks_pushed`; the converters count
// `bitmap_to_sel` / `sel_to_bitmap` (see chunk.cc).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bloom/bloom_filter.h"
#include "agg/group_by.h"
#include "compress/column.h"
#include "core/isa.h"
#include "exec/chunk.h"
#include "hash/linear_probing.h"
#include "numa/placement.h"
#include "partition/parallel_partition.h"
#include "partition/partition_fn.h"
#include "scan/selection_scan.h"
#include "util/aligned_buffer.h"

namespace simddb::exec {

/// Which executor drives a query's streaming pipelines. kAuto picks the
/// template-fused instantiation (exec/fused.h) whenever the plan shape has
/// one and falls back to the dynamic Operator chain otherwise; kDynamic
/// forces the dynamic chain (the byte-identity reference); kFused asks for
/// fusion explicitly but still falls back on unsupported shapes — the
/// fused layer never changes which plans are runnable, only how fast the
/// supported ones run. Which path actually ran is observable via the
/// `pipelines_fused` / `pipelines_dynamic` counters.
enum class PipelineMode { kAuto, kDynamic, kFused };

/// How operator variants are chosen. kStatic runs cfg.isa and the plan's
/// scan mode everywhere (the historical behavior); kAdaptive lets an
/// AdaptiveDispatcher (exec/adaptive.h) re-time the supported
/// {scalar, AVX2, AVX-512} x {compact, bitmap} variants on live chunks and
/// switch each operator to the current winner mid-query. Results are
/// byte-identical either way — variants only differ in speed.
enum class IsaMode { kStatic, kAdaptive };

/// Explore/exploit pacing for IsaMode::kAdaptive.
struct AdaptiveParams {
  /// K: timed chunks per variant per explore round. At low selectivity the
  /// post-scan chunks shrink to a few tuples, so a round's fresh sample
  /// must span several chunks or timing jitter drowns the real ranking and
  /// near-tie variants flip-flop.
  uint32_t explore_chunks = 4;
  /// M: chunks run on the round's winner before re-exploring. Small enough
  /// to re-explore a few times within one 2K-chunk grid (tracking phase
  /// changes like the selectivity ramp), large enough that the explore tax
  /// — (V-1)*K non-winner chunks per round — stays ~2% of the schedule.
  uint32_t exploit_chunks = 1020;
  /// Test hook: force the exploit winner to rotate deterministically every
  /// round (round % n_variants) instead of following the timings, so tests
  /// can prove byte-identity across guaranteed mid-query switches.
  bool rotate_for_testing = false;
};

class AdaptiveDispatcher;

/// Per-run execution parameters, shared by every operator of a query.
struct ExecConfig {
  Isa isa = Isa::kScalar;
  int threads = 1;
  /// Tuples per chunk (any value >= 1; tests sweep odd sizes).
  size_t chunk_tuples = kDefaultChunkTuples;
  /// Placement policy for breaker intermediates (materialized build sides,
  /// partition outputs). Probe-shared structures (table bank, bloom words)
  /// are always interleaved.
  numa::Placement placement = numa::Placement::kNodeLocal;
  uint64_t seed = 42;
  PipelineMode pipeline_mode = PipelineMode::kAuto;
  IsaMode isa_mode = IsaMode::kStatic;
  AdaptiveParams adaptive;
  /// Set by RunScanJoinAggregate while isa_mode == kAdaptive; operators
  /// consult it per chunk when non-null. Borrowed — owned by the query
  /// runner for the duration of the run.
  AdaptiveDispatcher* dispatcher = nullptr;
};

/// The scan variant an ISA maps to in the executor (store-direct family:
/// chunk outputs are L1-resident, so the indirect streaming variants have
/// nothing to win).
ScanVariant ScanVariantForIsa(Isa isa);

/// Pipeline operator: Open once, Push per chunk (concurrently, one lane per
/// chunk), Finish once after every source chunk drained. Operators that
/// continue the chain call PushNext; sinks and breakers absorb.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual const char* name() const = 0;

  /// `lanes` is the max concurrent worker id + 1; `n_source_chunks` the
  /// size of the source grid feeding this pipeline (for seq-slotted
  /// staging). Also samples MetricsEnabled() into `timed_` — derived
  /// overrides must call this base so the per-push instrumentation gate is
  /// hoisted out of the Push hot path (one check per pipeline, not per
  /// chunk).
  virtual void Open(const ExecConfig& cfg, int lanes, size_t n_source_chunks);

  /// Source-role open, called on a pipeline's first operator only. Kept
  /// separate from Open so a breaker re-opened as the source of the next
  /// pipeline does not clobber the results it materialized as a sink.
  /// Samples `timed_` like Open.
  virtual void OpenSource(const ExecConfig& cfg, int lanes);

  /// Consumes one chunk on `lane`. The chunk belongs to the caller and may
  /// be recycled after Push returns; operators forward either the same
  /// chunk (in-place transforms) or a per-lane scratch chunk.
  virtual void Push(Chunk& c, int lane) = 0;

  /// Drains buffered state; breakers run their parallel phase here (called
  /// from the submitting thread, so the full TaskPool is available).
  virtual void Finish() {}

  // Source role (first operator of a pipeline; breakers expose it for the
  // pipeline after their barrier).
  virtual size_t SourceChunks(const ExecConfig& cfg) const {
    (void)cfg;
    return 0;
  }
  virtual void Produce(size_t chunk, int lane) { (void)chunk, (void)lane; }

  /// Tuples this operator has emitted downstream (or absorbed, for sinks).
  uint64_t rows_out() const {
    return rows_out_.load(std::memory_order_relaxed);
  }

  void set_next(Operator* n) { next_ = n; }

 protected:
  /// Forwards a chunk, counting `chunks_pushed` and the operator's rows.
  void PushNext(Chunk& c, int lane);
  void CountRows(uint64_t n) {
    rows_out_.fetch_add(n, std::memory_order_relaxed);
  }

  ExecConfig cfg_;
  Operator* next_ = nullptr;
  /// MetricsEnabled() sampled at Open/OpenSource: the per-push phase-timer
  /// and chunk-counter gate, hoisted out of the Push inner loop. Toggling
  /// metrics mid-pipeline takes effect at the next Open.
  bool timed_ = false;

 private:
  std::atomic<uint64_t> rows_out_{0};
};

/// How the scan source represents qualifying tuples in the chunks it
/// emits. kCompact wraps the paper's SelectionScan kernels (dense output);
/// kBitmap copies the morsel and evaluates the predicate into the chunk's
/// bitmap, leaving materialization to a downstream MaterializeOp — the
/// sel/bitmap-duality path.
enum class ScanMode { kCompact, kBitmap };

/// Source adapter over a two-column base table (keys, vals) with the range
/// predicate lo <= x <= hi on either column. Emits chunks with col 0 =
/// keys, col 1 = vals.
class ScanOp final : public Operator {
 public:
  ScanOp(const uint32_t* keys, const uint32_t* vals, size_t n, uint32_t lo,
         uint32_t hi, bool filter_on_vals, ScanMode mode);

  const char* name() const override { return "scan"; }
  void OpenSource(const ExecConfig& cfg, int lanes) override;
  void Push(Chunk& c, int lane) override;  // sources are never pushed into
  size_t SourceChunks(const ExecConfig& cfg) const override;
  void Produce(size_t chunk, int lane) override;

  /// Opt-in: drop chunks with zero qualifying tuples instead of pushing
  /// them through the chain. Results are unchanged (empty chunks are no-ops
  /// for every downstream operator), but each member of a shared sweep
  /// (exec/shared_scan.h) only pays per-chunk downstream cost where its
  /// predicate actually selects something — the `chunks_pushed` reduction
  /// the serving bench gates on. Off by default: solo pipelines keep the
  /// historical all-chunks behavior that existing bench gates pin.
  void set_skip_empty(bool v) { skip_empty_ = v; }

 private:
  const uint32_t* keys_;
  const uint32_t* vals_;
  size_t n_;
  uint32_t lo_, hi_;
  bool filter_on_vals_;
  ScanMode mode_;
  bool skip_empty_ = false;
  std::vector<std::unique_ptr<Chunk>> out_;  // one per lane
};

/// Source adapter over compressed base columns (compress/column.h): the
/// scan-over-compressed front-end. Emits exactly the chunks ScanOp would
/// emit for the decompressed columns — same grid, same per-chunk contents,
/// same visibility representation — so a compressed plan is byte-identical
/// to its raw twin by construction. Per chunk it walks the overlapped
/// 1024-value blocks and classifies each against the predicate via the
/// FOR-domain zone map (compress::ClassifyBlock): skipped blocks
/// contribute nothing without their packed bytes ever being read,
/// all-pass blocks decode straight into the output with no per-value
/// predicate evaluation, and mixed blocks decode into per-lane scratch
/// (cached by block id, so sub-block chunk grids do not re-decode) and run
/// the ordinary SelectionScan / RangePredicateBitmap kernels on the
/// just-unpacked values.
class CompressedScanOp final : public Operator {
 public:
  /// Scans (keys, vals) with lo <= x <= hi on the column selected by
  /// filter_on_vals; columns must be the same length.
  CompressedScanOp(const compress::CompressedColumn* keys,
                   const compress::CompressedColumn* vals, uint32_t lo,
                   uint32_t hi, bool filter_on_vals, ScanMode mode);

  const char* name() const override { return "compressed_scan"; }
  void OpenSource(const ExecConfig& cfg, int lanes) override;
  void Push(Chunk& c, int lane) override;  // sources are never pushed into
  size_t SourceChunks(const ExecConfig& cfg) const override;
  void Produce(size_t chunk, int lane) override;

 private:
  struct Lane {
    std::unique_ptr<Chunk> out;
    /// One decoded block per column, tagged with its block id: a chunk
    /// grid finer than the block grid re-reads the same decode.
    AlignedBuffer<uint32_t> key_buf, val_buf;
    size_t key_block = SIZE_MAX, val_block = SIZE_MAX;
  };

  /// Decoded values of block b of the key (which == 0) or val column,
  /// through the lane's block cache.
  const uint32_t* Decoded(Lane& l, int which, size_t b, Isa isa);

  const compress::CompressedColumn* keys_;
  const compress::CompressedColumn* vals_;
  size_t n_;
  uint32_t lo_, hi_;
  bool filter_on_vals_;
  ScanMode mode_;
  std::vector<Lane> lanes_;
};

/// In-place materializer: converts bitmap/selection chunks to dense
/// (bitmap -> selection -> compact), the boundary between predicate
/// evaluation and the dense-input operator kernels.
class MaterializeOp final : public Operator {
 public:
  const char* name() const override { return "materialize"; }
  void Push(Chunk& c, int lane) override;
};

/// Breaker sink: materializes the build relation into seq-slotted staging,
/// then in Finish builds the linear-probing join table (2x buckets,
/// interleaved placement — every probe lane reads it) and optionally a
/// Bloom filter over the build keys for the probe pipeline's semi-join.
class HashBuildOp final : public Operator {
 public:
  /// bloom_bits_per_key == 0 disables the filter.
  HashBuildOp(int bloom_bits_per_key, int bloom_k);

  const char* name() const override { return "hash_build"; }
  void Open(const ExecConfig& cfg, int lanes, size_t n_source_chunks) override;
  void Push(Chunk& c, int lane) override;
  void Finish() override;

  const LinearProbingTable* table() const { return table_.get(); }
  const BloomFilter* bloom() const { return bloom_.get(); }
  size_t build_rows() const { return n_build_; }

 private:
  int bloom_bits_per_key_;
  int bloom_k_;
  size_t slot_cap_ = 0;
  AlignedBuffer<uint32_t> mat_keys_, mat_pays_;
  std::vector<size_t> counts_;
  size_t n_build_ = 0;
  std::unique_ptr<LinearProbingTable> table_;
  std::unique_ptr<BloomFilter> bloom_;
};

/// Bloom semi-join adapter: keeps tuples whose col-0 key may be in the
/// build side. Vector probes emit qualifiers out of input order within a
/// chunk, as documented for BloomFilter::Probe.
class BloomProbeOp final : public Operator {
 public:
  explicit BloomProbeOp(const HashBuildOp* build) : build_(build) {}

  const char* name() const override { return "bloom"; }
  void Open(const ExecConfig& cfg, int lanes, size_t n_source_chunks) override;
  void Push(Chunk& c, int lane) override;

 private:
  const HashBuildOp* build_;
  std::vector<std::unique_ptr<Chunk>> out_;
};

/// Join probe adapter over the breaker's table: (key, val) chunks become
/// (key, s_val, r_pay) chunks, one row per match. Build keys are unique
/// (key/FK join), so matches never exceed the chunk's tuple count.
class HashJoinProbeOp final : public Operator {
 public:
  explicit HashJoinProbeOp(const HashBuildOp* build) : build_(build) {}

  const char* name() const override { return "join_probe"; }
  void Open(const ExecConfig& cfg, int lanes, size_t n_source_chunks) override;
  void Push(Chunk& c, int lane) override;

 private:
  const HashBuildOp* build_;
  std::vector<std::unique_ptr<Chunk>> out_;
};

/// Breaker: materializes its input, runs one morsel-parallel buffered
/// partition pass (ParallelPartitionPass — histogram, interleaved prefix
/// sum, shuffle behind a PhaseBarrier) in Finish, and re-streams the
/// partitioned rows as the source of the next pipeline. Output buffers are
/// placed per cfg.placement.
class PartitionOp final : public Operator {
 public:
  /// Hash-partitions on col 0 into `fanout` partitions.
  explicit PartitionOp(uint32_t fanout);

  const char* name() const override { return "partition"; }
  void Open(const ExecConfig& cfg, int lanes, size_t n_source_chunks) override;
  void OpenSource(const ExecConfig& cfg, int lanes) override;
  void Push(Chunk& c, int lane) override;
  void Finish() override;
  size_t SourceChunks(const ExecConfig& cfg) const override;
  void Produce(size_t chunk, int lane) override;

  /// Partition start offsets (fanout + 1 entries) after Finish.
  const uint32_t* starts() const { return starts_.data(); }
  uint32_t fanout() const { return fanout_; }

 private:
  uint32_t fanout_;
  size_t slot_cap_ = 0;
  AlignedBuffer<uint32_t> mat_keys_, mat_pays_;
  std::vector<size_t> counts_;
  size_t n_rows_ = 0;
  AlignedBuffer<uint32_t> out_keys_, out_pays_;
  std::vector<uint32_t> starts_;
  ParallelPartitionResources res_;
  std::vector<std::unique_ptr<Chunk>> out_;  // source-role lane chunks
};

/// Aggregation sink: per-lane GroupByAggregator partials (key = col
/// `key_col`, value = col `val_col`), merged in Finish and extracted in
/// ascending key order — the canonical result representation, identical
/// across ISAs, thread counts, and chunk sizes.
class GroupBySink final : public Operator {
 public:
  GroupBySink(size_t max_groups_hint, int key_col, int val_col);

  const char* name() const override { return "group_by"; }
  void Open(const ExecConfig& cfg, int lanes, size_t n_source_chunks) override;
  void Push(Chunk& c, int lane) override;
  void Finish() override;

  size_t num_groups() const { return keys_.size(); }
  const std::vector<uint32_t>& keys() const { return keys_; }
  const std::vector<uint64_t>& sums() const { return sums_; }
  const std::vector<uint32_t>& counts() const { return counts_; }
  const std::vector<uint32_t>& mins() const { return mins_; }
  const std::vector<uint32_t>& maxs() const { return maxs_; }

 private:
  size_t max_groups_hint_;
  int key_col_, val_col_;
  std::vector<std::unique_ptr<GroupByAggregator>> partials_;
  std::vector<uint32_t> keys_, counts_, mins_, maxs_;
  std::vector<uint64_t> sums_;
};

/// Merges per-lane group-by partials (into partials[0]) and extracts the
/// canonical result rows: ascending group key, exact commutative
/// aggregates. Both executors end their group-by here — GroupBySink::Finish
/// and the fused pipeline's FusedGroupBy::Finalize — which is what makes a
/// fused QueryResult byte-identical to the dynamic one by construction.
/// Output vectors are resized to the group count.
void CanonicalizeGroups(Isa isa,
                        std::vector<std::unique_ptr<GroupByAggregator>>& partials,
                        std::vector<uint32_t>* keys, std::vector<uint64_t>* sums,
                        std::vector<uint32_t>* counts,
                        std::vector<uint32_t>* mins, std::vector<uint32_t>* maxs);

/// One operator chain. ops[0] must be a source (SourceChunks > 0 or an
/// empty input); the Pipeline chains, Opens, drives and Finishes them.
/// Operators are borrowed — the query owns them (breakers outlive the
/// pipeline that fills them and source the next one).
class Pipeline {
 public:
  explicit Pipeline(std::vector<Operator*> ops) : ops_(std::move(ops)) {}

  /// Runs the pipeline to completion on the shared TaskPool.
  void Run(const ExecConfig& cfg);

  const std::vector<Operator*>& ops() const { return ops_; }

 private:
  std::vector<Operator*> ops_;
};

}  // namespace simddb::exec

#endif  // SIMDDB_EXEC_PIPELINE_H_
