// Scalar backend + runtime dispatch for the template-fused pipelines.
// The AVX2/AVX-512 instantiations live in fused_avx2.cc / fused_avx512.cc
// so their inner loops compile under the backend's ISA flags, mirroring the
// kernel TU layout (scan/selection_scan_avx2.cc etc.).

#include "exec/fused.h"

#include <atomic>

#include "exec/adaptive.h"
#include "obs/metrics.h"

namespace simddb::exec {
namespace {

// Registry keeps raw pointers, so the counter must have static storage.
obs::Counter g_pipelines_fused("pipelines_fused");

std::unique_ptr<FusedProbeRunner> MakeRunnerForIsa(
    Isa isa, const FusedProbeSpec& spec, ScanMode mode,
    std::vector<std::unique_ptr<GroupByAggregator>>* shared) {
  switch (isa) {
    case Isa::kAvx512:
      return MakeFusedProbeRunner<Isa::kAvx512>(spec, mode, shared);
    case Isa::kAvx2:
      return MakeFusedProbeRunner<Isa::kAvx2>(spec, mode, shared);
    default:
      return MakeFusedProbeRunner<Isa::kScalar>(spec, mode, shared);
  }
}

// Adaptive routing across the per-ISA instantiations: one runner per
// (ISA, scan-mode) variant, all Prepared over the same deterministic chunk
// grid and one shared set of group-by partials. The grid is carved into
// rounds of nv explore spans (explore_chunks chunks each, timed per chunk)
// followed by one exploit span (geometrically growing), exactly like the
// chunk-paced kinds — but the whole span structure is precomputed and the
// ENTIRE grid runs in ONE morsel-parallel dispatch, the same single
// dispatch + barrier join the static fused path pays. Acquire's positional
// schedule can't express that (it hands out slots in call order), so the
// driver paces itself: explore variants come from the deterministic
// rotation (ExploreVariant), and each exploit span resolves its winner
// lazily — the first lane to touch it calls DecideAndGetWinner, deciding
// the round from whatever explore reports have landed by then. Morsel
// order is near-sequential, so in practice that is the round's own explore
// window; under heavy stealing a span may decide early from the previous
// round's decayed history, which can only cost timing, never correctness.
//
// Explore chunks are timed lane-locally with thread CPU time (a lane
// preempted mid-chunk — by a co-tenant, or by sibling lanes when threads
// oversubscribe the cores — must not charge the stall to the variant it
// happened to be running). Concurrent runners are safe because per-lane
// state is indexed by the dispatch's worker id, which each lane owns
// exclusively no matter which runner it routes a chunk to.
FusedProbeResult RunFusedProbeAdaptive(const FusedProbeSpec& spec,
                                       const ExecConfig& cfg) {
  AdaptiveDispatcher* d = cfg.dispatcher;
  const int nv = d->num_variants(OpKind::kFusedWindow);
  std::vector<std::unique_ptr<GroupByAggregator>> shared;
  std::vector<std::unique_ptr<FusedProbeRunner>> runners;
  runners.reserve(static_cast<size_t>(nv));
  for (int v = 0; v < nv; ++v) {
    const AdaptiveVariant& var = d->variant(OpKind::kFusedWindow, v);
    runners.push_back(MakeRunnerForIsa(var.isa, spec, var.scan_mode, &shared));
    runners.back()->Prepare(cfg);
  }
  const size_t total =
      spec.n == 0 ? 0 : (spec.n + cfg.chunk_tuples - 1) / cfg.chunk_tuples;
  const int lanes = runners.empty() ? 1 : runners[0]->lanes();
  const size_t explore_w = cfg.adaptive.explore_chunks < 1
                               ? size_t{1}
                               : size_t{cfg.adaptive.explore_chunks};
  // Exploit spans grow geometrically: early (low-evidence) decisions
  // commit few chunks, later ones — backed by every prior round's decayed
  // samples — commit more. Growth does NOT reset when the winner changes:
  // the 10% hysteresis in DecideWinner already blocks noise-driven
  // switches, so a change either crosses a real margin (give the new
  // winner the big span) or oscillates between variants so close that
  // either is fine — and resetting on those oscillations is what
  // multiplies rounds and explore tax. The cap scales with the grid (half
  // of it) rather than honoring cfg.adaptive.exploit_chunks exactly, so
  // the round count stays logarithmic in the grid size.
  const size_t exploit_cap = std::max(
      cfg.adaptive.exploit_chunks < 1 ? size_t{1}
                                      : size_t{cfg.adaptive.exploit_chunks},
      total / 2);
  size_t exploit_w =
      std::min(std::max(size_t{16}, static_cast<size_t>(lanes)), exploit_cap);
  struct Span {
    int variant;     // explore: fixed by rotation; exploit: -1, lazy
    uint64_t round;  // round index (drives decay + rotate_for_testing)
    size_t begin;
    size_t end;
  };
  std::vector<Span> spans;
  {
    size_t next = 0;
    uint64_t round = 0;
    while (next < total) {
      for (int s = 0; s < nv && next < total; ++s) {
        const size_t end = std::min(total, next + explore_w);
        spans.push_back(
            {d->ExploreVariant(OpKind::kFusedWindow, round, s), round, next,
             end});
        next = end;
      }
      if (next < total) {
        const size_t end = std::min(total, next + exploit_w);
        exploit_w = std::min(exploit_w * 4, exploit_cap);
        spans.push_back({-1, round, next, end});
        next = end;
      }
      ++round;
    }
  }
  // chunk -> span index, so lanes map stolen morsels in O(1); resolved[]
  // pins each exploit span to the winner the first-touching lane decided
  // (atomics live outside Span so the vector stays movable while built).
  std::vector<uint32_t> span_of(total);
  for (uint32_t si = 0; si < spans.size(); ++si) {
    for (size_t c = spans[si].begin; c < spans[si].end; ++c) {
      span_of[c] = si;
    }
  }
  std::vector<std::atomic<int>> resolved(spans.size());
  for (auto& r : resolved) r.store(-1, std::memory_order_relaxed);
  if (total > 0) {
    TaskPool::Get().ParallelFor(total, lanes, [&](int lane, size_t c) {
      const uint32_t si = span_of[c];
      const Span& sp = spans[si];
      if (sp.variant >= 0) {
        const uint64_t t0 = obs::ThreadCpuNs();
        runners[static_cast<size_t>(sp.variant)]->RunChunk(c, lane);
        d->Report(OpKind::kFusedWindow, sp.variant, obs::ThreadCpuNs() - t0,
                  1);
        d->CountExplored(1);
        d->CountChosen(OpKind::kFusedWindow, sp.variant, 1);
        return;
      }
      int var = resolved[si].load(std::memory_order_relaxed);
      if (var < 0) {
        int w = d->DecideAndGetWinner(OpKind::kFusedWindow, sp.round);
        int expected = -1;
        if (!resolved[si].compare_exchange_strong(expected, w,
                                                  std::memory_order_relaxed)) {
          w = expected;
        }
        var = w;
      }
      // Time 1 in 16 exploit chunks and fold them into the same stats.
      // Interleaved explore chunks share one core frequency, so an
      // AVX-512 frequency license drags every variant's explore sample
      // down equally and the measured ranking compresses under the
      // hysteresis band — the incumbent can anchor on a variant whose
      // homogeneous long-run throughput is far worse. Exploit spans ARE
      // the homogeneous long run, so sparse samples from them feed the
      // winner's true settled cost back into the comparison at ~0.1% of
      // the span's chunks in timer syscalls.
      if ((c & 15) == 0) {
        const uint64_t t0 = obs::ThreadCpuNs();
        runners[static_cast<size_t>(var)]->RunChunk(c, lane);
        d->Report(OpKind::kFusedWindow, var, obs::ThreadCpuNs() - t0, 1);
      } else {
        runners[static_cast<size_t>(var)]->RunChunk(c, lane);
      }
      d->CountChosen(OpKind::kFusedWindow, var, 1);
    });
  }
  FusedProbeResult res;
  for (const auto& r : runners) {
    res.rows_scanned += r->rows_scanned();
    res.rows_bloomed += r->rows_bloomed();
    res.rows_joined += r->rows_joined();
  }
  CanonicalizeGroups(cfg.isa, shared, &res.group_keys, &res.sums, &res.counts,
                     &res.mins, &res.maxs);
  return res;
}

}  // namespace

namespace detail {

void GatherPairScalar(const uint32_t* a, const uint32_t* b,
                      const uint32_t* sel, size_t cnt, uint32_t* out_a,
                      uint32_t* out_b) {
  for (size_t i = 0; i < cnt; ++i) {
    const uint32_t s = sel[i];
    out_a[i] = a[s];
    out_b[i] = b[s];
  }
}

}  // namespace detail

template FusedProbeResult RunFusedProbe<Isa::kScalar>(const FusedProbeSpec&,
                                                      const ExecConfig&);
template std::unique_ptr<FusedProbeRunner> MakeFusedProbeRunner<Isa::kScalar>(
    const FusedProbeSpec&, ScanMode,
    std::vector<std::unique_ptr<GroupByAggregator>>*);

FusedProbeResult RunFusedProbePipeline(const FusedProbeSpec& spec,
                                       const ExecConfig& cfg) {
  g_pipelines_fused.Add(1);
  if (cfg.dispatcher != nullptr) return RunFusedProbeAdaptive(spec, cfg);
  // One ISA switch per pipeline — the only dispatch the fused path pays.
  switch (cfg.isa) {
    case Isa::kAvx512:
      return RunFusedProbe<Isa::kAvx512>(spec, cfg);
    case Isa::kAvx2:
      return RunFusedProbe<Isa::kAvx2>(spec, cfg);
    default:
      return RunFusedProbe<Isa::kScalar>(spec, cfg);
  }
}

}  // namespace simddb::exec
