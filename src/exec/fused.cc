// Scalar backend + runtime dispatch for the template-fused pipelines.
// The AVX2/AVX-512 instantiations live in fused_avx2.cc / fused_avx512.cc
// so their inner loops compile under the backend's ISA flags, mirroring the
// kernel TU layout (scan/selection_scan_avx2.cc etc.).

#include "exec/fused.h"

#include "obs/metrics.h"

namespace simddb::exec {
namespace {

// Registry keeps raw pointers, so the counter must have static storage.
obs::Counter g_pipelines_fused("pipelines_fused");

}  // namespace

namespace detail {

void GatherPairScalar(const uint32_t* a, const uint32_t* b,
                      const uint32_t* sel, size_t cnt, uint32_t* out_a,
                      uint32_t* out_b) {
  for (size_t i = 0; i < cnt; ++i) {
    const uint32_t s = sel[i];
    out_a[i] = a[s];
    out_b[i] = b[s];
  }
}

}  // namespace detail

template FusedProbeResult RunFusedProbe<Isa::kScalar>(const FusedProbeSpec&,
                                                      const ExecConfig&);

FusedProbeResult RunFusedProbePipeline(const FusedProbeSpec& spec,
                                       const ExecConfig& cfg) {
  g_pipelines_fused.Add(1);
  // One ISA switch per pipeline — the only dispatch the fused path pays.
  switch (cfg.isa) {
    case Isa::kAvx512:
      return RunFusedProbe<Isa::kAvx512>(spec, cfg);
    case Isa::kAvx2:
      return RunFusedProbe<Isa::kAvx2>(spec, cfg);
    default:
      return RunFusedProbe<Isa::kScalar>(spec, cfg);
  }
}

}  // namespace simddb::exec
