#ifndef SIMDDB_COMPRESS_COLUMN_H_
#define SIMDDB_COMPRESS_COLUMN_H_

// Block-compressed 32-bit columns: frame-of-reference + bit-packing with
// optional per-block delta coding, the storage side of scan-over-compressed.
//
// A CompressedColumn holds ceil(n / kBlockTuples) fixed 1024-value blocks.
// CompressColumn picks each block's encoding independently:
//
//   kFor       values stored as (v - min) at BitsFor(max - min) bits — the
//              frame-of-reference form; clustered value ranges (a day of
//              timestamps, a tenant's ids) pack to a few bits regardless of
//              their absolute magnitude.
//   kDeltaFor  for non-decreasing blocks (sorted keys, ramps): consecutive
//              differences at BitsFor(max delta) bits with the block's
//              first value as the reference; a dense sorted run packs to
//              ~1 bit/value where plain FOR would need the full range.
//              Chosen only when strictly narrower than kFor.
//
// Every block also records its value-domain [min, max] — the zone map that
// lets a scan classify a whole block against a range predicate without
// touching its packed bytes (ClassifyBlock below). For kFor blocks the
// test is exactly the predicate translated into the FOR domain: with
// lo' = lo -sat ref and hi' = hi - ref, the packed values (which span
// [0, max - ref]) all qualify when lo' == 0 and hi' >= max - ref, and none
// qualify when hi < ref or lo' > max - ref. ClassifyBlock evaluates that
// translation using the meta alone, so skip/all-pass decisions cost two
// compares per 1024 values.
//
// Payload words of all blocks live in one contiguous AlignedBuffer (each
// block starting word-aligned at meta.word_offset) with kPackedPadWords of
// zeroed tail pad — the pack.h overshoot contract for the vector unpack
// kernels. Placement follows util/alloc.h + numa::PlaceBuffer like every
// other operator buffer.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "compress/pack.h"
#include "core/isa.h"
#include "numa/placement.h"
#include "obs/metrics.h"
#include "util/aligned_buffer.h"

namespace simddb::compress {

/// Per-block encoding (see file comment).
enum class BlockEncoding : uint8_t { kFor = 0, kDeltaFor = 1 };

/// Per-block metadata: payload location, FOR reference, zone map, width.
struct BlockMeta {
  uint64_t word_offset = 0;  ///< payload start in the column's word buffer
  uint32_t reference = 0;    ///< kFor: block min; kDeltaFor: first value
  uint32_t min = 0, max = 0; ///< value-domain bounds (zone map)
  uint8_t bits = 0;          ///< packed width, 0..32 (0: all values == ref)
  BlockEncoding encoding = BlockEncoding::kFor;
};

/// Zone-map verdict of one block against an inclusive range predicate.
enum class BlockClass { kSkip, kAllPass, kMixed };

/// Classifies a block against lo <= v <= hi from its metadata alone —
/// the FOR-domain predicate pushdown. Blocks entirely outside the range
/// are skipped (packed bytes never touched); blocks entirely inside are
/// emitted without per-value predicate evaluation.
inline BlockClass ClassifyBlock(const BlockMeta& m, uint32_t lo, uint32_t hi) {
  // Translate the predicate into the FOR domain of the packed values
  // (v' = v - ref spans [min - ref, max - ref]; for kFor, min == ref so
  // the span starts at 0). Saturating at 0 / failing on hi < ref encodes
  // the "predicate starts below / ends before the frame" cases.
  const uint32_t ref = m.reference;
  if (hi < ref || (lo > ref && lo - ref > m.max - ref)) return BlockClass::kSkip;
  const uint32_t lo_for = lo <= ref ? 0 : lo - ref;
  const uint32_t hi_for = hi - ref;  // hi >= ref here
  if (lo_for <= m.min - ref && hi_for >= m.max - ref) return BlockClass::kAllPass;
  return BlockClass::kMixed;
}

// Scan-over-compressed instruments, shared by the dynamic operator
// (exec/pipeline.cc) and the fused stage templates (exec/fused.h) — the
// template instantiations cannot reference file-static counters, so the
// static-storage instances live in column.cc behind these accessors.
obs::Counter& BlocksSkipped();    ///< blocks never unpacked (zone map miss)
obs::Counter& BlocksAllPass();    ///< blocks emitted without evaluation
obs::Counter& BytesUnpacked();    ///< packed payload bytes actually decoded

/// An immutable compressed column. Move-only (owns the payload buffer).
class CompressedColumn {
 public:
  CompressedColumn() = default;

  size_t size() const { return n_; }
  size_t num_blocks() const { return meta_.size(); }
  const BlockMeta& block_meta(size_t b) const { return meta_[b]; }

  /// Rows of block b (kBlockTuples except a short last block).
  size_t block_rows(size_t b) const {
    assert(b < meta_.size());
    return b + 1 < meta_.size() ? kBlockTuples : n_ - b * kBlockTuples;
  }

  /// Decodes block b into out[0 .. block_rows(b)). `out_capacity` must be
  /// >= PackedCapacity(block_rows(b)) — the pack.h slack contract. Counts
  /// the decoded payload into `bytes_unpacked`.
  void DecodeBlock(Isa isa, size_t b, uint32_t* out, size_t out_capacity) const;

  /// Payload + metadata footprint in bytes (the compressed size the bench
  /// footprint gate compares against raw_bytes()).
  size_t packed_bytes() const {
    return payload_words_ * sizeof(uint32_t) + meta_.size() * sizeof(BlockMeta);
  }
  size_t raw_bytes() const { return n_ * sizeof(uint32_t); }

  const uint32_t* words() const { return words_.data(); }

 private:
  friend CompressedColumn CompressColumn(const uint32_t* in, size_t n,
                                         int threads,
                                         numa::Placement placement);

  size_t n_ = 0;
  size_t payload_words_ = 0;  ///< words in use, excluding the pad
  std::vector<BlockMeta> meta_;
  AlignedBuffer<uint32_t> words_;
};

/// Compresses in[0, n) into FOR/delta bit-packed blocks. The payload
/// buffer is allocated via util/alloc.h (AlignedBuffer) and placed with
/// numa::PlaceBuffer for `threads` readers, like breaker intermediates.
CompressedColumn CompressColumn(const uint32_t* in, size_t n, int threads = 1,
                                numa::Placement placement =
                                    numa::Placement::kNodeLocal);

}  // namespace simddb::compress

#endif  // SIMDDB_COMPRESS_COLUMN_H_
