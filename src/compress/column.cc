#include "compress/column.h"

#include <algorithm>

namespace simddb::compress {
namespace {

// Registry keeps raw pointers, so the instruments need static storage.
obs::Counter g_blocks_skipped("blocks_skipped");
obs::Counter g_blocks_all_pass("blocks_all_pass");
obs::Counter g_bytes_unpacked("bytes_unpacked");

}  // namespace

obs::Counter& BlocksSkipped() { return g_blocks_skipped; }
obs::Counter& BlocksAllPass() { return g_blocks_all_pass; }
obs::Counter& BytesUnpacked() { return g_bytes_unpacked; }

void CompressedColumn::DecodeBlock(Isa isa, size_t b, uint32_t* out,
                                   size_t out_capacity) const {
  const BlockMeta& m = meta_[b];
  const size_t rows = block_rows(b);
  assert(out_capacity >= PackedCapacity(rows) &&
         "decode output violates the PackedCapacity slack contract");
  UnpackBlock(isa, words_.data() + m.word_offset, rows,
              m.encoding == BlockEncoding::kFor ? m.reference : 0, m.bits,
              out, out_capacity);
  if (m.encoding == BlockEncoding::kDeltaFor) {
    // The packed values are consecutive differences (first one 0); the
    // running sum from the block's first value reconstructs the run. The
    // dependency chain is why delta is reserved for blocks where it buys
    // real width — the unpack itself stays SIMD either way.
    uint32_t acc = m.reference;
    for (size_t i = 0; i < rows; ++i) {
      acc += out[i];
      out[i] = acc;
    }
  }
  g_bytes_unpacked.Add(PackedWords(rows, m.bits) * sizeof(uint32_t));
}

CompressedColumn CompressColumn(const uint32_t* in, size_t n, int threads,
                                numa::Placement placement) {
  CompressedColumn col;
  col.n_ = n;
  const size_t n_blocks = (n + kBlockTuples - 1) / kBlockTuples;
  col.meta_.resize(n_blocks);

  // Pass 1: per-block stats -> encoding choice and payload layout.
  uint64_t words = 0;
  for (size_t b = 0; b < n_blocks; ++b) {
    const size_t base = b * kBlockTuples;
    const size_t rows = std::min(kBlockTuples, n - base);
    const uint32_t* v = in + base;
    uint32_t mn = v[0], mx = v[0], max_delta = 0;
    bool sorted = true;
    for (size_t i = 1; i < rows; ++i) {
      mn = std::min(mn, v[i]);
      mx = std::max(mx, v[i]);
      if (v[i] < v[i - 1]) {
        sorted = false;
      } else if (sorted) {
        max_delta = std::max(max_delta, v[i] - v[i - 1]);
      }
    }
    const unsigned for_bits = BitsFor(mx - mn);
    const unsigned delta_bits = BitsFor(max_delta);
    BlockMeta& m = col.meta_[b];
    m.min = mn;
    m.max = mx;
    // Delta only when strictly narrower: ties keep FOR, whose decode has
    // no serial reconstruction pass.
    if (sorted && delta_bits < for_bits) {
      m.encoding = BlockEncoding::kDeltaFor;
      m.reference = v[0];
      m.bits = static_cast<uint8_t>(delta_bits);
    } else {
      m.encoding = BlockEncoding::kFor;
      m.reference = mn;
      m.bits = static_cast<uint8_t>(for_bits);
    }
    m.word_offset = words;
    words += PackedWords(rows, m.bits);
  }
  col.payload_words_ = words;
  if (n == 0) return col;

  col.words_.Reset(words + kPackedPadWords);
  col.words_.Clear();  // pad words must be readable AND deterministic
  numa::PlaceBuffer(col.words_.data(), col.words_.size() * sizeof(uint32_t),
                    threads, placement);

  // Pass 2: pack every block's payload.
  std::vector<uint32_t> deltas(kBlockTuples);
  for (size_t b = 0; b < n_blocks; ++b) {
    const BlockMeta& m = col.meta_[b];
    const size_t base = b * kBlockTuples;
    const size_t rows = std::min(kBlockTuples, n - base);
    uint32_t* dst = col.words_.data() + m.word_offset;
    if (m.encoding == BlockEncoding::kFor) {
      PackBlock(in + base, rows, m.reference, m.bits, dst);
    } else {
      deltas[0] = 0;
      for (size_t i = 1; i < rows; ++i) {
        deltas[i] = in[base + i] - in[base + i - 1];
      }
      PackBlock(deltas.data(), rows, 0, m.bits, dst);
    }
  }
  return col;
}

}  // namespace simddb::compress
