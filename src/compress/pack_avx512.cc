// AVX-512 horizontal unpack: 16 values per iteration, width-generic.
//
// Each lane computes its bit position p = i*bits, turns it into a 32-bit
// word index (p >> 5) and an in-word shift (p & 31), and the kernel
// gathers a 64-bit window per lane at 4-byte granularity
// (_mm512_i32gather_epi64 with scale 4 — the vector form of the scalar
// baseline's unaligned 64-bit read). vpsrlvq aligns each lane's value to
// bit 0, vpmovqd narrows the windows back to 32-bit lanes, and one
// mask+add applies the width mask and the FOR reference. No per-width
// shuffle tables: the same loop body serves every width 1..32, so the
// adaptive dispatcher times exactly one AVX-512 unpack variant.
//
// Stores are full 16-lane vectors (out has PackedCapacity(n) elements)
// and the overshooting lanes of the last iteration gather at most
// kPackedPadWords words past the payload — the pack.h buffer contracts.

#include "compress/pack.h"

#include <immintrin.h>

namespace simddb::compress::detail {

void UnpackAvx512(const uint32_t* packed, size_t n, uint32_t ref,
                  unsigned bits, uint32_t* out) {
  const uint32_t mask =
      bits == 32 ? 0xFFFFFFFFu : ((uint32_t{1} << bits) - 1);
  const __m512i vmask = _mm512_set1_epi32(static_cast<int>(mask));
  const __m512i vref = _mm512_set1_epi32(static_cast<int>(ref));
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                         11, 12, 13, 14, 15);
  const __m512i lane_bits =
      _mm512_mullo_epi32(iota, _mm512_set1_epi32(static_cast<int>(bits)));
  const __m512i v31 = _mm512_set1_epi32(31);
  for (size_t i = 0; i < n; i += 16) {
    const __m512i pos = _mm512_add_epi32(
        _mm512_set1_epi32(static_cast<int>(i * bits)), lane_bits);
    const __m512i word = _mm512_srli_epi32(pos, 5);
    const __m512i shift = _mm512_and_si512(pos, v31);
    __m512i g_lo =
        _mm512_i32gather_epi64(_mm512_castsi512_si256(word), packed, 4);
    __m512i g_hi = _mm512_i32gather_epi64(_mm512_extracti64x4_epi64(word, 1),
                                          packed, 4);
    g_lo = _mm512_srlv_epi64(
        g_lo, _mm512_cvtepu32_epi64(_mm512_castsi512_si256(shift)));
    g_hi = _mm512_srlv_epi64(
        g_hi, _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64(shift, 1)));
    __m512i v = _mm512_inserti64x4(
        _mm512_castsi256_si512(_mm512_cvtepi64_epi32(g_lo)),
        _mm512_cvtepi64_epi32(g_hi), 1);
    v = _mm512_add_epi32(_mm512_and_si512(v, vmask), vref);
    _mm512_storeu_si512(reinterpret_cast<void*>(out + i), v);
  }
}

}  // namespace simddb::compress::detail
