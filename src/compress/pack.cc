// Scalar bit-packing and unpacking baseline (see pack.h for the layout).
//
// Both directions run the same position arithmetic: value i lives at bit
// p = i*bits, word p >> 5, shift p & 31. The unpack loop does one
// unaligned 64-bit read per value — a biased value of <= 32 bits at a
// shift of <= 31 always fits in the 64-bit window, so one code path
// covers every width without per-width unrolling. memcpy keeps the
// unaligned reads defined behavior; it compiles to a single mov.

#include "compress/pack.h"

#include <cstring>

namespace simddb::compress {

void PackBlock(const uint32_t* in, size_t n, uint32_t ref, unsigned bits,
               uint32_t* packed) {
  assert(bits <= 32);
  if (bits == 0 || n == 0) return;
  std::memset(packed, 0, PackedWords(n, bits) * sizeof(uint32_t));
  for (size_t i = 0; i < n; ++i) {
    const uint32_t v = in[i] - ref;
    assert(bits == 32 || (v >> bits) == 0);
    const size_t p = i * bits;
    const size_t w = p >> 5;
    const unsigned s = static_cast<unsigned>(p & 31);
    const uint64_t wide = static_cast<uint64_t>(v) << s;
    packed[w] |= static_cast<uint32_t>(wide);
    if (s + bits > 32) packed[w + 1] |= static_cast<uint32_t>(wide >> 32);
  }
}

namespace detail {

void UnpackScalar(const uint32_t* packed, size_t n, uint32_t ref,
                  unsigned bits, uint32_t* out) {
  const uint32_t mask =
      bits == 32 ? 0xFFFFFFFFu : ((uint32_t{1} << bits) - 1);
  for (size_t i = 0; i < n; ++i) {
    const size_t p = i * bits;
    uint64_t window;
    std::memcpy(&window, reinterpret_cast<const uint8_t*>(packed) +
                             ((p >> 5) * sizeof(uint32_t)),
                sizeof(window));
    out[i] = (static_cast<uint32_t>(window >> (p & 31)) & mask) + ref;
  }
}

}  // namespace detail
}  // namespace simddb::compress
