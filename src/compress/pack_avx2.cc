// AVX2 horizontal unpack: 8 values per iteration, width-generic.
//
// Same decomposition as the AVX-512 backend (see pack_avx512.cc): per-lane
// bit positions split into 32-bit word indexes and in-word shifts, two
// 4-lane 64-bit gathers at 4-byte granularity (vpgatherdq, scale 4),
// vpsrlvq per-lane alignment, then a permute that keeps the low dword of
// each 64-bit window before the width mask and FOR reference are applied.
// Full 8-lane stores rely on the PackedCapacity(n) output slack; the last
// iteration's overshooting gathers stay within the kPackedPadWords pad.

#include "compress/pack.h"

#include <immintrin.h>

namespace simddb::compress::detail {

void UnpackAvx2(const uint32_t* packed, size_t n, uint32_t ref, unsigned bits,
                uint32_t* out) {
  const uint32_t mask =
      bits == 32 ? 0xFFFFFFFFu : ((uint32_t{1} << bits) - 1);
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
  const __m256i vref = _mm256_set1_epi32(static_cast<int>(ref));
  const __m256i lane_bits =
      _mm256_mullo_epi32(_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
                         _mm256_set1_epi32(static_cast<int>(bits)));
  const __m256i v31 = _mm256_set1_epi32(31);
  // Low dword of each 64-bit lane; the upper half of the permute result is
  // discarded by the 128-bit cast.
  const __m256i narrow = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const long long* base = reinterpret_cast<const long long*>(packed);
  for (size_t i = 0; i < n; i += 8) {
    const __m256i pos = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(i * bits)), lane_bits);
    const __m256i word = _mm256_srli_epi32(pos, 5);
    const __m256i shift = _mm256_and_si256(pos, v31);
    __m256i g_lo =
        _mm256_i32gather_epi64(base, _mm256_castsi256_si128(word), 4);
    __m256i g_hi =
        _mm256_i32gather_epi64(base, _mm256_extracti128_si256(word, 1), 4);
    g_lo = _mm256_srlv_epi64(
        g_lo, _mm256_cvtepu32_epi64(_mm256_castsi256_si128(shift)));
    g_hi = _mm256_srlv_epi64(
        g_hi, _mm256_cvtepu32_epi64(_mm256_extracti128_si256(shift, 1)));
    const __m128i v_lo =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(g_lo, narrow));
    const __m128i v_hi =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(g_hi, narrow));
    __m256i v = _mm256_set_m128i(v_hi, v_lo);
    v = _mm256_add_epi32(_mm256_and_si256(v, vmask), vref);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
}

}  // namespace simddb::compress::detail
