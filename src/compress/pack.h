#ifndef SIMDDB_COMPRESS_PACK_H_
#define SIMDDB_COMPRESS_PACK_H_

// Horizontal SIMD bit-packing/unpacking for 32-bit columns.
//
// The storage quantum is a fixed 1024-value block packed at one bit width
// b in [0, 32]: value i occupies bits [i*b, (i+1)*b) of a little-endian
// 32-bit word stream (the horizontal layout of the upscaledb/FastPFor
// family, PAPERS.md "Upscaledb: Efficient Integer-Key Compression" — each
// value's bits are contiguous, so a single unpacked position needs one
// unaligned 64-bit read, a variable shift, and a mask, independent of b).
// Values are stored relative to a frame-of-reference `ref` added back
// during unpack; width 0 means "every value equals ref" and carries no
// payload words at all.
//
// The unpack kernels are the scan-over-compressed hot path, so they follow
// the per-ISA TU pattern of exec/chunk_*: a scalar baseline (pack.cc) plus
// AVX2 / AVX-512 backends (pack_avx2.cc / pack_avx512.cc) compiled under
// their own ISA flags. Both vector backends turn the per-value
// read-shift-mask into 64-bit gathers (vpgatherqd's 32-bit-granular cousin
// vpgatherdq) + per-lane variable shifts (vpsrlvq), which makes one
// generic kernel cover every width 1..32 at full vector width — there is
// no per-width specialization to fall out of date. Packing is a one-time
// cold path (load/compress, never per query), so it stays scalar on every
// backend.
//
// Capacity contracts (centralized, mirroring ChunkCapacity /
// SelectionScanCapacity):
//   - The OUTPUT of an unpack must hold PackedCapacity(n) elements: the
//     vector kernels store full 8/16-lane vectors, overshooting n by up to
//     kPackSlackValues - 1 values. Asserted at every unpack entry.
//   - The PACKED buffer must hold PackedWordsCapacity(n, bits) words: the
//     overshooting lanes of the last vector gather up to kPackedPadWords
//     words past the payload, and every 64-bit read may straddle one word
//     boundary. CompressColumn allocates to this contract; kernels assume
//     it.

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "core/isa.h"

namespace simddb::compress {

/// Values per compressed block. A power of two and a multiple of every
/// vector width, so full blocks pack to exactly kBlockTuples * bits / 32
/// words and the unpack main loop never needs a tail.
inline constexpr size_t kBlockTuples = 1024;

/// Slack every unpack output buffer carries beyond its value count: one
/// 16-lane vector of overshoot, the same contract as kChunkSlackTuples
/// (chunks are where unpacked values land).
inline constexpr size_t kPackSlackValues = 16;

/// Elements an unpack output buffer for n values must hold.
inline constexpr size_t PackedCapacity(size_t n) {
  return n + kPackSlackValues;
}

/// Exact payload words of n values at `bits` width.
inline constexpr size_t PackedWords(size_t n, unsigned bits) {
  return (n * bits + 31) / 32;
}

/// Readable pad words the packed buffer needs past the payload: the last
/// vector's overshooting lanes (up to kPackSlackValues - 1 values at up to
/// 32 bits) plus the straddling half of a 64-bit read.
inline constexpr size_t kPackedPadWords = kPackSlackValues;

/// Words a packed buffer for n values at `bits` width must hold.
inline constexpr size_t PackedWordsCapacity(size_t n, unsigned bits) {
  return PackedWords(n, bits) + kPackedPadWords;
}

/// Minimal width that represents every value in [0, range], 0..32.
inline constexpr unsigned BitsFor(uint32_t range) {
  unsigned b = 0;
  while (range != 0) {
    ++b;
    range >>= 1;
  }
  return b;
}

namespace detail {

// Backend kernels (pack.cc / pack_avx2.cc / pack_avx512.cc). All assume
// 1 <= bits <= 32, the packed-buffer pad contract above, and an output
// with PackedCapacity(n) elements; the dispatching wrappers below handle
// bits == 0 and assert the contracts.
void UnpackScalar(const uint32_t* packed, size_t n, uint32_t ref,
                  unsigned bits, uint32_t* out);
void UnpackAvx2(const uint32_t* packed, size_t n, uint32_t ref, unsigned bits,
                uint32_t* out);
void UnpackAvx512(const uint32_t* packed, size_t n, uint32_t ref,
                  unsigned bits, uint32_t* out);

}  // namespace detail

/// Packs (in[i] - ref) for i in [0, n) at `bits` per value. The caller
/// guarantees every biased value fits in `bits` bits (bits >=
/// BitsFor(max - ref)). Zeroes the payload words first, so the packed
/// stream is deterministic. `packed` must hold PackedWordsCapacity(n,
/// bits) words. Scalar on every backend: packing runs once at
/// load/compress time, never inside a query.
void PackBlock(const uint32_t* in, size_t n, uint32_t ref, unsigned bits,
               uint32_t* packed);

/// Unpacks n values: out[i] = ref + bits-wide value i of `packed`.
/// `out_capacity` must be >= PackedCapacity(n) — the slack contract every
/// caller-provided buffer (chunk columns, lane scratch) already satisfies.
inline void UnpackBlock(Isa isa, const uint32_t* packed, size_t n,
                        uint32_t ref, unsigned bits, uint32_t* out,
                        size_t out_capacity) {
  assert(bits <= 32);
  assert(out_capacity >= PackedCapacity(n) &&
         "unpack output violates the PackedCapacity slack contract");
  (void)out_capacity;
  if (n == 0) return;
  if (bits == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = ref;
    return;
  }
  if (isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512)) {
    return detail::UnpackAvx512(packed, n, ref, bits, out);
  }
  if (isa == Isa::kAvx2 && IsaSupported(Isa::kAvx2)) {
    return detail::UnpackAvx2(packed, n, ref, bits, out);
  }
  return detail::UnpackScalar(packed, n, ref, bits, out);
}

}  // namespace simddb::compress

#endif  // SIMDDB_COMPRESS_PACK_H_
