#ifndef SIMDDB_NUMA_TOPOLOGY_H_
#define SIMDDB_NUMA_TOPOLOGY_H_

// NUMA topology discovery without libnuma.
//
// The partition/join/sort pipelines are bandwidth-bound exactly where
// remote-node traffic hurts most (Fig. 16 multi-core scaling), so the
// scheduler and the placement helpers need to know which logical CPUs and
// how much memory each node owns. libnuma is not a dependency we can
// assume, and everything it would tell us is readable from
// /sys/devices/system/node, so discovery parses sysfs directly:
//
//   online        -> which node ids exist ("0" or "0-1,4")
//   node<i>/cpulist -> the node's logical cpus ("0-3,8-11")
//   node<i>/meminfo -> "Node i MemTotal: <n> kB"
//
// Hosts without that tree (non-Linux, containers with masked sysfs) fall
// back to a single node owning every hardware thread — every consumer is
// written so that a 1-node topology reproduces the exact pre-NUMA
// behaviour (no pinning, one steal ring, placement no-ops).
//
// SIMDDB_NUMA_FAKE=<nodes>x<cpus_per_node> (e.g. "2x4") overrides
// discovery with a synthetic topology so the multi-node scheduler and
// placement paths are exercisable on single-node CI machines. Fake
// topologies never pin threads and never call mbind/move_pages — they
// shape the steal rings and the first-touch block layout only, which is
// what the determinism and steal-scope tests need.

#include <cstdint>
#include <string>
#include <vector>

namespace simddb::numa {

/// One NUMA node: its sysfs id, the logical cpus it owns (ascending), and
/// its MemTotal (0 when unknown, e.g. fake topologies).
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
  uint64_t mem_bytes = 0;
};

/// Host topology: at least one node, nodes sorted by id. `fake` marks
/// SIMDDB_NUMA_FAKE / MakeFakeTopology instances, which must never drive
/// real affinity or memory-policy syscalls.
struct NumaTopology {
  std::vector<NumaNode> nodes;
  bool fake = false;

  int node_count() const { return static_cast<int>(nodes.size()); }

  /// Total logical cpus across all nodes (>= 1 for discovered topologies).
  int total_cpus() const {
    int n = 0;
    for (const NumaNode& node : nodes) n += static_cast<int>(node.cpus.size());
    return n;
  }

  /// Index into `nodes` of the node owning logical cpu `cpu`; -1 unknown.
  int NodeOfCpu(int cpu) const;
};

/// Parses a sysfs cpulist ("0", "0-3", "0-3,8-11", trailing newline ok)
/// into ascending cpu ids. Malformed input returns an empty vector.
std::vector<int> ParseCpuList(const std::string& s);

/// Parses a SIMDDB_NUMA_FAKE spec "<nodes>x<cpus_per_node>" (both in
/// [1, 1024]). Returns false (outputs untouched) on malformed specs.
bool ParseNumaFake(const char* spec, int* nodes, int* cpus_per_node);

/// Synthetic topology: `nodes` nodes, node i owning cpus
/// [i*cpus_per_node, (i+1)*cpus_per_node). Marked fake.
NumaTopology MakeFakeTopology(int nodes, int cpus_per_node);

/// Reads the topology from `sysfs_root` (parameterized so tests can point
/// it at a fabricated tree). Nodes without cpus are skipped (cpu-less
/// memory nodes cannot anchor a steal ring); any failure falls back to a
/// single node owning every hardware thread.
NumaTopology DiscoverTopology(
    const char* sysfs_root = "/sys/devices/system/node");

/// The process topology: SIMDDB_NUMA_FAKE if set and well-formed, else
/// DiscoverTopology(). Computed once; stable addresses for the lifetime of
/// the process (unless overridden for testing).
const NumaTopology& Topology();

/// Test hook: subsequent Topology() calls return *topo until reset with
/// nullptr. The caller keeps ownership and must keep *topo alive and
/// unchanged while any parallel dispatch may read it. Safe to swap between
/// dispatches: the pool snapshots the topology per job, and fake
/// topologies never trigger thread pinning.
void SetTopologyForTesting(const NumaTopology* topo);

/// The node (index, not sysfs id) a lane maps to when n_lanes lanes split
/// across n_nodes nodes: lane blocks are contiguous (lanes [k*L/N,
/// (k+1)*L/N) -> node k), mirroring the pool's contiguous initial task
/// split so each node's lanes own a contiguous morsel range.
inline int NodeOfLane(int lane, int n_lanes, int n_nodes) {
  if (n_nodes <= 1 || n_lanes <= 1) return 0;
  if (lane >= n_lanes) lane = n_lanes - 1;
  return static_cast<int>(static_cast<int64_t>(lane) * n_nodes / n_lanes);
}

/// Pins the calling thread to `topo.nodes[node]`'s cpuset. Returns false
/// (and does nothing) for fake topologies, out-of-range nodes, empty
/// cpusets, non-Linux builds, or a failed sched_setaffinity.
bool PinThreadToNode(const NumaTopology& topo, int node);

/// False when SIMDDB_NUMA_PIN=0 — disables worker pinning even on real
/// multi-node hosts (e.g. when an outer scheduler owns affinity).
bool PinningEnabled();

}  // namespace simddb::numa

#endif  // SIMDDB_NUMA_TOPOLOGY_H_
