#include "numa/placement.h"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "numa/topology.h"
#include "obs/metrics.h"
#include "util/alloc.h"
#include "util/task_pool.h"

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace simddb::numa {
namespace {

// Pages whose first touch these helpers performed (node-local blocks and
// AllocOnNode faults). Per-node traffic shows up in bench JSONL rows.
obs::Counter g_pages_first_touched("pages_first_touched");

// Memory-policy modes from <linux/mempolicy.h>, defined locally because the
// uapi header (and libnuma's numaif.h) may be absent from the sysroot; the
// raw syscall ABI is stable.
constexpr int kMpolPreferred = 1;
constexpr int kMpolInterleave = 3;

// Touch one byte per page, preserving contents: a plain read + write-back
// faults the page in (allocating it on the toucher's node) without caring
// whether the buffer is fresh or already populated.
void TouchPages(unsigned char* base, size_t first_page, size_t end_page,
                size_t page) {
  volatile unsigned char* p = base;
  for (size_t g = first_page; g < end_page; ++g) {
    const size_t off = g * page;
    p[off] = p[off];
  }
  if (end_page > first_page) g_pages_first_touched.Add(end_page - first_page);
}

// True when memory-policy syscalls may sensibly run: Linux, a real
// (discovered) topology, and more than one node.
bool RealMultiNode(const NumaTopology& topo) {
  return !topo.fake && topo.node_count() > 1;
}

#if defined(__linux__) && defined(__NR_mbind)
// mbind wants a page-aligned range; restrict to the pages fully inside
// [p, p+bytes) so a policy is never applied to a neighbouring allocation
// sharing the boundary pages.
bool MbindCoveredPages(void* p, size_t bytes, int mode,
                       const unsigned long* mask, unsigned long mask_bits) {
  const size_t page = PageBytes();
  uintptr_t b = reinterpret_cast<uintptr_t>(p);
  uintptr_t e = b + bytes;
  b = (b + page - 1) & ~(page - 1);
  e &= ~(page - 1);
  if (b >= e) return false;
  const long rc = syscall(__NR_mbind, reinterpret_cast<void*>(b),
                          static_cast<unsigned long>(e - b), mode, mask,
                          mask_bits, 0UL);
  return rc == 0;
}
#endif

}  // namespace

Placement DefaultPlacement() {
  static const Placement placement = [] {
    const char* env = std::getenv("SIMDDB_NUMA_PLACEMENT");
    if (env != nullptr && std::strcmp(env, "interleaved") == 0) {
      return Placement::kInterleaved;
    }
    return Placement::kNodeLocal;
  }();
  return placement;
}

void FirstTouchPages(void* p, size_t bytes) {
  if (p == nullptr || bytes == 0) return;
  const size_t page = PageBytes();
  TouchPages(static_cast<unsigned char*>(p), 0, (bytes + page - 1) / page,
             page);
}

void PlaceBuffer(void* p, size_t bytes, int threads, Placement placement) {
  if (p == nullptr || bytes == 0) return;
  const NumaTopology& topo = Topology();
  if (topo.node_count() <= 1 && !topo.fake) return;  // nothing to place
  if (placement == Placement::kInterleaved) {
    if (RealMultiNode(topo)) TryInterleave(p, bytes);
    return;
  }
  // kNodeLocal: lane l faults page block [l*P/L, (l+1)*P/L) — the same
  // contiguous split the pool's dispatch uses for tasks, so on a pinned
  // multi-node run each block lands on the node whose lanes process it.
  // On fake topologies this still exercises the block layout and counters.
  const size_t page = PageBytes();
  const size_t n_pages = (bytes + page - 1) / page;
  unsigned char* base = static_cast<unsigned char*>(p);
  TaskPool::Get().ParallelPhases(
      threads, [&](int lane, int n_lanes, PhaseBarrier&) {
        const size_t pb = n_pages * static_cast<size_t>(lane) /
                          static_cast<size_t>(n_lanes);
        const size_t pe = n_pages * (static_cast<size_t>(lane) + 1) /
                          static_cast<size_t>(n_lanes);
        TouchPages(base, pb, pe, page);
      });
}

void PlaceBuffer(void* p, size_t bytes, int threads) {
  PlaceBuffer(p, bytes, threads, DefaultPlacement());
}

void* AllocOnNode(size_t bytes, int node) {
  void* p = AlignedAlloc(bytes, kCacheLineBytes, HugePagesRequested());
  if (p == nullptr) return nullptr;
  const NumaTopology& topo = Topology();
  if (RealMultiNode(topo)) TryBindToNode(p, bytes, node);
  FirstTouchPages(p, bytes);
  assert(TouchedOnNode(p, bytes, node));
  return p;
}

bool TryBindToNode(void* p, size_t bytes, int node) {
#if defined(__linux__) && defined(__NR_mbind)
  const NumaTopology& topo = Topology();
  if (!RealMultiNode(topo)) return false;
  if (node < 0 || node >= topo.node_count()) return false;
  const int sys_id = topo.nodes[node].id;
  if (sys_id < 0 || sys_id >= static_cast<int>(8 * sizeof(unsigned long))) {
    return false;
  }
  const unsigned long mask = 1UL << sys_id;
  return MbindCoveredPages(p, bytes, kMpolPreferred, &mask,
                           8 * sizeof(unsigned long));
#else
  (void)p;
  (void)bytes;
  (void)node;
  return false;
#endif
}

bool TryInterleave(void* p, size_t bytes) {
#if defined(__linux__) && defined(__NR_mbind)
  const NumaTopology& topo = Topology();
  if (!RealMultiNode(topo)) return false;
  unsigned long mask = 0;
  for (const NumaNode& node : topo.nodes) {
    if (node.id < 0 || node.id >= static_cast<int>(8 * sizeof(unsigned long))) {
      return false;
    }
    mask |= 1UL << node.id;
  }
  return MbindCoveredPages(p, bytes, kMpolInterleave, &mask,
                           8 * sizeof(unsigned long));
#else
  (void)p;
  (void)bytes;
  return false;
#endif
}

int NodeOfAddress(const void* p) {
#if defined(__linux__) && defined(__NR_move_pages)
  const NumaTopology& topo = Topology();
  if (!RealMultiNode(topo)) return -1;
  void* page = reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(p) &
                                       ~(PageBytes() - 1));
  int status = -1;
  // count=1, nodes=nullptr: query mode — status receives the backing node.
  if (syscall(__NR_move_pages, 0, 1UL, &page, nullptr, &status, 0) != 0) {
    return -1;
  }
  if (status < 0) return -1;
  for (int k = 0; k < topo.node_count(); ++k) {
    if (topo.nodes[k].id == status) return k;
  }
  return -1;
#else
  (void)p;
  return -1;
#endif
}

bool TouchedOnNode(const void* p, size_t bytes, int node) {
  const NumaTopology& topo = Topology();
  if (!RealMultiNode(topo)) return true;  // nothing to verify
  if (p == nullptr || bytes == 0) return true;
  const size_t page = PageBytes();
  const size_t n_pages = (bytes + page - 1) / page;
  const size_t samples = n_pages < 64 ? n_pages : 64;
  const unsigned char* base = static_cast<const unsigned char*>(p);
  for (size_t s = 0; s < samples; ++s) {
    const size_t g = n_pages * s / samples;
    const int got = NodeOfAddress(base + g * page);
    if (got < 0) return true;  // query unavailable: do not fail the assert
    if (got != node) return false;
  }
  return true;
}

}  // namespace simddb::numa
