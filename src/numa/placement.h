#ifndef SIMDDB_NUMA_PLACEMENT_H_
#define SIMDDB_NUMA_PLACEMENT_H_

// Node-aware memory placement, layered on util/alloc.h.
//
// Linux places an anonymous page on the node of the thread that first
// *touches* it, not the thread that malloc'd it ("first touch"). An
// operator that allocates its output on the caller thread and then streams
// into it from all nodes therefore pays remote-write bandwidth on roughly
// (N-1)/N of its pages. These helpers give operator code two explicit
// policies:
//
//   kNodeLocal   — fault each contiguous block of pages from a lane pinned
//                  to the node that will process that block (the pool's
//                  lane->node mapping, numa/topology.h). Right for inputs,
//                  per-morsel histogram rows, and refine-pass outputs,
//                  whose access pattern is block-contiguous per lane.
//   kInterleaved — round-robin pages across nodes (mbind MPOL_INTERLEAVE
//                  when available). Right for buffers every node reads or
//                  writes uniformly (e.g. fanout-strided partition
//                  output), and the neutral baseline the NUMA bench
//                  compares against.
//
// Everything degrades gracefully: on a real single-node host every entry
// point is a no-op beyond (at most) reading the topology, and fake
// topologies (SIMDDB_NUMA_FAKE) exercise the touch loops and counters but
// never issue mbind/move_pages. First touch is implemented as a
// read + write-back of one byte per page, so placing a buffer never
// changes its contents — callers may place buffers that already hold data.

#include <cstddef>

namespace simddb::numa {

/// Placement policy for an operator buffer.
enum class Placement { kInterleaved, kNodeLocal };

/// Process default: SIMDDB_NUMA_PLACEMENT=interleaved selects kInterleaved;
/// anything else (or unset) selects kNodeLocal.
Placement DefaultPlacement();

/// Touches one byte per page of [p, p+bytes) from the calling thread
/// (value-preserving), counting obs `pages_first_touched`.
void FirstTouchPages(void* p, size_t bytes);

/// Applies `placement` to [p, p+bytes): kNodeLocal faults lane-blocks of
/// pages via a pool dispatch with `threads` lanes (so blocks land on the
/// node whose lanes will process them); kInterleaved asks the kernel to
/// interleave (real multi-node topologies only). No-op on real single-node
/// hosts. Contents are preserved.
void PlaceBuffer(void* p, size_t bytes, int threads, Placement placement);
void PlaceBuffer(void* p, size_t bytes, int threads);  // DefaultPlacement()

/// AlignedAlloc + preferred-node binding (real multi-node only) + first
/// touch from the calling thread. Debug builds assert the pages actually
/// landed on `node` (move_pages, sampled). Release with AlignedFree.
void* AllocOnNode(size_t bytes, int node);

/// mbind(MPOL_PREFERRED -> node) over the fully-covered pages of
/// [p, p+bytes). False when unavailable (non-Linux, fake or single-node
/// topology, sub-page range) or the syscall failed.
bool TryBindToNode(void* p, size_t bytes, int node);

/// mbind(MPOL_INTERLEAVE over all nodes) over the fully-covered pages.
/// Same availability rules as TryBindToNode.
bool TryInterleave(void* p, size_t bytes);

/// Node (topology index) currently backing the page of `p`, via
/// move_pages; -1 when unknown or unavailable. The page must be resident
/// (touch it first).
int NodeOfAddress(const void* p);

/// Debug assertion helper: true when every sampled page (<= 64, evenly
/// spread) of [p, p+bytes) is resident on `node`. Trivially true whenever
/// NodeOfAddress is unavailable (fake/single-node topologies, non-Linux).
bool TouchedOnNode(const void* p, size_t bytes, int node);

}  // namespace simddb::numa

#endif  // SIMDDB_NUMA_PLACEMENT_H_
