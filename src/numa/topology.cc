#include "numa/topology.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace simddb::numa {
namespace {

std::string ReadFileString(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::string();
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// "Node 0 MemTotal:  8884416 kB" -> bytes; 0 when the line is absent.
uint64_t ParseMemInfoTotal(const std::string& meminfo) {
  const size_t at = meminfo.find("MemTotal:");
  if (at == std::string::npos) return 0;
  size_t i = at + std::strlen("MemTotal:");
  while (i < meminfo.size() && std::isspace(static_cast<unsigned char>(meminfo[i]))) ++i;
  uint64_t kb = 0;
  bool any = false;
  while (i < meminfo.size() && std::isdigit(static_cast<unsigned char>(meminfo[i]))) {
    kb = kb * 10 + static_cast<uint64_t>(meminfo[i] - '0');
    any = true;
    ++i;
  }
  return any ? kb * 1024 : 0;
}

int HardwareThreads() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw >= 1 ? hw : 1;
}

NumaTopology SingleNodeFallback() {
  NumaTopology topo;
  NumaNode node;
  node.id = 0;
  const int hw = HardwareThreads();
  node.cpus.reserve(static_cast<size_t>(hw));
  for (int c = 0; c < hw; ++c) node.cpus.push_back(c);
  topo.nodes.push_back(std::move(node));
  return topo;
}

std::atomic<const NumaTopology*> g_override{nullptr};

}  // namespace

int NumaTopology::NodeOfCpu(int cpu) const {
  for (size_t k = 0; k < nodes.size(); ++k) {
    for (int c : nodes[k].cpus) {
      if (c == cpu) return static_cast<int>(k);
    }
  }
  return -1;
}

std::vector<int> ParseCpuList(const std::string& s) {
  std::vector<int> cpus;
  size_t i = 0;
  // Sysfs lists end in '\n'; treat any trailing whitespace as the end.
  const auto at_end = [&] {
    for (size_t j = i; j < s.size(); ++j) {
      if (!std::isspace(static_cast<unsigned char>(s[j]))) return false;
    }
    return true;
  };
  const auto parse_int = [&](int* out) {
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
      return false;
    }
    long v = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      v = v * 10 + (s[i] - '0');
      if (v > 1 << 20) return false;  // implausible cpu id, reject
      ++i;
    }
    *out = static_cast<int>(v);
    return true;
  };
  if (at_end()) return cpus;  // empty list ("\n") is valid and empty
  for (;;) {
    int a = 0;
    if (!parse_int(&a)) return {};
    int b = a;
    if (i < s.size() && s[i] == '-') {
      ++i;
      if (!parse_int(&b) || b < a) return {};
    }
    for (int v = a; v <= b; ++v) cpus.push_back(v);
    if (at_end()) return cpus;
    if (s[i] != ',') return {};
    ++i;
  }
}

bool ParseNumaFake(const char* spec, int* nodes, int* cpus_per_node) {
  if (spec == nullptr || *spec == '\0') return false;
  char* end = nullptr;
  const long n = std::strtol(spec, &end, 10);
  if (end == spec || *end != 'x') return false;
  const char* rest = end + 1;
  const long c = std::strtol(rest, &end, 10);
  if (end == rest || *end != '\0') return false;
  if (n < 1 || n > 1024 || c < 1 || c > 1024) return false;
  *nodes = static_cast<int>(n);
  *cpus_per_node = static_cast<int>(c);
  return true;
}

NumaTopology MakeFakeTopology(int nodes, int cpus_per_node) {
  NumaTopology topo;
  topo.fake = true;
  if (nodes < 1) nodes = 1;
  if (cpus_per_node < 1) cpus_per_node = 1;
  topo.nodes.reserve(static_cast<size_t>(nodes));
  for (int k = 0; k < nodes; ++k) {
    NumaNode node;
    node.id = k;
    node.cpus.reserve(static_cast<size_t>(cpus_per_node));
    for (int c = 0; c < cpus_per_node; ++c) {
      node.cpus.push_back(k * cpus_per_node + c);
    }
    topo.nodes.push_back(std::move(node));
  }
  return topo;
}

NumaTopology DiscoverTopology(const char* sysfs_root) {
  NumaTopology topo;
  const std::string root(sysfs_root);
  const std::vector<int> node_ids = ParseCpuList(ReadFileString(root + "/online"));
  for (int id : node_ids) {
    const std::string dir = root + "/node" + std::to_string(id);
    NumaNode node;
    node.id = id;
    node.cpus = ParseCpuList(ReadFileString(dir + "/cpulist"));
    if (node.cpus.empty()) continue;  // cpu-less memory node: not schedulable
    node.mem_bytes = ParseMemInfoTotal(ReadFileString(dir + "/meminfo"));
    topo.nodes.push_back(std::move(node));
  }
  if (topo.nodes.empty()) return SingleNodeFallback();
  return topo;
}

const NumaTopology& Topology() {
  const NumaTopology* over = g_override.load(std::memory_order_acquire);
  if (over != nullptr) return *over;
  static const NumaTopology* const kTopo = new NumaTopology([] {
    int nodes = 0, cpus = 0;
    if (const char* env = std::getenv("SIMDDB_NUMA_FAKE");
        env != nullptr && ParseNumaFake(env, &nodes, &cpus)) {
      return MakeFakeTopology(nodes, cpus);
    }
    return DiscoverTopology();
  }());
  return *kTopo;
}

void SetTopologyForTesting(const NumaTopology* topo) {
  g_override.store(topo, std::memory_order_release);
}

bool PinThreadToNode(const NumaTopology& topo, int node) {
#if defined(__linux__)
  if (topo.fake) return false;
  if (node < 0 || node >= topo.node_count()) return false;
  const std::vector<int>& cpus = topo.nodes[node].cpus;
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) {
      CPU_SET(c, &set);
      any = true;
    }
  }
  if (!any) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)topo;
  (void)node;
  return false;
#endif
}

bool PinningEnabled() {
  static const bool on = [] {
    const char* env = std::getenv("SIMDDB_NUMA_PIN");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }();
  return on;
}

}  // namespace simddb::numa
