#ifndef SIMDDB_PARTITION_HISTOGRAM_H_
#define SIMDDB_PARTITION_HISTOGRAM_H_

// Histogram generation (§7.1): count keys per partition before any data
// moves. The vectorized variants correspond to the Fig. 11 series:
//
//   HistogramScalar              one count increment per key.
//   HistogramReplicatedAvx512    Alg. 11 — each vector lane owns a private
//                                replica of the histogram (P×16 counts), so
//                                gather/increment/scatter never conflicts.
//   HistogramSerializedAvx512    a single histogram; within-vector conflicts
//                                are serialized so a count is incremented by
//                                the true number of colliding lanes.
//   HistogramCompressedAvx512    Alg. 11 with 8-bit replicated counts that
//                                are flushed to the 32-bit histogram on
//                                overflow, quadrupling the fanout that fits
//                                in L1.
//
// All variants write `fn.fanout` 32-bit counts to hist (zeroed by callee).

#include <cstddef>
#include <cstdint>

#include "partition/partition_fn.h"
#include "util/aligned_buffer.h"

namespace simddb {

/// Scratch space reused across vectorized histogram calls.
struct HistogramWorkspace {
  AlignedBuffer<uint32_t> replicated;  ///< P*16 lane-private counts
  AlignedBuffer<uint8_t> compressed;   ///< 16 lane regions of (P+4) bytes

  /// Ensures capacity for fanout p.
  void Reserve(uint32_t p) {
    if (replicated.size() < static_cast<size_t>(p) * 16) {
      replicated.Reset(static_cast<size_t>(p) * 16);
    }
    if (compressed.size() < static_cast<size_t>(p + 4) * 16) {
      compressed.Reset(static_cast<size_t>(p + 4) * 16);
    }
  }
};

/// Scalar histogram (radix or hash function).
void HistogramScalar(const PartitionFn& fn, const uint32_t* keys, size_t n,
                     uint32_t* hist);

/// Alg. 11: lane-replicated counts, reduced into hist at the end.
void HistogramReplicatedAvx512(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* hist,
                               HistogramWorkspace* ws);

/// Single histogram with conflict serialization (vpconflictd).
void HistogramSerializedAvx512(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* hist);

/// Lane-replicated 8-bit counts flushed on overflow.
void HistogramCompressedAvx512(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* hist,
                               HistogramWorkspace* ws);

}  // namespace simddb

#endif  // SIMDDB_PARTITION_HISTOGRAM_H_
