#include "partition/plan.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "partition/histogram.h"
#include "partition/parallel_partition.h"
#include "partition/shuffle.h"
#include "partition/shuffle_dispatch.h"
#include "partition/swwc.h"
#include "util/aligned_buffer.h"
#include "util/bits.h"
#include "util/cpu_info.h"
#include "util/task_pool.h"

namespace simddb {
namespace {

obs::Counter g_passes_planned("passes_planned");

// Environment override, parsed at most once per process per variable.
uint32_t EnvU32(const char* name, uint32_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || v == 0 || v > 0xFFFFFFFFul) return fallback;
  return static_cast<uint32_t>(v);
}

// Largest power of two <= v, floored at 2 (a 1-way "partition" is a copy).
uint32_t FloorPow2AtLeast2(uint32_t v) {
  if (v < 2) return 2;
  return 1u << Log2Floor(v);
}

}  // namespace

PartitionBudget PartitionBudget::Default() {
  static const PartitionBudget kDefault = [] {
    PartitionBudget b;
    // Calibrate from the host before applying env overrides. Plausibility
    // floors/caps keep a misreported sysconf/CPUID value (VMs, containers)
    // from planning absurd fanouts; anything outside them keeps the
    // conservative constant.
    const CpuInfo& cpu = GetCpuInfo();
    if (cpu.l1d_bytes >= (16u << 10) && cpu.l1d_bytes <= (256u << 10)) {
      b.l1_staging_bytes = static_cast<uint32_t>(cpu.l1d_bytes);
    }
    if (cpu.l2_bytes >= (128u << 10) && cpu.l2_bytes <= (16u << 20)) {
      b.l2_staging_bytes = static_cast<uint32_t>(cpu.l2_bytes);
    }
    // Half the second-level TLB's 4K reach: the input stream, the staging
    // buffers and the stack compete for the other half.
    if (cpu.stlb_4k_entries >= 128 && cpu.stlb_4k_entries <= (64u << 10)) {
      b.tlb_partitions = static_cast<uint32_t>(cpu.stlb_4k_entries / 2);
    }
    b.l1_staging_bytes =
        EnvU32("SIMDDB_L1_STAGING_BYTES", b.l1_staging_bytes);
    b.l2_staging_bytes =
        EnvU32("SIMDDB_L2_STAGING_BYTES", b.l2_staging_bytes);
    b.tlb_partitions = EnvU32("SIMDDB_TLB_PARTITIONS", b.tlb_partitions);
    b.b16_vector_max_fanout =
        EnvU32("SIMDDB_B16_VECTOR_MAX_FANOUT", b.b16_vector_max_fanout);
    return b;
  }();
  return kDefault;
}

uint32_t PartitionBudget::MaxBuffered16Fanout() const {
  uint32_t by_l1 = l1_staging_bytes / kSwwcStageBytesPerPartition;
  uint32_t cap = tlb_partitions < by_l1 ? tlb_partitions : by_l1;
  return FloorPow2AtLeast2(cap);
}

uint32_t PartitionBudget::MaxSwwcFanout() const {
  uint32_t by_l2 =
      FloorPow2AtLeast2(l2_staging_bytes / kSwwcStageBytesPerPartition);
  uint32_t b16 = MaxBuffered16Fanout();
  return by_l2 > b16 ? by_l2 : b16;
}

uint32_t PartitionBudget::MaxBitsPerPass() const {
  return Log2Floor(MaxSwwcFanout());
}

ShuffleVariant ChooseShuffleVariant(uint32_t fanout,
                                    const PartitionBudget& budget) {
  return fanout <= budget.MaxBuffered16Fanout() ? ShuffleVariant::kBuffered16
                                                : ShuffleVariant::kSwwc;
}

bool UseVectorBuffered16(Isa isa, uint32_t fanout,
                         const PartitionBudget& budget) {
  if (isa != Isa::kAvx512 || !IsaSupported(Isa::kAvx512)) return false;
  return fanout <= budget.b16_vector_max_fanout;
}

PartitionPlan PlanRadixPasses(uint32_t total_bits,
                              const PartitionBudget& budget,
                              uint32_t requested_bits_per_pass) {
  uint32_t max_bits = budget.MaxBitsPerPass();
  if (requested_bits_per_pass != 0 && requested_bits_per_pass < max_bits) {
    max_bits = requested_bits_per_pass;
  }
  if (max_bits == 0) max_bits = 1;

  PartitionPlan plan;
  plan.total_bits = total_bits;
  const uint32_t n_passes =
      total_bits == 0 ? 1 : (total_bits + max_bits - 1) / max_bits;
  // Near-equal split: the first `rem` passes get one extra bit, so
  // max - min <= 1 and no pass exceeds max_bits.
  const uint32_t base = total_bits / n_passes;
  const uint32_t rem = total_bits % n_passes;
  plan.passes.reserve(n_passes);
  for (uint32_t k = 0; k < n_passes; ++k) {
    uint32_t bits = base + (k < rem ? 1 : 0);
    assert(bits <= budget.MaxBitsPerPass());
    plan.passes.push_back(
        {bits, ChooseShuffleVariant(1u << bits, budget)});
  }
  g_passes_planned.Add(n_passes);
  return plan;
}

// Generalization of the max-partition join's second pass: every previous
// partition range is one stealable task — a self-contained histogram, a
// local prefix sum starting at the range's fixed begin offset, and a
// shuffle Main into that range. Because the output layout depends only on
// prev_bounds (never on the steal schedule), the pass is stable and
// byte-identical across thread counts. Cleanup is deferred behind the
// dispatch barrier so streaming flushes cannot race a neighbour part's
// final tuples.
void RefinePartitionsPass(const PartitionFn& fn2, uint32_t prev_count,
                          const uint32_t* prev_bounds, const uint32_t* in_keys,
                          const uint32_t* in_pays, uint32_t* out_keys,
                          uint32_t* out_pays, uint32_t* bounds_out, Isa isa,
                          int threads, ShuffleVariant variant) {
  const int t_count = threads < 1 ? 1 : threads;
  const uint32_t p2 = fn2.fanout;
  const PartitionBudget budget = PartitionBudget::Default();
  if (variant == ShuffleVariant::kAuto) {
    variant = ChooseShuffleVariant(p2, budget);
  }
  const bool swwc = variant == ShuffleVariant::kSwwc;
  const bool vec512 = isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512);
  // Shuffle fill choice is fanout-aware (scalar wins past the vector cap);
  // the histogram below stays vectorized regardless.
  const bool vec_shuffle = !swwc && UseVectorBuffered16(isa, p2, budget);
  const internal::SwwcFill fill = internal::ChooseSwwcFill(isa, p2, budget);

  std::vector<ShuffleBuffers> bufs(swwc ? 0 : prev_count);
  std::vector<SwwcBuffers> wc_bufs(swwc ? prev_count : 0);
  std::vector<uint32_t> all_offsets(static_cast<size_t>(prev_count) * p2);
  TaskPool& pool = TaskPool::Get();
  const int lanes = TaskPool::LaneCount(prev_count, t_count);
  std::vector<HistogramWorkspace> ws(lanes);
  pool.ParallelFor(prev_count, t_count, [&](int worker, size_t task) {
    uint32_t p = static_cast<uint32_t>(task);
    uint32_t b = prev_bounds[p];
    uint32_t n_part = prev_bounds[p + 1] - b;
    uint32_t* offsets = all_offsets.data() + static_cast<size_t>(p) * p2;
    if (vec512) {
      HistogramReplicatedAvx512(fn2, in_keys + b, n_part, offsets,
                                &ws[worker]);
    } else {
      HistogramScalar(fn2, in_keys + b, n_part, offsets);
    }
    uint32_t sum = b;
    for (uint32_t q = 0; q < p2; ++q) {
      uint32_t c = offsets[q];
      offsets[q] = sum;
      bounds_out[static_cast<size_t>(p) * p2 + q] = sum;
      sum += c;
    }
    if (in_pays != nullptr) {
      if (swwc) {
        internal::SwwcPairMain(fill, fn2, in_keys + b, in_pays + b, n_part,
                               offsets, out_keys, out_pays, &wc_bufs[p]);
      } else if (vec_shuffle) {
        ShuffleVectorBufferedMainAvx512(fn2, in_keys + b, in_pays + b, n_part,
                                        offsets, out_keys, out_pays,
                                        &bufs[p]);
      } else {
        ShuffleScalarBufferedMain(fn2, in_keys + b, in_pays + b, n_part,
                                  offsets, out_keys, out_pays, &bufs[p]);
      }
    } else {
      if (swwc) {
        internal::SwwcKeysMain(fill, fn2, in_keys + b, n_part, offsets,
                               out_keys, &wc_bufs[p]);
      } else if (vec_shuffle) {
        ShuffleKeysVectorBufferedMainAvx512(fn2, in_keys + b, n_part, offsets,
                                            out_keys, &bufs[p]);
      } else {
        ShuffleKeysScalarBufferedMain(fn2, in_keys + b, n_part, offsets,
                                      out_keys, &bufs[p]);
      }
    }
  });
  // All Main calls joined; now repair the staged/buffered tails.
  pool.ParallelFor(prev_count, t_count, [&](int, size_t p) {
    uint32_t* offsets = all_offsets.data() + p * p2;
    if (in_pays != nullptr) {
      if (swwc) {
        ShuffleSwwcCleanup(p2, offsets, wc_bufs[p], out_keys, out_pays);
      } else {
        ShuffleBufferedCleanup(p2, offsets, bufs[p], out_keys, out_pays);
      }
    } else {
      if (swwc) {
        ShuffleKeysSwwcCleanup(p2, offsets, wc_bufs[p], out_keys);
      } else {
        ShuffleKeysBufferedCleanup(p2, offsets, bufs[p], out_keys);
      }
    }
  });
}

void MultiPassPartition(const PassFnMaker& maker, uint32_t total_bits,
                        const uint32_t* keys, const uint32_t* pays, size_t n,
                        uint32_t* out_keys, uint32_t* out_pays,
                        uint32_t* scratch_keys, uint32_t* scratch_pays,
                        Isa isa, int threads, const PartitionBudget& budget,
                        uint32_t* starts, ParallelPartitionResources* res) {
  const bool has_pays = pays != nullptr;
  PartitionPlan plan = PlanRadixPasses(total_bits, budget, 0);
  const uint32_t n_passes = static_cast<uint32_t>(plan.passes.size());
  const uint32_t p_total = total_bits >= 32 ? 0u : (1u << total_bits);

  ParallelPartitionResources local_res;
  if (res == nullptr) res = &local_res;

  // Single pass: no ping-pong, no refinement machinery.
  if (n_passes == 1) {
    const PartitionFn fn = maker(total_bits, 0);
    ParallelPartitionPass(fn, keys, pays, n, out_keys, out_pays, isa, threads,
                          res, starts, plan.passes[0].variant,
                          ShuffleCapacity(n));
    return;
  }

  AlignedBuffer<uint32_t> own_sk, own_sp;
  if (scratch_keys == nullptr) {
    own_sk.Reset(ShuffleCapacity(n));
    scratch_keys = own_sk.data();
    if (has_pays) {
      own_sp.Reset(ShuffleCapacity(n));
      scratch_pays = own_sp.data();
    }
  }

  // Pass k writes to `out` when the remaining pass count (n_passes - k) is
  // odd, so the final pass always lands in out without a trailing copy.
  std::vector<uint32_t> bounds_a, bounds_b;
  uint32_t consumed = 0;  // bits already partitioned (MSB-first)
  uint32_t prev_count = 0;
  for (uint32_t k = 0; k < n_passes; ++k) {
    const uint32_t bits = plan.passes[k].bits;
    const uint32_t rem = total_bits - consumed - bits;
    const PartitionFn fn = maker(bits, rem);
    const bool to_out = ((n_passes - k) % 2) == 1;
    uint32_t* dst_keys = to_out ? out_keys : scratch_keys;
    uint32_t* dst_pays = to_out ? out_pays : scratch_pays;
    if (k == 0) {
      bounds_a.resize((static_cast<size_t>(1) << bits) + 1);
      ParallelPartitionPass(fn, keys, pays, n, dst_keys, dst_pays, isa,
                            threads, res, bounds_a.data(),
                            plan.passes[0].variant, ShuffleCapacity(n));
      prev_count = 1u << bits;
    } else {
      const uint32_t* src_keys = to_out ? scratch_keys : out_keys;
      const uint32_t* src_pays = to_out ? scratch_pays : out_pays;
      bounds_b.resize(static_cast<size_t>(prev_count) * (1u << bits) + 1);
      RefinePartitionsPass(fn, prev_count, bounds_a.data(), src_keys,
                           src_pays, dst_keys, dst_pays, bounds_b.data(), isa,
                           threads, plan.passes[k].variant);
      prev_count <<= bits;
      bounds_b[prev_count] = static_cast<uint32_t>(n);
      bounds_a.swap(bounds_b);
    }
    consumed += bits;
  }
  assert(prev_count == p_total);
  if (starts != nullptr) {
    std::memcpy(starts, bounds_a.data(),
                (static_cast<size_t>(p_total) + 1) * sizeof(uint32_t));
  }
}

void MultiPassRadixPartition(const uint32_t* keys, const uint32_t* pays,
                             size_t n, uint32_t total_bits,
                             uint32_t* out_keys, uint32_t* out_pays,
                             uint32_t* scratch_keys, uint32_t* scratch_pays,
                             Isa isa, int threads,
                             const PartitionBudget& budget, uint32_t* starts) {
  assert(total_bits <= 32);
  // Pass fn: `bits` bits of the top-total_bits partition index with
  // rem_bits still unresolved below. Radix(0, >=32) would be UB; a 0-bit
  // pass is the identity partition.
  MultiPassPartition(
      [total_bits](uint32_t bits, uint32_t rem_bits) {
        if (bits == 0) return PartitionFn::Radix(0, 0);
        return PartitionFn::Radix(bits, 32 - total_bits + rem_bits);
      },
      total_bits, keys, pays, n, out_keys, out_pays, scratch_keys,
      scratch_pays, isa, threads, budget, starts, nullptr);
}

}  // namespace simddb
