#ifndef SIMDDB_PARTITION_PARTITION_FN_H_
#define SIMDDB_PARTITION_PARTITION_FN_H_

// Partition functions (§7): radix (shift+mask) and hash (multiplicative).
// Range partitioning has its own machinery in range.h since it needs a
// splitter array.

#include <cstdint>

#include "hash/hash_table.h"

namespace simddb {

/// A radix or hash partition function over 32-bit keys.
///
/// kRadix:  partition = (key >> shift) & (fanout - 1)
/// kHash:   partition = (mulhi(key * factor, total) >> shift) & (fanout - 1)
///          with total == fanout and shift == 0 this is plain multiplicative
///          hashing (fanout need not be a power of two); the general form
///          lets multi-pass hash partitioning (max-partition join, §9) take
///          different bit ranges of one hash value per pass.
struct PartitionFn {
  enum class Kind { kRadix, kHash };

  Kind kind = Kind::kRadix;
  uint32_t fanout = 1;
  uint32_t shift = 0;
  uint32_t factor = 1;
  uint32_t total = 1;  ///< kHash: range of the underlying hash value

  /// Radix function extracting `bits` bits starting at `shift`.
  static PartitionFn Radix(uint32_t bits, uint32_t shift_amount) {
    PartitionFn fn;
    fn.kind = Kind::kRadix;
    fn.fanout = 1u << bits;
    fn.shift = shift_amount;
    return fn;
  }

  /// Multiplicative hash function with `fanout` partitions.
  static PartitionFn Hash(uint32_t fanout, uint64_t seed = 42) {
    PartitionFn fn;
    fn.kind = Kind::kHash;
    fn.fanout = fanout;
    fn.total = fanout;
    fn.factor = HashFactor(seed, 0);
    return fn;
  }

  /// Pass `pass_bits` bits at `shift_amount` of a hash value in [0, total);
  /// total must be a power of two covering all passes' bits.
  static PartitionFn HashRadix(uint32_t pass_bits, uint32_t shift_amount,
                               uint32_t total, uint64_t seed = 42) {
    PartitionFn fn;
    fn.kind = Kind::kHash;
    fn.fanout = 1u << pass_bits;
    fn.shift = shift_amount;
    fn.total = total;
    fn.factor = HashFactor(seed, 0);
    return fn;
  }

  uint32_t operator()(uint32_t key) const {
    if (kind == Kind::kRadix) return (key >> shift) & (fanout - 1);
    uint32_t h = MultHash32(key, factor, total);
    // Plain multiplicative hashing already lands in [0, fanout); masking
    // would corrupt non-power-of-two fanouts.
    if (shift == 0 && total == fanout) return h;
    return (h >> shift) & (fanout - 1);
  }
};

}  // namespace simddb

#endif  // SIMDDB_PARTITION_PARTITION_FN_H_
