#ifndef SIMDDB_PARTITION_SWWC_H_
#define SIMDDB_PARTITION_SWWC_H_

// Software write-combining (SWWC) shuffle. The buffered-16 variants of
// shuffle.h keep one 16-tuple buffer per partition per column and flush at
// 16-tuple-aligned *positions*; whether the flush is a non-temporal store
// depends on the output array's own alignment (the all-or-nothing
// `streamable` flag), and the key and payload buffers live in two separate
// arrays, so one tuple insert touches two staging cache lines P*64 bytes
// apart. At fanouts beyond TLB reach both costs dominate and throughput
// collapses (Fig. 13, right edge).
//
// The SWWC kernels fix both:
//
//   - Combined staging: partition p owns ONE 128-byte block — 16 staged
//     keys in its first cache line, the 16 matching payloads in its second
//     — so an insert dirties two adjacent lines and the whole staging area
//     for fanout P is P*128 bytes.
//   - Slid alignment grid: flushes happen when the staged line is full at
//     output position o with (o - dk) % 16 == 15, where
//     dk = ((64 - (addr(out_keys) & 63)) >> 2) & 15 slides the grid so the
//     flush destination out_keys + (o - 15) is ALWAYS 64-byte aligned —
//     full-line non-temporal stores regardless of the caller's base
//     alignment. The payload line streams too when out_pays is congruent to
//     out_keys mod 64 (true for any pair of 64-byte-aligned arrays, e.g.
//     AlignedBuffer); otherwise it degrades to an unaligned store while the
//     key line keeps streaming.
//
// Head/tail handling on the slid grid: the first line of the array (when
// dk > 0) would flush at a negative base, so those positions are
// scalar-copied from staging instead ("head"); every partition's unflushed
// tail is written by ShuffleSwwcCleanup after the parallel barrier, exactly
// like the buffered-16 cleanup. The offsets/starts protocol, the
// may-clobber-up-to-15-tuples-before-a-partition-start behaviour, and the
// ShuffleCapacity(n) output contract are identical to shuffle.h, so
// ParallelPartitionPass can swap the kernel per pass (see plan.h's
// ShuffleVariant).
//
// Observability: wc_line_flushes counts full 64-byte lines written by Main
// flushes (key and payload lines separately); wc_partial_flushes counts
// partial-line writes (heads in Main, tail repairs in Cleanup).

#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"
#include "partition/partition_fn.h"
#include "util/aligned_buffer.h"

namespace simddb {

/// uint32 elements each partition owns in the combined staging area: one
/// 16-key cache line plus one 16-payload cache line (128 bytes).
inline constexpr size_t kSwwcStageStride = 32;

/// Bytes of staging one partition costs an SWWC pass — the planner's unit
/// for fitting a pass's staging area into a cache-level budget.
inline constexpr size_t kSwwcStageBytesPerPartition =
    kSwwcStageStride * sizeof(uint32_t);

/// The alignment-grid slide for an output array: the number of leading
/// elements before out's first 64-byte boundary, i.e. flushes cover
/// positions [b, b+16) with (b - dk) % 16 == 0 and out + b 64-byte aligned.
inline uint32_t SwwcGridPhase(const uint32_t* out) {
  return ((64u - (reinterpret_cast<uintptr_t>(out) & 63u)) >> 2) & 15u;
}

/// Per-morsel scratch for SWWC shuffles: the combined key/payload staging
/// area plus the partition-start snapshot the cleanup pass needs.
struct SwwcBuffers {
  AlignedBuffer<uint32_t> stage;   ///< fanout x kSwwcStageStride
  AlignedBuffer<uint32_t> starts;  ///< fanout

  void Reserve(uint32_t p) {
    if (stage.size() < static_cast<size_t>(p) * kSwwcStageStride) {
      stage.Reset(static_cast<size_t>(p) * kSwwcStageStride);
      starts.Reset(p);
    }
  }
};

namespace internal {
extern obs::Counter g_wc_line_flushes;
extern obs::Counter g_wc_partial_flushes;
}  // namespace internal

// Main kernels: same offsets protocol as shuffle.h (exclusive prefix sum in,
// partition ends out). The scalar core is the fastest pair shuffle at large
// fanout on wide-radix passes; the AVX-512 form keeps Alg. 15's
// gather/scatter/conflict-serialization fill and wins at small fanout.
void ShuffleSwwcScalarMain(const PartitionFn& fn, const uint32_t* keys,
                           const uint32_t* pays, size_t n, uint32_t* offsets,
                           uint32_t* out_keys, uint32_t* out_pays,
                           SwwcBuffers* bufs);
void ShuffleKeysSwwcScalarMain(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* offsets, uint32_t* out_keys,
                               SwwcBuffers* bufs);

/// AVX2: vectorized partition-function evaluation (8 keys at a time),
/// scalar staging inserts, 32-byte non-temporal flushes.
void ShuffleSwwcAvx2Main(const PartitionFn& fn, const uint32_t* keys,
                         const uint32_t* pays, size_t n, uint32_t* offsets,
                         uint32_t* out_keys, uint32_t* out_pays,
                         SwwcBuffers* bufs);
void ShuffleKeysSwwcAvx2Main(const PartitionFn& fn, const uint32_t* keys,
                             size_t n, uint32_t* offsets, uint32_t* out_keys,
                             SwwcBuffers* bufs);

/// AVX-512: Alg. 15's vectorized fill (gather offsets, serialize conflicts,
/// scatter into staging) on the combined layout and the slid grid.
void ShuffleSwwcAvx512Main(const PartitionFn& fn, const uint32_t* keys,
                           const uint32_t* pays, size_t n, uint32_t* offsets,
                           uint32_t* out_keys, uint32_t* out_pays,
                           SwwcBuffers* bufs);
void ShuffleKeysSwwcAvx512Main(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* offsets,
                               uint32_t* out_keys, SwwcBuffers* bufs);

/// Writes the still-staged tail tuples of every partition (must run after
/// *Main on all threads of a parallel shuffle).
void ShuffleSwwcCleanup(uint32_t p_count, const uint32_t* offsets,
                        const SwwcBuffers& bufs, uint32_t* out_keys,
                        uint32_t* out_pays);
void ShuffleKeysSwwcCleanup(uint32_t p_count, const uint32_t* offsets,
                            const SwwcBuffers& bufs, uint32_t* out_keys);

/// Single-threaded conveniences: Main + Cleanup.
void ShuffleSwwcScalar(const PartitionFn& fn, const uint32_t* keys,
                       const uint32_t* pays, size_t n, uint32_t* offsets,
                       uint32_t* out_keys, uint32_t* out_pays,
                       SwwcBuffers* bufs);
void ShuffleSwwcAvx2(const PartitionFn& fn, const uint32_t* keys,
                     const uint32_t* pays, size_t n, uint32_t* offsets,
                     uint32_t* out_keys, uint32_t* out_pays,
                     SwwcBuffers* bufs);
void ShuffleSwwcAvx512(const PartitionFn& fn, const uint32_t* keys,
                       const uint32_t* pays, size_t n, uint32_t* offsets,
                       uint32_t* out_keys, uint32_t* out_pays,
                       SwwcBuffers* bufs);

}  // namespace simddb

#endif  // SIMDDB_PARTITION_SWWC_H_
