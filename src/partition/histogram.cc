#include "partition/histogram.h"

namespace simddb {

void HistogramScalar(const PartitionFn& fn, const uint32_t* keys, size_t n,
                     uint32_t* hist) {
  for (uint32_t p = 0; p < fn.fanout; ++p) hist[p] = 0;
  if (fn.kind == PartitionFn::Kind::kRadix) {
    const uint32_t shift = fn.shift;
    const uint32_t mask = fn.fanout - 1;
    for (size_t i = 0; i < n; ++i) {
      ++hist[(keys[i] >> shift) & mask];
    }
  } else if (fn.shift == 0 && fn.total == fn.fanout) {
    // Plain multiplicative hashing (fanout may be non-power-of-two).
    const uint32_t factor = fn.factor;
    const uint32_t fanout = fn.fanout;
    for (size_t i = 0; i < n; ++i) {
      ++hist[MultHash32(keys[i], factor, fanout)];
    }
  } else {
    // General hash-radix form (multi-pass hash partitioning).
    for (size_t i = 0; i < n; ++i) {
      ++hist[fn(keys[i])];
    }
  }
}

}  // namespace simddb
