#ifndef SIMDDB_PARTITION_PARALLEL_PARTITION_H_
#define SIMDDB_PARTITION_PARALLEL_PARTITION_H_

// One parallel, stable, buffered partitioning pass (§7.4 + §8): the input is
// split among threads, each thread histograms its chunk, a cross-thread
// interleaved prefix sum assigns disjoint output sub-ranges (thread order
// preserved within every partition, so the pass is globally stable), each
// thread runs a buffered shuffle of its chunk, and after a barrier the
// buffered tails are flushed (App. F). Used by LSB radixsort and by the
// partitioning phases of the max-partition hash join.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/isa.h"
#include "partition/histogram.h"
#include "partition/partition_fn.h"
#include "partition/shuffle.h"
#include "util/aligned_buffer.h"

namespace simddb {

/// Reusable per-thread scratch for ParallelPartitionPass.
struct ParallelPartitionResources {
  std::vector<ShuffleBuffers> bufs;
  std::vector<HistogramWorkspace> hist_ws;
  AlignedBuffer<uint32_t> hists;  ///< threads x fanout

  void Reserve(int threads, uint32_t fanout) {
    bufs.resize(threads);
    hist_ws.resize(threads);
    if (hists.size() < static_cast<size_t>(threads) * fanout) {
      hists.Reset(static_cast<size_t>(threads) * fanout);
    }
  }
};

/// Partitions (keys[, pays]) of size n into (out_keys[, out_pays]); pays and
/// out_pays may be null for a key-only pass. Output arrays need capacity
/// n + 16 (streaming flush overshoot). If `starts` is non-null it receives
/// fanout+1 entries: global begin offset of each partition plus n.
void ParallelPartitionPass(const PartitionFn& fn, const uint32_t* keys,
                           const uint32_t* pays, size_t n, uint32_t* out_keys,
                           uint32_t* out_pays, Isa isa, int threads,
                           ParallelPartitionResources* res, uint32_t* starts);

}  // namespace simddb

#endif  // SIMDDB_PARTITION_PARALLEL_PARTITION_H_
