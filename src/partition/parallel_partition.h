#ifndef SIMDDB_PARTITION_PARALLEL_PARTITION_H_
#define SIMDDB_PARTITION_PARALLEL_PARTITION_H_

// One parallel, stable, buffered partitioning pass (§7.4 + §8): the input is
// decomposed into a fixed grid of 16K-tuple morsels, each morsel is
// histogrammed into its own row, a cross-morsel interleaved prefix sum
// assigns disjoint output sub-ranges (morsel order preserved within every
// partition, so the pass is globally stable), workers claim morsels from
// work-stealing deques to run the buffered shuffle, and after a barrier the
// buffered tails are flushed (App. F). Because the output layout depends
// only on the morsel grid — not on which worker ran which morsel — the
// result is byte-identical across thread counts and runs. Used by LSB
// radixsort and by the partitioning phases of the hash joins.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/isa.h"
#include "partition/histogram.h"
#include "partition/partition_fn.h"
#include "partition/plan.h"
#include "partition/shuffle.h"
#include "partition/swwc.h"
#include "util/aligned_buffer.h"

namespace simddb {

/// Reusable scratch for ParallelPartitionPass: shuffle (or SWWC staging)
/// buffers and a histogram row per *morsel*, histogram workspaces per
/// worker lane. Only the buffer family the pass's variant needs is
/// populated.
struct ParallelPartitionResources {
  std::vector<ShuffleBuffers> bufs;        ///< one per morsel (buffered-16)
  std::vector<SwwcBuffers> wc_bufs;        ///< one per morsel (SWWC)
  std::vector<HistogramWorkspace> hist_ws; ///< one per worker lane
  AlignedBuffer<uint32_t> hists;           ///< morsels x fanout

  void Reserve(size_t morsels, int lanes, uint32_t fanout) {
    if (bufs.size() < morsels) bufs.resize(morsels);
    if (hist_ws.size() < static_cast<size_t>(lanes)) hist_ws.resize(lanes);
    if (hists.size() < morsels * fanout) {
      hists.Reset(morsels * fanout);
    }
  }

  void ReserveSwwc(size_t morsels, int lanes, uint32_t fanout) {
    if (wc_bufs.size() < morsels) wc_bufs.resize(morsels);
    if (hist_ws.size() < static_cast<size_t>(lanes)) hist_ws.resize(lanes);
    if (hists.size() < morsels * fanout) {
      hists.Reset(morsels * fanout);
    }
  }
};

/// Partitions (keys[, pays]) of size n into (out_keys[, out_pays]); pays and
/// out_pays may be null for a key-only pass. Output arrays need capacity
/// ShuffleCapacity(n) (streaming flush overshoot; see shuffle.h). If
/// `starts` is non-null it receives fanout+1 entries: global begin offset of
/// each partition plus n. `variant` picks the shuffle kernel; kAuto resolves
/// via ChooseShuffleVariant(fn.fanout, PartitionBudget::Default()), which
/// keeps buffered-16 for every fanout within the default TLB/L1 budget.
/// `out_capacity`, when nonzero, is asserted to satisfy the
/// ShuffleCapacity(n) contract at entry. Within the buffered-16 family the
/// AVX-512 fill is used only up to budget.b16_vector_max_fanout
/// (UseVectorBuffered16; the scalar fill wins beyond — byte-identical
/// either way). On multi-node topologies the per-morsel histogram rows are
/// first-touched node-locally (numa/placement.h) when (re)allocated;
/// output buffers belong to the caller, which is expected to place them
/// (the radixsort/join drivers do).
void ParallelPartitionPass(const PartitionFn& fn, const uint32_t* keys,
                           const uint32_t* pays, size_t n, uint32_t* out_keys,
                           uint32_t* out_pays, Isa isa, int threads,
                           ParallelPartitionResources* res, uint32_t* starts,
                           ShuffleVariant variant = ShuffleVariant::kAuto,
                           size_t out_capacity = 0);

}  // namespace simddb

#endif  // SIMDDB_PARTITION_PARALLEL_PARTITION_H_
