// AVX-512 SWWC shuffle: Alg. 15's vectorized fill (gather offsets,
// serialize conflicts, scatter into per-partition staging) retargeted at
// the combined 128-byte staging layout and the slid alignment grid of
// swwc.h, so every full-line flush is a 64-byte non-temporal store no
// matter how the caller's output arrays are aligned.

#include <cstring>

#include "core/avx512_ops.h"
#include "partition/partition_vec_avx512.h"
#include "partition/swwc.h"
#include "util/sanitizer.h"

namespace simddb {
namespace {

namespace v = simddb::avx512;

using internal::PartitionVecCtx;

}  // namespace

// SIMDDB_NO_SANITIZE_THREAD: same benign clobber-and-repair protocol as the
// scalar Main (see util/sanitizer.h).
SIMDDB_NO_SANITIZE_THREAD
void ShuffleSwwcAvx512Main(const PartitionFn& fn, const uint32_t* keys,
                           const uint32_t* pays, size_t n, uint32_t* offsets,
                           uint32_t* out_keys, uint32_t* out_pays,
                           SwwcBuffers* bufs) {
  bufs->Reserve(fn.fanout);
  std::memcpy(bufs->starts.data(), offsets, fn.fanout * sizeof(uint32_t));
  uint32_t* stage = bufs->stage.data();
  const uint32_t* st = bufs->starts.data();
  const uint32_t dk = SwwcGridPhase(out_keys);
  // Full-line congruence: the payload line streams when the two arrays sit
  // on the same 64-byte phase.
  const bool pays_nt = ((reinterpret_cast<uintptr_t>(out_pays) -
                         reinterpret_cast<uintptr_t>(out_keys)) &
                        63u) == 0;
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i fifteen = _mm512_set1_epi32(15);
  const __m512i sixteen = _mm512_set1_epi32(16);
  const __m512i stride =
      _mm512_set1_epi32(static_cast<int>(kSwwcStageStride));
  const __m512i dkv = _mm512_set1_epi32(static_cast<int>(dk));
  const PartitionVecCtx part(fn);
  alignas(64) uint32_t flush_part[16];
  alignas(64) uint32_t flush_base[16];
  uint64_t lines = 0;
  uint64_t partials = 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    __m512i val = _mm512_loadu_si512(pays + i);
    __m512i p = part(k);
    __m512i o = v::Gather(offsets, p);
    __m512i ser = v::SerializeConflicts(p);
    o = _mm512_add_epi32(o, ser);
    v::Scatter(offsets, p, _mm512_add_epi32(o, one));
    // Staging slot on the slid grid; may exceed 15 for lanes of a partition
    // whose line fills mid-vector.
    __m512i slot = _mm512_add_epi32(
        _mm512_and_si512(
            _mm512_sub_epi32(_mm512_sub_epi32(o, ser), dkv), fifteen),
        ser);
    __m512i buf_idx = _mm512_add_epi32(_mm512_mullo_epi32(p, stride), slot);
    __mmask16 fits = _mm512_cmple_epu32_mask(slot, fifteen);
    v::MaskScatter(stage, fits, buf_idx, k);
    v::MaskScatter(stage + 16, fits, buf_idx, val);
    __mmask16 full = _mm512_cmpeq_epi32_mask(slot, fifteen);
    if (full != 0) {
      // At most one lane per partition can sit at slot 15, so the flush
      // list has no duplicates.
      v::SelectiveStore(flush_part, full, p);
      v::SelectiveStore(flush_base, full, _mm512_sub_epi32(o, fifteen));
      int n_flush = __builtin_popcount(full);
      for (int f = 0; f < n_flush; ++f) {
        uint32_t prt = flush_part[f];
        uint32_t base = flush_base[f];
        const uint32_t* line = stage + prt * kSwwcStageStride;
        if (static_cast<int32_t>(base) >= 0) {
          v::StreamStore(out_keys + base, _mm512_load_si512(line));
          if (pays_nt) {
            v::StreamStore(out_pays + base, _mm512_load_si512(line + 16));
          } else {
            _mm512_storeu_si512(out_pays + base,
                                _mm512_load_si512(line + 16));
          }
          lines += 2;
        } else {
          // Head: see swwc.cc — copy only this partition's own positions.
          uint32_t oo = base + 15u;
          for (uint32_t q = st[prt]; q <= oo; ++q) {
            out_keys[q] = line[(q - dk) & 15u];
            out_pays[q] = line[16 + ((q - dk) & 15u)];
          }
          ++partials;
        }
      }
      __mmask16 overflow = static_cast<__mmask16>(~fits);
      if (overflow != 0) {
        __m512i of_idx = _mm512_sub_epi32(buf_idx, sixteen);
        v::MaskScatter(stage, overflow, of_idx, k);
        v::MaskScatter(stage + 16, overflow, of_idx, val);
      }
    }
  }
  _mm_sfence();
  // Scalar tail re-uses the same staging and flush protocol.
  for (; i < n; ++i) {
    uint32_t p = fn(keys[i]);
    uint32_t o = offsets[p]++;
    uint32_t slot = (o - dk) & 15u;
    uint32_t* line = stage + p * kSwwcStageStride;
    line[slot] = keys[i];
    line[16 + slot] = pays[i];
    if (slot == 15u) {
      if (o >= 15u) {
        uint32_t base = o - 15u;
        v::StreamStore(out_keys + base, _mm512_load_si512(line));
        if (pays_nt) {
          v::StreamStore(out_pays + base, _mm512_load_si512(line + 16));
        } else {
          _mm512_storeu_si512(out_pays + base, _mm512_load_si512(line + 16));
        }
        lines += 2;
      } else {
        for (uint32_t q = st[p]; q <= o; ++q) {
          out_keys[q] = line[(q - dk) & 15u];
          out_pays[q] = line[16 + ((q - dk) & 15u)];
        }
        ++partials;
      }
    }
  }
  _mm_sfence();
  internal::g_wc_line_flushes.Add(lines);
  internal::g_wc_partial_flushes.Add(partials);
}

SIMDDB_NO_SANITIZE_THREAD
void ShuffleKeysSwwcAvx512Main(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* offsets,
                               uint32_t* out_keys, SwwcBuffers* bufs) {
  bufs->Reserve(fn.fanout);
  std::memcpy(bufs->starts.data(), offsets, fn.fanout * sizeof(uint32_t));
  uint32_t* stage = bufs->stage.data();
  const uint32_t* st = bufs->starts.data();
  const uint32_t dk = SwwcGridPhase(out_keys);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i fifteen = _mm512_set1_epi32(15);
  const __m512i sixteen = _mm512_set1_epi32(16);
  const __m512i stride =
      _mm512_set1_epi32(static_cast<int>(kSwwcStageStride));
  const __m512i dkv = _mm512_set1_epi32(static_cast<int>(dk));
  const PartitionVecCtx part(fn);
  alignas(64) uint32_t flush_part[16];
  alignas(64) uint32_t flush_base[16];
  uint64_t lines = 0;
  uint64_t partials = 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    __m512i p = part(k);
    __m512i o = v::Gather(offsets, p);
    __m512i ser = v::SerializeConflicts(p);
    o = _mm512_add_epi32(o, ser);
    v::Scatter(offsets, p, _mm512_add_epi32(o, one));
    __m512i slot = _mm512_add_epi32(
        _mm512_and_si512(
            _mm512_sub_epi32(_mm512_sub_epi32(o, ser), dkv), fifteen),
        ser);
    __m512i buf_idx = _mm512_add_epi32(_mm512_mullo_epi32(p, stride), slot);
    __mmask16 fits = _mm512_cmple_epu32_mask(slot, fifteen);
    v::MaskScatter(stage, fits, buf_idx, k);
    __mmask16 full = _mm512_cmpeq_epi32_mask(slot, fifteen);
    if (full != 0) {
      v::SelectiveStore(flush_part, full, p);
      v::SelectiveStore(flush_base, full, _mm512_sub_epi32(o, fifteen));
      int n_flush = __builtin_popcount(full);
      for (int f = 0; f < n_flush; ++f) {
        uint32_t prt = flush_part[f];
        uint32_t base = flush_base[f];
        const uint32_t* line = stage + prt * kSwwcStageStride;
        if (static_cast<int32_t>(base) >= 0) {
          v::StreamStore(out_keys + base, _mm512_load_si512(line));
          ++lines;
        } else {
          uint32_t oo = base + 15u;
          for (uint32_t q = st[prt]; q <= oo; ++q) {
            out_keys[q] = line[(q - dk) & 15u];
          }
          ++partials;
        }
      }
      __mmask16 overflow = static_cast<__mmask16>(~fits);
      if (overflow != 0) {
        v::MaskScatter(stage, overflow, _mm512_sub_epi32(buf_idx, sixteen),
                       k);
      }
    }
  }
  _mm_sfence();
  for (; i < n; ++i) {
    uint32_t p = fn(keys[i]);
    uint32_t o = offsets[p]++;
    uint32_t slot = (o - dk) & 15u;
    uint32_t* line = stage + p * kSwwcStageStride;
    line[slot] = keys[i];
    if (slot == 15u) {
      if (o >= 15u) {
        v::StreamStore(out_keys + (o - 15u), _mm512_load_si512(line));
        ++lines;
      } else {
        for (uint32_t q = st[p]; q <= o; ++q) {
          out_keys[q] = line[(q - dk) & 15u];
        }
        ++partials;
      }
    }
  }
  _mm_sfence();
  internal::g_wc_line_flushes.Add(lines);
  internal::g_wc_partial_flushes.Add(partials);
}

void ShuffleSwwcAvx512(const PartitionFn& fn, const uint32_t* keys,
                       const uint32_t* pays, size_t n, uint32_t* offsets,
                       uint32_t* out_keys, uint32_t* out_pays,
                       SwwcBuffers* bufs) {
  ShuffleSwwcAvx512Main(fn, keys, pays, n, offsets, out_keys, out_pays,
                        bufs);
  ShuffleSwwcCleanup(fn.fanout, offsets, *bufs, out_keys, out_pays);
}

}  // namespace simddb
