#ifndef SIMDDB_PARTITION_PARTITION_VEC_AVX512_H_
#define SIMDDB_PARTITION_PARTITION_VEC_AVX512_H_

// Vectorized evaluation of PartitionFn (radix / hash / hash-radix) on 16
// keys. Internal header for AVX-512 translation units only.

#if defined(__AVX512F__)

#include "core/avx512_ops.h"
#include "partition/partition_fn.h"

namespace simddb::internal {

class PartitionVecCtx {
 public:
  explicit PartitionVecCtx(const PartitionFn& fn)
      : factor_(_mm512_set1_epi32(static_cast<int>(fn.factor))),
        total_(_mm512_set1_epi32(static_cast<int>(fn.total))),
        mask_(_mm512_set1_epi32(static_cast<int>(fn.fanout - 1))),
        shift_(static_cast<int>(fn.shift)),
        radix_(fn.kind == PartitionFn::Kind::kRadix),
        plain_hash_(fn.shift == 0 && fn.total == fn.fanout) {}

  __m512i operator()(__m512i keys) const {
    const __m128i count = _mm_cvtsi32_si128(shift_);
    if (radix_) {
      return _mm512_and_si512(_mm512_srl_epi32(keys, count), mask_);
    }
    __m512i h = simddb::avx512::MultHash(keys, factor_, total_);
    if (plain_hash_) return h;
    return _mm512_and_si512(_mm512_srl_epi32(h, count), mask_);
  }

 private:
  __m512i factor_;
  __m512i total_;
  __m512i mask_;
  int shift_;
  bool radix_;
  bool plain_hash_;
};

}  // namespace simddb::internal

#endif  // __AVX512F__
#endif  // SIMDDB_PARTITION_PARTITION_VEC_AVX512_H_
