// Scalar SWWC shuffle kernels (see swwc.h). This TU is compiled without ISA
// flags, so streaming stores use SSE2 (x86-64 baseline): a full staged line
// flushes as four 16-byte non-temporal stores into one write-combining
// buffer. The scalar core is deliberately branch-light — at radix fanouts
// beyond TLB reach it outruns the AVX-512 gather/scatter fill, which is why
// ParallelPartitionPass picks it for wide SWWC passes.

#include "partition/swwc.h"

#include <emmintrin.h>  // SSE2 streaming stores (baseline on x86-64)

#include <cstring>

#include "util/sanitizer.h"

namespace simddb {
namespace internal {

obs::Counter g_wc_line_flushes("wc_line_flushes");
obs::Counter g_wc_partial_flushes("wc_partial_flushes");

}  // namespace internal

namespace {

// Streams one staged 64-byte line to dst (16-byte aligned at minimum; the
// key-line destinations produced by the slid grid are 64-byte aligned, so
// the four stores combine into a single full-line write).
SIMDDB_NO_SANITIZE_THREAD
inline void StreamLine(const uint32_t* line, uint32_t* dst) {
  const __m128i* src = reinterpret_cast<const __m128i*>(line);
  __m128i* d = reinterpret_cast<__m128i*>(dst);
  for (int t = 0; t < 4; ++t) {
    _mm_stream_si128(d + t, _mm_load_si128(src + t));
  }
}

}  // namespace

// SIMDDB_NO_SANITIZE_THREAD: the grid-aligned flushes may briefly overwrite
// up to 15 tuples of a neighbour morsel's still-staged tail; the
// post-barrier cleanup pass rewrites them (see util/sanitizer.h).
SIMDDB_NO_SANITIZE_THREAD
void ShuffleSwwcScalarMain(const PartitionFn& fn, const uint32_t* keys,
                           const uint32_t* pays, size_t n, uint32_t* offsets,
                           uint32_t* out_keys, uint32_t* out_pays,
                           SwwcBuffers* bufs) {
  bufs->Reserve(fn.fanout);
  std::memcpy(bufs->starts.data(), offsets, fn.fanout * sizeof(uint32_t));
  uint32_t* stage = bufs->stage.data();
  const uint32_t* st = bufs->starts.data();
  const uint32_t dk = SwwcGridPhase(out_keys);
  // The payload line lands on a streamable boundary whenever the two output
  // arrays are congruent mod 16 bytes (mod 64 for single-line combining);
  // otherwise the key line keeps streaming and payloads take plain stores.
  const bool pays_nt = ((reinterpret_cast<uintptr_t>(out_pays) -
                         reinterpret_cast<uintptr_t>(out_keys)) &
                        15u) == 0;
  uint64_t lines = 0;
  uint64_t partials = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t p = fn(keys[i]);
    uint32_t o = offsets[p]++;
    uint32_t slot = (o - dk) & 15u;
    uint32_t* line = stage + p * kSwwcStageStride;
    line[slot] = keys[i];
    line[16 + slot] = pays[i];
    if (slot == 15u) {
      if (o >= 15u) {
        uint32_t base = o - 15u;  // 64-byte aligned by the slid grid
        StreamLine(line, out_keys + base);
        if (pays_nt) {
          StreamLine(line + 16, out_pays + base);
        } else {
          std::memcpy(out_pays + base, line + 16, 16 * sizeof(uint32_t));
        }
        lines += 2;
      } else {
        // Head: the full line would start before the array. Scalar-copy our
        // own positions [starts[p], o] — all still staged, and positions
        // below starts[p] belong to another subrange we must not touch.
        for (uint32_t q = st[p]; q <= o; ++q) {
          out_keys[q] = line[(q - dk) & 15u];
          out_pays[q] = line[16 + ((q - dk) & 15u)];
        }
        ++partials;
      }
    }
  }
  _mm_sfence();
  internal::g_wc_line_flushes.Add(lines);
  internal::g_wc_partial_flushes.Add(partials);
}

SIMDDB_NO_SANITIZE_THREAD
void ShuffleKeysSwwcScalarMain(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* offsets, uint32_t* out_keys,
                               SwwcBuffers* bufs) {
  bufs->Reserve(fn.fanout);
  std::memcpy(bufs->starts.data(), offsets, fn.fanout * sizeof(uint32_t));
  uint32_t* stage = bufs->stage.data();
  const uint32_t* st = bufs->starts.data();
  const uint32_t dk = SwwcGridPhase(out_keys);
  uint64_t lines = 0;
  uint64_t partials = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t p = fn(keys[i]);
    uint32_t o = offsets[p]++;
    uint32_t slot = (o - dk) & 15u;
    uint32_t* line = stage + p * kSwwcStageStride;
    line[slot] = keys[i];
    if (slot == 15u) {
      if (o >= 15u) {
        StreamLine(line, out_keys + (o - 15u));
        ++lines;
      } else {
        for (uint32_t q = st[p]; q <= o; ++q) {
          out_keys[q] = line[(q - dk) & 15u];
        }
        ++partials;
      }
    }
  }
  _mm_sfence();
  internal::g_wc_line_flushes.Add(lines);
  internal::g_wc_partial_flushes.Add(partials);
}

void ShuffleSwwcCleanup(uint32_t p_count, const uint32_t* offsets,
                        const SwwcBuffers& bufs, uint32_t* out_keys,
                        uint32_t* out_pays) {
  const uint32_t dk = SwwcGridPhase(out_keys);
  const uint32_t* stage = bufs.stage.data();
  uint64_t partials = 0;
  for (uint32_t p = 0; p < p_count; ++p) {
    uint32_t start = bufs.starts[p];
    uint32_t end = offsets[p];
    // First still-staged position: back off to the grid boundary, guarding
    // the unsigned subtraction (end may sit below the first boundary), then
    // clamp to the partition start.
    uint32_t rem = (end - dk) & 15u;
    uint32_t from = end >= rem ? end - rem : 0;
    if (from < start) from = start;
    if (from >= end) continue;
    const uint32_t* line = stage + p * kSwwcStageStride;
    for (uint32_t q = from; q < end; ++q) {
      out_keys[q] = line[(q - dk) & 15u];
      out_pays[q] = line[16 + ((q - dk) & 15u)];
    }
    ++partials;
  }
  internal::g_wc_partial_flushes.Add(partials);
}

void ShuffleKeysSwwcCleanup(uint32_t p_count, const uint32_t* offsets,
                            const SwwcBuffers& bufs, uint32_t* out_keys) {
  const uint32_t dk = SwwcGridPhase(out_keys);
  const uint32_t* stage = bufs.stage.data();
  uint64_t partials = 0;
  for (uint32_t p = 0; p < p_count; ++p) {
    uint32_t start = bufs.starts[p];
    uint32_t end = offsets[p];
    uint32_t rem = (end - dk) & 15u;
    uint32_t from = end >= rem ? end - rem : 0;
    if (from < start) from = start;
    if (from >= end) continue;
    const uint32_t* line = stage + p * kSwwcStageStride;
    for (uint32_t q = from; q < end; ++q) {
      out_keys[q] = line[(q - dk) & 15u];
    }
    ++partials;
  }
  internal::g_wc_partial_flushes.Add(partials);
}

void ShuffleSwwcScalar(const PartitionFn& fn, const uint32_t* keys,
                       const uint32_t* pays, size_t n, uint32_t* offsets,
                       uint32_t* out_keys, uint32_t* out_pays,
                       SwwcBuffers* bufs) {
  ShuffleSwwcScalarMain(fn, keys, pays, n, offsets, out_keys, out_pays, bufs);
  ShuffleSwwcCleanup(fn.fanout, offsets, *bufs, out_keys, out_pays);
}

}  // namespace simddb
