#include "partition/range.h"

#include <cassert>
#include <cstring>

#include "util/bits.h"

namespace simddb {

RangeFunction::RangeFunction(const std::vector<uint32_t>& splitters) {
  fanout_ = static_cast<uint32_t>(splitters.size()) + 1;
  levels_ = Log2Ceil(fanout_ < 2 ? 2 : fanout_);
  size_t p2 = size_t{1} << levels_;
  padded_.Reset(p2);
  padded_[0] = 0;  // unused
  for (size_t i = 0; i + 1 < p2; ++i) {
    padded_[i + 1] = i < splitters.size() ? splitters[i] : 0xFFFFFFFFu;
  }
}

void RangeFunction::ScalarBranching(const uint32_t* keys, size_t n,
                                    uint32_t* out) const {
  // Binary search over the real splitters: partition = count of splitters
  // strictly below the key.
  const uint32_t* d = padded_.data() + 1;
  const uint32_t p_real = fanout_ - 1;  // number of real splitters
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t lo = 0;
    uint32_t hi = p_real;
    while (lo < hi) {
      uint32_t mid = (lo + hi) >> 1;
      if (k > d[mid]) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    out[i] = lo;
  }
}

void RangeFunction::ScalarBranchless(const uint32_t* keys, size_t n,
                                     uint32_t* out) const {
  // Fixed-iteration search over the power-of-two padded array: every key
  // executes exactly levels_ conditional moves.
  const uint32_t* d = padded_.data() + 1;
  const uint32_t start_half = 1u << (levels_ - 1);
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t lo = 0;
    for (uint32_t half = start_half; half > 0; half >>= 1) {
      uint32_t probe = d[lo + half - 1];
      lo += (k > probe) ? half : 0;
    }
    out[i] = lo;
  }
}

RangeIndex::RangeIndex(const std::vector<uint32_t>& splitters, int node_width)
    : node_width_(node_width) {
  assert(node_width == 8 || node_width == 16);
  fanout_ = static_cast<uint32_t>(splitters.size()) + 1;
  const uint32_t node_fanout = static_cast<uint32_t>(node_width) + 1;
  levels_ = 1;
  uint64_t tf = node_fanout;
  while (tf < fanout_) {
    tf *= node_fanout;
    ++levels_;
  }
  tree_fanout_ = static_cast<uint32_t>(tf);

  // Conceptual padded splitter array S[0 .. tree_fanout_-2].
  auto padded = [&](uint64_t i) -> uint32_t {
    return i < splitters.size() ? splitters[i] : 0xFFFFFFFFu;
  };

  // Node (l, q), splitter j = S[(q*F + j + 1) * F^(levels-1-l) - 1].
  level_offset_.resize(levels_ + 1);
  size_t total = 0;
  uint64_t nodes = 1;
  for (int l = 0; l < levels_; ++l) {
    level_offset_[l] = total;
    total += static_cast<size_t>(nodes) * node_width;
    nodes *= node_fanout;
  }
  level_offset_[levels_] = total;
  level_data_.Reset(total);

  nodes = 1;
  uint64_t stride = tree_fanout_ / node_fanout;  // F^(levels-1-l)
  for (int l = 0; l < levels_; ++l) {
    for (uint64_t q = 0; q < nodes; ++q) {
      for (int j = 0; j < node_width; ++j) {
        uint64_t s_index =
            (q * node_fanout + static_cast<uint64_t>(j) + 1) * stride - 1;
        level_data_[level_offset_[l] + q * node_width + j] = padded(s_index);
      }
    }
    nodes *= node_fanout;
    stride /= node_fanout;
  }
}

void RangeIndex::LookupScalar(const uint32_t* keys, size_t n,
                              uint32_t* out) const {
  const uint32_t node_fanout = static_cast<uint32_t>(node_width_) + 1;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    uint32_t pos = 0;
    for (int l = 0; l < levels_; ++l) {
      const uint32_t* node = level_data_.data() + level_offset_[l] +
                             static_cast<size_t>(pos) * node_width_;
      uint32_t c = 0;
      for (int j = 0; j < node_width_; ++j) c += (k > node[j]) ? 1u : 0u;
      pos = pos * node_fanout + c;
    }
    out[i] = pos;
  }
}

}  // namespace simddb
