// AVX-512 shuffling kernels: Alg. 14 (unbuffered), Alg. 15 (buffered), the
// unstable retry-on-conflict variant for hash partitioning, and vectorized
// destination/column scatter helpers for multi-column shuffling.

#include <cstring>

#include "core/avx512_ops.h"
#include "partition/partition_vec_avx512.h"
#include "partition/shuffle.h"
#include "util/sanitizer.h"

namespace simddb {
namespace {

namespace v = simddb::avx512;

using internal::PartitionVecCtx;

// Streams one full 16-tuple buffer chunk to out + base (base is 16-aligned;
// non-temporal when the output array itself is 64-byte aligned).
SIMDDB_NO_SANITIZE_THREAD
inline void FlushChunk512(const uint32_t* buf, uint32_t* out, uint32_t base,
                          bool streamable) {
  __m512i w = _mm512_load_si512(buf);
  if (streamable) {
    v::StreamStore(out + base, w);
  } else {
    _mm512_storeu_si512(out + base, w);
  }
}

}  // namespace

// Alg. 14: conflict-serialized scatter straight to the output.
void ShuffleVectorUnbufferedAvx512(const PartitionFn& fn,
                                   const uint32_t* keys, const uint32_t* pays,
                                   size_t n, uint32_t* offsets,
                                   uint32_t* out_keys, uint32_t* out_pays) {
  const __m512i one = _mm512_set1_epi32(1);
  const PartitionVecCtx part(fn);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    __m512i val = _mm512_loadu_si512(pays + i);
    __m512i p = part(k);
    __m512i o = v::Gather(offsets, p);
    __m512i ser = v::SerializeConflicts(p);
    o = _mm512_add_epi32(o, ser);
    v::Scatter(offsets, p, _mm512_add_epi32(o, one));
    v::Scatter(out_keys, o, k);
    v::Scatter(out_pays, o, val);
  }
  ShuffleScalarUnbuffered(fn, keys + i, pays + i, n - i, offsets,
                          out_keys, out_pays);
}

// Alg. 15: tuples are scattered into 16-slot per-partition buffers; filled
// chunks are flushed horizontally (one partition at a time) with streaming
// stores; lanes whose slot overflowed the chunk are scattered after the
// flush.
//
// SIMDDB_NO_SANITIZE_THREAD: the aligned flushes may briefly overwrite up to
// 15 tuples of a neighbour morsel's still-buffered tail; the post-barrier
// cleanup pass rewrites them (see util/sanitizer.h).
SIMDDB_NO_SANITIZE_THREAD
void ShuffleVectorBufferedMainAvx512(const PartitionFn& fn,
                                     const uint32_t* keys,
                                     const uint32_t* pays, size_t n,
                                     uint32_t* offsets, uint32_t* out_keys,
                                     uint32_t* out_pays,
                                     ShuffleBuffers* bufs) {
  bufs->Reserve(fn.fanout);
  std::memcpy(bufs->starts.data(), offsets, fn.fanout * sizeof(uint32_t));
  uint32_t* bk = bufs->keys.data();
  uint32_t* bp = bufs->pays.data();
  const bool streamable =
      v::IsStreamAligned(out_keys) && v::IsStreamAligned(out_pays);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i fifteen = _mm512_set1_epi32(15);
  const __m512i sixteen = _mm512_set1_epi32(16);
  const PartitionVecCtx part(fn);
  alignas(64) uint32_t flush_part[16];
  alignas(64) uint32_t flush_base[16];
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    __m512i val = _mm512_loadu_si512(pays + i);
    __m512i p = part(k);
    __m512i o = v::Gather(offsets, p);
    __m512i ser = v::SerializeConflicts(p);
    o = _mm512_add_epi32(o, ser);
    v::Scatter(offsets, p, _mm512_add_epi32(o, one));
    // Buffer slot: (global position) mod 16, which may exceed 15 for lanes
    // of a partition whose chunk fills mid-vector.
    __m512i slot = _mm512_add_epi32(
        _mm512_and_si512(_mm512_sub_epi32(o, ser), fifteen), ser);
    __m512i buf_idx =
        _mm512_add_epi32(_mm512_mullo_epi32(p, sixteen), slot);
    __mmask16 fits = _mm512_cmple_epu32_mask(slot, fifteen);
    v::MaskScatter(bk, fits, buf_idx, k);
    v::MaskScatter(bp, fits, buf_idx, val);
    __mmask16 full = _mm512_cmpeq_epi32_mask(slot, fifteen);
    if (full != 0) {
      // At most one lane per partition can sit at slot 15, so the flush
      // list has no duplicates.
      v::SelectiveStore(flush_part, full, p);
      v::SelectiveStore(flush_base, full,
                        _mm512_and_si512(o, _mm512_set1_epi32(~15)));
      int n_flush = __builtin_popcount(full);
      for (int f = 0; f < n_flush; ++f) {
        uint32_t part = flush_part[f];
        uint32_t base = flush_base[f];
        FlushChunk512(bk + part * 16, out_keys, base, streamable);
        FlushChunk512(bp + part * 16, out_pays, base, streamable);
      }
      __mmask16 overflow = static_cast<__mmask16>(~fits);
      if (overflow != 0) {
        __m512i of_idx = _mm512_sub_epi32(buf_idx, sixteen);
        v::MaskScatter(bk, overflow, of_idx, k);
        v::MaskScatter(bp, overflow, of_idx, val);
      }
    }
  }
  if (streamable) _mm_sfence();
  // Scalar tail re-uses the same buffers and flush protocol.
  for (; i < n; ++i) {
    uint32_t p = fn(keys[i]);
    uint32_t o = offsets[p]++;
    uint32_t slot = o & 15u;
    bk[p * 16 + slot] = keys[i];
    bp[p * 16 + slot] = pays[i];
    if (slot == 15u) {
      uint32_t base = o & ~15u;
      FlushChunk512(bk + p * 16, out_keys, base, streamable);
      FlushChunk512(bp + p * 16, out_pays, base, streamable);
    }
  }
  if (streamable) _mm_sfence();
}

// Unstable variant for hash partitioning: conflicting lanes are not
// serialized; they retry on the next iteration while finished lanes refill
// from the input (§7.4: "instead of conflict serialization, we detect and
// process conflicting lanes during the next loop").
SIMDDB_NO_SANITIZE_THREAD
void ShuffleVectorBufferedUnstableMainAvx512(
    const PartitionFn& fn, const uint32_t* keys, const uint32_t* pays,
    size_t n, uint32_t* offsets, uint32_t* out_keys, uint32_t* out_pays,
    ShuffleBuffers* bufs) {
  bufs->Reserve(fn.fanout);
  std::memcpy(bufs->starts.data(), offsets, fn.fanout * sizeof(uint32_t));
  uint32_t* bk = bufs->keys.data();
  uint32_t* bp = bufs->pays.data();
  const bool streamable =
      v::IsStreamAligned(out_keys) && v::IsStreamAligned(out_pays);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i fifteen = _mm512_set1_epi32(15);
  const __m512i sixteen = _mm512_set1_epi32(16);
  const PartitionVecCtx part(fn);
  alignas(64) uint32_t flush_part[16];
  alignas(64) uint32_t flush_base[16];
  __m512i k = _mm512_setzero_si512();
  __m512i val = _mm512_setzero_si512();
  __mmask16 need = 0xFFFF;
  size_t i = 0;
  while (i + 16 <= n) {
    k = v::SelectiveLoad(k, need, keys + i);
    val = v::SelectiveLoad(val, need, pays + i);
    i += __builtin_popcount(need);
    __m512i p = part(k);
    // Winner lanes (no later duplicate partition) proceed; losers retry.
    __mmask16 win = v::ScatterWinners(p);
    __m512i o = v::MaskGather(p, win, offsets, p);
    v::MaskScatter(offsets, win, p, _mm512_add_epi32(o, one));
    __m512i slot = _mm512_and_si512(o, fifteen);
    __m512i buf_idx =
        _mm512_add_epi32(_mm512_mullo_epi32(p, sixteen), slot);
    v::MaskScatter(bk, win, buf_idx, k);
    v::MaskScatter(bp, win, buf_idx, val);
    __mmask16 full =
        _mm512_mask_cmpeq_epi32_mask(win, slot, fifteen);
    if (full != 0) {
      v::SelectiveStore(flush_part, full, p);
      v::SelectiveStore(flush_base, full,
                        _mm512_and_si512(o, _mm512_set1_epi32(~15)));
      int n_flush = __builtin_popcount(full);
      for (int f = 0; f < n_flush; ++f) {
        FlushChunk512(bk + flush_part[f] * 16, out_keys, flush_base[f],
                      streamable);
        FlushChunk512(bp + flush_part[f] * 16, out_pays, flush_base[f],
                      streamable);
      }
    }
    need = win;
  }
  if (streamable) _mm_sfence();
  // Drain in-flight lanes, then the input tail.
  alignas(64) uint32_t lk[16], lv[16];
  _mm512_store_si512(lk, k);
  _mm512_store_si512(lv, val);
  auto put = [&](uint32_t key, uint32_t pay) {
    uint32_t p = fn(key);
    uint32_t o = offsets[p]++;
    uint32_t slot = o & 15u;
    bk[p * 16 + slot] = key;
    bp[p * 16 + slot] = pay;
    if (slot == 15u) {
      uint32_t base = o & ~15u;
      FlushChunk512(bk + p * 16, out_keys, base, streamable);
      FlushChunk512(bp + p * 16, out_pays, base, streamable);
    }
  };
  for (int lane = 0; lane < 16; ++lane) {
    if (need & (1u << lane)) continue;
    put(lk[lane], lv[lane]);
  }
  for (; i < n; ++i) put(keys[i], pays[i]);
  if (streamable) _mm_sfence();
}

void ShuffleVectorBufferedAvx512(const PartitionFn& fn, const uint32_t* keys,
                                 const uint32_t* pays, size_t n,
                                 uint32_t* offsets, uint32_t* out_keys,
                                 uint32_t* out_pays, ShuffleBuffers* bufs) {
  ShuffleVectorBufferedMainAvx512(fn, keys, pays, n, offsets, out_keys,
                                  out_pays, bufs);
  ShuffleBufferedCleanup(fn.fanout, offsets, *bufs, out_keys, out_pays);
}

void ShuffleVectorBufferedUnstableAvx512(const PartitionFn& fn,
                                         const uint32_t* keys,
                                         const uint32_t* pays, size_t n,
                                         uint32_t* offsets,
                                         uint32_t* out_keys,
                                         uint32_t* out_pays,
                                         ShuffleBuffers* bufs) {
  ShuffleVectorBufferedUnstableMainAvx512(fn, keys, pays, n, offsets,
                                          out_keys, out_pays, bufs);
  ShuffleBufferedCleanup(fn.fanout, offsets, *bufs, out_keys, out_pays);
}

// Key-only Alg. 15 (for key-only radixsort passes).
SIMDDB_NO_SANITIZE_THREAD
void ShuffleKeysVectorBufferedMainAvx512(const PartitionFn& fn,
                                         const uint32_t* keys, size_t n,
                                         uint32_t* offsets, uint32_t* out_keys,
                                         ShuffleBuffers* bufs) {
  bufs->Reserve(fn.fanout);
  std::memcpy(bufs->starts.data(), offsets, fn.fanout * sizeof(uint32_t));
  uint32_t* bk = bufs->keys.data();
  const bool streamable = v::IsStreamAligned(out_keys);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i fifteen = _mm512_set1_epi32(15);
  const __m512i sixteen = _mm512_set1_epi32(16);
  const PartitionVecCtx part(fn);
  alignas(64) uint32_t flush_part[16];
  alignas(64) uint32_t flush_base[16];
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    __m512i p = part(k);
    __m512i o = v::Gather(offsets, p);
    __m512i ser = v::SerializeConflicts(p);
    o = _mm512_add_epi32(o, ser);
    v::Scatter(offsets, p, _mm512_add_epi32(o, one));
    __m512i slot = _mm512_add_epi32(
        _mm512_and_si512(_mm512_sub_epi32(o, ser), fifteen), ser);
    __m512i buf_idx = _mm512_add_epi32(_mm512_mullo_epi32(p, sixteen), slot);
    __mmask16 fits = _mm512_cmple_epu32_mask(slot, fifteen);
    v::MaskScatter(bk, fits, buf_idx, k);
    __mmask16 full = _mm512_cmpeq_epi32_mask(slot, fifteen);
    if (full != 0) {
      v::SelectiveStore(flush_part, full, p);
      v::SelectiveStore(flush_base, full,
                        _mm512_and_si512(o, _mm512_set1_epi32(~15)));
      int n_flush = __builtin_popcount(full);
      for (int f = 0; f < n_flush; ++f) {
        FlushChunk512(bk + flush_part[f] * 16, out_keys, flush_base[f],
                      streamable);
      }
      __mmask16 overflow = static_cast<__mmask16>(~fits);
      if (overflow != 0) {
        v::MaskScatter(bk, overflow, _mm512_sub_epi32(buf_idx, sixteen), k);
      }
    }
  }
  if (streamable) _mm_sfence();
  for (; i < n; ++i) {
    uint32_t p = fn(keys[i]);
    uint32_t o = offsets[p]++;
    uint32_t slot = o & 15u;
    bk[p * 16 + slot] = keys[i];
    if (slot == 15u) {
      FlushChunk512(bk + p * 16, out_keys, o & ~15u, streamable);
    }
  }
  if (streamable) _mm_sfence();
}

void GatherColumnAvx512(const void* col, size_t n, const uint32_t* rids,
                        void* out, int elem_bytes) {
  size_t i = 0;
  if (elem_bytes == 4) {
    const uint32_t* c = static_cast<const uint32_t*>(col);
    uint32_t* o = static_cast<uint32_t*>(out);
    for (; i + 16 <= n; i += 16) {
      __m512i r = _mm512_loadu_si512(rids + i);
      _mm512_storeu_si512(o + i, v::Gather(c, r));
    }
  } else if (elem_bytes == 8) {
    const long long* c = static_cast<const long long*>(col);
    long long* o = static_cast<long long*>(out);
    for (; i + 8 <= n; i += 8) {
      __m256i r =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rids + i));
      __m512i val = _mm512_i32gather_epi64(r, c, 8);
      _mm512_storeu_si512(reinterpret_cast<__m512i*>(o + i), val);
    }
  }
  GatherColumnScalar(col, n - i, rids + i,
                     static_cast<uint8_t*>(out) + i * elem_bytes, elem_bytes);
}

void ComputeDestinationsAvx512(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* offsets, uint32_t* dest) {
  const __m512i one = _mm512_set1_epi32(1);
  const PartitionVecCtx part(fn);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    __m512i p = part(k);
    __m512i o = v::Gather(offsets, p);
    __m512i ser = v::SerializeConflicts(p);
    o = _mm512_add_epi32(o, ser);
    v::Scatter(offsets, p, _mm512_add_epi32(o, one));
    _mm512_storeu_si512(dest + i, o);
  }
  ComputeDestinationsScalar(fn, keys + i, n - i, offsets, dest + i);
}

void ScatterColumnAvx512(const void* col, size_t n, const uint32_t* dest,
                         void* out, int elem_bytes) {
  size_t i = 0;
  if (elem_bytes == 4) {
    const uint32_t* c = static_cast<const uint32_t*>(col);
    uint32_t* o = static_cast<uint32_t*>(out);
    for (; i + 16 <= n; i += 16) {
      __m512i d = _mm512_loadu_si512(dest + i);
      __m512i val = _mm512_loadu_si512(c + i);
      v::Scatter(o, d, val);
    }
  } else if (elem_bytes == 8) {
    const long long* c = static_cast<const long long*>(col);
    long long* o = static_cast<long long*>(out);
    for (; i + 8 <= n; i += 8) {
      __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dest + i));
      __m512i val =
          _mm512_loadu_si512(reinterpret_cast<const __m512i*>(c + i));
      _mm512_i32scatter_epi64(o, d, val, 8);
    }
  }
  ScatterColumnScalar(static_cast<const uint8_t*>(col) + i * elem_bytes,
                      n - i, dest + i, out, elem_bytes);
}

}  // namespace simddb
