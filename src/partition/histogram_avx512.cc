// AVX-512 histogram kernels (§7.1, Fig. 11 variants).

#include <cstring>

#include "core/avx512_ops.h"
#include "partition/histogram.h"
#include "partition/partition_vec_avx512.h"

namespace simddb {
namespace {

namespace v = simddb::avx512;

using internal::PartitionVecCtx;

}  // namespace

// Alg. 11: lane j increments replicated[p*16 + j]; a final pass reduces the
// 16 replicas into the caller's histogram.
void HistogramReplicatedAvx512(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* hist,
                               HistogramWorkspace* ws) {
  const uint32_t p_count = fn.fanout;
  ws->Reserve(p_count);
  uint32_t* repl = ws->replicated.data();
  std::memset(repl, 0, static_cast<size_t>(p_count) * 16 * sizeof(uint32_t));

  const __m512i lane =
      _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  const __m512i sixteen = _mm512_set1_epi32(16);
  const __m512i one = _mm512_set1_epi32(1);
  const PartitionVecCtx part(fn);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    __m512i p = part(k);
    __m512i idx = _mm512_add_epi32(_mm512_mullo_epi32(p, sixteen), lane);
    __m512i c = v::Gather(repl, idx);
    v::Scatter(repl, idx, _mm512_add_epi32(c, one));
  }
  // Reduce replicas; fold the scalar tail in as lane 0 increments.
  for (; i < n; ++i) {
    repl[static_cast<size_t>(fn(keys[i])) * 16] += 1;
  }
  for (uint32_t p = 0; p < p_count; ++p) {
    __m512i c = _mm512_load_si512(repl + static_cast<size_t>(p) * 16);
    hist[p] = static_cast<uint32_t>(_mm512_reduce_add_epi32(c));
  }
}

// Single-copy histogram: gather counts once, add each lane's serialization
// offset + 1, scatter back (the rightmost lane of each conflicting group
// writes the fully incremented count).
void HistogramSerializedAvx512(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* hist) {
  const uint32_t p_count = fn.fanout;
  std::memset(hist, 0, p_count * sizeof(uint32_t));
  const __m512i one = _mm512_set1_epi32(1);
  const PartitionVecCtx part(fn);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    __m512i p = part(k);
    __m512i c = v::Gather(hist, p);
    __m512i ser = v::SerializeConflicts(p);
    c = _mm512_add_epi32(c, _mm512_add_epi32(ser, one));
    v::Scatter(hist, p, c);
  }
  for (; i < n; ++i) ++hist[fn(keys[i])];
}

// Alg. 11 with 1-byte counts: lane j owns a (P+4)-byte region; a count is
// the low byte of an unaligned 32-bit gather at byte offset
// j*(P+4) + p (scale 1). When any lane's count would wrap past 255 the
// whole scratch area is flushed into the 32-bit histogram.
void HistogramCompressedAvx512(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* hist,
                               HistogramWorkspace* ws) {
  const uint32_t p_count = fn.fanout;
  ws->Reserve(p_count);
  uint8_t* counts = ws->compressed.data();
  const size_t region = p_count + 4;
  std::memset(counts, 0, region * 16);
  std::memset(hist, 0, p_count * sizeof(uint32_t));

  auto flush = [&] {
    for (int lane = 0; lane < 16; ++lane) {
      const uint8_t* r = counts + static_cast<size_t>(lane) * region;
      for (uint32_t p = 0; p < p_count; ++p) hist[p] += r[p];
    }
    std::memset(counts, 0, region * 16);
  };

  // lane_base[j] = j * region.
  alignas(64) uint32_t lane_base_arr[16];
  for (uint32_t j = 0; j < 16; ++j) {
    lane_base_arr[j] = j * static_cast<uint32_t>(region);
  }
  const __m512i lane_base = _mm512_load_si512(lane_base_arr);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i low_byte = _mm512_set1_epi32(0xFF);
  const PartitionVecCtx part(fn);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    __m512i p = part(k);
    __m512i idx = _mm512_add_epi32(lane_base, p);
    for (;;) {
      // 32-bit gather at byte granularity: low byte is this lane's count,
      // upper bytes belong to this lane's own region (disjoint across
      // lanes), so writing them back unchanged is safe.
      __m512i word = _mm512_i32gather_epi32(idx, counts, 1);
      __mmask16 overflow = _mm512_cmpeq_epi32_mask(
          _mm512_and_si512(word, low_byte), low_byte);
      if (overflow != 0) {
        flush();
        continue;  // re-gather against the zeroed scratch
      }
      _mm512_i32scatter_epi32(counts, idx, _mm512_add_epi32(word, one), 1);
      break;
    }
  }
  flush();
  for (; i < n; ++i) ++hist[fn(keys[i])];
}

}  // namespace simddb
