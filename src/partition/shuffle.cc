#include "partition/shuffle.h"

#include <emmintrin.h>  // SSE2 streaming stores (baseline on x86-64)

#include <cstring>

#include "util/sanitizer.h"

namespace simddb {
namespace {

// Flushes one full 16-tuple chunk of partition p from the buffers to the
// output at (aligned) position base, using non-temporal stores when the
// destination is 16-byte aligned.
SIMDDB_NO_SANITIZE_THREAD
inline void FlushChunk(const uint32_t* buf, uint32_t* out, uint32_t base) {
  uint32_t* dst = out + base;
  if ((reinterpret_cast<uintptr_t>(dst) & 15u) == 0) {
    const __m128i* src = reinterpret_cast<const __m128i*>(buf);
    __m128i* d = reinterpret_cast<__m128i*>(dst);
    for (int t = 0; t < 4; ++t) {
      _mm_stream_si128(d + t, _mm_load_si128(src + t));
    }
  } else {
    std::memcpy(dst, buf, 16 * sizeof(uint32_t));
  }
}

}  // namespace

void ShuffleScalarUnbuffered(const PartitionFn& fn, const uint32_t* keys,
                             const uint32_t* pays, size_t n, uint32_t* offsets,
                             uint32_t* out_keys, uint32_t* out_pays) {
  for (size_t i = 0; i < n; ++i) {
    uint32_t p = fn(keys[i]);
    uint32_t o = offsets[p]++;
    out_keys[o] = keys[i];
    out_pays[o] = pays[i];
  }
}

// SIMDDB_NO_SANITIZE_THREAD: the aligned flushes may briefly overwrite up to
// 15 tuples of a neighbour morsel's still-buffered tail; the post-barrier
// cleanup pass rewrites them (see util/sanitizer.h).
SIMDDB_NO_SANITIZE_THREAD
void ShuffleScalarBufferedMain(const PartitionFn& fn, const uint32_t* keys,
                               const uint32_t* pays, size_t n,
                               uint32_t* offsets, uint32_t* out_keys,
                               uint32_t* out_pays, ShuffleBuffers* bufs) {
  bufs->Reserve(fn.fanout);
  std::memcpy(bufs->starts.data(), offsets, fn.fanout * sizeof(uint32_t));
  uint32_t* bk = bufs->keys.data();
  uint32_t* bp = bufs->pays.data();
  for (size_t i = 0; i < n; ++i) {
    uint32_t p = fn(keys[i]);
    uint32_t o = offsets[p]++;
    uint32_t slot = o & 15u;
    bk[p * 16 + slot] = keys[i];
    bp[p * 16 + slot] = pays[i];
    if (slot == 15u) {
      uint32_t base = o & ~15u;
      FlushChunk(bk + p * 16, out_keys, base);
      FlushChunk(bp + p * 16, out_pays, base);
    }
  }
  _mm_sfence();
}

void ShuffleBufferedCleanup(uint32_t p_count, const uint32_t* offsets,
                            const ShuffleBuffers& bufs, uint32_t* out_keys,
                            uint32_t* out_pays) {
  const uint32_t* bk = bufs.keys.data();
  const uint32_t* bp = bufs.pays.data();
  for (uint32_t p = 0; p < p_count; ++p) {
    uint32_t start = bufs.starts[p];
    uint32_t end = offsets[p];
    uint32_t from = end & ~15u;
    if (from < start) from = start;
    for (uint32_t q = from; q < end; ++q) {
      out_keys[q] = bk[p * 16 + (q & 15u)];
      out_pays[q] = bp[p * 16 + (q & 15u)];
    }
  }
}

void ShuffleScalarBuffered(const PartitionFn& fn, const uint32_t* keys,
                           const uint32_t* pays, size_t n, uint32_t* offsets,
                           uint32_t* out_keys, uint32_t* out_pays,
                           ShuffleBuffers* bufs) {
  ShuffleScalarBufferedMain(fn, keys, pays, n, offsets, out_keys, out_pays,
                            bufs);
  ShuffleBufferedCleanup(fn.fanout, offsets, *bufs, out_keys, out_pays);
}

SIMDDB_NO_SANITIZE_THREAD
void ShuffleKeysScalarBufferedMain(const PartitionFn& fn, const uint32_t* keys,
                                   size_t n, uint32_t* offsets,
                                   uint32_t* out_keys, ShuffleBuffers* bufs) {
  bufs->Reserve(fn.fanout);
  std::memcpy(bufs->starts.data(), offsets, fn.fanout * sizeof(uint32_t));
  uint32_t* bk = bufs->keys.data();
  for (size_t i = 0; i < n; ++i) {
    uint32_t p = fn(keys[i]);
    uint32_t o = offsets[p]++;
    uint32_t slot = o & 15u;
    bk[p * 16 + slot] = keys[i];
    if (slot == 15u) {
      FlushChunk(bk + p * 16, out_keys, o & ~15u);
    }
  }
  _mm_sfence();
}

void ShuffleKeysBufferedCleanup(uint32_t p_count, const uint32_t* offsets,
                                const ShuffleBuffers& bufs,
                                uint32_t* out_keys) {
  const uint32_t* bk = bufs.keys.data();
  for (uint32_t p = 0; p < p_count; ++p) {
    uint32_t start = bufs.starts[p];
    uint32_t end = offsets[p];
    uint32_t from = end & ~15u;
    if (from < start) from = start;
    for (uint32_t q = from; q < end; ++q) {
      out_keys[q] = bk[p * 16 + (q & 15u)];
    }
  }
}

void GatherColumnScalar(const void* col, size_t n, const uint32_t* rids,
                        void* out, int elem_bytes) {
  switch (elem_bytes) {
    case 1: {
      const uint8_t* c = static_cast<const uint8_t*>(col);
      uint8_t* o = static_cast<uint8_t*>(out);
      for (size_t i = 0; i < n; ++i) o[i] = c[rids[i]];
      break;
    }
    case 2: {
      const uint16_t* c = static_cast<const uint16_t*>(col);
      uint16_t* o = static_cast<uint16_t*>(out);
      for (size_t i = 0; i < n; ++i) o[i] = c[rids[i]];
      break;
    }
    case 4: {
      const uint32_t* c = static_cast<const uint32_t*>(col);
      uint32_t* o = static_cast<uint32_t*>(out);
      for (size_t i = 0; i < n; ++i) o[i] = c[rids[i]];
      break;
    }
    case 8: {
      const uint64_t* c = static_cast<const uint64_t*>(col);
      uint64_t* o = static_cast<uint64_t*>(out);
      for (size_t i = 0; i < n; ++i) o[i] = c[rids[i]];
      break;
    }
    default:
      break;
  }
}

void ComputeDestinationsScalar(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* offsets, uint32_t* dest) {
  for (size_t i = 0; i < n; ++i) {
    dest[i] = offsets[fn(keys[i])]++;
  }
}

void ScatterColumnScalar(const void* col, size_t n, const uint32_t* dest,
                         void* out, int elem_bytes) {
  switch (elem_bytes) {
    case 1: {
      const uint8_t* c = static_cast<const uint8_t*>(col);
      uint8_t* o = static_cast<uint8_t*>(out);
      for (size_t i = 0; i < n; ++i) o[dest[i]] = c[i];
      break;
    }
    case 2: {
      const uint16_t* c = static_cast<const uint16_t*>(col);
      uint16_t* o = static_cast<uint16_t*>(out);
      for (size_t i = 0; i < n; ++i) o[dest[i]] = c[i];
      break;
    }
    case 4: {
      const uint32_t* c = static_cast<const uint32_t*>(col);
      uint32_t* o = static_cast<uint32_t*>(out);
      for (size_t i = 0; i < n; ++i) o[dest[i]] = c[i];
      break;
    }
    case 8: {
      const uint64_t* c = static_cast<const uint64_t*>(col);
      uint64_t* o = static_cast<uint64_t*>(out);
      for (size_t i = 0; i < n; ++i) o[dest[i]] = c[i];
      break;
    }
    default:
      break;
  }
}

}  // namespace simddb
