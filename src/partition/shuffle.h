#ifndef SIMDDB_PARTITION_SHUFFLE_H_
#define SIMDDB_PARTITION_SHUFFLE_H_

// Data shuffling (§7.3-7.4): move (key, payload) tuples to their partition's
// contiguous output range. Variants match Fig. 13:
//
//   ShuffleScalarUnbuffered      one store pair per tuple, direct to output.
//   ShuffleScalarBuffered        W-slot cache-resident buffer per partition,
//                                flushed with streaming stores [31, 38].
//   ShuffleVectorUnbuffered      Alg. 14 — gathers/scatters + conflict
//                                serialization, direct to output.
//   ShuffleVectorBuffered        Alg. 15 — vectorized buffering; the fastest.
//   ShuffleVectorBufferedUnstable  hash partitioning variant: conflicting
//                                lanes retry next iteration instead of being
//                                serialized (unstable but slightly faster).
//
// Protocol: `offsets` holds the exclusive prefix sum of the partition
// histogram on entry and the partition end positions on return. The
// buffered variants write their streaming flushes at 16-tuple-aligned
// positions, which can momentarily clobber up to 15 tuples *before* a
// partition's start; those positions always belong to tuples that are still
// buffered and are repaired by the cleanup pass. Single-threaded callers use
// the all-in-one entry points; parallel radixsort calls *Main on every
// thread, barriers, then *Cleanup (App. F's "fix the first cache line of
// each partition after synchronizing").
//
// Output buffers need capacity ShuffleCapacity(total) (aligned flushes may
// overshoot the last partition's end). Stable variants preserve input order
// within each partition (required by LSB radixsort).

#include <cstddef>
#include <cstdint>

#include "partition/partition_fn.h"
#include "util/aligned_buffer.h"

namespace simddb {

/// Spare capacity every shuffle output and scratch array needs beyond its
/// tuple count: the 16-tuple-aligned streaming flushes of the buffered
/// variants may overshoot the last partition's end by up to 15 tuples, and
/// the SWWC kernels (swwc.h) stage on a cacheline grid with the same worst
/// case. This is THE slack constant — radix_sort.h, parallel_partition.h,
/// and the join partitioners all state their buffer contracts in terms of
/// it, and ParallelPartitionPass asserts it when told the real capacity.
inline constexpr size_t kShuffleSlackTuples = 16;

/// Required allocation size for a shuffle output or scratch array of n
/// tuples.
inline constexpr size_t ShuffleCapacity(size_t n) {
  return n + kShuffleSlackTuples;
}

/// Per-thread scratch for buffered shuffles: 16 (key, payload) slots per
/// partition, plus the snapshot of partition start offsets that the cleanup
/// pass needs.
struct ShuffleBuffers {
  AlignedBuffer<uint32_t> keys;
  AlignedBuffer<uint32_t> pays;
  AlignedBuffer<uint32_t> starts;

  void Reserve(uint32_t p) {
    if (keys.size() < static_cast<size_t>(p) * 16) {
      keys.Reset(static_cast<size_t>(p) * 16);
      pays.Reset(static_cast<size_t>(p) * 16);
      starts.Reset(p);
    }
  }
};

void ShuffleScalarUnbuffered(const PartitionFn& fn, const uint32_t* keys,
                             const uint32_t* pays, size_t n, uint32_t* offsets,
                             uint32_t* out_keys, uint32_t* out_pays);

void ShuffleScalarBufferedMain(const PartitionFn& fn, const uint32_t* keys,
                               const uint32_t* pays, size_t n,
                               uint32_t* offsets, uint32_t* out_keys,
                               uint32_t* out_pays, ShuffleBuffers* bufs);

void ShuffleVectorUnbufferedAvx512(const PartitionFn& fn,
                                   const uint32_t* keys, const uint32_t* pays,
                                   size_t n, uint32_t* offsets,
                                   uint32_t* out_keys, uint32_t* out_pays);

void ShuffleVectorBufferedMainAvx512(const PartitionFn& fn,
                                     const uint32_t* keys,
                                     const uint32_t* pays, size_t n,
                                     uint32_t* offsets, uint32_t* out_keys,
                                     uint32_t* out_pays,
                                     ShuffleBuffers* bufs);

void ShuffleVectorBufferedUnstableMainAvx512(
    const PartitionFn& fn, const uint32_t* keys, const uint32_t* pays,
    size_t n, uint32_t* offsets, uint32_t* out_keys, uint32_t* out_pays,
    ShuffleBuffers* bufs);

/// Writes the still-buffered tail tuples of every partition (must run after
/// *Main on all threads of a parallel shuffle).
void ShuffleBufferedCleanup(uint32_t p_count, const uint32_t* offsets,
                            const ShuffleBuffers& bufs, uint32_t* out_keys,
                            uint32_t* out_pays);

/// Single-threaded conveniences: Main + Cleanup.
void ShuffleScalarBuffered(const PartitionFn& fn, const uint32_t* keys,
                           const uint32_t* pays, size_t n, uint32_t* offsets,
                           uint32_t* out_keys, uint32_t* out_pays,
                           ShuffleBuffers* bufs);
void ShuffleVectorBufferedAvx512(const PartitionFn& fn, const uint32_t* keys,
                                 const uint32_t* pays, size_t n,
                                 uint32_t* offsets, uint32_t* out_keys,
                                 uint32_t* out_pays, ShuffleBuffers* bufs);
void ShuffleVectorBufferedUnstableAvx512(const PartitionFn& fn,
                                         const uint32_t* keys,
                                         const uint32_t* pays, size_t n,
                                         uint32_t* offsets,
                                         uint32_t* out_keys,
                                         uint32_t* out_pays,
                                         ShuffleBuffers* bufs);

// ---------------------------------------------------------------------------
// Key-only shuffles (for key-only radixsort, Fig. 14 left)
// ---------------------------------------------------------------------------

void ShuffleKeysScalarBufferedMain(const PartitionFn& fn, const uint32_t* keys,
                                   size_t n, uint32_t* offsets,
                                   uint32_t* out_keys, ShuffleBuffers* bufs);
void ShuffleKeysVectorBufferedMainAvx512(const PartitionFn& fn,
                                         const uint32_t* keys, size_t n,
                                         uint32_t* offsets, uint32_t* out_keys,
                                         ShuffleBuffers* bufs);
void ShuffleKeysBufferedCleanup(uint32_t p_count, const uint32_t* offsets,
                                const ShuffleBuffers& bufs,
                                uint32_t* out_keys);

// ---------------------------------------------------------------------------
// Multi-column (type-specialized) shuffling (§7.4 last part, Figs. 18-19)
// ---------------------------------------------------------------------------

/// Computes each tuple's final output position into dest[0..n) (stable) and
/// advances offsets to partition ends. The destinations are then replayed
/// over any number of payload columns without re-partitioning (the paper's
/// temporary-array scheme).
void ComputeDestinationsScalar(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* offsets, uint32_t* dest);
void ComputeDestinationsAvx512(const PartitionFn& fn, const uint32_t* keys,
                               size_t n, uint32_t* offsets, uint32_t* dest);

/// out[dest[i]] = col[i] for a column of elem_bytes-wide values
/// (1, 2, 4, or 8). The scalar form works for every width.
void ScatterColumnScalar(const void* col, size_t n, const uint32_t* dest,
                         void* out, int elem_bytes);
/// Vectorized for 4- and 8-byte elements (hardware scatters); 1- and 2-byte
/// columns fall back to scalar stores (AVX-512 has no byte/word scatter —
/// Xeon Phi's up-converting scatters have no AVX-512 equivalent; documented
/// substitution).
void ScatterColumnAvx512(const void* col, size_t n, const uint32_t* dest,
                         void* out, int elem_bytes);

/// out[i] = col[rids[i]] — rid-based column dereference, used when joins
/// carry row ids instead of wide payloads and materialize columns late
/// (§10.5.3).
void GatherColumnScalar(const void* col, size_t n, const uint32_t* rids,
                        void* out, int elem_bytes);
void GatherColumnAvx512(const void* col, size_t n, const uint32_t* rids,
                        void* out, int elem_bytes);

}  // namespace simddb

#endif  // SIMDDB_PARTITION_SHUFFLE_H_
