#ifndef SIMDDB_PARTITION_PARTITION_VEC_AVX2_H_
#define SIMDDB_PARTITION_PARTITION_VEC_AVX2_H_

// Vectorized evaluation of PartitionFn (radix / hash / hash-radix) on 8
// keys. Internal header for AVX2 translation units only; mirrors
// partition_vec_avx512.h one register width down.

#if defined(__AVX2__)

#include "core/avx2_ops.h"
#include "partition/partition_fn.h"

namespace simddb::internal {

class PartitionVecCtxAvx2 {
 public:
  explicit PartitionVecCtxAvx2(const PartitionFn& fn)
      : factor_(_mm256_set1_epi32(static_cast<int>(fn.factor))),
        total_(_mm256_set1_epi32(static_cast<int>(fn.total))),
        mask_(_mm256_set1_epi32(static_cast<int>(fn.fanout - 1))),
        shift_(static_cast<int>(fn.shift)),
        radix_(fn.kind == PartitionFn::Kind::kRadix),
        plain_hash_(fn.shift == 0 && fn.total == fn.fanout) {}

  __m256i operator()(__m256i keys) const {
    const __m128i count = _mm_cvtsi32_si128(shift_);
    if (radix_) {
      return _mm256_and_si256(_mm256_srl_epi32(keys, count), mask_);
    }
    __m256i h = simddb::avx2::MultHash(keys, factor_, total_);
    if (plain_hash_) return h;
    return _mm256_and_si256(_mm256_srl_epi32(h, count), mask_);
  }

 private:
  __m256i factor_;
  __m256i total_;
  __m256i mask_;
  int shift_;
  bool radix_;
  bool plain_hash_;
};

}  // namespace simddb::internal

#endif  // __AVX2__
#endif  // SIMDDB_PARTITION_PARTITION_VEC_AVX2_H_
