#ifndef SIMDDB_PARTITION_PLAN_H_
#define SIMDDB_PARTITION_PLAN_H_

// Fanout-aware partition-pass planning. A partitioning pass streams to one
// open output region per partition; past the TLB's reach (and the staging
// area's cache budget) every flush misses the page walk and throughput
// collapses (Fig. 13, right edge). The planner bounds the damage by
// splitting a requested radix width into multiple passes whose per-pass
// fanout fits a configurable budget, and picks the shuffle kernel per pass:
//
//   - buffered-16 (shuffle.h): the paper's Alg. 15; fastest while the
//     partition count stays within the TLB and its staging fits L1.
//   - SWWC (swwc.h): combined cacheline staging + always-streaming flushes
//     on the slid grid; tolerates an order of magnitude more partitions
//     (staging budgeted against L2) before it, too, wants a split.
//
// Budget defaults auto-calibrate from util/cpu_info's cache/TLB
// introspection (L1D/L2 sizes from sysconf, STLB geometry from CPUID) with
// plausibility floors and caps, falling back to constants targeting a
// contemporary x86 server core (32 KB L1D heavily shared with the input
// stream, 512 KB+ L2, ~1K-partition TLB reach) when the host reports
// nothing usable. Environment variables always take precedence:
// SIMDDB_L1_STAGING_BYTES, SIMDDB_L2_STAGING_BYTES, SIMDDB_TLB_PARTITIONS,
// SIMDDB_B16_VECTOR_MAX_FANOUT.
//
// MultiPassPartition executes a plan end-to-end: pass 1 is a full
// ParallelPartitionPass, later passes refine every existing partition
// range in place (RefinePartitionsPass — parts are the stealable work
// unit), ping-ponging between the output and scratch arrays so the final
// pass lands in `out`. MSB-first refinement with stable passes reproduces
// the single-pass partition order bit-for-bit, so callers can trade passes
// for fanout without changing results.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/isa.h"
#include "partition/partition_fn.h"

namespace simddb {

struct ParallelPartitionResources;  // parallel_partition.h

/// Which shuffle kernel a partitioning pass uses. kAuto resolves via
/// ChooseShuffleVariant at the dispatch site.
enum class ShuffleVariant { kAuto, kBuffered16, kSwwc };

/// Per-pass fanout budgets. Staging cost is kSwwcStageBytesPerPartition
/// (128 B) per partition for both kernel families (16 keys + 16 payloads).
struct PartitionBudget {
  uint32_t l1_staging_bytes = 32u << 10;   ///< buffered-16 staging budget
  uint32_t l2_staging_bytes = 512u << 10;  ///< SWWC staging budget
  uint32_t tlb_partitions = 512;           ///< open-page cap for buffered-16

  /// Largest fanout at which the AVX-512 buffered-16 fill still beats the
  /// scalar one (the gather/scatter conflict-detect cost grows with
  /// fanout; scalar wins past 2^10 on the bench host — see
  /// UseVectorBuffered16).
  uint32_t b16_vector_max_fanout = 1u << 10;

  /// Host-calibrated defaults (cpu_info cache/TLB introspection, bounded
  /// by plausibility floors/caps) with environment overrides applied on
  /// top (parsed once per process).
  static PartitionBudget Default();

  /// Largest power-of-two fanout a buffered-16 pass may use:
  /// min(tlb_partitions, l1_staging_bytes / 128), floored to a power of
  /// two, at least 2.
  uint32_t MaxBuffered16Fanout() const;

  /// Largest power-of-two fanout an SWWC pass may use:
  /// l2_staging_bytes / 128 floored to a power of two, at least
  /// MaxBuffered16Fanout().
  uint32_t MaxSwwcFanout() const;

  /// log2(MaxSwwcFanout()) — the widest radix any planned pass gets.
  uint32_t MaxBitsPerPass() const;
};

/// Kernel choice for a single pass of the given fanout: buffered-16 while
/// it fits that kernel's budget, SWWC beyond.
ShuffleVariant ChooseShuffleVariant(uint32_t fanout,
                                    const PartitionBudget& budget);

/// Fill choice *inside* the buffered-16 family: true when the AVX-512
/// gather/scatter fill (the paper's Alg. 15) should run, i.e. the ISA is
/// available and the fanout is at most budget.b16_vector_max_fanout;
/// beyond that the scalar fill wins (measured crossover 2^10) and the
/// vector dispatch sites fall back to it. Histogram kernels are not
/// affected — they stay vectorized at every fanout. Both fills are
/// byte-identical, so this is pure performance policy.
bool UseVectorBuffered16(Isa isa, uint32_t fanout,
                         const PartitionBudget& budget);

struct PartitionPassPlan {
  uint32_t bits;           ///< radix width of this pass (fanout = 1 << bits)
  ShuffleVariant variant;  ///< kBuffered16 or kSwwc, never kAuto
};

struct PartitionPlan {
  uint32_t total_bits = 0;
  std::vector<PartitionPassPlan> passes;  ///< bits sum to total_bits
};

/// Splits `total_bits` of radix into the fewest passes whose fanout fits
/// the budget, near-equal widths (max - min <= 1 bit). When
/// requested_bits_per_pass is nonzero it additionally caps every pass (the
/// RadixSortConfig::bits_per_pass knob). Every returned pass satisfies
/// bits <= budget.MaxBitsPerPass(). Counts obs `passes_planned`.
PartitionPlan PlanRadixPasses(uint32_t total_bits,
                              const PartitionBudget& budget,
                              uint32_t requested_bits_per_pass = 0);

/// Refines every existing partition range by fn2 (fanout p2): per part, a
/// histogram, a local prefix sum, and a buffered/SWWC shuffle into the
/// part's fixed output range, with parts as the stealable work unit and
/// the cleanup deferred behind the dispatch barrier. bounds_out receives
/// prev_count * p2 partition begin positions (the caller owns the final
/// +1 entry). Stable; output is identical for every thread count.
void RefinePartitionsPass(const PartitionFn& fn2, uint32_t prev_count,
                          const uint32_t* prev_bounds, const uint32_t* in_keys,
                          const uint32_t* in_pays, uint32_t* out_keys,
                          uint32_t* out_pays, uint32_t* bounds_out, Isa isa,
                          int threads, ShuffleVariant variant);

/// Builds the pass-k partition function: `bits` bits of the partition
/// index with `rem_bits` index bits below them still unresolved. For plain
/// radix on the top total_bits of the key this is
/// Radix(bits, 32 - total_bits + rem_bits); the hash joins plug in
/// HashRadix over one shared hash value.
using PassFnMaker =
    std::function<PartitionFn(uint32_t bits, uint32_t rem_bits)>;

/// Plans and runs a full `total_bits`-wide partition of (keys, pays) into
/// (out_keys, out_pays) under the budget, refining MSB-first across as
/// many passes as needed. All four output/scratch arrays need capacity
/// ShuffleCapacity(n); scratch_keys/scratch_pays may be null, in which
/// case scratch is allocated internally when the plan has more than one
/// pass. `starts` (may be null) receives 2^total_bits + 1 bounds. `res`
/// (may be null) lets callers reuse first-pass resources across calls.
/// Byte-identical to the equivalent single-pass partition.
void MultiPassPartition(const PassFnMaker& maker, uint32_t total_bits,
                        const uint32_t* keys, const uint32_t* pays, size_t n,
                        uint32_t* out_keys, uint32_t* out_pays,
                        uint32_t* scratch_keys, uint32_t* scratch_pays,
                        Isa isa, int threads, const PartitionBudget& budget,
                        uint32_t* starts, ParallelPartitionResources* res);

/// MultiPassPartition over the top `total_bits` of the key itself
/// (partition index = key >> (32 - total_bits)).
void MultiPassRadixPartition(const uint32_t* keys, const uint32_t* pays,
                             size_t n, uint32_t total_bits,
                             uint32_t* out_keys, uint32_t* out_pays,
                             uint32_t* scratch_keys, uint32_t* scratch_pays,
                             Isa isa, int threads,
                             const PartitionBudget& budget, uint32_t* starts);

}  // namespace simddb

#endif  // SIMDDB_PARTITION_PLAN_H_
