#ifndef SIMDDB_PARTITION_RANGE_H_
#define SIMDDB_PARTITION_RANGE_H_

// Range partition functions (§7.2, Fig. 12): map each key to the index of
// its range partition, defined as |{splitters s : s < key}| over a sorted
// splitter array. Four implementations:
//
//   RangeFunction::ScalarBranching    textbook binary search with branches.
//   RangeFunction::ScalarBranchless   fixed log2(P) iterations, conditional
//                                     moves only.
//   RangeFunction::VectorAvx512       Alg. 12 — W keys at a time; the search
//                                     path is followed with gathers and
//                                     vector blends of lo/hi pointers.
//   RangeIndex::Lookup*               horizontal SIMD range-index tree [26]:
//                                     nodes of `node_width` splitters, one
//                                     vector comparison per level, scalar
//                                     index arithmetic (no gathers).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned_buffer.h"

namespace simddb {

class RangeFunction {
 public:
  /// Builds the function from sorted splitters; fanout = splitters.size()+1.
  /// Internally pads to a power-of-two array for the branch-free searches.
  explicit RangeFunction(const std::vector<uint32_t>& splitters);

  uint32_t fanout() const { return fanout_; }

  /// out[i] = partition of keys[i], for all three implementations.
  void ScalarBranching(const uint32_t* keys, size_t n, uint32_t* out) const;
  void ScalarBranchless(const uint32_t* keys, size_t n, uint32_t* out) const;
  void VectorAvx512(const uint32_t* keys, size_t n, uint32_t* out) const;
  void VectorAvx2(const uint32_t* keys, size_t n, uint32_t* out) const;

 private:
  // padded_[1..2^levels_-1] holds splitters padded with UINT32_MAX;
  // padded_[0] is an unused slot so Alg. 12 can gather D[a-1] as
  // padded_[a].
  AlignedBuffer<uint32_t> padded_;
  uint32_t levels_;
  uint32_t fanout_;
};

/// Horizontal SIMD range index [26]: a (node_width+1)-ary tree of splitter
/// nodes compared against one broadcast key per step.
class RangeIndex {
 public:
  /// node_width must be 8 (256-bit nodes, fanout 9) or 16 (512-bit nodes,
  /// fanout 17). Splitters must be sorted; fanout = splitters.size()+1.
  RangeIndex(const std::vector<uint32_t>& splitters, int node_width);

  uint32_t fanout() const { return fanout_; }
  int levels() const { return levels_; }
  int node_width() const { return node_width_; }

  /// Scalar reference lookup (used by tests).
  void LookupScalar(const uint32_t* keys, size_t n, uint32_t* out) const;
  /// Horizontal SIMD lookup (one vector comparison per level).
  void LookupAvx512(const uint32_t* keys, size_t n, uint32_t* out) const;

 private:
  // level_data_[level_offset_[l] + node*node_width_ + j] = j-th splitter of
  // node `node` at level l.
  AlignedBuffer<uint32_t> level_data_;
  std::vector<size_t> level_offset_;
  int node_width_;
  int levels_;
  uint32_t tree_fanout_;  ///< (node_width+1)^levels
  uint32_t fanout_;
};

}  // namespace simddb

#endif  // SIMDDB_PARTITION_RANGE_H_
