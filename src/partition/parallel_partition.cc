#include "partition/parallel_partition.h"

#include <cassert>

#include "numa/placement.h"
#include "numa/topology.h"
#include "obs/metrics.h"
#include "partition/shuffle_dispatch.h"
#include "util/prefix_sum.h"
#include "util/task_pool.h"

namespace simddb {
namespace {

// One timer per pass phase, matching the paper's Fig. 13 breakdown.
obs::PhaseTimer g_part_hist_ns("part_hist_ns");
obs::PhaseTimer g_part_shuffle_ns("part_shuffle_ns");
obs::PhaseTimer g_part_cleanup_ns("part_cleanup_ns");

}  // namespace

// Morsel-driven schedule: the input is decomposed into a fixed grid of
// kMorselTuples-sized morsels and every morsel gets its own histogram row
// and shuffle buffers. The cross-morsel interleaved prefix sum then assigns
// each (morsel, partition) pair a fixed output subrange — tuples of morsel
// m precede tuples of morsel m+1 within every partition, which keeps the
// pass globally stable AND makes the output byte-identical for every worker
// count and steal schedule (the layout depends only on the morsel grid).
// Workers claim morsels dynamically from the pool's work-stealing deques,
// so skewed per-morsel costs rebalance instead of stalling a static chunk.
void ParallelPartitionPass(const PartitionFn& fn, const uint32_t* keys,
                           const uint32_t* pays, size_t n, uint32_t* out_keys,
                           uint32_t* out_pays, Isa isa, int threads,
                           ParallelPartitionResources* res, uint32_t* starts,
                           ShuffleVariant variant, size_t out_capacity) {
  assert(out_capacity == 0 || out_capacity >= ShuffleCapacity(n));
  (void)out_capacity;
  const int t_count = threads < 1 ? 1 : threads;
  const uint32_t p_count = fn.fanout;
  const PartitionBudget budget = PartitionBudget::Default();
  const bool vec = isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512);
  if (variant == ShuffleVariant::kAuto) {
    variant = ChooseShuffleVariant(p_count, budget);
  }
  const bool swwc = variant == ShuffleVariant::kSwwc;
  // Histograms stay vectorized at every fanout; the buffered-16 *shuffle*
  // fill is fanout-aware (the gather/scatter conflict cost grows with the
  // partition count — scalar wins past budget.b16_vector_max_fanout).
  const bool vec_shuffle = !swwc && UseVectorBuffered16(isa, p_count, budget);
  const internal::SwwcFill fill =
      internal::ChooseSwwcFill(isa, p_count, budget);
  // SWWC passes run at fanouts where a 16K morsel averages only a few
  // tuples per partition — staged lines would never fill and every tuple
  // would fall to the cleanup copy. Grow the morsel so a morsel averages a
  // full line per partition; the grid still depends only on (n, fn,
  // variant), and a stable partition's output layout is independent of the
  // morsel decomposition, so determinism and variant byte-identity hold.
  size_t morsel = BoundedMorselSize(n);
  if (swwc && morsel < static_cast<size_t>(p_count) * 16) {
    morsel = static_cast<size_t>(p_count) * 16;
  }
  const MorselGrid grid(n, morsel);
  const size_t m_count = grid.count();
  if (m_count == 0) {
    if (starts != nullptr) {
      for (uint32_t p = 0; p <= p_count; ++p) starts[p] = 0;
    }
    return;
  }
  const bool hists_grown = res->hists.size() < m_count * p_count;
  if (swwc) {
    res->ReserveSwwc(m_count, t_count, p_count);
  } else {
    res->Reserve(m_count, t_count, p_count);
  }
  uint32_t* hists = res->hists.data();
  if (hists_grown && numa::Topology().node_count() > 1) {
    // Node-partitioned histogram rows: the rows are morsel-major and each
    // node's lanes own a contiguous morsel block, so lane-block first touch
    // puts every row on the node that writes it in phase 1 and re-reads it
    // in phase 2. The interleaved prefix sum below is unchanged — layout
    // and results are placement-independent.
    numa::PlaceBuffer(res->hists.data(),
                      m_count * p_count * sizeof(uint32_t), t_count,
                      numa::Placement::kNodeLocal);
  }
  TaskPool& pool = TaskPool::Get();

  // Phase 1: one histogram row per morsel. The serial cross-morsel prefix
  // sum rides in the same timer (cheap: m_count * fanout).
  {
    obs::ScopedPhase phase(g_part_hist_ns);
    pool.ParallelFor(m_count, t_count, [&](int worker, size_t m) {
      uint32_t* h = hists + m * p_count;
      if (vec) {
        HistogramReplicatedAvx512(fn, keys + grid.begin(m), grid.size(m), h,
                                  &res->hist_ws[worker]);
      } else {
        HistogramScalar(fn, keys + grid.begin(m), grid.size(m), h);
      }
    });
    InterleavedPrefixSum(hists, m_count, p_count);
  }
  if (starts != nullptr) {
    // Morsel 0's offsets are the global partition begin positions.
    for (uint32_t p = 0; p < p_count; ++p) starts[p] = hists[p];
    starts[p_count] = static_cast<uint32_t>(n);
  }

  // Phase 2: buffered shuffle Main per morsel. Morsel boundaries are
  // multiples of 16, so the streaming-flush alignment contract holds; the
  // aligned flushes may clobber <= 15 tuples of a neighbouring morsel's
  // still-buffered tail, repaired in phase 3 (see shuffle.h).
  {
    obs::ScopedPhase phase(g_part_shuffle_ns);
    pool.ParallelFor(m_count, t_count, [&](int, size_t m) {
      uint32_t* offsets = hists + m * p_count;
      const size_t b = grid.begin(m);
      if (pays != nullptr) {
        if (swwc) {
          internal::SwwcPairMain(fill, fn, keys + b, pays + b, grid.size(m),
                                 offsets, out_keys, out_pays,
                                 &res->wc_bufs[m]);
        } else if (vec_shuffle) {
          ShuffleVectorBufferedMainAvx512(fn, keys + b, pays + b, grid.size(m),
                                          offsets, out_keys, out_pays,
                                          &res->bufs[m]);
        } else {
          ShuffleScalarBufferedMain(fn, keys + b, pays + b, grid.size(m),
                                    offsets, out_keys, out_pays,
                                    &res->bufs[m]);
        }
      } else {
        if (swwc) {
          internal::SwwcKeysMain(fill, fn, keys + b, grid.size(m), offsets,
                                 out_keys, &res->wc_bufs[m]);
        } else if (vec_shuffle) {
          ShuffleKeysVectorBufferedMainAvx512(fn, keys + b, grid.size(m),
                                              offsets, out_keys,
                                              &res->bufs[m]);
        } else {
          ShuffleKeysScalarBufferedMain(fn, keys + b, grid.size(m), offsets,
                                        out_keys, &res->bufs[m]);
        }
      }
    });
  }

  // Phase 3 (after the implicit barrier of the ParallelFor join): repair
  // the 16-aligned flush overshoot by writing every morsel's buffered tails.
  obs::ScopedPhase cleanup_phase(g_part_cleanup_ns);
  pool.ParallelFor(m_count, t_count, [&](int, size_t m) {
    uint32_t* offsets = hists + m * p_count;
    if (pays != nullptr) {
      if (swwc) {
        ShuffleSwwcCleanup(p_count, offsets, res->wc_bufs[m], out_keys,
                           out_pays);
      } else {
        ShuffleBufferedCleanup(p_count, offsets, res->bufs[m], out_keys,
                               out_pays);
      }
    } else {
      if (swwc) {
        ShuffleKeysSwwcCleanup(p_count, offsets, res->wc_bufs[m], out_keys);
      } else {
        ShuffleKeysBufferedCleanup(p_count, offsets, res->bufs[m], out_keys);
      }
    }
  });
}

}  // namespace simddb
