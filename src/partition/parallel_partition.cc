#include "partition/parallel_partition.h"

#include "util/prefix_sum.h"
#include "util/thread_team.h"

namespace simddb {

void ParallelPartitionPass(const PartitionFn& fn, const uint32_t* keys,
                           const uint32_t* pays, size_t n, uint32_t* out_keys,
                           uint32_t* out_pays, Isa isa, int threads,
                           ParallelPartitionResources* res, uint32_t* starts) {
  const int t_count = threads < 1 ? 1 : threads;
  const uint32_t p_count = fn.fanout;
  const bool vec = isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512);
  res->Reserve(t_count, p_count);
  uint32_t* hists = res->hists.data();

  ThreadTeam::Run(t_count, [&](int t) {
    size_t b = ThreadTeam::ChunkBegin(n, t_count, t);
    size_t e = ThreadTeam::ChunkBegin(n, t_count, t + 1);
    uint32_t* h = hists + static_cast<size_t>(t) * p_count;
    if (vec) {
      HistogramReplicatedAvx512(fn, keys + b, e - b, h, &res->hist_ws[t]);
    } else {
      HistogramScalar(fn, keys + b, e - b, h);
    }
  });

  InterleavedPrefixSum(hists, t_count, p_count);
  if (starts != nullptr) {
    // Thread 0's offsets are the global partition begin positions.
    for (uint32_t p = 0; p < p_count; ++p) starts[p] = hists[p];
    starts[p_count] = static_cast<uint32_t>(n);
  }

  ThreadTeam::Run(t_count, [&](int t) {
    size_t b = ThreadTeam::ChunkBegin(n, t_count, t);
    size_t e = ThreadTeam::ChunkBegin(n, t_count, t + 1);
    uint32_t* offsets = hists + static_cast<size_t>(t) * p_count;
    if (pays != nullptr) {
      if (vec) {
        ShuffleVectorBufferedMainAvx512(fn, keys + b, pays + b, e - b,
                                        offsets, out_keys, out_pays,
                                        &res->bufs[t]);
      } else {
        ShuffleScalarBufferedMain(fn, keys + b, pays + b, e - b, offsets,
                                  out_keys, out_pays, &res->bufs[t]);
      }
    } else {
      if (vec) {
        ShuffleKeysVectorBufferedMainAvx512(fn, keys + b, e - b, offsets,
                                            out_keys, &res->bufs[t]);
      } else {
        ShuffleKeysScalarBufferedMain(fn, keys + b, e - b, offsets, out_keys,
                                      &res->bufs[t]);
      }
    }
  });

  // Barrier (Run joins) before repairing the chunk-aligned flush overshoot.
  ThreadTeam::Run(t_count, [&](int t) {
    uint32_t* offsets = hists + static_cast<size_t>(t) * p_count;
    if (pays != nullptr) {
      ShuffleBufferedCleanup(p_count, offsets, res->bufs[t], out_keys,
                             out_pays);
    } else {
      ShuffleKeysBufferedCleanup(p_count, offsets, res->bufs[t], out_keys);
    }
  });
}

}  // namespace simddb
