// Vectorized range partition functions: Alg. 12 (vertical binary search
// with gathers) and the horizontal SIMD range-index lookup [26].

#include "core/avx2_ops.h"
#include "core/avx512_ops.h"
#include "partition/range.h"

namespace simddb {

// Alg. 12: 16 keys per iteration; lo/hi pointers are blended by the
// comparison mask and the middle splitters are fetched with a gather.
void RangeFunction::VectorAvx512(const uint32_t* keys, size_t n,
                                 uint32_t* out) const {
  namespace v = simddb::avx512;
  const __m512i p2 = _mm512_set1_epi32(1 << levels_);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    __m512i lo = _mm512_setzero_si512();
    __m512i hi = p2;
    for (uint32_t l = 0; l < levels_; ++l) {
      __m512i a = _mm512_srli_epi32(_mm512_add_epi32(lo, hi), 1);
      // padded_[a] == D[a-1].
      __m512i d = v::Gather(padded_.data(), a);
      __mmask16 m = _mm512_cmpgt_epu32_mask(k, d);
      lo = _mm512_mask_mov_epi32(lo, m, a);
      hi = _mm512_mask_mov_epi32(a, m, hi);
    }
    _mm512_storeu_si512(out + i, lo);
  }
  ScalarBranchless(keys + i, n - i, out + i);
}

void RangeFunction::VectorAvx2(const uint32_t* keys, size_t n,
                               uint32_t* out) const {
  namespace v = simddb::avx2;
  const __m256i p2 = _mm256_set1_epi32(1 << levels_);
  const __m256i sign = _mm256_set1_epi32(INT32_MIN);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    __m256i kb = _mm256_xor_si256(k, sign);  // unsigned compare via bias
    __m256i lo = _mm256_setzero_si256();
    __m256i hi = p2;
    for (uint32_t l = 0; l < levels_; ++l) {
      __m256i a = _mm256_srli_epi32(_mm256_add_epi32(lo, hi), 1);
      __m256i d = v::Gather(padded_.data(), a);
      __m256i m = _mm256_cmpgt_epi32(kb, _mm256_xor_si256(d, sign));
      lo = _mm256_blendv_epi8(lo, a, m);
      hi = _mm256_blendv_epi8(a, hi, m);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), lo);
  }
  ScalarBranchless(keys + i, n - i, out + i);
}

// Horizontal SIMD index lookup [26]: one vector comparison per level; all
// index arithmetic stays scalar (no gathers on the search path).
void RangeIndex::LookupAvx512(const uint32_t* keys, size_t n,
                              uint32_t* out) const {
  const uint32_t node_fanout = static_cast<uint32_t>(node_width_) + 1;
  if (node_width_ == 16) {
    for (size_t i = 0; i < n; ++i) {
      const __m512i k = _mm512_set1_epi32(static_cast<int>(keys[i]));
      uint32_t pos = 0;
      for (int l = 0; l < levels_; ++l) {
        const uint32_t* node = level_data_.data() + level_offset_[l] +
                               static_cast<size_t>(pos) * 16;
        __m512i s = _mm512_load_si512(node);
        uint32_t m = _mm512_cmpgt_epu32_mask(k, s);
        pos = pos * node_fanout + static_cast<uint32_t>(__builtin_popcount(m));
      }
      out[i] = pos;
    }
  } else {
    const __m256i sign = _mm256_set1_epi32(INT32_MIN);
    for (size_t i = 0; i < n; ++i) {
      const __m256i k = _mm256_xor_si256(
          _mm256_set1_epi32(static_cast<int>(keys[i])), sign);
      uint32_t pos = 0;
      for (int l = 0; l < levels_; ++l) {
        const uint32_t* node = level_data_.data() + level_offset_[l] +
                               static_cast<size_t>(pos) * 8;
        __m256i s = _mm256_load_si256(reinterpret_cast<const __m256i*>(node));
        __m256i gt = _mm256_cmpgt_epi32(k, _mm256_xor_si256(s, sign));
        uint32_t m = static_cast<uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(gt)));
        pos = pos * node_fanout + static_cast<uint32_t>(__builtin_popcount(m));
      }
      out[i] = pos;
    }
  }
}

}  // namespace simddb
