#ifndef SIMDDB_PARTITION_SHUFFLE_DISPATCH_H_
#define SIMDDB_PARTITION_SHUFFLE_DISPATCH_H_

// Internal shuffle-kernel dispatch shared by ParallelPartitionPass and
// RefinePartitionsPass, so the two parallel drivers agree on which fill
// path an SWWC pass uses.

#include <cstddef>
#include <cstdint>

#include "core/isa.h"
#include "partition/partition_fn.h"
#include "partition/plan.h"
#include "partition/shuffle.h"
#include "partition/swwc.h"

namespace simddb::internal {

/// How an SWWC Main fills its staging lines.
enum class SwwcFill { kScalar, kAvx2, kAvx512 };

/// The AVX-512 gather/scatter fill amortizes while the staging area is
/// cache-hot at buffered-16 scale; at wider fanouts the measured winner is
/// the branch-light scalar core (the whole point of the SWWC variant), so
/// the vector fill is only picked inside the buffered-16 fanout budget.
inline SwwcFill ChooseSwwcFill(Isa isa, uint32_t fanout,
                               const PartitionBudget& budget) {
  if (isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512) &&
      fanout <= budget.MaxBuffered16Fanout()) {
    return SwwcFill::kAvx512;
  }
  if (isa == Isa::kAvx2 && IsaSupported(Isa::kAvx2)) return SwwcFill::kAvx2;
  return SwwcFill::kScalar;
}

inline void SwwcPairMain(SwwcFill fill, const PartitionFn& fn,
                         const uint32_t* keys, const uint32_t* pays, size_t n,
                         uint32_t* offsets, uint32_t* out_keys,
                         uint32_t* out_pays, SwwcBuffers* bufs) {
  switch (fill) {
    case SwwcFill::kAvx512:
      ShuffleSwwcAvx512Main(fn, keys, pays, n, offsets, out_keys, out_pays,
                            bufs);
      break;
    case SwwcFill::kAvx2:
      ShuffleSwwcAvx2Main(fn, keys, pays, n, offsets, out_keys, out_pays,
                          bufs);
      break;
    case SwwcFill::kScalar:
      ShuffleSwwcScalarMain(fn, keys, pays, n, offsets, out_keys, out_pays,
                            bufs);
      break;
  }
}

inline void SwwcKeysMain(SwwcFill fill, const PartitionFn& fn,
                         const uint32_t* keys, size_t n, uint32_t* offsets,
                         uint32_t* out_keys, SwwcBuffers* bufs) {
  switch (fill) {
    case SwwcFill::kAvx512:
      ShuffleKeysSwwcAvx512Main(fn, keys, n, offsets, out_keys, bufs);
      break;
    case SwwcFill::kAvx2:
      ShuffleKeysSwwcAvx2Main(fn, keys, n, offsets, out_keys, bufs);
      break;
    case SwwcFill::kScalar:
      ShuffleKeysSwwcScalarMain(fn, keys, n, offsets, out_keys, bufs);
      break;
  }
}

}  // namespace simddb::internal

#endif  // SIMDDB_PARTITION_SHUFFLE_DISPATCH_H_
