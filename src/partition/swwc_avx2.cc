// AVX2 SWWC shuffle: the partition function is evaluated 8 keys at a time
// (AVX2 has no scatter or conflict detection, so staging inserts stay
// scalar and in input order — trivially stable), and full staged lines
// flush as two 32-byte non-temporal stores. Shares the slid-grid protocol
// of swwc.cc.

#include <immintrin.h>

#include <cstring>

#include "partition/partition_vec_avx2.h"
#include "partition/swwc.h"
#include "util/sanitizer.h"

namespace simddb {
namespace {

using internal::PartitionVecCtxAvx2;

SIMDDB_NO_SANITIZE_THREAD
inline void StreamLine256(const uint32_t* line, uint32_t* dst) {
  const __m256i* src = reinterpret_cast<const __m256i*>(line);
  __m256i* d = reinterpret_cast<__m256i*>(dst);
  _mm256_stream_si256(d, _mm256_load_si256(src));
  _mm256_stream_si256(d + 1, _mm256_load_si256(src + 1));
}

}  // namespace

// SIMDDB_NO_SANITIZE_THREAD: same benign clobber-and-repair protocol as the
// scalar Main (see util/sanitizer.h).
SIMDDB_NO_SANITIZE_THREAD
void ShuffleSwwcAvx2Main(const PartitionFn& fn, const uint32_t* keys,
                         const uint32_t* pays, size_t n, uint32_t* offsets,
                         uint32_t* out_keys, uint32_t* out_pays,
                         SwwcBuffers* bufs) {
  bufs->Reserve(fn.fanout);
  std::memcpy(bufs->starts.data(), offsets, fn.fanout * sizeof(uint32_t));
  uint32_t* stage = bufs->stage.data();
  const uint32_t* st = bufs->starts.data();
  const uint32_t dk = SwwcGridPhase(out_keys);
  // 32-byte congruence suffices for the two-store payload flush.
  const bool pays_nt = ((reinterpret_cast<uintptr_t>(out_pays) -
                         reinterpret_cast<uintptr_t>(out_keys)) &
                        31u) == 0;
  const PartitionVecCtxAvx2 part(fn);
  alignas(32) uint32_t parts[8];
  uint64_t lines = 0;
  uint64_t partials = 0;
  auto put = [&](uint32_t key, uint32_t pay, uint32_t p) {
    uint32_t o = offsets[p]++;
    uint32_t slot = (o - dk) & 15u;
    uint32_t* line = stage + p * kSwwcStageStride;
    line[slot] = key;
    line[16 + slot] = pay;
    if (slot == 15u) {
      if (o >= 15u) {
        uint32_t base = o - 15u;
        StreamLine256(line, out_keys + base);
        if (pays_nt) {
          StreamLine256(line + 16, out_pays + base);
        } else {
          std::memcpy(out_pays + base, line + 16, 16 * sizeof(uint32_t));
        }
        lines += 2;
      } else {
        for (uint32_t q = st[p]; q <= o; ++q) {
          out_keys[q] = line[(q - dk) & 15u];
          out_pays[q] = line[16 + ((q - dk) & 15u)];
        }
        ++partials;
      }
    }
  };
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(parts), part(k));
    for (int lane = 0; lane < 8; ++lane) {
      put(keys[i + lane], pays[i + lane], parts[lane]);
    }
  }
  for (; i < n; ++i) put(keys[i], pays[i], fn(keys[i]));
  _mm_sfence();
  internal::g_wc_line_flushes.Add(lines);
  internal::g_wc_partial_flushes.Add(partials);
}

SIMDDB_NO_SANITIZE_THREAD
void ShuffleKeysSwwcAvx2Main(const PartitionFn& fn, const uint32_t* keys,
                             size_t n, uint32_t* offsets, uint32_t* out_keys,
                             SwwcBuffers* bufs) {
  bufs->Reserve(fn.fanout);
  std::memcpy(bufs->starts.data(), offsets, fn.fanout * sizeof(uint32_t));
  uint32_t* stage = bufs->stage.data();
  const uint32_t* st = bufs->starts.data();
  const uint32_t dk = SwwcGridPhase(out_keys);
  const PartitionVecCtxAvx2 part(fn);
  alignas(32) uint32_t parts[8];
  uint64_t lines = 0;
  uint64_t partials = 0;
  auto put = [&](uint32_t key, uint32_t p) {
    uint32_t o = offsets[p]++;
    uint32_t slot = (o - dk) & 15u;
    uint32_t* line = stage + p * kSwwcStageStride;
    line[slot] = key;
    if (slot == 15u) {
      if (o >= 15u) {
        StreamLine256(line, out_keys + (o - 15u));
        ++lines;
      } else {
        for (uint32_t q = st[p]; q <= o; ++q) {
          out_keys[q] = line[(q - dk) & 15u];
        }
        ++partials;
      }
    }
  };
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(parts), part(k));
    for (int lane = 0; lane < 8; ++lane) put(keys[i + lane], parts[lane]);
  }
  for (; i < n; ++i) put(keys[i], fn(keys[i]));
  _mm_sfence();
  internal::g_wc_line_flushes.Add(lines);
  internal::g_wc_partial_flushes.Add(partials);
}

void ShuffleSwwcAvx2(const PartitionFn& fn, const uint32_t* keys,
                     const uint32_t* pays, size_t n, uint32_t* offsets,
                     uint32_t* out_keys, uint32_t* out_pays,
                     SwwcBuffers* bufs) {
  ShuffleSwwcAvx2Main(fn, keys, pays, n, offsets, out_keys, out_pays, bufs);
  ShuffleSwwcCleanup(fn.fanout, offsets, *bufs, out_keys, out_pays);
}

}  // namespace simddb
