#include <cstring>

#include "core/avx512_ops.h"
#include "core/fundamental.h"

namespace simddb::fundamental::detail {

namespace v = simddb::avx512;

size_t SelectiveLoad16Avx512(uint32_t v16[16], uint32_t mask,
                             const uint32_t* src) {
  __m512i old = _mm512_loadu_si512(v16);
  __m512i r = v::SelectiveLoad(old, static_cast<__mmask16>(mask), src);
  _mm512_storeu_si512(v16, r);
  return __builtin_popcount(mask & 0xFFFF);
}

size_t SelectiveStore16Avx512(uint32_t* dst, uint32_t mask,
                              const uint32_t v16[16]) {
  __m512i v = _mm512_loadu_si512(v16);
  v::SelectiveStore(dst, static_cast<__mmask16>(mask), v);
  return __builtin_popcount(mask & 0xFFFF);
}

void Gather16Avx512(uint32_t v16[16], uint32_t mask, const uint32_t* base,
                    const uint32_t idx[16]) {
  __m512i old = _mm512_loadu_si512(v16);
  __m512i vi = _mm512_loadu_si512(idx);
  __m512i r = v::MaskGather(old, static_cast<__mmask16>(mask), base, vi);
  _mm512_storeu_si512(v16, r);
}

void Scatter16Avx512(uint32_t* base, uint32_t mask, const uint32_t idx[16],
                     const uint32_t v16[16]) {
  __m512i vi = _mm512_loadu_si512(idx);
  __m512i vv = _mm512_loadu_si512(v16);
  v::MaskScatter(base, static_cast<__mmask16>(mask), vi, vv);
}

void SerializeConflicts16Avx512(uint32_t out[16], const uint32_t idx[16]) {
  __m512i vi = _mm512_loadu_si512(idx);
  _mm512_storeu_si512(out, v::SerializeConflicts(vi));
}

void SerializeConflictsIterative16Avx512(uint32_t out[16],
                                         const uint32_t idx[16],
                                         uint32_t* scratch) {
  __m512i vi = _mm512_loadu_si512(idx);
  _mm512_storeu_si512(out, v::SerializeConflictsIterative(vi, scratch));
}

uint32_t ScatterWinners16Avx512(const uint32_t idx[16]) {
  __m512i vi = _mm512_loadu_si512(idx);
  return v::ScatterWinners(vi);
}

void MultHashBatchAvx512(uint32_t* out, const uint32_t* keys, size_t n,
                         uint32_t factor, uint32_t buckets) {
  const __m512i vf = _mm512_set1_epi32(static_cast<int>(factor));
  const __m512i vb = _mm512_set1_epi32(static_cast<int>(buckets));
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    _mm512_storeu_si512(out + i, v::MultHash(k, vf, vb));
  }
  if (i < n) {
    __mmask16 m = static_cast<__mmask16>((1u << (n - i)) - 1);
    __m512i k = _mm512_maskz_loadu_epi32(m, keys + i);
    _mm512_mask_storeu_epi32(out + i, m, v::MultHash(k, vf, vb));
  }
}

}  // namespace simddb::fundamental::detail
