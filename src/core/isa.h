#ifndef SIMDDB_CORE_ISA_H_
#define SIMDDB_CORE_ISA_H_

namespace simddb {

/// Instruction-set backends implemented by simddb.
///
/// kScalar is the paper's baseline ("the most straightforward scalar
/// implementation", §1) and the ground truth for all tests. kAvx2 models the
/// paper's Haswell configuration: native gathers, but selective loads/stores
/// emulated with permutation tables and no scatters (App. B-D). kAvx512
/// models the paper's Xeon Phi / "AVX 3" configuration: 512-bit vectors with
/// native gathers, scatters, compress/expand and conflict detection.
enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Human-readable backend name ("scalar", "avx2", "avx512").
const char* IsaName(Isa isa);

/// True when the host CPU can execute the given backend.
bool IsaSupported(Isa isa);

/// The widest backend the host CPU supports.
Isa BestIsa();

/// Clamps a requested backend to what the host can execute: an unsupported
/// request degrades to the widest supported narrower backend (kAvx512 ->
/// kAvx2 -> kScalar) instead of SIGILLing in the first kernel. Bumps the
/// `isa_degraded` counter and warns on stderr once per process.
Isa EffectiveIsa(Isa requested);

}  // namespace simddb

#endif  // SIMDDB_CORE_ISA_H_
