#ifndef SIMDDB_CORE_AVX2_OPS_H_
#define SIMDDB_CORE_AVX2_OPS_H_

// AVX2 (Haswell-class) realizations of the paper's fundamental vector
// operations. Gathers are native; selective loads and stores are emulated
// with pre-generated permutation tables exactly as in App. C/D ("the lane
// selection mask is extracted as a bitmask and used as an array index to
// load a permutation mask from a pre-generated table"); scatters do not
// exist on this ISA, which is why build-side operators stay scalar on AVX2.
//
// Only include from translation units compiled with SIMDDB_AVX2_FLAGS.

#if defined(__AVX2__)

#include <immintrin.h>

#include <array>
#include <cstdint>

namespace simddb::avx2 {

/// Number of 32-bit lanes per 256-bit vector.
inline constexpr int kLanes = 8;

namespace internal {

/// perm[m][k]: compress permutation — lane k of the result takes source lane
/// perm[m][k], where the source lanes set in m are packed first (in order),
/// followed by the unset lanes.
constexpr std::array<std::array<uint32_t, 8>, 256> MakeCompressTable() {
  std::array<std::array<uint32_t, 8>, 256> t{};
  for (uint32_t m = 0; m < 256; ++m) {
    uint32_t k = 0;
    for (uint32_t i = 0; i < 8; ++i) {
      if (m & (1u << i)) t[m][k++] = i;
    }
    for (uint32_t i = 0; i < 8; ++i) {
      if (!(m & (1u << i))) t[m][k++] = i;
    }
  }
  return t;
}

/// expand[m][lane]: lane (if set in m) takes the next packed source element,
/// i.e., expand[m][lane] = rank of lane among the set bits of m.
constexpr std::array<std::array<uint32_t, 8>, 256> MakeExpandTable() {
  std::array<std::array<uint32_t, 8>, 256> t{};
  for (uint32_t m = 0; m < 256; ++m) {
    uint32_t rank = 0;
    for (uint32_t i = 0; i < 8; ++i) {
      t[m][i] = (m & (1u << i)) ? rank++ : 0;
    }
  }
  return t;
}

alignas(64) inline constexpr auto kCompress = MakeCompressTable();
alignas(64) inline constexpr auto kExpand = MakeExpandTable();

/// kFirstK[k]: vector mask with the first k lanes all-ones (for maskstore).
inline __m256i FirstK(uint32_t k) {
  alignas(32) static const int32_t kOnes[16] = {-1, -1, -1, -1, -1, -1, -1,
                                                -1, 0,  0,  0,  0,  0,  0,
                                                0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(&kOnes[8 - (k & 15)]));
}

}  // namespace internal

/// Extracts the 8-bit lane mask from a full-width comparison result.
inline uint32_t MoveMask(__m256i cmp) {
  return static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(cmp)));
}

/// Selective store, emulated: permutes the active lanes of v to the front
/// and maskstores popcount(m) elements at p (App. D).
inline void SelectiveStore(uint32_t* p, uint32_t m, __m256i v) {
  const __m256i perm = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(internal::kCompress[m & 0xFF].data()));
  __m256i packed = _mm256_permutevar8x32_epi32(v, perm);
  _mm256_maskstore_epi32(reinterpret_cast<int32_t*>(p),
                         internal::FirstK(__builtin_popcount(m & 0xFF)),
                         packed);
}

/// Selective load, emulated: loads 8 contiguous values at p, routes value k
/// to the k-th set lane of m, and blends with `old` for the unset lanes.
/// p must have at least 8 readable elements (buffers are padded).
inline __m256i SelectiveLoad(__m256i old, uint32_t m, const uint32_t* p) {
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i perm = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(internal::kExpand[m & 0xFF].data()));
  __m256i routed = _mm256_permutevar8x32_epi32(v, perm);
  // blendv selects from routed where the mask lane's top bit is set.
  alignas(32) int32_t mask_lanes[8];
  for (int i = 0; i < 8; ++i) mask_lanes[i] = (m >> i) & 1 ? -1 : 0;
  __m256i vm =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(mask_lanes));
  return _mm256_blendv_epi8(old, routed, vm);
}

/// Native gather: v[i] = base[idx[i]].
inline __m256i Gather(const uint32_t* base, __m256i idx) {
  return _mm256_i32gather_epi32(reinterpret_cast<const int32_t*>(base), idx,
                                4);
}

/// Selective gather via the mask-vector gather form.
inline __m256i MaskGather(__m256i src, uint32_t m, const uint32_t* base,
                          __m256i idx) {
  alignas(32) int32_t mask_lanes[8];
  for (int i = 0; i < 8; ++i) mask_lanes[i] = (m >> i) & 1 ? -1 : 0;
  __m256i vm =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(mask_lanes));
  return _mm256_mask_i32gather_epi32(src, reinterpret_cast<const int32_t*>(base),
                                     idx, vm, 4);
}

/// Scatter, emulated lane-by-lane (AVX2 has no scatter instruction; this
/// exists so tests can exercise the dispatch surface, not for hot loops).
inline void Scatter(uint32_t* base, __m256i idx, __m256i v) {
  alignas(32) uint32_t ai[8], av[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(ai), idx);
  _mm256_store_si256(reinterpret_cast<__m256i*>(av), v);
  for (int i = 0; i < 8; ++i) base[ai[i]] = av[i];
}

/// Upper 32 bits of the 8 unsigned 32x32→64-bit products.
inline __m256i MulHi(__m256i a, __m256i b) {
  __m256i even = _mm256_srli_epi64(_mm256_mul_epu32(a, b), 32);
  __m256i odd =
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), _mm256_srli_epi64(b, 32));
  return _mm256_blend_epi32(even, odd, 0xAA);
}

/// Multiplicative hashing: h = mulhi(k * factor, buckets).
inline __m256i MultHash(__m256i keys, __m256i factor, __m256i buckets) {
  return MulHi(_mm256_mullo_epi32(keys, factor), buckets);
}

}  // namespace simddb::avx2

#endif  // __AVX2__
#endif  // SIMDDB_CORE_AVX2_OPS_H_
