#include "core/avx2_ops.h"
#include "core/fundamental.h"

namespace simddb::fundamental::detail {

namespace v = simddb::avx2;

size_t SelectiveLoad16Avx2(uint32_t v16[16], uint32_t mask,
                           const uint32_t* src) {
  uint32_t m_lo = mask & 0xFF;
  uint32_t m_hi = (mask >> 8) & 0xFF;
  __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v16[0]));
  __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v16[8]));
  lo = v::SelectiveLoad(lo, m_lo, src);
  size_t consumed = __builtin_popcount(m_lo);
  hi = v::SelectiveLoad(hi, m_hi, src + consumed);
  consumed += __builtin_popcount(m_hi);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(&v16[0]), lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(&v16[8]), hi);
  return consumed;
}

size_t SelectiveStore16Avx2(uint32_t* dst, uint32_t mask,
                            const uint32_t v16[16]) {
  uint32_t m_lo = mask & 0xFF;
  uint32_t m_hi = (mask >> 8) & 0xFF;
  __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v16[0]));
  __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v16[8]));
  v::SelectiveStore(dst, m_lo, lo);
  size_t written = __builtin_popcount(m_lo);
  v::SelectiveStore(dst + written, m_hi, hi);
  written += __builtin_popcount(m_hi);
  return written;
}

void Gather16Avx2(uint32_t v16[16], uint32_t mask, const uint32_t* base,
                  const uint32_t idx[16]) {
  __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v16[0]));
  __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v16[8]));
  __m256i idx_lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&idx[0]));
  __m256i idx_hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&idx[8]));
  lo = v::MaskGather(lo, mask & 0xFF, base, idx_lo);
  hi = v::MaskGather(hi, (mask >> 8) & 0xFF, base, idx_hi);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(&v16[0]), lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(&v16[8]), hi);
}

void MultHashBatchAvx2(uint32_t* out, const uint32_t* keys, size_t n,
                       uint32_t factor, uint32_t buckets) {
  const __m256i vf = _mm256_set1_epi32(static_cast<int>(factor));
  const __m256i vb = _mm256_set1_epi32(static_cast<int>(buckets));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        v::MultHash(k, vf, vb));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<uint32_t>(
        (static_cast<uint64_t>(keys[i] * factor) * buckets) >> 32);
  }
}

}  // namespace simddb::fundamental::detail
