#ifndef SIMDDB_CORE_FUNDAMENTAL_H_
#define SIMDDB_CORE_FUNDAMENTAL_H_

// ISA-dispatched entry points for the paper's fundamental vector operations
// (§3), operating on one 16-lane group at a time. These exist so unit tests
// and the ablation benchmarks can exercise each backend from translation
// units compiled without vector flags; operator kernels use the inline
// forms in avx512_ops.h / avx2_ops.h directly.
//
// On the kAvx2 backend a 16-lane group is processed as two 8-lane halves
// (the second half consumes/produces after the first), so the semantics are
// identical across backends.

#include <cstddef>
#include <cstdint>

#include "core/isa.h"

namespace simddb::fundamental {

/// Lane count of the test-surface group.
inline constexpr int kGroup = 16;

/// Selective load into the active lanes of v; returns elements consumed.
size_t SelectiveLoad16(Isa isa, uint32_t v[16], uint32_t mask,
                       const uint32_t* src);

/// Selective store of the active lanes of v; returns elements written.
size_t SelectiveStore16(Isa isa, uint32_t* dst, uint32_t mask,
                        const uint32_t v[16]);

/// Masked gather: v[i] = base[idx[i]] for active lanes.
void Gather16(Isa isa, uint32_t v[16], uint32_t mask, const uint32_t* base,
              const uint32_t idx[16]);

/// Masked scatter: base[idx[i]] = v[i] for active lanes (rightmost wins).
void Scatter16(Isa isa, uint32_t* base, uint32_t mask, const uint32_t idx[16],
               const uint32_t v[16]);

/// out[i] = number of lower lanes with idx equal to idx[i].
/// kAvx512 uses vpconflictd+vpopcntd; other ISAs use the scalar reference.
void SerializeConflicts16(Isa isa, uint32_t out[16], const uint32_t idx[16]);

/// The paper's Alg. 13 (iterative scatter/gather-back) on the kAvx512
/// backend; `scratch` must have one writable slot per distinct index value.
/// Falls back to the scalar reference on other ISAs.
void SerializeConflictsIterative16(Isa isa, uint32_t out[16],
                                   const uint32_t idx[16], uint32_t* scratch);

/// Returns the mask of lanes with no higher-indexed duplicate index.
uint32_t ScatterWinners16(Isa isa, const uint32_t idx[16]);

/// Batch multiplicative hash: out[i] = mulhi(keys[i]*factor, buckets).
void MultHashBatch(Isa isa, uint32_t* out, const uint32_t* keys, size_t n,
                   uint32_t factor, uint32_t buckets);

namespace detail {
// Backend entry points (defined in fundamental_avx2.cc / fundamental_avx512.cc).
size_t SelectiveLoad16Avx2(uint32_t v[16], uint32_t mask, const uint32_t* src);
size_t SelectiveStore16Avx2(uint32_t* dst, uint32_t mask, const uint32_t v[16]);
void Gather16Avx2(uint32_t v[16], uint32_t mask, const uint32_t* base,
                  const uint32_t idx[16]);
void MultHashBatchAvx2(uint32_t* out, const uint32_t* keys, size_t n,
                       uint32_t factor, uint32_t buckets);

size_t SelectiveLoad16Avx512(uint32_t v[16], uint32_t mask,
                             const uint32_t* src);
size_t SelectiveStore16Avx512(uint32_t* dst, uint32_t mask,
                              const uint32_t v[16]);
void Gather16Avx512(uint32_t v[16], uint32_t mask, const uint32_t* base,
                    const uint32_t idx[16]);
void Scatter16Avx512(uint32_t* base, uint32_t mask, const uint32_t idx[16],
                     const uint32_t v[16]);
void SerializeConflicts16Avx512(uint32_t out[16], const uint32_t idx[16]);
void SerializeConflictsIterative16Avx512(uint32_t out[16],
                                         const uint32_t idx[16],
                                         uint32_t* scratch);
uint32_t ScatterWinners16Avx512(const uint32_t idx[16]);
void MultHashBatchAvx512(uint32_t* out, const uint32_t* keys, size_t n,
                         uint32_t factor, uint32_t buckets);
}  // namespace detail

}  // namespace simddb::fundamental

#endif  // SIMDDB_CORE_FUNDAMENTAL_H_
