#ifndef SIMDDB_CORE_SCALAR_OPS_H_
#define SIMDDB_CORE_SCALAR_OPS_H_

// Scalar reference semantics for the paper's fundamental vector operations
// (§3), defined over plain arrays of W lanes. These are the ground truth
// against which every vector backend is unit-tested, and the fallback
// implementation on CPUs without SIMD support.

#include <cstddef>
#include <cstdint>

namespace simddb::scalar {

/// Selective load: lanes set in mask receive the next contiguous values from
/// src (in lane order); other lanes keep their previous value. Returns the
/// number of elements consumed (= popcount of mask).
template <typename T>
size_t SelectiveLoad(T* lanes, int w, uint32_t mask, const T* src) {
  size_t consumed = 0;
  for (int i = 0; i < w; ++i) {
    if (mask & (1u << i)) lanes[i] = src[consumed++];
  }
  return consumed;
}

/// Selective store: writes the lanes set in mask contiguously to dst.
/// Returns the number of elements written.
template <typename T>
size_t SelectiveStore(T* dst, int w, uint32_t mask, const T* lanes) {
  size_t written = 0;
  for (int i = 0; i < w; ++i) {
    if (mask & (1u << i)) dst[written++] = lanes[i];
  }
  return written;
}

/// Gather: lanes[i] = base[idx[i]] for lanes set in mask.
template <typename T, typename I>
void Gather(T* lanes, int w, uint32_t mask, const T* base, const I* idx) {
  for (int i = 0; i < w; ++i) {
    if (mask & (1u << i)) lanes[i] = base[idx[i]];
  }
}

/// Scatter: base[idx[i]] = lanes[i] for lanes set in mask; the rightmost
/// lane wins on collisions (matching hardware scatter semantics).
template <typename T, typename I>
void Scatter(T* base, int w, uint32_t mask, const I* idx, const T* lanes) {
  for (int i = 0; i < w; ++i) {
    if (mask & (1u << i)) base[idx[i]] = lanes[i];
  }
}

/// Serialization offsets: out[i] = |{j < i : idx[j] == idx[i]}| (§7.3).
template <typename I>
void SerializeConflicts(uint32_t* out, int w, const I* idx) {
  for (int i = 0; i < w; ++i) {
    uint32_t c = 0;
    for (int j = 0; j < i; ++j) {
      if (idx[j] == idx[i]) ++c;
    }
    out[i] = c;
  }
}

/// Mask of lanes with no higher-indexed duplicate (would win a scatter).
template <typename I>
uint32_t ScatterWinners(int w, const I* idx) {
  uint32_t m = 0;
  for (int i = 0; i < w; ++i) {
    bool later_dup = false;
    for (int j = i + 1; j < w; ++j) {
      if (idx[j] == idx[i]) later_dup = true;
    }
    if (!later_dup) m |= 1u << i;
  }
  return m;
}

/// Multiplicative hashing (§5): mulhi(k * factor, buckets) ∈ [0, buckets).
inline uint32_t MultHash(uint32_t key, uint32_t factor, uint32_t buckets) {
  return static_cast<uint32_t>(
      (static_cast<uint64_t>(key * factor) * buckets) >> 32);
}

}  // namespace simddb::scalar

#endif  // SIMDDB_CORE_SCALAR_OPS_H_
