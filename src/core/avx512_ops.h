#ifndef SIMDDB_CORE_AVX512_OPS_H_
#define SIMDDB_CORE_AVX512_OPS_H_

// Inline wrappers around the AVX-512 instructions that realize the paper's
// fundamental vector operations (§3): selective load, selective store,
// gather, scatter, plus the building blocks reused across every operator
// (multiplicative hashing, conflict serialization, interleaved key-value
// access, streaming stores).
//
// This header may only be included from translation units compiled with the
// SIMDDB_AVX512_FLAGS (it requires AVX-512 F/CD/DQ/BW/VL/VPOPCNTDQ).

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cstdint>

namespace simddb::avx512 {

/// Number of 32-bit lanes per 512-bit vector (the paper's W).
inline constexpr int kLanes = 16;

// ---------------------------------------------------------------------------
// Fundamental operations (§3)
// ---------------------------------------------------------------------------

/// Selective load (Fig. 2): lanes set in m receive the next contiguous
/// values from p (in lane order); other lanes keep their value from `old`.
inline __m512i SelectiveLoad(__m512i old, __mmask16 m, const uint32_t* p) {
  return _mm512_mask_expandloadu_epi32(old, m, p);
}

/// Selective store (Fig. 1): writes the lanes set in m contiguously to p.
/// The caller advances p by popcount(m).
inline void SelectiveStore(uint32_t* p, __mmask16 m, __m512i v) {
  _mm512_mask_compressstoreu_epi32(p, m, v);
}

/// Gather (Fig. 3): v[i] = base[idx[i]].
inline __m512i Gather(const uint32_t* base, __m512i idx) {
  return _mm512_i32gather_epi32(idx, base, 4);
}

/// Gather emulated without the gather instruction (App. B: "emulating
/// gathers is possible at a performance penalty, which is small if done
/// carefully"): indexes are spilled once and lanes filled with scalar
/// loads. Exists for the ablation benchmark and for chips without gathers.
inline __m512i GatherEmulated(const uint32_t* base, __m512i idx) {
  alignas(64) uint32_t lanes[16];
  alignas(64) uint32_t values[16];
  _mm512_store_si512(lanes, idx);
  for (int i = 0; i < 16; ++i) values[i] = base[lanes[i]];
  return _mm512_load_si512(values);
}

/// Selective gather: active lanes load base[idx[i]], inactive keep src.
inline __m512i MaskGather(__m512i src, __mmask16 m, const uint32_t* base,
                          __m512i idx) {
  return _mm512_mask_i32gather_epi32(src, m, idx, base, 4);
}

/// Scatter (Fig. 4): base[idx[i]] = v[i]; on index collisions the
/// rightmost (highest) lane wins, as the paper assumes.
inline void Scatter(uint32_t* base, __m512i idx, __m512i v) {
  _mm512_i32scatter_epi32(base, idx, v, 4);
}

/// Selective scatter: stores only the lanes set in m.
inline void MaskScatter(uint32_t* base, __mmask16 m, __m512i idx, __m512i v) {
  _mm512_mask_i32scatter_epi32(base, m, idx, v, 4);
}

// ---------------------------------------------------------------------------
// Arithmetic helpers
// ---------------------------------------------------------------------------

/// Upper 32 bits of the 16 unsigned 32x32→64-bit products ("×↑" in the
/// paper's notation).
inline __m512i MulHi(__m512i a, __m512i b) {
  __m512i even = _mm512_srli_epi64(_mm512_mul_epu32(a, b), 32);
  __m512i odd =
      _mm512_mul_epu32(_mm512_srli_epi64(a, 32), _mm512_srli_epi64(b, 32));
  return _mm512_mask_blend_epi32(0xAAAA, even, odd);
}

/// Multiplicative hashing (§5): h = mulhi(k * factor, buckets) ∈ [0, buckets).
inline __m512i MultHash(__m512i keys, __m512i factor, __m512i buckets) {
  return MulHi(_mm512_mullo_epi32(keys, factor), buckets);
}

// ---------------------------------------------------------------------------
// Conflict detection & serialization (§5.1, §7.3)
// ---------------------------------------------------------------------------

/// Per-lane count of lower-indexed lanes with an equal index value, computed
/// with vpconflictd + vpopcntd (the instructions the paper anticipates as
/// "AVX 3", §5.1). out[i] = |{j < i : idx[j] == idx[i]}|. This is exactly
/// the serialization offset of Alg. 13 and preserves input order (stable).
inline __m512i SerializeConflicts(__m512i idx) {
  return _mm512_popcnt_epi32(_mm512_conflict_epi32(idx));
}

/// Mask of lanes that would win a scatter to idx (i.e., lanes with no
/// higher-indexed duplicate). Used by vectorized hash-table build (Alg. 7).
inline __mmask16 ScatterWinners(__m512i idx) {
  uint32_t later = static_cast<uint32_t>(
      _mm512_reduce_or_epi32(_mm512_conflict_epi32(idx)));
  return static_cast<__mmask16>(~later & 0xFFFFu);
}

/// The reversing permutation {15, 14, ..., 0} (Alg. 13's ~l).
inline __m512i ReverseLanes(__m512i v) {
  const __m512i rev = _mm512_set_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                       12, 13, 14, 15);
  return _mm512_permutexvar_epi32(rev, v);
}

/// The paper's Alg. 13 verbatim: iterative scatter/gather-back conflict
/// serialization using a caller-provided scratch array that must have one
/// slot per possible index value. Produces the same result as
/// SerializeConflicts(); kept as the portable idiom for chips without
/// conflict-detection instructions and for the ablation benchmark.
inline __m512i SerializeConflictsIterative(__m512i h, uint32_t* scratch) {
  const __m512i lane_ids =
      _mm512_set_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  __m512i rh = ReverseLanes(h);  // reverse so earliest tuple wins
  __m512i c = _mm512_setzero_si512();
  __mmask16 m = 0xFFFF;
  do {
    _mm512_mask_i32scatter_epi32(scratch, m, rh, lane_ids, 4);
    __m512i back = _mm512_mask_i32gather_epi32(lane_ids, m, rh, scratch, 4);
    m = _mm512_mask_cmpneq_epi32_mask(m, back, lane_ids);
    c = _mm512_mask_add_epi32(c, m, c, _mm512_set1_epi32(1));
  } while (m != 0);
  return ReverseLanes(c);
}

// ---------------------------------------------------------------------------
// Interleaved key-value access (App. E)
// ---------------------------------------------------------------------------

/// Gathers 16 interleaved (key, payload) pairs from a uint64 bucket array
/// with two 8-way 64-bit gathers and splits them back into key and payload
/// vectors. Halves the number of cache accesses vs. two 32-bit gathers.
inline void GatherPairs(const uint64_t* table, __m512i idx, __m512i* keys,
                        __m512i* pays) {
  __m256i idx_lo = _mm512_castsi512_si256(idx);
  __m256i idx_hi = _mm512_extracti64x4_epi64(idx, 1);
  __m512i lo = _mm512_i32gather_epi64(
      idx_lo, reinterpret_cast<const long long*>(table), 8);
  __m512i hi = _mm512_i32gather_epi64(
      idx_hi, reinterpret_cast<const long long*>(table), 8);
  const __m512i even = _mm512_set_epi32(30, 28, 26, 24, 22, 20, 18, 16, 14,
                                        12, 10, 8, 6, 4, 2, 0);
  const __m512i odd = _mm512_set_epi32(31, 29, 27, 25, 23, 21, 19, 17, 15, 13,
                                       11, 9, 7, 5, 3, 1);
  *keys = _mm512_permutex2var_epi32(lo, even, hi);
  *pays = _mm512_permutex2var_epi32(lo, odd, hi);
}

/// Scatters 16 (key, payload) pairs to an interleaved uint64 bucket array
/// with two masked 8-way 64-bit scatters (the inverse of GatherPairs).
inline void ScatterPairs(uint64_t* table, __mmask16 m, __m512i idx,
                         __m512i keys, __m512i pays) {
  __m512i keys_lo = _mm512_cvtepu32_epi64(_mm512_castsi512_si256(keys));
  __m512i pays_lo = _mm512_cvtepu32_epi64(_mm512_castsi512_si256(pays));
  __m512i pair_lo = _mm512_or_si512(keys_lo, _mm512_slli_epi64(pays_lo, 32));
  _mm512_mask_i32scatter_epi64(table, static_cast<__mmask8>(m & 0xFF),
                               _mm512_castsi512_si256(idx), pair_lo, 8);
  __m512i keys_hi =
      _mm512_cvtepu32_epi64(_mm512_extracti32x8_epi32(keys, 1));
  __m512i pays_hi =
      _mm512_cvtepu32_epi64(_mm512_extracti32x8_epi32(pays, 1));
  __m512i pair_hi = _mm512_or_si512(keys_hi, _mm512_slli_epi64(pays_hi, 32));
  _mm512_mask_i32scatter_epi64(table, static_cast<__mmask8>(m >> 8),
                               _mm512_extracti64x4_epi64(idx, 1), pair_hi, 8);
}

// ---------------------------------------------------------------------------
// Streaming stores (§4)
// ---------------------------------------------------------------------------

/// Non-temporal 64-byte store; p must be 64-byte aligned. Used when flushing
/// in-cache buffers to RAM-resident outputs so output data does not pollute
/// the cache.
inline void StreamStore(uint32_t* p, __m512i v) {
  _mm512_stream_si512(reinterpret_cast<__m512i*>(p), v);
}

/// True when p is 64-byte aligned (eligible for StreamStore).
inline bool IsStreamAligned(const void* p) {
  return (reinterpret_cast<uintptr_t>(p) & 63u) == 0;
}

}  // namespace simddb::avx512

#endif  // __AVX512F__
#endif  // SIMDDB_CORE_AVX512_OPS_H_
