#include "core/fundamental.h"

#include "core/scalar_ops.h"

namespace simddb::fundamental {

size_t SelectiveLoad16(Isa isa, uint32_t v[16], uint32_t mask,
                       const uint32_t* src) {
  switch (isa) {
    case Isa::kAvx512:
      return detail::SelectiveLoad16Avx512(v, mask, src);
    case Isa::kAvx2:
      return detail::SelectiveLoad16Avx2(v, mask, src);
    case Isa::kScalar:
      break;
  }
  return scalar::SelectiveLoad(v, 16, mask, src);
}

size_t SelectiveStore16(Isa isa, uint32_t* dst, uint32_t mask,
                        const uint32_t v[16]) {
  switch (isa) {
    case Isa::kAvx512:
      return detail::SelectiveStore16Avx512(dst, mask, v);
    case Isa::kAvx2:
      return detail::SelectiveStore16Avx2(dst, mask, v);
    case Isa::kScalar:
      break;
  }
  return scalar::SelectiveStore(dst, 16, mask, v);
}

void Gather16(Isa isa, uint32_t v[16], uint32_t mask, const uint32_t* base,
              const uint32_t idx[16]) {
  switch (isa) {
    case Isa::kAvx512:
      detail::Gather16Avx512(v, mask, base, idx);
      return;
    case Isa::kAvx2:
      detail::Gather16Avx2(v, mask, base, idx);
      return;
    case Isa::kScalar:
      break;
  }
  scalar::Gather(v, 16, mask, base, idx);
}

void Scatter16(Isa isa, uint32_t* base, uint32_t mask, const uint32_t idx[16],
               const uint32_t v[16]) {
  if (isa == Isa::kAvx512) {
    detail::Scatter16Avx512(base, mask, idx, v);
    return;
  }
  // AVX2 has no scatter instruction; the scalar semantics are the emulation.
  scalar::Scatter(base, 16, mask, idx, v);
}

void SerializeConflicts16(Isa isa, uint32_t out[16], const uint32_t idx[16]) {
  if (isa == Isa::kAvx512) {
    detail::SerializeConflicts16Avx512(out, idx);
    return;
  }
  scalar::SerializeConflicts(out, 16, idx);
}

void SerializeConflictsIterative16(Isa isa, uint32_t out[16],
                                   const uint32_t idx[16], uint32_t* scratch) {
  if (isa == Isa::kAvx512) {
    detail::SerializeConflictsIterative16Avx512(out, idx, scratch);
    return;
  }
  scalar::SerializeConflicts(out, 16, idx);
}

uint32_t ScatterWinners16(Isa isa, const uint32_t idx[16]) {
  if (isa == Isa::kAvx512) {
    return detail::ScatterWinners16Avx512(idx);
  }
  return scalar::ScatterWinners(16, idx);
}

void MultHashBatch(Isa isa, uint32_t* out, const uint32_t* keys, size_t n,
                   uint32_t factor, uint32_t buckets) {
  switch (isa) {
    case Isa::kAvx512:
      detail::MultHashBatchAvx512(out, keys, n, factor, buckets);
      return;
    case Isa::kAvx2:
      detail::MultHashBatchAvx2(out, keys, n, factor, buckets);
      return;
    case Isa::kScalar:
      break;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = scalar::MultHash(keys[i], factor, buckets);
  }
}

}  // namespace simddb::fundamental
