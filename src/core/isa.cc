#include "core/isa.h"

#include "util/cpu_info.h"

namespace simddb {

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool IsaSupported(Isa isa) {
  const CpuInfo& info = GetCpuInfo();
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return info.avx2;
    case Isa::kAvx512:
      return info.HasAvx512() && info.avx512vpopcntdq;
  }
  return false;
}

Isa BestIsa() {
  if (IsaSupported(Isa::kAvx512)) return Isa::kAvx512;
  if (IsaSupported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

}  // namespace simddb
