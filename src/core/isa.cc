#include "core/isa.h"

#include <atomic>
#include <cstdio>

#include "obs/metrics.h"
#include "util/cpu_info.h"

namespace simddb {
namespace {

// Registry keeps raw pointers, so the counter must have static storage.
obs::Counter g_isa_degraded("isa_degraded");

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool IsaSupported(Isa isa) {
  const CpuInfo& info = GetCpuInfo();
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return info.avx2;
    case Isa::kAvx512:
      return info.HasAvx512() && info.avx512vpopcntdq;
  }
  return false;
}

Isa BestIsa() {
  if (IsaSupported(Isa::kAvx512)) return Isa::kAvx512;
  if (IsaSupported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

Isa EffectiveIsa(Isa requested) {
  if (IsaSupported(requested)) return requested;
  Isa granted = Isa::kScalar;
  if (requested == Isa::kAvx512 && IsaSupported(Isa::kAvx2)) {
    granted = Isa::kAvx2;
  }
  g_isa_degraded.AddAlways(1);
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "simddb: requested ISA %s is not supported on this host; "
                 "degrading to %s\n",
                 IsaName(requested), IsaName(granted));
  }
  return granted;
}

}  // namespace simddb
