#!/usr/bin/env python3
"""Counter-driven benchmark regression gate.

Validates JSONL benchmark rows (bench_common.h's --json output) against
per-bench baseline ranges:

    python3 scripts/check_bench_ranges.py scripts/bench_baselines.json \
        smoke.jsonl fig13.jsonl

Baselines are a JSON list of entries:

    {
      "name": "human-readable id",
      "name_re": "^BM_Shuffle/5/1[23]$",   # matched against row["name"]
      "variant_re": "^swwc_scalar$",       # optional, row["variant"]
      "require": true,                     # fail if nothing matched
      "metrics": {
        "wc_line_flushes": {"min": 4e5, "max": 5e6, "per_iteration": true}
      }
    }

With "per_iteration" the metric is divided by the row's iteration count
first. With "div_by": "<other_metric>" the metric is divided by that
metric of the SAME row before the range check (after any per_iteration
scaling of the numerator) — e.g. a per-phase time ratio
part_hist_ns / part_shuffle_ns. A missing or non-positive denominator is
a failure on matched rows, like a missing metric. The ranges are deliberately WIDE, structural checks ("the SWWC
shuffle flushed roughly 2*n/16 lines", "the planner planned at least one
pass"), not tight performance assertions: google-benchmark's warmup
iterations are included in the counter deltas but not in `iterations`, so
per-iteration values can legitimately sit 2-3x above nominal. The gate
exists to catch structural drift — a kernel silently falling back to the
non-streaming path, a planner splitting into the wrong number of passes, a
counter that stopped being incremented — not a few percent of throughput.

Exit status: 0 when every matched row is in range and every required
baseline matched at least one row; 1 otherwise.
"""

import argparse
import json
import re
import sys


def load_rows(paths):
    rows = []
    for path in paths:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rows.append((f"{path}:{lineno}", json.loads(line)))
                except json.JSONDecodeError as e:
                    raise SystemExit(f"{path}:{lineno}: invalid JSON: {e}")
    return rows


def check(baselines, rows):
    failures = []
    for entry in baselines:
        name_re = re.compile(entry["name_re"])
        variant_re = re.compile(entry.get("variant_re", ""))
        matched = 0
        for where, row in rows:
            if not name_re.search(row.get("name", "")):
                continue
            if "variant_re" in entry and not variant_re.search(
                    row.get("variant", "")):
                continue
            matched += 1
            iters = max(1, int(row.get("iterations", 1)))
            for metric, rng in entry.get("metrics", {}).items():
                if metric not in row:
                    failures.append(
                        f"{where}: [{entry['name']}] missing metric "
                        f"'{metric}' (row: {row.get('name')})")
                    continue
                value = float(row[metric])
                if rng.get("per_iteration", False):
                    value /= iters
                div_by = rng.get("div_by")
                if div_by is not None:
                    if div_by not in row:
                        failures.append(
                            f"{where}: [{entry['name']}] missing div_by "
                            f"metric '{div_by}' (row: {row.get('name')})")
                        continue
                    denom = float(row[div_by])
                    if denom <= 0:
                        failures.append(
                            f"{where}: [{entry['name']}] div_by metric "
                            f"'{div_by}'={denom:g} not positive "
                            f"(row: {row.get('name')})")
                        continue
                    value /= denom
                lo = rng.get("min", float("-inf"))
                hi = rng.get("max", float("inf"))
                if not (lo <= value <= hi):
                    failures.append(
                        f"{where}: [{entry['name']}] {metric}="
                        f"{value:g} outside [{lo:g}, {hi:g}] "
                        f"(row: {row.get('name')})")
        if entry.get("require", False) and matched == 0:
            failures.append(
                f"[{entry['name']}] required but no row matched "
                f"name_re={entry['name_re']!r}")
        else:
            print(f"[{entry['name']}] checked {matched} row(s)")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baselines", help="baseline ranges JSON")
    ap.add_argument("jsonl", nargs="+", help="bench JSONL file(s)")
    args = ap.parse_args()

    with open(args.baselines) as f:
        baselines = json.load(f)
    rows = load_rows(args.jsonl)
    if not rows:
        print("no JSONL rows found", file=sys.stderr)
        return 1

    failures = check(baselines, rows)
    for msg in failures:
        print(f"FAIL {msg}", file=sys.stderr)
    if failures:
        print(f"{len(failures)} baseline violation(s)", file=sys.stderr)
        return 1
    print(f"all {len(rows)} row(s) within baseline ranges")
    return 0


if __name__ == "__main__":
    sys.exit(main())
