#!/usr/bin/env python3
"""Counter-driven benchmark regression gate.

Validates JSONL benchmark rows (bench_common.h's --json output) against
per-bench baseline ranges:

    python3 scripts/check_bench_ranges.py scripts/bench_baselines.json \
        smoke.jsonl fig13.jsonl

Baselines are a JSON list of entries:

    {
      "name": "human-readable id",
      "name_re": "^BM_Shuffle/5/1[23]$",   # matched against row["name"]
      "variant_re": "^swwc_scalar$",       # optional, row["variant"]
      "require": true,                     # fail if nothing matched
      "metrics": {
        "wc_line_flushes": {"min": 4e5, "max": 5e6, "per_iteration": true}
      }
    }

With "per_iteration" the metric is divided by the row's iteration count
first. With "div_by": "<other_metric>" the metric is divided by that
metric of the SAME row before the range check (after any per_iteration
scaling of the numerator) — e.g. a per-phase time ratio
part_hist_ns / part_shuffle_ns. A missing or non-positive denominator is
a failure on matched rows, like a missing metric — unless the range sets
"zero_denom": "skip", which silently skips the check on rows where the
denominator can legitimately be 0 (e.g. pipelines_dynamic on fused-only
rows).

An entry may instead hold a cross-row comparison:

    {
      "name": "adaptive-beats-static",
      "compare": {
        "target_name_re": "/[34]/", "target_variant_re": "_adaptive",
        "baseline_name_re": "/[01]/", "baseline_variant_re": "_dynamic$",
        "group_by": ["sel", "threads"],
        "metric": "real_time",
        "max_ratio": 1.05
      },
      "require": true
    }

Every target row's metric is compared against the MINIMUM of the baseline
rows sharing the same group_by field values (fields compared as strings);
the row fails when target / min(baselines) exceeds max_ratio. Target rows
whose group has no baseline row are skipped (smoke runs gate subsets);
"require" fails the entry when no target row matched at all.

The plain range checks are deliberately WIDE, structural checks ("the SWWC
shuffle flushed roughly 2*n/16 lines", "the planner planned at least one
pass"), not tight performance assertions: google-benchmark's warmup
iterations are included in the counter deltas but not in `iterations`, so
per-iteration values can legitimately sit 2-3x above nominal. The gate
exists to catch structural drift — a kernel silently falling back to the
non-streaming path, a planner splitting into the wrong number of passes, a
counter that stopped being incremented — not a few percent of throughput.

Exit status: 0 when every matched row is in range and every required
baseline matched at least one row; 1 otherwise.
"""

import argparse
import json
import re
import sys


def load_rows(paths):
    rows = []
    for path in paths:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rows.append((f"{path}:{lineno}", json.loads(line)))
                except json.JSONDecodeError as e:
                    raise SystemExit(f"{path}:{lineno}: invalid JSON: {e}")
    return rows


def check_compare(entry, rows):
    """Cross-row gate: each target row vs the best baseline row of its
    group. Returns (matched_target_rows, failures)."""
    spec = entry["compare"]
    t_name = re.compile(spec["target_name_re"])
    t_var = re.compile(spec.get("target_variant_re", ""))
    b_name = re.compile(spec["baseline_name_re"])
    b_var = re.compile(spec.get("baseline_variant_re", ""))
    group_by = spec.get("group_by", [])
    metric = spec["metric"]
    max_ratio = float(spec["max_ratio"])
    failures = []

    def key_of(row):
        return tuple(str(row.get(f)) for f in group_by)

    best = {}  # group key -> (value, variant, name)
    for _, row in rows:
        if not b_name.search(row.get("name", "")):
            continue
        if "baseline_variant_re" in spec and not b_var.search(
                row.get("variant", "")):
            continue
        if metric not in row:
            continue
        value = float(row[metric])
        key = key_of(row)
        if key not in best or value < best[key][0]:
            best[key] = (value, row.get("variant"), row.get("name"))

    matched = 0
    for where, row in rows:
        if not t_name.search(row.get("name", "")):
            continue
        if "target_variant_re" in spec and not t_var.search(
                row.get("variant", "")):
            continue
        matched += 1
        if metric not in row:
            failures.append(
                f"{where}: [{entry['name']}] missing metric '{metric}' "
                f"(row: {row.get('name')})")
            continue
        key = key_of(row)
        if key not in best or best[key][0] <= 0:
            print(f"[{entry['name']}] no baseline row for "
                  f"{dict(zip(group_by, key))}; target row skipped")
            continue
        best_value, best_variant, _ = best[key]
        ratio = float(row[metric]) / best_value
        if ratio > max_ratio:
            failures.append(
                f"{where}: [{entry['name']}] {metric}={float(row[metric]):g} "
                f"is {ratio:.3f}x the best baseline "
                f"({best_variant}: {best_value:g}) for "
                f"{dict(zip(group_by, key))}, above max_ratio={max_ratio:g}")
    return matched, failures


def check(baselines, rows):
    failures = []
    for entry in baselines:
        if "compare" in entry:
            matched, entry_failures = check_compare(entry, rows)
            failures.extend(entry_failures)
            if entry.get("require", False) and matched == 0:
                failures.append(
                    f"[{entry['name']}] required but no target row matched "
                    f"name_re={entry['compare']['target_name_re']!r}")
            else:
                print(f"[{entry['name']}] compared {matched} row(s)")
            continue
        name_re = re.compile(entry["name_re"])
        variant_re = re.compile(entry.get("variant_re", ""))
        matched = 0
        for where, row in rows:
            if not name_re.search(row.get("name", "")):
                continue
            if "variant_re" in entry and not variant_re.search(
                    row.get("variant", "")):
                continue
            matched += 1
            iters = max(1, int(row.get("iterations", 1)))
            for metric, rng in entry.get("metrics", {}).items():
                if metric not in row:
                    failures.append(
                        f"{where}: [{entry['name']}] missing metric "
                        f"'{metric}' (row: {row.get('name')})")
                    continue
                value = float(row[metric])
                if rng.get("per_iteration", False):
                    value /= iters
                div_by = rng.get("div_by")
                if div_by is not None:
                    if div_by not in row:
                        failures.append(
                            f"{where}: [{entry['name']}] missing div_by "
                            f"metric '{div_by}' (row: {row.get('name')})")
                        continue
                    denom = float(row[div_by])
                    if denom <= 0:
                        if rng.get("zero_denom") == "skip":
                            continue
                        failures.append(
                            f"{where}: [{entry['name']}] div_by metric "
                            f"'{div_by}'={denom:g} not positive "
                            f"(row: {row.get('name')})")
                        continue
                    value /= denom
                lo = rng.get("min", float("-inf"))
                hi = rng.get("max", float("inf"))
                if not (lo <= value <= hi):
                    failures.append(
                        f"{where}: [{entry['name']}] {metric}="
                        f"{value:g} outside [{lo:g}, {hi:g}] "
                        f"(row: {row.get('name')})")
        if entry.get("require", False) and matched == 0:
            failures.append(
                f"[{entry['name']}] required but no row matched "
                f"name_re={entry['name_re']!r}")
        else:
            print(f"[{entry['name']}] checked {matched} row(s)")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baselines", help="baseline ranges JSON")
    ap.add_argument("jsonl", nargs="+", help="bench JSONL file(s)")
    ap.add_argument("--only", metavar="REGEX", default=None,
                    help="check only baseline entries whose name matches "
                         "(smoke jobs that run a subset of the bench "
                         "families gate just that subset)")
    args = ap.parse_args()

    with open(args.baselines) as f:
        baselines = json.load(f)
    if args.only:
        only = re.compile(args.only)
        baselines = [b for b in baselines if only.search(b["name"])]
        if not baselines:
            print(f"no baseline entry matches --only {args.only!r}",
                  file=sys.stderr)
            return 1
    rows = load_rows(args.jsonl)
    if not rows:
        print("no JSONL rows found", file=sys.stderr)
        return 1

    failures = check(baselines, rows)
    for msg in failures:
        print(f"FAIL {msg}", file=sys.stderr)
    if failures:
        print(f"{len(failures)} baseline violation(s)", file=sys.stderr)
        return 1
    print(f"all {len(rows)} row(s) within baseline ranges")
    return 0


if __name__ == "__main__":
    sys.exit(main())
