// Direct tests for the parallel partitioning pass: global stability (thread
// order preserved within partitions), boundary correctness under the
// buffered-flush/cleanup protocol, and the reported partition starts.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/isa.h"
#include "partition/parallel_partition.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"
#include <cstring>

namespace simddb {
namespace {

class ParallelPartitionTest
    : public ::testing::TestWithParam<std::tuple<Isa, int, int, size_t>> {};

TEST_P(ParallelPartitionTest, StablePartitionWithBoundaries) {
  auto [isa, threads, bits, n] = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  PartitionFn fn = PartitionFn::Radix(bits, 3);

  AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
  FillUniform(keys.data(), n, 31, 0, 0xFFFFFFFFu);
  FillSequential(pays.data(), n, 0);  // payload = original index
  AlignedBuffer<uint32_t> out_k(n + 16), out_p(n + 16);
  std::vector<uint32_t> starts(fn.fanout + 1);
  ParallelPartitionResources res;
  ParallelPartitionPass(fn, keys.data(), pays.data(), n, out_k.data(),
                        out_p.data(), isa, threads, &res, starts.data());

  ASSERT_EQ(starts[fn.fanout], n);
  std::vector<bool> seen(n, false);
  for (uint32_t p = 0; p < fn.fanout; ++p) {
    ASSERT_LE(starts[p], starts[p + 1]) << "partition " << p;
    uint32_t prev = 0;
    bool first = true;
    for (uint32_t q = starts[p]; q < starts[p + 1]; ++q) {
      uint32_t orig = out_p[q];
      ASSERT_LT(orig, n);
      ASSERT_FALSE(seen[orig]);
      seen[orig] = true;
      ASSERT_EQ(out_k[q], keys[orig]);
      ASSERT_EQ(fn(out_k[q]), p);
      // Global stability across thread chunks.
      if (!first) ASSERT_GT(orig, prev) << "instability @" << q;
      prev = orig;
      first = false;
    }
  }
}

TEST_P(ParallelPartitionTest, KeyOnlyPass) {
  auto [isa, threads, bits, n] = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  PartitionFn fn = PartitionFn::Radix(bits, 0);
  AlignedBuffer<uint32_t> keys(n + 16);
  FillUniform(keys.data(), n, 7, 0, 0xFFFFFFFFu);
  AlignedBuffer<uint32_t> out_k(n + 16);
  std::vector<uint32_t> starts(fn.fanout + 1);
  ParallelPartitionResources res;
  ParallelPartitionPass(fn, keys.data(), nullptr, n, out_k.data(), nullptr,
                        isa, threads, &res, starts.data());
  // Partition membership and multiset preservation.
  std::vector<uint32_t> in_sorted(keys.data(), keys.data() + n);
  std::vector<uint32_t> out_sorted(out_k.data(), out_k.data() + n);
  std::sort(in_sorted.begin(), in_sorted.end());
  std::sort(out_sorted.begin(), out_sorted.end());
  ASSERT_EQ(in_sorted, out_sorted);
  for (uint32_t p = 0; p < fn.fanout; ++p) {
    for (uint32_t q = starts[p]; q < starts[p + 1]; ++q) {
      ASSERT_EQ(fn(out_k[q]), p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelPartitionTest,
    ::testing::Combine(::testing::Values(Isa::kScalar, Isa::kAvx512),
                       ::testing::Values(1, 3, 8), ::testing::Values(4, 9),
                       ::testing::Values<size_t>(30, 5000, 200'003)),
    [](const auto& info) {
      return std::string(IsaName(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_b" +
             std::to_string(std::get<2>(info.param)) + "_n" +
             std::to_string(std::get<3>(info.param));
    });

TEST(ParallelPartition, ResourceReuseAcrossPassesAndFanouts) {
  // The same resources object must be safely reusable with changing
  // fanouts and thread counts (as radixsort does across passes).
  ParallelPartitionResources res;
  const size_t n = 20'000;
  AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
  AlignedBuffer<uint32_t> out_k(n + 16), out_p(n + 16);
  FillUniform(keys.data(), n, 3, 0, 0xFFFFFFFFu);
  FillSequential(pays.data(), n, 0);
  for (int pass = 0; pass < 4; ++pass) {
    PartitionFn fn = PartitionFn::Radix(3 + pass * 2, pass);
    std::vector<uint32_t> starts(fn.fanout + 1);
    ParallelPartitionPass(fn, keys.data(), pays.data(), n, out_k.data(),
                          out_p.data(), BestIsa(), 1 + pass, &res,
                          starts.data());
    ASSERT_EQ(starts[fn.fanout], n);
    std::memcpy(keys.data(), out_k.data(), n * sizeof(uint32_t));
    std::memcpy(pays.data(), out_p.data(), n * sizeof(uint32_t));
  }
}

}  // namespace
}  // namespace simddb
