// Observability layer tests: strict-JSON validity of every line the bench
// reporter can emit (the original reporter produced invalid JSON for label
// values like "1." and for nan/inf rates), counter sharding and reset,
// phase timers and scoped phases, registry snapshots, the chrome-trace
// writer, and the perf_event_open wrapper's graceful-fallback contract.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "util/task_pool.h"

namespace simddb::obs {
namespace {

// ---------------------------------------------------------------------------
// Strict recursive-descent JSON validator (RFC 8259). Deliberately
// independent of the code under test: jsonl.h must satisfy an outside
// grammar, not its own.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           std::strchr("+-.eE0123456789", s_[pos_]) != nullptr) {
      ++pos_;
    }
    return pos_ > start &&
           JsonIsNumberToken(s_.substr(start, pos_ - start));
  }

  bool Literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

bool IsValidJson(std::string_view s) { return JsonValidator(s).Valid(); }

// Extracts the raw token after "key": in a flat JSON object line.
std::string RawField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t p = line.find(needle);
  if (p == std::string::npos) return "";
  p += needle.size();
  size_t e = p;
  if (line[p] == '"') {
    e = p + 1;
    while (e < line.size() && line[e] != '"') {
      if (line[e] == '\\') ++e;
      ++e;
    }
    ++e;
  } else {
    while (e < line.size() && line[e] != ',' && line[e] != '}') ++e;
  }
  return line.substr(p, e - p);
}

// ---------------------------------------------------------------------------
// JSON number grammar

TEST(JsonlTest, NumberTokenGrammar) {
  for (const char* ok : {"0", "-0", "7", "-1", "123", "1.5", "-2.25", "0.5",
                         "1e9", "1E9", "1e+9", "1.5e-3", "2E-17",
                         "17179869184"}) {
    EXPECT_TRUE(JsonIsNumberToken(ok)) << ok;
  }
  for (const char* bad :
       {"", "-", ".", "1.", ".5", "-.5", "01", "007", "+1", "1e", "1e+",
        "1.e5", "nan", "-nan", "inf", "-inf", "NaN", "Infinity", "1.5.2",
        "1,5", "0x10", " 1", "1 "}) {
    EXPECT_FALSE(JsonIsNumberToken(bad)) << bad;
  }
}

TEST(JsonlTest, NonFiniteDoublesBecomeNull) {
  std::string out;
  JsonAppendNumber(&out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "null");
  out.clear();
  JsonAppendNumber(&out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
  out.clear();
  JsonAppendNumber(&out, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
  out.clear();
  JsonAppendNumber(&out, 0.1);
  EXPECT_TRUE(JsonIsNumberToken(out)) << out;
}

TEST(JsonlTest, FieldValuesOnlyUnquotedWhenRealNumbers) {
  // "1." passed the old reporter's numeric sniff and was emitted unquoted —
  // invalid JSON. It must be quoted now; a real number stays bare.
  std::string out = "{\"a\":0";
  JsonAppendField(&out, "trailing_dot", "1.");
  JsonAppendField(&out, "leading_zero", "01");
  JsonAppendField(&out, "real", "2.5");
  out.push_back('}');
  EXPECT_TRUE(IsValidJson(out)) << out;
  EXPECT_EQ(RawField(out, "trailing_dot"), "\"1.\"");
  EXPECT_EQ(RawField(out, "leading_zero"), "\"01\"");
  EXPECT_EQ(RawField(out, "real"), "2.5");
}

// ---------------------------------------------------------------------------
// Bench row assembly

TEST(JsonlTest, EveryBenchRowVariantParsesAsJson) {
  std::vector<BenchJsonRow> rows;

  BenchJsonRow plain;
  plain.name = "fig5/scan/1048576";
  plain.label = "scalar_branching n=1048576 sel=0.5";
  plain.threads = 1;
  plain.real_time = 123.456;
  plain.time_unit = "us";
  plain.iterations = 1000;
  plain.has_tuples_per_s = true;
  plain.tuples_per_s = 2.5e9;
  rows.push_back(plain);

  BenchJsonRow nasty;
  nasty.name = "we\"ird\\name\twith\ncontrols";
  nasty.label = "v=1. w=01 x=\"quoted\" tab\tok bare_tok isa=avx512";
  nasty.real_time = std::numeric_limits<double>::quiet_NaN();
  nasty.time_unit = "ns";
  nasty.has_tuples_per_s = true;
  nasty.tuples_per_s = std::numeric_limits<double>::infinity();
  nasty.metrics.emplace_back("steals", 17.0);
  nasty.metrics.emplace_back("weird metric\"name",
                             -std::numeric_limits<double>::infinity());
  rows.push_back(nasty);

  BenchJsonRow empty;
  rows.push_back(empty);

  for (const BenchJsonRow& row : rows) {
    const std::string line = BuildBenchJsonLine(row);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_TRUE(IsValidJson(std::string_view(line.data(), line.size() - 1)))
        << line;
  }
}

TEST(JsonlTest, BenchRowLabelParsing) {
  BenchJsonRow row;
  row.name = "case";
  row.label = "vector_selstore_direct n=4096 sel=0.5 threads=8";
  row.threads = 1;  // must be overridden by the label's threads=8
  row.time_unit = "us";
  const std::string line = BuildBenchJsonLine(row);
  EXPECT_TRUE(IsValidJson(std::string_view(line.data(), line.size() - 1)))
      << line;
  EXPECT_EQ(RawField(line, "variant"), "\"vector_selstore_direct\"");
  EXPECT_EQ(RawField(line, "n"), "4096");
  EXPECT_EQ(RawField(line, "sel"), "0.5");
  EXPECT_EQ(RawField(line, "threads"), "8");
  // ISA inferred from the variant name ("vector" => avx512).
  EXPECT_EQ(RawField(line, "isa"), "\"avx512\"");
  EXPECT_EQ(line.find("\"threads\":\"1\""), std::string::npos);
}

TEST(JsonlTest, BenchRowExplicitIsaEmittedOnce) {
  BenchJsonRow row;
  row.name = "case";
  // "vector" in the variant would also trigger the inference heuristic; the
  // explicit isa= token must win and appear exactly once.
  row.label = "vector_thing isa=scalar";
  row.time_unit = "ms";
  const std::string line = BuildBenchJsonLine(row);
  EXPECT_TRUE(IsValidJson(std::string_view(line.data(), line.size() - 1)))
      << line;
  EXPECT_EQ(RawField(line, "isa"), "\"scalar\"");
  size_t count = 0;
  for (size_t at = line.find("\"isa\":"); at != std::string::npos;
       at = line.find("\"isa\":", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(JsonlTest, BenchRowMetricsAppended) {
  BenchJsonRow row;
  row.name = "sched";
  row.label = "skewed";
  row.time_unit = "ms";
  row.metrics.emplace_back("steals", 12);
  row.metrics.emplace_back("morsels", 4096);
  row.metrics.emplace_back("barrier_wait_ns", 1.5e6);
  const std::string line = BuildBenchJsonLine(row);
  EXPECT_TRUE(IsValidJson(std::string_view(line.data(), line.size() - 1)))
      << line;
  EXPECT_EQ(RawField(line, "steals"), "12");
  EXPECT_EQ(RawField(line, "morsels"), "4096");
  EXPECT_EQ(RawField(line, "barrier_wait_ns"), "1500000");
}

// ---------------------------------------------------------------------------
// Counters, timers, registry

TEST(MetricsTest, CounterShardsSumAcrossThreads) {
  EnableMetrics(true);
  static Counter counter("obs_test_counter");
  counter.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kAddsPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
  EnableMetrics(false);
}

TEST(MetricsTest, DisabledCounterAddsNothing) {
  if (kMetricsForced) GTEST_SKIP() << "metrics forced on at compile time";
  EnableMetrics(false);
  static Counter counter("obs_test_gated_counter");
  counter.Reset();
  counter.Add(123);
  EXPECT_EQ(counter.Value(), 0u);
  counter.AddAlways(5);  // the ungated entry point still lands
  EXPECT_EQ(counter.Value(), 5u);
  counter.Reset();
}

TEST(MetricsTest, PhaseTimerAccumulatesAndResets) {
  EnableMetrics(true);
  static PhaseTimer timer("obs_test_timer_ns");
  timer.Reset();
  timer.Record(100);
  timer.Record(250);
  EXPECT_EQ(timer.TotalNs(), 350u);
  EXPECT_EQ(timer.Calls(), 2u);
  timer.Reset();
  EXPECT_EQ(timer.TotalNs(), 0u);
  EXPECT_EQ(timer.Calls(), 0u);
  EnableMetrics(false);
}

TEST(MetricsTest, ScopedPhaseRecordsElapsedTime) {
  EnableMetrics(true);
  static PhaseTimer timer("obs_test_scoped_ns");
  timer.Reset();
  {
    ScopedPhase phase(timer);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(timer.TotalNs(), 1'000'000u);  // >= 1 ms of the ~5 ms sleep
  EXPECT_EQ(timer.Calls(), 1u);
  timer.Reset();
  EnableMetrics(false);
}

TEST(MetricsTest, RegistrySnapshotContainsInstrumentsAndResetsAll) {
  EnableMetrics(true);
  static Counter counter("obs_test_registry_counter");
  static PhaseTimer timer("obs_test_registry_timer_ns");
  counter.Reset();
  timer.Reset();
  counter.Add(7);
  timer.Record(9);
  std::map<std::string, uint64_t> snap;
  for (const MetricSample& s : MetricsRegistry::Get().Snapshot()) {
    snap[s.name] = s.value;
  }
  EXPECT_EQ(snap.at("obs_test_registry_counter"), 7u);
  EXPECT_EQ(snap.at("obs_test_registry_timer_ns"), 9u);
  // The scheduler's counters registered when their translation unit was
  // linked in (this reference to the pool guarantees that here), so every
  // snapshot carries the fields — as zeros when idle — and bench rows
  // always have them.
  simddb::TaskPool::Get().ParallelFor(1, 1, [](int, size_t) {});
  snap.clear();
  for (const MetricSample& s : MetricsRegistry::Get().Snapshot()) {
    snap[s.name] = s.value;
  }
  EXPECT_TRUE(snap.count("steals"));
  EXPECT_TRUE(snap.count("morsels"));
  EXPECT_TRUE(snap.count("barrier_wait_ns"));
  MetricsRegistry::Get().ResetAll();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(timer.TotalNs(), 0u);
  EnableMetrics(false);
}

TEST(MetricsTest, SnapshotMapAndDeltaSince) {
  EnableMetrics(true);
  static Counter counter("obs_test_delta_counter");
  counter.Reset();
  counter.Add(3);
  const std::map<std::string, uint64_t> before = SnapshotMap();
  EXPECT_EQ(before.at("obs_test_delta_counter"), 3u);
  std::map<std::string, uint64_t> delta = DeltaSince(before);
  EXPECT_EQ(delta.count("obs_test_delta_counter"), 0u);  // no growth
  counter.Add(5);
  delta = DeltaSince(before);
  EXPECT_EQ(delta.at("obs_test_delta_counter"), 5u);
  counter.Reset();
  EnableMetrics(false);
}

// Regression: two concurrent queries, each under its own scoped sink, must
// come out with exactly their own deltas — no bleed between sinks, no loss
// to the global registry. (The original bench snapshot/delta helper was a
// global diff and could not separate overlapping queries at all.)
TEST(MetricsTest, ConcurrentQuerySinksDoNotBleed) {
  EnableMetrics(true);
  static Counter counter("obs_test_sink_counter");
  static PhaseTimer timer("obs_test_sink_timer_ns");
  counter.Reset();
  timer.Reset();

  constexpr uint64_t kAddsA = 40'000, kAddsB = 7'000;
  QueryMetricSink sink_a, sink_b;
  std::atomic<int> ready{0};
  auto run = [&ready](QueryMetricSink* sink, uint64_t adds, uint64_t ns) {
    ScopedMetricSink scope(sink);
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();  // maximize overlap
    for (uint64_t i = 0; i < adds; ++i) counter.Add(1);
    timer.Record(ns);
  };
  std::thread ta(run, &sink_a, kAddsA, uint64_t{111});
  std::thread tb(run, &sink_b, kAddsB, uint64_t{55});
  ta.join();
  tb.join();

  std::map<std::string, uint64_t> a, b;
  for (const MetricSample& s : sink_a.Samples()) a[s.name] = s.value;
  for (const MetricSample& s : sink_b.Samples()) b[s.name] = s.value;
  EXPECT_EQ(a.at("obs_test_sink_counter"), kAddsA);
  EXPECT_EQ(b.at("obs_test_sink_counter"), kAddsB);
  EXPECT_EQ(a.at("obs_test_sink_timer_ns"), 111u);
  EXPECT_EQ(b.at("obs_test_sink_timer_ns"), 55u);
  // The global registry still saw everything.
  EXPECT_EQ(counter.Value(), kAddsA + kAddsB);
  EXPECT_EQ(timer.TotalNs(), 166u);
  counter.Reset();
  timer.Reset();
  EnableMetrics(false);
}

// The sink follows work dispatched onto TaskPool workers: instrument
// updates made by worker lanes inside a ParallelFor land in the
// dispatching thread's sink, not just updates made on the calling thread.
TEST(MetricsTest, QuerySinkExtendsToPoolWorkers) {
  EnableMetrics(true);
  static Counter counter("obs_test_pool_sink_counter");
  counter.Reset();
  constexpr size_t kTasks = 512;
  QueryMetricSink sink;
  {
    ScopedMetricSink scope(&sink);
    simddb::TaskPool::Get().ParallelFor(kTasks, 4,
                                        [](int, size_t) { counter.Add(1); });
  }
  std::map<std::string, uint64_t> got;
  for (const MetricSample& s : sink.Samples()) got[s.name] = s.value;
  EXPECT_EQ(got.at("obs_test_pool_sink_counter"), kTasks);
  EXPECT_EQ(counter.Value(), kTasks);
  counter.Reset();
  EnableMetrics(false);
}

// ---------------------------------------------------------------------------
// Chrome trace

TEST(TraceTest, WritesValidChromeTraceJson) {
  static PhaseTimer timer("obs_test_trace_phase_ns");
  StartTrace();
  EXPECT_TRUE(TraceEnabled());
  for (int i = 0; i < 3; ++i) {
    ScopedPhase phase(timer);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  StopTrace();
  EXPECT_FALSE(TraceEnabled());
  std::ostringstream os;
  WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("obs_test_trace_phase_ns"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  timer.Reset();
  EnableMetrics(false);  // StartTrace turned metrics on
}

TEST(TraceTest, EmptyTraceIsStillValidJson) {
  StartTrace();
  StopTrace();
  EnableMetrics(false);
  std::ostringstream os;
  WriteChromeTrace(os);
  EXPECT_TRUE(IsValidJson(os.str())) << os.str();
}

// ---------------------------------------------------------------------------
// perf_event_open wrapper

TEST(PerfCountersTest, GracefulWhetherAvailableOrNot) {
  PerfCounters perf;
  if (!perf.available()) {
    // Denied syscall / non-Linux stub: everything is a defined no-op.
    PerfCounters::Reading r = perf.Read();
    EXPECT_FALSE(r.valid);
    EXPECT_EQ(r.cycles, 0u);
    r = perf.Stop();
    EXPECT_FALSE(r.valid);
    return;
  }
  perf.Start();
  // Burn some cycles so the counters have something to count.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 1'000'000; ++i) sink = sink + i * i;
  PerfCounters::Reading mid = perf.Read();
  EXPECT_TRUE(mid.valid);
  PerfCounters::Reading end = perf.Stop();
  EXPECT_TRUE(end.valid);
  // Monotone: Stop() reads at or after the mid Read().
  EXPECT_GE(end.cycles, mid.cycles);
  EXPECT_GE(end.instructions, mid.instructions);
  EXPECT_GT(end.instructions + end.cycles, 0u);
}

}  // namespace
}  // namespace simddb::obs
