// NUMA subsystem tests: sysfs parsing (cpulist, fake specs, fabricated
// topology trees), the lane->node block map, hierarchical vs node-strict
// stealing on fake multi-node topologies, placement content preservation,
// and the acceptance bar — partition / radixsort / join outputs stay
// byte-identical across every topology shape, steal scope, and thread
// count (layout depends only on the morsel grid; NUMA is pure policy).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "join/hash_join.h"
#include "numa/placement.h"
#include "numa/topology.h"
#include "obs/metrics.h"
#include "partition/parallel_partition.h"
#include "partition/partition_fn.h"
#include "partition/shuffle.h"
#include "sort/radix_sort.h"
#include "util/aligned_buffer.h"
#include "util/alloc.h"
#include "util/data_gen.h"
#include "util/task_pool.h"

#if defined(__linux__)
#include <fstream>
#include <sys/stat.h>
#endif

namespace simddb {
namespace {

/// Current value of the named obs instrument (0 + test failure if absent).
uint64_t Metric(const char* name) {
  for (const obs::MetricSample& s : obs::MetricsRegistry::Get().Snapshot()) {
    if (std::strcmp(s.name, name) == 0) return s.value;
  }
  ADD_FAILURE() << "metric " << name << " not registered";
  return 0;
}

/// Turns metrics on for one test and restores the default-off state.
struct ScopedMetrics {
  ScopedMetrics() {
    obs::EnableMetrics(true);
    obs::MetricsRegistry::Get().ResetAll();
  }
  ~ScopedMetrics() { obs::EnableMetrics(false); }
};

/// Installs a fake topology + steal scope for one scope, restoring the
/// process defaults on destruction. The topology object outlives every
/// dispatch issued inside the scope (member, destroyed after the reset).
struct ScopedTopology {
  ScopedTopology(int nodes, int cpus, StealScope scope)
      : topo(numa::MakeFakeTopology(nodes, cpus)), prev(GetStealScope()) {
    numa::SetTopologyForTesting(&topo);
    SetStealScope(scope);
  }
  ~ScopedTopology() {
    SetStealScope(prev);
    numa::SetTopologyForTesting(nullptr);
  }
  numa::NumaTopology topo;
  StealScope prev;
};

TEST(NumaTopologyTest, ParseCpuListForms) {
  EXPECT_EQ(numa::ParseCpuList("0\n"), (std::vector<int>{0}));
  EXPECT_EQ(numa::ParseCpuList("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(numa::ParseCpuList("0-2,8-9,15\n"),
            (std::vector<int>{0, 1, 2, 8, 9, 15}));
  EXPECT_EQ(numa::ParseCpuList("7"), (std::vector<int>{7}));
  // Empty list (cpu-less memory node) is valid and empty.
  EXPECT_TRUE(numa::ParseCpuList("").empty());
  EXPECT_TRUE(numa::ParseCpuList("\n").empty());
  // Malformed forms reject to empty.
  EXPECT_TRUE(numa::ParseCpuList("a-b").empty());
  EXPECT_TRUE(numa::ParseCpuList("3-1").empty());
  EXPECT_TRUE(numa::ParseCpuList("1,,2").empty());
  EXPECT_TRUE(numa::ParseCpuList("1-").empty());
  EXPECT_TRUE(numa::ParseCpuList("9999999999").empty());
}

TEST(NumaTopologyTest, ParseNumaFakeSpecs) {
  int n = 0, c = 0;
  EXPECT_TRUE(numa::ParseNumaFake("2x4", &n, &c));
  EXPECT_EQ(n, 2);
  EXPECT_EQ(c, 4);
  EXPECT_TRUE(numa::ParseNumaFake("1x1", &n, &c));
  EXPECT_TRUE(numa::ParseNumaFake("1024x1024", &n, &c));
  EXPECT_FALSE(numa::ParseNumaFake("", &n, &c));
  EXPECT_FALSE(numa::ParseNumaFake(nullptr, &n, &c));
  EXPECT_FALSE(numa::ParseNumaFake("2", &n, &c));
  EXPECT_FALSE(numa::ParseNumaFake("x4", &n, &c));
  EXPECT_FALSE(numa::ParseNumaFake("2x", &n, &c));
  EXPECT_FALSE(numa::ParseNumaFake("2x4x8", &n, &c));
  EXPECT_FALSE(numa::ParseNumaFake("0x4", &n, &c));
  EXPECT_FALSE(numa::ParseNumaFake("2x1025", &n, &c));
}

TEST(NumaTopologyTest, MakeFakeTopologyShapeAndNodeOfCpu) {
  const numa::NumaTopology topo = numa::MakeFakeTopology(2, 4);
  EXPECT_TRUE(topo.fake);
  ASSERT_EQ(topo.node_count(), 2);
  EXPECT_EQ(topo.total_cpus(), 8);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(topo.NodeOfCpu(0), 0);
  EXPECT_EQ(topo.NodeOfCpu(3), 0);
  EXPECT_EQ(topo.NodeOfCpu(4), 1);
  EXPECT_EQ(topo.NodeOfCpu(7), 1);
  EXPECT_EQ(topo.NodeOfCpu(8), -1);
}

TEST(NumaTopologyTest, NodeOfLaneContiguousBlocks) {
  // 8 lanes over 2 nodes: halves.
  for (int lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(numa::NodeOfLane(lane, 8, 2), 0) << lane;
  }
  for (int lane = 4; lane < 8; ++lane) {
    EXPECT_EQ(numa::NodeOfLane(lane, 8, 2), 1) << lane;
  }
  // Single node or single lane: always node 0.
  EXPECT_EQ(numa::NodeOfLane(5, 8, 1), 0);
  EXPECT_EQ(numa::NodeOfLane(0, 1, 4), 0);
  // Monotonic, onto [0, n_nodes), and contiguous for every shape.
  for (int n_nodes : {2, 3, 4}) {
    for (int n_lanes : {4, 7, 8, 16}) {
      if (n_lanes < n_nodes) continue;
      int prev = 0;
      std::vector<int> seen(n_nodes, 0);
      for (int lane = 0; lane < n_lanes; ++lane) {
        const int node = numa::NodeOfLane(lane, n_lanes, n_nodes);
        ASSERT_GE(node, 0);
        ASSERT_LT(node, n_nodes);
        ASSERT_GE(node, prev) << "non-contiguous block";
        prev = node;
        ++seen[node];
      }
      for (int k = 0; k < n_nodes; ++k) {
        EXPECT_GT(seen[k], 0) << "node " << k << " owns no lanes "
                              << n_lanes << "/" << n_nodes;
      }
    }
  }
  // Out-of-range lanes clamp instead of mapping past the last node.
  EXPECT_EQ(numa::NodeOfLane(99, 8, 2), 1);
}

#if defined(__linux__)
TEST(NumaTopologyTest, DiscoverTopologyParsesFabricatedSysfsTree) {
  char tmpl[] = "/tmp/simddb_numa_test_XXXXXX";
  char* root = mkdtemp(tmpl);
  ASSERT_NE(root, nullptr);
  const std::string r(root);
  const auto write_file = [](const std::string& path, const char* text) {
    std::ofstream f(path);
    ASSERT_TRUE(f.is_open()) << path;
    f << text;
  };
  ASSERT_EQ(mkdir((r + "/node0").c_str(), 0755), 0);
  ASSERT_EQ(mkdir((r + "/node1").c_str(), 0755), 0);
  ASSERT_EQ(mkdir((r + "/node2").c_str(), 0755), 0);
  write_file(r + "/online", "0-2\n");
  write_file(r + "/node0/cpulist", "0-3\n");
  write_file(r + "/node0/meminfo", "Node 0 MemTotal:     1024 kB\n");
  // node1 is a cpu-less memory node: it must be skipped.
  write_file(r + "/node1/cpulist", "\n");
  write_file(r + "/node1/meminfo", "Node 1 MemTotal:     4096 kB\n");
  write_file(r + "/node2/cpulist", "4-7,12-15\n");
  write_file(r + "/node2/meminfo", "Node 2 MemTotal:     2048 kB\n");

  const numa::NumaTopology topo = numa::DiscoverTopology(r.c_str());
  EXPECT_FALSE(topo.fake);
  ASSERT_EQ(topo.node_count(), 2);
  EXPECT_EQ(topo.nodes[0].id, 0);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.nodes[0].mem_bytes, 1024u * 1024);
  EXPECT_EQ(topo.nodes[1].id, 2);
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{4, 5, 6, 7, 12, 13, 14, 15}));
  EXPECT_EQ(topo.nodes[1].mem_bytes, 2048u * 1024);
  EXPECT_EQ(topo.NodeOfCpu(13), 1);  // index, not sysfs id
  EXPECT_EQ(topo.NodeOfCpu(8), -1);
}
#endif  // __linux__

TEST(NumaTopologyTest, DiscoverTopologyFallsBackWithoutSysfs) {
  const numa::NumaTopology topo =
      numa::DiscoverTopology("/nonexistent/simddb/sysfs");
  EXPECT_FALSE(topo.fake);
  ASSERT_EQ(topo.node_count(), 1);
  EXPECT_EQ(topo.nodes[0].id, 0);
  EXPECT_GE(topo.total_cpus(), 1);
}

TEST(NumaTopologyTest, TopologyOverrideRoundTrip) {
  const numa::NumaTopology fake = numa::MakeFakeTopology(4, 2);
  numa::SetTopologyForTesting(&fake);
  EXPECT_TRUE(numa::Topology().fake);
  EXPECT_EQ(numa::Topology().node_count(), 4);
  numa::SetTopologyForTesting(nullptr);
  EXPECT_GE(numa::Topology().node_count(), 1);
}

// Skewed workload on a fake 2-node topology: node 0's lanes own the slow
// tasks, so node 1's lanes run dry and must cross the node boundary under
// hierarchical stealing — and must NOT under kNodeStrict.
void RunSkewedTwoNodeJob() {
  constexpr size_t kTasks = 32;  // 8 lanes x 4 tasks; node 0 owns 0..15
  TaskPool::Get().ParallelFor(kTasks, 8, [&](int, size_t task) {
    if (task < kTasks / 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
}

TEST(NumaStealTest, HierarchicalStealsCrossNodesWhenLocalNodeDry) {
  ScopedTopology numa_env(2, 4, StealScope::kHierarchical);
  ScopedMetrics metrics;
  RunSkewedTwoNodeJob();
  EXPECT_EQ(Metric("morsels"), 32u);
  EXPECT_GT(Metric("steals_remote"), 0u);
  EXPECT_EQ(Metric("steals_local") + Metric("steals_remote"),
            Metric("steals"));
}

TEST(NumaStealTest, StrictScopeNeverStealsAcrossNodes) {
  ScopedTopology numa_env(2, 4, StealScope::kNodeStrict);
  ScopedMetrics metrics;
  RunSkewedTwoNodeJob();
  // Every task still runs (owners drain their own deques) but no morsel
  // migrated across the node boundary.
  EXPECT_EQ(Metric("morsels"), 32u);
  EXPECT_EQ(Metric("steals_remote"), 0u);
}

TEST(NumaPlacementTest, PlaceBufferPreservesContentsOnFakeTopology) {
  ScopedTopology numa_env(2, 4, StealScope::kHierarchical);
  const size_t n = (size_t{1} << 16) + 37;
  AlignedBuffer<uint32_t> buf(n);
  FillUniform(buf.data(), n, 51, 0, 0xFFFFFFFFu);
  std::vector<uint32_t> want(buf.data(), buf.data() + n);
  numa::PlaceBuffer(buf.data(), n * sizeof(uint32_t), 8,
                    numa::Placement::kNodeLocal);
  EXPECT_EQ(std::memcmp(buf.data(), want.data(), n * sizeof(uint32_t)), 0);
  numa::PlaceBuffer(buf.data(), n * sizeof(uint32_t), 8,
                    numa::Placement::kInterleaved);
  EXPECT_EQ(std::memcmp(buf.data(), want.data(), n * sizeof(uint32_t)), 0);
}

TEST(NumaPlacementTest, PlaceBufferCountsFirstTouchedPages) {
  ScopedTopology numa_env(2, 4, StealScope::kHierarchical);
  ScopedMetrics metrics;
  const size_t bytes = 64 * PageBytes();
  AlignedBuffer<uint32_t> buf(bytes / sizeof(uint32_t));
  numa::PlaceBuffer(buf.data(), bytes, 8, numa::Placement::kNodeLocal);
  // The buffer spans >= 64 pages; every one is touched exactly once.
  EXPECT_GE(Metric("pages_first_touched"), 64u);
}

TEST(NumaPlacementTest, PlaceBufferIsNoOpOnRealSingleNode) {
  if (numa::Topology().node_count() > 1 || numa::Topology().fake) {
    GTEST_SKIP() << "host is not a plain single-node topology";
  }
  ScopedMetrics metrics;
  const size_t n = size_t{1} << 12;
  AlignedBuffer<uint32_t> buf(n);
  FillSequential(buf.data(), n, 7);
  numa::PlaceBuffer(buf.data(), n * sizeof(uint32_t), 8,
                    numa::Placement::kNodeLocal);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(buf[i], 7 + i);
  EXPECT_EQ(Metric("pages_first_touched"), 0u);
}

// The acceptance bar: one partition pass produces byte-identical output
// for every topology shape x steal scope x thread count, because layout
// depends only on the morsel grid. The reference runs with the host's
// real topology and default scope.
TEST(NumaDeterminismTest, PartitionByteIdenticalAcrossTopologiesAndScopes) {
  const size_t n = (size_t{1} << 17) + 345;  // 9 morsels
  const uint32_t fanout = 256;
  AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
  FillUniform(keys.data(), n, 61, 0, 0xFFFFFFFFu);
  FillSequential(pays.data(), n, 0);
  PartitionFn fn = PartitionFn::Hash(fanout);
  const size_t cap = ShuffleCapacity(n);
  for (Isa isa : {Isa::kScalar, Isa::kAvx512}) {
    if (!IsaSupported(isa)) continue;
    AlignedBuffer<uint32_t> ref_k(cap), ref_p(cap);
    std::vector<uint32_t> ref_starts(fanout + 1);
    {
      ParallelPartitionResources res;
      ParallelPartitionPass(fn, keys.data(), pays.data(), n, ref_k.data(),
                            ref_p.data(), isa, 8, &res, ref_starts.data());
    }
    const std::pair<int, int> shapes[] = {{1, 8}, {2, 4}, {4, 2}};
    for (const std::pair<int, int>& shape : shapes) {
      for (StealScope scope :
           {StealScope::kHierarchical, StealScope::kNodeStrict}) {
        for (int threads : {1, 8}) {
          ScopedTopology numa_env(shape.first, shape.second, scope);
          AlignedBuffer<uint32_t> k(cap), p(cap);
          std::vector<uint32_t> starts(fanout + 1);
          ParallelPartitionResources res;
          ParallelPartitionPass(fn, keys.data(), pays.data(), n, k.data(),
                                p.data(), isa, threads, &res, starts.data());
          const std::string what =
              std::string(IsaName(isa)) + " topo=" +
              std::to_string(shape.first) + "x" +
              std::to_string(shape.second) + " strict=" +
              (scope == StealScope::kNodeStrict ? "1" : "0") +
              " t=" + std::to_string(threads);
          ASSERT_EQ(starts, ref_starts) << what;
          ASSERT_EQ(std::memcmp(k.data(), ref_k.data(), n * 4), 0) << what;
          ASSERT_EQ(std::memcmp(p.data(), ref_p.data(), n * 4), 0) << what;
        }
      }
    }
  }
}

TEST(NumaDeterminismTest, RadixSortByteIdenticalAcrossTopologies) {
  const size_t n = (size_t{1} << 16) + 99;
  AlignedBuffer<uint32_t> base_k(n + 16), base_p(n + 16);
  FillUniform(base_k.data(), n, 67, 0, 0xFFFFFFFFu);
  FillSequential(base_p.data(), n, 0);
  RadixSortConfig cfg;
  cfg.isa = Isa::kScalar;
  cfg.threads = 8;
  std::vector<uint32_t> ref_k, ref_p;
  {
    AlignedBuffer<uint32_t> k(n + 16), p(n + 16), sk(n + 16), sp(n + 16);
    std::memcpy(k.data(), base_k.data(), n * 4);
    std::memcpy(p.data(), base_p.data(), n * 4);
    RadixSortPairs(k.data(), p.data(), sk.data(), sp.data(), n, cfg);
    ref_k.assign(k.data(), k.data() + n);
    ref_p.assign(p.data(), p.data() + n);
    for (size_t i = 1; i < n; ++i) ASSERT_LE(ref_k[i - 1], ref_k[i]);
  }
  for (StealScope scope :
       {StealScope::kHierarchical, StealScope::kNodeStrict}) {
    ScopedTopology numa_env(2, 4, scope);
    AlignedBuffer<uint32_t> k(n + 16), p(n + 16), sk(n + 16), sp(n + 16);
    std::memcpy(k.data(), base_k.data(), n * 4);
    std::memcpy(p.data(), base_p.data(), n * 4);
    RadixSortPairs(k.data(), p.data(), sk.data(), sp.data(), n, cfg);
    ASSERT_EQ(std::memcmp(k.data(), ref_k.data(), n * 4), 0)
        << "strict=" << (scope == StealScope::kNodeStrict);
    ASSERT_EQ(std::memcmp(p.data(), ref_p.data(), n * 4), 0)
        << "strict=" << (scope == StealScope::kNodeStrict);
  }
}

TEST(NumaDeterminismTest, MaxPartitionJoinByteIdenticalAcrossTopologies) {
  const size_t rn = size_t{1} << 14;
  const size_t sn = (size_t{1} << 15) + 111;
  AlignedBuffer<uint32_t> rk(rn + 16), rp(rn + 16), sk(sn + 16), sp(sn + 16);
  FillUniqueShuffled(rk.data(), rn, 71, 1);
  FillSequential(rp.data(), rn, 0);
  FillProbeKeys(sk.data(), sn, rk.data(), rn, 0.9, 73);
  FillSequential(sp.data(), sn, 0);
  JoinRelation r{rk.data(), rp.data(), rn};
  JoinRelation s{sk.data(), sp.data(), sn};
  JoinConfig cfg;
  cfg.isa = Isa::kScalar;
  cfg.threads = 8;
  std::vector<uint32_t> ref_k, ref_rp, ref_sp;
  size_t ref_matches = 0;
  {
    AlignedBuffer<uint32_t> ok(sn + 16), orp(sn + 16), osp(sn + 16);
    ref_matches =
        HashJoinMaxPartition(r, s, cfg, ok.data(), orp.data(), osp.data());
    ASSERT_GT(ref_matches, 0u);
    ref_k.assign(ok.data(), ok.data() + ref_matches);
    ref_rp.assign(orp.data(), orp.data() + ref_matches);
    ref_sp.assign(osp.data(), osp.data() + ref_matches);
  }
  for (StealScope scope :
       {StealScope::kHierarchical, StealScope::kNodeStrict}) {
    ScopedTopology numa_env(2, 4, scope);
    AlignedBuffer<uint32_t> ok(sn + 16), orp(sn + 16), osp(sn + 16);
    const size_t matches =
        HashJoinMaxPartition(r, s, cfg, ok.data(), orp.data(), osp.data());
    const std::string what =
        std::string("strict=") + (scope == StealScope::kNodeStrict ? "1" : "0");
    ASSERT_EQ(matches, ref_matches) << what;
    ASSERT_EQ(std::memcmp(ok.data(), ref_k.data(), matches * 4), 0) << what;
    ASSERT_EQ(std::memcmp(orp.data(), ref_rp.data(), matches * 4), 0) << what;
    ASSERT_EQ(std::memcmp(osp.data(), ref_sp.data(), matches * 4), 0) << what;
  }
}

}  // namespace
}  // namespace simddb
