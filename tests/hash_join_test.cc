// Hash join tests (§9): all three variants, scalar and vectorized, single-
// and multi-threaded, must produce exactly the reference join result.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/isa.h"
#include "partition/histogram.h"
#include "join/hash_join.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb {
namespace {

enum class Variant { kNoPartition, kMinPartition, kMaxPartition };

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kNoPartition: return "nopart";
    case Variant::kMinPartition: return "minpart";
    case Variant::kMaxPartition: return "maxpart";
  }
  return "?";
}

struct JoinRow {
  uint32_t key, rpay, spay;
  bool operator==(const JoinRow&) const = default;
  bool operator<(const JoinRow& o) const {
    return std::tie(key, rpay, spay) < std::tie(o.key, o.rpay, o.spay);
  }
};

class HashJoinTest
    : public ::testing::TestWithParam<
          std::tuple<Variant, Isa, int, double>> {};

TEST_P(HashJoinTest, MatchesReferenceJoin) {
  auto [variant, isa, threads, hit_rate] = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();

  const size_t r_n = 20'000;
  const size_t s_n = 100'000;
  std::vector<uint32_t> r_keys(r_n), r_pays(r_n), s_keys(s_n), s_pays(s_n);
  FillUniqueShuffled(r_keys.data(), r_n, 3, 1);  // FK join: unique R keys
  FillSequential(r_pays.data(), r_n, 1'000'000);
  FillProbeKeys(s_keys.data(), s_n, r_keys.data(), r_n, hit_rate, 5);
  FillSequential(s_pays.data(), s_n, 2'000'000);

  // Reference.
  std::unordered_map<uint32_t, uint32_t> map;
  for (size_t i = 0; i < r_n; ++i) map[r_keys[i]] = r_pays[i];
  std::vector<JoinRow> want;
  for (size_t i = 0; i < s_n; ++i) {
    auto it = map.find(s_keys[i]);
    if (it != map.end()) want.push_back({s_keys[i], it->second, s_pays[i]});
  }
  std::sort(want.begin(), want.end());

  JoinRelation r{r_keys.data(), r_pays.data(), r_n};
  JoinRelation s{s_keys.data(), s_pays.data(), s_n};
  JoinConfig cfg;
  cfg.isa = isa;
  cfg.threads = threads;
  AlignedBuffer<uint32_t> ok(s_n + 16), orp(s_n + 16), osp(s_n + 16);
  JoinTimings t;
  size_t got = 0;
  switch (variant) {
    case Variant::kNoPartition:
      got = HashJoinNoPartition(r, s, cfg, ok.data(), orp.data(), osp.data(),
                                &t);
      break;
    case Variant::kMinPartition:
      got = HashJoinMinPartition(r, s, cfg, ok.data(), orp.data(),
                                 osp.data(), &t);
      break;
    case Variant::kMaxPartition:
      got = HashJoinMaxPartition(r, s, cfg, ok.data(), orp.data(),
                                 osp.data(), &t);
      break;
  }
  ASSERT_EQ(got, want.size());
  std::vector<JoinRow> rows(got);
  for (size_t i = 0; i < got; ++i) rows[i] = {ok[i], orp[i], osp[i]};
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, want);
  EXPECT_GE(t.Total(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HashJoinTest,
    ::testing::Combine(::testing::Values(Variant::kNoPartition,
                                         Variant::kMinPartition,
                                         Variant::kMaxPartition),
                       ::testing::Values(Isa::kScalar, Isa::kAvx512),
                       ::testing::Values(1, 4),
                       ::testing::Values(1.0, 0.4)),
    [](const auto& info) {
      return std::string(VariantName(std::get<0>(info.param))) + "_" +
             IsaName(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param)) + "_hit" +
             std::to_string(static_cast<int>(std::get<3>(info.param) * 100));
    });

TEST(HashJoin, EmptyRelations) {
  JoinConfig cfg;
  AlignedBuffer<uint32_t> ok(16), orp(16), osp(16);
  std::vector<uint32_t> keys = {1, 2, 3}, pays = {4, 5, 6};
  JoinRelation empty{keys.data(), pays.data(), 0};
  JoinRelation some{keys.data(), pays.data(), 3};
  EXPECT_EQ(HashJoinNoPartition(empty, some, cfg, ok.data(), orp.data(),
                                osp.data()),
            0u);
  EXPECT_EQ(HashJoinNoPartition(some, empty, cfg, ok.data(), orp.data(),
                                osp.data()),
            0u);
  EXPECT_EQ(HashJoinMaxPartition(empty, some, cfg, ok.data(), orp.data(),
                                 osp.data()),
            0u);
}

TEST(HashJoin, TinyRelationsAllVariants) {
  std::vector<uint32_t> r_keys = {7, 3, 9}, r_pays = {70, 30, 90};
  std::vector<uint32_t> s_keys = {3, 3, 9, 1}, s_pays = {1, 2, 3, 4};
  JoinRelation r{r_keys.data(), r_pays.data(), 3};
  JoinRelation s{s_keys.data(), s_pays.data(), 4};
  JoinConfig cfg;
  cfg.isa = IsaSupported(Isa::kAvx512) ? Isa::kAvx512 : Isa::kScalar;
  AlignedBuffer<uint32_t> ok(32), orp(32), osp(32);
  for (int v = 0; v < 3; ++v) {
    size_t got = v == 0   ? HashJoinNoPartition(r, s, cfg, ok.data(),
                                                orp.data(), osp.data())
                 : v == 1 ? HashJoinMinPartition(r, s, cfg, ok.data(),
                                                 orp.data(), osp.data())
                          : HashJoinMaxPartition(r, s, cfg, ok.data(),
                                                 orp.data(), osp.data());
    ASSERT_EQ(got, 3u) << "variant " << v;
    std::vector<JoinRow> rows(got);
    for (size_t i = 0; i < got; ++i) rows[i] = {ok[i], orp[i], osp[i]};
    std::sort(rows.begin(), rows.end());
    std::vector<JoinRow> want = {{3, 30, 1}, {3, 30, 2}, {9, 90, 3}};
    EXPECT_EQ(rows, want) << "variant " << v;
  }
}

TEST(HashJoin, MaxPartitionTwoPassScalarPath) {
  // Regression: the scalar histogram must honour the generalized hash-radix
  // partition function (total/shift fields) used by two-pass partitioning;
  // it once fell back to plain multiplicative hashing, desynchronizing
  // histogram and shuffle and corrupting the partition bounds.
  const size_t n = 1u << 19;
  std::vector<uint32_t> r_keys(n), r_pays(n), s_keys(n), s_pays(n);
  FillUniqueShuffled(r_keys.data(), n, 21, 1);
  FillSequential(r_pays.data(), n, 0);
  FillProbeKeys(s_keys.data(), n, r_keys.data(), n, 1.0, 23);
  FillSequential(s_pays.data(), n, 0);
  JoinConfig cfg;
  cfg.isa = Isa::kScalar;
  cfg.threads = 1;
  cfg.target_part_tuples = 256;  // n/256 = 2048 parts -> 11 bits -> 2 passes
  JoinRelation r{r_keys.data(), r_pays.data(), n};
  JoinRelation s{s_keys.data(), s_pays.data(), n};
  AlignedBuffer<uint32_t> ok(n + 16), orp(n + 16), osp(n + 16);
  size_t got =
      HashJoinMaxPartition(r, s, cfg, ok.data(), orp.data(), osp.data());
  ASSERT_EQ(got, n);  // hit rate 1.0 and unique R keys: every probe matches
  std::unordered_map<uint32_t, uint32_t> map;
  for (size_t i = 0; i < n; ++i) map[r_keys[i]] = r_pays[i];
  for (size_t i = 0; i < got; ++i) {
    auto it = map.find(ok[i]);
    ASSERT_NE(it, map.end());
    ASSERT_EQ(orp[i], it->second);
  }
}

TEST(Histogram, ScalarHonoursHashRadixForm) {
  // Companion regression at the histogram level.
  const size_t n = 40000;
  std::vector<uint32_t> keys(n);
  FillUniform(keys.data(), n, 3, 0, 0xFFFFFFFFu);
  PartitionFn fn = PartitionFn::HashRadix(4, 6, 1u << 10);
  std::vector<uint32_t> hist(fn.fanout);
  HistogramScalar(fn, keys.data(), n, hist.data());
  std::vector<uint32_t> want(fn.fanout, 0);
  for (uint32_t k : keys) ++want[fn(k)];
  EXPECT_EQ(hist, want);
}

TEST(HashJoin, MaxPartitionTwoPassPath) {
  // Force the two-pass partitioning path (total_bits > 8) with a small
  // per-part target.
  const size_t r_n = 200'000;
  const size_t s_n = 200'000;
  std::vector<uint32_t> r_keys(r_n), r_pays(r_n), s_keys(s_n), s_pays(s_n);
  FillUniqueShuffled(r_keys.data(), r_n, 11, 1);
  FillSequential(r_pays.data(), r_n, 0);
  FillProbeKeys(s_keys.data(), s_n, r_keys.data(), r_n, 0.9, 13);
  FillSequential(s_pays.data(), s_n, 0);
  JoinConfig cfg;
  cfg.isa = IsaSupported(Isa::kAvx512) ? Isa::kAvx512 : Isa::kScalar;
  cfg.threads = 3;
  cfg.target_part_tuples = 128;  // ~2048 parts -> 11 bits -> two passes
  JoinRelation r{r_keys.data(), r_pays.data(), r_n};
  JoinRelation s{s_keys.data(), s_pays.data(), s_n};
  AlignedBuffer<uint32_t> ok(s_n + 16), orp(s_n + 16), osp(s_n + 16);
  size_t got =
      HashJoinMaxPartition(r, s, cfg, ok.data(), orp.data(), osp.data());
  // Verify counts and spot-check correctness against a map.
  std::unordered_map<uint32_t, uint32_t> map;
  for (size_t i = 0; i < r_n; ++i) map[r_keys[i]] = r_pays[i];
  size_t want = 0;
  for (size_t i = 0; i < s_n; ++i) want += map.count(s_keys[i]);
  ASSERT_EQ(got, want);
  for (size_t i = 0; i < got; ++i) {
    auto it = map.find(ok[i]);
    ASSERT_NE(it, map.end());
    ASSERT_EQ(orp[i], it->second);
  }
}

}  // namespace
}  // namespace simddb
