// Range-partitioned sort tests: sortedness, permutation integrity, and
// agreement with std::sort across ISAs, fanouts, and skewed inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/isa.h"
#include "numa/topology.h"
#include "sort/range_sort.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb {
namespace {

class RangeSortTest
    : public ::testing::TestWithParam<std::tuple<Isa, uint32_t, size_t>> {};

TEST_P(RangeSortTest, SortsCorrectly) {
  auto [isa, fanout, n] = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  RangeSortConfig cfg;
  cfg.isa = isa;
  cfg.fanout = fanout;
  AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
  AlignedBuffer<uint32_t> sk(n + 16), sp(n + 16);
  FillUniform(keys.data(), n, 7, 0, 0xFFFFFFFFu);
  FillSequential(pays.data(), n, 0);
  std::vector<uint32_t> orig(keys.data(), keys.data() + n);
  std::vector<uint32_t> want = orig;
  std::sort(want.begin(), want.end());

  RangeSortPairs(keys.data(), pays.data(), sk.data(), sp.data(), n, cfg);

  std::vector<bool> seen(n, false);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], want[i]) << "@" << i;
    ASSERT_LT(pays[i], n);
    ASSERT_FALSE(seen[pays[i]]);
    seen[pays[i]] = true;
    ASSERT_EQ(keys[i], orig[pays[i]]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeSortTest,
    ::testing::Combine(::testing::Values(Isa::kScalar, Isa::kAvx512),
                       ::testing::Values<uint32_t>(2, 17, 289),
                       ::testing::Values<size_t>(3, 1000, 120'001)),
    [](const auto& info) {
      return std::string(IsaName(std::get<0>(info.param))) + "_f" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(RangeSort, SkewedInputStillSorts) {
  // Zipf keys give wildly unbalanced range partitions; the sampled
  // splitters adapt and correctness must hold either way.
  const size_t n = 80'000;
  RangeSortConfig cfg;
  cfg.isa = IsaSupported(Isa::kAvx512) ? Isa::kAvx512 : Isa::kScalar;
  AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16), sk(n + 16), sp(n + 16);
  FillZipf(keys.data(), n, 5000, 0.9, 3);
  FillSequential(pays.data(), n, 0);
  std::vector<uint32_t> want(keys.data(), keys.data() + n);
  std::sort(want.begin(), want.end());
  RangeSortPairs(keys.data(), pays.data(), sk.data(), sp.data(), n, cfg);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(keys[i], want[i]) << i;
}

// The merge scratch is placed node-locally (numa::PlaceBuffer); placement
// is value-preserving, so the sorted output must be byte-identical on
// every fake topology shape.
TEST(RangeSort, ByteIdenticalAcrossFakeTopologies) {
  const size_t n = 60'000;
  RangeSortConfig cfg;
  cfg.isa = IsaSupported(Isa::kAvx512) ? Isa::kAvx512 : Isa::kScalar;
  auto run = [&](int nodes, int cpus) {
    const numa::NumaTopology topo = numa::MakeFakeTopology(nodes, cpus);
    numa::SetTopologyForTesting(&topo);
    AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16), sk(n + 16),
        sp(n + 16);
    FillUniform(keys.data(), n, 11, 0, 0xFFFFFFFFu);
    FillSequential(pays.data(), n, 0);
    RangeSortPairs(keys.data(), pays.data(), sk.data(), sp.data(), n, cfg);
    numa::SetTopologyForTesting(nullptr);
    std::vector<uint32_t> out(keys.data(), keys.data() + n);
    out.insert(out.end(), pays.data(), pays.data() + n);
    return out;
  };
  const std::vector<uint32_t> want = run(1, 8);
  EXPECT_EQ(run(2, 4), want);
  EXPECT_EQ(run(4, 2), want);
}

TEST(RangeSort, AllEqualKeys) {
  const size_t n = 5000;
  RangeSortConfig cfg;
  cfg.isa = IsaSupported(Isa::kAvx512) ? Isa::kAvx512 : Isa::kScalar;
  AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16), sk(n + 16), sp(n + 16);
  for (size_t i = 0; i < n; ++i) keys[i] = 99;
  FillSequential(pays.data(), n, 0);
  RangeSortPairs(keys.data(), pays.data(), sk.data(), sp.data(), n, cfg);
  std::vector<bool> seen(n, false);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], 99u);
    ASSERT_FALSE(seen[pays[i]]);
    seen[pays[i]] = true;
  }
}

}  // namespace
}  // namespace simddb
