// Network serving layer tests (src/net/): protocol parser property
// sweeps (every optional-clause order, bounds at 0/UINT32_MAX, weight
// extremes), the malformed-input suite (truncated lines, oversized
// tokens, NUL/CRLF/garbage bytes never crash and always produce a
// structured parse error), encode/decode round-trips, and the socket
// acceptance bar: a client-issued QUERY over a real loopback socket
// (Unix-domain and TCP) returns rows byte-identical to the same
// QuerySpec run in-process through QuerySession::Execute, under
// concurrent clients x executor threads {1, 8}, with admission rejects
// and parse errors reported on the wire and graceful drain delivering
// every in-flight response before the sockets close.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "exec/pipeline.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "server/catalog.h"
#include "server/scheduler.h"
#include "server/session.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"
#include "util/rng.h"

namespace simddb {
namespace {

using exec::ExecConfig;
using exec::PipelineMode;
using exec::ScanMode;
using net::Client;
using net::Command;
using net::ParsedQuery;
using net::ParseError;
using net::Request;
using net::Server;
using net::ServerOptions;
using net::WireResult;
using net::WireRow;
using net::WireTable;
using server::AdmissionPolicy;
using server::Catalog;
using server::QueryScheduler;
using server::QuerySession;
using server::QuerySpec;
using server::ResultSet;

// ---------------------------------------------------------------------------
// Parser: valid requests.

TEST(NetProtocolParse, MinimalQueryDefaults) {
  Request req;
  ParseError err;
  ASSERT_TRUE(net::ParseRequest("QUERY build=R probe=S", &req, &err));
  EXPECT_EQ(req.cmd, Command::kQuery);
  EXPECT_EQ(req.query.build_table, "R");
  EXPECT_EQ(req.query.probe_table, "S");
  EXPECT_EQ(req.query.r_lo, 0u);
  EXPECT_EQ(req.query.r_hi, 0xFFFFFFFFu);
  EXPECT_EQ(req.query.s_lo, 0u);
  EXPECT_EQ(req.query.s_hi, 0xFFFFFFFFu);
  EXPECT_EQ(req.query.weight, 1u);
  EXPECT_EQ(req.query.scan_mode, ScanMode::kCompact);
  EXPECT_FALSE(req.query.packed);
  EXPECT_FALSE(req.query.has_isa);
}

TEST(NetProtocolParse, AllClausesAnyOrder) {
  // The full clause set in every rotation plus a few shuffles: clause
  // order must never change the parse.
  const std::vector<std::string> clauses = {
      "build=R",      "probe=S",      "r=[10,200]", "s=[5,99]",
      "weight=4",     "scan=bitmap",  "storage=packed", "isa=avx2"};
  std::vector<size_t> idx(clauses.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  auto check = [&](const std::vector<size_t>& order) {
    std::string line = "QUERY";
    for (size_t i : order) line += " " + clauses[i];
    Request req;
    ParseError err;
    ASSERT_TRUE(net::ParseRequest(line, &req, &err))
        << line << " -> " << net::FormatParseError(err);
    EXPECT_EQ(req.query.build_table, "R");
    EXPECT_EQ(req.query.probe_table, "S");
    EXPECT_EQ(req.query.r_lo, 10u);
    EXPECT_EQ(req.query.r_hi, 200u);
    EXPECT_EQ(req.query.s_lo, 5u);
    EXPECT_EQ(req.query.s_hi, 99u);
    EXPECT_EQ(req.query.weight, 4u);
    EXPECT_EQ(req.query.scan_mode, ScanMode::kBitmap);
    EXPECT_TRUE(req.query.packed);
    EXPECT_TRUE(req.query.has_isa);
    EXPECT_EQ(req.query.isa, Isa::kAvx2);
  };

  // All rotations.
  for (size_t r = 0; r < idx.size(); ++r) {
    std::vector<size_t> order;
    for (size_t i = 0; i < idx.size(); ++i) {
      order.push_back(idx[(i + r) % idx.size()]);
    }
    check(order);
  }
  // Deterministic shuffles.
  Pcg32 rng(77);
  for (int t = 0; t < 50; ++t) {
    std::vector<size_t> order = idx;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.Next() % i]);
    }
    check(order);
  }
}

TEST(NetProtocolParse, OptionalClauseSubsetsAnyPosition) {
  // Each optional clause alone, in front of / between / after the
  // required pair.
  const std::vector<std::pair<std::string, int>> optionals = {
      {"r=[0,4294967295]", 0}, {"s=[0,0]", 1},      {"weight=65536", 2},
      {"scan=compact", 3},     {"storage=raw", 4},  {"isa=scalar", 5}};
  for (const auto& [clause, which] : optionals) {
    for (const std::string& line :
         {"QUERY " + clause + " build=R probe=S",
          "QUERY build=R " + clause + " probe=S",
          "QUERY build=R probe=S " + clause}) {
      Request req;
      ParseError err;
      ASSERT_TRUE(net::ParseRequest(line, &req, &err))
          << line << " -> " << net::FormatParseError(err);
      switch (which) {
        case 0:
          EXPECT_EQ(req.query.r_lo, 0u);
          EXPECT_EQ(req.query.r_hi, 0xFFFFFFFFu);
          break;
        case 1:
          EXPECT_EQ(req.query.s_lo, 0u);
          EXPECT_EQ(req.query.s_hi, 0u);
          break;
        case 2:
          EXPECT_EQ(req.query.weight, 65536u);
          break;
        case 3:
          EXPECT_EQ(req.query.scan_mode, ScanMode::kCompact);
          break;
        case 4:
          EXPECT_FALSE(req.query.packed);
          break;
        case 5:
          EXPECT_TRUE(req.query.has_isa);
          EXPECT_EQ(req.query.isa, Isa::kScalar);
          break;
      }
    }
  }
}

TEST(NetProtocolParse, BoundsAndWeightExtremes) {
  Request req;
  ParseError err;
  ASSERT_TRUE(net::ParseRequest(
      "QUERY build=R probe=S r=[0,0] s=[4294967295,4294967295] weight=1",
      &req, &err));
  EXPECT_EQ(req.query.r_lo, 0u);
  EXPECT_EQ(req.query.r_hi, 0u);
  EXPECT_EQ(req.query.s_lo, 0xFFFFFFFFu);
  EXPECT_EQ(req.query.s_hi, 0xFFFFFFFFu);
  EXPECT_EQ(req.query.weight, 1u);

  ASSERT_TRUE(net::ParseRequest("QUERY build=R probe=S weight=65536", &req,
                                &err));
  EXPECT_EQ(req.query.weight, 65536u);

  // Inverted range parses (it is an empty predicate, not a syntax error).
  ASSERT_TRUE(net::ParseRequest("QUERY build=R probe=S r=[9,3]", &req, &err));
  EXPECT_EQ(req.query.r_lo, 9u);
  EXPECT_EQ(req.query.r_hi, 3u);
}

TEST(NetProtocolParse, SimpleCommandsAndCrLf) {
  Request req;
  ParseError err;
  EXPECT_TRUE(net::ParseRequest("PING", &req, &err));
  EXPECT_EQ(req.cmd, Command::kPing);
  EXPECT_TRUE(net::ParseRequest("TABLES", &req, &err));
  EXPECT_EQ(req.cmd, Command::kTables);
  EXPECT_TRUE(net::ParseRequest("STATS", &req, &err));
  EXPECT_EQ(req.cmd, Command::kStats);
  EXPECT_TRUE(net::ParseRequest("QUIT", &req, &err));
  EXPECT_EQ(req.cmd, Command::kQuit);
  EXPECT_TRUE(net::ParseRequest("SHUTDOWN", &req, &err));
  EXPECT_EQ(req.cmd, Command::kShutdown);
  // Telnet-style CRLF: the '\r' is stripped, everywhere.
  EXPECT_TRUE(net::ParseRequest("PING\r", &req, &err));
  EXPECT_EQ(req.cmd, Command::kPing);
  EXPECT_TRUE(net::ParseRequest("QUERY build=R probe=S\r", &req, &err));
  EXPECT_EQ(req.query.probe_table, "S");
  // Extra whitespace between clauses is fine.
  EXPECT_TRUE(net::ParseRequest("QUERY   build=R \t probe=S  ", &req, &err));
}

// ---------------------------------------------------------------------------
// Parser: malformed input. Every case must fail with a structured error —
// sensible position, non-empty expected message — and never crash.

struct BadLine {
  const char* line;
  const char* expected_substr;  // must appear in err.expected
};

TEST(NetProtocolParse, MalformedSuite) {
  const BadLine cases[] = {
      {"", "command"},
      {"   ", "command"},
      {"query build=R probe=S", "command"},  // keywords are case-sensitive
      {"EXPLAIN build=R", "command"},
      {"PING extra", "end of line"},
      {"QUIT now", "end of line"},
      {"QUERY", "build=<table>"},
      {"QUERY build=R", "probe=<table>"},
      {"QUERY probe=S", "build=<table>"},
      {"QUERY build= probe=S", "table name"},
      {"QUERY build=R! probe=S", "table name"},
      {"QUERY build=R probe=S r=", "range"},
      {"QUERY build=R probe=S r=[5", "range"},
      {"QUERY build=R probe=S r=[5,", "range"},
      {"QUERY build=R probe=S r=[5,]", "range"},
      {"QUERY build=R probe=S r=[,5]", "range"},
      {"QUERY build=R probe=S r=[a,b]", "range"},
      {"QUERY build=R probe=S r=[1x,2]", "range"},
      {"QUERY build=R probe=S r=[-1,2]", "range"},
      {"QUERY build=R probe=S r=[1,4294967296]", "range"},  // > UINT32_MAX
      {"QUERY build=R probe=S r=(1,2)", "range"},
      {"QUERY build=R probe=S weight=0", "weight"},
      {"QUERY build=R probe=S weight=65537", "weight"},
      {"QUERY build=R probe=S weight=-3", "weight"},
      {"QUERY build=R probe=S weight=huge", "weight"},
      {"QUERY build=R probe=S weight=99999999999999999999999", "weight"},
      {"QUERY build=R probe=S scan=vector", "scan mode"},
      {"QUERY build=R probe=S storage=zip", "storage"},
      {"QUERY build=R probe=S isa=sse", "isa"},
      {"QUERY build=R probe=S build=T", "at most once"},
      {"QUERY build=R probe=S r=[1,2] r=[3,4]", "at most once"},
      {"QUERY build=R probe=S bogus=1", "clause"},
      {"QUERY build=R probe=S naked", "clause"},
      {"QUERY build=R probe=S =value", "clause"},
  };
  for (const BadLine& c : cases) {
    Request req;
    ParseError err{~size_t{0}, nullptr};
    EXPECT_FALSE(net::ParseRequest(c.line, &req, &err)) << c.line;
    ASSERT_NE(err.expected, nullptr) << c.line;
    EXPECT_NE(std::string(err.expected).find(c.expected_substr),
              std::string::npos)
        << c.line << " -> expected '" << err.expected << "'";
    EXPECT_LE(err.pos, std::strlen(c.line)) << c.line;
  }
}

TEST(NetProtocolParse, ErrorPositionsPointAtOffendingToken) {
  Request req;
  ParseError err;
  // Position of the bad clause, not of the line start.
  ASSERT_FALSE(net::ParseRequest("QUERY build=R bogus=1", &req, &err));
  EXPECT_EQ(err.pos, 14u);
  // Position of the bad VALUE inside the clause.
  ASSERT_FALSE(net::ParseRequest("QUERY build=R probe=S weight=x", &req,
                                 &err));
  EXPECT_EQ(err.pos, 29u);
  // Missing required clause points at end of line.
  ASSERT_FALSE(net::ParseRequest("QUERY build=R", &req, &err));
  EXPECT_EQ(err.pos, std::strlen("QUERY build=R"));
}

TEST(NetProtocolParse, HostileBytesNeverCrash) {
  // NUL and control bytes inside tokens and as whole lines, long tokens,
  // deterministic garbage fuzz: ParseRequest must return cleanly.
  Request req;
  ParseError err;
  const std::string nul_line = std::string("QUERY build=R\0 probe=S", 22);
  EXPECT_FALSE(net::ParseRequest(nul_line, &req, &err));
  EXPECT_FALSE(net::ParseRequest(std::string("\0\0\0\0", 4), &req, &err));
  EXPECT_FALSE(net::ParseRequest(std::string(10000, 'A'), &req, &err));
  {
    const std::string long_clause =
        "QUERY build=" + std::string(8000, 'x') + " probe=S";
    EXPECT_TRUE(net::ParseRequest(long_clause, &req, &err));  // valid name
  }
  Pcg32 rng(1234);
  for (int t = 0; t < 2000; ++t) {
    const size_t len = rng.Next() % 300;
    std::string line;
    line.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(rng.Next() % 256));
    }
    net::ParseRequest(line, &req, &err);  // result irrelevant; no crash
  }
  // Garbage after a valid prefix keyword.
  for (int t = 0; t < 500; ++t) {
    std::string line = "QUERY build=R probe=S ";
    const size_t len = rng.Next() % 60;
    for (size_t i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(rng.Next() % 256));
    }
    net::ParseRequest(line, &req, &err);
  }
}

// ---------------------------------------------------------------------------
// Encode/decode round trips.

TEST(NetProtocolCodec, RowRoundTrip) {
  std::string out;
  net::AppendRow(&out, 0, 0, 0, 0, 0);
  net::AppendRow(&out, 0xFFFFFFFFu, ~uint64_t{0}, 0xFFFFFFFFu, 0xFFFFFFFFu,
                 0xFFFFFFFFu);
  net::AppendRow(&out, 7, 123456789012345ull, 3, 11, 99);
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] == '\n') {
      lines.push_back(out.substr(start, i - start));
      start = i + 1;
    }
  }
  ASSERT_EQ(lines.size(), 3u);
  WireRow r;
  ASSERT_TRUE(net::DecodeRow(lines[0], &r));
  EXPECT_EQ(r.key, 0u);
  EXPECT_EQ(r.sum, 0u);
  ASSERT_TRUE(net::DecodeRow(lines[1], &r));
  EXPECT_EQ(r.key, 0xFFFFFFFFu);
  EXPECT_EQ(r.sum, ~uint64_t{0});
  EXPECT_EQ(r.count, 0xFFFFFFFFu);
  ASSERT_TRUE(net::DecodeRow(lines[2], &r));
  EXPECT_EQ(r.key, 7u);
  EXPECT_EQ(r.sum, 123456789012345ull);
  EXPECT_EQ(r.count, 3u);
  EXPECT_EQ(r.min, 11u);
  EXPECT_EQ(r.max, 99u);

  EXPECT_FALSE(net::DecodeRow("ROW 1 2 3 4", &r));       // short
  EXPECT_FALSE(net::DecodeRow("ROW 1 2 3 4 5 6", &r));   // long
  EXPECT_FALSE(net::DecodeRow("ROW 1 2 3 4 x", &r));     // junk
  EXPECT_FALSE(net::DecodeRow("ROW 4294967296 2 3 4 5", &r));  // overflow
}

TEST(NetProtocolCodec, TrailerRoundTrip) {
  server::QueryStats stats;
  stats.exec_ns = 123456;
  stats.queue_wait_ns = 789;
  stats.morsels_drained = 42;
  stats.shared_scan = true;
  std::string out;
  net::AppendQueryOk(&out, 17, stats);
  ASSERT_FALSE(out.empty());
  out.pop_back();  // '\n'
  WireResult wr;
  ASSERT_TRUE(net::DecodeQueryOk(out, &wr));
  EXPECT_EQ(wr.rows_declared, 17u);
  EXPECT_EQ(wr.exec_ns, 123456u);
  EXPECT_EQ(wr.queue_ns, 789u);
  EXPECT_EQ(wr.morsels, 42u);
  EXPECT_TRUE(wr.shared);
}

TEST(NetProtocolCodec, TableAndStatRoundTrip) {
  std::string out;
  net::AppendTable(&out, "lineitem", 6001215, true);
  out.pop_back();
  WireTable t;
  ASSERT_TRUE(net::DecodeTable(out, &t));
  EXPECT_EQ(t.name, "lineitem");
  EXPECT_EQ(t.rows, 6001215u);
  EXPECT_TRUE(t.compressed);

  out.clear();
  net::AppendStat(&out, "net_bytes_in", 987654321);
  out.pop_back();
  std::string name;
  uint64_t value = 0;
  ASSERT_TRUE(net::DecodeStat(out, &name, &value));
  EXPECT_EQ(name, "net_bytes_in");
  EXPECT_EQ(value, 987654321u);
}

TEST(NetProtocolCodec, ErrFramesStaySingleLine) {
  std::string out;
  net::AppendErr(&out, "exec", "multi\nline\rdetail\0with nul");
  ASSERT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
  EXPECT_EQ(out.back(), '\n');
  EXPECT_EQ(net::ClassifyFrame(std::string_view(out).substr(0, out.size() - 1)),
            net::FrameKind::kErr);
}

// ---------------------------------------------------------------------------
// Loopback end-to-end. One fixture = one catalog + one server on a unique
// Unix socket path (TCP covered separately).

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/simddb_net_test_" + std::to_string(getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

struct NetData {
  AlignedBuffer<uint32_t> r_keys, r_attrs, s_fks, s_vals;
  size_t n_r, n_s;
  Catalog catalog;

  explicit NetData(size_t nr, size_t ns, bool compress = false)
      : n_r(nr), n_s(ns) {
    r_keys.Reset(nr + 16);
    r_attrs.Reset(nr + 16);
    s_fks.Reset(ns + 16);
    s_vals.Reset(ns + 16);
    FillSequential(r_keys.data(), nr, 1);
    FillUniform(r_attrs.data(), nr, 5, 1, 64);
    FillUniform(s_fks.data(), ns, 6, 1, static_cast<uint32_t>(nr));
    FillSequential(s_vals.data(), ns, 0);
    server::TableOptions topts;
    topts.compress = compress;
    catalog.RegisterTable("R", r_keys.data(), r_attrs.data(), nr, topts);
    catalog.RegisterTable("S", s_fks.data(), s_vals.data(), ns, topts);
  }
};

/// The wire rows must reproduce the in-process ResultSet exactly.
void ExpectWireEqualsLocal(const WireResult& wire, const ResultSet& local) {
  ASSERT_TRUE(wire.ok) << wire.error;
  ASSERT_TRUE(local.ok) << local.error;
  const exec::QueryResult& r = local.result;
  ASSERT_EQ(wire.rows.size(), r.group_keys.size());
  EXPECT_EQ(wire.rows_declared, r.group_keys.size());
  for (size_t i = 0; i < wire.rows.size(); ++i) {
    EXPECT_EQ(wire.rows[i].key, r.group_keys[i]) << i;
    EXPECT_EQ(wire.rows[i].sum, r.sums[i]) << i;
    EXPECT_EQ(wire.rows[i].count, r.counts[i]) << i;
    EXPECT_EQ(wire.rows[i].min, r.mins[i]) << i;
    EXPECT_EQ(wire.rows[i].max, r.maxs[i]) << i;
  }
}

TEST(NetServer, LoopbackByteIdentityAcrossThreadsAndModes) {
  NetData data(2000, 30000, /*compress=*/true);
  for (int threads : {1, 8}) {
    ServerOptions opts;
    opts.unix_path = UniqueSocketPath();
    opts.handler_threads = 2;
    opts.exec.threads = threads;
    Server server(&data.catalog, opts);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;
    ASSERT_TRUE(client.Ping());

    QueryScheduler local_sched(&data.catalog);
    QuerySession local(&data.catalog, &local_sched);

    struct Case {
      const char* wire;
      ScanMode mode;
      bool packed;
      uint32_t r_lo, r_hi, s_lo, s_hi;
    };
    const Case cases[] = {
        {"QUERY build=R probe=S s=[100,8000]", ScanMode::kCompact, false, 0,
         0xFFFFFFFFu, 100, 8000},
        {"QUERY build=R probe=S r=[1,1500] s=[0,29999] scan=bitmap",
         ScanMode::kBitmap, false, 1, 1500, 0, 29999},
        {"QUERY build=R probe=S s=[4000,12000] storage=packed",
         ScanMode::kCompact, true, 0, 0xFFFFFFFFu, 4000, 12000},
        {"QUERY build=R probe=S s=[0,0]", ScanMode::kCompact, false, 0,
         0xFFFFFFFFu, 0, 0},
        {"QUERY build=R probe=S r=[9,3]", ScanMode::kCompact, false, 9, 3, 0,
         0xFFFFFFFFu},
    };
    for (const Case& c : cases) {
      const WireResult wire = client.Query(c.wire);
      QuerySpec spec;
      spec.build_table = "R";
      spec.probe_table = "S";
      spec.r_lo = c.r_lo;
      spec.r_hi = c.r_hi;
      spec.s_lo = c.s_lo;
      spec.s_hi = c.s_hi;
      spec.scan_mode = c.mode;
      spec.prefer_compressed = c.packed;
      ExecConfig cfg;
      cfg.threads = threads;
      const ResultSet rs = local.Execute(spec, cfg);
      ExpectWireEqualsLocal(wire, rs);
      EXPECT_GE(wire.morsels, 1u) << c.wire;  // the no-starvation observable
    }

    // isa= clause: results are byte-identical whatever backend runs (the
    // executor clamps unsupported ISAs — degrade, don't SIGILL).
    for (const char* isa_line :
         {"QUERY build=R probe=S s=[100,8000] isa=scalar",
          "QUERY build=R probe=S s=[100,8000] isa=avx2",
          "QUERY build=R probe=S s=[100,8000] isa=avx512"}) {
      const WireResult wire = client.Query(isa_line);
      QuerySpec spec;
      spec.build_table = "R";
      spec.probe_table = "S";
      spec.s_lo = 100;
      spec.s_hi = 8000;
      ExecConfig cfg;
      cfg.threads = threads;
      const ResultSet rs = local.Execute(spec, cfg);
      ExpectWireEqualsLocal(wire, rs);
    }

    client.Quit();
    server.Stop();
  }
}

TEST(NetServer, TcpLoopback) {
  NetData data(500, 5000);
  ServerOptions opts;
  opts.tcp_port = 0;  // ephemeral
  Server server(&data.catalog, opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.tcp_port(), 0);

  Client client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port(), &error))
      << error;
  ASSERT_TRUE(client.Ping());
  const WireResult wire = client.Query("QUERY build=R probe=S s=[10,900]");
  QueryScheduler local_sched(&data.catalog);
  QuerySession local(&data.catalog, &local_sched);
  QuerySpec spec;
  spec.build_table = "R";
  spec.probe_table = "S";
  spec.s_lo = 10;
  spec.s_hi = 900;
  ExpectWireEqualsLocal(wire, local.Execute(spec, ExecConfig{}));
  client.Quit();
  server.Stop();
}

TEST(NetServer, TablesStatsAndPipelining) {
  NetData data(300, 3000, /*compress=*/true);
  ServerOptions opts;
  opts.unix_path = UniqueSocketPath();
  Server server(&data.catalog, opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;

  std::vector<WireTable> tables;
  ASSERT_TRUE(client.Tables(&tables));
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0].name, "R");
  EXPECT_EQ(tables[0].rows, 300u);
  EXPECT_TRUE(tables[0].compressed);
  EXPECT_EQ(tables[1].name, "S");
  EXPECT_EQ(tables[1].rows, 3000u);

  // Pipelined batch: three commands in one write; responses come back in
  // order over the single connection.
  ASSERT_TRUE(client.SendLine(
      "PING\nQUERY build=R probe=S s=[0,999]\nNOT_A_COMMAND"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "PONG");
  size_t rows = 0;
  for (;;) {
    ASSERT_TRUE(client.ReadLine(&line));
    const net::FrameKind k = net::ClassifyFrame(line);
    if (k == net::FrameKind::kRow) {
      ++rows;
      continue;
    }
    ASSERT_EQ(k, net::FrameKind::kOk) << line;
    break;
  }
  EXPECT_GE(rows, 1u);
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(net::ClassifyFrame(line), net::FrameKind::kErr) << line;
  EXPECT_EQ(line.substr(0, 10), "ERR parse ");

  // STATS reflects what this session did.
  std::vector<std::pair<std::string, uint64_t>> stats;
  ASSERT_TRUE(client.Stats(&stats));
  auto value_of = [&](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : stats) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing stat " << name;
    return 0;
  };
  EXPECT_GE(value_of("connections_opened"), 1u);
  EXPECT_EQ(value_of("connections_active"), 1u);
  EXPECT_EQ(value_of("queries_parsed"), 1u);
  EXPECT_EQ(value_of("queries_ok"), 1u);
  EXPECT_EQ(value_of("parse_errors"), 1u);
  EXPECT_GT(value_of("bytes_in"), 0u);
  EXPECT_GT(value_of("bytes_out"), 0u);
  EXPECT_EQ(value_of("sched_completed"), 1u);

  client.Quit();
  server.Stop();
  const net::ServerStats final_stats = server.stats();
  EXPECT_EQ(final_stats.connections_active, 0u);
  EXPECT_EQ(final_stats.queries_parsed, 1u);
  EXPECT_EQ(final_stats.parse_errors, 1u);
}

TEST(NetServer, WireCountersInObsRegistry) {
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Get().ResetAll();
  NetData data(300, 3000);
  ServerOptions opts;
  opts.unix_path = UniqueSocketPath();
  Server server(&data.catalog, opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;
  ASSERT_TRUE(client.Query("QUERY build=R probe=S").ok);
  EXPECT_FALSE(client.Query("QUERY bogus").ok);
  client.Quit();
  server.Stop();

  const std::map<std::string, uint64_t> snap = obs::SnapshotMap();
  obs::EnableMetrics(false);
  auto metric = [&](const char* name) {
    auto it = snap.find(name);
    return it == snap.end() ? uint64_t{0} : it->second;
  };
  EXPECT_EQ(metric("net_connections_opened"), 1u);
  EXPECT_EQ(metric("net_connections_closed"), 1u);
  EXPECT_EQ(metric("net_queries_parsed"), 1u);
  EXPECT_EQ(metric("net_parse_errors"), 1u);
  EXPECT_GT(metric("net_bytes_in"), 0u);
  EXPECT_GT(metric("net_bytes_out"), 0u);
}

TEST(NetServer, MalformedBytesOnTheWireNeverKillTheServer) {
  NetData data(300, 3000);
  ServerOptions opts;
  opts.unix_path = UniqueSocketPath();
  Server server(&data.catalog, opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  {
    Client client;
    ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;
    // Oversized line (> kMaxLineBytes): ERR parse, connection resyncs.
    ASSERT_TRUE(client.SendLine(std::string(10000, 'x')));
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line));
    EXPECT_EQ(line.substr(0, 10), "ERR parse ");
    // The connection is still usable after the resync.
    EXPECT_TRUE(client.Ping());
    // NUL and control garbage: a structured error, not a crash.
    ASSERT_TRUE(client.SendLine(std::string("\x01\x02\x00\x7f", 4)));
    ASSERT_TRUE(client.ReadLine(&line));
    EXPECT_EQ(line.substr(0, 10), "ERR parse ");
    EXPECT_TRUE(client.Ping());
    // Truncated line (no terminator) then abrupt close: server survives.
    ASSERT_TRUE(client.SendLine("QUERY build=R pro"));
    client.Close();
  }
  {
    // Unknown tables are an exec error on the wire, not a dropped
    // connection.
    Client client;
    ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;
    const WireResult r = client.Query("QUERY build=NoSuch probe=S");
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error.substr(0, 5), "exec ");
    EXPECT_TRUE(client.Ping());
    client.Quit();
  }
  server.Stop();
}

TEST(NetServer, ConcurrentClientsByteIdenticalAcrossThreads) {
  NetData data(1000, 40000);
  for (int threads : {1, 8}) {
    ServerOptions opts;
    opts.unix_path = UniqueSocketPath();
    opts.handler_threads = 8;
    opts.exec.threads = threads;
    Server server(&data.catalog, opts);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    // Reference results computed in-process, one per client window.
    constexpr int kClients = 8;
    constexpr int kQueriesEach = 4;
    QueryScheduler local_sched(&data.catalog);
    QuerySession local(&data.catalog, &local_sched);
    std::vector<ResultSet> reference(kClients);
    for (int i = 0; i < kClients; ++i) {
      QuerySpec spec;
      spec.build_table = "R";
      spec.probe_table = "S";
      spec.s_lo = static_cast<uint32_t>(i * 5000);
      spec.s_hi = static_cast<uint32_t>(i * 5000 + 4999);
      ExecConfig cfg;
      cfg.threads = threads;
      reference[i] = local.Execute(spec, cfg);
      ASSERT_TRUE(reference[i].ok);
    }

    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int i = 0; i < kClients; ++i) {
      workers.emplace_back([&, i] {
        Client client;
        std::string cerr;
        if (!client.ConnectUnix(opts.unix_path, &cerr)) {
          ++failures;
          return;
        }
        const std::string line =
            "QUERY build=R probe=S s=[" + std::to_string(i * 5000) + "," +
            std::to_string(i * 5000 + 4999) + "]";
        for (int q = 0; q < kQueriesEach; ++q) {
          const WireResult wire = client.Query(line);
          if (!wire.ok ||
              wire.rows.size() != reference[i].result.group_keys.size()) {
            ++failures;
            return;
          }
          for (size_t g = 0; g < wire.rows.size(); ++g) {
            const exec::QueryResult& r = reference[i].result;
            if (wire.rows[g].key != r.group_keys[g] ||
                wire.rows[g].sum != r.sums[g] ||
                wire.rows[g].count != r.counts[g] ||
                wire.rows[g].min != r.mins[g] ||
                wire.rows[g].max != r.maxs[g]) {
              ++failures;
              return;
            }
          }
        }
        client.Quit();
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0) << "threads=" << threads;
    server.Stop();
    const net::ServerStats stats = server.stats();
    EXPECT_EQ(stats.queries_parsed,
              static_cast<uint64_t>(kClients * kQueriesEach));
    EXPECT_EQ(stats.queries_ok,
              static_cast<uint64_t>(kClients * kQueriesEach));
  }
}

TEST(NetServer, AdmissionRejectOnTheWire) {
  NetData data(1000, 60000);
  ServerOptions opts;
  opts.unix_path = UniqueSocketPath();
  opts.handler_threads = 8;  // more handlers than admission slots
  opts.scheduler.max_inflight = 1;
  opts.scheduler.policy = AdmissionPolicy::kReject;
  Server server(&data.catalog, opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // 8 clients hammer concurrently; with one admission slot and reject
  // policy, overlapping queries must surface as `ERR admission` frames —
  // and every response must be either a full result or that error, never
  // a hang or a dropped connection.
  constexpr int kClients = 8;
  std::atomic<int> oks{0}, rejects{0}, anomalies{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < kClients; ++i) {
    workers.emplace_back([&] {
      Client client;
      std::string cerr;
      if (!client.ConnectUnix(opts.unix_path, &cerr)) {
        ++anomalies;
        return;
      }
      for (int q = 0; q < 16; ++q) {
        const WireResult r = client.Query("QUERY build=R probe=S");
        if (r.ok) {
          ++oks;
        } else if (r.error.substr(0, 10) == "admission ") {
          ++rejects;
        } else {
          ++anomalies;
        }
      }
      client.Quit();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(anomalies.load(), 0);
  EXPECT_GE(oks.load(), 1);
  EXPECT_GE(rejects.load(), 1) << "no contention observed";
  EXPECT_EQ(oks.load() + rejects.load(), kClients * 16);
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_rejected, static_cast<uint64_t>(rejects.load()));
  server.Stop();
}

TEST(NetServer, GracefulDrainDeliversInFlightResponses) {
  NetData data(1000, 200000);
  ServerOptions opts;
  opts.unix_path = UniqueSocketPath();
  opts.handler_threads = 4;
  Server server(&data.catalog, opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // An idle second connection: drain must close it cleanly (EOF, no
  // response bytes).
  Client idle;
  ASSERT_TRUE(idle.ConnectUnix(opts.unix_path, &error)) << error;
  ASSERT_TRUE(idle.Ping());

  // In-flight queries at shutdown: every one still gets its full result.
  constexpr int kClients = 4;
  std::atomic<int> ok_count{0}, bad_count{0};
  std::atomic<int> started{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < kClients; ++i) {
    workers.emplace_back([&] {
      Client client;
      std::string cerr;
      if (!client.ConnectUnix(opts.unix_path, &cerr)) {
        ++bad_count;
        ++started;
        return;
      }
      ++started;
      const WireResult r = client.Query("QUERY build=R probe=S");
      if (r.ok && !r.rows.empty()) {
        ++ok_count;
      } else {
        ++bad_count;
      }
    });
  }
  while (started.load() < kClients) std::this_thread::yield();
  // "In-flight" means dispatched server-side, not just written client-side:
  // wait until the server has parsed all four QUERY lines before draining
  // (a connection whose request bytes are still unread is idle and may be
  // closed unanswered — that is correct drain behavior, not a lost query).
  while (server.stats().queries_parsed <
         static_cast<uint64_t>(kClients)) {
    std::this_thread::yield();
  }
  server.RequestShutdown();
  server.Wait();
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(bad_count.load(), 0);
  EXPECT_EQ(ok_count.load(), kClients);

  // The idle connection saw EOF...
  std::string line;
  EXPECT_FALSE(idle.ReadLine(&line));
  // ...and new connections are refused (socket unlinked).
  Client late;
  EXPECT_FALSE(late.ConnectUnix(opts.unix_path, &error));
}

TEST(NetServer, ShutdownCommandDrains) {
  NetData data(300, 3000);
  ServerOptions opts;
  opts.unix_path = UniqueSocketPath();
  Server server(&data.catalog, opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;
  ASSERT_TRUE(client.SendLine("SHUTDOWN"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "OK shutdown");
  EXPECT_FALSE(client.ReadLine(&line));  // server closed after the ack
  server.Wait();
  SUCCEED();
}

}  // namespace
}  // namespace simddb
