// Bloom filter tests (§6): no false negatives ever; false-positive rate in
// the expected band; vector probes agree with scalar probes exactly as
// multisets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "bloom/bloom_filter.h"
#include "core/isa.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb {
namespace {

class BloomProbeTest
    : public ::testing::TestWithParam<std::tuple<Isa, int, size_t>> {};

TEST_P(BloomProbeTest, AgreesWithScalarProbe) {
  auto [isa, k, n_probe] = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  const size_t n_items = 5000;
  std::vector<uint32_t> items(n_items);
  FillUniqueShuffled(items.data(), n_items, 3, 1);
  BloomFilter filter = BloomFilter::ForItems(n_items, 10, k);
  filter.Add(items.data(), n_items);

  AlignedBuffer<uint32_t> probes(n_probe + 16), pays(n_probe + 16);
  FillProbeKeys(probes.data(), n_probe, items.data(), n_items, 0.05, 9);
  FillSequential(pays.data(), n_probe, 0);

  AlignedBuffer<uint32_t> want_k(n_probe + 16), want_p(n_probe + 16);
  size_t want = filter.ProbeScalar(probes.data(), pays.data(), n_probe,
                                   want_k.data(), want_p.data());
  AlignedBuffer<uint32_t> got_k(n_probe + 16), got_p(n_probe + 16);
  size_t got = filter.Probe(isa, probes.data(), pays.data(), n_probe,
                            got_k.data(), got_p.data());
  ASSERT_EQ(got, want);
  // Vector probes may reorder; compare as sorted pair sets.
  std::vector<std::pair<uint32_t, uint32_t>> a(want), b(want);
  for (size_t i = 0; i < want; ++i) {
    a[i] = {want_k[i], want_p[i]};
    b[i] = {got_k[i], got_p[i]};
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BloomProbeTest,
    ::testing::Combine(::testing::Values(Isa::kScalar, Isa::kAvx2,
                                         Isa::kAvx512),
                       ::testing::Values(1, 2, 5, 8),
                       ::testing::Values<size_t>(10, 1000, 40000)),
    [](const auto& info) {
      return std::string(IsaName(std::get<0>(info.param))) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(BloomFilter, NoFalseNegatives) {
  const size_t n = 20000;
  std::vector<uint32_t> items(n);
  FillUniqueShuffled(items.data(), n, 5, 1);
  BloomFilter filter = BloomFilter::ForItems(n, 10, 5);
  filter.Add(items.data(), n);
  for (uint32_t k : items) {
    ASSERT_TRUE(filter.MightContain(k));
  }
}

TEST(BloomFilter, FalsePositiveRateNearTheory) {
  const size_t n = 100000;
  std::vector<uint32_t> items(n);
  FillUniqueShuffled(items.data(), n, 7, 1);
  BloomFilter filter = BloomFilter::ForItems(n, 10, 5);
  filter.Add(items.data(), n);
  // Probe keys guaranteed absent (above the inserted range).
  size_t fp = 0;
  const size_t n_probe = 100000;
  for (size_t i = 0; i < n_probe; ++i) {
    fp += filter.MightContain(static_cast<uint32_t>(n + 1 + i));
  }
  double rate = static_cast<double>(fp) / n_probe;
  // 10 bits/key, 5 functions => ~1% theoretical; the power-of-two rounding
  // of n_bits only lowers it. Accept anything below 2.5%.
  EXPECT_LT(rate, 0.025);
  EXPECT_GT(rate, 0.0001);  // and it is a filter, not a hash set
}

TEST(BloomFilter, SizingRoundsUp) {
  BloomFilter f(1000, 3);
  EXPECT_EQ(f.n_bits(), 1024u);
  EXPECT_EQ(f.k(), 3);
  BloomFilter tiny(1, 1);
  EXPECT_EQ(tiny.n_bits(), 512u);
}

TEST(BloomFilter, ClearEmptiesFilter) {
  std::vector<uint32_t> items = {1, 2, 3};
  BloomFilter f(4096, 4);
  f.Add(items.data(), items.size());
  EXPECT_TRUE(f.MightContain(1));
  f.Clear();
  EXPECT_FALSE(f.MightContain(1));
  EXPECT_FALSE(f.MightContain(2));
}

}  // namespace
}  // namespace simddb
