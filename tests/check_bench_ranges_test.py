#!/usr/bin/env python3
"""Unit tests for scripts/check_bench_ranges.py, run by ctest.

Invokes the gate script as a subprocess on crafted baseline + JSONL rows and
asserts on exit status and diagnostics:

  * a div_by denominator of zero fails the row with a clear per-row message
    (no traceback) unless the range opts into `"zero_denom": "skip"`;
  * `compare` entries gate a target row against the best baseline row of its
    group, skip targets whose group has no baseline, and honor `require`.
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.environ.get(
    "CHECK_SCRIPT",
    str(pathlib.Path(__file__).resolve().parent.parent / "scripts" /
        "check_bench_ranges.py"))


def run_gate(baselines, rows):
    """Writes baselines + rows to temp files and runs the gate script."""
    with tempfile.TemporaryDirectory() as tmp:
        bpath = os.path.join(tmp, "baselines.json")
        jpath = os.path.join(tmp, "rows.jsonl")
        with open(bpath, "w") as f:
            json.dump(baselines, f)
        with open(jpath, "w") as f:
            for row in rows:
                f.write(json.dumps(row) + "\n")
        return subprocess.run(
            [sys.executable, SCRIPT, bpath, jpath],
            capture_output=True, text=True)


class ZeroDenominatorTest(unittest.TestCase):
    BASELINE = [{
        "name": "ratio-gate",
        "name_re": "^BM_X/",
        "require": True,
        "metrics": {"a_ns": {"div_by": "b_ns", "min": 0.1, "max": 10}},
    }]

    def test_zero_denominator_is_a_clear_per_row_failure(self):
        res = run_gate(self.BASELINE,
                       [{"name": "BM_X/1", "a_ns": 5, "b_ns": 0}])
        self.assertEqual(res.returncode, 1, res.stderr)
        self.assertIn("'b_ns'=0 not positive", res.stderr)
        self.assertIn("BM_X/1", res.stderr)
        self.assertNotIn("Traceback", res.stderr)
        self.assertNotIn("ZeroDivisionError", res.stderr)

    def test_missing_denominator_is_a_failure_too(self):
        res = run_gate(self.BASELINE, [{"name": "BM_X/1", "a_ns": 5}])
        self.assertEqual(res.returncode, 1)
        self.assertIn("missing div_by metric 'b_ns'", res.stderr)
        self.assertNotIn("Traceback", res.stderr)

    def test_zero_denom_skip_option_passes_the_row(self):
        baselines = json.loads(json.dumps(self.BASELINE))
        baselines[0]["metrics"]["a_ns"]["zero_denom"] = "skip"
        res = run_gate(baselines, [{"name": "BM_X/1", "a_ns": 5, "b_ns": 0}])
        self.assertEqual(res.returncode, 0, res.stderr)

    def test_zero_denom_skip_still_checks_positive_denominators(self):
        baselines = json.loads(json.dumps(self.BASELINE))
        baselines[0]["metrics"]["a_ns"]["zero_denom"] = "skip"
        res = run_gate(baselines,
                       [{"name": "BM_X/1", "a_ns": 500, "b_ns": 1}])
        self.assertEqual(res.returncode, 1)  # ratio 500 > max 10
        self.assertIn("outside", res.stderr)


class CompareEntryTest(unittest.TestCase):
    @staticmethod
    def baseline(max_ratio=1.05, require=True):
        return [{
            "name": "adaptive-vs-static",
            "compare": {
                "target_name_re": "/3/$",
                "baseline_name_re": "/0/$",
                "group_by": ["sel", "threads"],
                "metric": "real_time",
                "max_ratio": max_ratio,
            },
            "require": require,
        }]

    def test_target_within_ratio_of_best_baseline_passes(self):
        rows = [
            {"name": "BM_Q/1/10/8/0/", "sel": 10, "threads": 8,
             "real_time": 100.0},
            {"name": "BM_Q/2/10/8/0/", "sel": 10, "threads": 8,
             "real_time": 300.0},
            {"name": "BM_Q/0/10/8/3/", "sel": 10, "threads": 8,
             "real_time": 104.0},
        ]
        res = run_gate(self.baseline(), rows)
        self.assertEqual(res.returncode, 0, res.stderr)

    def test_target_above_ratio_fails_with_best_baseline_named(self):
        rows = [
            {"name": "BM_Q/1/10/8/0/", "sel": 10, "threads": 8,
             "real_time": 100.0},
            {"name": "BM_Q/0/10/8/3/", "sel": 10, "threads": 8,
             "real_time": 120.0},
        ]
        res = run_gate(self.baseline(), rows)
        self.assertEqual(res.returncode, 1)
        self.assertIn("1.200x the best baseline", res.stderr)
        self.assertIn("max_ratio=1.05", res.stderr)

    def test_groups_are_compared_independently(self):
        rows = [
            {"name": "BM_Q/1/10/1/0/", "sel": 10, "threads": 1,
             "real_time": 100.0},
            {"name": "BM_Q/1/10/8/0/", "sel": 10, "threads": 8,
             "real_time": 20.0},
            # Fine vs the t=1 baseline, 5x the t=8 one: must fail.
            {"name": "BM_Q/0/10/1/3/", "sel": 10, "threads": 1,
             "real_time": 100.0},
            {"name": "BM_Q/0/10/8/3/", "sel": 10, "threads": 8,
             "real_time": 100.0},
        ]
        res = run_gate(self.baseline(), rows)
        self.assertEqual(res.returncode, 1)
        self.assertIn("5.000x", res.stderr)

    def test_target_without_baseline_group_is_skipped(self):
        rows = [
            {"name": "BM_Q/1/10/8/0/", "sel": 10, "threads": 8,
             "real_time": 100.0},
            # sel=50 has no baseline row: smoke subsets must not fail.
            {"name": "BM_Q/0/50/8/3/", "sel": 50, "threads": 8,
             "real_time": 9999.0},
        ]
        res = run_gate(self.baseline(), rows)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("no baseline row", res.stdout)

    def test_require_fails_when_no_target_matched(self):
        rows = [{"name": "BM_Q/1/10/8/0/", "sel": 10, "threads": 8,
                 "real_time": 100.0}]
        res = run_gate(self.baseline(require=True), rows)
        self.assertEqual(res.returncode, 1)
        self.assertIn("required but no target row matched", res.stderr)
        res = run_gate(self.baseline(require=False), rows)
        self.assertEqual(res.returncode, 0, res.stderr)

    def test_missing_metric_on_target_is_a_failure(self):
        rows = [
            {"name": "BM_Q/1/10/8/0/", "sel": 10, "threads": 8,
             "real_time": 100.0},
            {"name": "BM_Q/0/10/8/3/", "sel": 10, "threads": 8},
        ]
        res = run_gate(self.baseline(), rows)
        self.assertEqual(res.returncode, 1)
        self.assertIn("missing metric 'real_time'", res.stderr)


if __name__ == "__main__":
    unittest.main()
