// LSB radixsort tests (§8): sortedness, stability, permutation integrity,
// across ISAs, thread counts, pass widths, and multi-column tables.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/isa.h"
#include "sort/radix_sort.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb {
namespace {

class RadixSortTest
    : public ::testing::TestWithParam<std::tuple<Isa, int, int, size_t>> {};

TEST_P(RadixSortTest, SortsPairsStably) {
  auto [isa, threads, bits, n] = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  RadixSortConfig cfg;
  cfg.isa = isa;
  cfg.threads = threads;
  cfg.bits_per_pass = bits;

  AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
  AlignedBuffer<uint32_t> sk(n + 16), sp(n + 16);
  // Narrow key range forces many duplicates (stability matters).
  FillUniform(keys.data(), n, 77, 0, static_cast<uint32_t>(n / 4 + 1));
  FillSequential(pays.data(), n, 0);  // payload = original index
  std::vector<uint32_t> orig(keys.data(), keys.data() + n);

  RadixSortPairs(keys.data(), pays.data(), sk.data(), sp.data(), n, cfg);

  for (size_t i = 1; i < n; ++i) {
    ASSERT_LE(keys[i - 1], keys[i]) << "unsorted @" << i;
    if (keys[i - 1] == keys[i]) {
      ASSERT_LT(pays[i - 1], pays[i]) << "instability @" << i;
    }
  }
  // Permutation integrity: each payload is a distinct original index whose
  // key matches.
  std::vector<bool> seen(n, false);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_LT(pays[i], n);
    ASSERT_FALSE(seen[pays[i]]);
    seen[pays[i]] = true;
    ASSERT_EQ(keys[i], orig[pays[i]]);
  }
}

TEST_P(RadixSortTest, SortsKeysOnly) {
  auto [isa, threads, bits, n] = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  RadixSortConfig cfg;
  cfg.isa = isa;
  cfg.threads = threads;
  cfg.bits_per_pass = bits;
  AlignedBuffer<uint32_t> keys(n + 16), sk(n + 16);
  FillUniform(keys.data(), n, 99, 0, 0xFFFFFFFFu);
  std::vector<uint32_t> want(keys.data(), keys.data() + n);
  std::sort(want.begin(), want.end());
  RadixSortKeys(keys.data(), sk.data(), n, cfg);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(keys[i], want[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadixSortTest,
    ::testing::Combine(::testing::Values(Isa::kScalar, Isa::kAvx512),
                       ::testing::Values(1, 4), ::testing::Values(8, 11),
                       ::testing::Values<size_t>(3, 1000, 100003)),
    [](const auto& info) {
      return std::string(IsaName(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_b" +
             std::to_string(std::get<2>(info.param)) + "_n" +
             std::to_string(std::get<3>(info.param));
    });

TEST(RadixSort, AlreadySortedAndReversed) {
  const size_t n = 10000;
  RadixSortConfig cfg;
  cfg.isa = IsaSupported(Isa::kAvx512) ? Isa::kAvx512 : Isa::kScalar;
  AlignedBuffer<uint32_t> keys(n + 16), sk(n + 16);
  FillSequential(keys.data(), n, 0);
  RadixSortKeys(keys.data(), sk.data(), n, cfg);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(keys[i], i);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<uint32_t>(n - i);
  RadixSortKeys(keys.data(), sk.data(), n, cfg);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(keys[i], i + 1);
}

TEST(RadixSort, FullKeyRangeIncludingExtremes) {
  const size_t n = 4096;
  RadixSortConfig cfg;
  cfg.isa = IsaSupported(Isa::kAvx512) ? Isa::kAvx512 : Isa::kScalar;
  AlignedBuffer<uint32_t> keys(n + 16), sk(n + 16);
  FillUniform(keys.data(), n, 5, 0, 0xFFFFFFFFu);
  keys[0] = 0;
  keys[1] = 0xFFFFFFFFu;
  std::vector<uint32_t> want(keys.data(), keys.data() + n);
  std::sort(want.begin(), want.end());
  RadixSortKeys(keys.data(), sk.data(), n, cfg);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(keys[i], want[i]);
}

class MultiColumnSortTest : public ::testing::TestWithParam<Isa> {};

TEST_P(MultiColumnSortTest, AllColumnWidthsFollowTheKeys) {
  Isa isa = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  const size_t n = 60007;
  RadixSortConfig cfg;
  cfg.isa = isa;
  AlignedBuffer<uint32_t> keys(n + 16), sk(n + 16);
  FillUniform(keys.data(), n, 123, 0, 1u << 20);
  std::vector<uint32_t> orig(keys.data(), keys.data() + n);

  AlignedBuffer<uint8_t> c8(n + 64), s8(n + 64);
  AlignedBuffer<uint16_t> c16(n + 32), s16(n + 32);
  AlignedBuffer<uint32_t> c32(n + 16), s32(n + 16);
  AlignedBuffer<uint64_t> c64(n + 16), s64(n + 16);
  for (size_t i = 0; i < n; ++i) {
    c8[i] = static_cast<uint8_t>(i);
    c16[i] = static_cast<uint16_t>(i);
    c32[i] = static_cast<uint32_t>(i);
    c64[i] = i;
  }
  SortColumn cols[4] = {{c8.data(), s8.data(), 1},
                        {c16.data(), s16.data(), 2},
                        {c32.data(), s32.data(), 4},
                        {c64.data(), s64.data(), 8}};
  RadixSortMultiColumn(keys.data(), sk.data(), n, cols, 4, cfg);

  for (size_t i = 1; i < n; ++i) ASSERT_LE(keys[i - 1], keys[i]);
  for (size_t i = 0; i < n; ++i) {
    size_t orig_idx = c64[i];  // the 64-bit column carried the full index
    ASSERT_LT(orig_idx, n);
    ASSERT_EQ(keys[i], orig[orig_idx]);
    ASSERT_EQ(c8[i], static_cast<uint8_t>(orig_idx));
    ASSERT_EQ(c16[i], static_cast<uint16_t>(orig_idx));
    ASSERT_EQ(c32[i], static_cast<uint32_t>(orig_idx));
  }
  // Stability across duplicate keys via the 64-bit index column.
  for (size_t i = 1; i < n; ++i) {
    if (keys[i - 1] == keys[i]) ASSERT_LT(c64[i - 1], c64[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(ScalarAndVector, MultiColumnSortTest,
                         ::testing::Values(Isa::kScalar, Isa::kAvx512),
                         [](const auto& info) {
                           return std::string(IsaName(info.param));
                         });

}  // namespace
}  // namespace simddb
