// Sort-merge join tests: must agree with the hash join / reference result,
// including duplicate keys on both sides (cross products of equal runs).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/isa.h"
#include "join/sort_merge_join.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb {
namespace {

struct JoinRow {
  uint32_t key, rpay, spay;
  bool operator==(const JoinRow&) const = default;
  bool operator<(const JoinRow& o) const {
    return std::tie(key, rpay, spay) < std::tie(o.key, o.rpay, o.spay);
  }
};

std::vector<JoinRow> Reference(const std::vector<uint32_t>& rk,
                               const std::vector<uint32_t>& rp,
                               const std::vector<uint32_t>& sk,
                               const std::vector<uint32_t>& sp) {
  std::unordered_multimap<uint32_t, uint32_t> map;
  for (size_t i = 0; i < rk.size(); ++i) map.emplace(rk[i], rp[i]);
  std::vector<JoinRow> want;
  for (size_t i = 0; i < sk.size(); ++i) {
    auto [lo, hi] = map.equal_range(sk[i]);
    for (auto it = lo; it != hi; ++it) want.push_back({sk[i], it->second, sp[i]});
  }
  std::sort(want.begin(), want.end());
  return want;
}

TEST(SortMergeJoin, UniqueKeysMatchesReference) {
  const size_t r_n = 10'000, s_n = 50'000;
  std::vector<uint32_t> rk(r_n), rp(r_n), sk(s_n), sp(s_n);
  FillUniqueShuffled(rk.data(), r_n, 3, 1);
  FillSequential(rp.data(), r_n, 100);
  FillProbeKeys(sk.data(), s_n, rk.data(), r_n, 0.7, 5);
  FillSequential(sp.data(), s_n, 900);
  auto want = Reference(rk, rp, sk, sp);

  JoinConfig cfg;
  cfg.isa = BestIsa();
  AlignedBuffer<uint32_t> ok(want.size() + 16), orp(want.size() + 16),
      osp(want.size() + 16);
  JoinTimings t;
  size_t got = SortMergeJoin({rk.data(), rp.data(), r_n},
                             {sk.data(), sp.data(), s_n}, cfg, ok.data(),
                             orp.data(), osp.data(), &t);
  ASSERT_EQ(got, want.size());
  std::vector<JoinRow> rows(got);
  for (size_t i = 0; i < got; ++i) rows[i] = {ok[i], orp[i], osp[i]};
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, want);
  EXPECT_GT(t.partition_s, 0.0);  // sorting phase recorded
}

TEST(SortMergeJoin, DuplicateRunsCrossProduct) {
  std::vector<uint32_t> rk = {5, 5, 8, 2}, rp = {1, 2, 3, 4};
  std::vector<uint32_t> sk = {5, 5, 5, 8, 9}, sp = {10, 20, 30, 40, 50};
  auto want = Reference(rk, rp, sk, sp);
  ASSERT_EQ(want.size(), 7u);  // 2x3 for key 5, 1 for key 8
  JoinConfig cfg;
  AlignedBuffer<uint32_t> ok(32), orp(32), osp(32);
  size_t got = SortMergeJoin({rk.data(), rp.data(), rk.size()},
                             {sk.data(), sp.data(), sk.size()}, cfg,
                             ok.data(), orp.data(), osp.data());
  ASSERT_EQ(got, 7u);
  std::vector<JoinRow> rows(got);
  for (size_t i = 0; i < got; ++i) rows[i] = {ok[i], orp[i], osp[i]};
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, want);
}

TEST(SortMergeJoin, EmptySides) {
  std::vector<uint32_t> k = {1, 2}, p = {3, 4};
  JoinConfig cfg;
  AlignedBuffer<uint32_t> ok(16), orp(16), osp(16);
  EXPECT_EQ(SortMergeJoin({k.data(), p.data(), 0}, {k.data(), p.data(), 2},
                          cfg, ok.data(), orp.data(), osp.data()),
            0u);
  EXPECT_EQ(SortMergeJoin({k.data(), p.data(), 2}, {k.data(), p.data(), 0},
                          cfg, ok.data(), orp.data(), osp.data()),
            0u);
}

TEST(SortMergeJoin, ScalarAndVectorAgree) {
  const size_t n = 30'000;
  std::vector<uint32_t> rk(n), rp(n), sk(n), sp(n);
  FillWithRepeats(rk.data(), n, n / 2, 7, 1);
  FillSequential(rp.data(), n, 0);
  FillProbeKeys(sk.data(), n, rk.data(), n, 0.5, 9);
  FillSequential(sp.data(), n, 0);
  auto want = Reference(rk, rp, sk, sp);
  for (Isa isa : {Isa::kScalar, Isa::kAvx512}) {
    if (!IsaSupported(isa)) continue;
    JoinConfig cfg;
    cfg.isa = isa;
    AlignedBuffer<uint32_t> ok(want.size() + 16), orp(want.size() + 16),
        osp(want.size() + 16);
    size_t got = SortMergeJoin({rk.data(), rp.data(), n},
                               {sk.data(), sp.data(), n}, cfg, ok.data(),
                               orp.data(), osp.data());
    ASSERT_EQ(got, want.size()) << IsaName(isa);
    std::vector<JoinRow> rows(got);
    for (size_t i = 0; i < got; ++i) rows[i] = {ok[i], orp[i], osp[i]};
    std::sort(rows.begin(), rows.end());
    EXPECT_EQ(rows, want) << IsaName(isa);
  }
}

}  // namespace
}  // namespace simddb
