// Compression subsystem tests (src/compress/): pack/unpack round-trip
// property sweeps across every bit width x ISA x edge sizes, the
// CompressColumn FOR/delta encoding choices and round trips on sorted /
// Zipf / clustered data, the FOR-domain block classification, and the
// scan-over-compressed acceptance bar — a Q3 plan over compressed base
// tables is byte-identical to the raw-column plan while the zone map
// actually skips blocks (observed via blocks_skipped / blocks_all_pass /
// bytes_unpacked).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "compress/column.h"
#include "compress/pack.h"
#include "core/isa.h"
#include "exec/query.h"
#include "obs/metrics.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"
#include "util/rng.h"

namespace simddb {
namespace {

using compress::BitsFor;
using compress::BlockClass;
using compress::BlockEncoding;
using compress::BlockMeta;
using compress::ClassifyBlock;
using compress::CompressColumn;
using compress::CompressedColumn;
using compress::kBlockTuples;
using compress::PackedCapacity;
using compress::PackedWords;
using compress::PackedWordsCapacity;
using exec::ExecConfig;
using exec::QueryResult;
using exec::ScanJoinAggregatePlan;
using exec::ScanMode;

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas{Isa::kScalar};
  if (IsaSupported(Isa::kAvx2)) isas.push_back(Isa::kAvx2);
  if (IsaSupported(Isa::kAvx512)) isas.push_back(Isa::kAvx512);
  return isas;
}

uint64_t Metric(const char* name) {
  for (const obs::MetricSample& s : obs::MetricsRegistry::Get().Snapshot()) {
    if (std::strcmp(s.name, name) == 0) return s.value;
  }
  ADD_FAILURE() << "metric " << name << " not registered";
  return 0;
}

struct ScopedMetrics {
  ScopedMetrics() {
    obs::EnableMetrics(true);
    obs::MetricsRegistry::Get().ResetAll();
  }
  ~ScopedMetrics() { obs::EnableMetrics(false); }
};

// ---------------------------------------------------------------------------
// Pack/unpack kernels
// ---------------------------------------------------------------------------

TEST(CompressPackTest, BitsForBoundaries) {
  EXPECT_EQ(BitsFor(0), 0u);
  EXPECT_EQ(BitsFor(1), 1u);
  EXPECT_EQ(BitsFor(2), 2u);
  EXPECT_EQ(BitsFor(3), 2u);
  EXPECT_EQ(BitsFor(255), 8u);
  EXPECT_EQ(BitsFor(256), 9u);
  EXPECT_EQ(BitsFor(0x7FFFFFFFu), 31u);
  EXPECT_EQ(BitsFor(0x80000000u), 32u);
  EXPECT_EQ(BitsFor(0xFFFFFFFFu), 32u);
}

class CompressPackIsaTest : public ::testing::TestWithParam<Isa> {};

TEST_P(CompressPackIsaTest, RoundTripSweepAllWidths) {
  const Isa isa = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  Pcg32 rng(2024);
  for (size_t n : {size_t{0}, size_t{1}, size_t{1023}, size_t{1024},
                   size_t{100'003}}) {
    for (unsigned bits = 0; bits <= 32; ++bits) {
      const uint32_t mask =
          bits == 32 ? 0xFFFFFFFFu : ((uint32_t{1} << bits) - 1);
      // References exercise the FOR bias including unsigned wrap-adjacent
      // values (ref + v can reach UINT32_MAX at full width).
      const uint32_t ref = bits == 32 ? 0 : (rng.Next() & ~mask);
      std::vector<uint32_t> in(std::max<size_t>(n, 1));
      for (size_t i = 0; i < n; ++i) in[i] = ref + (rng.Next() & mask);
      // Pin the extremes so every width is actually exercised.
      if (n >= 2) {
        in[0] = ref;
        in[1] = ref + mask;
      }
      AlignedBuffer<uint32_t> packed(PackedWordsCapacity(n, bits));
      packed.Clear();
      compress::PackBlock(in.data(), n, ref, bits, packed.data());
      AlignedBuffer<uint32_t> out(PackedCapacity(n));
      compress::UnpackBlock(isa, packed.data(), n, ref, bits, out.data(),
                            out.size());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], in[i])
            << "bits=" << bits << " n=" << n << " @" << i;
      }
    }
  }
}

TEST_P(CompressPackIsaTest, MatchesScalarUnpack) {
  const Isa isa = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  Pcg32 rng(7);
  const size_t n = 4097;
  for (unsigned bits : {1u, 5u, 13u, 21u, 31u, 32u}) {
    const uint32_t mask =
        bits == 32 ? 0xFFFFFFFFu : ((uint32_t{1} << bits) - 1);
    std::vector<uint32_t> in(n);
    for (size_t i = 0; i < n; ++i) in[i] = rng.Next() & mask;
    AlignedBuffer<uint32_t> packed(PackedWordsCapacity(n, bits));
    packed.Clear();
    compress::PackBlock(in.data(), n, 0, bits, packed.data());
    AlignedBuffer<uint32_t> want(PackedCapacity(n)), got(PackedCapacity(n));
    compress::detail::UnpackScalar(packed.data(), n, 77, bits, want.data());
    compress::UnpackBlock(isa, packed.data(), n, 77, bits, got.data(),
                          got.size());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], want[i]) << "bits=" << bits << " @" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, CompressPackIsaTest,
                         ::testing::Values(Isa::kScalar, Isa::kAvx2,
                                           Isa::kAvx512),
                         [](const auto& info) {
                           return std::string(IsaName(info.param));
                         });

// ---------------------------------------------------------------------------
// CompressColumn / CompressedColumn
// ---------------------------------------------------------------------------

void ExpectColumnRoundTrips(const uint32_t* in, size_t n,
                            const CompressedColumn& col,
                            const std::string& label) {
  ASSERT_EQ(col.size(), n) << label;
  AlignedBuffer<uint32_t> out(PackedCapacity(kBlockTuples));
  for (Isa isa : SupportedIsas()) {
    for (size_t b = 0; b < col.num_blocks(); ++b) {
      const size_t rows = col.block_rows(b);
      col.DecodeBlock(isa, b, out.data(), out.size());
      for (size_t i = 0; i < rows; ++i) {
        ASSERT_EQ(out[i], in[b * kBlockTuples + i])
            << label << " isa=" << IsaName(isa) << " block=" << b << " @"
            << i;
      }
    }
  }
}

TEST(CompressColumnTest, SortedDataUsesDeltaAndRoundTrips) {
  const size_t n = 10'000;
  AlignedBuffer<uint32_t> in(n);
  FillSequential(in.data(), n, 12'345);
  const CompressedColumn col = CompressColumn(in.data(), n);
  ExpectColumnRoundTrips(in.data(), n, col, "sequential");
  // A dense ramp has delta 1 everywhere: 1-bit delta blocks, far narrower
  // than the 10-bit FOR frame of a 1024-value span.
  for (size_t b = 0; b < col.num_blocks(); ++b) {
    EXPECT_EQ(col.block_meta(b).encoding, BlockEncoding::kDeltaFor)
        << "block " << b;
    EXPECT_EQ(col.block_meta(b).bits, 1) << "block " << b;
  }
  EXPECT_GE(col.raw_bytes(), 16 * col.packed_bytes())
      << "ramp should pack ~32x";
}

TEST(CompressColumnTest, ClusteredDataReachesFourXFootprint) {
  // Clustered values: each block's range is narrow even though absolute
  // magnitudes span the full 32-bit domain — the FOR case.
  const size_t n = 50'000;
  AlignedBuffer<uint32_t> in(n);
  Pcg32 rng(3);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t base =
        static_cast<uint32_t>((i / kBlockTuples) * 7'654'321u);
    in[i] = base + rng.NextBounded(100);  // 7-bit in-block range
  }
  const CompressedColumn col = CompressColumn(in.data(), n);
  ExpectColumnRoundTrips(in.data(), n, col, "clustered");
  EXPECT_GE(col.raw_bytes(), 4 * col.packed_bytes());
}

TEST(CompressColumnTest, ZipfAndUniformRoundTrip) {
  const size_t n = 30'000;
  AlignedBuffer<uint32_t> in(n);
  FillZipf(in.data(), n, 1'000'000, 1.05, 17);
  ExpectColumnRoundTrips(in.data(), n, CompressColumn(in.data(), n), "zipf");
  FillUniform(in.data(), n, 23, 0, 0xFFFFFFFFu);
  ExpectColumnRoundTrips(in.data(), n, CompressColumn(in.data(), n),
                         "uniform-full-width");
}

TEST(CompressColumnTest, EdgeSizesAndConstantBlocks) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{1023}, size_t{1024},
                   size_t{1025}}) {
    std::vector<uint32_t> in(std::max<size_t>(n, 1), 42);
    const CompressedColumn col = CompressColumn(in.data(), n);
    ExpectColumnRoundTrips(in.data(), n, col,
                           "constant n=" + std::to_string(n));
    if (n > 0) {
      // All-equal blocks carry zero payload words (bits == 0).
      EXPECT_EQ(col.block_meta(0).bits, 0);
    }
  }
}

TEST(CompressClassifyTest, ForDomainPushdown) {
  BlockMeta m;
  m.reference = 1000;
  m.min = 1000;
  m.max = 1999;
  // Entirely below / above the frame.
  EXPECT_EQ(ClassifyBlock(m, 0, 999), BlockClass::kSkip);
  EXPECT_EQ(ClassifyBlock(m, 2000, 5000), BlockClass::kSkip);
  // Covering the frame (boundaries inclusive).
  EXPECT_EQ(ClassifyBlock(m, 1000, 1999), BlockClass::kAllPass);
  EXPECT_EQ(ClassifyBlock(m, 0, 0xFFFFFFFFu), BlockClass::kAllPass);
  // Straddling either edge.
  EXPECT_EQ(ClassifyBlock(m, 0, 1000), BlockClass::kMixed);
  EXPECT_EQ(ClassifyBlock(m, 1999, 2100), BlockClass::kMixed);
  EXPECT_EQ(ClassifyBlock(m, 1500, 1600), BlockClass::kMixed);
}

// ---------------------------------------------------------------------------
// Scan-over-compressed: plan identity + skip protocol
// ---------------------------------------------------------------------------

struct CompressedQueryData {
  AlignedBuffer<uint32_t> r_keys, r_attrs, s_fks, s_vals;
  CompressedColumn r_keys_c, r_attrs_c, s_fks_c, s_vals_c;
  size_t n_r, n_s;

  CompressedQueryData(size_t nr, size_t ns, bool clustered_vals)
      : n_r(nr), n_s(ns) {
    r_keys.Reset(nr + 16);
    r_attrs.Reset(nr + 16);
    s_fks.Reset(ns + 16);
    s_vals.Reset(ns + 16);
    FillSequential(r_keys.data(), nr, 1);
    FillUniform(r_attrs.data(), nr, 5, 1, 64);
    FillUniform(s_fks.data(), ns, 6, 1,
                nr == 0 ? 1 : static_cast<uint32_t>(nr));
    if (clustered_vals) {
      // Non-decreasing ramp over the value domain: block zone maps are
      // tight, so a selective predicate skips almost every block.
      for (size_t i = 0; i < ns; ++i) {
        s_vals[i] = static_cast<uint32_t>(uint64_t{1'000'000} * i /
                                          (ns == 0 ? 1 : ns));
      }
    } else {
      FillUniform(s_vals.data(), ns, 7, 0, 999'999);
    }
    r_keys_c = CompressColumn(r_keys.data(), nr);
    r_attrs_c = CompressColumn(r_attrs.data(), nr);
    s_fks_c = CompressColumn(s_fks.data(), ns);
    s_vals_c = CompressColumn(s_vals.data(), ns);
  }

  ScanJoinAggregatePlan RawPlan() const {
    ScanJoinAggregatePlan p;
    p.r_keys = r_keys.data();
    p.r_attrs = r_attrs.data();
    p.n_r = n_r;
    p.r_lo = 1;
    p.r_hi = n_r == 0 ? 1 : static_cast<uint32_t>((3 * n_r) / 4);
    p.s_fks = s_fks.data();
    p.s_vals = s_vals.data();
    p.n_s = n_s;
    p.s_lo = 0;
    p.s_hi = 99'999;  // ~10% of S
    p.max_groups_hint = 128;
    return p;
  }

  ScanJoinAggregatePlan CompressedPlan() const {
    ScanJoinAggregatePlan p = RawPlan();
    p.r_keys_c = &r_keys_c;
    p.r_attrs_c = &r_attrs_c;
    p.s_fks_c = &s_fks_c;
    p.s_vals_c = &s_vals_c;
    return p;
  }
};

void ExpectIdentical(const QueryResult& a, const QueryResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.group_keys, b.group_keys) << label;
  EXPECT_EQ(a.sums, b.sums) << label;
  EXPECT_EQ(a.counts, b.counts) << label;
  EXPECT_EQ(a.mins, b.mins) << label;
  EXPECT_EQ(a.maxs, b.maxs) << label;
  EXPECT_EQ(a.rows_build, b.rows_build) << label;
  EXPECT_EQ(a.rows_scanned, b.rows_scanned) << label;
  EXPECT_EQ(a.rows_joined, b.rows_joined) << label;
}

TEST(CompressScanTest, CompressedPlanIdenticalToRaw) {
  for (bool clustered : {false, true}) {
    CompressedQueryData d(4096, 60'000, clustered);
    ScanJoinAggregatePlan raw = d.RawPlan();
    ScanJoinAggregatePlan comp = d.CompressedPlan();
    for (Isa isa : SupportedIsas()) {
      for (int threads : {1, 8}) {
        for (ScanMode mode : {ScanMode::kCompact, ScanMode::kBitmap}) {
          for (auto pm : {exec::PipelineMode::kDynamic,
                          exec::PipelineMode::kFused}) {
            raw.scan_mode = comp.scan_mode = mode;
            ExecConfig cfg;
            cfg.isa = isa;
            cfg.threads = threads;
            cfg.chunk_tuples = 257;  // sub-block grid: exercises the cache
            cfg.pipeline_mode = pm;
            const QueryResult want = exec::RunScanJoinAggregate(raw, cfg);
            const QueryResult got = exec::RunScanJoinAggregate(comp, cfg);
            ExpectIdentical(
                got, want,
                std::string(IsaName(isa)) + " t=" + std::to_string(threads) +
                    (mode == ScanMode::kBitmap ? " bitmap" : " compact") +
                    (pm == exec::PipelineMode::kFused ? " fused" : " dyn") +
                    (clustered ? " clustered" : " uniform"));
          }
        }
      }
    }
  }
}

TEST(CompressScanTest, ZoneMapSkipsBlocksOnClusteredInput) {
  // Ramp values with a ~10% predicate: ~90% of the S value blocks fall
  // entirely outside [lo, hi] and must be skipped without decoding.
  CompressedQueryData d(1024, 100'000, /*clustered_vals=*/true);
  ScanJoinAggregatePlan plan = d.CompressedPlan();
  for (ScanMode mode : {ScanMode::kCompact, ScanMode::kBitmap}) {
    plan.scan_mode = mode;
    ScopedMetrics metrics;
    ExecConfig cfg;
    cfg.isa = SupportedIsas().back();
    cfg.pipeline_mode = exec::PipelineMode::kDynamic;
    (void)exec::RunScanJoinAggregate(plan, cfg);
    const uint64_t skipped = Metric("blocks_skipped");
    const uint64_t all_pass = Metric("blocks_all_pass");
    const uint64_t unpacked = Metric("bytes_unpacked");
    // 98 value blocks: ~10 in range (all-pass or mixed), the rest skipped.
    EXPECT_GE(skipped, 80u) << "mode=" << static_cast<int>(mode);
    EXPECT_GE(all_pass, 5u) << "mode=" << static_cast<int>(mode);
    EXPECT_GT(unpacked, 0u) << "mode=" << static_cast<int>(mode);
    // Decoded bytes must stay well under the raw footprint of both S
    // columns — the point of skipping.
    EXPECT_LT(unpacked, d.s_fks_c.raw_bytes()) << "skip saved nothing";
  }
}

TEST(CompressScanTest, AdaptiveModeRoutesCompressedScans) {
  CompressedQueryData d(2048, 50'000, /*clustered_vals=*/false);
  ScanJoinAggregatePlan raw = d.RawPlan();
  ScanJoinAggregatePlan comp = d.CompressedPlan();
  for (auto pm : {exec::PipelineMode::kDynamic, exec::PipelineMode::kFused}) {
    ExecConfig cfg;
    cfg.isa = SupportedIsas().back();
    cfg.threads = 8;
    cfg.isa_mode = exec::IsaMode::kAdaptive;
    cfg.pipeline_mode = pm;
    // Force guaranteed winner rotation: every scan variant (ISA x mode)
    // runs mid-query, so identity here proves the compressed scan is
    // switch-safe on any chunk boundary like every other operator.
    cfg.adaptive.rotate_for_testing = true;
    cfg.adaptive.exploit_chunks = 8;
    const QueryResult want = exec::RunScanJoinAggregate(raw, cfg);
    const QueryResult got = exec::RunScanJoinAggregate(comp, cfg);
    ExpectIdentical(got, want,
                    pm == exec::PipelineMode::kFused ? "adaptive fused"
                                                     : "adaptive dynamic");
  }
}

}  // namespace
}  // namespace simddb
