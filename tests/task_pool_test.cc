// Scheduler tests: TaskPool work distribution (every task exactly once,
// stealing under skewed morsel costs, oversubscription beyond the hardware
// thread count), PhaseBarrier reuse across many phases, sub-morsel inputs,
// the parallel wrappers of the single-threaded operators, and the
// determinism guarantee — parallel radixsort and the max-partition join
// produce byte-identical output for every thread count and run.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "agg/group_by.h"
#include "bloom/bloom_filter.h"
#include "join/hash_join.h"
#include "obs/metrics.h"
#include "scan/selection_scan.h"
#include "sort/radix_sort.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"
#include "util/task_pool.h"

namespace simddb {
namespace {

/// Current value of the named obs instrument (0 + test failure if absent).
uint64_t Metric(const char* name) {
  for (const obs::MetricSample& s : obs::MetricsRegistry::Get().Snapshot()) {
    if (std::strcmp(s.name, name) == 0) return s.value;
  }
  ADD_FAILURE() << "metric " << name << " not registered";
  return 0;
}

/// Turns metrics on for one test and restores the default-off state.
struct ScopedMetrics {
  ScopedMetrics() {
    obs::EnableMetrics(true);
    obs::MetricsRegistry::Get().ResetAll();
  }
  ~ScopedMetrics() { obs::EnableMetrics(false); }
};

TEST(TaskPoolTest, RunsEveryTaskExactlyOnce) {
  constexpr size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  TaskPool::Get().ParallelFor(kTasks, 8, [&](int worker, size_t task) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 8);
    hits[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(hits[t].load(), 1) << "task " << t;
  }
}

TEST(TaskPoolTest, SingleTaskAndSingleWorkerRunInlineOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  TaskPool::Get().ParallelFor(1, 8, [&](int worker, size_t task) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(task, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
  size_t count = 0;
  TaskPool::Get().ParallelFor(64, 1, [&](int worker, size_t) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++count;  // safe: inline fast path is sequential
  });
  EXPECT_EQ(count, 64u);
}

TEST(TaskPoolTest, OversubscriptionBeyondHardwareThreads) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int workers = std::min(TaskPool::MaxWorkers(), 2 * std::max(hw, 8));
  constexpr size_t kTasks = 4096;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  TaskPool::Get().ParallelFor(kTasks, workers, [&](int, size_t task) {
    hits[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t t = 0; t < kTasks; ++t) {
    ASSERT_EQ(hits[t].load(), 1) << "task " << t;
  }
  EXPECT_LE(TaskPool::Get().SpawnedWorkers(), TaskPool::MaxWorkers());
}

TEST(TaskPoolTest, StealingRebalancesSkewedTaskCosts) {
  // Lane 0's first task blocks for a long time; its remaining contiguous
  // tasks must migrate to other lanes while it sleeps.
  constexpr size_t kTasks = 64;
  const int workers = 4;
  std::vector<std::atomic<int>> ran_by(kTasks);
  for (auto& r : ran_by) r.store(-1);
  TaskPool::Get().ParallelFor(kTasks, workers, [&](int worker, size_t task) {
    if (task == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    ran_by[task].store(worker, std::memory_order_relaxed);
  });
  for (size_t t = 0; t < kTasks; ++t) {
    ASSERT_GE(ran_by[t].load(), 0) << "task " << t << " never ran";
  }
  // Lane 0 initially owns tasks [0, 16); while it sleeps in task 0, at
  // least one of them must have been stolen by another lane.
  int stolen = 0;
  for (size_t t = 1; t < kTasks / workers; ++t) {
    if (ran_by[t].load() != 0) ++stolen;
  }
  EXPECT_GT(stolen, 0);
}

TEST(TaskPoolTest, PhaseBarrierReusedAcrossManyPhases) {
  constexpr int kPhases = 10;
  const int workers = 8;
  std::atomic<int> counter{0};
  std::atomic<bool> ok{true};
  TaskPool::Get().ParallelPhases(
      workers, [&](int lane, int n_lanes, PhaseBarrier& barrier) {
        EXPECT_EQ(barrier.parties(), n_lanes);
        EXPECT_GE(lane, 0);
        EXPECT_LT(lane, n_lanes);
        for (int phase = 0; phase < kPhases; ++phase) {
          counter.fetch_add(1, std::memory_order_relaxed);
          barrier.Wait();
          // After the barrier every lane of this phase has incremented.
          if (counter.load(std::memory_order_relaxed) <
              n_lanes * (phase + 1)) {
            ok.store(false);
          }
          barrier.Wait();  // keep phases separated for the next increment
        }
      });
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(counter.load(), 8 * kPhases);
}

TEST(TaskPoolTest, NestedParallelForRunsInline) {
  std::atomic<size_t> total{0};
  TaskPool::Get().ParallelFor(8, 4, [&](int, size_t) {
    // A nested call from inside a pool job must not deadlock; it runs
    // inline on the worker.
    TaskPool::Get().ParallelFor(16, 4, [&](int worker, size_t) {
      EXPECT_EQ(worker, 0);
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

// The release-build guard for ranges past kMaxTasksPerDispatch: ParallelFor
// delegates to ParallelForChunked, exercised here with a small chunk so the
// splitting path is covered without dispatching 2^32 real tasks. (The old
// guard was an assert that compiled out under NDEBUG, after which PackRange
// silently truncated task indices to 32 bits.)
TEST(TaskPoolTest, ParallelForChunkedRunsEveryTaskExactlyOnce) {
  constexpr size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  TaskPool::Get().ParallelForChunked(kTasks, 64, 8, [&](int, size_t task) {
    ASSERT_LT(task, kTasks);
    hits[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t t = 0; t < kTasks; ++t) {
    ASSERT_EQ(hits[t].load(), 1) << "task " << t;
  }
}

TEST(TaskPoolTest, ParallelForChunkedHandlesDegenerateChunkSizes) {
  constexpr size_t kTasks = 10;
  for (size_t chunk : {size_t{0}, size_t{1}, size_t{3}, kTasks,
                       TaskPool::kMaxTasksPerDispatch + 1}) {
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& h : hits) h.store(0);
    TaskPool::Get().ParallelForChunked(kTasks, chunk, 4,
                                       [&](int, size_t task) {
                                         hits[task].fetch_add(
                                             1, std::memory_order_relaxed);
                                       });
    for (size_t t = 0; t < kTasks; ++t) {
      ASSERT_EQ(hits[t].load(), 1) << "chunk " << chunk << " task " << t;
    }
  }
}

TEST(TaskPoolMetricsTest, CountsMorselsAndRangeSplits) {
  ScopedMetrics metrics;
  constexpr size_t kTasks = 100;
  std::atomic<size_t> ran{0};
  TaskPool::Get().ParallelForChunked(kTasks, 10, 4, [&](int, size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), kTasks);
  // Every executed task is one morsel; the 100-task range split into ten
  // 10-task sub-dispatches.
  EXPECT_EQ(Metric("morsels"), kTasks);
  EXPECT_EQ(Metric("range_splits"), 10u);
}

TEST(TaskPoolMetricsTest, CountsInlineRuns) {
  ScopedMetrics metrics;
  TaskPool::Get().ParallelFor(64, 1, [](int, size_t) {});
  EXPECT_EQ(Metric("inline_runs"), 1u);
  EXPECT_EQ(Metric("morsels"), 64u);
  EXPECT_EQ(Metric("dispatches"), 0u);
}

TEST(TaskPoolMetricsTest, CountsStealsUnderSkewedTaskCosts) {
  ScopedMetrics metrics;
  // Same skew as StealingRebalancesSkewedTaskCosts: lane 0 blocks in its
  // first task, so its remaining contiguous tasks must be stolen.
  constexpr size_t kTasks = 64;
  TaskPool::Get().ParallelFor(kTasks, 4, [&](int, size_t task) {
    if (task == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  });
  EXPECT_EQ(Metric("morsels"), kTasks);
  EXPECT_EQ(Metric("dispatches"), 1u);
  EXPECT_GT(Metric("steals"), 0u);
  EXPECT_GT(Metric("stolen_tasks"), 0u);
}

TEST(TaskPoolMetricsTest, AccumulatesBarrierWaitTime) {
  ScopedMetrics metrics;
  TaskPool::Get().ParallelPhases(
      4, [](int lane, int, PhaseBarrier& barrier) {
        if (lane == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        barrier.Wait();
      });
  // Every lane but the sleeper blocked ~50 ms at the barrier.
  EXPECT_GT(Metric("barrier_wait_ns"), 0u);
}

TEST(TaskPoolMetricsTest, DisabledMetricsStayZero) {
  if (obs::kMetricsForced) GTEST_SKIP() << "metrics forced on at compile time";
  obs::EnableMetrics(false);
  obs::MetricsRegistry::Get().ResetAll();
  TaskPool::Get().ParallelFor(256, 4, [](int, size_t) {});
  EXPECT_EQ(Metric("morsels"), 0u);
  EXPECT_EQ(Metric("dispatches"), 0u);
  EXPECT_EQ(Metric("steals"), 0u);
}

TEST(TaskPoolTest, BoundedMorselSizeStaysAlignedAndBounded) {
  for (size_t n : {size_t{0}, size_t{1}, kMorselTuples - 1, kMorselTuples,
                   kMorselTuples* kMaxMorselsPerPass,
                   kMorselTuples* kMaxMorselsPerPass + 1, size_t{1} << 26}) {
    const size_t morsel = BoundedMorselSize(n);
    EXPECT_EQ(morsel % 16, 0u) << n;
    EXPECT_GE(morsel, kMorselTuples) << n;
    EXPECT_LE(MorselGrid(n, morsel).count(), kMaxMorselsPerPass) << n;
  }
}

TEST(ParallelOperatorsTest, SelectionScanParallelMatchesSerial) {
  for (size_t n : {size_t{0}, size_t{100}, kMorselTuples - 5,
                   size_t{5} * kMorselTuples + 123}) {
    AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
    FillUniform(keys.data(), n, 7, 0, 1000);
    FillSequential(pays.data(), n, 0);
    AlignedBuffer<uint32_t> sk(SelectionScanCapacity(n)),
        sp(SelectionScanCapacity(n));
    const size_t cap = SelectionScanParallelCapacity(n);
    AlignedBuffer<uint32_t> pk(cap), pp(cap);
    for (ScanVariant v :
         {ScanVariant::kScalarBranching, ScanVariant::kVectorStoreIndirect}) {
      if (!ScanVariantSupported(v)) continue;
      const size_t want =
          SelectionScan(v, keys.data(), pays.data(), n, 100, 600, sk.data(),
                        sp.data());
      for (int threads : {1, 2, 8}) {
        const size_t got =
            SelectionScanParallel(v, keys.data(), pays.data(), n, 100, 600,
                                  pk.data(), pp.data(), threads);
        ASSERT_EQ(got, want) << ScanVariantName(v) << " t=" << threads;
        EXPECT_EQ(std::memcmp(pk.data(), sk.data(), want * 4), 0);
        EXPECT_EQ(std::memcmp(pp.data(), sp.data(), want * 4), 0);
      }
    }
  }
}

// Adversarial sizes for the parallel wrappers: empty input, a single tuple,
// exact morsel multiples (no tail), and 100% selectivity (every staging
// segment full, so the in-order compaction moves the maximum volume).
TEST(ParallelOperatorsTest, SelectionScanParallelAdversarialSizes) {
  for (size_t n : {size_t{0}, size_t{1}, kMorselTuples,
                   2 * kMorselTuples}) {
    AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
    FillUniform(keys.data(), n, 41, 0, 1000);
    FillSequential(pays.data(), n, 0);
    AlignedBuffer<uint32_t> sk(SelectionScanCapacity(n)),
        sp(SelectionScanCapacity(n));
    const size_t cap = SelectionScanParallelCapacity(n);
    AlignedBuffer<uint32_t> pk(cap), pp(cap);
    for (ScanVariant v :
         {ScanVariant::kScalarBranchless, ScanVariant::kVectorStoreDirect}) {
      if (!ScanVariantSupported(v)) continue;
      // 100% selectivity: the full key domain passes.
      const size_t want = SelectionScan(v, keys.data(), pays.data(), n, 0,
                                        0xFFFFFFFFu, sk.data(), sp.data());
      ASSERT_EQ(want, n) << ScanVariantName(v);
      for (int threads : {2, 8}) {
        const size_t got =
            SelectionScanParallel(v, keys.data(), pays.data(), n, 0,
                                  0xFFFFFFFFu, pk.data(), pp.data(), threads);
        ASSERT_EQ(got, want) << ScanVariantName(v) << " n=" << n
                             << " t=" << threads;
        EXPECT_EQ(std::memcmp(pk.data(), sk.data(), want * 4), 0);
        EXPECT_EQ(std::memcmp(pp.data(), sp.data(), want * 4), 0);
      }
    }
  }
}

TEST(ParallelOperatorsTest, BloomProbeParallelAdversarialSizes) {
  const size_t max_n = 2 * kMorselTuples;
  AlignedBuffer<uint32_t> keys(max_n + 16), pays(max_n + 16);
  FillUniform(keys.data(), max_n, 43, 1, 1u << 16);
  FillSequential(pays.data(), max_n, 0);
  // Add every probe key: 100% of tuples pass the filter.
  BloomFilter bf = BloomFilter::ForItems(max_n, 10, 4);
  bf.Add(keys.data(), max_n);
  for (size_t n : {size_t{0}, size_t{1}, kMorselTuples, max_n}) {
    AlignedBuffer<uint32_t> sk(n + 16), sp(n + 16);
    const size_t cap = BloomFilter::ProbeParallelCapacity(n);
    AlignedBuffer<uint32_t> pk(cap), pp(cap);
    for (Isa isa : {Isa::kScalar, Isa::kAvx512}) {
      if (!IsaSupported(isa)) continue;
      const size_t want =
          bf.Probe(isa, keys.data(), pays.data(), n, sk.data(), sp.data());
      ASSERT_EQ(want, n) << IsaName(isa) << " n=" << n;
      for (int threads : {2, 8}) {
        const size_t got = bf.ProbeParallel(isa, keys.data(), pays.data(), n,
                                            pk.data(), pp.data(), threads);
        ASSERT_EQ(got, want) << IsaName(isa) << " n=" << n
                             << " t=" << threads;
        std::multiset<std::pair<uint32_t, uint32_t>> a, b;
        for (size_t i = 0; i < want; ++i) {
          a.emplace(sk[i], sp[i]);
          b.emplace(pk[i], pp[i]);
        }
        EXPECT_EQ(a, b) << IsaName(isa) << " n=" << n << " t=" << threads;
      }
    }
  }
}

TEST(ParallelOperatorsTest, BloomProbeParallelMatchesSerial) {
  const size_t n = 3 * kMorselTuples + 777;
  AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
  FillUniform(keys.data(), n, 11, 1, 1u << 20);
  FillSequential(pays.data(), n, 0);
  BloomFilter bf = BloomFilter::ForItems(10000, 10, 4);
  AlignedBuffer<uint32_t> members(10000);
  FillUniform(members.data(), 10000, 13, 1, 1u << 20);
  bf.Add(members.data(), 10000);
  AlignedBuffer<uint32_t> sk(n + 16), sp(n + 16);
  const size_t cap = BloomFilter::ProbeParallelCapacity(n);
  AlignedBuffer<uint32_t> pk(cap), pp(cap);
  for (Isa isa : {Isa::kScalar, Isa::kAvx512}) {
    if (!IsaSupported(isa)) continue;
    const size_t want =
        bf.Probe(isa, keys.data(), pays.data(), n, sk.data(), sp.data());
    for (int threads : {1, 2, 8}) {
      const size_t got = bf.ProbeParallel(isa, keys.data(), pays.data(), n,
                                          pk.data(), pp.data(), threads);
      ASSERT_EQ(got, want) << IsaName(isa) << " t=" << threads;
      if (isa == Isa::kScalar) {
        // Scalar probes preserve input order, so the parallel morsel-order
        // compaction reproduces the serial output exactly.
        EXPECT_EQ(std::memcmp(pk.data(), sk.data(), want * 4), 0);
        EXPECT_EQ(std::memcmp(pp.data(), sp.data(), want * 4), 0);
      } else {
        // Vector probes emit out of order; compare as multisets of pairs.
        std::multiset<std::pair<uint32_t, uint32_t>> a, b;
        for (size_t i = 0; i < want; ++i) {
          a.emplace(sk[i], sp[i]);
          b.emplace(pk[i], pp[i]);
        }
        EXPECT_EQ(a, b);
      }
    }
  }
}

TEST(ParallelOperatorsTest, GroupByAccumulateParallelMatchesSerial) {
  const size_t n = 4 * kMorselTuples + 99;
  const size_t n_groups = 1000;
  AlignedBuffer<uint32_t> keys(n), vals(n);
  FillUniform(keys.data(), n, 17, 1, static_cast<uint32_t>(n_groups));
  FillUniform(vals.data(), n, 19, 0, 10000);
  for (Isa isa : {Isa::kScalar, Isa::kAvx512}) {
    if (!IsaSupported(isa)) continue;
    GroupByAggregator serial(n_groups);
    serial.Accumulate(isa, keys.data(), vals.data(), n);
    std::vector<uint32_t> sg(serial.num_groups()), sc(serial.num_groups()),
        smin(serial.num_groups()), smax(serial.num_groups());
    std::vector<uint64_t> ss(serial.num_groups());
    serial.Extract(Isa::kScalar, sg.data(), ss.data(), sc.data(), smin.data(),
                   smax.data());
    std::map<uint32_t, std::tuple<uint64_t, uint32_t, uint32_t, uint32_t>>
        want;
    for (size_t i = 0; i < sg.size(); ++i) {
      want[sg[i]] = {ss[i], sc[i], smin[i], smax[i]};
    }
    for (int threads : {2, 8}) {
      GroupByAggregator par(n_groups);
      par.AccumulateParallel(isa, keys.data(), vals.data(), n, threads);
      ASSERT_EQ(par.num_groups(), serial.num_groups())
          << IsaName(isa) << " t=" << threads;
      std::vector<uint32_t> pg(par.num_groups()), pc(par.num_groups()),
          pmin(par.num_groups()), pmax(par.num_groups());
      std::vector<uint64_t> ps(par.num_groups());
      par.Extract(Isa::kScalar, pg.data(), ps.data(), pc.data(), pmin.data(),
                  pmax.data());
      for (size_t i = 0; i < pg.size(); ++i) {
        auto it = want.find(pg[i]);
        ASSERT_NE(it, want.end()) << "unexpected group " << pg[i];
        EXPECT_EQ(std::get<0>(it->second), ps[i]) << "sum of " << pg[i];
        EXPECT_EQ(std::get<1>(it->second), pc[i]) << "count of " << pg[i];
        EXPECT_EQ(std::get<2>(it->second), pmin[i]) << "min of " << pg[i];
        EXPECT_EQ(std::get<3>(it->second), pmax[i]) << "max of " << pg[i];
      }
    }
  }
}

// Byte-identical output across thread counts and runs: the acceptance bar
// for dynamic scheduling (layout must depend on the morsel grid only).
TEST(DeterminismTest, RadixSortPairsByteIdenticalAcrossThreadsAndRuns) {
  const size_t n = (size_t{1} << 18) + 345;  // 17 morsels
  AlignedBuffer<uint32_t> base_k(n + 16), base_p(n + 16);
  FillUniform(base_k.data(), n, 23, 0, 0xFFFFFFFFu);
  FillSequential(base_p.data(), n, 0);
  for (Isa isa : {Isa::kScalar, Isa::kAvx512}) {
    if (!IsaSupported(isa)) continue;
    std::vector<uint32_t> ref_k, ref_p;
    for (int threads : {1, 2, 8}) {
      for (int run = 0; run < (threads == 8 ? 3 : 1); ++run) {
        AlignedBuffer<uint32_t> k(n + 16), p(n + 16), sk(n + 16), sp(n + 16);
        std::memcpy(k.data(), base_k.data(), n * 4);
        std::memcpy(p.data(), base_p.data(), n * 4);
        RadixSortConfig cfg;
        cfg.isa = isa;
        cfg.threads = threads;
        RadixSortPairs(k.data(), p.data(), sk.data(), sp.data(), n, cfg);
        if (ref_k.empty()) {
          ref_k.assign(k.data(), k.data() + n);
          ref_p.assign(p.data(), p.data() + n);
          for (size_t i = 1; i < n; ++i) ASSERT_LE(ref_k[i - 1], ref_k[i]);
        } else {
          ASSERT_EQ(std::memcmp(k.data(), ref_k.data(), n * 4), 0)
              << IsaName(isa) << " t=" << threads << " run=" << run;
          ASSERT_EQ(std::memcmp(p.data(), ref_p.data(), n * 4), 0)
              << IsaName(isa) << " t=" << threads << " run=" << run;
        }
      }
    }
  }
}

TEST(DeterminismTest, RadixSortMultiColumnByteIdenticalAcrossThreads) {
  const size_t n = (size_t{1} << 17) + 77;
  AlignedBuffer<uint32_t> base_k(n + 16);
  FillUniform(base_k.data(), n, 29, 0, 0xFFFFFFFFu);
  std::vector<uint16_t> base_c16(n);
  std::vector<uint64_t> base_c64(n);
  for (size_t i = 0; i < n; ++i) {
    base_c16[i] = static_cast<uint16_t>(i);
    base_c64[i] = i * 1000003ull;
  }
  for (Isa isa : {Isa::kScalar, Isa::kAvx512}) {
    if (!IsaSupported(isa)) continue;
    std::vector<uint32_t> ref_k;
    std::vector<uint16_t> ref_c16;
    std::vector<uint64_t> ref_c64;
    for (int threads : {1, 2, 8}) {
      AlignedBuffer<uint32_t> k(n + 16), sk(n + 16);
      std::memcpy(k.data(), base_k.data(), n * 4);
      std::vector<uint16_t> c16 = base_c16, s16(n + 16);
      std::vector<uint64_t> c64 = base_c64, s64(n + 16);
      c16.resize(n + 16);
      c64.resize(n + 16);
      SortColumn cols[2] = {{c16.data(), s16.data(), 2},
                            {c64.data(), s64.data(), 8}};
      RadixSortConfig cfg;
      cfg.isa = isa;
      cfg.threads = threads;
      RadixSortMultiColumn(k.data(), sk.data(), n, cols, 2, cfg);
      if (ref_k.empty()) {
        ref_k.assign(k.data(), k.data() + n);
        ref_c16.assign(c16.begin(), c16.begin() + n);
        ref_c64.assign(c64.begin(), c64.begin() + n);
        for (size_t i = 1; i < n; ++i) ASSERT_LE(ref_k[i - 1], ref_k[i]);
      } else {
        ASSERT_EQ(std::memcmp(k.data(), ref_k.data(), n * 4), 0)
            << IsaName(isa) << " t=" << threads;
        ASSERT_EQ(std::memcmp(c16.data(), ref_c16.data(), n * 2), 0)
            << IsaName(isa) << " t=" << threads;
        ASSERT_EQ(std::memcmp(c64.data(), ref_c64.data(), n * 8), 0)
            << IsaName(isa) << " t=" << threads;
      }
    }
  }
}

TEST(DeterminismTest, MaxPartitionJoinByteIdenticalAcrossThreadsAndRuns) {
  const size_t rn = size_t{1} << 16;
  const size_t sn = (size_t{1} << 18) + 513;
  AlignedBuffer<uint32_t> rk(rn + 16), rp(rn + 16), sk(sn + 16), sp(sn + 16);
  FillUniqueShuffled(rk.data(), rn, 31, 1);
  FillSequential(rp.data(), rn, 0);
  FillProbeKeys(sk.data(), sn, rk.data(), rn, 0.9, 37);
  FillSequential(sp.data(), sn, 0);
  JoinRelation r{rk.data(), rp.data(), rn};
  JoinRelation s{sk.data(), sp.data(), sn};
  for (Isa isa : {Isa::kScalar, Isa::kAvx512}) {
    if (!IsaSupported(isa)) continue;
    std::vector<uint32_t> ref_k, ref_rp, ref_sp;
    size_t ref_matches = 0;
    for (int threads : {1, 2, 8}) {
      for (int run = 0; run < (threads == 8 ? 3 : 1); ++run) {
        AlignedBuffer<uint32_t> ok(sn + 16), orp(sn + 16), osp(sn + 16);
        JoinConfig cfg;
        cfg.isa = isa;
        cfg.threads = threads;
        const size_t matches = HashJoinMaxPartition(r, s, cfg, ok.data(),
                                                    orp.data(), osp.data());
        if (ref_k.empty()) {
          ref_matches = matches;
          ASSERT_GT(matches, 0u);
          ref_k.assign(ok.data(), ok.data() + matches);
          ref_rp.assign(orp.data(), orp.data() + matches);
          ref_sp.assign(osp.data(), osp.data() + matches);
        } else {
          ASSERT_EQ(matches, ref_matches)
              << IsaName(isa) << " t=" << threads << " run=" << run;
          ASSERT_EQ(std::memcmp(ok.data(), ref_k.data(), matches * 4), 0)
              << IsaName(isa) << " t=" << threads << " run=" << run;
          ASSERT_EQ(std::memcmp(orp.data(), ref_rp.data(), matches * 4), 0)
              << IsaName(isa) << " t=" << threads << " run=" << run;
          ASSERT_EQ(std::memcmp(osp.data(), ref_sp.data(), matches * 4), 0)
              << IsaName(isa) << " t=" << threads << " run=" << run;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Inter-query fair scheduling (query tags)
// ---------------------------------------------------------------------------

TEST(TaskPoolQueryTagTest, TaggedRunCountsMorselsPerTag) {
  TaskPool& pool = TaskPool::Get();
  const uint64_t tag = pool.RegisterQueryTag();
  {
    TaskPool::QueryTagScope scope(tag);
    std::vector<std::atomic<int>> hits(300);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(300, 4, [&](int, size_t t) {
      hits[t].fetch_add(1, std::memory_order_relaxed);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  EXPECT_EQ(pool.QueryTagMorsels(tag), 300u);
  pool.UnregisterQueryTag(tag);
  EXPECT_EQ(pool.QueryTagMorsels(tag), 0u);
}

TEST(TaskPoolQueryTagTest, InlineSingleLanePathStillCreditsTag) {
  // threads = 1 runs inline on the caller with no pooled dispatch; the
  // no-starvation observable (per-tag drained morsels) must still be exact.
  TaskPool& pool = TaskPool::Get();
  const uint64_t tag = pool.RegisterQueryTag();
  {
    TaskPool::QueryTagScope scope(tag);
    size_t ran = 0;
    pool.ParallelFor(17, 1, [&](int, size_t) { ++ran; });
    EXPECT_EQ(ran, 17u);
    PhaseBarrier* seen = nullptr;
    pool.ParallelPhases(1, [&](int lane, int n_lanes, PhaseBarrier& b) {
      EXPECT_EQ(lane, 0);
      EXPECT_EQ(n_lanes, 1);
      seen = &b;
    });
    EXPECT_NE(seen, nullptr);
  }
  EXPECT_EQ(pool.QueryTagMorsels(tag), 18u);  // 17 tasks + 1 phase job
  pool.UnregisterQueryTag(tag);
}

TEST(TaskPoolQueryTagTest, AbortBeforeStartThrowsWithoutRunningTasks) {
  TaskPool& pool = TaskPool::Get();
  const uint64_t tag = pool.RegisterQueryTag();
  pool.AbortQueryTag(tag);
  std::atomic<size_t> ran{0};
  {
    TaskPool::QueryTagScope scope(tag);
    EXPECT_THROW(
        pool.ParallelFor(100, 4, [&](int, size_t) { ran.fetch_add(1); }),
        QueryAborted);
    EXPECT_THROW(pool.ParallelFor(100, 1, [&](int, size_t) { ran.fetch_add(1); }),
                 QueryAborted);
    EXPECT_THROW(pool.ParallelPhases(
                     4, [&](int, int, PhaseBarrier&) { ran.fetch_add(1); }),
                 QueryAborted);
  }
  EXPECT_EQ(ran.load(), 0u);
  EXPECT_EQ(pool.QueryTagMorsels(tag), 0u);
  pool.UnregisterQueryTag(tag);
}

TEST(TaskPoolQueryTagTest, AbortMidRunDrainsQueuedQuantaCleanly) {
  // Two registered tags force quantum slicing (a solo tag is granted its
  // whole range at once). The aborted query's first quantum is held open by
  // a latched task; the abort lands while it is in flight, so the already-
  // dispatched quantum finishes normally and the *next* quantum boundary
  // throws — the queued remainder of the range is never dispatched.
  TaskPool& pool = TaskPool::Get();
  const uint64_t victim = pool.RegisterQueryTag();
  const uint64_t other = pool.RegisterQueryTag();

  std::atomic<size_t> executed{0};
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> aborted{false};

  std::thread runner([&] {
    TaskPool::QueryTagScope scope(victim);
    try {
      pool.ParallelFor(10000, 2, [&](int, size_t task) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (task == 0) {
          started.store(true, std::memory_order_release);
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        }
      });
    } catch (const QueryAborted& e) {
      EXPECT_EQ(e.tag, victim);
      aborted.store(true);
    }
  });

  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
  pool.AbortQueryTag(victim);  // while quantum 1 is in flight
  release.store(true, std::memory_order_release);
  runner.join();

  EXPECT_TRUE(aborted.load());
  // Exactly the first quantum ran: abort preceded its completion, so no
  // further quantum was granted.
  EXPECT_EQ(executed.load(), TaskPool::kFairQuantumTasks);
  EXPECT_EQ(pool.QueryTagMorsels(victim), TaskPool::kFairQuantumTasks);

  // The pool stays fully usable after the abort: untagged and other-tag
  // work proceeds normally.
  std::atomic<size_t> after{0};
  pool.ParallelFor(64, 4, [&](int, size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 64u);
  {
    TaskPool::QueryTagScope scope(other);
    pool.ParallelFor(40, 4, [&](int, size_t) {});
  }
  EXPECT_EQ(pool.QueryTagMorsels(other), 40u);
  pool.UnregisterQueryTag(victim);
  pool.UnregisterQueryTag(other);
  EXPECT_EQ(pool.RegisteredQueryTags(), 0u);
}

TEST(TaskPoolQueryTagTest, ConcurrentTagsAllDrainAndSliceIntoQuanta) {
  ScopedMetrics metrics;
  TaskPool& pool = TaskPool::Get();
  constexpr int kQueries = 4;
  constexpr size_t kTasksEach = 128;
  std::vector<uint64_t> tags;
  for (int i = 0; i < kQueries; ++i) tags.push_back(pool.RegisterQueryTag());

  std::vector<std::thread> threads;
  std::vector<std::atomic<size_t>> done(kQueries);
  for (auto& d : done) d.store(0);
  for (int i = 0; i < kQueries; ++i) {
    threads.emplace_back([&, i] {
      TaskPool::QueryTagScope scope(tags[i]);
      pool.ParallelFor(kTasksEach, 2, [&](int, size_t) {
        done[i].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kQueries; ++i) {
    EXPECT_EQ(done[i].load(), kTasksEach) << "query " << i;
    EXPECT_EQ(pool.QueryTagMorsels(tags[i]), kTasksEach) << "query " << i;
    pool.UnregisterQueryTag(tags[i]);
  }
  // With > 1 tag registered, ranges are sliced: every query needed at
  // least kTasksEach / kFairQuantumTasks quanta (pooled dispatches only;
  // 2 lanes >= pooled path on any host).
  EXPECT_GE(Metric("fair_quanta"),
            kQueries * (kTasksEach / TaskPool::kFairQuantumTasks));
}

}  // namespace
}  // namespace simddb
