// Selection scan tests (§4): all variants must agree with the branching
// scalar baseline, in content and order, across selectivities and sizes.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "scan/selection_scan.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb {
namespace {

struct ScanCase {
  ScanVariant variant;
  size_t n;
  uint32_t lo;
  uint32_t hi;
};

std::vector<ScanVariant> AllVariants() {
  return {ScanVariant::kScalarBranching,
          ScanVariant::kScalarBranchless,
          ScanVariant::kVectorBitExtractDirect,
          ScanVariant::kVectorStoreDirect,
          ScanVariant::kVectorBitExtractIndirect,
          ScanVariant::kVectorStoreIndirect,
          ScanVariant::kAvx2Direct,
          ScanVariant::kAvx2Indirect};
}

class SelectionScanTest
    : public ::testing::TestWithParam<std::tuple<ScanVariant, size_t, int>> {
};

TEST_P(SelectionScanTest, MatchesBranchingBaseline) {
  auto [variant, n, sel_pct] = GetParam();
  if (!ScanVariantSupported(variant)) {
    GTEST_SKIP() << "variant unsupported on this host";
  }
  AlignedBuffer<uint32_t> keys(SelectionScanCapacity(n));
  AlignedBuffer<uint32_t> pays(SelectionScanCapacity(n));
  FillUniform(keys.data(), n, 42, 0, 999'999);
  FillSequential(pays.data(), n, 0);

  // Range predicate selecting roughly sel_pct percent of the keys.
  uint32_t lo = 100'000;
  uint32_t hi = lo + static_cast<uint32_t>(10'000ull * sel_pct);

  AlignedBuffer<uint32_t> want_k(SelectionScanCapacity(n));
  AlignedBuffer<uint32_t> want_p(SelectionScanCapacity(n));
  size_t want = SelectionScan(ScanVariant::kScalarBranching, keys.data(),
                              pays.data(), n, lo, hi, want_k.data(),
                              want_p.data());

  AlignedBuffer<uint32_t> got_k(SelectionScanCapacity(n));
  AlignedBuffer<uint32_t> got_p(SelectionScanCapacity(n));
  size_t got = SelectionScan(variant, keys.data(), pays.data(), n, lo, hi,
                             got_k.data(), got_p.data());

  ASSERT_EQ(got, want) << ScanVariantName(variant);
  for (size_t i = 0; i < want; ++i) {
    ASSERT_EQ(got_k[i], want_k[i]) << "key @" << i;
    ASSERT_EQ(got_p[i], want_p[i]) << "payload @" << i;
  }
  // Payloads must dereference back to their keys (rid integrity).
  for (size_t i = 0; i < got; ++i) {
    ASSERT_EQ(keys[got_p[i]], got_k[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectionScanTest,
    ::testing::Combine(::testing::ValuesIn(AllVariants()),
                       ::testing::Values<size_t>(0, 1, 15, 16, 17, 1000,
                                                 65536, 100003),
                       ::testing::Values(0, 1, 10, 50, 100)),
    [](const auto& info) {
      return std::string(ScanVariantName(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_sel" +
             std::to_string(std::get<2>(info.param));
    });

class SelectionScanEdgeTest : public ::testing::TestWithParam<ScanVariant> {};

TEST_P(SelectionScanEdgeTest, FullDomainPredicateKeepsEverything) {
  ScanVariant variant = GetParam();
  if (!ScanVariantSupported(variant)) GTEST_SKIP();
  const size_t n = 4096 + 7;
  AlignedBuffer<uint32_t> keys(SelectionScanCapacity(n));
  AlignedBuffer<uint32_t> pays(SelectionScanCapacity(n));
  FillUniform(keys.data(), n, 1, 0, 0xFFFFFFFFu);
  FillSequential(pays.data(), n, 0);
  AlignedBuffer<uint32_t> out_k(SelectionScanCapacity(n));
  AlignedBuffer<uint32_t> out_p(SelectionScanCapacity(n));
  size_t got = SelectionScan(variant, keys.data(), pays.data(), n, 0,
                             0xFFFFFFFFu, out_k.data(), out_p.data());
  ASSERT_EQ(got, n);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(out_k[i], keys[i]);
}

TEST_P(SelectionScanEdgeTest, EmptyPredicateKeepsNothing) {
  ScanVariant variant = GetParam();
  if (!ScanVariantSupported(variant)) GTEST_SKIP();
  const size_t n = 4096;
  AlignedBuffer<uint32_t> keys(SelectionScanCapacity(n));
  AlignedBuffer<uint32_t> pays(SelectionScanCapacity(n));
  FillUniform(keys.data(), n, 1, 0, 1000);
  FillSequential(pays.data(), n, 0);
  AlignedBuffer<uint32_t> out_k(SelectionScanCapacity(n));
  AlignedBuffer<uint32_t> out_p(SelectionScanCapacity(n));
  size_t got = SelectionScan(variant, keys.data(), pays.data(), n, 5000, 6000,
                             out_k.data(), out_p.data());
  EXPECT_EQ(got, 0u);
}

TEST_P(SelectionScanEdgeTest, BoundariesAreInclusive) {
  ScanVariant variant = GetParam();
  if (!ScanVariantSupported(variant)) GTEST_SKIP();
  const size_t n = 64;
  AlignedBuffer<uint32_t> keys(SelectionScanCapacity(n));
  AlignedBuffer<uint32_t> pays(SelectionScanCapacity(n));
  FillSequential(keys.data(), n, 0);
  FillSequential(pays.data(), n, 0);
  AlignedBuffer<uint32_t> out_k(SelectionScanCapacity(n));
  AlignedBuffer<uint32_t> out_p(SelectionScanCapacity(n));
  size_t got = SelectionScan(variant, keys.data(), pays.data(), n, 10, 20,
                             out_k.data(), out_p.data());
  ASSERT_EQ(got, 11u);
  EXPECT_EQ(out_k[0], 10u);
  EXPECT_EQ(out_k[10], 20u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, SelectionScanEdgeTest,
                         ::testing::ValuesIn(AllVariants()),
                         [](const auto& info) {
                           return std::string(ScanVariantName(info.param));
                         });

}  // namespace
}  // namespace simddb
