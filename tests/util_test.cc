// Unit tests for the util substrate: buffers, RNG, data generation,
// prefix sums, thread team, CPU introspection.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/bits.h"
#include "util/cpu_info.h"
#include "util/data_gen.h"
#include "util/prefix_sum.h"
#include "util/rng.h"
#include "util/thread_team.h"

namespace simddb {
namespace {

TEST(Bits, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0u);
  EXPECT_EQ(Log2Floor(2), 1u);
  EXPECT_EQ(Log2Floor(3), 1u);
  EXPECT_EQ(Log2Floor(4), 2u);
  EXPECT_EQ(Log2Floor(uint64_t{1} << 40), 40u);
}

TEST(Bits, Log2Ceil) {
  EXPECT_EQ(Log2Ceil(1), 0u);
  EXPECT_EQ(Log2Ceil(2), 1u);
  EXPECT_EQ(Log2Ceil(3), 2u);
  EXPECT_EQ(Log2Ceil(4), 2u);
  EXPECT_EQ(Log2Ceil(5), 3u);
}

TEST(Bits, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(65));
}

TEST(Bits, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(4), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(Bits, RoundUp) {
  EXPECT_EQ(RoundUp(0, 16), 0u);
  EXPECT_EQ(RoundUp(1, 16), 16u);
  EXPECT_EQ(RoundUp(16, 16), 16u);
  EXPECT_EQ(RoundUp(17, 16), 32u);
}

TEST(AlignedBuffer, AlignmentAndSize) {
  AlignedBuffer<uint32_t> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 64, 0u);
  buf.Clear();
  for (size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0u);
}

TEST(AlignedBuffer, MoveSemantics) {
  AlignedBuffer<uint32_t> a(16);
  a[0] = 42;
  AlignedBuffer<uint32_t> b(std::move(a));
  EXPECT_EQ(b[0], 42u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
  AlignedBuffer<uint32_t> c;
  c = std::move(b);
  EXPECT_EQ(c[0], 42u);
}

TEST(AlignedBuffer, EmptyIsSafe) {
  AlignedBuffer<uint32_t> buf;
  EXPECT_TRUE(buf.empty());
  buf.Clear();  // no-op, must not crash
  buf.Reset(0);
  EXPECT_TRUE(buf.empty());
}

TEST(Pcg32, DeterministicPerSeed) {
  Pcg32 a(7), b(7), c(8);
  uint32_t va = a.Next(), vb = b.Next(), vc = c.Next();
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(Pcg32, BoundedStaysInRange) {
  Pcg32 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Pcg32, RoughlyUniform) {
  Pcg32 rng(11);
  int counts[8] = {0};
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(8)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 8 - kDraws / 40);
    EXPECT_LT(c, kDraws / 8 + kDraws / 40);
  }
}

TEST(DataGen, UniformRespectsBounds) {
  std::vector<uint32_t> v(4096);
  FillUniform(v.data(), v.size(), 1, 100, 200);
  for (uint32_t x : v) {
    EXPECT_GE(x, 100u);
    EXPECT_LE(x, 200u);
  }
}

TEST(DataGen, UniqueShuffledIsAPermutation) {
  std::vector<uint32_t> v(1000);
  FillUniqueShuffled(v.data(), v.size(), 5, 1);
  std::vector<uint32_t> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], i + 1);
  }
  // And actually shuffled: not identical to sorted order.
  EXPECT_NE(v, sorted);
}

TEST(DataGen, RepeatsHaveRequestedCardinality) {
  std::vector<uint32_t> v(10000);
  FillWithRepeats(v.data(), v.size(), 250, 9, 1);
  std::set<uint32_t> uniq(v.begin(), v.end());
  EXPECT_EQ(uniq.size(), 250u);
  EXPECT_EQ(*uniq.begin(), 1u);
  EXPECT_EQ(*uniq.rbegin(), 250u);
}

TEST(DataGen, SplittersAreSortedAndCounted) {
  auto s = MakeSplitters(64, 1u << 30);
  EXPECT_EQ(s.size(), 63u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

TEST(DataGen, ProbeKeysHitRate) {
  std::vector<uint32_t> build(1u << 12);
  FillUniqueShuffled(build.data(), build.size(), 2, 1);
  std::vector<uint32_t> probes(1u << 16);
  FillProbeKeys(probes.data(), probes.size(), build.data(), build.size(), 0.5,
                3);
  std::set<uint32_t> bset(build.begin(), build.end());
  size_t hits = 0;
  for (uint32_t p : probes) hits += bset.count(p);
  double rate = static_cast<double>(hits) / probes.size();
  EXPECT_NEAR(rate, 0.5, 0.02);
}

TEST(DataGen, ZipfIsSkewed) {
  std::vector<uint32_t> v(100000);
  FillZipf(v.data(), v.size(), 1000, 0.9, 17, 1);
  size_t top = static_cast<size_t>(std::count(v.begin(), v.end(), 1u));
  // Key 1 should appear far more often than 1/1000 of the time.
  EXPECT_GT(top, v.size() / 200);
  for (uint32_t x : v) {
    EXPECT_GE(x, 1u);
    EXPECT_LE(x, 1000u);
  }
}

TEST(PrefixSum, Exclusive64) {
  uint64_t h[5] = {3, 0, 2, 7, 1};
  uint64_t total = ExclusivePrefixSum(h, 5);
  EXPECT_EQ(total, 13u);
  EXPECT_EQ(h[0], 0u);
  EXPECT_EQ(h[1], 3u);
  EXPECT_EQ(h[2], 3u);
  EXPECT_EQ(h[3], 5u);
  EXPECT_EQ(h[4], 12u);
}

TEST(PrefixSum, InterleavedAcrossThreads) {
  // 2 threads × 3 partitions.
  uint64_t h[6] = {/*t0*/ 1, 2, 3, /*t1*/ 4, 5, 6};
  uint64_t total = InterleavedPrefixSum(h, 2, 3);
  EXPECT_EQ(total, 21u);
  // Partition 0: t0 at 0, t1 at 1. Partition 1 starts at 5: t0 at 5, t1 at 7.
  EXPECT_EQ(h[0], 0u);
  EXPECT_EQ(h[3], 1u);
  EXPECT_EQ(h[1], 5u);
  EXPECT_EQ(h[4], 7u);
  EXPECT_EQ(h[2], 12u);
  EXPECT_EQ(h[5], 15u);
}

TEST(ThreadTeam, RunsEveryTid) {
  std::vector<std::atomic<int>> hits(8);
  ThreadTeam::Run(8, [&](int tid) { hits[tid].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadTeam, SingleThreadRunsInline) {
  int hits = 0;
  ThreadTeam::Run(1, [&](int tid) {
    EXPECT_EQ(tid, 0);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(ThreadTeam, ChunksCoverRange) {
  const size_t n = 1003;
  const int t_count = 7;
  size_t covered = 0;
  for (int t = 0; t < t_count; ++t) {
    size_t b = ThreadTeam::ChunkBegin(n, t_count, t);
    size_t e = ThreadTeam::ChunkBegin(n, t_count, t + 1);
    EXPECT_LE(b, e);
    covered += e - b;
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(ThreadTeam::ChunkBegin(n, t_count, t_count), n);
}

TEST(BarrierTest, SynchronizesPhases) {
  constexpr int kThreads = 4;
  Barrier barrier(kThreads);
  std::atomic<int> phase0{0};
  std::atomic<bool> ok{true};
  ThreadTeam::Run(kThreads, [&](int) {
    phase0.fetch_add(1);
    barrier.Wait();
    if (phase0.load() != kThreads) ok = false;
    barrier.Wait();  // reusable
  });
  EXPECT_TRUE(ok.load());
}

TEST(CpuInfoTest, SaneValues) {
  const CpuInfo& info = GetCpuInfo();
  EXPECT_GE(info.logical_cores, 1);
  EXPECT_GT(info.l1d_bytes, 0u);
  EXPECT_GT(info.l2_bytes, 0u);
}

}  // namespace
}  // namespace simddb
