// Fanout-aware partition planner: budget math, pass splitting, and the
// multi-pass executor's equivalence to a single wide partitioning pass.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/isa.h"
#include "partition/parallel_partition.h"
#include "partition/partition_fn.h"
#include "partition/plan.h"
#include "partition/shuffle.h"
#include "partition/swwc.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb {
namespace {

TEST(PartitionPlanTest, DefaultBudgetShape) {
  PartitionBudget b;  // compile-time defaults, no env overrides
  EXPECT_EQ(b.MaxBuffered16Fanout(), 256u);  // min(512, 32K/128)
  EXPECT_EQ(b.MaxSwwcFanout(), 4096u);       // 512K/128
  EXPECT_EQ(b.MaxBitsPerPass(), 12u);
  EXPECT_EQ(ChooseShuffleVariant(256, b), ShuffleVariant::kBuffered16);
  EXPECT_EQ(ChooseShuffleVariant(512, b), ShuffleVariant::kSwwc);
}

TEST(PartitionPlanTest, SwwcFanoutNeverBelowBuffered16) {
  PartitionBudget b;
  b.l2_staging_bytes = 1;  // degenerate: SWWC budget smaller than L1's
  EXPECT_GE(b.MaxSwwcFanout(), b.MaxBuffered16Fanout());
}

TEST(PartitionPlanTest, PassesRespectBudgetAndSumToTotal) {
  // Acceptance criterion: the planner never emits a pass whose fanout
  // exceeds the per-pass budget, for any total width and any budget.
  std::vector<PartitionBudget> budgets(3);
  budgets[1].l2_staging_bytes = 8 << 10;   // small L2: MaxBitsPerPass 8
  budgets[1].l1_staging_bytes = 2 << 10;
  budgets[1].tlb_partitions = 16;
  budgets[2].l2_staging_bytes = 512;       // pathologically tiny
  budgets[2].l1_staging_bytes = 512;
  budgets[2].tlb_partitions = 2;
  for (const PartitionBudget& b : budgets) {
    for (uint32_t total = 0; total <= 32; ++total) {
      PartitionPlan plan = PlanRadixPasses(total, b);
      ASSERT_GE(plan.passes.size(), 1u);
      uint32_t sum = 0;
      uint32_t min_bits = 33, max_bits = 0;
      for (const PartitionPassPlan& p : plan.passes) {
        ASSERT_LE(p.bits, b.MaxBitsPerPass())
            << "total=" << total << " exceeds per-pass budget";
        ASSERT_LE(1u << p.bits, b.MaxSwwcFanout());
        ASSERT_EQ(p.variant, ChooseShuffleVariant(1u << p.bits, b));
        sum += p.bits;
        if (p.bits < min_bits) min_bits = p.bits;
        if (p.bits > max_bits) max_bits = p.bits;
      }
      ASSERT_EQ(sum, total);
      // Balanced split: near-equal widths.
      if (total > 0) ASSERT_LE(max_bits - min_bits, 1u);
    }
  }
}

TEST(PartitionPlanTest, RequestedBitsCapPasses) {
  PartitionBudget b;
  PartitionPlan plan = PlanRadixPasses(32, b, 8);
  ASSERT_EQ(plan.passes.size(), 4u);
  for (const PartitionPassPlan& p : plan.passes) {
    EXPECT_EQ(p.bits, 8u);
    EXPECT_EQ(p.variant, ShuffleVariant::kBuffered16);
  }
  // A request wider than the budget is clamped, not honoured.
  plan = PlanRadixPasses(32, b, 16);
  for (const PartitionPassPlan& p : plan.passes) {
    EXPECT_LE(p.bits, b.MaxBitsPerPass());
  }
}

// MultiPassRadixPartition must be byte-identical to one wide
// ParallelPartitionPass over the same bits, for budgets that force 1, 2,
// and 3 passes.
TEST(MultiPassPartitionTest, MatchesSinglePass) {
  const size_t n = 150'001;
  const uint32_t total_bits = 9;  // fanout 512: single-pass reference fits
  AlignedBuffer<uint32_t> keys(ShuffleCapacity(n)), pays(ShuffleCapacity(n));
  FillUniform(keys.data(), n, 5, 0, 0xFFFFFFFFu);
  FillSequential(pays.data(), n, 0);
  const uint32_t p_total = 1u << total_bits;

  // Reference: one SWWC pass over all 9 bits.
  AlignedBuffer<uint32_t> ref_k(ShuffleCapacity(n)), ref_p(ShuffleCapacity(n));
  std::vector<uint32_t> ref_starts(p_total + 1);
  {
    PartitionFn fn = PartitionFn::Radix(total_bits, 32 - total_bits);
    ParallelPartitionResources res;
    ParallelPartitionPass(fn, keys.data(), pays.data(), n, ref_k.data(),
                          ref_p.data(), BestIsa(), 4, &res, ref_starts.data(),
                          ShuffleVariant::kAuto, ShuffleCapacity(n));
  }

  // Budgets forcing 1, 2, and 3 passes of the same 9 bits. (MaxSwwcFanout
  // never drops below MaxBuffered16Fanout, so narrow passes need the L1 and
  // TLB budgets shrunk alongside L2.)
  struct Case {
    uint32_t tlb;
    uint32_t l1_bytes;
    uint32_t l2_bytes;
    size_t want_passes;
  };
  const Case cases[] = {
      // MaxBitsPerPass 12 -> [9]
      {512, 32u << 10, 512u << 10, 1},
      // b16 max 16, SWWC max 32 -> [5, 4]; pass 1 is SWWC, pass 2 buffered
      {16, 16 * 128, (1u << 5) * 128, 2},
      // b16 max == SWWC max == 8 -> [3, 3, 3]
      {8, 8 * 128, 8 * 128, 3},
  };
  for (const Case& c : cases) {
    PartitionBudget b;
    b.tlb_partitions = c.tlb;
    b.l1_staging_bytes = c.l1_bytes;
    b.l2_staging_bytes = c.l2_bytes;
    ASSERT_EQ(PlanRadixPasses(total_bits, b).passes.size(), c.want_passes);
    for (int threads : {1, 8}) {
      AlignedBuffer<uint32_t> out_k(ShuffleCapacity(n)),
          out_p(ShuffleCapacity(n));
      std::vector<uint32_t> starts(p_total + 1);
      MultiPassRadixPartition(keys.data(), pays.data(), n, total_bits,
                              out_k.data(), out_p.data(), nullptr, nullptr,
                              BestIsa(), threads, b, starts.data());
      ASSERT_EQ(starts, ref_starts)
          << c.want_passes << " passes, t=" << threads;
      ASSERT_EQ(0,
                std::memcmp(out_k.data(), ref_k.data(), n * sizeof(uint32_t)))
          << c.want_passes << " passes, t=" << threads;
      ASSERT_EQ(0,
                std::memcmp(out_p.data(), ref_p.data(), n * sizeof(uint32_t)))
          << c.want_passes << " passes, t=" << threads;
    }
  }
}

TEST(MultiPassPartitionTest, CallerScratchAndEdgeSizes) {
  // Caller-provided scratch and degenerate inputs (n = 0, 1; total_bits 0).
  for (size_t n : {size_t{0}, size_t{1}, size_t{70'000}}) {
    const uint32_t total_bits = 8;
    const uint32_t p_total = 1u << total_bits;
    AlignedBuffer<uint32_t> keys(ShuffleCapacity(n)),
        pays(ShuffleCapacity(n));
    FillUniform(keys.data(), n, 11, 0, 0xFFFFFFFFu);
    FillSequential(pays.data(), n, 0);
    AlignedBuffer<uint32_t> out_k(ShuffleCapacity(n)),
        out_p(ShuffleCapacity(n));
    AlignedBuffer<uint32_t> sk(ShuffleCapacity(n)), sp(ShuffleCapacity(n));
    std::vector<uint32_t> starts(p_total + 1);
    PartitionBudget b;  // force 2 passes of 4 bits
    b.tlb_partitions = 16;
    b.l1_staging_bytes = 16 * 128;
    b.l2_staging_bytes = 16 * 128;
    MultiPassRadixPartition(keys.data(), pays.data(), n, total_bits,
                            out_k.data(), out_p.data(), sk.data(), sp.data(),
                            Isa::kScalar, 2, b, starts.data());
    ASSERT_EQ(starts[p_total], n);
    // Every tuple present, keys partition-ordered, payloads ride along.
    std::vector<bool> seen(n, false);
    for (uint32_t p = 0; p < p_total; ++p) {
      for (uint32_t q = starts[p]; q < starts[p + 1]; ++q) {
        ASSERT_EQ(out_k[q] >> (32 - total_bits), p);
        uint32_t orig = out_p[q];
        ASSERT_LT(orig, n);
        ASSERT_FALSE(seen[orig]);
        seen[orig] = true;
        ASSERT_EQ(out_k[q], keys[orig]);
      }
    }
  }

  // total_bits == 0: one identity pass, output = input.
  const size_t n = 1000;
  AlignedBuffer<uint32_t> keys(ShuffleCapacity(n)), pays(ShuffleCapacity(n));
  FillUniform(keys.data(), n, 3, 0, 0xFFFFFFFFu);
  FillSequential(pays.data(), n, 0);
  AlignedBuffer<uint32_t> out_k(ShuffleCapacity(n)), out_p(ShuffleCapacity(n));
  std::vector<uint32_t> starts(2);
  MultiPassRadixPartition(keys.data(), pays.data(), n, 0, out_k.data(),
                          out_p.data(), nullptr, nullptr, Isa::kScalar, 1,
                          PartitionBudget(), starts.data());
  ASSERT_EQ(starts[0], 0u);
  ASSERT_EQ(starts[1], n);
  ASSERT_EQ(0, std::memcmp(out_k.data(), keys.data(), n * sizeof(uint32_t)));
  ASSERT_EQ(0, std::memcmp(out_p.data(), pays.data(), n * sizeof(uint32_t)));
}

}  // namespace
}  // namespace simddb
