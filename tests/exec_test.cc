// Execution subsystem tests (src/exec/): bitmap <-> selection converter
// properties against the scalar reference on every ISA, Chunk visibility
// state machinery, and the acceptance bar for the push-based executor —
// the scan -> bloom -> join -> group-by plan produces byte-identical
// canonical results across ISAs, thread counts {1, 8}, chunk sizes
// (including non-chunk-multiple and degenerate inputs n in {0, 1, 1023}),
// scan modes (compact vs bitmap), and breaker configurations, and matches
// a hand-composed serial operator sequence over the same kernels. The
// template-fused executor (exec/fused.h) is held to the same bar: the
// ExecFusedTest matrix proves the fused path byte-identical to the forced
// dynamic path across ISA x threads x chunk size x scan mode x edge input
// sizes, and the fallback test proves unsupported shapes route to the
// dynamic pipeline (observed via pipelines_fused / pipelines_dynamic).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "bloom/bloom_filter.h"
#include "agg/group_by.h"
#include "compress/column.h"
#include "core/isa.h"
#include "exec/chunk.h"
#include "exec/pipeline.h"
#include "exec/query.h"
#include "hash/linear_probing.h"
#include "obs/metrics.h"
#include "scan/selection_scan.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"
#include "util/rng.h"

namespace simddb {
namespace {

using exec::Chunk;
using exec::ChunkCapacity;
using exec::ChunkBitmapWords;
using exec::ExecConfig;
using exec::PipelineMode;
using exec::QueryResult;
using exec::ScanJoinAggregatePlan;
using exec::ScanMode;
using exec::SelKind;

uint64_t Metric(const char* name) {
  for (const obs::MetricSample& s : obs::MetricsRegistry::Get().Snapshot()) {
    if (std::strcmp(s.name, name) == 0) return s.value;
  }
  ADD_FAILURE() << "metric " << name << " not registered";
  return 0;
}

struct ScopedMetrics {
  ScopedMetrics() {
    obs::EnableMetrics(true);
    obs::MetricsRegistry::Get().ResetAll();
  }
  ~ScopedMetrics() { obs::EnableMetrics(false); }
};

// ---------------------------------------------------------------------------
// Converter kernels
// ---------------------------------------------------------------------------

class ExecChunkIsaTest : public ::testing::TestWithParam<Isa> {};

TEST_P(ExecChunkIsaTest, BitmapToSelectionMatchesScalar) {
  const Isa isa = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  Pcg32 rng(123);
  for (size_t n : {size_t{0}, size_t{1}, size_t{63}, size_t{64}, size_t{65},
                   size_t{1023}, size_t{1024}, size_t{4097}}) {
    // Densities from empty to full, including single-bit patterns.
    for (uint32_t density_pct : {0u, 1u, 50u, 99u, 100u}) {
      const size_t words = ChunkBitmapWords(n);
      AlignedBuffer<uint64_t> bitmap(words + 1);
      for (size_t w = 0; w < words; ++w) {
        uint64_t word = 0;
        for (int b = 0; b < 64; ++b) {
          if (rng.NextBounded(100) < density_pct) word |= uint64_t{1} << b;
        }
        bitmap[w] = word;
      }
      if (n & 63 && words > 0) {
        bitmap[words - 1] &= (uint64_t{1} << (n & 63)) - 1;  // bits >= n zero
      }
      AlignedBuffer<uint32_t> want(ChunkCapacity(n)), got(ChunkCapacity(n));
      const size_t want_n =
          exec::detail::BitmapToSelectionScalar(bitmap.data(), n, want.data());
      const size_t got_n =
          exec::BitmapToSelection(isa, bitmap.data(), n, got.data());
      ASSERT_EQ(got_n, want_n) << "n=" << n << " d=" << density_pct;
      for (size_t i = 0; i < want_n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "n=" << n << " @" << i;
      }
    }
  }
}

TEST_P(ExecChunkIsaTest, SelectionBitmapRoundTrip) {
  const Isa isa = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  Pcg32 rng(77);
  for (size_t n : {size_t{1}, size_t{64}, size_t{1000}, size_t{4096}}) {
    // Random ascending selection of ~half the positions.
    std::vector<uint32_t> sel;
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBounded(2) == 0) sel.push_back(static_cast<uint32_t>(i));
    }
    AlignedBuffer<uint64_t> bitmap(ChunkBitmapWords(n) + 1);
    exec::SelectionToBitmap(sel.data(), sel.size(), n, bitmap.data());
    AlignedBuffer<uint32_t> back(ChunkCapacity(n));
    const size_t cnt = exec::BitmapToSelection(isa, bitmap.data(), n,
                                               back.data());
    ASSERT_EQ(cnt, sel.size()) << "n=" << n;
    for (size_t i = 0; i < cnt; ++i) ASSERT_EQ(back[i], sel[i]);
  }
}

TEST_P(ExecChunkIsaTest, RangePredicateBitmapMatchesScalar) {
  const Isa isa = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  for (size_t n : {size_t{0}, size_t{1}, size_t{64}, size_t{1023},
                   size_t{5000}}) {
    AlignedBuffer<uint32_t> keys(n + 16);
    FillUniform(keys.data(), n, 99, 0, 0xFFFFFFFFu);
    const size_t words = ChunkBitmapWords(n);
    // Bounds including the degenerate unbounded forms (AVX2 falls back to
    // scalar there: the sign-bias trick wraps on lo-1 / hi+1).
    const std::pair<uint32_t, uint32_t> bounds[] = {
        {0, 0xFFFFFFFFu},          {0, 0x7FFFFFFFu},
        {0x40000000u, 0xC0000000u}, {5, 5},
        {0xFFFFFFF0u, 0xFFFFFFFFu}, {7, 3}};  // empty range too
    for (auto [lo, hi] : bounds) {
      AlignedBuffer<uint64_t> want(words + 1), got(words + 1);
      const size_t want_n = exec::detail::RangePredicateBitmapScalar(
          keys.data(), n, lo, hi, want.data());
      const size_t got_n =
          exec::RangePredicateBitmap(isa, keys.data(), n, lo, hi, got.data());
      ASSERT_EQ(got_n, want_n) << "n=" << n << " lo=" << lo << " hi=" << hi;
      for (size_t w = 0; w < words; ++w) {
        ASSERT_EQ(got[w], want[w]) << "n=" << n << " word " << w;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, ExecChunkIsaTest,
                         ::testing::Values(Isa::kScalar, Isa::kAvx2,
                                           Isa::kAvx512),
                         [](const auto& info) {
                           return std::string(IsaName(info.param));
                         });

TEST(ExecChunkTest, CompactGathersEveryColumn) {
  const size_t n = 1000;
  Chunk c(n, 3);
  for (int col = 0; col < 3; ++col) {
    for (size_t i = 0; i < n; ++i) {
      c.col(col)[i] = static_cast<uint32_t>(1000 * col + i);
    }
  }
  size_t cnt = 0;
  for (size_t i = 0; i < n; i += 3) c.sel()[cnt++] = static_cast<uint32_t>(i);
  c.SetSelection(n, cnt);
  c.Compact(Isa::kScalar);
  ASSERT_EQ(c.kind(), SelKind::kDense);
  ASSERT_EQ(c.size(), cnt);
  for (int col = 0; col < 3; ++col) {
    for (size_t j = 0; j < cnt; ++j) {
      ASSERT_EQ(c.col(col)[j], 1000u * col + 3 * j) << col << "," << j;
    }
  }
}

TEST(ExecChunkTest, MaterializeCountsConversions) {
  ScopedMetrics metrics;
  const size_t n = 256;
  Chunk c(n, 1);
  for (size_t i = 0; i < n; ++i) c.col(0)[i] = static_cast<uint32_t>(i);
  c.SetDense(n);
  c.MaterializeBitmap(Isa::kScalar);  // dense -> all-ones bitmap
  ASSERT_EQ(c.kind(), SelKind::kBitmap);
  ASSERT_EQ(c.active(), n);
  c.MaterializeSelection(Isa::kScalar);
  ASSERT_EQ(c.kind(), SelKind::kSelection);
  ASSERT_EQ(c.active(), n);
  EXPECT_EQ(Metric("sel_to_bitmap"), 1u);
  EXPECT_EQ(Metric("bitmap_to_sel"), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end query byte-identity
// ---------------------------------------------------------------------------

struct QueryData {
  AlignedBuffer<uint32_t> r_keys, r_attrs, s_fks, s_vals;
  size_t n_r = 0, n_s = 0;

  QueryData(size_t nr, size_t ns) : n_r(nr), n_s(ns) {
    r_keys.Reset(nr + 16);
    r_attrs.Reset(nr + 16);
    s_fks.Reset(ns + 16);
    s_vals.Reset(ns + 16);
    // Unique R keys 1..nr (0xFFFFFFFF = kEmptyKey must not appear; attrs
    // are group keys with the same constraint).
    FillSequential(r_keys.data(), nr, 1);
    FillUniform(r_attrs.data(), nr, 5, 1, 64);
    FillUniform(s_fks.data(), ns, 6, 1,
                nr == 0 ? 1 : static_cast<uint32_t>(nr));
    FillUniform(s_vals.data(), ns, 7, 0, 999'999);
  }

  ScanJoinAggregatePlan Plan() const {
    ScanJoinAggregatePlan p;
    p.r_keys = r_keys.data();
    p.r_attrs = r_attrs.data();
    p.n_r = n_r;
    p.r_lo = 1;
    p.r_hi = n_r == 0 ? 1 : static_cast<uint32_t>((3 * n_r) / 4);  // 75% of R
    p.s_fks = s_fks.data();
    p.s_vals = s_vals.data();
    p.n_s = n_s;
    p.s_lo = 0;
    p.s_hi = 99'999;  // ~10% of S
    p.max_groups_hint = 128;
    return p;
  }
};

struct RefRow {
  uint64_t sum = 0;
  uint32_t count = 0;
  uint32_t min = 0xFFFFFFFFu;
  uint32_t max = 0;
};

/// Scalar std::map reference, independent of every library kernel.
std::map<uint32_t, RefRow> MapReference(const QueryData& d,
                                        const ScanJoinAggregatePlan& p) {
  std::map<uint32_t, uint32_t> r;  // pk -> attr, post-filter
  for (size_t i = 0; i < d.n_r; ++i) {
    if (d.r_keys[i] >= p.r_lo && d.r_keys[i] <= p.r_hi) {
      r[d.r_keys[i]] = d.r_attrs[i];
    }
  }
  std::map<uint32_t, RefRow> groups;
  for (size_t i = 0; i < d.n_s; ++i) {
    if (d.s_vals[i] < p.s_lo || d.s_vals[i] > p.s_hi) continue;
    auto it = r.find(d.s_fks[i]);
    if (it == r.end()) continue;
    RefRow& g = groups[it->second];
    g.sum += d.s_vals[i];
    g.count += 1;
    g.min = std::min(g.min, d.s_vals[i]);
    g.max = std::max(g.max, d.s_vals[i]);
  }
  return groups;
}

void ExpectMatchesReference(const QueryResult& got,
                            const std::map<uint32_t, RefRow>& want,
                            const std::string& label) {
  ASSERT_EQ(got.group_keys.size(), want.size()) << label;
  size_t i = 0;
  for (const auto& [key, row] : want) {
    ASSERT_EQ(got.group_keys[i], key) << label << " @" << i;
    ASSERT_EQ(got.sums[i], row.sum) << label << " key " << key;
    ASSERT_EQ(got.counts[i], row.count) << label << " key " << key;
    ASSERT_EQ(got.mins[i], row.min) << label << " key " << key;
    ASSERT_EQ(got.maxs[i], row.max) << label << " key " << key;
    ++i;
  }
}

void ExpectIdentical(const QueryResult& a, const QueryResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.group_keys, b.group_keys) << label;
  EXPECT_EQ(a.sums, b.sums) << label;
  EXPECT_EQ(a.counts, b.counts) << label;
  EXPECT_EQ(a.mins, b.mins) << label;
  EXPECT_EQ(a.maxs, b.maxs) << label;
  EXPECT_EQ(a.rows_joined, b.rows_joined) << label;
}

/// The acceptance reference: the same plan hand-composed from the existing
/// operator kernels, serial, no executor involved.
QueryResult HandComposed(const QueryData& d, const ScanJoinAggregatePlan& p,
                         Isa isa) {
  const ScanVariant v = exec::ScanVariantForIsa(isa);
  QueryResult res;

  AlignedBuffer<uint32_t> rk(SelectionScanCapacity(d.n_r)),
      ra(SelectionScanCapacity(d.n_r));
  const size_t n_build = SelectionScan(v, p.r_keys, p.r_attrs, d.n_r, p.r_lo,
                                       p.r_hi, rk.data(), ra.data(),
                                       rk.size());
  size_t buckets = 16;
  while (buckets < 2 * (n_build + 1)) buckets <<= 1;
  LinearProbingTable table(buckets);
  table.Build(isa, rk.data(), ra.data(), n_build);

  AlignedBuffer<uint32_t> sv(SelectionScanCapacity(d.n_s)),
      sf(SelectionScanCapacity(d.n_s));
  // Scan keyed on S.val carrying the fk as payload, like the executor.
  size_t n_sel = SelectionScan(v, p.s_vals, p.s_fks, d.n_s, p.s_lo, p.s_hi,
                               sv.data(), sf.data(), sv.size());
  const uint32_t* fks = sf.data();
  const uint32_t* vals = sv.data();
  AlignedBuffer<uint32_t> bf(n_sel + 16), bv(n_sel + 16);
  if (p.bloom_bits_per_key > 0 && n_build > 0) {
    BloomFilter filter = BloomFilter::ForItems(
        n_build, p.bloom_bits_per_key, p.bloom_k, 42);
    filter.Add(rk.data(), n_build);
    n_sel = filter.Probe(isa, fks, vals, n_sel, bf.data(), bv.data());
    fks = bf.data();
    vals = bv.data();
  }
  AlignedBuffer<uint32_t> jk(n_sel + 16), jsp(n_sel + 16), jrp(n_sel + 16);
  const size_t n_join =
      table.Probe(isa, fks, vals, n_sel, jk.data(), jsp.data(), jrp.data());
  res.rows_joined = n_join;

  GroupByAggregator agg(p.max_groups_hint);
  agg.Accumulate(isa, jrp.data(), jsp.data(), n_join);
  const size_t g = agg.num_groups();
  std::vector<uint32_t> k(g), cnt(g), mn(g), mx(g);
  std::vector<uint64_t> sm(g);
  agg.Extract(isa, k.data(), sm.data(), cnt.data(), mn.data(), mx.data());
  std::vector<uint32_t> perm(g);
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(),
            [&](uint32_t a, uint32_t b) { return k[a] < k[b]; });
  res.group_keys.resize(g);
  res.sums.resize(g);
  res.counts.resize(g);
  res.mins.resize(g);
  res.maxs.resize(g);
  for (size_t i = 0; i < g; ++i) {
    res.group_keys[i] = k[perm[i]];
    res.sums[i] = sm[perm[i]];
    res.counts[i] = cnt[perm[i]];
    res.mins[i] = mn[perm[i]];
    res.maxs[i] = mx[perm[i]];
  }
  return res;
}

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas{Isa::kScalar};
  if (IsaSupported(Isa::kAvx2)) isas.push_back(Isa::kAvx2);
  if (IsaSupported(Isa::kAvx512)) isas.push_back(Isa::kAvx512);
  return isas;
}

TEST(ExecQueryTest, MatchesHandComposedAndReferenceAcrossMatrix) {
  QueryData d(4096, 60'000);
  ScanJoinAggregatePlan plan = d.Plan();
  const auto want = MapReference(d, plan);

  for (int bloom : {0, 10}) {
    for (uint32_t fanout : {0u, 16u}) {
      plan.bloom_bits_per_key = bloom;
      plan.partition_fanout = fanout;
      QueryResult first;
      bool have_first = false;
      for (Isa isa : SupportedIsas()) {
        const QueryResult hand = HandComposed(d, plan, isa);
        for (int threads : {1, 8}) {
          for (size_t chunk : {size_t{257}, size_t{1024}}) {
            for (ScanMode mode : {ScanMode::kCompact, ScanMode::kBitmap}) {
              plan.scan_mode = mode;
              ExecConfig cfg;
              cfg.isa = isa;
              cfg.threads = threads;
              cfg.chunk_tuples = chunk;
              const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
              const std::string label =
                  std::string(IsaName(isa)) + " t=" +
                  std::to_string(threads) + " c=" + std::to_string(chunk) +
                  " m=" + (mode == ScanMode::kBitmap ? "bitmap" : "compact") +
                  " b=" + std::to_string(bloom) +
                  " f=" + std::to_string(fanout);
              ExpectMatchesReference(got, want, label);
              ExpectIdentical(got, hand, label + " vs hand-composed");
              if (!have_first) {
                first = got;
                have_first = true;
              } else {
                ExpectIdentical(got, first, label + " vs first config");
              }
            }
          }
        }
      }
    }
  }
}

TEST(ExecQueryTest, EdgeInputSizes) {
  // n in {0, 1, 1023, non-chunk-multiple}; R empty and tiny.
  const std::pair<size_t, size_t> shapes[] = {
      {0, 0}, {5, 0}, {0, 100}, {5, 1}, {16, 1023}, {7, 4097}};
  for (auto [nr, ns] : shapes) {
    QueryData d(nr, ns);
    ScanJoinAggregatePlan plan = d.Plan();
    plan.s_hi = 999'999;  // keep everything: exercises full chunks
    plan.bloom_bits_per_key = 10;
    const auto want = MapReference(d, plan);
    for (int threads : {1, 8}) {
      for (size_t chunk : {size_t{1}, size_t{64}, size_t{1023}}) {
        for (ScanMode mode : {ScanMode::kCompact, ScanMode::kBitmap}) {
          plan.scan_mode = mode;
          ExecConfig cfg;
          cfg.threads = threads;
          cfg.chunk_tuples = chunk;
          const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
          ExpectMatchesReference(
              got, want,
              "nr=" + std::to_string(nr) + " ns=" + std::to_string(ns) +
                  " t=" + std::to_string(threads) +
                  " c=" + std::to_string(chunk));
        }
      }
    }
  }
}

TEST(ExecQueryTest, PartitionBreakerPreservesResults) {
  QueryData d(2048, 30'000);
  ScanJoinAggregatePlan plan = d.Plan();
  const auto want = MapReference(d, plan);
  for (uint32_t fanout : {1u, 7u, 64u}) {
    plan.partition_fanout = fanout;
    ExecConfig cfg;
    cfg.isa = SupportedIsas().back();
    cfg.threads = 8;
    const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
    ExpectMatchesReference(got, want, "fanout=" + std::to_string(fanout));
  }
}

TEST(ExecQueryTest, CompressedStorageMatchesRawAcrossMatrix) {
  // Scan-over-compressed acceptance: the same plan over CompressColumn'd
  // base tables is byte-identical to the raw-column plan everywhere the
  // raw matrix runs — ISA x threads x chunk size x scan mode x bloom x
  // partition breaker — plus edge sizes below/at/above one block.
  QueryData d(4096, 60'000);
  const auto r_keys_c = compress::CompressColumn(d.r_keys.data(), d.n_r);
  const auto r_attrs_c = compress::CompressColumn(d.r_attrs.data(), d.n_r);
  const auto s_fks_c = compress::CompressColumn(d.s_fks.data(), d.n_s);
  const auto s_vals_c = compress::CompressColumn(d.s_vals.data(), d.n_s);
  ScanJoinAggregatePlan raw = d.Plan();
  ScanJoinAggregatePlan comp = d.Plan();
  comp.r_keys_c = &r_keys_c;
  comp.r_attrs_c = &r_attrs_c;
  comp.s_fks_c = &s_fks_c;
  comp.s_vals_c = &s_vals_c;
  for (int bloom : {0, 10}) {
    for (uint32_t fanout : {0u, 16u}) {
      raw.bloom_bits_per_key = comp.bloom_bits_per_key = bloom;
      raw.partition_fanout = comp.partition_fanout = fanout;
      for (Isa isa : SupportedIsas()) {
        for (int threads : {1, 8}) {
          for (size_t chunk : {size_t{257}, size_t{1024}}) {
            for (ScanMode mode : {ScanMode::kCompact, ScanMode::kBitmap}) {
              raw.scan_mode = comp.scan_mode = mode;
              ExecConfig cfg;
              cfg.isa = isa;
              cfg.threads = threads;
              cfg.chunk_tuples = chunk;
              const QueryResult want = exec::RunScanJoinAggregate(raw, cfg);
              const QueryResult got = exec::RunScanJoinAggregate(comp, cfg);
              const std::string label =
                  "compressed " + std::string(IsaName(isa)) + " t=" +
                  std::to_string(threads) + " c=" + std::to_string(chunk) +
                  " m=" + (mode == ScanMode::kBitmap ? "bitmap" : "compact") +
                  " b=" + std::to_string(bloom) +
                  " f=" + std::to_string(fanout);
              ExpectIdentical(got, want, label);
              EXPECT_EQ(got.rows_scanned, want.rows_scanned) << label;
            }
          }
        }
      }
    }
  }
}

TEST(ExecQueryTest, CompressedStorageEdgeSizes) {
  // Sizes straddling the 1024-value block boundary, a one-side-compressed
  // plan (R raw, S compressed), and chunk sizes that split blocks.
  const std::pair<size_t, size_t> shapes[] = {
      {0, 0}, {5, 1}, {16, 1023}, {1024, 1024}, {7, 4097}};
  for (auto [nr, ns] : shapes) {
    QueryData d(nr, ns);
    const auto s_fks_c = compress::CompressColumn(d.s_fks.data(), d.n_s);
    const auto s_vals_c = compress::CompressColumn(d.s_vals.data(), d.n_s);
    ScanJoinAggregatePlan raw = d.Plan();
    raw.s_hi = 999'999;
    ScanJoinAggregatePlan comp = raw;
    comp.s_fks_c = &s_fks_c;
    comp.s_vals_c = &s_vals_c;
    const auto want = MapReference(d, raw);
    for (size_t chunk : {size_t{1}, size_t{64}, size_t{1023}}) {
      for (ScanMode mode : {ScanMode::kCompact, ScanMode::kBitmap}) {
        raw.scan_mode = comp.scan_mode = mode;
        ExecConfig cfg;
        cfg.isa = SupportedIsas().back();
        cfg.threads = 8;
        cfg.chunk_tuples = chunk;
        const std::string label = "nr=" + std::to_string(nr) +
                                  " ns=" + std::to_string(ns) +
                                  " c=" + std::to_string(chunk);
        const QueryResult got = exec::RunScanJoinAggregate(comp, cfg);
        ExpectMatchesReference(got, want, label);
        ExpectIdentical(got, exec::RunScanJoinAggregate(raw, cfg), label);
      }
    }
  }
}

TEST(ExecPipelineTest, ChunksPushedAndConversionCounters) {
  ScopedMetrics metrics;
  QueryData d(1024, 10'000);
  ScanJoinAggregatePlan plan = d.Plan();
  plan.scan_mode = ScanMode::kBitmap;
  plan.bloom_bits_per_key = 10;
  ExecConfig cfg;
  cfg.chunk_tuples = 1024;
  cfg.pipeline_mode = PipelineMode::kDynamic;  // asserts dynamic internals
  const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
  ASSERT_FALSE(got.group_keys.empty());
  // Source grids: 1 R chunk + 10 S chunks; every operator edge counts one
  // push per chunk, so the total is at least the source chunk count and a
  // bitmap-mode run converts every source chunk.
  EXPECT_GE(Metric("chunks_pushed"), 11u);
  EXPECT_GE(Metric("bitmap_to_sel"), 11u);
  EXPECT_GT(Metric("exec_scan_ns"), 0u);
  EXPECT_GT(Metric("exec_build_ns"), 0u);
  EXPECT_GT(Metric("exec_probe_ns"), 0u);
  EXPECT_GT(Metric("exec_groupby_ns"), 0u);
}

// ---------------------------------------------------------------------------
// Template-fused pipelines (exec/fused.h)
// ---------------------------------------------------------------------------

TEST(ExecFusedTest, FusedMatchesDynamicAcrossMatrix) {
  // ISA x threads {1, 8} x chunk {257, 1024} x scan mode x edge input
  // sizes n_s in {0, 1, 1023, 4097} plus one bulk shape. The forced
  // dynamic run is the reference; the fused run must be byte-identical in
  // every result row and every reported cardinality.
  const std::pair<size_t, size_t> shapes[] = {
      {256, 0}, {256, 1}, {256, 1023}, {1024, 4097}, {4096, 60'000}};
  for (auto [nr, ns] : shapes) {
    QueryData d(nr, ns);
    ScanJoinAggregatePlan plan = d.Plan();
    plan.bloom_bits_per_key = 10;
    const auto want = MapReference(d, plan);
    for (Isa isa : SupportedIsas()) {
      for (int threads : {1, 8}) {
        for (size_t chunk : {size_t{257}, size_t{1024}}) {
          for (ScanMode mode : {ScanMode::kCompact, ScanMode::kBitmap}) {
            plan.scan_mode = mode;
            ExecConfig cfg;
            cfg.isa = isa;
            cfg.threads = threads;
            cfg.chunk_tuples = chunk;
            cfg.pipeline_mode = PipelineMode::kDynamic;
            const QueryResult dyn = exec::RunScanJoinAggregate(plan, cfg);
            cfg.pipeline_mode = PipelineMode::kFused;
            const QueryResult fus = exec::RunScanJoinAggregate(plan, cfg);
            const std::string label =
                "nr=" + std::to_string(nr) + " ns=" + std::to_string(ns) +
                " " + IsaName(isa) + " t=" + std::to_string(threads) +
                " c=" + std::to_string(chunk) +
                " m=" + (mode == ScanMode::kBitmap ? "bitmap" : "compact");
            EXPECT_FALSE(dyn.used_fused) << label;
            EXPECT_TRUE(fus.used_fused) << label;
            ExpectIdentical(fus, dyn, label + " fused vs dynamic");
            EXPECT_EQ(fus.rows_build, dyn.rows_build) << label;
            EXPECT_EQ(fus.rows_scanned, dyn.rows_scanned) << label;
            EXPECT_EQ(fus.rows_bloomed, dyn.rows_bloomed) << label;
            ExpectMatchesReference(fus, want, label + " fused vs reference");
          }
        }
      }
    }
  }
}

TEST(ExecFusedTest, UnsupportedShapeFallsBackToDynamic) {
  QueryData d(1024, 10'000);
  ScanJoinAggregatePlan plan = d.Plan();
  plan.bloom_bits_per_key = 10;

  plan.partition_fanout = 16;  // mid-stream breaker: no fused instantiation
  EXPECT_FALSE(exec::FusedPlanSupported(plan));
  {
    ScopedMetrics metrics;
    ExecConfig cfg;  // kAuto
    const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
    EXPECT_FALSE(got.used_fused);
    EXPECT_EQ(Metric("pipelines_fused"), 0u);
    // build + scan..partition + partition..sink.
    EXPECT_EQ(Metric("pipelines_dynamic"), 3u);
    EXPECT_EQ(Metric("exec_fused_ns"), 0u);
    EXPECT_GT(Metric("exec_dynamic_ns"), 0u);
  }

  plan.partition_fanout = 0;  // supported shape under kAuto runs fused
  EXPECT_TRUE(exec::FusedPlanSupported(plan));
  {
    ScopedMetrics metrics;
    ExecConfig cfg;  // kAuto
    const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
    EXPECT_TRUE(got.used_fused);
    EXPECT_EQ(Metric("pipelines_fused"), 1u);
    // The build breaker still runs as a dynamic pipeline.
    EXPECT_EQ(Metric("pipelines_dynamic"), 1u);
    EXPECT_GT(Metric("exec_fused_ns"), 0u);
    EXPECT_EQ(Metric("exec_dynamic_ns"), 0u);
  }

  {
    ScopedMetrics metrics;
    ExecConfig cfg;
    cfg.pipeline_mode = PipelineMode::kDynamic;  // forced dynamic
    const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
    EXPECT_FALSE(got.used_fused);
    EXPECT_EQ(Metric("pipelines_fused"), 0u);
    EXPECT_EQ(Metric("pipelines_dynamic"), 2u);  // build + probe
    EXPECT_GT(Metric("exec_dynamic_ns"), 0u);
  }
}

TEST(ExecPipelineTest, RowsOutCardinalitiesAreConsistent) {
  QueryData d(4096, 50'000);
  ScanJoinAggregatePlan plan = d.Plan();
  plan.bloom_bits_per_key = 10;
  ExecConfig cfg;
  cfg.threads = 4;
  const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
  EXPECT_LE(got.rows_bloomed, got.rows_scanned);
  EXPECT_LE(got.rows_joined, got.rows_bloomed);  // bloom has no false negatives
  const uint64_t total_count = std::accumulate(got.counts.begin(),
                                               got.counts.end(), uint64_t{0});
  EXPECT_EQ(total_count, got.rows_joined);
}

}  // namespace
}  // namespace simddb
