// Group-by aggregation tests: vectorized accumulation must match a
// std::map-based reference exactly (COUNT, SUM, MIN, MAX) across group
// cardinalities, including heavy per-vector key repetition (the conflict-
// retry path) and incremental accumulation across batches.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "agg/group_by.h"
#include "core/isa.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb {
namespace {

struct Agg {
  uint64_t sum = 0;
  uint32_t count = 0;
  uint32_t min = 0xFFFFFFFFu;
  uint32_t max = 0;
  bool operator==(const Agg&) const = default;
};

std::map<uint32_t, Agg> Reference(const std::vector<uint32_t>& keys,
                                  const std::vector<uint32_t>& vals) {
  std::map<uint32_t, Agg> ref;
  for (size_t i = 0; i < keys.size(); ++i) {
    Agg& a = ref[keys[i]];
    a.sum += vals[i];
    a.count += 1;
    a.min = std::min(a.min, vals[i]);
    a.max = std::max(a.max, vals[i]);
  }
  return ref;
}

std::map<uint32_t, Agg> Collect(const GroupByAggregator& agg, Isa isa) {
  size_t g = agg.num_groups();
  std::vector<uint32_t> keys(g), counts(g), mins(g), maxs(g);
  std::vector<uint64_t> sums(g);
  size_t got = agg.Extract(isa, keys.data(), sums.data(), counts.data(),
                           mins.data(), maxs.data());
  EXPECT_EQ(got, g);
  std::map<uint32_t, Agg> out;
  for (size_t i = 0; i < got; ++i) {
    EXPECT_FALSE(out.count(keys[i])) << "duplicate group " << keys[i];
    out[keys[i]] = {sums[i], counts[i], mins[i], maxs[i]};
  }
  return out;
}

class GroupByTest
    : public ::testing::TestWithParam<std::tuple<Isa, size_t, size_t>> {};

TEST_P(GroupByTest, MatchesReference) {
  auto [isa, n, n_groups] = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  std::vector<uint32_t> keys(n), vals(n);
  FillWithRepeats(keys.data(), n, n_groups, 3, 1);
  FillUniform(vals.data(), n, 5, 0, 1'000'000);
  GroupByAggregator agg(n_groups + 8);
  agg.Accumulate(isa, keys.data(), vals.data(), n);
  EXPECT_EQ(agg.num_groups(), std::min(n, n_groups));
  EXPECT_EQ(Collect(agg, isa), Reference(keys, vals));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupByTest,
    ::testing::Combine(::testing::Values(Isa::kScalar, Isa::kAvx512),
                       ::testing::Values<size_t>(1, 40, 1000, 100'000),
                       // few groups = many same-vector conflicts
                       ::testing::Values<size_t>(1, 3, 16, 1000, 50'000)),
    [](const auto& info) {
      return std::string(IsaName(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_g" +
             std::to_string(std::get<2>(info.param));
    });

TEST(GroupBy, IncrementalBatchesAccumulate) {
  Isa isa = IsaSupported(Isa::kAvx512) ? Isa::kAvx512 : Isa::kScalar;
  const size_t n = 30'000;
  std::vector<uint32_t> keys(n), vals(n);
  FillWithRepeats(keys.data(), n, 500, 7, 1);
  FillUniform(vals.data(), n, 9, 0, 999);
  GroupByAggregator agg(600);
  // Feed in uneven batches, alternating ISAs.
  size_t pos = 0;
  int batch = 0;
  while (pos < n) {
    size_t len = std::min<size_t>(n - pos, 1 + 977 * (batch % 7));
    agg.Accumulate(batch % 2 == 0 ? isa : Isa::kScalar, keys.data() + pos,
                   vals.data() + pos, len);
    pos += len;
    ++batch;
  }
  EXPECT_EQ(Collect(agg, isa), Reference(keys, vals));
}

TEST(GroupBy, SingleGroupAllConflicts) {
  // Every vector lane hits the same bucket: maximal retry pressure.
  Isa isa = IsaSupported(Isa::kAvx512) ? Isa::kAvx512 : Isa::kScalar;
  const size_t n = 10'000;
  std::vector<uint32_t> keys(n, 42), vals(n);
  FillUniform(vals.data(), n, 11, 1, 100);
  GroupByAggregator agg(16);
  agg.Accumulate(isa, keys.data(), vals.data(), n);
  EXPECT_EQ(agg.num_groups(), 1u);
  auto got = Collect(agg, isa);
  ASSERT_TRUE(got.count(42));
  EXPECT_EQ(got[42].count, n);
  EXPECT_EQ(got[42], Reference(keys, vals)[42]);
}

// Regression for the assert-only headroom check in FoldScalar/FoldMerge: a
// release build fed more distinct keys than the table could hold probed
// forever (the assert compiled out under NDEBUG, and linear probing never
// finds an empty bucket in a full table). max_groups is now a sizing hint:
// the table doubles + rehashes in every build mode.
TEST(GroupBy, AcceptsOneGroupPastSizingHint) {
  const size_t hint = 100;
  for (Isa isa : {Isa::kScalar, Isa::kAvx512}) {
    if (!IsaSupported(isa)) continue;
    const size_t n = hint + 1;  // max_groups_ + 1 distinct keys
    std::vector<uint32_t> keys(n), vals(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<uint32_t>(i * 2 + 1);
      vals[i] = static_cast<uint32_t>(i);
    }
    GroupByAggregator agg(hint);
    agg.Accumulate(isa, keys.data(), vals.data(), n);
    EXPECT_EQ(agg.num_groups(), n) << IsaName(isa);
    EXPECT_EQ(Collect(agg, isa), Reference(keys, vals)) << IsaName(isa);
  }
}

TEST(GroupBy, GrowsRepeatedlyFarPastSizingHint) {
  // ~64x the hint: forces several doubling + rehash rounds mid-accumulate,
  // on the scalar, vectorized, and parallel-merge (FoldMerge) paths.
  const size_t hint = 64;
  const size_t n_groups = 4096;
  const size_t n = 50'000;
  std::vector<uint32_t> keys(n), vals(n);
  FillWithRepeats(keys.data(), n, n_groups, 3, 1);
  FillUniform(vals.data(), n, 5, 0, 1'000'000);
  const auto want = Reference(keys, vals);
  for (Isa isa : {Isa::kScalar, Isa::kAvx512}) {
    if (!IsaSupported(isa)) continue;
    GroupByAggregator agg(hint);
    const size_t buckets_before = agg.num_buckets();
    agg.Accumulate(isa, keys.data(), vals.data(), n);
    EXPECT_EQ(agg.num_groups(), want.size()) << IsaName(isa);
    EXPECT_GT(agg.num_buckets(), buckets_before) << IsaName(isa);
    EXPECT_EQ(Collect(agg, isa), want) << IsaName(isa);

    // Parallel: per-lane partials grow independently, and the serial
    // FoldMerge into this undersized table grows it again.
    GroupByAggregator par(hint);
    par.AccumulateParallel(isa, keys.data(), vals.data(), n, 8);
    EXPECT_EQ(par.num_groups(), want.size()) << IsaName(isa);
    EXPECT_EQ(Collect(par, isa), want) << IsaName(isa);
  }
}

TEST(GroupBy, ClearResets) {
  GroupByAggregator agg(32);
  std::vector<uint32_t> keys = {1, 2, 3}, vals = {10, 20, 30};
  agg.AccumulateScalar(keys.data(), vals.data(), 3);
  EXPECT_EQ(agg.num_groups(), 3u);
  agg.Clear();
  EXPECT_EQ(agg.num_groups(), 0u);
  agg.AccumulateScalar(keys.data(), vals.data(), 3);
  auto got = Collect(agg, Isa::kScalar);
  EXPECT_EQ(got[1].sum, 10u);
}

TEST(GroupBy, ExtractSkipsNullOutputs) {
  GroupByAggregator agg(32);
  std::vector<uint32_t> keys = {5, 5, 9}, vals = {1, 2, 3};
  agg.AccumulateScalar(keys.data(), vals.data(), 3);
  std::vector<uint32_t> out_keys(2);
  size_t got = agg.Extract(Isa::kScalar, out_keys.data(), nullptr, nullptr,
                           nullptr, nullptr);
  EXPECT_EQ(got, 2u);
  std::sort(out_keys.begin(), out_keys.end());
  EXPECT_EQ(out_keys[0], 5u);
  EXPECT_EQ(out_keys[1], 9u);
}

}  // namespace
}  // namespace simddb
