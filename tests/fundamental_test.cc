// Tests for the fundamental vector operations (§3): every SIMD backend must
// reproduce the scalar reference semantics bit-for-bit, across randomized
// masks, indexes and values (property-style TEST_P sweeps).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/fundamental.h"
#include "core/isa.h"
#include "core/scalar_ops.h"
#include "util/rng.h"

namespace simddb {
namespace {

using fundamental::Gather16;
using fundamental::MultHashBatch;
using fundamental::Scatter16;
using fundamental::SelectiveLoad16;
using fundamental::SelectiveStore16;
using fundamental::SerializeConflicts16;
using fundamental::SerializeConflictsIterative16;
using fundamental::ScatterWinners16;

class FundamentalTest : public ::testing::TestWithParam<Isa> {
 protected:
  void SetUp() override {
    if (!IsaSupported(GetParam())) {
      GTEST_SKIP() << "ISA " << IsaName(GetParam()) << " not supported here";
    }
  }
  Isa isa() const { return GetParam(); }
};

TEST_P(FundamentalTest, SelectiveStoreMatchesScalar) {
  Pcg32 rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t v[16];
    for (auto& x : v) x = rng.Next();
    uint32_t mask = rng.Next() & 0xFFFF;
    uint32_t got[32], want[32];
    std::memset(got, 0xAB, sizeof(got));
    std::memset(want, 0xAB, sizeof(want));
    size_t n_got = SelectiveStore16(isa(), got, mask, v);
    size_t n_want = scalar::SelectiveStore(want, 16, mask, v);
    ASSERT_EQ(n_got, n_want);
    for (size_t i = 0; i < n_want; ++i) EXPECT_EQ(got[i], want[i]);
  }
}

TEST_P(FundamentalTest, SelectiveLoadMatchesScalar) {
  Pcg32 rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t src[32];
    for (auto& x : src) x = rng.Next();
    uint32_t mask = rng.Next() & 0xFFFF;
    uint32_t got[16], want[16];
    for (int i = 0; i < 16; ++i) got[i] = want[i] = 1000u + i;
    size_t n_got = SelectiveLoad16(isa(), got, mask, src);
    size_t n_want = scalar::SelectiveLoad(want, 16, mask, src);
    ASSERT_EQ(n_got, n_want);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(got[i], want[i]) << "lane " << i;
  }
}

TEST_P(FundamentalTest, GatherMatchesScalar) {
  Pcg32 rng(3);
  std::vector<uint32_t> base(1024);
  for (auto& x : base) x = rng.Next();
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t idx[16];
    for (auto& x : idx) x = rng.NextBounded(1024);
    uint32_t mask = rng.Next() & 0xFFFF;
    uint32_t got[16], want[16];
    for (int i = 0; i < 16; ++i) got[i] = want[i] = 77u + i;
    Gather16(isa(), got, mask, base.data(), idx);
    scalar::Gather(want, 16, mask, base.data(), idx);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(got[i], want[i]) << "lane " << i;
  }
}

TEST_P(FundamentalTest, ScatterMatchesScalarWithRightmostWins) {
  Pcg32 rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint32_t> got(256, 0), want(256, 0);
    uint32_t idx[16], v[16];
    for (auto& x : idx) x = rng.NextBounded(256) & ~0u;
    // Force some collisions.
    idx[5] = idx[1];
    idx[12] = idx[1];
    for (auto& x : v) x = rng.Next();
    uint32_t mask = rng.Next() & 0xFFFF;
    Scatter16(isa(), got.data(), mask, idx, v);
    scalar::Scatter(want.data(), 16, mask, idx, v);
    EXPECT_EQ(got, want);
  }
}

TEST_P(FundamentalTest, SerializeConflictsCountsPriorDuplicates) {
  Pcg32 rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    uint32_t idx[16];
    // Small range so conflicts are common.
    for (auto& x : idx) x = rng.NextBounded(trial % 7 + 1);
    uint32_t got[16], want[16];
    SerializeConflicts16(isa(), got, idx);
    scalar::SerializeConflicts(want, 16, idx);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(got[i], want[i]) << "lane " << i;
  }
}

TEST_P(FundamentalTest, SerializeConflictsIterativeAgrees) {
  Pcg32 rng(6);
  std::vector<uint32_t> scratch(64);
  for (int trial = 0; trial < 300; ++trial) {
    uint32_t idx[16];
    for (auto& x : idx) x = rng.NextBounded(trial % 9 + 1);
    uint32_t got[16], want[16];
    SerializeConflictsIterative16(isa(), got, idx, scratch.data());
    scalar::SerializeConflicts(want, 16, idx);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(got[i], want[i]) << "lane " << i;
  }
}

TEST_P(FundamentalTest, ScatterWinnersMatchesScalar) {
  Pcg32 rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    uint32_t idx[16];
    for (auto& x : idx) x = rng.NextBounded(trial % 11 + 1);
    EXPECT_EQ(ScatterWinners16(isa(), idx), scalar::ScatterWinners(16, idx));
  }
}

TEST_P(FundamentalTest, ScatterWinnersWinnersActuallyWin) {
  // Property: scattering only the winner lanes produces the same array as
  // scattering all lanes (rightmost-wins semantics).
  Pcg32 rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    uint32_t idx[16], v[16];
    for (auto& x : idx) x = rng.NextBounded(8);
    for (auto& x : v) x = rng.Next();
    std::vector<uint32_t> all(16, 0), winners_only(16, 0);
    scalar::Scatter(all.data(), 16, 0xFFFF, idx, v);
    uint32_t w = ScatterWinners16(isa(), idx);
    scalar::Scatter(winners_only.data(), 16, w, idx, v);
    EXPECT_EQ(all, winners_only);
  }
}

TEST_P(FundamentalTest, MultHashBatchMatchesScalarAndStaysInRange) {
  Pcg32 rng(9);
  const uint32_t kFactor = 0x9E3779B1u;
  for (uint32_t buckets : {1u, 7u, 64u, 1000u, 1u << 20}) {
    std::vector<uint32_t> keys(1003), got(1003);
    for (auto& x : keys) x = rng.Next();
    MultHashBatch(isa(), got.data(), keys.data(), keys.size(), kFactor,
                  buckets);
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(got[i], scalar::MultHash(keys[i], kFactor, buckets));
      EXPECT_LT(got[i], buckets);
    }
  }
}

TEST_P(FundamentalTest, SelectiveRoundTrip) {
  // Property: store-then-load through a staging area is the identity on the
  // selected lanes.
  Pcg32 rng(10);
  for (int trial = 0; trial < 100; ++trial) {
    uint32_t v[16], staged[32], back[16];
    for (auto& x : v) x = rng.Next();
    for (int i = 0; i < 16; ++i) back[i] = 0xDEAD0000u + i;
    uint32_t mask = rng.Next() & 0xFFFF;
    SelectiveStore16(isa(), staged, mask, v);
    SelectiveLoad16(isa(), back, mask, staged);
    for (int i = 0; i < 16; ++i) {
      if (mask & (1u << i)) {
        EXPECT_EQ(back[i], v[i]);
      } else {
        EXPECT_EQ(back[i], 0xDEAD0000u + i);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, FundamentalTest,
                         ::testing::Values(Isa::kScalar, Isa::kAvx2,
                                           Isa::kAvx512),
                         [](const ::testing::TestParamInfo<Isa>& info) {
                           return std::string(IsaName(info.param));
                         });

}  // namespace
}  // namespace simddb
