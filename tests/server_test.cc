// Serving-layer tests (src/server/): catalog registration/lookup and
// immutability, QuerySpec binding against catalog columns, and the
// acceptance bar for concurrent serving — 8..32 concurrent QuerySessions
// on the shared TaskPool return results byte-identical to serial execution
// of the same plans at threads {1, 8}, every query's morsels drain
// (no-starvation), the admission gate bounds in-flight queries under both
// policies, shared-scan groups feed N consumers from one sweep with
// byte-identical per-member results and fewer pushed chunks than N
// independent scans, and per-query metric sinks attribute work with no
// cross-query bleed.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exec/query.h"
#include "exec/shared_scan.h"
#include "obs/metrics.h"
#include "server/catalog.h"
#include "server/scheduler.h"
#include "server/session.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb {
namespace {

using exec::ExecConfig;
using exec::PipelineMode;
using exec::QueryResult;
using exec::ScanJoinAggregatePlan;
using exec::ScanMode;
using server::AdmissionPolicy;
using server::Catalog;
using server::QueryScheduler;
using server::QuerySession;
using server::QuerySpec;
using server::ResultSet;
using server::SchedulerOptions;
using server::TableOptions;

uint64_t Metric(const char* name) {
  for (const obs::MetricSample& s : obs::MetricsRegistry::Get().Snapshot()) {
    if (std::strcmp(s.name, name) == 0) return s.value;
  }
  ADD_FAILURE() << "metric " << name << " not registered";
  return 0;
}

struct ScopedMetrics {
  ScopedMetrics() {
    obs::EnableMetrics(true);
    obs::MetricsRegistry::Get().ResetAll();
  }
  ~ScopedMetrics() { obs::EnableMetrics(false); }
};

/// Two catalog tables shaped like the executor's Q3 plan: R(pk, attr) with
/// unique keys 1..nr, S(fk, val). `sequential_vals` makes S.val the row
/// index, so a [lo, hi] window selects a contiguous chunk band — the
/// clustered shape shared-scan skipping wins on.
struct ServerData {
  AlignedBuffer<uint32_t> r_keys, r_attrs, s_fks, s_vals;
  size_t n_r, n_s;
  Catalog catalog;

  explicit ServerData(size_t nr, size_t ns, bool sequential_vals = false,
                      bool compress = false)
      : n_r(nr), n_s(ns) {
    r_keys.Reset(nr + 16);
    r_attrs.Reset(nr + 16);
    s_fks.Reset(ns + 16);
    s_vals.Reset(ns + 16);
    FillSequential(r_keys.data(), nr, 1);  // unique, no kEmptyKey
    FillUniform(r_attrs.data(), nr, 5, 1, 64);
    FillUniform(s_fks.data(), ns, 6, 1,
                nr == 0 ? 1 : static_cast<uint32_t>(nr));
    if (sequential_vals) {
      FillSequential(s_vals.data(), ns, 0);
    } else {
      FillUniform(s_vals.data(), ns, 7, 0, 999'999);
    }
    TableOptions opts;
    opts.compress = compress;
    EXPECT_NE(
        catalog.RegisterTable("R", r_keys.data(), r_attrs.data(), nr, opts),
        nullptr);
    EXPECT_NE(
        catalog.RegisterTable("S", s_fks.data(), s_vals.data(), ns, opts),
        nullptr);
  }
};

QuerySpec SpecFor(int i, size_t n_r) {
  QuerySpec spec;
  spec.build_table = "R";
  spec.probe_table = "S";
  spec.r_lo = 1;
  spec.r_hi = static_cast<uint32_t>((3 * n_r) / 4);
  spec.s_lo = static_cast<uint32_t>((i * 37) % 700'000);
  spec.s_hi = spec.s_lo + 150'000;
  spec.scan_mode = i % 3 == 2 ? ScanMode::kBitmap : ScanMode::kCompact;
  spec.bloom_bits_per_key = i % 2 == 1 ? 8 : 0;
  spec.max_groups_hint = 128;
  return spec;
}

void ExpectSameResult(const QueryResult& got, const QueryResult& want,
                      const std::string& ctx) {
  ASSERT_EQ(got.group_keys, want.group_keys) << ctx;
  ASSERT_EQ(got.sums, want.sums) << ctx;
  ASSERT_EQ(got.counts, want.counts) << ctx;
  ASSERT_EQ(got.mins, want.mins) << ctx;
  ASSERT_EQ(got.maxs, want.maxs) << ctx;
  EXPECT_EQ(got.rows_build, want.rows_build) << ctx;
  EXPECT_EQ(got.rows_scanned, want.rows_scanned) << ctx;
  EXPECT_EQ(got.rows_bloomed, want.rows_bloomed) << ctx;
  EXPECT_EQ(got.rows_joined, want.rows_joined) << ctx;
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

TEST(ServerCatalogTest, RegisterFindAndImmutability) {
  Catalog catalog;
  std::vector<uint32_t> keys{1, 2, 3}, vals{10, 20, 30};
  const server::Table* t =
      catalog.RegisterTable("orders", keys.data(), vals.data(), keys.size());
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->rows(), 3u);
  EXPECT_EQ(t->schema().name, "orders");
  EXPECT_EQ(std::memcmp(t->keys(), keys.data(), 3 * sizeof(uint32_t)), 0);
  EXPECT_EQ(std::memcmp(t->vals(), vals.data(), 3 * sizeof(uint32_t)), 0);

  // The catalog owns a copy: mutating the source does not affect it.
  keys[0] = 999;
  EXPECT_EQ(t->keys()[0], 1u);

  EXPECT_EQ(catalog.Find("orders"), t);
  EXPECT_EQ(catalog.Find("nope"), nullptr);

  // Re-registration is an error, never a replace.
  EXPECT_EQ(
      catalog.RegisterTable("orders", vals.data(), keys.data(), keys.size()),
      nullptr);
  EXPECT_EQ(catalog.Find("orders"), t);

  catalog.RegisterTable("a", keys.data(), vals.data(), 2);
  EXPECT_EQ(catalog.size(), 2u);
  const std::vector<std::string> names = catalog.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // ascending
  EXPECT_EQ(names[1], "orders");
}

TEST(ServerCatalogTest, CompressedTwinsRegisteredOnRequest) {
  Catalog catalog;
  std::vector<uint32_t> keys(5000), vals(5000);
  FillSequential(keys.data(), keys.size(), 1);
  FillUniform(vals.data(), vals.size(), 11, 0, 4095);
  TableOptions opts;
  opts.compress = true;
  const server::Table* t =
      catalog.RegisterTable("c", keys.data(), vals.data(), keys.size(), opts);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->schema().compressed);
  ASSERT_NE(t->keys_compressed(), nullptr);
  ASSERT_NE(t->vals_compressed(), nullptr);
  EXPECT_EQ(t->keys_compressed()->size(), keys.size());
  EXPECT_EQ(t->vals_compressed()->size(), vals.size());

  const server::Table* raw =
      catalog.RegisterTable("raw", keys.data(), vals.data(), keys.size());
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->keys_compressed(), nullptr);
}

// ---------------------------------------------------------------------------
// Binding
// ---------------------------------------------------------------------------

TEST(ServerSessionTest, BindResolvesCatalogColumns) {
  ServerData d(1024, 4096);
  QueryScheduler sched(&d.catalog);
  QuerySession session(&d.catalog, &sched);

  QuerySpec spec = SpecFor(0, d.n_r);
  ScanJoinAggregatePlan plan;
  std::string error;
  ASSERT_TRUE(session.Bind(spec, &plan, &error)) << error;
  EXPECT_EQ(plan.r_keys, d.catalog.Find("R")->keys());
  EXPECT_EQ(plan.r_attrs, d.catalog.Find("R")->vals());
  EXPECT_EQ(plan.n_r, d.n_r);
  EXPECT_EQ(plan.s_fks, d.catalog.Find("S")->keys());
  EXPECT_EQ(plan.n_s, d.n_s);
  EXPECT_EQ(plan.s_lo, spec.s_lo);
  EXPECT_EQ(plan.s_hi, spec.s_hi);

  spec.probe_table = "missing";
  EXPECT_FALSE(session.Bind(spec, &plan, &error));
  EXPECT_NE(error.find("missing"), std::string::npos);

  spec.probe_table = "S";
  spec.prefer_compressed = true;  // tables registered without twins
  EXPECT_FALSE(session.Bind(spec, &plan, &error));
}

TEST(ServerSessionTest, CompressedExecutionMatchesRaw) {
  ServerData d(2048, 16384, /*sequential_vals=*/false, /*compress=*/true);
  QueryScheduler sched(&d.catalog);
  QuerySession session(&d.catalog, &sched);
  ExecConfig cfg;
  cfg.threads = 4;

  QuerySpec spec = SpecFor(1, d.n_r);
  ResultSet raw = session.Execute(spec, cfg);
  ASSERT_TRUE(raw.ok) << raw.error;
  spec.prefer_compressed = true;
  ResultSet comp = session.Execute(spec, cfg);
  ASSERT_TRUE(comp.ok) << comp.error;
  ExpectSameResult(comp.result, raw.result, "compressed vs raw");
}

// ---------------------------------------------------------------------------
// Concurrent serving: byte-identity + no-starvation
// ---------------------------------------------------------------------------

TEST(ServerSchedulerTest, ConcurrentSessionsByteIdenticalVsSerial) {
  ServerData d(4096, 65536);
  for (int clients : {8, 32}) {
    for (int threads : {1, 8}) {
      ExecConfig cfg;
      cfg.threads = threads;

      // Serial reference: the same bound plans straight through the
      // executor, one at a time.
      std::vector<QueryResult> want;
      for (int i = 0; i < clients; ++i) {
        ScanJoinAggregatePlan plan;
        std::string error;
        ASSERT_TRUE(
            server::BindQuery(d.catalog, SpecFor(i, d.n_r), &plan, &error));
        want.push_back(exec::RunScanJoinAggregate(plan, cfg));
      }

      QueryScheduler sched(&d.catalog);
      std::vector<ResultSet> got(clients);
      std::vector<std::thread> workers;
      for (int i = 0; i < clients; ++i) {
        workers.emplace_back([&, i] {
          QuerySession session(&d.catalog, &sched);
          got[i] = session.Execute(SpecFor(i, d.n_r), cfg);
        });
      }
      for (auto& w : workers) w.join();

      for (int i = 0; i < clients; ++i) {
        const std::string ctx = "clients=" + std::to_string(clients) +
                                " threads=" + std::to_string(threads) +
                                " q=" + std::to_string(i);
        ASSERT_TRUE(got[i].ok) << ctx << ": " << got[i].error;
        ExpectSameResult(got[i].result, want[i], ctx);
        // No-starvation: every query's morsels drained, including at
        // threads = 1 (inline path).
        EXPECT_GE(got[i].stats.morsels_drained, 1u) << ctx;
      }
      EXPECT_EQ(sched.queries_completed(), static_cast<uint64_t>(clients));
    }
  }
}

TEST(ServerSchedulerTest, AdmissionBlocksAtMaxInflight) {
  ServerData d(2048, 32768);
  SchedulerOptions opts;
  opts.max_inflight = 2;
  opts.policy = AdmissionPolicy::kBlock;
  QueryScheduler sched(&d.catalog, opts);
  EXPECT_EQ(sched.max_inflight(), 2);
  ExecConfig cfg;
  cfg.threads = 4;

  constexpr int kClients = 12;
  std::vector<ResultSet> got(kClients);
  std::vector<std::thread> workers;
  for (int i = 0; i < kClients; ++i) {
    workers.emplace_back([&, i] {
      QuerySession session(&d.catalog, &sched);
      got[i] = session.Execute(SpecFor(i, d.n_r), cfg);
    });
  }
  for (auto& w : workers) w.join();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(got[i].ok) << got[i].error;
    EXPECT_FALSE(got[i].stats.rejected);
  }
  EXPECT_EQ(sched.queries_completed(), static_cast<uint64_t>(kClients));
  EXPECT_EQ(sched.queries_rejected(), 0u);
}

TEST(ServerSchedulerTest, AdmissionRejectPolicyRefusesOverload) {
  ServerData d(4096, 262144);
  SchedulerOptions opts;
  opts.max_inflight = 1;
  opts.policy = AdmissionPolicy::kReject;
  QueryScheduler sched(&d.catalog, opts);
  ExecConfig cfg;
  cfg.threads = 2;

  constexpr int kClients = 8;
  std::atomic<int> ready{0};
  std::vector<ResultSet> got(kClients);
  std::vector<std::thread> workers;
  for (int i = 0; i < kClients; ++i) {
    workers.emplace_back([&, i] {
      QuerySession session(&d.catalog, &sched);
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      got[i] = session.Execute(SpecFor(i, d.n_r), cfg);
    });
  }
  for (auto& w : workers) w.join();

  int ok = 0, rejected = 0;
  for (const ResultSet& rs : got) {
    if (rs.ok) {
      ++ok;
    } else {
      EXPECT_TRUE(rs.stats.rejected);
      EXPECT_NE(rs.error.find("admission"), std::string::npos);
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, kClients);
  EXPECT_GE(ok, 1);
  // 8 simultaneous arrivals against a 1-slot gate: overlap is certain
  // enough that at least one rejection must occur.
  EXPECT_GE(rejected, 1);
  EXPECT_EQ(sched.queries_rejected(), static_cast<uint64_t>(rejected));
}

// ---------------------------------------------------------------------------
// Shared scans
// ---------------------------------------------------------------------------

TEST(ServerSharedScanTest, SharedSweepByteIdenticalToSolo) {
  constexpr int kClients = 8;
  ServerData d(4096, 131072, /*sequential_vals=*/true);
  ExecConfig cfg;
  cfg.threads = 4;
  cfg.pipeline_mode = PipelineMode::kDynamic;

  // Disjoint contiguous windows over the sequential val column.
  auto spec_for = [&](int i) {
    QuerySpec spec = SpecFor(i, d.n_r);
    const uint32_t w = static_cast<uint32_t>(d.n_s / kClients);
    spec.s_lo = static_cast<uint32_t>(i) * w;
    spec.s_hi = spec.s_lo + w - 1;
    return spec;
  };

  std::vector<QueryResult> want;
  for (int i = 0; i < kClients; ++i) {
    ScanJoinAggregatePlan plan;
    std::string error;
    ASSERT_TRUE(server::BindQuery(d.catalog, spec_for(i), &plan, &error));
    want.push_back(exec::RunScanJoinAggregate(plan, cfg));
  }

  SchedulerOptions opts;
  opts.shared_scans = true;
  opts.shared_gather_hint = kClients;
  opts.shared_gather_timeout_ns = 1'000'000'000;  // hint closes the group
  QueryScheduler sched(&d.catalog, opts);
  std::vector<ResultSet> got(kClients);
  std::vector<std::thread> workers;
  for (int i = 0; i < kClients; ++i) {
    workers.emplace_back([&, i] {
      QuerySession session(&d.catalog, &sched);
      got[i] = session.Execute(spec_for(i), cfg);
    });
  }
  for (auto& w : workers) w.join();

  for (int i = 0; i < kClients; ++i) {
    const std::string ctx = "shared q=" + std::to_string(i);
    ASSERT_TRUE(got[i].ok) << ctx << ": " << got[i].error;
    EXPECT_TRUE(got[i].stats.shared_scan) << ctx;
    EXPECT_GE(got[i].stats.morsels_drained, 1u) << ctx;
    ExpectSameResult(got[i].result, want[i], ctx);
  }
}

TEST(ServerSharedScanTest, SharedSweepPushesFewerChunksThanSoloScans) {
  constexpr int kClients = 8;
  ServerData d(4096, 131072, /*sequential_vals=*/true);
  ExecConfig cfg;
  cfg.threads = 4;
  cfg.pipeline_mode = PipelineMode::kDynamic;
  auto spec_for = [&](int i) {
    QuerySpec spec;
    spec.build_table = "R";
    spec.probe_table = "S";
    spec.r_lo = 1;
    spec.r_hi = static_cast<uint32_t>(d.n_r);
    const uint32_t w = static_cast<uint32_t>(d.n_s / kClients);
    spec.s_lo = static_cast<uint32_t>(i) * w;
    spec.s_hi = spec.s_lo + w - 1;
    spec.max_groups_hint = 128;
    return spec;
  };

  ScopedMetrics metrics;
  for (int i = 0; i < kClients; ++i) {
    ScanJoinAggregatePlan plan;
    std::string error;
    ASSERT_TRUE(server::BindQuery(d.catalog, spec_for(i), &plan, &error));
    exec::RunScanJoinAggregate(plan, cfg);
  }
  const uint64_t solo_pushed = Metric("chunks_pushed");

  SchedulerOptions opts;
  opts.shared_scans = true;
  opts.shared_gather_hint = kClients;
  opts.shared_gather_timeout_ns = 1'000'000'000;
  QueryScheduler sched(&d.catalog, opts);
  std::vector<std::thread> workers;
  std::vector<ResultSet> got(kClients);
  for (int i = 0; i < kClients; ++i) {
    workers.emplace_back([&, i] {
      QuerySession session(&d.catalog, &sched);
      got[i] = session.Execute(spec_for(i), cfg);
    });
  }
  for (auto& w : workers) w.join();
  for (const ResultSet& rs : got) ASSERT_TRUE(rs.ok) << rs.error;

  const uint64_t shared_pushed = Metric("chunks_pushed") - solo_pushed;
  EXPECT_EQ(Metric("shared_sweeps"), 1u);  // one sweep fed all members
  EXPECT_EQ(Metric("shared_members"), static_cast<uint64_t>(kClients));
  // Disjoint windows: each member's skip-empty scan pushes only its own
  // chunk band, so the group pushes a fraction of N solo all-chunk scans.
  EXPECT_LT(shared_pushed, solo_pushed / 2)
      << "shared=" << shared_pushed << " solo=" << solo_pushed;
}

// ---------------------------------------------------------------------------
// Per-query metric attribution
// ---------------------------------------------------------------------------

TEST(ServerSchedulerTest, PerQueryMetricsDoNotBleedAcrossConcurrentQueries) {
  ScopedMetrics metrics;
  // Two very different probe sizes: the small query's per-query sink must
  // see its own small chunk count even while the big query concurrently
  // pushes an order of magnitude more.
  ServerData big(2048, 131072);
  ASSERT_NE(big.catalog.RegisterTable("S_small", big.s_fks.data(),
                                      big.s_vals.data(), 4096),
            nullptr);
  QueryScheduler sched(&big.catalog);
  ExecConfig cfg;
  cfg.threads = 4;
  cfg.pipeline_mode = PipelineMode::kDynamic;

  QuerySpec big_spec = SpecFor(0, big.n_r);
  QuerySpec small_spec = SpecFor(0, big.n_r);
  small_spec.probe_table = "S_small";

  ResultSet big_rs, small_rs;
  std::thread tb([&] {
    QuerySession session(&big.catalog, &sched);
    big_rs = session.Execute(big_spec, cfg);
  });
  std::thread ts([&] {
    QuerySession session(&big.catalog, &sched);
    small_rs = session.Execute(small_spec, cfg);
  });
  tb.join();
  ts.join();
  ASSERT_TRUE(big_rs.ok) << big_rs.error;
  ASSERT_TRUE(small_rs.ok) << small_rs.error;

  const uint64_t big_pushed = big_rs.stats.metrics["chunks_pushed"];
  const uint64_t small_pushed = small_rs.stats.metrics["chunks_pushed"];
  EXPECT_GT(big_pushed, 0u);
  EXPECT_GT(small_pushed, 0u);
  // Structural bound, independent of timing: the small query's whole plan
  // is ~4 probe chunks + ~2 build chunks through <= 3 forwarding
  // operators. If the big query's concurrent pushes bled into the small
  // sink, this bound would explode past the hundreds.
  EXPECT_LT(small_pushed, 64u);
  EXPECT_GT(big_pushed, small_pushed);
  // Both sinks together never exceed what the registry recorded globally.
  EXPECT_LE(big_pushed + small_pushed, Metric("chunks_pushed"));
}

}  // namespace
}  // namespace simddb