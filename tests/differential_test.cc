// Randomized differential testing: for a stream of randomized
// configurations (sizes, selectivities, load factors, fanouts, duplicate
// patterns — including adversarial ones like all-equal keys), every
// vectorized code path must agree with its scalar counterpart. These tests
// complement the per-module suites by exploring parameter corners no
// hand-enumerated sweep covers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "agg/group_by.h"
#include "bloom/bloom_filter.h"
#include "core/isa.h"
#include "hash/double_hashing.h"
#include "hash/linear_probing.h"
#include "join/hash_join.h"
#include "partition/histogram.h"
#include "partition/range.h"
#include "partition/shuffle.h"
#include "scan/selection_scan.h"
#include "sort/radix_sort.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"
#include "util/rng.h"

namespace simddb {
namespace {

bool Has512() { return IsaSupported(Isa::kAvx512); }

// Generates a key column with a randomized "shape": uniform wide, uniform
// narrow (heavy duplicates), constant, or sequential.
void RandomKeys(Pcg32& rng, uint32_t* out, size_t n) {
  switch (rng.NextBounded(4)) {
    case 0:
      FillUniform(out, n, rng.Next64(), 0, 0xFFFFFFFEu);
      break;
    case 1:
      FillUniform(out, n, rng.Next64(), 0, rng.NextBounded(64) + 1);
      break;
    case 2: {
      uint32_t c = rng.Next() & 0x7FFFFFFF;
      for (size_t i = 0; i < n; ++i) out[i] = c;
      break;
    }
    default:
      FillSequential(out, n, rng.NextBounded(1000));
      break;
  }
}

TEST(Differential, SelectionScanAllVariants) {
  Pcg32 rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    size_t n = rng.NextBounded(20'000) + 1;
    AlignedBuffer<uint32_t> keys(SelectionScanCapacity(n)),
        pays(SelectionScanCapacity(n));
    RandomKeys(rng, keys.data(), n);
    FillSequential(pays.data(), n, 0);
    uint32_t a = rng.Next(), b = rng.Next();
    uint32_t lo = std::min(a, b), hi = std::max(a, b);
    if (rng.NextBounded(8) == 0) lo = 0;
    if (rng.NextBounded(8) == 0) hi = 0xFFFFFFFFu;
    AlignedBuffer<uint32_t> wk(SelectionScanCapacity(n)),
        wp(SelectionScanCapacity(n));
    size_t want = SelectionScan(ScanVariant::kScalarBranching, keys.data(),
                                pays.data(), n, lo, hi, wk.data(), wp.data());
    for (ScanVariant v :
         {ScanVariant::kScalarBranchless, ScanVariant::kVectorStoreDirect,
          ScanVariant::kVectorBitExtractDirect,
          ScanVariant::kVectorStoreIndirect,
          ScanVariant::kVectorBitExtractIndirect, ScanVariant::kAvx2Direct,
          ScanVariant::kAvx2Indirect}) {
      if (!ScanVariantSupported(v)) continue;
      AlignedBuffer<uint32_t> gk(SelectionScanCapacity(n)),
          gp(SelectionScanCapacity(n));
      size_t got = SelectionScan(v, keys.data(), pays.data(), n, lo, hi,
                                 gk.data(), gp.data());
      ASSERT_EQ(got, want) << ScanVariantName(v) << " trial " << trial;
      for (size_t i = 0; i < want; ++i) {
        ASSERT_EQ(gk[i], wk[i]) << ScanVariantName(v) << " @" << i;
        ASSERT_EQ(gp[i], wp[i]) << ScanVariantName(v) << " @" << i;
      }
    }
  }
}

TEST(Differential, HashTablesRandomConfigs) {
  if (!Has512()) GTEST_SKIP();
  Pcg32 rng(202);
  for (int trial = 0; trial < 40; ++trial) {
    size_t n_build = rng.NextBounded(4000) + 1;
    size_t n_probe = rng.NextBounded(12'000) + 1;
    size_t buckets = n_build * (rng.NextBounded(6) + 2) + 32;
    bool unique = rng.NextBounded(2) == 0;
    std::vector<uint32_t> bk(n_build), bp(n_build), pk(n_probe), pp(n_probe);
    if (unique) {
      FillUniqueShuffled(bk.data(), n_build, rng.Next64(), 1);
    } else {
      // Cap multiplicity at ~9 to bound the join output size.
      size_t uniques = n_build / 8 +
                       rng.NextBounded(static_cast<uint32_t>(n_build)) + 1;
      FillWithRepeats(bk.data(), n_build, uniques, rng.Next64(), 1);
    }
    FillSequential(bp.data(), n_build, 0);
    FillProbeKeys(pk.data(), n_probe, bk.data(), n_build,
                  rng.NextDouble(), rng.Next64());
    FillSequential(pp.data(), n_probe, 0);

    // Reference via scalar LP.
    LinearProbingTable lp_ref(buckets);
    lp_ref.BuildScalar(bk.data(), bp.data(), n_build);
    size_t cap = n_probe * 10 + n_build + 64;
    AlignedBuffer<uint32_t> wk(cap), ws(cap), wr(cap);
    size_t want = lp_ref.ProbeScalar(pk.data(), pp.data(), n_probe, wk.data(),
                                     ws.data(), wr.data());
    auto norm = [](AlignedBuffer<uint32_t>& a, AlignedBuffer<uint32_t>& b,
                   AlignedBuffer<uint32_t>& c, size_t m) {
      std::vector<std::tuple<uint32_t, uint32_t, uint32_t>> v(m);
      for (size_t i = 0; i < m; ++i) v[i] = {a[i], b[i], c[i]};
      std::sort(v.begin(), v.end());
      return v;
    };
    auto want_rows = norm(wk, ws, wr, want);

    // LP vector build + vector probe.
    LinearProbingTable lp(buckets);
    lp.BuildAvx512(bk.data(), bp.data(), n_build, unique);
    AlignedBuffer<uint32_t> gk(cap), gs(cap), gr(cap);
    size_t got = lp.ProbeAvx512(pk.data(), pp.data(), n_probe, gk.data(),
                                gs.data(), gr.data());
    ASSERT_EQ(got, want) << "LP trial " << trial;
    ASSERT_EQ(norm(gk, gs, gr, got), want_rows) << "LP trial " << trial;

    // DH vector build + vector probe.
    DoubleHashingTable dh(buckets);
    dh.BuildAvx512(bk.data(), bp.data(), n_build);
    got = dh.ProbeAvx512(pk.data(), pp.data(), n_probe, gk.data(), gs.data(),
                         gr.data());
    ASSERT_EQ(got, want) << "DH trial " << trial;
    ASSERT_EQ(norm(gk, gs, gr, got), want_rows) << "DH trial " << trial;
  }
}

TEST(Differential, BloomFilterRandomConfigs) {
  Pcg32 rng(303);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n_items = rng.NextBounded(20'000) + 1;
    int k = static_cast<int>(rng.NextBounded(8)) + 1;
    int bpi = static_cast<int>(rng.NextBounded(14)) + 2;
    std::vector<uint32_t> items(n_items);
    FillUniqueShuffled(items.data(), n_items, rng.Next64(), 1);
    BloomFilter f = BloomFilter::ForItems(n_items, bpi, k, rng.Next64());
    f.Add(items.data(), n_items);
    size_t n_probe = rng.NextBounded(30'000) + 1;
    AlignedBuffer<uint32_t> pk(n_probe + 16), pp(n_probe + 16);
    FillProbeKeys(pk.data(), n_probe, items.data(), n_items,
                  rng.NextDouble(), rng.Next64());
    FillSequential(pp.data(), n_probe, 0);
    AlignedBuffer<uint32_t> wk(n_probe + 16), wp(n_probe + 16);
    size_t want = f.ProbeScalar(pk.data(), pp.data(), n_probe, wk.data(),
                                wp.data());
    for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
      if (!IsaSupported(isa)) continue;
      AlignedBuffer<uint32_t> gk(n_probe + 16), gp(n_probe + 16);
      size_t got = f.Probe(isa, pk.data(), pp.data(), n_probe, gk.data(),
                           gp.data());
      ASSERT_EQ(got, want) << IsaName(isa) << " trial " << trial;
      std::vector<std::pair<uint32_t, uint32_t>> a(want), b(want);
      for (size_t i = 0; i < want; ++i) {
        a[i] = {wk[i], wp[i]};
        b[i] = {gk[i], gp[i]};
      }
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << IsaName(isa) << " trial " << trial;
    }
  }
}

TEST(Differential, HistogramAndShuffleRandomConfigs) {
  if (!Has512()) GTEST_SKIP();
  Pcg32 rng(404);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = rng.NextBounded(50'000) + 1;
    uint32_t bits = rng.NextBounded(11) + 1;
    AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
    RandomKeys(rng, keys.data(), n);
    FillSequential(pays.data(), n, 0);
    PartitionFn fn;
    switch (rng.NextBounded(3)) {
      case 0:
        fn = PartitionFn::Radix(bits, rng.NextBounded(32 - bits));
        break;
      case 1: {
        uint32_t fo = (1u << bits) - rng.NextBounded(3);
        fn = PartitionFn::Hash(fo < 2 ? 2 : fo, rng.Next64());
        break;
      }
      default:
        fn = PartitionFn::HashRadix(bits, rng.NextBounded(4),
                                    1u << (bits + 4), rng.Next64());
        break;
    }
    std::vector<uint32_t> want(fn.fanout), got(fn.fanout);
    HistogramScalar(fn, keys.data(), n, want.data());
    HistogramWorkspace ws;
    HistogramReplicatedAvx512(fn, keys.data(), n, got.data(), &ws);
    ASSERT_EQ(got, want) << "replicated trial " << trial;
    HistogramSerializedAvx512(fn, keys.data(), n, got.data());
    ASSERT_EQ(got, want) << "serialized trial " << trial;
    HistogramCompressedAvx512(fn, keys.data(), n, got.data(), &ws);
    ASSERT_EQ(got, want) << "compressed trial " << trial;

    // Shuffle both ways and compare full outputs (both stable).
    std::vector<uint32_t> off_a(fn.fanout), off_b(fn.fanout);
    uint32_t sum = 0;
    for (uint32_t p = 0; p < fn.fanout; ++p) {
      off_a[p] = off_b[p] = sum;
      sum += want[p];
    }
    AlignedBuffer<uint32_t> ak(n + 16), ap(n + 16), bk(n + 16), bp(n + 16);
    ShuffleBuffers bufs;
    ShuffleScalarBuffered(fn, keys.data(), pays.data(), n, off_a.data(),
                          ak.data(), ap.data(), &bufs);
    ShuffleVectorBufferedAvx512(fn, keys.data(), pays.data(), n,
                                off_b.data(), bk.data(), bp.data(), &bufs);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bk[i], ak[i]) << "shuffle key @" << i << " trial " << trial;
      ASSERT_EQ(bp[i], ap[i]) << "shuffle pay @" << i << " trial " << trial;
    }
  }
}

TEST(Differential, RangeFunctionsWithDuplicateSplitters) {
  Pcg32 rng(505);
  for (int trial = 0; trial < 30; ++trial) {
    uint32_t p = rng.NextBounded(300) + 2;
    std::vector<uint32_t> splitters(p - 1);
    for (auto& s : splitters) s = rng.Next();
    // Force some duplicate splitters.
    if (p > 4) {
      splitters[1] = splitters[0];
      splitters[3] = splitters[2];
    }
    std::sort(splitters.begin(), splitters.end());
    RangeFunction fn(splitters);
    size_t n = rng.NextBounded(5000) + 16;
    std::vector<uint32_t> keys(n);
    RandomKeys(rng, keys.data(), n);
    // Include exact splitter values as keys.
    for (size_t i = 0; i < std::min<size_t>(n, splitters.size()); ++i) {
      keys[i] = splitters[i];
    }
    std::vector<uint32_t> want(n), got(n);
    fn.ScalarBranching(keys.data(), n, want.data());
    fn.ScalarBranchless(keys.data(), n, got.data());
    ASSERT_EQ(got, want) << "branchless trial " << trial;
    if (Has512()) {
      fn.VectorAvx512(keys.data(), n, got.data());
      ASSERT_EQ(got, want) << "avx512 trial " << trial;
    }
    if (IsaSupported(Isa::kAvx2)) {
      fn.VectorAvx2(keys.data(), n, got.data());
      ASSERT_EQ(got, want) << "avx2 trial " << trial;
    }
    for (int width : {8, 16}) {
      RangeIndex index(splitters, width);
      index.LookupScalar(keys.data(), n, got.data());
      ASSERT_EQ(got, want) << "tree" << width << " trial " << trial;
    }
  }
}

TEST(Differential, SortJoinGroupByRandomConfigs) {
  if (!Has512()) GTEST_SKIP();
  Pcg32 rng(606);
  for (int trial = 0; trial < 12; ++trial) {
    // Sort.
    size_t n = rng.NextBounded(60'000) + 2;
    AlignedBuffer<uint32_t> k1(n + 16), p1(n + 16), k2(n + 16), p2(n + 16);
    AlignedBuffer<uint32_t> s1(n + 16), s2(n + 16), s3(n + 16), s4(n + 16);
    RandomKeys(rng, k1.data(), n);
    std::memcpy(k2.data(), k1.data(), n * sizeof(uint32_t));
    FillSequential(p1.data(), n, 0);
    FillSequential(p2.data(), n, 0);
    RadixSortConfig sc, vc;
    sc.isa = Isa::kScalar;
    vc.isa = Isa::kAvx512;
    sc.threads = static_cast<int>(rng.NextBounded(4)) + 1;
    vc.threads = static_cast<int>(rng.NextBounded(4)) + 1;
    sc.bits_per_pass = static_cast<int>(rng.NextBounded(8)) + 4;
    vc.bits_per_pass = static_cast<int>(rng.NextBounded(8)) + 4;
    RadixSortPairs(k1.data(), p1.data(), s1.data(), s2.data(), n, sc);
    RadixSortPairs(k2.data(), p2.data(), s3.data(), s4.data(), n, vc);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(k1[i], k2[i]) << "sort key @" << i << " trial " << trial;
      ASSERT_EQ(p1[i], p2[i]) << "sort pay @" << i << " trial " << trial;
    }

    // Group-by on the same data.
    GroupByAggregator agg_s(n + 8), agg_v(n + 8);
    agg_s.AccumulateScalar(k1.data(), p1.data(), n);
    agg_v.AccumulateAvx512(k1.data(), p1.data(), n);
    ASSERT_EQ(agg_v.num_groups(), agg_s.num_groups()) << "trial " << trial;
    size_t g = agg_s.num_groups();
    std::vector<uint32_t> keys_s(g), keys_v(g), cnt_s(g), cnt_v(g);
    std::vector<uint64_t> sum_s(g), sum_v(g);
    agg_s.Extract(Isa::kScalar, keys_s.data(), sum_s.data(), cnt_s.data(),
                  nullptr, nullptr);
    agg_v.Extract(Isa::kAvx512, keys_v.data(), sum_v.data(), cnt_v.data(),
                  nullptr, nullptr);
    std::map<uint32_t, std::pair<uint64_t, uint32_t>> ms, mv;
    for (size_t i = 0; i < g; ++i) {
      ms[keys_s[i]] = {sum_s[i], cnt_s[i]};
      mv[keys_v[i]] = {sum_v[i], cnt_v[i]};
    }
    ASSERT_EQ(mv, ms) << "groupby trial " << trial;

    // Join scalar vs vector (unique R keys).
    size_t r_n = rng.NextBounded(20'000) + 1;
    size_t s_n = rng.NextBounded(40'000) + 1;
    std::vector<uint32_t> rk(r_n), rp(r_n), sk(s_n), sp(s_n);
    FillUniqueShuffled(rk.data(), r_n, rng.Next64(), 1);
    FillSequential(rp.data(), r_n, 0);
    FillProbeKeys(sk.data(), s_n, rk.data(), r_n, rng.NextDouble(),
                  rng.Next64());
    FillSequential(sp.data(), s_n, 0);
    JoinConfig js, jv;
    js.isa = Isa::kScalar;
    jv.isa = Isa::kAvx512;
    js.threads = static_cast<int>(rng.NextBounded(4)) + 1;
    jv.threads = static_cast<int>(rng.NextBounded(4)) + 1;
    jv.target_part_tuples = js.target_part_tuples =
        rng.NextBounded(2000) + 64;
    AlignedBuffer<uint32_t> ak(s_n + 16), ar(s_n + 16), as(s_n + 16);
    AlignedBuffer<uint32_t> bk(s_n + 16), br(s_n + 16), bs(s_n + 16);
    JoinRelation r{rk.data(), rp.data(), r_n}, s{sk.data(), sp.data(), s_n};
    size_t want =
        HashJoinMaxPartition(r, s, js, ak.data(), ar.data(), as.data());
    size_t got =
        HashJoinMaxPartition(r, s, jv, bk.data(), br.data(), bs.data());
    ASSERT_EQ(got, want) << "join trial " << trial;
    std::vector<std::tuple<uint32_t, uint32_t, uint32_t>> wa(want), wb(want);
    for (size_t i = 0; i < want; ++i) {
      wa[i] = {ak[i], ar[i], as[i]};
      wb[i] = {bk[i], br[i], bs[i]};
    }
    std::sort(wa.begin(), wa.end());
    std::sort(wb.begin(), wb.end());
    ASSERT_EQ(wb, wa) << "join rows trial " << trial;
  }
}

}  // namespace
}  // namespace simddb
