// Micro-adaptive operator selection tests (src/exec/adaptive.h): the
// adaptive dispatcher must be invisible in results — byte-identical
// QueryResult against the static executor and the scalar std::map reference
// across ISA anchors x threads {1, 8} x chunk {257, 1024} x scan mode x
// executor path x edge input sizes, under a seeded rotate-for-testing
// schedule that provably switches the winner mid-query inside a
// morsel-parallel grid. Also covered: the explore/exploit schedule itself,
// the adaptive observability counters, static mode keeping them at zero,
// and the ISA capability degrade path (SetCpuCapsForTesting) that turns an
// unsupported Isa::kAvx512 request into the best supported backend instead
// of a SIGILL.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/isa.h"
#include "exec/adaptive.h"
#include "exec/pipeline.h"
#include "exec/query.h"
#include "obs/metrics.h"
#include "util/aligned_buffer.h"
#include "util/cpu_info.h"
#include "util/data_gen.h"

namespace simddb {
namespace {

using exec::AdaptiveDispatcher;
using exec::ExecConfig;
using exec::IsaMode;
using exec::OpKind;
using exec::PipelineMode;
using exec::QueryResult;
using exec::ScanJoinAggregatePlan;
using exec::ScanMode;

uint64_t Metric(const char* name) {
  for (const obs::MetricSample& s : obs::MetricsRegistry::Get().Snapshot()) {
    if (std::strcmp(s.name, name) == 0) return s.value;
  }
  ADD_FAILURE() << "metric " << name << " not registered";
  return 0;
}

struct ScopedMetrics {
  ScopedMetrics() {
    obs::EnableMetrics(true);
    obs::MetricsRegistry::Get().ResetAll();
  }
  ~ScopedMetrics() { obs::EnableMetrics(false); }
};

struct QueryData {
  AlignedBuffer<uint32_t> r_keys, r_attrs, s_fks, s_vals;
  size_t n_r = 0, n_s = 0;

  QueryData(size_t nr, size_t ns) : n_r(nr), n_s(ns) {
    r_keys.Reset(nr + 16);
    r_attrs.Reset(nr + 16);
    s_fks.Reset(ns + 16);
    s_vals.Reset(ns + 16);
    FillSequential(r_keys.data(), nr, 1);
    FillUniform(r_attrs.data(), nr, 5, 1, 64);
    FillUniform(s_fks.data(), ns, 6, 1,
                nr == 0 ? 1 : static_cast<uint32_t>(nr));
    FillUniform(s_vals.data(), ns, 7, 0, 999'999);
  }

  ScanJoinAggregatePlan Plan() const {
    ScanJoinAggregatePlan p;
    p.r_keys = r_keys.data();
    p.r_attrs = r_attrs.data();
    p.n_r = n_r;
    p.r_lo = 1;
    p.r_hi = n_r == 0 ? 1 : static_cast<uint32_t>((3 * n_r) / 4);
    p.s_fks = s_fks.data();
    p.s_vals = s_vals.data();
    p.n_s = n_s;
    p.s_lo = 0;
    p.s_hi = 399'999;  // ~40% of S: plenty of qualifiers per chunk
    p.bloom_bits_per_key = 10;
    p.max_groups_hint = 128;
    return p;
  }
};

struct RefRow {
  uint64_t sum = 0;
  uint32_t count = 0;
  uint32_t min = 0xFFFFFFFFu;
  uint32_t max = 0;
};

/// Scalar std::map reference, independent of every library kernel.
std::map<uint32_t, RefRow> MapReference(const QueryData& d,
                                        const ScanJoinAggregatePlan& p) {
  std::map<uint32_t, uint32_t> r;
  for (size_t i = 0; i < d.n_r; ++i) {
    if (d.r_keys[i] >= p.r_lo && d.r_keys[i] <= p.r_hi) {
      r[d.r_keys[i]] = d.r_attrs[i];
    }
  }
  std::map<uint32_t, RefRow> groups;
  for (size_t i = 0; i < d.n_s; ++i) {
    if (d.s_vals[i] < p.s_lo || d.s_vals[i] > p.s_hi) continue;
    auto it = r.find(d.s_fks[i]);
    if (it == r.end()) continue;
    RefRow& g = groups[it->second];
    g.sum += d.s_vals[i];
    g.count += 1;
    g.min = std::min(g.min, d.s_vals[i]);
    g.max = std::max(g.max, d.s_vals[i]);
  }
  return groups;
}

void ExpectMatchesReference(const QueryResult& got,
                            const std::map<uint32_t, RefRow>& want,
                            const std::string& label) {
  ASSERT_EQ(got.group_keys.size(), want.size()) << label;
  size_t i = 0;
  for (const auto& [key, row] : want) {
    ASSERT_EQ(got.group_keys[i], key) << label << " @" << i;
    ASSERT_EQ(got.sums[i], row.sum) << label << " key " << key;
    ASSERT_EQ(got.counts[i], row.count) << label << " key " << key;
    ASSERT_EQ(got.mins[i], row.min) << label << " key " << key;
    ASSERT_EQ(got.maxs[i], row.max) << label << " key " << key;
    ++i;
  }
}

void ExpectIdentical(const QueryResult& a, const QueryResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.group_keys, b.group_keys) << label;
  EXPECT_EQ(a.sums, b.sums) << label;
  EXPECT_EQ(a.counts, b.counts) << label;
  EXPECT_EQ(a.mins, b.mins) << label;
  EXPECT_EQ(a.maxs, b.maxs) << label;
  EXPECT_EQ(a.rows_scanned, b.rows_scanned) << label;
  EXPECT_EQ(a.rows_bloomed, b.rows_bloomed) << label;
  EXPECT_EQ(a.rows_joined, b.rows_joined) << label;
}

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas{Isa::kScalar};
  if (IsaSupported(Isa::kAvx2)) isas.push_back(Isa::kAvx2);
  if (IsaSupported(Isa::kAvx512)) isas.push_back(Isa::kAvx512);
  return isas;
}

/// An aggressive schedule for tests: one explore chunk per variant, two
/// exploit chunks, winner forced to rotate every round — guarantees
/// mid-query switches on any grid longer than one round, including inside
/// a morsel-parallel ParallelFor.
ExecConfig AdaptiveTestConfig(Isa anchor, int threads, size_t chunk,
                              PipelineMode pmode, uint64_t seed) {
  ExecConfig cfg;
  cfg.isa = anchor;
  cfg.threads = threads;
  cfg.chunk_tuples = chunk;
  cfg.pipeline_mode = pmode;
  cfg.isa_mode = IsaMode::kAdaptive;
  cfg.adaptive.explore_chunks = 1;
  cfg.adaptive.exploit_chunks = 2;
  cfg.adaptive.rotate_for_testing = true;
  cfg.seed = seed;
  return cfg;
}

// ---------------------------------------------------------------------------
// Dispatcher schedule
// ---------------------------------------------------------------------------

TEST(ExecAdaptiveScheduleTest, ExploreCoversEveryVariantEachRound) {
  ExecConfig cfg;
  cfg.isa = Isa::kScalar;
  cfg.adaptive.explore_chunks = 2;
  cfg.adaptive.exploit_chunks = 3;
  AdaptiveDispatcher d(cfg, ScanMode::kCompact);
  const int v = d.num_variants(OpKind::kScan);
  ASSERT_GE(v, 2);  // mode axis alone gives compact + bitmap
  // One full round: every variant must be explored exactly
  // explore_chunks times, then the exploit tail runs a single winner.
  std::vector<int> explored(static_cast<size_t>(v), 0);
  for (int i = 0; i < 2 * v; ++i) {
    AdaptiveDispatcher::Ticket t = d.Acquire(OpKind::kScan);
    ASSERT_TRUE(t.explore) << "slot " << i;
    explored[static_cast<size_t>(t.variant)]++;
    d.Report(OpKind::kScan, t.variant, 100, 1000);
  }
  for (int i = 0; i < v; ++i) EXPECT_EQ(explored[static_cast<size_t>(i)], 2);
  int winner = -1;
  for (int i = 0; i < 3; ++i) {
    AdaptiveDispatcher::Ticket t = d.Acquire(OpKind::kScan);
    EXPECT_FALSE(t.explore);
    if (winner < 0) winner = t.variant;
    EXPECT_EQ(t.variant, winner);  // exploit sticks to one winner
  }
}

TEST(ExecAdaptiveScheduleTest, FastestVariantWinsAndSwitchCounts) {
  ExecConfig cfg;
  cfg.isa = Isa::kScalar;
  cfg.adaptive.explore_chunks = 1;
  cfg.adaptive.exploit_chunks = 1;
  AdaptiveDispatcher d(cfg, ScanMode::kCompact);
  const int v = d.num_variants(OpKind::kBloomProbe);
  if (v < 2) GTEST_SKIP() << "host has a single bloom-probe variant";
  // Make variant v-1 clearly cheapest per tuple.
  for (int i = 0; i < v; ++i) {
    AdaptiveDispatcher::Ticket t = d.Acquire(OpKind::kBloomProbe);
    ASSERT_TRUE(t.explore);
    d.Report(OpKind::kBloomProbe, t.variant,
             t.variant == v - 1 ? 10 : 1000, 1000);
  }
  AdaptiveDispatcher::Ticket t = d.Acquire(OpKind::kBloomProbe);
  EXPECT_FALSE(t.explore);
  EXPECT_EQ(t.variant, v - 1);
  if (v > 1) {
    EXPECT_EQ(d.switches(), 1u);  // winner moved off the static anchor
  }
}

TEST(ExecAdaptiveScheduleTest, RotateForTestingForcesRoundRobinWinners) {
  ExecConfig cfg;
  cfg.isa = Isa::kScalar;
  cfg.adaptive.explore_chunks = 1;
  cfg.adaptive.exploit_chunks = 1;
  cfg.adaptive.rotate_for_testing = true;
  AdaptiveDispatcher d(cfg, ScanMode::kCompact);
  const int v = d.num_variants(OpKind::kScan);
  ASSERT_GE(v, 2);
  std::vector<int> winners;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < v; ++i) {
      AdaptiveDispatcher::Ticket t = d.Acquire(OpKind::kScan);
      d.Report(OpKind::kScan, t.variant, 100, 1000);
    }
    winners.push_back(d.Acquire(OpKind::kScan).variant);  // exploit slot
  }
  EXPECT_EQ(winners[0], 0 % v);
  EXPECT_EQ(winners[1], 1 % v);
  EXPECT_EQ(winners[2], 2 % v);
  EXPECT_GE(d.switches(), 2u);
}

// ---------------------------------------------------------------------------
// Byte identity: adaptive == static == reference, switches forced mid-query
// ---------------------------------------------------------------------------

TEST(ExecAdaptiveTest, ByteIdentityAcrossMatrix) {
  const std::pair<size_t, size_t> shapes[] = {
      {256, 0}, {256, 1}, {256, 1023}, {1024, 4097}};
  for (auto [nr, ns] : shapes) {
    QueryData d(nr, ns);
    ScanJoinAggregatePlan plan = d.Plan();
    const auto want = MapReference(d, plan);
    for (Isa anchor : SupportedIsas()) {
      for (int threads : {1, 8}) {
        for (size_t chunk : {size_t{257}, size_t{1024}}) {
          for (ScanMode mode : {ScanMode::kCompact, ScanMode::kBitmap}) {
            for (PipelineMode pmode :
                 {PipelineMode::kDynamic, PipelineMode::kFused}) {
              plan.scan_mode = mode;
              // Two different seeds rotate the explore order differently,
              // so switches land on different chunk boundaries. cfg.seed
              // also seeds the bloom filter / hash table, so the static
              // reference must share it — only the schedule may differ.
              for (uint64_t seed : {uint64_t{1}, uint64_t{42}}) {
                ExecConfig static_cfg;
                static_cfg.isa = anchor;
                static_cfg.threads = threads;
                static_cfg.chunk_tuples = chunk;
                static_cfg.pipeline_mode = pmode;
                static_cfg.seed = seed;
                const QueryResult ref =
                    exec::RunScanJoinAggregate(plan, static_cfg);
                const ExecConfig cfg = AdaptiveTestConfig(
                    anchor, threads, chunk, pmode, seed);
                const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
                const std::string label =
                    "nr=" + std::to_string(nr) + " ns=" + std::to_string(ns) +
                    " " + IsaName(anchor) + " t=" + std::to_string(threads) +
                    " c=" + std::to_string(chunk) +
                    " m=" + (mode == ScanMode::kBitmap ? "bitmap" : "compact") +
                    (pmode == PipelineMode::kFused ? " fused" : " dynamic") +
                    " seed=" + std::to_string(seed);
                ExpectIdentical(got, ref, label + " adaptive vs static");
                ExpectMatchesReference(got, want, label + " vs reference");
              }
            }
          }
        }
      }
    }
  }
}

TEST(ExecAdaptiveTest, SwitchesHappenInsideMorselGrid) {
  // 4097 tuples / 257-tuple chunks = 16 chunks; the rotate schedule's round
  // is v_explore + 2 slots, so several rounds (and forced winner changes)
  // land inside one morsel-parallel grid.
  ScopedMetrics metrics;
  QueryData d(1024, 4097);
  ScanJoinAggregatePlan plan = d.Plan();
  const auto want = MapReference(d, plan);
  const ExecConfig cfg = AdaptiveTestConfig(Isa::kScalar, 8, 257,
                                            PipelineMode::kDynamic, 42);
  const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
  ExpectMatchesReference(got, want, "switch-mid-grid");
  EXPECT_GE(Metric("adaptive_switches"), 1u);
  EXPECT_GE(Metric("explore_chunks"), 1u);
  // The rotate schedule ran at least two scan variants, so at least two
  // cells of the chosen-variant histogram must be populated.
  int populated = 0;
  for (const char* name :
       {"chosen_scan_scalar_compact", "chosen_scan_scalar_bitmap",
        "chosen_scan_avx2_compact", "chosen_scan_avx2_bitmap",
        "chosen_scan_avx512_compact", "chosen_scan_avx512_bitmap"}) {
    if (Metric(name) > 0) ++populated;
  }
  EXPECT_GE(populated, 2);
}

TEST(ExecAdaptiveTest, FusedWindowsSwitchInstantiations) {
  ScopedMetrics metrics;
  // The rotating winner first moves off variant 0 at the second round's
  // exploit span, so the grid must be deep enough for two full rounds of
  // (3 per-ISA variants x explore_chunks + exploit span) chunks.
  QueryData d(1024, 26'000);
  ScanJoinAggregatePlan plan = d.Plan();
  const auto want = MapReference(d, plan);
  const ExecConfig cfg = AdaptiveTestConfig(Isa::kScalar, 8, 257,
                                            PipelineMode::kFused, 42);
  const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
  EXPECT_TRUE(got.used_fused);
  ExpectMatchesReference(got, want, "fused-adaptive");
  EXPECT_GE(Metric("adaptive_switches"), 1u);
  int populated = 0;
  for (const char* name :
       {"chosen_fused_scalar_compact", "chosen_fused_scalar_bitmap",
        "chosen_fused_avx2_compact", "chosen_fused_avx2_bitmap",
        "chosen_fused_avx512_compact", "chosen_fused_avx512_bitmap"}) {
    if (Metric(name) > 0) ++populated;
  }
  EXPECT_GE(populated, 2);
}

TEST(ExecAdaptiveTest, StaticModeKeepsAdaptiveCountersZero) {
  QueryData d(1024, 10'000);
  ScanJoinAggregatePlan plan = d.Plan();
  for (PipelineMode pmode : {PipelineMode::kDynamic, PipelineMode::kFused}) {
    ScopedMetrics metrics;
    ExecConfig cfg;
    cfg.pipeline_mode = pmode;
    const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
    ASSERT_FALSE(got.group_keys.empty());
    EXPECT_EQ(Metric("adaptive_switches"), 0u);
    EXPECT_EQ(Metric("explore_chunks"), 0u);
    EXPECT_EQ(Metric("isa_degraded"), 0u);
  }
}

// ---------------------------------------------------------------------------
// ISA capability degrade (util/cpu_info SetCpuCapsForTesting)
// ---------------------------------------------------------------------------

struct ScopedCpuCaps {
  explicit ScopedCpuCaps(const CpuInfo* caps) { SetCpuCapsForTesting(caps); }
  ~ScopedCpuCaps() { SetCpuCapsForTesting(nullptr); }
};

TEST(ExecAdaptiveIsaDegradeTest, UnsupportedRequestDegradesInsteadOfSigill) {
  // A host with no vector extensions at all: every vector request must
  // degrade to scalar, and scalar must pass through untouched.
  static const CpuInfo kNoVector{};  // all capability bits false
  ScopedCpuCaps caps(&kNoVector);
  EXPECT_FALSE(IsaSupported(Isa::kAvx2));
  EXPECT_FALSE(IsaSupported(Isa::kAvx512));
  EXPECT_EQ(BestIsa(), Isa::kScalar);
  EXPECT_EQ(EffectiveIsa(Isa::kScalar), Isa::kScalar);
  EXPECT_EQ(EffectiveIsa(Isa::kAvx2), Isa::kScalar);
  EXPECT_EQ(EffectiveIsa(Isa::kAvx512), Isa::kScalar);

  ScopedMetrics metrics;
  QueryData d(512, 5000);
  ScanJoinAggregatePlan plan = d.Plan();
  const auto want = MapReference(d, plan);
  ExecConfig cfg;
  cfg.isa = Isa::kAvx512;  // would SIGILL if trusted on this "host"
  for (PipelineMode pmode : {PipelineMode::kDynamic, PipelineMode::kFused}) {
    cfg.pipeline_mode = pmode;
    const QueryResult got = exec::RunScanJoinAggregate(plan, cfg);
    ExpectMatchesReference(got, want,
                           pmode == PipelineMode::kFused ? "fused" : "dynamic");
  }
  EXPECT_GE(Metric("isa_degraded"), 2u);
}

TEST(ExecAdaptiveIsaDegradeTest, Avx512DegradesToAvx2WhenAvailable) {
  CpuInfo avx2_only{};
  avx2_only.avx2 = true;
  ScopedCpuCaps caps(&avx2_only);
  EXPECT_TRUE(IsaSupported(Isa::kAvx2));
  EXPECT_FALSE(IsaSupported(Isa::kAvx512));
  // Degrades to the widest *supported* backend, not all the way to scalar.
  EXPECT_EQ(EffectiveIsa(Isa::kAvx512),
            // The AVX2 kernels only run when the real host has them; under
            // an override on a non-AVX2 host this would still be safe
            // because the test only checks the planner's answer.
            Isa::kAvx2);
  EXPECT_EQ(EffectiveIsa(Isa::kAvx2), Isa::kAvx2);
}

TEST(ExecAdaptiveIsaDegradeTest, AdaptiveVariantListHonorsCaps) {
  static const CpuInfo kNoVector{};
  ScopedCpuCaps caps(&kNoVector);
  ExecConfig cfg;
  cfg.isa = Isa::kScalar;
  AdaptiveDispatcher d(cfg, ScanMode::kCompact);
  // Scan axis: {compact, bitmap} x {scalar} only — no vector variants may
  // enter the schedule on a host without them.
  EXPECT_EQ(d.num_variants(OpKind::kScan), 2);
  EXPECT_EQ(d.num_variants(OpKind::kBloomProbe), 1);
  EXPECT_EQ(d.num_variants(OpKind::kBuild), 1);
  for (int v = 0; v < d.num_variants(OpKind::kScan); ++v) {
    EXPECT_EQ(d.variant(OpKind::kScan, v).isa, Isa::kScalar);
  }
}

}  // namespace
}  // namespace simddb
